/**
 * @file
 * google-benchmark microbenchmarks of the core data structures: the
 * packed-set codec, PVCache access, dedicated PHT lookup, cache
 * functional access path, event queue throughput, and the synthetic
 * workload generator. These guard the simulator's own performance
 * (a slow simulator caps experiment scale).
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "core/pv_proxy.hh"
#include "core/virt_pht.hh"
#include "core/virt_table.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "prefetch/agt.hh"
#include "prefetch/pht.hh"
#include "sim/event_queue.hh"
#include "trace/synthetic_gen.hh"

using namespace pvsim;

static void
BM_CodecDecode(benchmark::State &state)
{
    PvSetCodec codec(11, 11, 32);
    PvSet set;
    set.numWays = 11;
    for (unsigned w = 0; w < 11; ++w)
        set.ways[w] = {w, 0x80000000u | w};
    uint8_t line[kBlockBytes];
    codec.encode(set, line);
    for (auto _ : state) {
        PvSet out = codec.decode(line);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_CodecDecode);

static void
BM_CodecEncode(benchmark::State &state)
{
    PvSetCodec codec(11, 11, 32);
    PvSet set;
    set.numWays = 11;
    for (unsigned w = 0; w < 11; ++w)
        set.ways[w] = {w, 0x80000000u | w};
    uint8_t line[kBlockBytes];
    for (auto _ : state) {
        codec.encode(set, line);
        benchmark::DoNotOptimize(line[0]);
    }
}
BENCHMARK(BM_CodecEncode);

static void
BM_SetAssocPhtLookup(benchmark::State &state)
{
    SetAssocPht pht({1024, 11});
    for (PhtKey k = 0; k < 11264; ++k)
        pht.insert(k % (1u << kPhtKeyBits), k | 1);
    PhtKey key = 0;
    for (auto _ : state) {
        SpatialPattern out = 0;
        pht.lookup(key, [&](bool, SpatialPattern p) { out = p; });
        benchmark::DoNotOptimize(out);
        key = (key + 977) & ((1u << kPhtKeyBits) - 1);
    }
}
BENCHMARK(BM_SetAssocPhtLookup);

static void
BM_PvProxyHit(benchmark::State &state)
{
    SimContext ctx(SimMode::Functional);
    AddrMap amap(1ull << 30, 1, 64 * 1024);
    Dram dram(ctx, DramParams{}, &amap);
    CacheParams l2p;
    l2p.name = "l2";
    l2p.sizeBytes = 1 << 20;
    l2p.assoc = 8;
    Cache l2(ctx, l2p, &amap);
    l2.setMemSide(&dram);
    PvProxyParams pp;
    PvProxy proxy(ctx, pp, PvTableLayout(amap.pvStart(0), 1024));
    proxy.setMemSide(&l2);
    proxy.access({0, 3, PvReqClass::Demand, [](PvLineView) {}});
    for (auto _ : state) {
        uint8_t byte = 0;
        proxy.access({0, 3, PvReqClass::Demand,
                      [&](PvLineView v) { byte = v.bytes[0]; }});
        benchmark::DoNotOptimize(byte);
    }
}
BENCHMARK(BM_PvProxyHit);

static void
BM_CacheFunctionalHit(benchmark::State &state)
{
    SimContext ctx(SimMode::Functional);
    AddrMap amap(1ull << 30, 1, 64 * 1024);
    Dram dram(ctx, DramParams{}, &amap);
    CacheParams cp;
    cp.name = "l1";
    cp.sizeBytes = 64 * 1024;
    cp.assoc = 4;
    Cache l1(ctx, cp, &amap);
    l1.setMemSide(&dram);
    Packet warm(MemCmd::ReadReq, 0x1000, 0);
    l1.functionalAccess(warm);
    for (auto _ : state) {
        Packet pkt(MemCmd::ReadReq, 0x1000, 0);
        l1.functionalAccess(pkt);
        benchmark::DoNotOptimize(pkt.cmd);
    }
}
BENCHMARK(BM_CacheFunctionalHit);

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue q;
        uint64_t sum = 0;
        for (int i = 0; i < 1000; ++i)
            q.schedule(Tick((i * 131) % 997),
                       [&sum, i] { sum += uint64_t(i); });
        q.runUntil();
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_SyntheticWorkloadNext(benchmark::State &state)
{
    SyntheticWorkload gen(workloadPreset("oracle"), 0);
    TraceRecord rec;
    for (auto _ : state) {
        gen.next(rec);
        benchmark::DoNotOptimize(rec.addr);
    }
}
BENCHMARK(BM_SyntheticWorkloadNext);

/**
 * Shared-proxy contention: N tenants round-robin operations through
 * one PVProxy. Tracks the arbitration overhead of multi-tenancy —
 * per-engine stat bumps, fair-share accounting, line-index
 * translation — as tenant count grows (1 vs 2 vs 4).
 */
static void
BM_SharedProxyTenants(benchmark::State &state)
{
    unsigned tenants = unsigned(state.range(0));
    SimContext ctx(SimMode::Functional);
    AddrMap amap(1ull << 30, 1, 1024 * 1024);
    Dram dram(ctx, DramParams{}, &amap);
    CacheParams l2p;
    l2p.name = "l2";
    l2p.sizeBytes = 2 << 20;
    l2p.assoc = 8;
    Cache l2(ctx, l2p, &amap);
    l2.setMemSide(&dram);

    PvProxyParams pp;
    pp.usedBitsPerLine = 0;
    PvProxy proxy(ctx, pp, amap.pvStart(0),
                  amap.pvBytesPerCore());
    proxy.setMemSide(&l2);

    std::vector<std::unique_ptr<VirtualizedAssocTable>> tables;
    PvSetCodec codec(10, 15, 32);
    for (unsigned t = 0; t < tenants; ++t) {
        unsigned id = proxy.registerEngine(
            {"t" + std::to_string(t), 64, codec.usedBits(), {}});
        tables.push_back(std::make_unique<VirtualizedAssocTable>(
            &proxy, id, codec));
    }
    // Warm one line per tenant so the loop measures PVCache hits.
    for (auto &t : tables)
        t->store(1, 0x80000001u);

    uint64_t i = 0;
    for (auto _ : state) {
        VirtualizedAssocTable &t = *tables[i % tenants];
        uint64_t out = 0;
        t.find(1, [&](bool, uint64_t p) { out = p; });
        benchmark::DoNotOptimize(out);
        ++i;
    }
    state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_SharedProxyTenants)->Arg(1)->Arg(2)->Arg(4);

static void
BM_AgtRecordAccess(benchmark::State &state)
{
    RegionGeometry geom(32);
    ActiveGenerationTable agt(AgtParams{}, geom,
                              [](PhtKey, SpatialPattern) {});
    Addr addr = 0;
    for (auto _ : state) {
        agt.recordAccess(0x1000 + (addr & 0xff), addr);
        addr += 0x40 * 5; // stride through regions
        benchmark::DoNotOptimize(addr);
    }
}
BENCHMARK(BM_AgtRecordAccess);

BENCHMARK_MAIN();
