/**
 * @file
 * Reproduces paper Section 4.6: the PVProxy space requirements,
 * itemized (PVCache data, tags, dirty bits, MSHRs, evict buffer,
 * pattern buffer) against the paper's numbers, plus the headline
 * reduction factor vs the dedicated 59.125 KB table.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/virt_pht.hh"

using namespace pvsim;
using namespace pvsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);

    SimContext ctx(SimMode::Functional);
    VirtPhtParams vp; // paper design: 1K-11a behind an 8-set PVCache
    VirtualizedPht vpht(ctx, vp, 0xB0000000);
    auto b = vpht.proxy().storageBreakdown();

    std::cout << "Section 4.6: PVProxy space requirements per "
                 "core\n\n";

    TextTable t;
    t.setColumns({"component", "this model", "paper"});
    t.addRow({"PVCache data (8 x 473b)",
              fmtBytes(b.pvCacheData / 8.0), "473B"});
    t.addRow({"PVCache tags", fmtBytes(b.tags / 8.0), "11B"});
    t.addRow({"dirty bits", fmtBytes(b.dirtyBits / 8.0), "1B"});
    t.addRow({"MSHRs (4)", fmtBytes(b.mshrs / 8.0), "84B"});
    t.addRow({"evict buffer (4 x 64B)",
              fmtBytes(b.evictBuffer / 8.0), "256B"});
    t.addRow({"pattern buffer (16 x 32b)",
              fmtBytes(b.patternBuffer / 8.0), "64B"});
    t.addRow({"total", fmtBytes(b.totalBytes()), "889B"});
    emit(t, opt);

    double dedicated = PhtGeometry{1024, 11}.storageBits() / 8.0;
    std::cout << "Dedicated 1K-11a PHT: " << fmtBytes(dedicated)
              << " per core (paper: 59.125KB)\n"
              << "Reduction factor: "
              << fmtDouble(dedicated / b.totalBytes(), 1)
              << "x (paper: 68x)\n"
              << "In-memory PVTable: "
              << fmtBytes(double(vpht.proxy().layout().tableBytes()))
              << " per core (paper: 64KB)\n";
    return 0;
}
