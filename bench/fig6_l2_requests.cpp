/**
 * @file
 * Reproduces paper Figure 6: percentage increase of L2 memory
 * requests due to virtualization, for PV-8 and PV-16 PVCaches,
 * relative to the non-virtualized SMS-1K-11a. Also prints the
 * fraction of PVProxy requests filled by the L2 (paper Section 4.3
 * reports >98%).
 */

#include <iostream>

#include "bench_common.hh"

using namespace pvsim;
using namespace pvsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);

    std::cout << "Figure 6: increase in L2 requests due to "
                 "virtualization (vs SMS-1K-11a)\n\n";

    TextTable t;
    t.setColumns({"workload", "PV-8", "PV-16", "PV-8 L2 fill rate"});

    double sum8 = 0, sum16 = 0;
    for (const auto &wl : opt.workloads) {
        FunctionalResult base =
            runFunctional(smsConfig(wl, {1024, 11}), opt);
        FunctionalResult pv8 = runFunctional(pvConfig(wl, 8), opt);
        FunctionalResult pv16 = runFunctional(pvConfig(wl, 16), opt);

        double inc8 = pctIncrease(base.traffic.l2Requests,
                                  pv8.traffic.l2Requests);
        double inc16 = pctIncrease(base.traffic.l2Requests,
                                   pv16.traffic.l2Requests);
        sum8 += inc8;
        sum16 += inc16;
        t.addRow({wl, fmtPct(inc8), fmtPct(inc16),
                  fmtPct(100.0 * pv8.pvL2FillRate)});
    }
    size_t n = opt.workloads.size();
    t.addRow({"average", fmtPct(sum8 / double(n)),
              fmtPct(sum16 / double(n)), ""});
    emit(t, opt);

    std::cout << "Paper anchors: PV-8 increases L2 requests by "
                 "25-44% (average 33%); PV-16 is not noticeably "
                 "different; >98% of PVProxy requests are filled by "
                 "the L2.\n";
    return 0;
}
