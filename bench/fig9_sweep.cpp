/**
 * @file
 * Figure 9-style experiment for BTB virtualization: matched-pair
 * IPC of a dedicated-SRAM BTB vs the same-geometry virtualized BTB
 * (timing mode, btbMispredictPenalty > 0) across the standard
 * multi-programmed preset mixes, under the program-structure branch
 * model (learnable successor edges) — optionally swept over the
 * edge-stability knob, which walks both BTBs' hit rate from
 * near-perfect to coin-flip. This is the first end-to-end path from
 * a virtualized structure to a paper-figure IPC number — the
 * original Figure 9 virtualizes the SMS PHT; this sweep applies the
 * identical methodology to the paper's Section 6 BTB suggestion.
 *
 * Emits a BENCH_fig9.json summary (stdout table + file) so
 * successive PRs can compare trajectories.
 *
 *   fig9_sweep [--penalty N] [--btb-sets N] [--batches N]
 *              [--warmup-records N] [--measure-records N]
 *              [--cores N] [--edge-stability default,0.8,...]
 *              [--json-out FILE] [--csv] [--smoke]
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>

#include "harness/metrics.hh"
#include "harness/table.hh"
#include "util/args.hh"

using namespace pvsim;

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    const bool smoke = args.getBool("smoke", false);
    const bool csv = args.getBool("csv", false);

    Fig9Options opt;
    opt.penalty = args.getUint("penalty", 8);
    opt.btbSets = unsigned(args.getUint("btb-sets", opt.btbSets));
    opt.numCores = int(args.getUint("cores", 4));
    opt.batches = unsigned(std::max<uint64_t>(
        1, args.getUint("batches", smoke ? 2 : 4)));
    opt.warmupRecords =
        args.getUint("warmup-records", smoke ? 1'000 : 20'000);
    opt.measureRecords =
        args.getUint("measure-records", smoke ? 3'000 : 60'000);
    const std::string json_out =
        args.getString("json-out", "BENCH_fig9.json");

    // Edge-stability sweep: "default" (the mix's own profile) plus
    // any numeric overrides in [0, 1]. Smoke runs only the default
    // pass. Malformed values fail loudly instead of aborting.
    for (const std::string &s : args.getList(
             "edge-stability",
             smoke ? std::vector<std::string>{"default"}
                   : std::vector<std::string>{"default", "0.8",
                                              "0.5"})) {
        if (s == "default") {
            opt.edgeStabilities.push_back(kFig9MixStability);
            continue;
        }
        size_t consumed = 0;
        double v = -1.0;
        try {
            v = std::stod(s, &consumed);
        } catch (const std::exception &) {
        }
        // !(in-range) rather than out-of-range tests: NaN compares
        // false to everything and must be rejected too.
        if (consumed != s.size() || !(v >= 0.0 && v <= 1.0)) {
            std::cerr << "fig9_sweep: bad --edge-stability value '"
                      << s << "' (want \"default\" or a number in "
                      << "[0, 1])\n";
            return 2;
        }
        opt.edgeStabilities.push_back(v);
    }

    // fig9Sweep shards every (stability, mix, side, batch) System
    // as one job.
    const unsigned total_jobs =
        unsigned(presetMixes().size() * opt.edgeStabilities.size()) *
        2 * opt.batches;
    const unsigned jobs_effective = effectiveHarnessJobs(total_jobs);

    std::cout << "Figure 9 (BTB): dedicated-SRAM vs virtualized BTB "
              << "matched pairs, penalty=" << opt.penalty
              << " cycles, " << opt.btbSets << "x" << opt.btbAssoc
              << " BTB, " << opt.batches << " batches, "
              << opt.edgeStabilities.size()
              << " stability passes, jobs=" << jobs_effective
              << "\n\n";

    std::vector<Fig9Row> rows = fig9Sweep(opt);

    TextTable t;
    t.setColumns({"mix", "stability", "ded IPC", "virt IPC",
                  "ded hit", "virt hit", "speedup"});
    for (const Fig9Row &r : rows) {
        t.addRow({r.mix, fmtDouble(r.edgeStability, 2),
                  fmtDouble(r.dedicatedIpc, 4),
                  fmtDouble(r.virtualizedIpc, 4),
                  fmtDouble(r.dedicatedHitPct, 1) + "%",
                  fmtDouble(r.virtualizedHitPct, 1) + "%",
                  fmtDouble(r.speedupPct, 2) + "+/-" +
                      fmtDouble(r.ciPct, 2) + "%"});
    }
    if (csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);

    std::ostringstream js;
    js << "{\n  \"bench\": \"fig9_sweep\",\n"
       << "  \"penalty_cycles\": " << opt.penalty << ",\n"
       << "  \"btb_sets\": " << opt.btbSets << ",\n"
       << "  \"btb_assoc\": " << opt.btbAssoc << ",\n"
       << "  \"cores\": " << opt.numCores << ",\n"
       << "  \"batches\": " << opt.batches << ",\n"
       << "  \"warmup_records\": " << opt.warmupRecords << ",\n"
       << "  \"measure_records\": " << opt.measureRecords << ",\n"
       << "  \"jobs_effective\": " << jobs_effective << ",\n"
       << "  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Fig9Row &r = rows[i];
        js << "    {\"mix\": \"" << r.mix
           << "\", \"edge_stability\": " << r.edgeStability
           << ", \"dedicated_ipc\": " << r.dedicatedIpc
           << ", \"virtualized_ipc\": " << r.virtualizedIpc
           << ", \"dedicated_hit_pct\": " << r.dedicatedHitPct
           << ", \"virtualized_hit_pct\": " << r.virtualizedHitPct
           << ", \"speedup_pct\": " << r.speedupPct
           << ", \"ci_pct\": " << r.ciPct << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    js << "  ]\n}\n";

    std::cout << "\n" << js.str();
    std::ofstream out(json_out);
    out << js.str();

    std::cout << "Reading: speedup < 0 means virtualizing the BTB "
                 "costs IPC at this penalty. With learnable branch "
                 "streams the dedicated side converts its hit rate "
                 "into avoided redirects, while the virtualized "
                 "side still pays for predictions not available at "
                 "fetch (PVCache misses waiting on L2 fills) — the "
                 "matched pair shares seeds, so the delta is the "
                 "virtualization cost, not workload noise. Lower "
                 "edge stability drags both hit rates down and "
                 "shrinks the gap.\n";

    // Sanity for CI: every pair must have produced real IPCs, and
    // high-stability passes must show a learnable dedicated BTB —
    // the regression this sweep exists to catch is the hit rate
    // silently collapsing back to the flat-stream few percent.
    for (const Fig9Row &r : rows) {
        if (r.dedicatedIpc <= 0.0 || r.virtualizedIpc <= 0.0) {
            std::cerr << "FAIL: mix " << r.mix
                      << " produced a zero IPC\n";
            return 1;
        }
        if (r.edgeStability >= 0.9 && r.dedicatedHitPct < 60.0) {
            std::cerr << "FAIL: mix " << r.mix << " at stability "
                      << r.edgeStability << " hit only "
                      << r.dedicatedHitPct
                      << "% — the branch stream is no longer "
                         "learnable\n";
            return 1;
        }
    }
    return 0;
}
