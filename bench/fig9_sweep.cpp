/**
 * @file
 * Figure 9-style experiment for BTB virtualization: matched-pair
 * IPC of a dedicated-SRAM BTB vs the same-geometry virtualized BTB
 * (timing mode, btbMispredictPenalty > 0) across the standard
 * multi-programmed preset mixes, under the program-structure branch
 * model (learnable successor edges) — optionally swept over the
 * edge-stability knob, which walks both BTBs' hit rate from
 * near-perfect to coin-flip. This is the first end-to-end path from
 * a virtualized structure to a paper-figure IPC number — the
 * original Figure 9 virtualizes the SMS PHT; this sweep applies the
 * identical methodology to the paper's Section 6 BTB suggestion.
 *
 * Emits a BENCH_fig9.json summary (stdout table + file) so
 * successive PRs can compare trajectories.
 *
 * The --shards/--quantum/--bank-domains knobs engage the sharded
 * timing mode inside every System of the sweep; with 16 or more
 * cores the default flips to auto-sharding (--shards 0). The
 * many-core section (64 cores by default) runs a serial /
 * sharded-only / sharded+banked triple, asserts all three stats
 * dumps are bit-identical, and records wall-clock speedups, the
 * per-phase breakdown (measured serial fraction) and events/sec for
 * the perf gates; --scale-cores adds sharded-vs-banked pairs at
 * larger core counts (128 by default; pass 128,256 for the full
 * scaling ladder).
 *
 * The --dram-lanes/--overlap knobs shape the barrier work of the
 * banked runs (see SystemConfig::dramLanes / drainOverlap; 0 is
 * auto for both). The many-core section always runs its serial /
 * sharded / banked triple with the legacy serial barrier
 * (dram-lanes 1, overlap forced off) so the committed baselines
 * keep their meaning, then adds a fourth fully-overlapped run
 * (auto lanes, overlapped drains) gated bit-identical against the
 * other three.
 *
 * The prefetch section runs the PVCache locality-prefetch off-vs-on
 * matched pair (fig9PrefetchCompare): the virtualized side of the
 * "mixed" preset with identical seeds, prefetch disabled vs
 * --pv-prefetch/--victim-entries (defaulting to depth 2 / 8 victim
 * entries when left 0), reporting the availability-redirect
 * reduction the speculative fills buy. check_bench.py gates the
 * emitted "prefetch" object: on must land strictly below off.
 *
 *   fig9_sweep [--penalty N] [--btb-sets N] [--batches N]
 *              [--warmup-records N] [--measure-records N]
 *              [--cores N] [--edge-stability default,0.8,...]
 *              [--pv-prefetch N] [--victim-entries N]
 *              [--skip-prefetch]
 *              [--shards N] [--quantum N] [--bank-domains N]
 *              [--dram-lanes N] [--overlap N]
 *              [--skip-many-core] [--many-core-cores N]
 *              [--many-core-records N] [--scale-cores N,N,...]
 *              [--json-out FILE] [--csv] [--smoke]
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "bench_common.hh"
#include "config/scenario.hh"
#include "harness/metrics.hh"
#include "harness/row_json.hh"
#include "harness/system.hh"
#include "harness/table.hh"
#include "util/args.hh"

using namespace pvsim;
using namespace pvsim::bench;

namespace {

/** One timing run of the many-core scaling experiment. */
struct ManyCoreRun {
    unsigned shards = 1;      ///< effective shard count
    unsigned bankDomains = 1; ///< effective L2 bank domains
    unsigned dramLanes = 1;   ///< effective DRAM lanes
    bool drainOverlap = false; ///< overlapped drains engaged
    double ipc = 0.0;
    double wallSeconds = 0.0;
    double clusterPhase = 0.0; ///< parallel cluster-phase seconds
    double sharedPhase = 0.0;  ///< shared-domain-phase seconds
    uint64_t events = 0;
    std::string stats;     ///< full stats dump (identity check)

    double
    eventsPerSec() const
    {
        return wallSeconds > 0.0 ? double(events) / wallSeconds
                                 : 0.0;
    }

    /** Measured serial fraction of the phase-accounted wall. */
    double
    serialFraction() const
    {
        double total = clusterPhase + sharedPhase;
        return total > 0.0 ? sharedPhase / total : 0.0;
    }
};

/**
 * Run `cores` cores over the standard heterogeneous mix for
 * `records` records each, with the given shard and bank-domain
 * requests. The quantum is always pinned (to the L2 data latency)
 * so the serial reference (shards=1, one bank domain) runs the same
 * quantum machinery as the sharded runs and the stats dumps can be
 * compared bit-for-bit.
 */
ManyCoreRun
manyCoreRun(unsigned cores, unsigned shards, unsigned bank_domains,
            unsigned dram_lanes, unsigned drain_overlap,
            uint64_t records)
{
    SystemConfig cfg;
    cfg.mode = SimMode::Timing;
    cfg.numCores = int(cores);
    cfg.workloadMix = {"apache", "qry2", "db2", "zeus"};
    cfg.timingShards = shards;
    cfg.syncQuantum = cfg.l2DataLatency;
    cfg.l2BankDomains = bank_domains;
    cfg.dramLanes = dram_lanes;
    cfg.drainOverlap = drain_overlap;
    System sys(cfg);

    ManyCoreRun r;
    r.shards = sys.timingShardsEffective();
    r.bankDomains = sys.l2BankDomainsEffective();
    r.dramLanes = sys.dramLanesEffective();
    r.drainOverlap = sys.drainOverlapEffective();
    auto t0 = std::chrono::steady_clock::now();
    Tick finish = sys.runTiming(records);
    std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - t0;
    r.wallSeconds = wall.count();
    r.clusterPhase = sys.clusterPhaseSeconds();
    r.sharedPhase = sys.sharedPhaseSeconds();
    r.events = sys.eventsExecuted();
    r.ipc = aggregateIpc(sys.totalInstructions(), finish);
    std::ostringstream os;
    sys.ctx().dumpStats(os);
    r.stats = os.str();
    return r;
}

/** JSON object body of one many-core run (no surrounding braces). */
std::string
manyCoreRunJson(const ManyCoreRun &r)
{
    std::ostringstream os;
    os << "\"shards\": " << r.shards
       << ", \"bank_domains\": " << r.bankDomains
       << ", \"dram_lanes\": " << r.dramLanes
       << ", \"drain_overlap\": "
       << (r.drainOverlap ? "true" : "false")
       << ", \"ipc\": " << r.ipc
       << ", \"wall_seconds\": " << r.wallSeconds
       << ", \"events\": " << r.events
       << ", \"events_per_sec\": " << r.eventsPerSec()
       << ", \"cluster_phase_seconds\": " << r.clusterPhase
       << ", \"shared_phase_seconds\": " << r.sharedPhase
       << ", \"serial_fraction\": " << r.serialFraction();
    return os.str();
}

/** One stdout line for a many-core run, with the phase split. */
void
printManyCoreRun(const std::string &label, const ManyCoreRun &r)
{
    std::cout << label << ": wall " << fmtWall(r.wallSeconds)
              << ", " << r.events << " events ("
              << fmtEventsPerSec(r.eventsPerSec()) << "), shards="
              << r.shards << ", bank_domains=" << r.bankDomains
              << ", dram_lanes=" << r.dramLanes
              << ", overlap=" << (r.drainOverlap ? "on" : "off")
              << ", serial_fraction="
              << fmtDouble(100.0 * r.serialFraction(), 1) << "%\n";
}

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    const bool smoke = args.getBool("smoke", false);
    const bool csv = args.getBool("csv", false);

    // --scenario FILE: take every sweep option from a scenario file
    // (kind "fig9") instead of the flags below; the many-core
    // scaling section defaults to skipped since the scenario
    // describes only the sweep.
    const std::string scenario_file = args.getString("scenario", "");

    Fig9Options opt;
    if (!scenario_file.empty()) {
        Scenario s;
        try {
            s = loadScenarioFile(scenario_file);
        } catch (const std::exception &e) {
            std::cerr << "fig9_sweep: " << e.what() << "\n";
            return 2;
        }
        if (s.kind != "fig9") {
            std::cerr << "fig9_sweep: " << scenario_file
                      << " has kind \"" << s.kind
                      << "\", want \"fig9\"\n";
            return 2;
        }
        opt = s.fig9;
    } else {
        opt.penalty = args.getUint("penalty", 8);
        opt.btbSets =
            unsigned(args.getUint("btb-sets", opt.btbSets));
        opt.numCores = int(args.getUint("cores", 4));
        opt.batches = unsigned(std::max<uint64_t>(
            1, args.getUint("batches", smoke ? 2 : 4)));
        opt.warmupRecords =
            args.getUint("warmup-records", smoke ? 1'000 : 20'000);
        opt.measureRecords =
            args.getUint("measure-records", smoke ? 3'000 : 60'000);
        // 16+ cores default to auto-sharding (--shards 0): a serial
        // event loop over that many cores is pure queue contention.
        opt.timingShards = unsigned(args.getUint(
            "shards", opt.numCores >= 16 ? 0 : opt.timingShards));
        opt.syncQuantum =
            Cycles(args.getUint("quantum", opt.syncQuantum));
        opt.l2BankDomains = unsigned(
            args.getUint("bank-domains", opt.l2BankDomains));
        opt.dramLanes =
            unsigned(args.getUint("dram-lanes", opt.dramLanes));
        opt.drainOverlap =
            unsigned(args.getUint("overlap", opt.drainOverlap));
        opt.pvPrefetch = unsigned(
            args.getUint("pv-prefetch", opt.pvPrefetch));
        opt.victimEntries = unsigned(
            args.getUint("victim-entries", opt.victimEntries));
    }
    const bool skip_prefetch = args.getBool("skip-prefetch", false);
    const bool skip_many_core =
        args.getBool("skip-many-core", !scenario_file.empty());
    const unsigned many_core_cores =
        unsigned(args.getUint("many-core-cores", 64));
    const uint64_t many_core_records =
        args.getUint("many-core-records", smoke ? 600 : 3'000);
    // Scaling ladder beyond the gated 64-core triple: sharded-vs-
    // banked pairs at these core counts (256 is opt-in: pass
    // --scale-cores 128,256).
    std::vector<unsigned> scale_cores;
    for (const std::string &s :
         args.getList("scale-cores", {"128"})) {
        unsigned long v = std::strtoul(s.c_str(), nullptr, 10);
        if (v == 0) {
            std::cerr << "fig9_sweep: bad --scale-cores value '"
                      << s << "'\n";
            return 2;
        }
        scale_cores.push_back(unsigned(v));
    }
    const std::string json_out =
        args.getString("json-out", "BENCH_fig9.json");

    // Edge-stability sweep: "default" (the mix's own profile) plus
    // any numeric overrides in [0, 1]. Smoke runs only the default
    // pass. Malformed values fail loudly instead of aborting. A
    // scenario spells its stabilities directly (validated on load).
    if (scenario_file.empty()) {
        for (const std::string &s : args.getList(
                 "edge-stability",
                 smoke ? std::vector<std::string>{"default"}
                       : std::vector<std::string>{"default", "0.8",
                                                  "0.5"})) {
            if (s == "default") {
                opt.edgeStabilities.push_back(kFig9MixStability);
                continue;
            }
            size_t consumed = 0;
            double v = -1.0;
            try {
                v = std::stod(s, &consumed);
            } catch (const std::exception &) {
            }
            // !(in-range) rather than out-of-range tests: NaN
            // compares false to everything and must be rejected too.
            if (consumed != s.size() || !(v >= 0.0 && v <= 1.0)) {
                std::cerr
                    << "fig9_sweep: bad --edge-stability value '"
                    << s << "' (want \"default\" or a number in "
                    << "[0, 1])\n";
                return 2;
            }
            opt.edgeStabilities.push_back(v);
        }
    }

    // fig9Sweep shards every (stability, mix, side, batch) System
    // as one job (bookkeeping shared with the scenario runner).
    const unsigned jobs_requested = harnessJobs();
    const unsigned jobs_effective = fig9JobsEffective(opt);

    std::cout << "Figure 9 (BTB): dedicated-SRAM vs virtualized BTB "
              << "matched pairs, penalty=" << opt.penalty
              << " cycles, " << opt.btbSets << "x" << opt.btbAssoc
              << " BTB, " << opt.batches << " batches, "
              << opt.edgeStabilities.size()
              << " stability passes, jobs=" << jobs_effective
              << ", shards=" << opt.timingShards << "\n\n";

    std::vector<Fig9Row> rows = fig9Sweep(opt);

    TextTable t;
    t.setColumns({"mix", "stability", "ded IPC", "virt IPC",
                  "ded hit", "virt hit", "speedup", "wall",
                  "ev/s"});
    for (const Fig9Row &r : rows) {
        t.addRow({r.mix, fmtDouble(r.edgeStability, 2),
                  fmtDouble(r.dedicatedIpc, 4),
                  fmtDouble(r.virtualizedIpc, 4),
                  fmtDouble(r.dedicatedHitPct, 1) + "%",
                  fmtDouble(r.virtualizedHitPct, 1) + "%",
                  fmtDouble(r.speedupPct, 2) + "+/-" +
                      fmtDouble(r.ciPct, 2) + "%",
                  fmtWall(r.wallSeconds),
                  fmtEventsPerSec(r.eventsPerSec())});
    }
    if (csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);

    // ---- PVCache locality prefetch: off-vs-on matched pair --------
    Fig9PrefetchResult pf;
    if (!skip_prefetch) {
        pf = fig9PrefetchCompare(opt);
        std::cout << "\nPVCache locality prefetch (" << pf.mix
                  << ", virtualized BTB, depth=" << pf.depth
                  << ", victim_entries=" << pf.victimEntries
                  << "):\n"
                  << "  off: IPC " << fmtDouble(pf.off.ipc, 4)
                  << ", avail-redir "
                  << fmtDouble(pf.off.availRedirectPct, 2) << "%\n"
                  << "  on : IPC " << fmtDouble(pf.on.ipc, 4)
                  << ", avail-redir "
                  << fmtDouble(pf.on.availRedirectPct, 2)
                  << "%, fills " << pf.on.prefetchFills
                  << ", useful " << pf.on.prefetchUseful
                  << ", drops " << pf.on.prefetchDrops
                  << ", victim hits " << pf.on.victimHits << "\n"
                  << "  protection "
                  << fmtDouble(pf.availImprovementPct, 1)
                  << "% relative, IPC delta "
                  << fmtDouble(pf.ipcDeltaPct, 2) << "%\n";
    }

    // ---- Many-core scaling: serial vs sharded-only vs
    // sharded+banked vs fully-overlapped, all bit-identical.
    const unsigned host_cores =
        std::max(1u, std::thread::hardware_concurrency());
    // At least 4 shards / 4 bank domains even on small hosts:
    // determinism is count-independent, so the identity check must
    // exercise real clustering even where it cannot pay off in
    // wall-clock (the speedup gates are host-aware).
    const unsigned mc_shards = std::min(
        many_core_cores, std::max(4u, jobs_requested));
    const unsigned mc_banks = std::max(4u, std::min(8u,
        jobs_requested));
    ManyCoreRun mc_serial, mc_sharded, mc_banked, mc_overlap;
    bool mc_identical = false;
    double mc_speedup = 0.0, mc_banked_speedup = 0.0;
    double mc_banked_over_sharded = 0.0;
    double mc_overlap_speedup = 0.0;
    double mc_overlap_over_banked = 0.0;
    struct ScaleRow {
        unsigned cores = 0;
        ManyCoreRun sharded, banked;
        bool identical = false;
        double bankedOverSharded = 0.0;
    };
    std::vector<ScaleRow> scale_rows;
    if (!skip_many_core) {
        std::cout << "\nMany-core scaling: " << many_core_cores
                  << " cores, " << many_core_records
                  << " records/core, host_cores=" << host_cores
                  << "\n";
        // The serial/sharded/banked triple pins the legacy serial
        // barrier (dram-lanes 1, overlap forced off) so its
        // serial-fraction numbers stay comparable with the committed
        // baselines; the fourth run engages the full overlapped
        // barrier (auto lanes, overlapped drains) and must stay
        // bit-identical to the other three.
        mc_serial = manyCoreRun(many_core_cores, 1, 1, 1, 1,
                                many_core_records);
        mc_sharded = manyCoreRun(many_core_cores, mc_shards, 1,
                                 1, 1, many_core_records);
        mc_banked = manyCoreRun(many_core_cores, mc_shards,
                                mc_banks, 1, 1, many_core_records);
        mc_overlap = manyCoreRun(many_core_cores, mc_shards,
                                 mc_banks, 0, 0, many_core_records);
        mc_identical = mc_serial.stats == mc_sharded.stats &&
                       mc_sharded.stats == mc_banked.stats &&
                       mc_banked.stats == mc_overlap.stats &&
                       mc_serial.ipc == mc_sharded.ipc &&
                       mc_sharded.ipc == mc_banked.ipc &&
                       mc_banked.ipc == mc_overlap.ipc;
        mc_speedup = mc_sharded.wallSeconds > 0.0
                         ? mc_serial.wallSeconds /
                               mc_sharded.wallSeconds
                         : 0.0;
        mc_banked_speedup = mc_banked.wallSeconds > 0.0
                                ? mc_serial.wallSeconds /
                                      mc_banked.wallSeconds
                                : 0.0;
        mc_banked_over_sharded =
            mc_banked.wallSeconds > 0.0
                ? mc_sharded.wallSeconds / mc_banked.wallSeconds
                : 0.0;
        mc_overlap_speedup =
            mc_overlap.wallSeconds > 0.0
                ? mc_serial.wallSeconds / mc_overlap.wallSeconds
                : 0.0;
        mc_overlap_over_banked =
            mc_overlap.wallSeconds > 0.0
                ? mc_banked.wallSeconds / mc_overlap.wallSeconds
                : 0.0;
        printManyCoreRun("  serial ", mc_serial);
        printManyCoreRun("  sharded", mc_sharded);
        printManyCoreRun("  banked ", mc_banked);
        printManyCoreRun("  overlap", mc_overlap);
        std::cout << "  bit-identical stats: "
                  << (mc_identical ? "yes" : "NO") << ", speedup "
                  << fmtDouble(mc_speedup, 2) << "x sharded, "
                  << fmtDouble(mc_banked_speedup, 2)
                  << "x sharded+banked ("
                  << fmtDouble(mc_banked_over_sharded, 2)
                  << "x over sharded-only), "
                  << fmtDouble(mc_overlap_speedup, 2)
                  << "x overlapped ("
                  << fmtDouble(mc_overlap_over_banked, 2)
                  << "x over banked)\n";

        // Scaling ladder: the serial reference is dropped (it costs
        // cores/shards times the sharded run) — determinism at each
        // rung is sharded-legacy vs banked-full-parallel, so the
        // overlapped barrier is also identity-checked at every core
        // count above the gated triple.
        for (unsigned cores : scale_cores) {
            ScaleRow row;
            row.cores = cores;
            const unsigned shards =
                std::min(cores, std::max(4u, jobs_requested));
            row.sharded = manyCoreRun(cores, shards, 1, 1, 1,
                                      many_core_records);
            row.banked = manyCoreRun(cores, shards, mc_banks,
                                     0, 0, many_core_records);
            row.identical =
                row.sharded.stats == row.banked.stats &&
                row.sharded.ipc == row.banked.ipc;
            row.bankedOverSharded =
                row.banked.wallSeconds > 0.0
                    ? row.sharded.wallSeconds /
                          row.banked.wallSeconds
                    : 0.0;
            std::cout << "  scale " << cores << " cores:\n";
            printManyCoreRun("    sharded", row.sharded);
            printManyCoreRun("    banked ", row.banked);
            std::cout << "    bit-identical stats: "
                      << (row.identical ? "yes" : "NO") << ", "
                      << fmtDouble(row.bankedOverSharded, 2)
                      << "x banked over sharded\n";
            scale_rows.push_back(std::move(row));
        }
    }

    std::ostringstream js;
    js << "{\n  \"bench\": \"fig9_sweep\",\n"
       << "  \"penalty_cycles\": " << opt.penalty << ",\n"
       << "  \"btb_sets\": " << opt.btbSets << ",\n"
       << "  \"btb_assoc\": " << opt.btbAssoc << ",\n"
       << "  \"cores\": " << opt.numCores << ",\n"
       << "  \"batches\": " << opt.batches << ",\n"
       << "  \"warmup_records\": " << opt.warmupRecords << ",\n"
       << "  \"measure_records\": " << opt.measureRecords << ",\n"
       << "  \"jobs_requested\": " << jobs_requested << ",\n"
       << "  \"jobs_effective\": " << jobs_effective << ",\n"
       << "  \"timing_shards\": "
       << (rows.empty() ? opt.timingShards : rows[0].timingShards)
       << ",\n"
       << "  \"l2_bank_domains\": "
       << (rows.empty() ? opt.l2BankDomains : rows[0].l2BankDomains)
       << ",\n"
       << "  \"sync_quantum\": " << opt.syncQuantum << ",\n"
       << "  \"pv_prefetch\": " << opt.pvPrefetch << ",\n"
       << "  \"victim_entries\": " << opt.victimEntries << ",\n"
       << "  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i)
        js << "    " << fig9RowJson(rows[i], jobs_effective)
           << (i + 1 < rows.size() ? "," : "") << "\n";
    js << "  ]";
    if (!skip_prefetch) {
        auto side = [&js](const char *name,
                          const Fig9PrefetchSide &s) {
            js << "    \"" << name << "\": {\"ipc\": " << s.ipc
               << ", \"avail_redirect_pct\": " << s.availRedirectPct
               << ", \"prefetch_fills\": " << s.prefetchFills
               << ", \"prefetch_useful\": " << s.prefetchUseful
               << ", \"prefetch_drops\": " << s.prefetchDrops
               << ", \"victim_hits\": " << s.victimHits
               << ", \"wall_seconds\": " << s.wallSeconds << "}";
        };
        js << ",\n  \"prefetch\": {\n"
           << "    \"mix\": \"" << pf.mix << "\",\n"
           << "    \"depth\": " << pf.depth << ",\n"
           << "    \"victim_entries\": " << pf.victimEntries
           << ",\n";
        side("off", pf.off);
        js << ",\n";
        side("on", pf.on);
        js << ",\n    \"avail_improvement_pct\": "
           << pf.availImprovementPct
           << ",\n    \"ipc_delta_pct\": " << pf.ipcDeltaPct
           << "\n  }";
    }
    if (!skip_many_core) {
        js << ",\n  \"many_core\": {\n"
           << "    \"cores\": " << many_core_cores << ",\n"
           << "    \"records_per_core\": " << many_core_records
           << ",\n"
           << "    \"host_cores\": " << host_cores << ",\n"
           << "    \"bit_identical\": "
           << (mc_identical ? "true" : "false") << ",\n"
           << "    \"speedup\": " << mc_speedup << ",\n"
           << "    \"banked_speedup\": " << mc_banked_speedup
           << ",\n"
           << "    \"banked_over_sharded\": "
           << mc_banked_over_sharded << ",\n"
           << "    \"overlap_speedup\": " << mc_overlap_speedup
           << ",\n"
           << "    \"overlap_over_banked\": "
           << mc_overlap_over_banked << ",\n"
           << "    \"serial\": {" << manyCoreRunJson(mc_serial)
           << "},\n"
           << "    \"sharded\": {" << manyCoreRunJson(mc_sharded)
           << "},\n"
           << "    \"banked\": {" << manyCoreRunJson(mc_banked)
           << "},\n"
           << "    \"overlapped\": {" << manyCoreRunJson(mc_overlap)
           << "}\n  },\n"
           << "  \"many_core_scale\": [\n";
        for (size_t i = 0; i < scale_rows.size(); ++i) {
            const ScaleRow &r = scale_rows[i];
            js << "    {\"cores\": " << r.cores
               << ", \"records_per_core\": " << many_core_records
               << ", \"bit_identical\": "
               << (r.identical ? "true" : "false")
               << ", \"banked_over_sharded\": "
               << r.bankedOverSharded
               << ", \"sharded\": {" << manyCoreRunJson(r.sharded)
               << "}, \"banked\": {" << manyCoreRunJson(r.banked)
               << "}}" << (i + 1 < scale_rows.size() ? "," : "")
               << "\n";
        }
        js << "  ]";
    }
    js << "\n}\n";

    std::cout << "\n" << js.str();
    std::ofstream out(json_out);
    out << js.str();

    std::cout << "Reading: speedup < 0 means virtualizing the BTB "
                 "costs IPC at this penalty. With learnable branch "
                 "streams the dedicated side converts its hit rate "
                 "into avoided redirects, while the virtualized "
                 "side still pays for predictions not available at "
                 "fetch (PVCache misses waiting on L2 fills) — the "
                 "matched pair shares seeds, so the delta is the "
                 "virtualization cost, not workload noise. Lower "
                 "edge stability drags both hit rates down and "
                 "shrinks the gap.\n";

    // Sanity for CI: every pair must have produced real IPCs, and
    // high-stability passes must show a learnable dedicated BTB —
    // the regression this sweep exists to catch is the hit rate
    // silently collapsing back to the flat-stream few percent.
    for (const Fig9Row &r : rows) {
        if (r.dedicatedIpc <= 0.0 || r.virtualizedIpc <= 0.0) {
            std::cerr << "FAIL: mix " << r.mix
                      << " produced a zero IPC\n";
            return 1;
        }
        if (r.edgeStability >= 0.9 && r.dedicatedHitPct < 60.0) {
            std::cerr << "FAIL: mix " << r.mix << " at stability "
                      << r.edgeStability << " hit only "
                      << r.dedicatedHitPct
                      << "% — the branch stream is no longer "
                         "learnable\n";
            return 1;
        }
    }
    // The prefetch pair must have run for real: both sides with a
    // live IPC, and the on side actually exercising the detector —
    // the gate on the redirect reduction itself lives in
    // check_bench.py where its tolerance is configurable.
    if (!skip_prefetch) {
        if (pf.off.ipc <= 0.0 || pf.on.ipc <= 0.0) {
            std::cerr << "FAIL: prefetch comparison produced a "
                         "zero IPC\n";
            return 1;
        }
        if (pf.on.prefetchFills == 0) {
            std::cerr << "FAIL: prefetch-on run issued no "
                         "speculative fills — the stride detector "
                         "never fired\n";
            return 1;
        }
    }
    // The determinism contract of the sharded timing mode: identical
    // quantum, different shard and bank-domain counts, bit-identical
    // statistics.
    if (!skip_many_core && !mc_identical) {
        std::cerr << "FAIL: many-core sharded/banked/overlapped "
                     "runs diverged from the serial reference "
                     "(stats dumps differ)\n";
        return 1;
    }
    for (const ScaleRow &r : scale_rows) {
        if (!r.identical) {
            std::cerr << "FAIL: " << r.cores
                      << "-core banked run diverged from the "
                         "sharded-only reference\n";
            return 1;
        }
    }
    return 0;
}
