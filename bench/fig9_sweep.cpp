/**
 * @file
 * Figure 9-style experiment for BTB virtualization: matched-pair
 * IPC of a dedicated-SRAM BTB vs the same-geometry virtualized BTB
 * (timing mode, btbMispredictPenalty > 0) across the standard
 * multi-programmed preset mixes, under the program-structure branch
 * model (learnable successor edges) — optionally swept over the
 * edge-stability knob, which walks both BTBs' hit rate from
 * near-perfect to coin-flip. This is the first end-to-end path from
 * a virtualized structure to a paper-figure IPC number — the
 * original Figure 9 virtualizes the SMS PHT; this sweep applies the
 * identical methodology to the paper's Section 6 BTB suggestion.
 *
 * Emits a BENCH_fig9.json summary (stdout table + file) so
 * successive PRs can compare trajectories.
 *
 * The --shards/--quantum knobs engage the sharded timing mode
 * inside every System of the sweep; the many-core section (64 cores
 * by default) runs one serial-vs-auto-sharded pair, asserts their
 * stats dumps are bit-identical, and records the wall-clock speedup
 * and events/sec for the perf gate.
 *
 *   fig9_sweep [--penalty N] [--btb-sets N] [--batches N]
 *              [--warmup-records N] [--measure-records N]
 *              [--cores N] [--edge-stability default,0.8,...]
 *              [--shards N] [--quantum N]
 *              [--skip-many-core] [--many-core-cores N]
 *              [--many-core-records N]
 *              [--json-out FILE] [--csv] [--smoke]
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "bench_common.hh"
#include "harness/metrics.hh"
#include "harness/system.hh"
#include "harness/table.hh"
#include "util/args.hh"

using namespace pvsim;
using namespace pvsim::bench;

namespace {

/** One timing run of the many-core scaling experiment. */
struct ManyCoreRun {
    unsigned shards = 1;   ///< effective shard count
    double ipc = 0.0;
    double wallSeconds = 0.0;
    uint64_t events = 0;
    std::string stats;     ///< full stats dump (identity check)

    double
    eventsPerSec() const
    {
        return wallSeconds > 0.0 ? double(events) / wallSeconds
                                 : 0.0;
    }
};

/**
 * Run `cores` cores over the standard heterogeneous mix for
 * `records` records each, with the given shard request. The quantum
 * is always pinned (to the L2 data latency) so the serial reference
 * (shards=1) runs the same quantum machinery as the sharded run and
 * the stats dumps can be compared bit-for-bit.
 */
ManyCoreRun
manyCoreRun(unsigned cores, unsigned shards, uint64_t records)
{
    SystemConfig cfg;
    cfg.mode = SimMode::Timing;
    cfg.numCores = int(cores);
    cfg.workloadMix = {"apache", "qry2", "db2", "zeus"};
    cfg.timingShards = shards;
    cfg.syncQuantum = cfg.l2DataLatency;
    System sys(cfg);

    ManyCoreRun r;
    r.shards = sys.timingShardsEffective();
    auto t0 = std::chrono::steady_clock::now();
    Tick finish = sys.runTiming(records);
    std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - t0;
    r.wallSeconds = wall.count();
    r.events = sys.eventsExecuted();
    r.ipc = aggregateIpc(sys.totalInstructions(), finish);
    std::ostringstream os;
    sys.ctx().dumpStats(os);
    r.stats = os.str();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    const bool smoke = args.getBool("smoke", false);
    const bool csv = args.getBool("csv", false);

    Fig9Options opt;
    opt.penalty = args.getUint("penalty", 8);
    opt.btbSets = unsigned(args.getUint("btb-sets", opt.btbSets));
    opt.numCores = int(args.getUint("cores", 4));
    opt.batches = unsigned(std::max<uint64_t>(
        1, args.getUint("batches", smoke ? 2 : 4)));
    opt.warmupRecords =
        args.getUint("warmup-records", smoke ? 1'000 : 20'000);
    opt.measureRecords =
        args.getUint("measure-records", smoke ? 3'000 : 60'000);
    opt.timingShards =
        unsigned(args.getUint("shards", opt.timingShards));
    opt.syncQuantum =
        Cycles(args.getUint("quantum", opt.syncQuantum));
    const bool skip_many_core = args.getBool("skip-many-core", false);
    const unsigned many_core_cores =
        unsigned(args.getUint("many-core-cores", 64));
    const uint64_t many_core_records =
        args.getUint("many-core-records", smoke ? 600 : 3'000);
    const std::string json_out =
        args.getString("json-out", "BENCH_fig9.json");

    // Edge-stability sweep: "default" (the mix's own profile) plus
    // any numeric overrides in [0, 1]. Smoke runs only the default
    // pass. Malformed values fail loudly instead of aborting.
    for (const std::string &s : args.getList(
             "edge-stability",
             smoke ? std::vector<std::string>{"default"}
                   : std::vector<std::string>{"default", "0.8",
                                              "0.5"})) {
        if (s == "default") {
            opt.edgeStabilities.push_back(kFig9MixStability);
            continue;
        }
        size_t consumed = 0;
        double v = -1.0;
        try {
            v = std::stod(s, &consumed);
        } catch (const std::exception &) {
        }
        // !(in-range) rather than out-of-range tests: NaN compares
        // false to everything and must be rejected too.
        if (consumed != s.size() || !(v >= 0.0 && v <= 1.0)) {
            std::cerr << "fig9_sweep: bad --edge-stability value '"
                      << s << "' (want \"default\" or a number in "
                      << "[0, 1])\n";
            return 2;
        }
        opt.edgeStabilities.push_back(v);
    }

    // fig9Sweep shards every (stability, mix, side, batch) System
    // as one job.
    const unsigned total_jobs =
        unsigned(presetMixes().size() * opt.edgeStabilities.size()) *
        2 * opt.batches;
    const unsigned jobs_requested = harnessJobs();
    const unsigned jobs_effective = effectiveHarnessJobs(total_jobs);

    std::cout << "Figure 9 (BTB): dedicated-SRAM vs virtualized BTB "
              << "matched pairs, penalty=" << opt.penalty
              << " cycles, " << opt.btbSets << "x" << opt.btbAssoc
              << " BTB, " << opt.batches << " batches, "
              << opt.edgeStabilities.size()
              << " stability passes, jobs=" << jobs_effective
              << ", shards=" << opt.timingShards << "\n\n";

    std::vector<Fig9Row> rows = fig9Sweep(opt);

    TextTable t;
    t.setColumns({"mix", "stability", "ded IPC", "virt IPC",
                  "ded hit", "virt hit", "speedup", "wall",
                  "ev/s"});
    for (const Fig9Row &r : rows) {
        t.addRow({r.mix, fmtDouble(r.edgeStability, 2),
                  fmtDouble(r.dedicatedIpc, 4),
                  fmtDouble(r.virtualizedIpc, 4),
                  fmtDouble(r.dedicatedHitPct, 1) + "%",
                  fmtDouble(r.virtualizedHitPct, 1) + "%",
                  fmtDouble(r.speedupPct, 2) + "+/-" +
                      fmtDouble(r.ciPct, 2) + "%",
                  fmtWall(r.wallSeconds),
                  fmtEventsPerSec(r.eventsPerSec())});
    }
    if (csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);

    // ---- Many-core scaling: serial vs auto-sharded, bit-identical.
    const unsigned host_cores =
        std::max(1u, std::thread::hardware_concurrency());
    ManyCoreRun mc_serial, mc_sharded;
    bool mc_identical = false;
    double mc_speedup = 0.0;
    if (!skip_many_core) {
        std::cout << "\nMany-core scaling: " << many_core_cores
                  << " cores, " << many_core_records
                  << " records/core, host_cores=" << host_cores
                  << "\n";
        mc_serial = manyCoreRun(many_core_cores, 1,
                                many_core_records);
        // At least 4 shards even on small hosts: determinism is
        // shard-count independent, so the identity check must
        // exercise real clustering even where it cannot pay off in
        // wall-clock (the speedup gate is host-aware).
        const unsigned mc_shards = std::min(
            many_core_cores, std::max(4u, jobs_requested));
        mc_sharded = manyCoreRun(many_core_cores, mc_shards,
                                 many_core_records);
        mc_identical = mc_serial.stats == mc_sharded.stats &&
                       mc_serial.ipc == mc_sharded.ipc;
        mc_speedup = mc_sharded.wallSeconds > 0.0
                         ? mc_serial.wallSeconds /
                               mc_sharded.wallSeconds
                         : 0.0;
        printHostCost("  serial ", mc_serial.wallSeconds,
                      mc_serial.events, mc_serial.shards);
        printHostCost("  sharded", mc_sharded.wallSeconds,
                      mc_sharded.events, mc_sharded.shards);
        std::cout << "  bit-identical stats: "
                  << (mc_identical ? "yes" : "NO") << ", speedup "
                  << fmtDouble(mc_speedup, 2) << "x\n";
    }

    std::ostringstream js;
    js << "{\n  \"bench\": \"fig9_sweep\",\n"
       << "  \"penalty_cycles\": " << opt.penalty << ",\n"
       << "  \"btb_sets\": " << opt.btbSets << ",\n"
       << "  \"btb_assoc\": " << opt.btbAssoc << ",\n"
       << "  \"cores\": " << opt.numCores << ",\n"
       << "  \"batches\": " << opt.batches << ",\n"
       << "  \"warmup_records\": " << opt.warmupRecords << ",\n"
       << "  \"measure_records\": " << opt.measureRecords << ",\n"
       << "  \"jobs_requested\": " << jobs_requested << ",\n"
       << "  \"jobs_effective\": " << jobs_effective << ",\n"
       << "  \"timing_shards\": "
       << (rows.empty() ? opt.timingShards : rows[0].timingShards)
       << ",\n"
       << "  \"sync_quantum\": " << opt.syncQuantum << ",\n"
       << "  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Fig9Row &r = rows[i];
        js << "    {\"mix\": \"" << r.mix
           << "\", \"edge_stability\": " << r.edgeStability
           << ", \"dedicated_ipc\": " << r.dedicatedIpc
           << ", \"virtualized_ipc\": " << r.virtualizedIpc
           << ", \"dedicated_hit_pct\": " << r.dedicatedHitPct
           << ", \"virtualized_hit_pct\": " << r.virtualizedHitPct
           << ", \"speedup_pct\": " << r.speedupPct
           << ", \"ci_pct\": " << r.ciPct
           << ", \"wall_seconds\": " << r.wallSeconds
           << ", \"events\": " << r.eventsExecuted
           << ", \"events_per_sec\": " << r.eventsPerSec() << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    js << "  ]";
    if (!skip_many_core) {
        js << ",\n  \"many_core\": {\n"
           << "    \"cores\": " << many_core_cores << ",\n"
           << "    \"records_per_core\": " << many_core_records
           << ",\n"
           << "    \"host_cores\": " << host_cores << ",\n"
           << "    \"bit_identical\": "
           << (mc_identical ? "true" : "false") << ",\n"
           << "    \"speedup\": " << mc_speedup << ",\n"
           << "    \"serial\": {\"shards\": " << mc_serial.shards
           << ", \"ipc\": " << mc_serial.ipc
           << ", \"wall_seconds\": " << mc_serial.wallSeconds
           << ", \"events\": " << mc_serial.events
           << ", \"events_per_sec\": " << mc_serial.eventsPerSec()
           << "},\n"
           << "    \"sharded\": {\"shards\": " << mc_sharded.shards
           << ", \"ipc\": " << mc_sharded.ipc
           << ", \"wall_seconds\": " << mc_sharded.wallSeconds
           << ", \"events\": " << mc_sharded.events
           << ", \"events_per_sec\": " << mc_sharded.eventsPerSec()
           << "}\n  }";
    }
    js << "\n}\n";

    std::cout << "\n" << js.str();
    std::ofstream out(json_out);
    out << js.str();

    std::cout << "Reading: speedup < 0 means virtualizing the BTB "
                 "costs IPC at this penalty. With learnable branch "
                 "streams the dedicated side converts its hit rate "
                 "into avoided redirects, while the virtualized "
                 "side still pays for predictions not available at "
                 "fetch (PVCache misses waiting on L2 fills) — the "
                 "matched pair shares seeds, so the delta is the "
                 "virtualization cost, not workload noise. Lower "
                 "edge stability drags both hit rates down and "
                 "shrinks the gap.\n";

    // Sanity for CI: every pair must have produced real IPCs, and
    // high-stability passes must show a learnable dedicated BTB —
    // the regression this sweep exists to catch is the hit rate
    // silently collapsing back to the flat-stream few percent.
    for (const Fig9Row &r : rows) {
        if (r.dedicatedIpc <= 0.0 || r.virtualizedIpc <= 0.0) {
            std::cerr << "FAIL: mix " << r.mix
                      << " produced a zero IPC\n";
            return 1;
        }
        if (r.edgeStability >= 0.9 && r.dedicatedHitPct < 60.0) {
            std::cerr << "FAIL: mix " << r.mix << " at stability "
                      << r.edgeStability << " hit only "
                      << r.dedicatedHitPct
                      << "% — the branch stream is no longer "
                         "learnable\n";
            return 1;
        }
    }
    // The determinism contract of the sharded timing mode: identical
    // quantum, different shard counts, bit-identical statistics.
    if (!skip_many_core && !mc_identical) {
        std::cerr << "FAIL: many-core sharded run diverged from the "
                     "serial reference (stats dumps differ)\n";
        return 1;
    }
    return 0;
}
