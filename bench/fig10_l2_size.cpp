/**
 * @file
 * Reproduces paper Figure 10: off-chip bandwidth increase of PV-8
 * over SMS-1K-11a as the shared L2 grows from 2 MB to 8 MB total,
 * split into L2 misses and writebacks. The paper's claim: PV
 * interference shrinks as the L2 grows.
 */

#include <iostream>

#include "bench_common.hh"

using namespace pvsim;
using namespace pvsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);

    std::cout << "Figure 10: off-chip bandwidth increase (PV-8 vs "
                 "SMS-1K-11a) for different total L2 sizes\n\n";

    TextTable t;
    t.setColumns({"workload", "L2 size", "miss increase",
                  "writeback increase", "total"});

    const uint64_t sizes[] = {2ull << 20, 4ull << 20, 8ull << 20};
    for (const auto &wl : opt.workloads) {
        for (uint64_t l2 : sizes) {
            SystemConfig base_cfg = smsConfig(wl, {1024, 11});
            base_cfg.l2SizeBytes = l2;
            SystemConfig pv_cfg = pvConfig(wl, 8);
            pv_cfg.l2SizeBytes = l2;

            FunctionalResult base = runFunctional(base_cfg, opt);
            FunctionalResult pv = runFunctional(pv_cfg, opt);

            double base_total =
                double(base.traffic.l2Misses() +
                       base.traffic.l2Writebacks());
            auto part = [&](uint64_t b, uint64_t a) {
                return base_total ? 100.0 *
                                        (double(a) - double(b)) /
                                        base_total
                                  : 0.0;
            };
            double miss_inc = part(base.traffic.l2Misses(),
                                   pv.traffic.l2Misses());
            double wb_inc = part(base.traffic.l2Writebacks(),
                                 pv.traffic.l2Writebacks());
            t.addRow({wl, fmtBytes(double(l2)), fmtPct(miss_inc),
                      fmtPct(wb_inc), fmtPct(miss_inc + wb_inc)});
        }
    }
    emit(t, opt);

    std::cout << "Paper shape: the increase shrinks monotonically "
                 "with L2 capacity and is minimal at 8MB total "
                 "(2MB per core).\n";
    return 0;
}
