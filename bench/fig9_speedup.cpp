/**
 * @file
 * Reproduces paper Figure 9: cycle-timing speedup over the
 * no-prefetch baseline for SMS-1K, SMS-16, SMS-8 (all 11-way) and
 * the virtualized SMS-PV8, with matched-pair 95% confidence
 * intervals (batch means over identical seeds).
 */

#include <iostream>

#include "bench_common.hh"

using namespace pvsim;
using namespace pvsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);

    std::cout << "Figure 9: speedup over the no-prefetch baseline "
                 "(timing mode, " << opt.batches
              << " matched-pair batches, +/- = 95% CI)\n\n";

    TextTable t;
    t.setColumns({"workload", "SMS-1K", "SMS-16", "SMS-8",
                  "SMS-PV8"});

    struct Config {
        const char *name;
        SystemConfig (*make)(const std::string &);
    };
    auto mk_1k = [](const std::string &w) {
        return smsConfig(w, {1024, 11});
    };
    auto mk_16 = [](const std::string &w) {
        return smsConfig(w, {16, 11});
    };
    auto mk_8 = [](const std::string &w) {
        return smsConfig(w, {8, 11});
    };
    auto mk_pv = [](const std::string &w) { return pvConfig(w, 8); };

    double sums[4] = {0, 0, 0, 0};
    for (const auto &wl : opt.workloads) {
        // One baseline set per workload, shared by all four
        // configurations (matched pairs via identical seeds).
        std::vector<double> base =
            baselineIpcs(baselineConfig(wl), opt.warmupRecords,
                         opt.measureRecords, opt.batches);
        std::vector<std::string> row{wl};
        SystemConfig (*makers[4])(const std::string &) = {
            mk_1k, mk_16, mk_8, mk_pv};
        for (int i = 0; i < 4; ++i) {
            SpeedupResult r = speedupOverBaseline(
                base, makers[i](wl), opt.warmupRecords,
                opt.measureRecords);
            sums[i] += r.meanPct;
            row.push_back(fmtDouble(r.meanPct, 1) + "+/-" +
                          fmtDouble(r.ciPct, 1) + "%");
        }
        t.addRow(row);
    }
    size_t n = opt.workloads.size();
    t.addRow({"average", fmtPct(sums[0] / double(n)),
              fmtPct(sums[1] / double(n)),
              fmtPct(sums[2] / double(n)),
              fmtPct(sums[3] / double(n))});
    emit(t, opt);

    std::cout << "Paper anchors: SMS-1K averages 19% speedup; "
                 "SMS-PV8 18%; the small dedicated tables reach "
                 "only about half of SMS-1K; Apache gains nothing "
                 "from small tables; worst case Oracle 6.7% vs "
                 "4.2% (PV).\n";
    return 0;
}
