/**
 * @file
 * Simulation-loop throughput microbench: tracks the perf trajectory
 * of the hot paths this repo lives on — functional stepping (scalar
 * vs. batched), the trace layer (per-record virtual next() vs.
 * nextBatch, including bulk file replay), packet allocation (heap
 * vs. PacketPool), and the threaded matched-pair harness (serial
 * vs. PVSIM_JOBS-sharded, with a bit-identity check).
 *
 * Emits a BENCH_stepping.json summary (stdout + file) so successive
 * PRs can compare numbers. No pass/fail thresholds here: wall-clock
 * ratios depend on the host (a single-vCPU container shows ~1x for
 * the threaded harness by construction).
 *
 *   micro_stepping [--records N] [--alloc-iters N] [--batches N]
 *                  [--warmup-records N] [--measure-records N]
 *                  [--reps N] [--json-out FILE] [--smoke]
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "harness/metrics.hh"
#include "harness/system.hh"
#include "mem/packet_pool.hh"
#include "trace/trace_io.hh"
#include "util/args.hh"

using namespace pvsim;
using Clock = std::chrono::steady_clock;

namespace {

double
secsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

SystemConfig
oneCoreBaseline()
{
    SystemConfig cfg;
    cfg.numCores = 1;
    cfg.prefetch = PrefetchMode::None;
    return cfg;
}

/** Best-of-reps wall-clock of fn() in seconds (noise suppression). */
template <typename Fn>
double
bestOf(unsigned reps, Fn &&fn)
{
    double best = 1e300;
    for (unsigned r = 0; r < reps; ++r) {
        auto t0 = Clock::now();
        fn();
        best = std::min(best, secsSince(t0));
    }
    return best;
}

struct Pair {
    double baseRate = 0.0; ///< ops/s, reference path
    double fastRate = 0.0; ///< ops/s, optimized path
    double speedup() const
    {
        return baseRate > 0.0 ? fastRate / baseRate : 0.0;
    }
};

/** Functional stepping: scalar per-record loop vs. batched chunks. */
Pair
benchStepping(uint64_t records, unsigned reps)
{
    Pair p;
    double s = bestOf(reps, [&] {
        System sys(oneCoreBaseline());
        for (uint64_t i = 0; i < records; ++i)
            sys.core(0).stepFunctional();
    });
    p.baseRate = double(records) / s;
    s = bestOf(reps, [&] {
        System sys(oneCoreBaseline());
        sys.core(0).stepFunctionalBatch(records);
    });
    p.fastRate = double(records) / s;
    return p;
}

/** Trace generation alone: virtual next() vs. nextBatch chunks. */
Pair
benchTraceGen(uint64_t records, unsigned reps)
{
    WorkloadParams wp = workloadPreset("apache");
    Pair p;
    double s = bestOf(reps, [&] {
        SyntheticWorkload gen(wp, 0);
        TraceSource &src = gen; // force virtual dispatch
        TraceRecord rec;
        for (uint64_t i = 0; i < records; ++i)
            src.next(rec);
    });
    p.baseRate = double(records) / s;
    std::vector<TraceRecord> buf(TraceCore::kBatchRecords);
    s = bestOf(reps, [&] {
        SyntheticWorkload gen(wp, 0);
        TraceSource &src = gen;
        for (uint64_t done = 0; done < records;
             done += buf.size()) {
            src.nextBatch(buf.data(), buf.size());
        }
    });
    p.fastRate = double(records) / s;
    return p;
}

/** File replay: per-record fread vs. bulk nextBatch decode. */
Pair
benchTraceFile(uint64_t records, unsigned reps)
{
    const std::string path = "micro_stepping_tmp.pvtrace";
    {
        TraceFileWriter w(path);
        WorkloadParams wp = workloadPreset("apache");
        SyntheticWorkload gen(wp, 0);
        TraceRecord rec;
        for (uint64_t i = 0; i < records; ++i) {
            gen.next(rec);
            w.append(rec);
        }
        w.close();
    }
    Pair p;
    double s = bestOf(reps, [&] {
        TraceFileReader r(path);
        TraceRecord rec;
        while (r.next(rec)) {
        }
    });
    p.baseRate = double(records) / s;
    std::vector<TraceRecord> buf(TraceCore::kBatchRecords);
    s = bestOf(reps, [&] {
        TraceFileReader r(path);
        while (r.nextBatch(buf.data(), buf.size()) == buf.size()) {
        }
    });
    p.fastRate = double(records) / s;
    std::remove(path.c_str());
    return p;
}

/**
 * Packet allocation: heap new/delete vs. pool alloc/release, in
 * bursts of kBurst live packets (the simulator's in-flight shape).
 */
Pair
benchPacketAlloc(uint64_t iters, unsigned reps)
{
    constexpr size_t kBurst = 64;
    std::vector<PacketPtr> live(kBurst);
    Pair p;
    double s = bestOf(reps, [&] {
        for (uint64_t i = 0; i < iters; i += kBurst) {
            for (auto &pkt : live)
                pkt = new Packet(MemCmd::ReadReq, i * 64, 0);
            for (auto &pkt : live)
                delete pkt;
        }
    });
    p.baseRate = double(iters) / s;
    s = bestOf(reps, [&] {
        for (uint64_t i = 0; i < iters; i += kBurst) {
            for (auto &pkt : live)
                pkt = allocPacket(MemCmd::ReadReq, i * 64, 0);
            for (auto &pkt : live)
                freePacket(pkt);
        }
    });
    p.fastRate = double(iters) / s;
    return p;
}

/**
 * Payload (Packet::Data) allocation: heap make_unique churn vs. the
 * pool's recycled buffers — the shape of PV traffic, where most
 * packets carry a 64-byte payload for exactly one hop.
 */
Pair
benchPayloadAlloc(uint64_t iters, unsigned reps)
{
    constexpr size_t kBurst = 64;
    Pair p;
    double s = bestOf(reps, [&] {
        std::vector<std::unique_ptr<Packet::Data>> live(kBurst);
        for (uint64_t i = 0; i < iters; i += kBurst) {
            for (auto &d : live) {
                d = std::make_unique<Packet::Data>();
                d->fill(0);
            }
            for (auto &d : live)
                d.reset();
        }
    });
    p.baseRate = double(iters) / s;
    s = bestOf(reps, [&] {
        std::vector<Packet::DataPtr> live(kBurst);
        auto &pool = PacketPool::local();
        for (uint64_t i = 0; i < iters; i += kBurst) {
            for (auto &d : live)
                d.reset(pool.allocData());
            for (auto &d : live)
                d.reset();
        }
    });
    p.fastRate = double(iters) / s;
    return p;
}

struct HarnessResult {
    double serialSecs = 0.0;
    double threadedSecs = 0.0;
    unsigned jobsRequested = 0;
    unsigned jobsEffective = 0;
    bool serialFallback = false;
    bool bitIdentical = false;
    double speedup() const
    {
        return threadedSecs > 0.0 ? serialSecs / threadedSecs : 0.0;
    }
};

/**
 * Threaded matchedPairSpeedup vs. serial, with bit-identity check.
 * The "threaded" run requests one worker per batch; the drivers
 * clamp that to the hardware thread count (an oversubscribed pool
 * on this container measured 0.77x of serial) and fall back to the
 * serial path when only one worker survives the clamp — both the
 * requested and the effective counts are recorded so the JSON says
 * what was actually measured. Any ambient PVSIM_JOBS (CI sets one)
 * is restored afterwards, not clobbered.
 */
HarnessResult
benchHarness(unsigned batches, uint64_t warmup, uint64_t measure)
{
    SystemConfig base;
    base.numCores = 2;
    base.prefetch = PrefetchMode::None;
    SystemConfig pv = base;
    pv.prefetch = PrefetchMode::SmsVirtualized;

    const char *ambient_env = std::getenv("PVSIM_JOBS");
    const std::string ambient = ambient_env ? ambient_env : "";

    HarnessResult r;
    setenv("PVSIM_JOBS", "1", 1);
    auto t0 = Clock::now();
    SpeedupResult serial =
        matchedPairSpeedup(base, pv, warmup, measure, batches);
    r.serialSecs = secsSince(t0);

    r.jobsRequested = batches;
    setenv("PVSIM_JOBS", std::to_string(batches).c_str(), 1);
    r.jobsEffective = effectiveHarnessJobs(batches);
    r.serialFallback = r.jobsEffective <= 1;
    t0 = Clock::now();
    SpeedupResult threaded =
        matchedPairSpeedup(base, pv, warmup, measure, batches);
    r.threadedSecs = secsSince(t0);
    if (ambient_env)
        setenv("PVSIM_JOBS", ambient.c_str(), 1);
    else
        unsetenv("PVSIM_JOBS");

    r.bitIdentical = serial.meanPct == threaded.meanPct &&
                     serial.ciPct == threaded.ciPct &&
                     serial.batchPct == threaded.batchPct;
    return r;
}

void
emitPair(std::ostream &os, const char *name, const Pair &p,
         const char *unit)
{
    os << "  \"" << name << "\": {\"base_" << unit << "\": "
       << p.baseRate << ", \"fast_" << unit << "\": " << p.fastRate
       << ", \"speedup\": " << p.speedup() << "},\n";
}

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    const bool smoke = args.getBool("smoke", false);
    const uint64_t records =
        args.getUint("records", smoke ? 50'000 : 2'000'000);
    const uint64_t alloc_iters =
        args.getUint("alloc-iters", smoke ? 100'000 : 5'000'000);
    const unsigned reps =
        unsigned(args.getUint("reps", smoke ? 1 : 3));
    const unsigned batches =
        unsigned(args.getUint("batches", 8));
    const uint64_t warmup =
        args.getUint("warmup-records", smoke ? 500 : 5'000);
    const uint64_t measure =
        args.getUint("measure-records", smoke ? 1'500 : 15'000);
    const std::string json_out =
        args.getString("json-out", "BENCH_stepping.json");

    // The environment's worker request (PVSIM_JOBS or the hardware
    // count), captured before benchHarness overrides the variable:
    // the CI smoke exports PVSIM_JOBS, and the artifact must say
    // what parallelism the run was given vs. what survived the
    // clamp.
    const unsigned env_jobs_requested = harnessJobs();
    const unsigned env_jobs_effective =
        effectiveHarnessJobs(batches);

    Pair stepping = benchStepping(records, reps);
    Pair gen = benchTraceGen(records, reps);
    Pair file = benchTraceFile(std::min<uint64_t>(records, 500'000),
                               reps);
    Pair alloc = benchPacketAlloc(alloc_iters, reps);
    Pair payload = benchPayloadAlloc(alloc_iters, reps);
    HarnessResult harness = benchHarness(batches, warmup, measure);

    std::ostringstream js;
    js << "{\n  \"bench\": \"micro_stepping\",\n"
       << "  \"jobs_requested\": " << env_jobs_requested << ",\n"
       << "  \"jobs_effective\": " << env_jobs_effective << ",\n";
    emitPair(js, "step_functional", stepping, "recs_per_s");
    emitPair(js, "trace_gen", gen, "recs_per_s");
    emitPair(js, "trace_file_replay", file, "recs_per_s");
    emitPair(js, "packet_alloc", alloc, "allocs_per_s");
    emitPair(js, "payload_alloc", payload, "allocs_per_s");
    js << "  \"harness_matched_pair\": {\"serial_s\": "
       << harness.serialSecs
       << ", \"threaded_s\": " << harness.threadedSecs
       << ", \"jobs_requested\": " << harness.jobsRequested
       << ", \"jobs_effective\": " << harness.jobsEffective
       << ", \"serial_fallback\": "
       << (harness.serialFallback ? "true" : "false")
       << ", \"speedup\": " << harness.speedup()
       << ", \"bit_identical\": "
       << (harness.bitIdentical ? "true" : "false") << "}\n}\n";

    std::cout << js.str();
    std::ofstream out(json_out);
    out << js.str();

    if (!harness.bitIdentical) {
        std::cerr << "FAIL: threaded harness diverged from serial\n";
        return 1;
    }
    return 0;
}
