/**
 * @file
 * Reproduces paper Figure 11: speedup of SMS-1K vs SMS-PV8 with the
 * L2 latency raised from 6/12 to 8/16 cycles (tag/data). The paper's
 * claim: virtualization stays effective with a slower L2 (average
 * difference below 1.5%).
 */

#include <iostream>

#include "bench_common.hh"

using namespace pvsim;
using namespace pvsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);

    std::cout << "Figure 11: speedup with increased L2 latency "
                 "(8/16-cycle tag/data; timing mode, "
              << opt.batches << " batches)\n\n";

    TextTable t;
    t.setColumns({"workload", "SMS-1K", "SMS-PV8", "difference"});

    auto slow = [](SystemConfig cfg) {
        cfg.l2TagLatency = 8;
        cfg.l2DataLatency = 16;
        return cfg;
    };

    double sum_diff = 0;
    for (const auto &wl : opt.workloads) {
        std::vector<double> base = baselineIpcs(
            slow(baselineConfig(wl)), opt.warmupRecords,
            opt.measureRecords, opt.batches);
        SpeedupResult sms = speedupOverBaseline(
            base, slow(smsConfig(wl, {1024, 11})),
            opt.warmupRecords, opt.measureRecords);
        SpeedupResult pv = speedupOverBaseline(
            base, slow(pvConfig(wl, 8)), opt.warmupRecords,
            opt.measureRecords);
        sum_diff += sms.meanPct - pv.meanPct;
        t.addRow({wl,
                  fmtDouble(sms.meanPct, 1) + "+/-" +
                      fmtDouble(sms.ciPct, 1) + "%",
                  fmtDouble(pv.meanPct, 1) + "+/-" +
                      fmtDouble(pv.ciPct, 1) + "%",
                  fmtDouble(sms.meanPct - pv.meanPct, 2) + "pp"});
    }
    t.addRow({"average", "", "",
              fmtDouble(sum_diff / double(opt.workloads.size()), 2) +
                  "pp"});
    emit(t, opt);

    std::cout << "Paper anchor: the average difference between the "
                 "original and virtualized prefetcher stays below "
                 "1.5% even with the slower L2.\n";
    return 0;
}
