/**
 * @file
 * Reproduces paper Table 2: the workloads. Prints each synthetic
 * preset's description plus measured characteristics from a short
 * functional run (references, L1D miss rate, footprint pressure) so
 * the substitution is auditable.
 */

#include <iostream>

#include "bench_common.hh"

using namespace pvsim;
using namespace pvsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);

    std::cout << "Table 2: workloads (synthetic equivalents of the "
                 "paper's commercial suite)\n\n";

    // Note: trace records are block-granular (intra-block and
    // short-reuse L1 hits are pre-filtered by the generator, as in
    // reduced cache traces), so the meaningful pressure metric is
    // misses per kilo-instruction, not a per-reference hit rate.
    TextTable t;
    t.setColumns({"workload", "description", "trigger keys",
                  "L1D MPKI", "L1I MPKI", "store frac"});

    for (const auto &name : opt.workloads) {
        WorkloadParams p = workloadPreset(name);
        SystemConfig cfg = baselineConfig(name);
        System sys(cfg);
        sys.runFunctional(opt.measureRefs / 2);

        uint64_t d_miss = 0, i_miss = 0;
        uint64_t stores = 0, refs = 0;
        for (int c = 0; c < sys.numCores(); ++c) {
            d_miss += sys.l1d(c).demandMisses.value();
            i_miss += sys.l1i(c).demandMisses.value();
            stores += sys.core(c).stores.value();
            refs += sys.core(c).recordsConsumed();
        }
        double kilo_insts =
            double(sys.totalInstructions()) / 1000.0;
        t.addRow({name, workloadDescription(name),
                  fmtCount(uint64_t(p.numTriggerPcs) *
                           p.offsetsPerPc),
                  fmtDouble(double(d_miss) / kilo_insts, 1),
                  fmtDouble(double(i_miss) / kilo_insts, 1),
                  fmtPct(100.0 * double(stores) /
                         double(std::max<uint64_t>(1, refs)))});
    }
    emit(t, opt);
    return 0;
}
