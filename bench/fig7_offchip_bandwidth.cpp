/**
 * @file
 * Reproduces paper Figure 7: off-chip bandwidth increase due to
 * virtualization, split into L2 misses and L2 writebacks, for PV-8
 * and PV-16 relative to the non-virtualized SMS-1K-11a.
 */

#include <iostream>

#include "bench_common.hh"

using namespace pvsim;
using namespace pvsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);

    std::cout << "Figure 7: off-chip bandwidth increase due to "
                 "virtualization, split into L2 misses and L2 "
                 "writebacks (vs SMS-1K-11a)\n\n";

    TextTable t;
    t.setColumns({"workload", "config", "miss increase",
                  "writeback increase", "total increase"});

    double sum_total = 0;
    unsigned rows = 0;
    for (const auto &wl : opt.workloads) {
        FunctionalResult base =
            runFunctional(smsConfig(wl, {1024, 11}), opt);
        for (unsigned entries : {8u, 16u}) {
            FunctionalResult pv =
                runFunctional(pvConfig(wl, entries), opt);
            // Normalize each component to the baseline's TOTAL
            // off-chip traffic so the two bars stack, as the paper
            // plots them.
            double base_total = double(base.traffic.l2Misses() +
                                       base.traffic.l2Writebacks());
            double miss_inc =
                base_total
                    ? 100.0 * (double(pv.traffic.l2Misses()) -
                               double(base.traffic.l2Misses())) /
                          base_total
                    : 0.0;
            double wb_inc =
                base_total
                    ? 100.0 * (double(pv.traffic.l2Writebacks()) -
                               double(base.traffic.l2Writebacks())) /
                          base_total
                    : 0.0;
            if (entries == 8) {
                sum_total += miss_inc + wb_inc;
                ++rows;
            }
            t.addRow({wl, "PV-" + std::to_string(entries),
                      fmtPct(miss_inc), fmtPct(wb_inc),
                      fmtPct(miss_inc + wb_inc)});
        }
    }
    t.addRow({"average", "PV-8", "", "",
              fmtPct(sum_total / double(rows))});
    emit(t, opt);

    std::cout << "Paper anchors: miss increase <1% for five of "
                 "eight workloads, <3% for the rest; writeback "
                 "increase max 3.2% (Zeus); total off-chip increase "
                 "3.3% on average, max 6.5% (Zeus).\n";
    return 0;
}
