/**
 * @file
 * Reproduces paper Figure 4: SMS performance potential — the
 * percentage of L1 read misses covered / uncovered, plus
 * overpredictions, for Infinite, 1K-16a, 1K-11a, 16-11a and 8-11a
 * PHTs across the eight workloads (functional simulation).
 */

#include <iostream>

#include "bench_common.hh"

using namespace pvsim;
using namespace pvsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);

    std::cout << "Figure 4: SMS performance potential vs. predictor "
                 "table size\n(covered + uncovered = 100% of "
                 "baseline L1 read misses)\n\n";

    TextTable t;
    t.setColumns({"workload", "config", "covered", "uncovered",
                  "overpred"});

    for (const auto &wl : opt.workloads) {
        // Infinite first, as in the paper's figure.
        {
            FunctionalResult r =
                runFunctional(smsInfiniteConfig(wl), opt);
            t.addRow({wl, "Infinite",
                      fmtPct(r.coverage.coveredPct()),
                      fmtPct(r.coverage.uncoveredPct()),
                      fmtPct(r.coverage.overpredictionPct())});
        }
        const PhtGeometry geoms[] = {
            {1024, 16}, {1024, 11}, {16, 11}, {8, 11}};
        for (const PhtGeometry &g : geoms) {
            FunctionalResult r = runFunctional(smsConfig(wl, g), opt);
            t.addRow({wl, g.label(), fmtPct(r.coverage.coveredPct()),
                      fmtPct(r.coverage.uncoveredPct()),
                      fmtPct(r.coverage.overpredictionPct())});
        }
    }
    emit(t, opt);

    std::cout << "Paper anchors: Oracle 44% covered at 1K sets vs "
                 "<4% at 8 sets; Qry1 73% (Infinite) vs 62% (16 "
                 "sets); large tables dominate small ones "
                 "everywhere.\n";
    return 0;
}
