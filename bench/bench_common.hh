/**
 * @file
 * Shared plumbing for the paper-reproduction bench binaries: common
 * CLI flags, run helpers, and result bundles. Every figure/table
 * binary prints the same rows/series the paper reports; absolute
 * values differ (synthetic workloads, simplified cores) but the
 * shapes are the object of comparison — see EXPERIMENTS.md.
 */

#ifndef PVSIM_BENCH_BENCH_COMMON_HH
#define PVSIM_BENCH_BENCH_COMMON_HH

#include <iostream>
#include <string>
#include <vector>

#include "harness/metrics.hh"
#include "harness/system.hh"
#include "harness/table.hh"
#include "trace/workload.hh"
#include "util/args.hh"

namespace pvsim {
namespace bench {

/** Flags shared by all benches. */
struct BenchOptions {
    uint64_t warmupRefs = 300'000;  ///< per core, functional runs
    uint64_t measureRefs = 600'000; ///< per core, functional runs
    uint64_t warmupRecords = 60'000;  ///< per core, timing runs
    uint64_t measureRecords = 180'000; ///< per core, timing runs
    unsigned batches = 2; ///< matched-pair batches (timing)
    std::vector<std::string> workloads;
    bool csv = false;
    bool verbose = false;

    static BenchOptions
    parse(int argc, char **argv)
    {
        Args args(argc, argv);
        BenchOptions o;
        o.warmupRefs = args.getUint("warmup", o.warmupRefs);
        o.measureRefs = args.getUint("refs", o.measureRefs);
        o.warmupRecords =
            args.getUint("warmup-records", o.warmupRecords);
        o.measureRecords =
            args.getUint("measure-records", o.measureRecords);
        o.batches = unsigned(args.getUint("batches", o.batches));
        o.workloads = args.getList("workloads", paperWorkloads());
        o.csv = args.getBool("csv", false);
        o.verbose = args.getBool("verbose", false);
        return o;
    }
};

/** Everything a functional run produces. */
struct FunctionalResult {
    CoverageMetrics coverage;
    TrafficMetrics traffic;
    double pvL2FillRate = 0.0; ///< PVProxy requests served by L2
};

/** Build, warm up, measure one functional configuration. */
inline FunctionalResult
runFunctional(SystemConfig cfg, const BenchOptions &opt)
{
    cfg.mode = SimMode::Functional;
    System sys(cfg);
    sys.runFunctional(opt.warmupRefs);
    sys.resetStats();
    sys.runFunctional(opt.measureRefs);

    FunctionalResult r;
    r.coverage = coverageOf(sys);
    r.traffic = trafficOf(sys);
    uint64_t pv_req = sys.l2().requestsPv.value();
    uint64_t pv_miss = sys.l2().missesPv.value();
    r.pvL2FillRate =
        pv_req ? 1.0 - double(pv_miss) / double(pv_req) : 0.0;
    return r;
}

/** The paper's standard prefetcher configurations. */
inline SystemConfig
baselineConfig(const std::string &workload)
{
    SystemConfig cfg;
    cfg.workload = workload;
    cfg.prefetch = PrefetchMode::None;
    return cfg;
}

inline SystemConfig
smsConfig(const std::string &workload, PhtGeometry geom)
{
    SystemConfig cfg = baselineConfig(workload);
    cfg.prefetch = PrefetchMode::SmsDedicated;
    cfg.phtGeometry = geom;
    return cfg;
}

inline SystemConfig
smsInfiniteConfig(const std::string &workload)
{
    SystemConfig cfg = baselineConfig(workload);
    cfg.prefetch = PrefetchMode::SmsInfinite;
    return cfg;
}

inline SystemConfig
pvConfig(const std::string &workload, unsigned pvcache_entries)
{
    SystemConfig cfg = baselineConfig(workload);
    cfg.prefetch = PrefetchMode::SmsVirtualized;
    cfg.phtGeometry = {1024, 11}; // the paper virtualizes 1K-11a
    cfg.pvCacheEntries = pvcache_entries;
    return cfg;
}

/** Print in the requested format. */
inline void
emit(const TextTable &t, const BenchOptions &opt)
{
    if (opt.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
    std::cout << "\n";
}

// ---- Host-cost reporting (sweep drivers) ------------------------------
//
// Every timing sweep row carries its measure-phase wall-clock and
// event count; the drivers print both so a perf regression in the
// simulator itself (not the simulated machine) is visible in the
// recorded artifacts.

/** Wall-clock cell: "12.34s". */
inline std::string
fmtWall(double seconds)
{
    return fmtDouble(seconds, 2) + "s";
}

/** Throughput cell: "3.21Mev/s" (events per wall second). */
inline std::string
fmtEventsPerSec(double eps)
{
    return fmtDouble(eps / 1e6, 2) + "Mev/s";
}

/** One stdout line summarizing a configuration's host cost. */
inline void
printHostCost(const std::string &label, double wall_seconds,
              uint64_t events, unsigned shards)
{
    std::cout << label << ": wall " << fmtWall(wall_seconds) << ", "
              << events << " events ("
              << fmtEventsPerSec(
                     wall_seconds > 0.0
                         ? double(events) / wall_seconds
                         : 0.0)
              << "), shards=" << shards << "\n";
}

} // namespace bench
} // namespace pvsim

#endif // PVSIM_BENCH_BENCH_COMMON_HH
