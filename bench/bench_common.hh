/**
 * @file
 * Shared plumbing for the paper-reproduction bench binaries: common
 * CLI flags, run helpers, and result bundles. Every figure/table
 * binary prints the same rows/series the paper reports; absolute
 * values differ (synthetic workloads, simplified cores) but the
 * shapes are the object of comparison — see EXPERIMENTS.md.
 */

#ifndef PVSIM_BENCH_BENCH_COMMON_HH
#define PVSIM_BENCH_BENCH_COMMON_HH

#include <iostream>
#include <string>
#include <vector>

#include "harness/config_presets.hh"
#include "harness/metrics.hh"
#include "harness/system.hh"
#include "harness/table.hh"
#include "trace/workload.hh"
#include "util/args.hh"

namespace pvsim {
namespace bench {

/** Flags shared by all benches. */
struct BenchOptions {
    uint64_t warmupRefs = 300'000;  ///< per core, functional runs
    uint64_t measureRefs = 600'000; ///< per core, functional runs
    uint64_t warmupRecords = 60'000;  ///< per core, timing runs
    uint64_t measureRecords = 180'000; ///< per core, timing runs
    unsigned batches = 2; ///< matched-pair batches (timing)
    std::vector<std::string> workloads;
    bool csv = false;
    bool verbose = false;

    static BenchOptions
    parse(int argc, char **argv)
    {
        Args args(argc, argv);
        BenchOptions o;
        o.warmupRefs = args.getUint("warmup", o.warmupRefs);
        o.measureRefs = args.getUint("refs", o.measureRefs);
        o.warmupRecords =
            args.getUint("warmup-records", o.warmupRecords);
        o.measureRecords =
            args.getUint("measure-records", o.measureRecords);
        o.batches = unsigned(args.getUint("batches", o.batches));
        o.workloads = args.getList("workloads", paperWorkloads());
        o.csv = args.getBool("csv", false);
        o.verbose = args.getBool("verbose", false);
        return o;
    }
};

// The standard prefetcher configurations (baselineConfig, smsConfig,
// smsInfiniteConfig, pvConfig) and FunctionalResult moved to
// harness/config_presets.hh so the scenario loader and the examples
// share the exact builders the benches measure. The unqualified names
// keep resolving here via the enclosing pvsim namespace.

/** Build, warm up, measure one functional configuration. */
inline FunctionalResult
runFunctional(SystemConfig cfg, const BenchOptions &opt)
{
    return runFunctionalMeasured(std::move(cfg), opt.warmupRefs,
                                 opt.measureRefs);
}

/** Print in the requested format. */
inline void
emit(const TextTable &t, const BenchOptions &opt)
{
    if (opt.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
    std::cout << "\n";
}

// ---- Host-cost reporting (sweep drivers) ------------------------------
//
// Every timing sweep row carries its measure-phase wall-clock and
// event count; the drivers print both so a perf regression in the
// simulator itself (not the simulated machine) is visible in the
// recorded artifacts.

/** Wall-clock cell: "12.34s". */
inline std::string
fmtWall(double seconds)
{
    return fmtDouble(seconds, 2) + "s";
}

/** Throughput cell: "3.21Mev/s" (events per wall second). */
inline std::string
fmtEventsPerSec(double eps)
{
    return fmtDouble(eps / 1e6, 2) + "Mev/s";
}

/** One stdout line summarizing a configuration's host cost. */
inline void
printHostCost(const std::string &label, double wall_seconds,
              uint64_t events, unsigned shards)
{
    std::cout << label << ": wall " << fmtWall(wall_seconds) << ", "
              << events << " events ("
              << fmtEventsPerSec(
                     wall_seconds > 0.0
                         ? double(events) / wall_seconds
                         : 0.0)
              << "), shards=" << shards << "\n";
}

} // namespace bench
} // namespace pvsim

#endif // PVSIM_BENCH_BENCH_COMMON_HH
