/**
 * @file
 * Reproduces paper Figure 8: the PV-8 off-chip traffic increase
 * split into application data vs. predictor (PV) data, separately
 * for L2 misses and L2 writebacks. Demonstrates the paper's two
 * findings: predictor lines do not meaningfully pollute the L2
 * (application misses rise <2.5%), and most PV traffic stays
 * on-chip.
 */

#include <iostream>

#include "bench_common.hh"

using namespace pvsim;
using namespace pvsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);

    std::cout << "Figure 8: PV-8 off-chip traffic increase split "
                 "into application vs. PV data (vs SMS-1K-11a)\n\n";

    TextTable t;
    t.setColumns({"workload", "miss app", "miss pv", "wb app",
                  "wb pv"});

    for (const auto &wl : opt.workloads) {
        FunctionalResult base =
            runFunctional(smsConfig(wl, {1024, 11}), opt);
        FunctionalResult pv = runFunctional(pvConfig(wl, 8), opt);

        double base_misses = double(base.traffic.l2Misses());
        double base_wbs = double(base.traffic.l2Writebacks());

        auto inc = [](double base_total, uint64_t before,
                      uint64_t after) {
            return base_total ? 100.0 *
                                    (double(after) - double(before)) /
                                    base_total
                              : 0.0;
        };
        t.addRow(
            {wl,
             fmtPct(inc(base_misses, base.traffic.l2MissesApp,
                        pv.traffic.l2MissesApp)),
             fmtPct(inc(base_misses, base.traffic.l2MissesPv,
                        pv.traffic.l2MissesPv)),
             fmtPct(inc(base_wbs, base.traffic.l2WritebacksApp,
                        pv.traffic.l2WritebacksApp)),
             fmtPct(inc(base_wbs, base.traffic.l2WritebacksPv,
                        pv.traffic.l2WritebacksPv))});
    }
    emit(t, opt);

    std::cout << "Paper anchors: application-data miss increase "
                 "<2.5% everywhere (avg 1%) — predictor entries in "
                 "the L2 do not pollute; PV's own off-chip share is "
                 "small because its lines stay hot on-chip.\n";
    return 0;
}
