/**
 * @file
 * Reproduces paper Table 1: the base processor configuration. Prints
 * the simulated machine's parameters straight from a constructed
 * System so the table can never drift from the implementation.
 */

#include <iostream>

#include "bench_common.hh"

using namespace pvsim;
using namespace pvsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);
    SystemConfig cfg = baselineConfig("apache");
    System sys(cfg);

    std::cout << "Table 1: base processor configuration "
                 "(paper values in parentheses where simplified)\n\n";

    TextTable t;
    t.setColumns({"component", "simulated configuration"});
    t.addRow({"cores", std::to_string(cfg.numCores) +
                           " trace-driven in-order, " +
                           std::to_string(cfg.coreWidth) +
                           " instr/cycle (paper: 8-stage OoO "
                           "UltraSPARC III, 4GHz)"});
    t.addRow({"store buffer",
              std::to_string(cfg.storeBufferEntries) +
                  " entries (paper: 256/64-entry LSQ)"});
    t.addRow({"L1I/L1D",
              fmtBytes(double(sys.l1d(0).sizeBytes())) + " " +
                  std::to_string(sys.l1d(0).assoc()) +
                  "-way, 64B blocks, LRU, " +
                  std::to_string(cfg.l1TagLatency +
                                 cfg.l1DataLatency) +
                  "-cycle latency"});
    t.addRow({"L1I prefetch", "next-line instruction prefetcher"});
    t.addRow({"UL2", fmtBytes(double(sys.l2().sizeBytes())) + " " +
                         std::to_string(sys.l2().assoc()) +
                         "-way, " +
                         std::to_string(cfg.l2Banks) +
                         " banks, 64B blocks, LRU, " +
                         std::to_string(cfg.l2TagLatency) + "/" +
                         std::to_string(cfg.l2DataLatency) +
                         " cycle tag/data latency"});
    t.addRow({"main memory",
              fmtBytes(double(cfg.memBytes)) + ", " +
                  std::to_string(cfg.memLatency) +
                  " cycle latency"});
    t.addRow({"PV reservation",
              fmtBytes(double(cfg.pvBytesPerCore)) +
                  " per core at the top of physical memory"});
    emit(t, opt);
    return 0;
}
