/**
 * @file
 * Per-tenant QoS contention experiment: a latency-critical
 * virtualized BTB shares each core's PVProxy with a
 * bandwidth-hungry virtualized AGT (every data reference is one
 * read-modify-write proxy operation), and the sweep walks the
 * tenants' QoS contracts from the legacy fair share ("equal", the
 * baseline) through increasing BTB weights to a hard-floor
 * reservation. Reported per setting: the BTB availability-redirect
 * rate (taken-branch lookups unanswered at fetch because the
 * prediction was still waiting on its PV fill — the latency the
 * paper's Section 4.3 sharing bet puts at risk), BTB hit rate,
 * per-tenant proxy drop rates, mean BTB fill latency, and the
 * matched-seed IPC delta against the equal-weight baseline.
 *
 * A second section runs the heterogeneous per-cluster tenant
 * matrix (qosHeterogeneous): a many-core machine whose four
 * cluster groups each run a different workload mix under a
 * different QoS contract, reported per cluster against the
 * matched-seed all-equal reference — the "unrelated tenants share
 * one machine" picture the per-tenant contracts exist for.
 *
 * Emits a BENCH_qos.json summary (stdout table + file) so
 * successive PRs can compare trajectories. With 16 or more cores
 * the default flips to auto-sharding (--shards 0).
 *
 *   qos_contention [--penalty N] [--btb-sets N] [--agt-sets N]
 *                  [--pvcache N] [--pv-prefetch N]
 *                  [--victim-entries N] [--batches N] [--cores N]
 *                  [--warmup-records N] [--measure-records N]
 *                  [--shards N] [--quantum N] [--bank-domains N]
 *                  [--dram-lanes N] [--overlap N]
 *                  [--hetero-cores N] [--hetero-batches N]
 *                  [--hetero-warmup N] [--hetero-measure N]
 *                  [--skip-hetero]
 *                  [--json-out FILE] [--csv] [--smoke]
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_common.hh"
#include "config/scenario.hh"
#include "harness/metrics.hh"
#include "harness/row_json.hh"
#include "harness/table.hh"
#include "util/args.hh"

using namespace pvsim;
using namespace pvsim::bench;

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    const bool smoke = args.getBool("smoke", false);
    const bool csv = args.getBool("csv", false);

    // --scenario FILE: take every sweep option from a scenario file
    // (kind "qos") instead of the flags below; the heterogeneous
    // matrix defaults to skipped since the scenario describes only
    // the contract sweep.
    const std::string scenario_file = args.getString("scenario", "");

    QosOptions opt;
    if (!scenario_file.empty()) {
        Scenario s;
        try {
            s = loadScenarioFile(scenario_file);
        } catch (const std::exception &e) {
            std::cerr << "qos_contention: " << e.what() << "\n";
            return 2;
        }
        if (s.kind != "qos") {
            std::cerr << "qos_contention: " << scenario_file
                      << " has kind \"" << s.kind
                      << "\", want \"qos\"\n";
            return 2;
        }
        opt = s.qos;
    } else {
        opt.penalty = args.getUint("penalty", 8);
        opt.btbSets =
            unsigned(args.getUint("btb-sets", opt.btbSets));
        opt.agtSets =
            unsigned(args.getUint("agt-sets", opt.agtSets));
        opt.pvCacheEntries =
            unsigned(args.getUint("pvcache", opt.pvCacheEntries));
        opt.pvPrefetch = unsigned(
            args.getUint("pv-prefetch", opt.pvPrefetch));
        opt.victimEntries = unsigned(
            args.getUint("victim-entries", opt.victimEntries));
        opt.numCores = int(args.getUint("cores", opt.numCores));
        opt.batches = unsigned(std::max<uint64_t>(
            1, args.getUint("batches", smoke ? 2 : 3)));
        opt.warmupRecords =
            args.getUint("warmup-records", smoke ? 1'000 : 20'000);
        opt.measureRecords =
            args.getUint("measure-records", smoke ? 3'000 : 60'000);
        // 16+ cores default to auto-sharding (--shards 0).
        opt.timingShards = unsigned(args.getUint(
            "shards", opt.numCores >= 16 ? 0 : opt.timingShards));
        opt.syncQuantum =
            Cycles(args.getUint("quantum", opt.syncQuantum));
        opt.l2BankDomains = unsigned(
            args.getUint("bank-domains", opt.l2BankDomains));
        opt.dramLanes =
            unsigned(args.getUint("dram-lanes", opt.dramLanes));
        opt.drainOverlap =
            unsigned(args.getUint("overlap", opt.drainOverlap));
    }
    const bool skip_hetero =
        args.getBool("skip-hetero", !scenario_file.empty());
    const unsigned hetero_cores =
        unsigned(args.getUint("hetero-cores", 64));
    const std::string json_out =
        args.getString("json-out", "BENCH_qos.json");

    // The heterogeneous matrix runs many-core: always sharded
    // (auto) unless the user pinned a shard count, with its own
    // (smaller) record budget.
    QosOptions hopt = opt;
    hopt.numCores = int(hetero_cores);
    hopt.timingShards =
        args.has("shards") ? opt.timingShards : 0;
    hopt.batches = unsigned(std::max<uint64_t>(
        1, args.getUint("hetero-batches", smoke ? 1 : 2)));
    hopt.warmupRecords =
        args.getUint("hetero-warmup", smoke ? 500 : 8'000);
    hopt.measureRecords =
        args.getUint("hetero-measure", smoke ? 1'500 : 24'000);

    // qosSweep runs every (setting, batch) System as one job
    // (bookkeeping shared with the scenario runner).
    const unsigned jobs_requested = harnessJobs();
    const unsigned jobs_effective = qosJobsEffective(opt);

    std::cout << "QoS contention: virtualized BTB (latency-critical)"
              << " vs AGT aggressor on one shared proxy per core, "
              << "penalty=" << opt.penalty << " cycles, PVCache="
              << opt.pvCacheEntries << ", " << opt.batches
              << " batches, jobs=" << jobs_effective
              << ", shards=" << opt.timingShards << "\n\n";

    std::vector<QosRow> rows = qosSweep(opt);

    TextTable t;
    t.setColumns({"setting", "IPC", "avail-redir", "BTB hit",
                  "BTB drop", "AGT drop", "fill lat", "IPC delta",
                  "protection", "wall", "ev/s"});
    for (const QosRow &r : rows) {
        t.addRow({r.label, fmtDouble(r.ipc, 4),
                  fmtDouble(r.availRedirectPct, 1) + "%",
                  fmtDouble(r.btbHitPct, 1) + "%",
                  fmtDouble(r.btbDropPct, 1) + "%",
                  fmtDouble(r.aggressorDropPct, 1) + "%",
                  fmtDouble(r.btbFillLatency, 1),
                  fmtDouble(r.ipcDeltaPct, 2) + "%",
                  fmtDouble(r.availImprovementPct, 1) + "%",
                  fmtWall(r.wallSeconds),
                  fmtEventsPerSec(r.eventsPerSec())});
    }
    if (csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);

    // ---- Heterogeneous per-cluster tenant matrix ------------------
    QosHeterogeneousResult het;
    if (!skip_hetero) {
        std::cout << "\nHeterogeneous tenant matrix: "
                  << hetero_cores << " cores in 4 cluster groups, "
                  << hopt.batches << " batch(es), shards="
                  << hopt.timingShards << " (0=auto)\n";
        het = qosHeterogeneous(hopt);
        TextTable ht;
        ht.setColumns({"cluster", "cores", "avail-redir",
                       "ref-redir", "protection", "BTB hit",
                       "BTB drop", "AGT drop"});
        for (const QosClusterRow &c : het.clusters) {
            ht.addRow({c.cluster, std::to_string(c.cores),
                       fmtDouble(c.availRedirectPct, 1) + "%",
                       fmtDouble(c.refAvailRedirectPct, 1) + "%",
                       fmtDouble(c.availImprovementPct, 1) + "%",
                       fmtDouble(c.btbHitPct, 1) + "%",
                       fmtDouble(c.btbDropPct, 1) + "%",
                       fmtDouble(c.aggressorDropPct, 1) + "%"});
        }
        if (csv)
            ht.printCsv(std::cout);
        else
            ht.print(std::cout);
        printHostCost("  reference", het.referenceRun.wallSeconds,
                      het.referenceRun.eventsExecuted,
                      het.referenceRun.timingShards);
        printHostCost("  protected", het.protectedRun.wallSeconds,
                      het.protectedRun.eventsExecuted,
                      het.protectedRun.timingShards);
        std::cout << "  bank_domains="
                  << het.protectedRun.l2BankDomains
                  << ", serial_fraction="
                  << fmtDouble(
                         100.0 * het.protectedRun.serialFraction(),
                         1)
                  << "%\n";
    }

    std::ostringstream js;
    js << "{\n  \"bench\": \"qos_contention\",\n"
       << "  \"penalty_cycles\": " << opt.penalty << ",\n"
       << "  \"btb_sets\": " << opt.btbSets << ",\n"
       << "  \"agt_sets\": " << opt.agtSets << ",\n"
       << "  \"pvcache_entries\": " << opt.pvCacheEntries << ",\n"
       << "  \"cores\": " << opt.numCores << ",\n"
       << "  \"batches\": " << opt.batches << ",\n"
       << "  \"warmup_records\": " << opt.warmupRecords << ",\n"
       << "  \"measure_records\": " << opt.measureRecords << ",\n"
       << "  \"jobs_requested\": " << jobs_requested << ",\n"
       << "  \"jobs_effective\": " << jobs_effective << ",\n"
       << "  \"timing_shards\": "
       << (rows.empty() ? opt.timingShards : rows[0].timingShards)
       << ",\n"
       << "  \"l2_bank_domains\": "
       << (rows.empty() ? opt.l2BankDomains : rows[0].l2BankDomains)
       << ",\n"
       << "  \"sync_quantum\": " << opt.syncQuantum << ",\n"
       << "  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i)
        js << "    " << qosRowJson(rows[i], jobs_effective)
           << (i + 1 < rows.size() ? "," : "") << "\n";
    js << "  ]";
    if (!skip_hetero) {
        js << ",\n  \"heterogeneous\": {\n"
           << "    \"cores\": " << hetero_cores << ",\n"
           << "    \"batches\": " << hopt.batches << ",\n"
           << "    \"warmup_records\": " << hopt.warmupRecords
           << ",\n"
           << "    \"measure_records\": " << hopt.measureRecords
           << ",\n"
           << "    \"reference\": {"
           << timedRunJson(het.referenceRun) << "},\n"
           << "    \"protected\": {"
           << timedRunJson(het.protectedRun) << "},\n"
           << "    \"clusters\": [\n";
        for (size_t i = 0; i < het.clusters.size(); ++i)
            js << "      " << qosClusterRowJson(het.clusters[i])
               << (i + 1 < het.clusters.size() ? "," : "") << "\n";
        js << "    ]\n  }";
    }
    js << "\n}\n";

    std::cout << "\n" << js.str();
    std::ofstream out(json_out);
    out << js.str();

    std::cout << "Reading: 'avail-redir' is the fraction of taken "
                 "branches whose BTB prediction was not available "
                 "at fetch (the PVCache line was still in flight); "
                 "each costs a full redirect. 'protection' is the "
                 "relative reduction of that rate vs the "
                 "equal-weight baseline — positive means the QoS "
                 "contract shields the BTB from the aggressor. The "
                 "aggressor pays with drops (predictor misses), "
                 "never with a stall.\n";

    // Sanity for CI: every setting must produce a real IPC, the
    // baseline must actually suffer contention (nonzero redirect
    // rate — otherwise there is nothing to protect), and outside
    // smoke runs at least one non-baseline setting must show real
    // protection. ~10%+ relative is the regression bar; the
    // recorded full runs sit well above it.
    if (rows.empty() || rows[0].availRedirectPct <= 0.0) {
        std::cerr << "FAIL: baseline shows no availability "
                     "redirects — no contention to measure\n";
        return 1;
    }
    double best = 0.0;
    for (const QosRow &r : rows) {
        if (r.ipc <= 0.0) {
            std::cerr << "FAIL: setting " << r.label
                      << " produced a zero IPC\n";
            return 1;
        }
        best = std::max(best, r.availImprovementPct);
    }
    if (!smoke && best < 10.0) {
        std::cerr << "FAIL: no setting protects the BTB by >= 10% "
                     "relative (best " << best << "%)\n";
        return 1;
    }
    // Heterogeneous matrix: both runs must produce real IPCs, and
    // every cluster must have seen real BTB traffic; outside smoke,
    // at least one protected cluster must show positive protection
    // over its all-equal reference.
    if (!skip_hetero) {
        if (het.protectedRun.ipc <= 0.0 ||
            het.referenceRun.ipc <= 0.0) {
            std::cerr << "FAIL: heterogeneous matrix produced a "
                         "zero IPC\n";
            return 1;
        }
        double het_best = 0.0;
        for (const QosClusterRow &c : het.clusters) {
            if (c.btbHitPct <= 0.0) {
                std::cerr << "FAIL: cluster " << c.cluster
                          << " scored no BTB traffic\n";
                return 1;
            }
            if (c.btbWeight > c.aggressorWeight ||
                c.contract == "equal+floor") {
                het_best =
                    std::max(het_best, c.availImprovementPct);
            }
        }
        if (!smoke && het_best <= 0.0) {
            std::cerr << "FAIL: no protected cluster improves BTB "
                         "availability over the all-equal "
                         "reference (best "
                      << het_best << "%)\n";
            return 1;
        }
    }
    return 0;
}
