/**
 * @file
 * Per-tenant QoS contention experiment: a latency-critical
 * virtualized BTB shares each core's PVProxy with a
 * bandwidth-hungry virtualized AGT (every data reference is one
 * read-modify-write proxy operation), and the sweep walks the
 * tenants' QoS contracts from the legacy fair share ("equal", the
 * baseline) through increasing BTB weights to a hard-floor
 * reservation. Reported per setting: the BTB availability-redirect
 * rate (taken-branch lookups unanswered at fetch because the
 * prediction was still waiting on its PV fill — the latency the
 * paper's Section 4.3 sharing bet puts at risk), BTB hit rate,
 * per-tenant proxy drop rates, mean BTB fill latency, and the
 * matched-seed IPC delta against the equal-weight baseline.
 *
 * Emits a BENCH_qos.json summary (stdout table + file) so
 * successive PRs can compare trajectories.
 *
 *   qos_contention [--penalty N] [--btb-sets N] [--agt-sets N]
 *                  [--pvcache N] [--batches N] [--cores N]
 *                  [--warmup-records N] [--measure-records N]
 *                  [--shards N] [--quantum N]
 *                  [--json-out FILE] [--csv] [--smoke]
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_common.hh"
#include "harness/metrics.hh"
#include "harness/table.hh"
#include "util/args.hh"

using namespace pvsim;
using namespace pvsim::bench;

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    const bool smoke = args.getBool("smoke", false);
    const bool csv = args.getBool("csv", false);

    QosOptions opt;
    opt.penalty = args.getUint("penalty", 8);
    opt.btbSets = unsigned(args.getUint("btb-sets", opt.btbSets));
    opt.agtSets = unsigned(args.getUint("agt-sets", opt.agtSets));
    opt.pvCacheEntries =
        unsigned(args.getUint("pvcache", opt.pvCacheEntries));
    opt.numCores = int(args.getUint("cores", opt.numCores));
    opt.batches = unsigned(std::max<uint64_t>(
        1, args.getUint("batches", smoke ? 2 : 3)));
    opt.warmupRecords =
        args.getUint("warmup-records", smoke ? 1'000 : 20'000);
    opt.measureRecords =
        args.getUint("measure-records", smoke ? 3'000 : 60'000);
    opt.timingShards =
        unsigned(args.getUint("shards", opt.timingShards));
    opt.syncQuantum =
        Cycles(args.getUint("quantum", opt.syncQuantum));
    const std::string json_out =
        args.getString("json-out", "BENCH_qos.json");

    const unsigned total_jobs =
        unsigned(presetQosSettings().size()) * opt.batches;
    const unsigned jobs_requested = harnessJobs();
    const unsigned jobs_effective = effectiveHarnessJobs(total_jobs);

    std::cout << "QoS contention: virtualized BTB (latency-critical)"
              << " vs AGT aggressor on one shared proxy per core, "
              << "penalty=" << opt.penalty << " cycles, PVCache="
              << opt.pvCacheEntries << ", " << opt.batches
              << " batches, jobs=" << jobs_effective
              << ", shards=" << opt.timingShards << "\n\n";

    std::vector<QosRow> rows = qosSweep(opt);

    TextTable t;
    t.setColumns({"setting", "IPC", "avail-redir", "BTB hit",
                  "BTB drop", "AGT drop", "fill lat", "IPC delta",
                  "protection", "wall", "ev/s"});
    for (const QosRow &r : rows) {
        t.addRow({r.label, fmtDouble(r.ipc, 4),
                  fmtDouble(r.availRedirectPct, 1) + "%",
                  fmtDouble(r.btbHitPct, 1) + "%",
                  fmtDouble(r.btbDropPct, 1) + "%",
                  fmtDouble(r.aggressorDropPct, 1) + "%",
                  fmtDouble(r.btbFillLatency, 1),
                  fmtDouble(r.ipcDeltaPct, 2) + "%",
                  fmtDouble(r.availImprovementPct, 1) + "%",
                  fmtWall(r.wallSeconds),
                  fmtEventsPerSec(r.eventsPerSec())});
    }
    if (csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);

    std::ostringstream js;
    js << "{\n  \"bench\": \"qos_contention\",\n"
       << "  \"penalty_cycles\": " << opt.penalty << ",\n"
       << "  \"btb_sets\": " << opt.btbSets << ",\n"
       << "  \"agt_sets\": " << opt.agtSets << ",\n"
       << "  \"pvcache_entries\": " << opt.pvCacheEntries << ",\n"
       << "  \"cores\": " << opt.numCores << ",\n"
       << "  \"batches\": " << opt.batches << ",\n"
       << "  \"warmup_records\": " << opt.warmupRecords << ",\n"
       << "  \"measure_records\": " << opt.measureRecords << ",\n"
       << "  \"jobs_requested\": " << jobs_requested << ",\n"
       << "  \"jobs_effective\": " << jobs_effective << ",\n"
       << "  \"timing_shards\": "
       << (rows.empty() ? opt.timingShards : rows[0].timingShards)
       << ",\n"
       << "  \"sync_quantum\": " << opt.syncQuantum << ",\n"
       << "  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const QosRow &r = rows[i];
        js << "    {\"setting\": \"" << r.label
           << "\", \"btb_weight\": " << r.btbWeight
           << ", \"aggressor_weight\": " << r.aggressorWeight
           << ", \"ipc\": " << r.ipc
           << ", \"avail_redirect_pct\": " << r.availRedirectPct
           << ", \"btb_hit_pct\": " << r.btbHitPct
           << ", \"btb_drop_pct\": " << r.btbDropPct
           << ", \"aggressor_drop_pct\": " << r.aggressorDropPct
           << ", \"btb_fill_latency\": " << r.btbFillLatency
           << ", \"ipc_delta_pct\": " << r.ipcDeltaPct
           << ", \"avail_improvement_pct\": "
           << r.availImprovementPct
           << ", \"wall_seconds\": " << r.wallSeconds
           << ", \"events\": " << r.eventsExecuted
           << ", \"events_per_sec\": " << r.eventsPerSec() << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    js << "  ]\n}\n";

    std::cout << "\n" << js.str();
    std::ofstream out(json_out);
    out << js.str();

    std::cout << "Reading: 'avail-redir' is the fraction of taken "
                 "branches whose BTB prediction was not available "
                 "at fetch (the PVCache line was still in flight); "
                 "each costs a full redirect. 'protection' is the "
                 "relative reduction of that rate vs the "
                 "equal-weight baseline — positive means the QoS "
                 "contract shields the BTB from the aggressor. The "
                 "aggressor pays with drops (predictor misses), "
                 "never with a stall.\n";

    // Sanity for CI: every setting must produce a real IPC, the
    // baseline must actually suffer contention (nonzero redirect
    // rate — otherwise there is nothing to protect), and outside
    // smoke runs at least one non-baseline setting must show real
    // protection. ~10%+ relative is the regression bar; the
    // recorded full runs sit well above it.
    if (rows.empty() || rows[0].availRedirectPct <= 0.0) {
        std::cerr << "FAIL: baseline shows no availability "
                     "redirects — no contention to measure\n";
        return 1;
    }
    double best = 0.0;
    for (const QosRow &r : rows) {
        if (r.ipc <= 0.0) {
            std::cerr << "FAIL: setting " << r.label
                      << " produced a zero IPC\n";
            return 1;
        }
        best = std::max(best, r.availImprovementPct);
    }
    if (!smoke && best < 10.0) {
        std::cerr << "FAIL: no setting protects the BTB by >= 10% "
                     "relative (best " << best << "%)\n";
        return 1;
    }
    return 0;
}
