/**
 * @file
 * Reproduces paper Figure 5: the full table-size sweep (Infinite,
 * 1K-16a, then 1K down to 8 sets at 11 ways) for the three
 * representative workloads Apache, Oracle and TPC-H Qry 17.
 */

#include <iostream>

#include "bench_common.hh"

using namespace pvsim;
using namespace pvsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);
    std::vector<std::string> workloads =
        Args(argc, argv).has("workloads")
            ? opt.workloads
            : std::vector<std::string>{"apache", "oracle", "qry17"};

    std::cout << "Figure 5: SMS potential, full predictor-size "
                 "sweep (representative workloads)\n\n";

    TextTable t;
    t.setColumns({"workload", "config", "covered", "uncovered",
                  "overpred"});

    for (const auto &wl : workloads) {
        {
            FunctionalResult r =
                runFunctional(smsInfiniteConfig(wl), opt);
            t.addRow({wl, "Infinite",
                      fmtPct(r.coverage.coveredPct()),
                      fmtPct(r.coverage.uncoveredPct()),
                      fmtPct(r.coverage.overpredictionPct())});
        }
        const PhtGeometry geoms[] = {
            {1024, 16}, {1024, 11}, {512, 11}, {256, 11},
            {128, 11},  {64, 11},   {32, 11},  {16, 11},
            {8, 11}};
        for (const PhtGeometry &g : geoms) {
            FunctionalResult r = runFunctional(smsConfig(wl, g), opt);
            t.addRow({wl, g.label(), fmtPct(r.coverage.coveredPct()),
                      fmtPct(r.coverage.uncoveredPct()),
                      fmtPct(r.coverage.overpredictionPct())});
        }
    }
    emit(t, opt);

    std::cout << "Paper shape: every workload loses significant "
                 "coverage as entries shrink; the knee differs per "
                 "workload (Oracle collapses earliest).\n";
    return 0;
}
