/**
 * @file
 * Reproduces paper Table 3: dedicated storage for the predictor
 * configurations, plus the virtualized design's on-chip cost for
 * comparison. Tags-and-patterns split matches the paper's columns.
 *
 * Note: the paper's pattern column for the 16- and 8-set rows
 * implies 40-bit patterns, inconsistent with its own 1K rows (32-bit
 * patterns); this model uses 32-bit patterns throughout.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/virt_pht.hh"

using namespace pvsim;
using namespace pvsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);

    std::cout << "Table 3: storage for different predictor "
                 "configurations\n\n";

    TextTable t;
    t.setColumns({"configuration", "tags", "patterns", "total",
                  "paper total"});

    struct Row {
        PhtGeometry geom;
        const char *paper;
    };
    const Row rows[] = {
        {{1024, 16}, "86KB"},
        {{1024, 11}, "59.125KB"},
        {{512, 11}, "-"},
        {{256, 11}, "-"},
        {{128, 11}, "-"},
        {{64, 11}, "-"},
        {{32, 11}, "-"},
        {{16, 11}, "1.225KB"},
        {{8, 11}, "0.623KB"},
    };
    for (const Row &r : rows) {
        uint64_t tag_bits = r.geom.entries() * r.geom.tagBits();
        uint64_t pat_bits = r.geom.entries() * 32;
        t.addRow({r.geom.label(), fmtBytes(tag_bits / 8.0),
                  fmtBytes(pat_bits / 8.0),
                  fmtBytes(r.geom.storageBits() / 8.0), r.paper});
    }
    emit(t, opt);

    // The virtualized design's dedicated cost, for contrast.
    SimContext ctx(SimMode::Functional);
    VirtPhtParams vp; // defaults: 1K-11a, 8-entry PVCache
    VirtualizedPht vpht(ctx, vp, 0xB0000000);
    auto b = vpht.proxy().storageBreakdown();
    std::cout << "Virtualized 1K-11a (SMS-PV8): "
              << fmtBytes(b.totalBytes())
              << " dedicated on-chip (paper: 889B), "
              << fmtBytes(double(vpht.proxy().layout().tableBytes()))
              << " reserved in main memory per core (paper: 64KB)\n"
              << "Reduction vs dedicated 1K-11a: "
              << fmtDouble((PhtGeometry{1024, 11}.storageBits()) /
                               double(vpht.storageBits()),
                           1)
              << "x (paper: 68x)\n";
    return 0;
}
