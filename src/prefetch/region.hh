/**
 * @file
 * Spatial region geometry (paper Section 3.1): memory is split into
 * contiguous regions of a fixed number of cache blocks; a spatial
 * pattern is a bit vector over the blocks of one region.
 */

#ifndef PVSIM_PREFETCH_REGION_HH
#define PVSIM_PREFETCH_REGION_HH

#include <cstdint>

#include "sim/types.hh"
#include "util/intmath.hh"
#include "util/logging.hh"

namespace pvsim {

/** Spatial pattern: bit i set = block i of the region was accessed. */
using SpatialPattern = uint32_t;

/** Geometry of spatial regions. */
class RegionGeometry
{
  public:
    /** @param blocks_per_region Paper default: 32 (2 KB regions). */
    explicit RegionGeometry(unsigned blocks_per_region = 32)
        : blocks_(blocks_per_region)
    {
        pv_assert(isPowerOf2(blocks_), "region blocks must be 2^n");
        pv_assert(blocks_ <= 32,
                  "patterns are 32-bit; regions larger than 32 "
                  "blocks are not representable");
        offsetBits_ = unsigned(floorLog2(blocks_));
    }

    unsigned blocksPerRegion() const { return blocks_; }
    unsigned offsetBits() const { return offsetBits_; }
    Addr regionBytes() const { return Addr(blocks_) * kBlockBytes; }

    /** Base address of the region containing a. */
    Addr regionBase(Addr a) const { return a & ~(regionBytes() - 1); }

    /** Block index of a within its region (0..blocks-1). */
    unsigned
    blockOffset(Addr a) const
    {
        return unsigned((a >> kBlockShift) & (blocks_ - 1));
    }

    /** Region tag: unique id of the region (base >> log2(bytes)). */
    Addr
    regionTag(Addr a) const
    {
        return a / regionBytes();
    }

    /** Address of block `offset` within the region containing a. */
    Addr
    blockAddr(Addr region_base, unsigned offset) const
    {
        pv_assert(offset < blocks_, "offset outside region");
        return region_base + Addr(offset) * kBlockBytes;
    }

  private:
    unsigned blocks_;
    unsigned offsetBits_;
};

} // namespace pvsim

#endif // PVSIM_PREFETCH_REGION_HH
