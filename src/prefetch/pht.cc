#include "prefetch/pht.hh"

namespace pvsim {

SetAssocPht::SetAssocPht(const PhtGeometry &geom) : geom_(geom)
{
    pv_assert(geom_.numSets > 0 && geom_.assoc > 0,
              "PHT geometry must be non-empty");
    sets_.resize(geom_.numSets);
    for (auto &set : sets_)
        set.resize(geom_.assoc);
}

void
SetAssocPht::lookup(PhtKey key, LookupCallback cb)
{
    auto &set = sets_[setIndex(key)];
    uint32_t tag = tagOf(key);
    for (auto &e : set) {
        if (e.valid && e.tag == tag) {
            e.lastTouch = ++touchCounter_;
            cb(true, e.pattern);
            return;
        }
    }
    cb(false, 0);
}

void
SetAssocPht::insert(PhtKey key, SpatialPattern pattern)
{
    auto &set = sets_[setIndex(key)];
    uint32_t tag = tagOf(key);

    Entry *victim = nullptr;
    for (auto &e : set) {
        if (e.valid && e.tag == tag) {
            // Update in place.
            e.pattern = pattern;
            e.lastTouch = ++touchCounter_;
            return;
        }
        if (!victim && !e.valid)
            victim = &e;
    }
    if (!victim) {
        victim = &set[0];
        for (auto &e : set) {
            if (e.lastTouch < victim->lastTouch)
                victim = &e;
        }
    }
    victim->valid = true;
    victim->tag = tag;
    victim->pattern = pattern;
    victim->lastTouch = ++touchCounter_;
}

bool
SetAssocPht::probe(PhtKey key, SpatialPattern &out) const
{
    const auto &set = sets_[key % geom_.numSets];
    uint32_t tag = key / geom_.numSets;
    for (const auto &e : set) {
        if (e.valid && e.tag == tag) {
            out = e.pattern;
            return true;
        }
    }
    return false;
}

} // namespace pvsim
