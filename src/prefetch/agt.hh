/**
 * @file
 * Active Generation Table (paper Section 3.1): tracks spatial
 * pattern construction for regions with an in-flight generation.
 * Split into a filter table (regions with exactly one access so far;
 * filters one-off touches out of the PHT) and an accumulation table
 * (regions with two or more distinct blocks touched).
 */

#ifndef PVSIM_PREFETCH_AGT_HH
#define PVSIM_PREFETCH_AGT_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "prefetch/pht.hh"
#include "prefetch/region.hh"
#include "sim/types.hh"

namespace pvsim {

/** AGT configuration (paper Section 4.1 tuned values). */
struct AgtParams {
    unsigned filterEntries = 32;
    unsigned accumEntries = 64;
};

/**
 * The AGT proper. The owner feeds it demand accesses and
 * eviction/invalidation events; completed generations are emitted
 * through a callback as (key, pattern) pairs ready for PHT insertion.
 */
class ActiveGenerationTable
{
  public:
    /** Fired when a generation ends with >= 2 accessed blocks. */
    using GenerationSink =
        std::function<void(PhtKey key, SpatialPattern pattern)>;

    ActiveGenerationTable(const AgtParams &params,
                          const RegionGeometry &geom,
                          GenerationSink sink);

    /**
     * Record a demand access.
     * @return true if this access *triggered* a new generation (the
     *         caller should consult the PHT for a prediction).
     */
    bool recordAccess(Addr pc, Addr addr);

    /**
     * A block left the L1 (replacement or invalidation). Ends the
     * generation of its region if that block was accessed during
     * the generation (paper Section 3.1).
     */
    void blockRemoved(Addr addr);

    /** Flush all active generations into the PHT (end of run). */
    void flush();

    /** Active region count (tests). */
    unsigned activeFilterEntries() const;
    unsigned activeAccumEntries() const;

    /** True if the region containing addr has an active generation. */
    bool isActive(Addr addr) const;

    /** Accumulated pattern so far for addr's region (0 if inactive). */
    SpatialPattern patternFor(Addr addr) const;

    /**
     * Dedicated storage in bits, for the Section 4.6 style
     * accounting ("the AGT needs less than one kilobyte").
     */
    uint64_t storageBits(unsigned region_tag_bits = 26) const;

    // Statistics (read by the SMS wrapper).
    uint64_t generationsEnded = 0;
    uint64_t generationsFiltered = 0; ///< died with a single access
    uint64_t accumEvictions = 0;      ///< capacity-ended generations
    uint64_t filterEvictions = 0;

  private:
    struct FilterEntry {
        bool valid = false;
        Addr regionTag = 0;
        Addr pc = 0;
        uint8_t offset = 0;
        uint64_t lastTouch = 0;
    };

    struct AccumEntry {
        bool valid = false;
        Addr regionTag = 0;
        Addr pc = 0;     ///< trigger PC
        uint8_t offset = 0; ///< trigger offset
        SpatialPattern pattern = 0;
        uint64_t lastTouch = 0;
    };

    FilterEntry *findFilter(Addr region_tag);
    AccumEntry *findAccum(Addr region_tag);
    void endGeneration(AccumEntry &e);

    AgtParams params_;
    RegionGeometry geom_;
    GenerationSink sink_;
    std::vector<FilterEntry> filter_;
    std::vector<AccumEntry> accum_;
    uint64_t touchCounter_ = 0;
};

} // namespace pvsim

#endif // PVSIM_PREFETCH_AGT_HH
