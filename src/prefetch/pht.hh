/**
 * @file
 * Pattern History Table interface and the dedicated (non-virtualized)
 * implementations. The PHT maps a 21-bit key — 16 PC bits
 * concatenated with the 5-bit trigger block offset (paper
 * Section 3.2.1) — to a 32-bit spatial pattern.
 *
 * The interface is callback-based: a dedicated table answers a
 * lookup synchronously, while the virtualized table (core/virt_pht)
 * may answer later, after its PVProxy fetches the set from the
 * memory hierarchy. This non-uniform latency is exactly the property
 * the paper argues SMS tolerates (Section 2.4).
 */

#ifndef PVSIM_PREFETCH_PHT_HH
#define PVSIM_PREFETCH_PHT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "prefetch/region.hh"
#include "sim/sim_object.hh"
#include "stats/stat.hh"
#include "util/bitfield.hh"

namespace pvsim {

/** 21-bit PHT key: PC[15:0] << 5 | trigger offset[4:0]. */
using PhtKey = uint32_t;

/** Bits of PC used in the key (paper: 16). */
constexpr unsigned kPhtPcBits = 16;
/** Bits of trigger offset (paper: 5, for 32-block regions). */
constexpr unsigned kPhtOffsetBits = 5;
constexpr unsigned kPhtKeyBits = kPhtPcBits + kPhtOffsetBits;

/**
 * Build a PHT key. Instruction addresses are 4-byte aligned, so the
 * PC slice starts at bit 2.
 */
constexpr PhtKey
makePhtKey(Addr pc, unsigned trigger_offset)
{
    uint64_t pc_slice = bits(pc, 2 + kPhtPcBits - 1, 2);
    return PhtKey((pc_slice << kPhtOffsetBits) |
                  (trigger_offset & mask(kPhtOffsetBits)));
}

/** Abstract PHT: the predictor table the paper virtualizes. */
class PatternHistoryTable
{
  public:
    using LookupCallback =
        std::function<void(bool found, SpatialPattern pattern)>;

    virtual ~PatternHistoryTable() = default;

    /**
     * Retrieve the pattern for key. The callback fires exactly once:
     * immediately for dedicated tables, possibly later for
     * virtualized ones.
     */
    virtual void lookup(PhtKey key, LookupCallback cb) = 0;

    /** Store (or update) the pattern for key. */
    virtual void insert(PhtKey key, SpatialPattern pattern) = 0;

    /** Dedicated on-chip storage in bits (Table 3 accounting). */
    virtual uint64_t storageBits() const = 0;

    /** Human-readable configuration name (e.g. "1K-11a"). */
    virtual std::string phtName() const = 0;
};

/** Unbounded PHT: the paper's "Infinite" configuration (Figure 4). */
class InfinitePht : public PatternHistoryTable
{
  public:
    void
    lookup(PhtKey key, LookupCallback cb) override
    {
        auto it = map_.find(key);
        if (it == map_.end())
            cb(false, 0);
        else
            cb(true, it->second);
    }

    void
    insert(PhtKey key, SpatialPattern pattern) override
    {
        map_[key] = pattern;
    }

    uint64_t
    storageBits() const override
    {
        // Unbounded by definition; report the current footprint.
        return uint64_t(map_.size()) * (kPhtKeyBits + 32);
    }

    std::string phtName() const override { return "Infinite"; }

    size_t size() const { return map_.size(); }

  private:
    std::unordered_map<PhtKey, SpatialPattern> map_;
};

/** Geometry of a set-associative PHT. */
struct PhtGeometry {
    unsigned numSets = 1024;
    unsigned assoc = 11;

    /** Short name like "1K-11a" (paper's notation). */
    std::string
    label() const
    {
        std::string sets = numSets >= 1024 &&
                                   numSets % 1024 == 0
                               ? std::to_string(numSets / 1024) + "K"
                               : std::to_string(numSets);
        return sets + "-" + std::to_string(assoc) + "a";
    }

    /** Tag bits stored per entry given the 21-bit key space. */
    unsigned
    tagBits() const
    {
        unsigned index_bits = unsigned(ceilLog2(numSets));
        return index_bits >= kPhtKeyBits
                   ? 0
                   : kPhtKeyBits - index_bits;
    }

    /** Total entries. */
    uint64_t entries() const { return uint64_t(numSets) * assoc; }

    /** Dedicated storage in bits: tags + 32-bit patterns. */
    uint64_t
    storageBits() const
    {
        return entries() * (uint64_t(tagBits()) + 32);
    }
};

/**
 * Dedicated set-associative PHT with LRU replacement: the baseline
 * the paper starts from (1K sets x 16 or 11 ways) and the small
 * configurations it compares against (16/8 sets).
 */
class SetAssocPht : public PatternHistoryTable
{
  public:
    explicit SetAssocPht(const PhtGeometry &geom);

    void lookup(PhtKey key, LookupCallback cb) override;
    void insert(PhtKey key, SpatialPattern pattern) override;

    uint64_t storageBits() const override
    {
        return geom_.storageBits();
    }

    std::string phtName() const override { return geom_.label(); }

    const PhtGeometry &geometry() const { return geom_; }

    /** Direct probe without LRU update (tests). */
    bool probe(PhtKey key, SpatialPattern &out) const;

  private:
    struct Entry {
        bool valid = false;
        uint32_t tag = 0;
        SpatialPattern pattern = 0;
        uint64_t lastTouch = 0;
    };

    unsigned setIndex(PhtKey key) const { return key % geom_.numSets; }
    uint32_t tagOf(PhtKey key) const { return key / geom_.numSets; }

    PhtGeometry geom_;
    std::vector<std::vector<Entry>> sets_;
    uint64_t touchCounter_ = 0;
};

} // namespace pvsim

#endif // PVSIM_PREFETCH_PHT_HH
