/**
 * @file
 * Spatial Memory Streaming prefetcher (Somogyi et al., ISCA 2006;
 * paper Section 3). Observes one core's L1D demand stream, builds
 * spatial patterns in the AGT, learns them in a PHT, and on each
 * triggering access streams the predicted blocks of the region into
 * the L1.
 *
 * The PHT is supplied by the caller: a dedicated table
 * (SetAssocPht/InfinitePht) gives the original SMS; a VirtualizedPht
 * (src/core) gives the paper's PV design. The SMS engine itself is
 * identical in both cases — exactly the property PV relies on
 * ("the optimization engine remains unchanged", Section 2).
 */

#ifndef PVSIM_PREFETCH_SMS_HH
#define PVSIM_PREFETCH_SMS_HH

#include <string>

#include "mem/cache.hh"
#include "prefetch/agt.hh"
#include "prefetch/pht.hh"
#include "prefetch/region.hh"
#include "sim/sim_object.hh"
#include "stats/stat.hh"

namespace pvsim {

/** SMS configuration (paper Section 4.1 tuned values). */
struct SmsParams {
    std::string name = "sms";
    AgtParams agt;
    unsigned blocksPerRegion = 32;
    /**
     * Cap on prefetches issued per trigger (resource throttle; 32
     * allows the full region, as the paper's streaming engine does
     * "as fast as available bandwidth and resources allow").
     */
    unsigned maxPrefetchesPerTrigger = 32;
};

/** The SMS optimization engine. */
class SmsPrefetcher : public SimObject, public CacheListener
{
  public:
    /**
     * @param target The L1D this prefetcher observes and fills.
     * @param pht    Pattern history table (dedicated or virtualized);
     *               not owned.
     */
    SmsPrefetcher(SimContext &ctx, const SmsParams &params,
                  Cache *target, PatternHistoryTable *pht);

    // CacheListener (wired to the target L1D)
    void onAccess(Addr pc, Addr addr, bool is_write, bool hit,
                  bool prefetched_hit) override;
    void onEvict(Addr block_addr) override;
    void onInvalidate(Addr block_addr) override;

    /** Flush in-flight generations into the PHT (end of a run). */
    void flush() { agt_.flush(); }

    const ActiveGenerationTable &agt() const { return agt_; }
    PatternHistoryTable *pht() { return pht_; }
    const RegionGeometry &geometry() const { return geom_; }

    /** AGT storage in bits (the paper: "less than one kilobyte"). */
    uint64_t agtStorageBits() const { return agt_.storageBits(); }

    stats::Scalar triggers;
    stats::Scalar phtHits;
    stats::Scalar phtMisses;
    stats::Scalar generationsStored;
    stats::Scalar prefetchCandidates;
    stats::Scalar prefetchesIssued;

  private:
    /** PHT lookup completion: stream the predicted blocks. */
    void prediction(Addr region_base, unsigned trigger_offset,
                    Addr pc, bool found, SpatialPattern pattern);

    SmsParams params_;
    RegionGeometry geom_;
    Cache *target_;
    PatternHistoryTable *pht_;
    ActiveGenerationTable agt_;
};

/**
 * Next-line instruction prefetcher (paper Table 1: "each core
 * implements a next-line instruction prefetcher"): on every demand
 * miss to block B, prefetch B+1.
 */
class NextLinePrefetcher : public SimObject, public CacheListener
{
  public:
    NextLinePrefetcher(SimContext &ctx, const std::string &name,
                       Cache *target);

    void onAccess(Addr pc, Addr addr, bool is_write, bool hit,
                  bool prefetched_hit) override;
    void onEvict(Addr) override {}
    void onInvalidate(Addr) override {}

    stats::Scalar prefetchesIssued;

  private:
    Cache *target_;
};

} // namespace pvsim

#endif // PVSIM_PREFETCH_SMS_HH
