#include "prefetch/stride.hh"

#include "util/intmath.hh"
#include "util/logging.hh"

namespace pvsim {

StridePrefetcher::StridePrefetcher(SimContext &ctx,
                                   const StrideParams &params,
                                   Cache *target)
    : SimObject(ctx, nullptr, params.name),
      lookups(this, "lookups", "table lookups"),
      strideConfirms(this, "stride_confirms",
                     "accesses confirming the recorded stride"),
      prefetchesIssued(this, "prefetches_issued",
                       "prefetches accepted by the cache"),
      params_(params), target_(target)
{
    pv_assert(target_ != nullptr, "stride prefetcher needs a cache");
    pv_assert(params_.tableAssoc > 0 &&
                  params_.tableEntries % params_.tableAssoc == 0,
              "table entries must divide evenly into ways");
    numSets_ = params_.tableEntries / params_.tableAssoc;
    table_.resize(params_.tableEntries);
}

StridePrefetcher::Entry *
StridePrefetcher::find(Addr pc)
{
    size_t base = (pc >> 2) % numSets_ * params_.tableAssoc;
    for (unsigned w = 0; w < params_.tableAssoc; ++w) {
        Entry &e = table_[base + w];
        if (e.valid && e.pcTag == pc)
            return &e;
    }
    return nullptr;
}

StridePrefetcher::Entry &
StridePrefetcher::allocate(Addr pc)
{
    size_t base = (pc >> 2) % numSets_ * params_.tableAssoc;
    Entry *victim = &table_[base];
    for (unsigned w = 0; w < params_.tableAssoc; ++w) {
        Entry &e = table_[base + w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastTouch < victim->lastTouch)
            victim = &e;
    }
    victim->valid = true;
    victim->pcTag = pc;
    victim->stride = 0;
    victim->confidence = 0;
    return *victim;
}

void
StridePrefetcher::onAccess(Addr pc, Addr addr, bool /*is_write*/,
                           bool /*hit*/, bool /*prefetched_hit*/)
{
    ++lookups;
    Entry *e = find(pc);
    if (!e) {
        Entry &n = allocate(pc);
        n.lastAddr = addr;
        n.lastTouch = ++touchCounter_;
        return;
    }

    int64_t delta = int64_t(addr) - int64_t(e->lastAddr);
    if (delta != 0 && delta == e->stride) {
        ++strideConfirms;
        if (e->confidence < 15)
            ++e->confidence;
    } else {
        e->stride = delta;
        e->confidence = e->confidence > 0 ? e->confidence - 1 : 0;
    }
    e->lastAddr = addr;
    e->lastTouch = ++touchCounter_;

    if (e->confidence >= params_.threshold && e->stride != 0) {
        for (unsigned d = 1; d <= params_.degree; ++d) {
            int64_t target =
                int64_t(addr) + e->stride * int64_t(d);
            if (target <= 0)
                break;
            if (target_->issuePrefetch(Addr(target), pc))
                ++prefetchesIssued;
        }
    }
}

uint64_t
StridePrefetcher::storageBits() const
{
    // valid + pc tag (30b) + last addr (42b) + stride (16b) +
    // confidence (4b) per entry.
    return uint64_t(params_.tableEntries) * (1 + 30 + 42 + 16 + 4);
}

} // namespace pvsim
