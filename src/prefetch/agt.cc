#include "prefetch/agt.hh"

#include "util/logging.hh"

namespace pvsim {

ActiveGenerationTable::ActiveGenerationTable(
    const AgtParams &params, const RegionGeometry &geom,
    GenerationSink sink)
    : params_(params), geom_(geom), sink_(std::move(sink))
{
    pv_assert(params_.filterEntries > 0 && params_.accumEntries > 0,
              "AGT tables must be non-empty");
    filter_.resize(params_.filterEntries);
    accum_.resize(params_.accumEntries);
}

ActiveGenerationTable::FilterEntry *
ActiveGenerationTable::findFilter(Addr region_tag)
{
    for (auto &e : filter_) {
        if (e.valid && e.regionTag == region_tag)
            return &e;
    }
    return nullptr;
}

ActiveGenerationTable::AccumEntry *
ActiveGenerationTable::findAccum(Addr region_tag)
{
    for (auto &e : accum_) {
        if (e.valid && e.regionTag == region_tag)
            return &e;
    }
    return nullptr;
}

void
ActiveGenerationTable::endGeneration(AccumEntry &e)
{
    ++generationsEnded;
    sink_(makePhtKey(e.pc, e.offset), e.pattern);
    e.valid = false;
}

bool
ActiveGenerationTable::recordAccess(Addr pc, Addr addr)
{
    Addr tag = geom_.regionTag(addr);
    unsigned offset = geom_.blockOffset(addr);

    if (AccumEntry *acc = findAccum(tag)) {
        acc->pattern |= SpatialPattern(1) << offset;
        acc->lastTouch = ++touchCounter_;
        return false;
    }

    if (FilterEntry *f = findFilter(tag)) {
        if (f->offset == offset) {
            // Repeat access to the trigger block: still one block.
            f->lastTouch = ++touchCounter_;
            return false;
        }
        // Second distinct block: promote to the accumulation table.
        AccumEntry *slot = nullptr;
        for (auto &e : accum_) {
            if (!e.valid) {
                slot = &e;
                break;
            }
        }
        if (!slot) {
            // Capacity: the LRU active generation ends early and its
            // pattern is transferred to the PHT.
            slot = &accum_[0];
            for (auto &e : accum_) {
                if (e.lastTouch < slot->lastTouch)
                    slot = &e;
            }
            ++accumEvictions;
            endGeneration(*slot);
        }
        slot->valid = true;
        slot->regionTag = tag;
        slot->pc = f->pc;
        slot->offset = f->offset;
        slot->pattern = (SpatialPattern(1) << f->offset) |
                        (SpatialPattern(1) << offset);
        slot->lastTouch = ++touchCounter_;
        f->valid = false;
        return false;
    }

    // No active generation: this is a triggering access.
    FilterEntry *slot = nullptr;
    for (auto &e : filter_) {
        if (!e.valid) {
            slot = &e;
            break;
        }
    }
    if (!slot) {
        // Filter eviction is silent: a one-access region is exactly
        // what the filter exists to keep out of the PHT.
        slot = &filter_[0];
        for (auto &e : filter_) {
            if (e.lastTouch < slot->lastTouch)
                slot = &e;
        }
        ++filterEvictions;
        ++generationsFiltered;
    }
    slot->valid = true;
    slot->regionTag = tag;
    slot->pc = pc;
    slot->offset = uint8_t(offset);
    slot->lastTouch = ++touchCounter_;
    return true;
}

void
ActiveGenerationTable::blockRemoved(Addr addr)
{
    Addr tag = geom_.regionTag(addr);
    unsigned offset = geom_.blockOffset(addr);

    if (AccumEntry *acc = findAccum(tag)) {
        if (acc->pattern & (SpatialPattern(1) << offset))
            endGeneration(*acc);
        return;
    }
    if (FilterEntry *f = findFilter(tag)) {
        if (f->offset == offset) {
            // The lone accessed block left the cache: the generation
            // ends with one access and is filtered out.
            f->valid = false;
            ++generationsFiltered;
        }
    }
}

void
ActiveGenerationTable::flush()
{
    for (auto &e : accum_) {
        if (e.valid)
            endGeneration(e);
    }
    for (auto &e : filter_) {
        if (e.valid) {
            e.valid = false;
            ++generationsFiltered;
        }
    }
}

unsigned
ActiveGenerationTable::activeFilterEntries() const
{
    unsigned n = 0;
    for (const auto &e : filter_)
        n += e.valid;
    return n;
}

unsigned
ActiveGenerationTable::activeAccumEntries() const
{
    unsigned n = 0;
    for (const auto &e : accum_)
        n += e.valid;
    return n;
}

bool
ActiveGenerationTable::isActive(Addr addr) const
{
    Addr tag = geom_.regionTag(addr);
    for (const auto &e : accum_)
        if (e.valid && e.regionTag == tag)
            return true;
    for (const auto &e : filter_)
        if (e.valid && e.regionTag == tag)
            return true;
    return false;
}

SpatialPattern
ActiveGenerationTable::patternFor(Addr addr) const
{
    Addr tag = geom_.regionTag(addr);
    for (const auto &e : accum_)
        if (e.valid && e.regionTag == tag)
            return e.pattern;
    for (const auto &e : filter_)
        if (e.valid && e.regionTag == tag)
            return SpatialPattern(1) << e.offset;
    return 0;
}

uint64_t
ActiveGenerationTable::storageBits(unsigned region_tag_bits) const
{
    // Filter: valid + region tag + 16-bit PC slice + 5-bit offset.
    uint64_t filter_bits =
        params_.filterEntries *
        (1ull + region_tag_bits + kPhtPcBits + kPhtOffsetBits);
    // Accumulation: adds the 32-bit pattern.
    uint64_t accum_bits =
        params_.accumEntries * (1ull + region_tag_bits + kPhtPcBits +
                                kPhtOffsetBits + 32);
    return filter_bits + accum_bits;
}

} // namespace pvsim
