/**
 * @file
 * Classic PC-indexed stride prefetcher (reference-prediction-table
 * style). Not part of the paper's evaluation — the paper's baseline
 * has no data prefetcher — but a standard comparator a downstream
 * user expects next to SMS, and a useful foil: stride tables are
 * small, so virtualization buys them little; SMS-class pattern
 * tables are exactly the predictors PV targets.
 */

#ifndef PVSIM_PREFETCH_STRIDE_HH
#define PVSIM_PREFETCH_STRIDE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/cache.hh"
#include "sim/sim_object.hh"
#include "stats/stat.hh"

namespace pvsim {

/** Stride prefetcher configuration. */
struct StrideParams {
    std::string name = "stride";
    unsigned tableEntries = 256;
    unsigned tableAssoc = 4;
    /** Prefetch distance in strides once a stride is confirmed. */
    unsigned degree = 2;
    /** Confirmations required before prefetching. */
    unsigned threshold = 2;
};

/** PC-indexed stride predictor + prefetch issue. */
class StridePrefetcher : public SimObject, public CacheListener
{
  public:
    StridePrefetcher(SimContext &ctx, const StrideParams &params,
                     Cache *target);

    // CacheListener
    void onAccess(Addr pc, Addr addr, bool is_write, bool hit,
                  bool prefetched_hit) override;
    void onEvict(Addr) override {}
    void onInvalidate(Addr) override {}

    /** Dedicated storage in bits (for comparison tables). */
    uint64_t storageBits() const;

    stats::Scalar lookups;
    stats::Scalar strideConfirms;
    stats::Scalar prefetchesIssued;

  private:
    struct Entry {
        bool valid = false;
        Addr pcTag = 0;
        Addr lastAddr = 0;
        int64_t stride = 0;
        unsigned confidence = 0;
        uint64_t lastTouch = 0;
    };

    Entry *find(Addr pc);
    Entry &allocate(Addr pc);

    StrideParams params_;
    Cache *target_;
    unsigned numSets_;
    std::vector<Entry> table_;
    uint64_t touchCounter_ = 0;
};

} // namespace pvsim

#endif // PVSIM_PREFETCH_STRIDE_HH
