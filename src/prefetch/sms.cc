#include "prefetch/sms.hh"

#include "util/bitfield.hh"

namespace pvsim {

SmsPrefetcher::SmsPrefetcher(SimContext &ctx, const SmsParams &params,
                             Cache *target, PatternHistoryTable *pht)
    : SimObject(ctx, nullptr, params.name),
      triggers(this, "triggers", "spatial generation triggers"),
      phtHits(this, "pht_hits", "trigger lookups that found a pattern"),
      phtMisses(this, "pht_misses", "trigger lookups with no pattern"),
      generationsStored(this, "generations_stored",
                        "patterns transferred to the PHT"),
      prefetchCandidates(this, "prefetch_candidates",
                         "blocks named by predictions"),
      prefetchesIssued(this, "prefetches_issued",
                       "prefetches accepted by the L1"),
      params_(params), geom_(params.blocksPerRegion),
      target_(target), pht_(pht),
      agt_(params.agt, geom_,
           [this](PhtKey key, SpatialPattern pattern) {
               ++generationsStored;
               pht_->insert(key, pattern);
           })
{
    pv_assert(target_ != nullptr, "SMS needs a target cache");
    pv_assert(pht_ != nullptr, "SMS needs a PHT");
}

void
SmsPrefetcher::onAccess(Addr pc, Addr addr, bool /*is_write*/,
                        bool /*hit*/, bool /*prefetched_hit*/)
{
    bool triggered = agt_.recordAccess(pc, addr);
    if (!triggered)
        return;

    ++triggers;
    Addr region_base = geom_.regionBase(addr);
    unsigned offset = geom_.blockOffset(addr);
    PhtKey key = makePhtKey(pc, offset);
    // The lookup may complete now (dedicated PHT / PVCache hit) or
    // after a memory round trip (virtualized PHT miss); SMS does not
    // care — prediction() runs whenever the pattern arrives.
    pht_->lookup(key, [this, region_base, offset, pc](
                          bool found, SpatialPattern pattern) {
        prediction(region_base, offset, pc, found, pattern);
    });
}

void
SmsPrefetcher::prediction(Addr region_base, unsigned trigger_offset,
                          Addr pc, bool found, SpatialPattern pattern)
{
    if (!found) {
        ++phtMisses;
        return;
    }
    ++phtHits;

    unsigned issued = 0;
    for (unsigned off = 0;
         off < geom_.blocksPerRegion() &&
         issued < params_.maxPrefetchesPerTrigger;
         ++off) {
        if (off == trigger_offset)
            continue; // the trigger block is being demand-fetched
        if (!(pattern & (SpatialPattern(1) << off)))
            continue;
        ++prefetchCandidates;
        if (target_->issuePrefetch(geom_.blockAddr(region_base, off),
                                   pc)) {
            ++prefetchesIssued;
            ++issued;
        }
    }
}

void
SmsPrefetcher::onEvict(Addr block_addr)
{
    agt_.blockRemoved(block_addr);
}

void
SmsPrefetcher::onInvalidate(Addr block_addr)
{
    agt_.blockRemoved(block_addr);
}

NextLinePrefetcher::NextLinePrefetcher(SimContext &ctx,
                                       const std::string &name,
                                       Cache *target)
    : SimObject(ctx, nullptr, name),
      prefetchesIssued(this, "prefetches_issued",
                       "next-line prefetches accepted"),
      target_(target)
{
    pv_assert(target_ != nullptr, "prefetcher needs a target cache");
}

void
NextLinePrefetcher::onAccess(Addr /*pc*/, Addr addr, bool /*is_write*/,
                             bool hit, bool /*prefetched_hit*/)
{
    if (hit)
        return;
    Addr next = blockAlign(addr) + kBlockBytes;
    if (target_->issuePrefetch(next, 0))
        ++prefetchesIssued;
}

} // namespace pvsim
