/**
 * @file
 * Trace records: the unit of work consumed by a trace-driven core.
 * Each record is one memory instruction plus the count of non-memory
 * instructions executed since the previous record (the core
 * synthesizes the instruction-fetch stream from pc and gap).
 */

#ifndef PVSIM_TRACE_TRACE_RECORD_HH
#define PVSIM_TRACE_TRACE_RECORD_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace pvsim {

/** Kind of memory operation. */
enum class MemOp : uint8_t { Load = 0, Store = 1 };

/**
 * How a record was reached from its predecessor. `None` marks an
 * unannotated stream (legacy traces, flat synthetic interleaving):
 * consumers fall back to reconstructing branches from record
 * boundaries (pc vs. fall-through arithmetic). Annotated streams let
 * the core consume *real* successor edges: which boundaries are
 * genuine taken branches, and of what kind.
 */
enum class BranchEdge : uint8_t {
    None = 0, ///< unannotated (pad byte of legacy trace files)
    Seq,      ///< sequential fall-through (incl. not-taken exits)
    Cond,     ///< taken conditional/unconditional branch
    Loop,     ///< taken loop back-edge
    Call,     ///< call into a routine entry
    Ret,      ///< return to a callsite's fall-through
};

/** True for the edge kinds reached by a taken branch. */
constexpr bool
isTakenEdge(BranchEdge e)
{
    return e == BranchEdge::Cond || e == BranchEdge::Loop ||
           e == BranchEdge::Call || e == BranchEdge::Ret;
}

const char *branchEdgeName(BranchEdge e);

/** One memory instruction in the trace. */
struct TraceRecord {
    /** PC of the memory instruction. */
    Addr pc = 0;
    /** Effective (physical) data address. */
    Addr addr = 0;
    /** Non-memory instructions since the previous record. */
    uint16_t gap = 0;
    MemOp op = MemOp::Load;
    /** Control-flow edge that led to this record (None = unknown). */
    BranchEdge edge = BranchEdge::None;

    bool isLoad() const { return op == MemOp::Load; }
    bool isStore() const { return op == MemOp::Store; }
};

/** Source of trace records (synthetic generator or file reader). */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next record.
     * @return false at end-of-trace (synthetic sources are endless).
     */
    virtual bool next(TraceRecord &rec) = 0;

    /**
     * Produce up to n records into out, in exactly the order (and,
     * for synthetic sources, from exactly the RNG draws) that n
     * calls to next() would have produced — a batch is a pure
     * amortization of the per-record virtual call, never a different
     * stream. Returns the number produced; fewer than n only at
     * end-of-trace.
     *
     * The default walks next(); generators and file readers override
     * it with devirtualized / bulk-IO fast paths.
     */
    virtual size_t
    nextBatch(TraceRecord *out, size_t n)
    {
        size_t got = 0;
        while (got < n && next(out[got]))
            ++got;
        return got;
    }

    /** Restart from the beginning (same seed / file position). */
    virtual void reset() = 0;

    virtual std::string sourceName() const = 0;
};

} // namespace pvsim

#endif // PVSIM_TRACE_TRACE_RECORD_HH
