/**
 * @file
 * Trace records: the unit of work consumed by a trace-driven core.
 * Each record is one memory instruction plus the count of non-memory
 * instructions executed since the previous record (the core
 * synthesizes the instruction-fetch stream from pc and gap).
 */

#ifndef PVSIM_TRACE_TRACE_RECORD_HH
#define PVSIM_TRACE_TRACE_RECORD_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace pvsim {

/** Kind of memory operation. */
enum class MemOp : uint8_t { Load = 0, Store = 1 };

/** One memory instruction in the trace. */
struct TraceRecord {
    /** PC of the memory instruction. */
    Addr pc = 0;
    /** Effective (physical) data address. */
    Addr addr = 0;
    /** Non-memory instructions since the previous record. */
    uint16_t gap = 0;
    MemOp op = MemOp::Load;

    bool isLoad() const { return op == MemOp::Load; }
    bool isStore() const { return op == MemOp::Store; }
};

/** Source of trace records (synthetic generator or file reader). */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next record.
     * @return false at end-of-trace (synthetic sources are endless).
     */
    virtual bool next(TraceRecord &rec) = 0;

    /**
     * Produce up to n records into out, in exactly the order (and,
     * for synthetic sources, from exactly the RNG draws) that n
     * calls to next() would have produced — a batch is a pure
     * amortization of the per-record virtual call, never a different
     * stream. Returns the number produced; fewer than n only at
     * end-of-trace.
     *
     * The default walks next(); generators and file readers override
     * it with devirtualized / bulk-IO fast paths.
     */
    virtual size_t
    nextBatch(TraceRecord *out, size_t n)
    {
        size_t got = 0;
        while (got < n && next(out[got]))
            ++got;
        return got;
    }

    /** Restart from the beginning (same seed / file position). */
    virtual void reset() = 0;

    virtual std::string sourceName() const = 0;
};

} // namespace pvsim

#endif // PVSIM_TRACE_TRACE_RECORD_HH
