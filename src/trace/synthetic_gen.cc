#include "trace/synthetic_gen.hh"

#include <algorithm>

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace pvsim {

namespace {

/** Deterministic 64-bit mix for derived per-key randomness. */
uint64_t
mix(uint64_t a, uint64_t b)
{
    uint64_t x = a * 0x9e3779b97f4a7c15ULL + b;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

/**
 * Deterministic pattern with roughly `density` of 32 bits set, always
 * including the trigger offset. Derived purely from (seed, salt) so
 * the same key always regenerates the same canonical pattern.
 */
uint32_t
derivePattern(uint64_t seed, uint64_t salt, double density,
              unsigned trigger_offset)
{
    uint32_t pattern = 0;
    uint64_t h = mix(seed, salt);
    // Threshold per bit; refresh entropy every 8 bits.
    const uint32_t threshold = uint32_t(density * 255.0);
    for (unsigned bit = 0; bit < 32; ++bit) {
        if ((bit & 7) == 0)
            h = mix(h, bit + 1);
        uint8_t byte = uint8_t(h >> ((bit & 7) * 8));
        if (byte < threshold)
            pattern |= 1u << bit;
    }
    pattern |= 1u << trigger_offset;
    return pattern;
}

} // anonymous namespace

SyntheticWorkload::SyntheticWorkload(const WorkloadParams &params,
                                     int core_id)
    : params_(params), coreId_(core_id),
      rng_(mix(params.seed, uint64_t(core_id) + 0x5151)),
      numKeys_(params.numTriggerPcs * params.offsetsPerPc)
{
    pv_assert(numKeys_ > 0, "workload needs at least one key");
    pv_assert(params_.dataRegions > 0, "workload needs data regions");
    keyZipf_ = std::make_unique<ZipfSampler>(numKeys_,
                                             params_.keyZipfAlpha);
    regionZipf_ = std::make_unique<ZipfSampler>(
        params_.dataRegions, params_.regionZipfAlpha);
    visits_.resize(std::max(1u, params_.concurrency));
    scans_.resize(std::max(1u, params_.scanStreams));
    if (params_.branchModel) {
        program_ = std::make_unique<ProgramStructureModel>(
            params_, core_id, codeBase());
    }
    reset();
}

void
SyntheticWorkload::reset()
{
    rng_.reseed(mix(params_.seed, uint64_t(coreId_) + 0x5151));
    for (auto &v : visits_) {
        v.active = false;
        v.offsets.clear();
        v.pos = 0;
    }
    for (size_t s = 0; s < scans_.size(); ++s) {
        // Scan PCs sit at the top of the code window; one key each.
        scans_[s].pc = codeBase() +
                       (params_.codeBlocks - 1 - s) * kBlockBytes;
        scans_[s].region =
            rng_.below(std::max<uint64_t>(1, params_.dataRegions));
        scans_[s].nextOffset = 0;
    }
    nextScan_ = 0;
    if (program_)
        program_->reset();
}

Addr
SyntheticWorkload::keyPc(unsigned key) const
{
    // Spread key routines over the code footprint deterministically;
    // instruction PCs are 4-byte aligned.
    uint64_t routine = mix(params_.seed, key) % params_.codeBlocks;
    uint64_t slot = (uint64_t(key) * 7) % 16;
    return codeBase() + routine * kBlockBytes + slot * 4;
}

unsigned
SyntheticWorkload::triggerOffset(unsigned key) const
{
    return unsigned(mix(params_.seed ^ 0xffee, key) %
                    kRegionBlocks);
}

uint32_t
SyntheticWorkload::canonicalPattern(unsigned key) const
{
    return derivePattern(params_.seed, uint64_t(key) * 2 + 1,
                         params_.patternDensity, triggerOffset(key));
}

uint32_t
SyntheticWorkload::generationPattern(unsigned key)
{
    uint32_t pattern;
    if (rng_.chance(params_.patternStability)) {
        pattern = canonicalPattern(key);
    } else {
        // Alternate mode of this key: a second stable pattern, so
        // instability looks like bimodal behaviour rather than pure
        // noise (as in pointer-chasing vs. scan phases).
        pattern = derivePattern(params_.seed, uint64_t(key) * 2 + 2,
                                params_.patternDensity,
                                triggerOffset(key));
    }
    if (params_.patternNoise > 0.0) {
        for (unsigned bit = 0; bit < 32; ++bit) {
            if (bit != triggerOffset(key) &&
                rng_.chance(params_.patternNoise))
                pattern ^= 1u << bit;
        }
    }
    return pattern | (1u << triggerOffset(key));
}

void
SyntheticWorkload::startVisit(Visit &v)
{
    v.key = unsigned(keyZipf_->sample(rng_));
    uint64_t region = regionZipf_->sample(rng_);
    if (rng_.chance(params_.sharedFraction)) {
        v.regionBase = kSharedBase + (region % params_.dataRegions) *
                                         kRegionBytes;
    } else {
        v.regionBase = privateBase() + region * kRegionBytes;
    }

    uint32_t pattern = generationPattern(v.key);
    unsigned trig = triggerOffset(v.key);

    // Visit order: trigger block first, then the remaining pattern
    // blocks outward from the trigger (spatially ordered, matching
    // how structured code walks a record or page).
    v.offsets.clear();
    v.offsets.push_back(uint8_t(trig));
    for (unsigned d = 1; d < kRegionBlocks; ++d) {
        unsigned up = (trig + d) % kRegionBlocks;
        if (pattern & (1u << up))
            v.offsets.push_back(uint8_t(up));
    }
    v.pos = 0;
    v.active = true;
}

void
SyntheticWorkload::fillCommon(TraceRecord &rec, Addr pc, Addr addr)
{
    rec.pc = pc;
    rec.addr = addr;
    rec.gap = uint16_t(
        std::min<uint64_t>(rng_.geometric(params_.gapMean), 512));
    rec.op = rng_.chance(params_.storeFraction) ? MemOp::Store
                                                : MemOp::Load;
    // Flat interleaving has no real edges; the control-flow layer
    // (when on) overwrites this after the data-side draw.
    rec.edge = BranchEdge::None;
}

void
SyntheticWorkload::emitFrom(Visit &v, TraceRecord &rec)
{
    if (!v.active || v.pos >= v.offsets.size())
        startVisit(v);
    Addr addr = v.regionBase + Addr(v.offsets[v.pos]) * kBlockBytes;
    fillCommon(rec, keyPc(v.key), addr);
    ++v.pos;
    if (v.pos >= v.offsets.size())
        v.active = false;
}

void
SyntheticWorkload::emitScan(Scan &s, TraceRecord &rec)
{
    Addr base = privateBase() + s.region * kRegionBytes;
    fillCommon(rec, s.pc, base + Addr(s.nextOffset) * kBlockBytes);
    // Scans read; override the generic store draw most of the time.
    if (rng_.uniform() < 0.95)
        rec.op = MemOp::Load;
    ++s.nextOffset;
    if (s.nextOffset >= kRegionBlocks) {
        s.nextOffset = 0;
        ++s.region;
        if (s.region >= params_.dataRegions)
            s.region = 0;
    }
}

void
SyntheticWorkload::emitIrregular(TraceRecord &rec)
{
    // Isolated accesses over a large footprint: no spatial pattern,
    // one-access generations that die in the SMS filter table.
    uint64_t block = rng_.below(
        std::max<uint64_t>(1, params_.irregularBlocks));
    Addr addr = kIrregularBase +
                Addr(coreId_) * (params_.irregularBlocks *
                                 Addr(kBlockBytes)) +
                block * kBlockBytes;
    uint64_t pc_slot = rng_.below(256);
    Addr pc = codeBase() +
              (params_.codeBlocks / 2 +
               pc_slot % std::max<uint64_t>(1, params_.codeBlocks / 4)) *
                  kBlockBytes;
    fillCommon(rec, pc, addr);
}

void
SyntheticWorkload::emitOne(TraceRecord &rec)
{
    double draw = rng_.uniform();
    if (draw < params_.irregularFraction) {
        emitIrregular(rec);
    } else if (draw < params_.irregularFraction +
                          params_.scanFraction &&
               !scans_.empty()) {
        emitScan(scans_[nextScan_], rec);
        nextScan_ = (nextScan_ + 1) % scans_.size();
    } else {
        size_t slot = rng_.below(visits_.size());
        emitFrom(visits_[slot], rec);
    }
    // Control-flow layer: rewrite pc/gap/edge from the CFG walk.
    // The model owns a private Rng, so every rng_ draw above — and
    // with it the whole (addr, op) stream — is identical whether the
    // layer is on or off.
    if (program_)
        program_->annotate(rec);
}

bool
SyntheticWorkload::next(TraceRecord &rec)
{
    emitOne(rec);
    return true;
}

size_t
SyntheticWorkload::nextBatch(TraceRecord *out, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        emitOne(out[i]);
    return n;
}

} // namespace pvsim
