#include "trace/workload.hh"

#include "util/logging.hh"

namespace pvsim {

/*
 * Preset tuning notes (see DESIGN.md Section 2 for the rationale):
 *
 * The paper's observed behaviour per workload drives the knobs:
 *  - Oracle's coverage collapses 44% -> <4% when the PHT shrinks to
 *    8 sets: a large, flat trigger-key population (keyZipfAlpha low,
 *    many keys) that no small table can hold.
 *  - TPC-H Qry1 is scan-dominated (73% coverage, mildly sensitive):
 *    most references come from a handful of streaming keys.
 *  - Apache/Zeus sit in between; small dedicated tables are
 *    "entirely inefficient" for Apache (Figure 9).
 *  - Zeus shows the largest writeback increase (3.2%) -> highest
 *    store fraction of the web/OLTP group.
 *  - DB2/Oracle (TPC-C) have the largest code and data footprints.
 */

WorkloadParams
workloadPreset(const std::string &name)
{
    WorkloadParams p;
    p.name = name;

    if (name == "apache") {
        p.seed = 0xA9AC4E;
        p.dataRegions = 16384;      // 32 MB/core
        p.codeBlocks = 6144;        // 384 KB code
        p.numTriggerPcs = 640;
        p.offsetsPerPc = 4;
        p.keyZipfAlpha = 0.45;
        p.regionZipfAlpha = 0.40;
        p.patternStability = 0.82;
        p.patternNoise = 0.05;
        p.patternDensity = 0.30;
        p.scanFraction = 0.05;
        p.irregularFraction = 0.30;
        p.storeFraction = 0.18;
        p.sharedFraction = 0.08;
    } else if (name == "zeus") {
        p.seed = 0x2E05;
        p.dataRegions = 16384;
        p.codeBlocks = 5120;
        p.numTriggerPcs = 512;
        p.offsetsPerPc = 4;
        p.keyZipfAlpha = 0.50;
        p.regionZipfAlpha = 0.40;
        p.patternStability = 0.80;
        p.patternNoise = 0.07;
        p.patternDensity = 0.28;
        p.scanFraction = 0.03;
        p.irregularFraction = 0.34;
        p.storeFraction = 0.30;
        p.sharedFraction = 0.08;
    } else if (name == "db2") {
        p.seed = 0xDB2;
        p.dataRegions = 24576;      // 48 MB/core
        p.codeBlocks = 8192;        // 512 KB code (OLTP I-stream)
        p.numTriggerPcs = 320;
        p.offsetsPerPc = 4;
        p.keyZipfAlpha = 0.70;
        p.regionZipfAlpha = 0.45;
        p.patternStability = 0.85;
        p.patternNoise = 0.05;
        p.patternDensity = 0.32;
        p.scanFraction = 0.05;
        p.irregularFraction = 0.34;
        p.storeFraction = 0.22;
        p.sharedFraction = 0.12;
    } else if (name == "oracle") {
        p.seed = 0x04AC1E;
        p.dataRegions = 24576;
        p.codeBlocks = 8192;
        p.numTriggerPcs = 1536;     // many distinct triggers...
        p.offsetsPerPc = 4;
        p.keyZipfAlpha = 0.18;      // ...with nearly flat popularity
        p.regionZipfAlpha = 0.40;
        p.patternStability = 0.85;
        p.patternNoise = 0.05;
        p.patternDensity = 0.30;
        p.scanFraction = 0.03;
        p.irregularFraction = 0.32;
        p.storeFraction = 0.25;
        p.sharedFraction = 0.12;
    } else if (name == "qry1") {
        p.seed = 0x461;
        p.dataRegions = 32768;      // 64 MB scanned
        p.codeBlocks = 1024;
        p.numTriggerPcs = 64;
        p.offsetsPerPc = 4;
        p.keyZipfAlpha = 0.60;
        p.regionZipfAlpha = 0.40;
        p.patternStability = 0.90;
        p.patternNoise = 0.03;
        p.patternDensity = 0.35;
        p.scanFraction = 0.70;      // scan-dominated (Table 2)
        p.scanStreams = 4;
        p.irregularFraction = 0.15;
        p.storeFraction = 0.05;
        p.sharedFraction = 0.00;
    } else if (name == "qry2") {
        p.seed = 0x462;
        p.dataRegions = 4096;       // 8 MB; completes quickly
        p.codeBlocks = 1536;
        p.numTriggerPcs = 192;
        p.offsetsPerPc = 4;
        p.keyZipfAlpha = 0.55;
        p.regionZipfAlpha = 0.50;
        p.patternStability = 0.80;
        p.patternNoise = 0.06;
        p.patternDensity = 0.25;
        p.scanFraction = 0.10;      // join-dominated (Table 2)
        p.irregularFraction = 0.40;
        p.storeFraction = 0.08;
        p.sharedFraction = 0.02;
    } else if (name == "qry16") {
        p.seed = 0x4616;
        p.dataRegions = 8192;
        p.codeBlocks = 2048;
        p.numTriggerPcs = 256;
        p.offsetsPerPc = 4;
        p.keyZipfAlpha = 0.50;
        p.regionZipfAlpha = 0.45;
        p.patternStability = 0.85;
        p.patternNoise = 0.05;
        p.patternDensity = 0.30;
        p.scanFraction = 0.15;      // join-dominated (Table 2)
        p.irregularFraction = 0.28;
        p.storeFraction = 0.10;
        p.sharedFraction = 0.02;
    } else if (name == "qry17") {
        p.seed = 0x4617;
        p.dataRegions = 16384;
        p.codeBlocks = 2048;
        p.numTriggerPcs = 384;
        p.offsetsPerPc = 4;
        p.keyZipfAlpha = 0.40;
        p.regionZipfAlpha = 0.45;
        p.patternStability = 0.85;
        p.patternNoise = 0.05;
        p.patternDensity = 0.32;
        p.scanFraction = 0.35;      // balanced scan-join (Table 2)
        p.irregularFraction = 0.18;
        p.storeFraction = 0.10;
        p.sharedFraction = 0.02;
    } else if (name == "uniform") {
        // Featureless control used by unit tests: pure irregular
        // traffic, no spatial correlation for SMS to learn.
        p.seed = 0x0;
        p.dataRegions = 1024;
        p.codeBlocks = 256;
        p.numTriggerPcs = 16;
        p.offsetsPerPc = 1;
        p.irregularFraction = 1.0;
        p.scanFraction = 0.0;
    } else {
        fatal("unknown workload preset '%s'", name.c_str());
    }
    return p;
}

std::vector<std::string>
paperWorkloads()
{
    return {"apache", "zeus", "db2", "oracle",
            "qry1",   "qry2", "qry16", "qry17"};
}

void
BranchProfile::applyTo(WorkloadParams &p) const
{
    if (!enabled)
        return;
    p.branchModel = true;
    p.branch = *this; // slices to the shared BranchKnobs
}

std::vector<WorkloadMix>
presetMixes()
{
    /*
     * Mix-level branch profiles, tuned to the class of code each mix
     * models (single presets keep the flat streams — the fig4/fig5
     * data-side curves are regression-guarded bit-for-bit):
     *  - web: dispatch-heavy short handlers, deep call chains, high
     *    stability (request processing is repetitive);
     *  - oltp: the paper's large-I-stream class — more routines than
     *    a PVCache can front, medium stability;
     *  - dss: loop-dominated scan kernels with long trip counts and
     *    very high stability (fewer, longer blocks);
     *  - mixed: the cross-class blend the QoS experiments run —
     *    branchiest of the four (a taken branch every few records),
     *    with enough routines to thrash the PVCache; this is the
     *    profile where the dedicated-vs-virtualized availability
     *    gap is widest.
     */
    BranchProfile web;
    web.enabled = true;
    web.bbMeanRecords = 2;
    web.routineBlocks = 8;
    web.numRoutines = 192;
    web.callDepth = 12;
    web.callFraction = 0.30;
    web.loopFraction = 0.10;
    web.loopTripMean = 3;
    web.edgeStability = 0.95;

    BranchProfile oltp;
    oltp.enabled = true;
    oltp.bbMeanRecords = 2;
    oltp.routineBlocks = 12;
    oltp.numRoutines = 384;
    oltp.callDepth = 10;
    oltp.callFraction = 0.20;
    oltp.loopFraction = 0.20;
    oltp.loopTripMean = 4;
    oltp.edgeStability = 0.90;

    BranchProfile dss;
    dss.enabled = true;
    dss.bbMeanRecords = 4;
    dss.routineBlocks = 10;
    dss.numRoutines = 96;
    dss.callDepth = 6;
    dss.callFraction = 0.08;
    dss.loopFraction = 0.40;
    dss.loopTripMean = 8;
    dss.edgeStability = 0.97;

    BranchProfile mixed;
    mixed.enabled = true;
    mixed.bbMeanRecords = 1;
    mixed.routineBlocks = 8;
    mixed.numRoutines = 384;
    mixed.callDepth = 16;
    mixed.callFraction = 0.35;
    mixed.loopFraction = 0.10;
    mixed.loopTripMean = 2;
    mixed.edgeStability = 0.93;

    return {
        {"web", {"apache", "zeus"}, web},
        {"oltp", {"db2", "oracle"}, oltp},
        {"dss", {"qry1", "qry2", "qry16", "qry17"}, dss},
        {"mixed", {"apache", "oracle", "qry2", "zeus"}, mixed},
    };
}

std::string
workloadDescription(const std::string &name)
{
    if (name == "apache")
        return "SPECweb99, Apache HTTP Server 2.0, 16K connections "
               "(synthetic equivalent)";
    if (name == "zeus")
        return "SPECweb99, Zeus Web Server 4.3, 16K connections "
               "(synthetic equivalent)";
    if (name == "db2")
        return "TPC-C 100 warehouses on IBM DB2 v8 ESE, 64 clients "
               "(synthetic equivalent)";
    if (name == "oracle")
        return "TPC-C 100 warehouses on Oracle 10g, 16 clients "
               "(synthetic equivalent)";
    if (name == "qry1")
        return "TPC-H Query 1 on DB2, scan-dominated (synthetic "
               "equivalent)";
    if (name == "qry2")
        return "TPC-H Query 2 on DB2, join-dominated (synthetic "
               "equivalent)";
    if (name == "qry16")
        return "TPC-H Query 16 on DB2, join-dominated (synthetic "
               "equivalent)";
    if (name == "qry17")
        return "TPC-H Query 17 on DB2, balanced scan-join "
               "(synthetic equivalent)";
    if (name == "uniform")
        return "uniform random control workload (tests only)";
    return "unknown";
}

} // namespace pvsim
