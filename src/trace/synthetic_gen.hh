/**
 * @file
 * Synthetic commercial-workload generator. Produces an endless,
 * deterministic stream of TraceRecords exhibiting the spatial
 * correlation structure SMS exploits: region generations triggered by
 * recurring (PC, offset) keys whose spatial patterns repeat with a
 * configurable stability, interleaved with sequential scans and
 * pattern-free irregular traffic.
 */

#ifndef PVSIM_TRACE_SYNTHETIC_GEN_HH
#define PVSIM_TRACE_SYNTHETIC_GEN_HH

#include <memory>
#include <vector>

#include "trace/program_structure.hh"
#include "trace/trace_record.hh"
#include "trace/workload.hh"
#include "util/random.hh"

namespace pvsim {

/** Endless deterministic generator for one core's reference stream. */
class SyntheticWorkload final : public TraceSource
{
  public:
    /**
     * @param params  Workload description.
     * @param core_id Core running this stream; shifts the private
     *                address windows and decorrelates the RNG.
     */
    SyntheticWorkload(const WorkloadParams &params, int core_id);

    bool next(TraceRecord &rec) override;
    size_t nextBatch(TraceRecord *out, size_t n) override;
    void reset() override;
    std::string sourceName() const override { return params_.name; }

    /** Total distinct trigger keys (PCs x offsets). */
    unsigned numKeys() const { return numKeys_; }

    /** Canonical spatial pattern of a key (tests/analysis). */
    uint32_t canonicalPattern(unsigned key) const;

    /** Trigger offset (block index within region) of a key. */
    unsigned triggerOffset(unsigned key) const;

    /** Data-side PC assigned to a key. */
    Addr keyPc(unsigned key) const;

    const WorkloadParams &params() const { return params_; }

    /**
     * The control-flow layer, or nullptr when branchModel is off.
     * When present it rewrites pc/gap/edge of every record emitted
     * (the data-side addr/op stream is unchanged either way).
     */
    const ProgramStructureModel *programStructure() const
    {
        return program_.get();
    }

    // Fixed address-window geometry (all below any PV reservation;
    // see AddrMap). Private windows are per-core.
    static constexpr Addr kCodeWindow = 0x0800'0000;   // 128 MB
    static constexpr Addr kPrivateWindow = 0x1000'0000; // 256 MB
    static constexpr Addr kSharedBase = 0x9000'0000;
    static constexpr Addr kIrregularBase = 0xa000'0000;
    static constexpr unsigned kRegionBlocks = 32;
    static constexpr Addr kRegionBytes = kRegionBlocks * kBlockBytes;

  private:
    /** One in-flight structured region visit. */
    struct Visit {
        bool active = false;
        unsigned key = 0;
        Addr regionBase = 0;
        /** Block offsets remaining to touch, in visit order. */
        std::vector<uint8_t> offsets;
        size_t pos = 0;
    };

    /** One sequential scan stream. */
    struct Scan {
        Addr pc = 0;
        uint64_t region = 0;
        unsigned nextOffset = 0;
    };

    void startVisit(Visit &v);
    /** One record, shared by next() and nextBatch() (identical
     *  draws; the batch loop just skips the virtual dispatch). */
    void emitOne(TraceRecord &rec);
    void emitFrom(Visit &v, TraceRecord &rec);
    void emitScan(Scan &s, TraceRecord &rec);
    void emitIrregular(TraceRecord &rec);
    void fillCommon(TraceRecord &rec, Addr pc, Addr addr);

    /** Actual (possibly perturbed) pattern for one generation. */
    uint32_t generationPattern(unsigned key);

    Addr codeBase() const { return kCodeWindow * Addr(coreId_ + 1); }
    Addr privateBase() const
    {
        return kPrivateWindow * Addr(coreId_ + 2);
    }

    WorkloadParams params_;
    int coreId_;
    Rng rng_;
    unsigned numKeys_;
    std::unique_ptr<ZipfSampler> keyZipf_;
    std::unique_ptr<ZipfSampler> regionZipf_;
    std::vector<Visit> visits_;
    std::vector<Scan> scans_;
    size_t nextScan_ = 0;
    /** Control-flow layer (only when params_.branchModel). */
    std::unique_ptr<ProgramStructureModel> program_;
};

} // namespace pvsim

#endif // PVSIM_TRACE_SYNTHETIC_GEN_HH
