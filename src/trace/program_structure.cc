#include "trace/program_structure.hh"

#include <algorithm>

#include "trace/workload.hh"
#include "util/logging.hh"

namespace pvsim {

const char *
branchEdgeName(BranchEdge e)
{
    switch (e) {
      case BranchEdge::None: return "none";
      case BranchEdge::Seq: return "seq";
      case BranchEdge::Cond: return "cond";
      case BranchEdge::Loop: return "loop";
      case BranchEdge::Call: return "call";
      case BranchEdge::Ret: return "ret";
    }
    return "unknown";
}

namespace {

/** Same mixer as the data-side generator (derived randomness). */
uint64_t
mix(uint64_t a, uint64_t b)
{
    uint64_t x = a * 0x9e3779b97f4a7c15ULL + b;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

/** Map a mixed word to [0, 1). */
double
unit(uint64_t h)
{
    return double(h >> 11) * (1.0 / 9007199254740992.0);
}

} // anonymous namespace

ProgramStructureModel::ProgramStructureModel(
    const WorkloadParams &params, int core_id, Addr code_base)
    : walkSeed_(mix(params.seed, uint64_t(core_id) + 0xCF60)),
      rng_(walkSeed_), callDepth_(params.branch.callDepth),
      edgeStability_(params.branch.edgeStability)
{
    const unsigned R = std::max(2u, params.branch.numRoutines);
    const unsigned B = std::max(2u, params.branch.routineBlocks);
    const unsigned mean_recs = std::max(1u, params.branch.bbMeanRecords);
    const unsigned trip_mean = std::max(1u, params.branch.loopTripMean);

    // The whole CFG is derived from the seed alone — the walk Rng
    // never participates, so the graph (pcs, edges, trip counts) is
    // identical across reset() and across warmup/measure phases.
    const uint64_t gseed = mix(params.seed, 0x9A0C0DE);

    routines_.resize(R);
    loopRemaining_.assign(size_t(R) * B, 0);
    Addr pc = code_base;
    for (unsigned r = 0; r < R; ++r) {
        Routine &rt = routines_[r];
        rt.blocks.resize(B);
        // Canonical dispatcher chain: never self, spread over all
        // routines so an idle stack still walks the whole CFG.
        rt.nextRoutine =
            (r + 1 + unsigned(mix(gseed, r * 31 + 7) % (R - 1))) % R;
        for (unsigned b = 0; b < B; ++b) {
            Block &blk = rt.blocks[b];
            const uint64_t bs = mix(gseed, uint64_t(r) * B + b);
            blk.start = pc;
            unsigned nrecs =
                1 + unsigned(bs % (2 * mean_recs - 1));
            blk.gaps.resize(nrecs);
            Addr bytes = 0;
            for (unsigned i = 0; i < nrecs; ++i) {
                // Gaps 1..8, fixed per (routine, block, record):
                // intra-block fall-throughs hold across visits.
                blk.gaps[i] =
                    uint8_t(1 + (mix(bs, i + 1) & 0x7));
                bytes += (Addr(blk.gaps[i]) + 1) * kInstBytes;
            }
            blk.bytes = bytes;
            pc += bytes;

            // Terminator. The last block always returns; forward
            // Cond targets plus trip-bounded back-edges guarantee
            // every activation reaches it.
            const double draw = unit(mix(bs, 0xED6E));
            if (b == B - 1) {
                blk.term = Term::Ret;
            } else if (draw < params.branch.callFraction) {
                blk.term = Term::Call;
                blk.target =
                    (r + 1 + unsigned(mix(bs, 0xCA11) % (R - 1))) %
                    R;
                blk.altTarget =
                    (r + 1 + unsigned(mix(bs, 0xCA12) % (R - 1))) %
                    R;
            } else if (draw < params.branch.callFraction +
                                  params.branch.loopFraction &&
                       b >= 1) {
                blk.term = Term::Loop;
                blk.target = unsigned(mix(bs, 0x100B) % b);
                blk.trips =
                    1 + unsigned(mix(bs, 0x7219) %
                                 (2 * trip_mean - 1));
            } else if (b + 2 < B) {
                blk.term = Term::Cond;
                // Forward skip targets in (b+1, B-1].
                unsigned span = B - 1 - (b + 1);
                blk.target =
                    b + 2 + unsigned(mix(bs, 0xC0ED) % span);
                blk.altTarget =
                    b + 2 + unsigned(mix(bs, 0xC0EE) % span);
            } else {
                blk.term = Term::Seq; // no forward target left
            }
        }
        // Routines are block-aligned so distinct routines never
        // share an instruction-fetch block at their seam.
        pc = (pc + kBlockBytes - 1) & ~Addr(kBlockBytes - 1);
    }
    codeBytes_ = pc - code_base;
    reset();
}

unsigned
ProgramStructureModel::blocksPerRoutine() const
{
    return unsigned(routines_.front().blocks.size());
}

ProgramStructureModel::Term
ProgramStructureModel::termOf(unsigned r, unsigned b) const
{
    return routines_.at(r).blocks.at(b).term;
}

unsigned
ProgramStructureModel::loopTripsOf(unsigned r, unsigned b) const
{
    return routines_.at(r).blocks.at(b).trips;
}

Addr
ProgramStructureModel::routineEntry(unsigned r) const
{
    return routines_.at(r).blocks.front().start;
}

Addr
ProgramStructureModel::branchPcOf(unsigned r, unsigned b) const
{
    const Block &blk = routines_.at(r).blocks.at(b);
    return blk.start + blk.bytes -
           (Addr(blk.gaps.back()) + 1) * kInstBytes;
}

void
ProgramStructureModel::reset()
{
    rng_.reseed(walkSeed_);
    const unsigned B = blocksPerRoutine();
    for (unsigned r = 0; r < routines_.size(); ++r) {
        for (unsigned b = 0; b < B; ++b) {
            loopRemaining_[size_t(r) * B + b] =
                routines_[r].blocks[b].trips;
        }
    }
    stack_.clear();
    routine_ = 0;
    block_ = 0;
    idx_ = 0;
    nextPc_ = routines_[0].blocks[0].start;
    pendingEdge_ = BranchEdge::Seq;
}

void
ProgramStructureModel::takeTerminator()
{
    const Block &blk = curBlock();
    const unsigned B = unsigned(routines_[routine_].blocks.size());
    switch (blk.term) {
      case Term::Seq:
        block_ += 1;
        pendingEdge_ = BranchEdge::Seq;
        break;
      case Term::Cond: {
        bool canonical = rng_.chance(edgeStability_);
        block_ = canonical ? blk.target : blk.altTarget;
        pendingEdge_ = BranchEdge::Cond;
        break;
      }
      case Term::Loop: {
        unsigned &left =
            loopRemaining_[size_t(routine_) * B + block_];
        if (left > 0) {
            --left;
            block_ = blk.target;
            pendingEdge_ = BranchEdge::Loop;
        } else {
            left = blk.trips; // re-arm for the next activation
            block_ += 1;
            pendingEdge_ = BranchEdge::Seq;
        }
        break;
      }
      case Term::Call:
        if (stack_.size() >= callDepth_) {
            // Depth cap: the call is elided and execution falls
            // through to the would-be return point.
            block_ += 1;
            pendingEdge_ = BranchEdge::Seq;
        } else {
            stack_.push_back({routine_, block_ + 1});
            routine_ = rng_.chance(edgeStability_) ? blk.target
                                                   : blk.altTarget;
            block_ = 0;
            pendingEdge_ = BranchEdge::Call;
        }
        break;
      case Term::Ret:
        if (stack_.empty()) {
            // Dispatcher: tail-jump to the canonical successor
            // routine (a stable, learnable edge — not a return).
            routine_ = routines_[routine_].nextRoutine;
            block_ = 0;
            pendingEdge_ = BranchEdge::Cond;
        } else {
            Frame f = stack_.back();
            stack_.pop_back();
            routine_ = f.routine;
            block_ = f.block;
            pendingEdge_ = BranchEdge::Ret;
        }
        break;
    }
    idx_ = 0;
    nextPc_ = curBlock().start;
}

void
ProgramStructureModel::annotate(TraceRecord &rec)
{
    const Block &blk = curBlock();
    rec.pc = nextPc_;
    rec.gap = blk.gaps[idx_];
    rec.edge = pendingEdge_;
    pendingEdge_ = BranchEdge::Seq;
    nextPc_ += (Addr(rec.gap) + 1) * kInstBytes;
    ++idx_;
    if (idx_ >= blk.gaps.size())
        takeTerminator();
}

} // namespace pvsim
