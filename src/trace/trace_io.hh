/**
 * @file
 * Binary trace file format: a fixed header followed by fixed-width
 * little-endian records. Lets users capture synthetic workloads (or
 * convert external traces) and replay them byte-identically.
 *
 * Layout:
 *   offset 0:  magic   u32  'PVTR' (0x52545650)
 *   offset 4:  version u32  (currently 1)
 *   offset 8:  count   u64  number of records
 *   offset 16: records, each 20 bytes:
 *       pc u64 | addr u64 | gap u16 | op u8 | edge u8
 *
 * The edge byte (a BranchEdge) was the zero pad of version-1 files;
 * 0 decodes as BranchEdge::None, so legacy traces read back as
 * unannotated streams and the version number is unchanged.
 */

#ifndef PVSIM_TRACE_TRACE_IO_HH
#define PVSIM_TRACE_TRACE_IO_HH

#include <cstdio>
#include <string>

#include "trace/trace_record.hh"

namespace pvsim {

/** Magic number identifying a pvsim trace file. */
constexpr uint32_t kTraceMagic = 0x52545650; // "PVTR"
constexpr uint32_t kTraceVersion = 1;
constexpr size_t kTraceRecordBytes = 20;

/** Sequential trace writer. Fixes up the record count on close. */
class TraceFileWriter
{
  public:
    explicit TraceFileWriter(const std::string &path);
    ~TraceFileWriter();

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    void append(const TraceRecord &rec);
    uint64_t count() const { return count_; }

    /** Flush, write the final header, and close. */
    void close();

  private:
    std::FILE *file_;
    std::string path_;
    uint64_t count_ = 0;
    bool closed_ = false;
};

/** Sequential trace reader implementing TraceSource. */
class TraceFileReader final : public TraceSource
{
  public:
    explicit TraceFileReader(const std::string &path);
    ~TraceFileReader() override;

    TraceFileReader(const TraceFileReader &) = delete;
    TraceFileReader &operator=(const TraceFileReader &) = delete;

    bool next(TraceRecord &rec) override;
    /** Bulk-read override: one fread for the whole chunk. */
    size_t nextBatch(TraceRecord *out, size_t n) override;
    void reset() override;
    std::string sourceName() const override { return path_; }

    uint64_t count() const { return count_; }

  private:
    std::FILE *file_;
    std::string path_;
    uint64_t count_ = 0;
    uint64_t read_ = 0;
};

} // namespace pvsim

#endif // PVSIM_TRACE_TRACE_IO_HH
