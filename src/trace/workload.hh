/**
 * @file
 * Workload parameterization. The paper evaluates on eight commercial
 * workloads (Table 2) that are not publicly redistributable; this
 * reproduction substitutes synthetic generators whose parameters
 * expose exactly the axes that drive SMS and PV behaviour:
 *
 *  - trigger-key diversity (distinct PC+offset combinations) and its
 *    popularity skew -> PHT capacity sensitivity (Figures 4/5);
 *  - spatial-pattern density and stability -> coverage ceiling and
 *    overprediction rate;
 *  - scan vs. transactional vs. irregular access mix -> which
 *    fraction of misses is coverable at all;
 *  - data/code footprints -> L1/L2 pressure and off-chip traffic
 *    (Figures 7/8/10);
 *  - store fraction and cross-core sharing -> writebacks and
 *    invalidations.
 *
 * Presets named after the paper's workloads are tuned so each one's
 * coverage-vs-table-size curve matches the paper's qualitative
 * behaviour (see DESIGN.md Section 2 and EXPERIMENTS.md).
 */

#ifndef PVSIM_TRACE_WORKLOAD_HH
#define PVSIM_TRACE_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

namespace pvsim {

/**
 * Shape of the synthetic CFG the control-flow layer walks
 * (trace/program_structure.hh). Shared verbatim between
 * WorkloadParams (per-generator) and BranchProfile (per-mix), so a
 * knob exists in exactly one place.
 */
struct BranchKnobs {
    /** Mean memory records per basic block. */
    unsigned bbMeanRecords = 4;
    /** Basic blocks per routine (last block is the return). */
    unsigned routineBlocks = 12;
    /** Distinct routines in the synthetic CFG. */
    unsigned numRoutines = 96;
    /** Bounded call-stack depth (calls beyond it are elided). */
    unsigned callDepth = 8;
    /** Probability a non-terminal block ends in a call. */
    double callFraction = 0.15;
    /** Probability a non-terminal block is a loop tail. */
    double loopFraction = 0.25;
    /** Mean back-edges taken per loop activation. */
    unsigned loopTripMean = 4;
    /** Probability a taken edge follows its canonical successor. */
    double edgeStability = 0.95;
};

/** Tunable description of one synthetic workload. */
struct WorkloadParams {
    std::string name = "custom";
    uint64_t seed = 1;

    // ---- Footprints -------------------------------------------------
    /** Distinct spatial regions (32 blocks = 2 KB each) per core. */
    uint64_t dataRegions = 16384;
    /** Code footprint in 64-byte blocks per core. */
    uint64_t codeBlocks = 4096;
    /** Irregular (pattern-free) footprint in 64-byte blocks. */
    uint64_t irregularBlocks = 1 << 18;

    // ---- Trigger keys (PHT pressure) --------------------------------
    /** Distinct PCs that trigger spatial generations. */
    unsigned numTriggerPcs = 512;
    /** Distinct trigger offsets per PC (keys = PCs * offsets). */
    unsigned offsetsPerPc = 4;
    /** Zipf skew of key popularity (0 = uniform = worst case). */
    double keyZipfAlpha = 0.6;
    /** Zipf skew of region popularity. */
    double regionZipfAlpha = 0.4;

    // ---- Pattern behaviour ------------------------------------------
    /** Probability a generation follows its key's canonical pattern. */
    double patternStability = 0.85;
    /** Per-bit flip probability applied to each generation. */
    double patternNoise = 0.04;
    /** Mean fraction of the 32 region blocks touched per generation. */
    double patternDensity = 0.30;

    // ---- Access mix --------------------------------------------------
    /** Fraction of references from sequential scans (dense, few keys). */
    double scanFraction = 0.0;
    /** Number of concurrent scan streams (when scanFraction > 0). */
    unsigned scanStreams = 4;
    /** Fraction of references that are isolated irregular accesses. */
    double irregularFraction = 0.25;
    /** Fraction of references that are stores. */
    double storeFraction = 0.20;
    /** Probability a structured region comes from the shared pool. */
    double sharedFraction = 0.05;

    // ---- Rate ---------------------------------------------------------
    /** Mean non-memory instructions between memory references. */
    double gapMean = 5.0;
    /** Concurrent in-flight structured region visits. */
    unsigned concurrency = 8;

    // ---- Program structure (control-flow modeling) --------------------
    /**
     * Enable the control-flow layer (trace/program_structure.hh):
     * pc/gap come from a walk over a synthetic CFG with learnable
     * taken-branch successor edges instead of the flat per-record
     * interleaving. Off (the default) reproduces the historical
     * stream bit-for-bit; on, the (addr, op) stream is still
     * identical — only pc/gap/edge change.
     */
    bool branchModel = false;
    /** CFG shape when branchModel is on (see BranchKnobs). */
    struct BranchKnobs branch;
};

/**
 * Named preset matching one of the paper's Table 2 workloads
 * ("apache", "zeus", "db2", "oracle", "qry1", "qry2", "qry16",
 * "qry17"), plus "uniform" (a featureless random-access control used
 * by tests).
 */
WorkloadParams workloadPreset(const std::string &name);

/** The eight paper workloads, in the paper's presentation order. */
std::vector<std::string> paperWorkloads();

/**
 * Mix-level control-flow profile: the branch-structure knobs a
 * multi-programmed mix applies to every member workload. Presets
 * keep `branchModel` off (the fig4/fig5 data-side curves are tuned
 * against the flat streams); the mixes — the unit the BTB/Figure 9
 * experiments run on — switch it on here, so branch learnability is
 * a property of the *experiment*, not of the preset.
 */
struct BranchProfile : BranchKnobs {
    bool enabled = false;

    /** Install the knobs on p (no-op when !enabled). */
    void applyTo(WorkloadParams &p) const;
};

/**
 * A named multi-programmed mix: one preset per core (wrapped when
 * the machine has more cores than entries), plus the control-flow
 * profile its members run under. Feeds SystemConfig::workloadMix.
 */
struct WorkloadMix {
    std::string name;
    std::vector<std::string> workloads;
    BranchProfile branch;
};

/**
 * The standard mixes the Figure 9-style sweeps run: the paper's
 * workload classes paired homogeneously (web, oltp, dss) and
 * cross-class (mixed), so shared-L2 contention between
 * heterogeneous PV tenants is part of the measurement.
 */
std::vector<WorkloadMix> presetMixes();

/** One-line description of a preset (Table 2 reproduction). */
std::string workloadDescription(const std::string &name);

} // namespace pvsim

#endif // PVSIM_TRACE_WORKLOAD_HH
