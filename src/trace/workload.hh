/**
 * @file
 * Workload parameterization. The paper evaluates on eight commercial
 * workloads (Table 2) that are not publicly redistributable; this
 * reproduction substitutes synthetic generators whose parameters
 * expose exactly the axes that drive SMS and PV behaviour:
 *
 *  - trigger-key diversity (distinct PC+offset combinations) and its
 *    popularity skew -> PHT capacity sensitivity (Figures 4/5);
 *  - spatial-pattern density and stability -> coverage ceiling and
 *    overprediction rate;
 *  - scan vs. transactional vs. irregular access mix -> which
 *    fraction of misses is coverable at all;
 *  - data/code footprints -> L1/L2 pressure and off-chip traffic
 *    (Figures 7/8/10);
 *  - store fraction and cross-core sharing -> writebacks and
 *    invalidations.
 *
 * Presets named after the paper's workloads are tuned so each one's
 * coverage-vs-table-size curve matches the paper's qualitative
 * behaviour (see DESIGN.md Section 2 and EXPERIMENTS.md).
 */

#ifndef PVSIM_TRACE_WORKLOAD_HH
#define PVSIM_TRACE_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

namespace pvsim {

/** Tunable description of one synthetic workload. */
struct WorkloadParams {
    std::string name = "custom";
    uint64_t seed = 1;

    // ---- Footprints -------------------------------------------------
    /** Distinct spatial regions (32 blocks = 2 KB each) per core. */
    uint64_t dataRegions = 16384;
    /** Code footprint in 64-byte blocks per core. */
    uint64_t codeBlocks = 4096;
    /** Irregular (pattern-free) footprint in 64-byte blocks. */
    uint64_t irregularBlocks = 1 << 18;

    // ---- Trigger keys (PHT pressure) --------------------------------
    /** Distinct PCs that trigger spatial generations. */
    unsigned numTriggerPcs = 512;
    /** Distinct trigger offsets per PC (keys = PCs * offsets). */
    unsigned offsetsPerPc = 4;
    /** Zipf skew of key popularity (0 = uniform = worst case). */
    double keyZipfAlpha = 0.6;
    /** Zipf skew of region popularity. */
    double regionZipfAlpha = 0.4;

    // ---- Pattern behaviour ------------------------------------------
    /** Probability a generation follows its key's canonical pattern. */
    double patternStability = 0.85;
    /** Per-bit flip probability applied to each generation. */
    double patternNoise = 0.04;
    /** Mean fraction of the 32 region blocks touched per generation. */
    double patternDensity = 0.30;

    // ---- Access mix --------------------------------------------------
    /** Fraction of references from sequential scans (dense, few keys). */
    double scanFraction = 0.0;
    /** Number of concurrent scan streams (when scanFraction > 0). */
    unsigned scanStreams = 4;
    /** Fraction of references that are isolated irregular accesses. */
    double irregularFraction = 0.25;
    /** Fraction of references that are stores. */
    double storeFraction = 0.20;
    /** Probability a structured region comes from the shared pool. */
    double sharedFraction = 0.05;

    // ---- Rate ---------------------------------------------------------
    /** Mean non-memory instructions between memory references. */
    double gapMean = 5.0;
    /** Concurrent in-flight structured region visits. */
    unsigned concurrency = 8;
};

/**
 * Named preset matching one of the paper's Table 2 workloads
 * ("apache", "zeus", "db2", "oracle", "qry1", "qry2", "qry16",
 * "qry17"), plus "uniform" (a featureless random-access control used
 * by tests).
 */
WorkloadParams workloadPreset(const std::string &name);

/** The eight paper workloads, in the paper's presentation order. */
std::vector<std::string> paperWorkloads();

/**
 * A named multi-programmed mix: one preset per core (wrapped when
 * the machine has more cores than entries). Feeds
 * SystemConfig::workloadMix.
 */
struct WorkloadMix {
    std::string name;
    std::vector<std::string> workloads;
};

/**
 * The standard mixes the Figure 9-style sweeps run: the paper's
 * workload classes paired homogeneously (web, oltp, dss) and
 * cross-class (mixed), so shared-L2 contention between
 * heterogeneous PV tenants is part of the measurement.
 */
std::vector<WorkloadMix> presetMixes();

/** One-line description of a preset (Table 2 reproduction). */
std::string workloadDescription(const std::string &name);

} // namespace pvsim

#endif // PVSIM_TRACE_WORKLOAD_HH
