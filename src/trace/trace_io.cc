#include "trace/trace_io.hh"

#include <algorithm>
#include <cstring>

#include "util/logging.hh"

namespace {

/** Records decoded per fread in the bulk reader (stack buffer). */
constexpr size_t kReadChunk = 256;

} // anonymous namespace

namespace pvsim {

namespace {

void
put64(uint8_t *buf, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf[i] = uint8_t(v >> (8 * i));
}

uint64_t
get64(const uint8_t *buf)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= uint64_t(buf[i]) << (8 * i);
    return v;
}

void
put32(uint8_t *buf, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf[i] = uint8_t(v >> (8 * i));
}

uint32_t
get32(const uint8_t *buf)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= uint32_t(buf[i]) << (8 * i);
    return v;
}

} // anonymous namespace

TraceFileWriter::TraceFileWriter(const std::string &path)
    : file_(std::fopen(path.c_str(), "wb")), path_(path)
{
    if (!file_)
        fatal("cannot open trace file '%s' for writing",
              path.c_str());
    uint8_t header[16] = {};
    put32(header, kTraceMagic);
    put32(header + 4, kTraceVersion);
    put64(header + 8, 0); // patched in close()
    if (std::fwrite(header, 1, sizeof(header), file_) !=
        sizeof(header))
        fatal("short write to trace file '%s'", path.c_str());
}

TraceFileWriter::~TraceFileWriter()
{
    if (!closed_)
        close();
}

void
TraceFileWriter::append(const TraceRecord &rec)
{
    pv_assert(!closed_, "append to closed trace file");
    uint8_t buf[kTraceRecordBytes] = {};
    put64(buf, rec.pc);
    put64(buf + 8, rec.addr);
    buf[16] = uint8_t(rec.gap & 0xff);
    buf[17] = uint8_t(rec.gap >> 8);
    buf[18] = uint8_t(rec.op);
    // The historical pad byte carries the branch-edge annotation;
    // legacy files hold 0 there, which is BranchEdge::None.
    buf[19] = uint8_t(rec.edge);
    if (std::fwrite(buf, 1, sizeof(buf), file_) != sizeof(buf))
        fatal("short write to trace file '%s'", path_.c_str());
    ++count_;
}

void
TraceFileWriter::close()
{
    if (closed_)
        return;
    closed_ = true;
    uint8_t cnt[8];
    put64(cnt, count_);
    std::fseek(file_, 8, SEEK_SET);
    if (std::fwrite(cnt, 1, sizeof(cnt), file_) != sizeof(cnt))
        fatal("cannot finalize trace file '%s'", path_.c_str());
    std::fclose(file_);
    file_ = nullptr;
}

TraceFileReader::TraceFileReader(const std::string &path)
    : file_(std::fopen(path.c_str(), "rb")), path_(path)
{
    if (!file_)
        fatal("cannot open trace file '%s'", path.c_str());
    uint8_t header[16];
    if (std::fread(header, 1, sizeof(header), file_) !=
        sizeof(header))
        fatal("trace file '%s' too short", path.c_str());
    if (get32(header) != kTraceMagic)
        fatal("'%s' is not a pvsim trace (bad magic)", path.c_str());
    if (get32(header + 4) != kTraceVersion)
        fatal("trace '%s' has unsupported version %u", path.c_str(),
              get32(header + 4));
    count_ = get64(header + 8);
}

TraceFileReader::~TraceFileReader()
{
    if (file_)
        std::fclose(file_);
}

namespace {

/** Decode one on-disk record at buf into rec. */
inline void
decodeRecord(const uint8_t *buf, TraceRecord &rec)
{
    rec.pc = get64(buf);
    rec.addr = get64(buf + 8);
    rec.gap = uint16_t(buf[16] | (uint16_t(buf[17]) << 8));
    rec.op = MemOp(buf[18]);
    rec.edge = buf[19] <= uint8_t(BranchEdge::Ret)
                   ? BranchEdge(buf[19])
                   : BranchEdge::None;
}

} // anonymous namespace

bool
TraceFileReader::next(TraceRecord &rec)
{
    if (read_ >= count_)
        return false;
    uint8_t buf[kTraceRecordBytes];
    if (std::fread(buf, 1, sizeof(buf), file_) != sizeof(buf))
        fatal("trace '%s' truncated at record %llu", path_.c_str(),
              (unsigned long long)read_);
    decodeRecord(buf, rec);
    ++read_;
    return true;
}

size_t
TraceFileReader::nextBatch(TraceRecord *out, size_t n)
{
    size_t produced = 0;
    uint8_t buf[kTraceRecordBytes * kReadChunk];
    while (produced < n && read_ < count_) {
        size_t want = size_t(std::min<uint64_t>(
            std::min<uint64_t>(n - produced, count_ - read_),
            kReadChunk));
        size_t bytes = want * kTraceRecordBytes;
        if (std::fread(buf, 1, bytes, file_) != bytes)
            fatal("trace '%s' truncated at record %llu",
                  path_.c_str(), (unsigned long long)read_);
        for (size_t i = 0; i < want; ++i)
            decodeRecord(buf + i * kTraceRecordBytes,
                         out[produced + i]);
        produced += want;
        read_ += want;
    }
    return produced;
}

void
TraceFileReader::reset()
{
    std::fseek(file_, 16, SEEK_SET);
    read_ = 0;
}

} // namespace pvsim
