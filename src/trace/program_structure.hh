/**
 * @file
 * Program-structure model: the control-flow layer of the synthetic
 * workload generator. The flat generator interleaves independent
 * data streams per record, so taken-branch successor edges at record
 * boundaries are near-random and no BTB can learn them; this model
 * replaces the pc/gap of each record with a walk over a synthetic
 * control-flow graph whose edges are *learnable* — which is what
 * turns BTB virtualization experiments (Figure 9-style) from flat
 * into paper-shaped.
 *
 * The CFG is derived deterministically from the workload seed:
 * routines of contiguous basic blocks, each block a short run of
 * memory records with fixed intra-block gaps (so consecutive records
 * are genuine fall-throughs), ended by one terminator:
 *
 *  - Cond: taken jump to a canonical forward target with probability
 *    `edgeStability`, else to a fixed alternate target (instability
 *    is bimodal, like data patterns, not noise);
 *  - Loop: back-edge to an earlier block, taken `trips` times per
 *    activation, then a fall-through exit;
 *  - Call: push the fall-through block on a bounded call stack and
 *    enter the callee's first block (canonical callee with
 *    probability `edgeStability`, alternate otherwise); at depth
 *    `callDepth` the call is elided (falls through);
 *  - Ret (last block of every routine): pop the stack and jump to
 *    the per-callsite return pc; an empty stack dispatches to the
 *    routine's canonical successor instead (annotated Cond).
 *
 * The model is composed *on top of* the data-side streams: it owns a
 * private Rng and only overwrites pc/gap/edge, so the (addr, op)
 * stream — and every draw of the data-side Rng — is identical with
 * the model on or off.
 */

#ifndef PVSIM_TRACE_PROGRAM_STRUCTURE_HH
#define PVSIM_TRACE_PROGRAM_STRUCTURE_HH

#include <cstdint>
#include <vector>

#include "trace/trace_record.hh"
#include "util/random.hh"

namespace pvsim {

struct WorkloadParams;

/** Deterministic control-flow walker for one core's stream. */
class ProgramStructureModel
{
  public:
    /** Instruction size the fall-through arithmetic assumes; must
     *  match CoreParams::instBytes (both default to 4). */
    static constexpr Addr kInstBytes = 4;

    /**
     * @param params    Workload description (branch-structure knobs).
     * @param core_id   Decorrelates the walk Rng across cores.
     * @param code_base Base of this core's code window; all pcs are
     *                  laid out contiguously from here.
     */
    ProgramStructureModel(const WorkloadParams &params, int core_id,
                          Addr code_base);

    /** Restart the walk (same seed: identical replay). */
    void reset();

    /**
     * Overwrite rec.pc / rec.gap / rec.edge with the next step of
     * the control-flow walk. The data-side fields (addr, op) are
     * left untouched.
     */
    void annotate(TraceRecord &rec);

    // ---- Introspection (tests / analysis) --------------------------

    /** Block terminator kinds (mirrors the file header). */
    enum class Term : uint8_t { Seq, Cond, Loop, Call, Ret };

    unsigned numRoutines() const { return unsigned(routines_.size()); }
    unsigned blocksPerRoutine() const;

    /** Terminator kind of block b of routine r. */
    Term termOf(unsigned r, unsigned b) const;

    /** Back-edges taken per activation of loop block (r, b). */
    unsigned loopTripsOf(unsigned r, unsigned b) const;

    /** Entry pc of routine r (canonical call target). */
    Addr routineEntry(unsigned r) const;

    /** Branch pc of block (r, b): its last memory record's pc (the
     *  key the core's reconstruction trains the BTB with). */
    Addr branchPcOf(unsigned r, unsigned b) const;

    /** Current call-stack depth (bounded by callDepth). */
    size_t callDepthNow() const { return stack_.size(); }

    /** Total bytes of synthetic code the CFG occupies. */
    uint64_t codeBytes() const { return codeBytes_; }

  private:
    struct Block {
        Addr start = 0;
        /** Per-record gaps; record i sits at
         *  start + sum_{j<i} (gaps[j]+1)*kInstBytes. */
        std::vector<uint8_t> gaps;
        Term term = Term::Seq;
        /** Cond/Loop: target block in this routine; Call: callee
         *  routine. */
        unsigned target = 0;
        /** Cond/Call: the unstable alternate target. */
        unsigned altTarget = 0;
        /** Loop: back-edges taken per activation. */
        unsigned trips = 0;
        /** Byte length (fall-through lands at start + bytes). */
        Addr bytes = 0;
    };

    struct Routine {
        std::vector<Block> blocks;
        /** Dispatcher successor when returning on an empty stack. */
        unsigned nextRoutine = 0;
    };

    /** A callsite's continuation: return into (routine, block). */
    struct Frame {
        unsigned routine;
        unsigned block;
    };

    const Block &curBlock() const
    {
        return routines_[routine_].blocks[block_];
    }

    /** Consume the current block's terminator: pick the successor
     *  (routine_, block_) and the edge annotating its first record. */
    void takeTerminator();

    uint64_t walkSeed_ = 0;
    Rng rng_;
    std::vector<Routine> routines_;
    /** Per-(routine, block) remaining back-edges this activation. */
    std::vector<unsigned> loopRemaining_;
    std::vector<Frame> stack_;
    unsigned callDepth_;
    double edgeStability_;
    uint64_t codeBytes_ = 0;

    unsigned routine_ = 0;
    unsigned block_ = 0;
    size_t idx_ = 0;  ///< next record within the current block
    Addr nextPc_ = 0; ///< pc of that record (runs down the block)
    BranchEdge pendingEdge_ = BranchEdge::Seq;
};

} // namespace pvsim

#endif // PVSIM_TRACE_PROGRAM_STRUCTURE_HH
