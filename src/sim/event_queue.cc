#include "sim/event_queue.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pvsim {

namespace {

thread_local EventQueue *tls_current_queue = nullptr;

} // anonymous namespace

EventQueue *
EventQueue::current()
{
    return tls_current_queue;
}

EventQueue::CurrentScope::CurrentScope(EventQueue *eq)
    : prev_(tls_current_queue)
{
    tls_current_queue = eq;
}

EventQueue::CurrentScope::~CurrentScope()
{
    tls_current_queue = prev_;
}

EventQueue::~EventQueue()
{
    for (Event *e : heap_) {
        if (e->destroy)
            e->destroy(e->storage);
    }
    // Chunk storage is released by chunks_; no per-node delete.
}

EventQueue::Event *
EventQueue::acquire(Tick when, int priority)
{
    pv_assert(when >= curTick_,
              "event scheduled in the past (%llu < %llu)",
              (unsigned long long)when, (unsigned long long)curTick_);
    if (!freeHead_) {
        auto chunk = std::make_unique<Event[]>(kChunkEvents);
        for (size_t i = 0; i < kChunkEvents; ++i) {
            chunk[i].nextFree = freeHead_;
            freeHead_ = &chunk[i];
        }
        freeCount_ += kChunkEvents;
        chunks_.push_back(std::move(chunk));
    }
    Event *e = freeHead_;
    freeHead_ = e->nextFree;
    --freeCount_;
    e->when = when;
    e->priority = priority;
    e->id = nextId_++;
    return e;
}

void
EventQueue::commit(Event *e)
{
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    pending_.insert(e->id);
}

void
EventQueue::release(Event *e)
{
    e->nextFree = freeHead_;
    freeHead_ = e;
    ++freeCount_;
}

void
EventQueue::discard(Event *e)
{
    if (e->destroy)
        e->destroy(e->storage);
    release(e);
}

void
EventQueue::cancel(EventId id)
{
    if (pending_.erase(id) == 0)
        return; // already ran (or already cancelled)
    maybeCompact();
}

void
EventQueue::maybeCompact()
{
    // Every heap entry's id was added to pending_ at schedule() and
    // leaves both structures together (popNext, stale-top discard),
    // except on cancel — so the dead-entry count is exactly the
    // size difference.
    size_t dead = heap_.size() - pending_.size();
    if (heap_.size() < kCompactMinHeap || dead * 2 <= heap_.size())
        return;
    auto live_end =
        std::partition(heap_.begin(), heap_.end(),
                       [this](const Event *e) {
                           return pending_.count(e->id) != 0;
                       });
    for (auto it = live_end; it != heap_.end(); ++it)
        discard(*it);
    heap_.erase(live_end, heap_.end());
    std::make_heap(heap_.begin(), heap_.end(), Later{});
}

void
EventQueue::setCurTick(Tick to)
{
    pv_assert(to >= curTick_, "cannot rewind time");
    pv_assert(empty() || nextTick() >= to,
              "setCurTick would skip pending events");
    curTick_ = to;
}

Tick
EventQueue::nextTick() const
{
    pv_assert(!heap_.empty(), "nextTick on an empty queue");
    // The heap may have stale (cancelled) entries at the top; they
    // can only be earlier than the earliest live event, so scanning
    // is needed for exactness. The common case has no stale top.
    if (pending_.count(heap_.front()->id))
        return heap_.front()->when;
    Tick best = kMaxTick;
    for (const Event *e : heap_) {
        if (e->when < best && pending_.count(e->id))
            best = e->when;
    }
    return best;
}

EventQueue::Event *
EventQueue::popNext()
{
    while (!heap_.empty()) {
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        Event *e = heap_.back();
        heap_.pop_back();
        auto it = pending_.find(e->id);
        if (it == pending_.end()) {
            discard(e); // cancelled; reclaim silently
            continue;
        }
        pending_.erase(it);
        return e;
    }
    return nullptr;
}

uint64_t
EventQueue::runUntil(Tick limit)
{
    uint64_t executed = 0;
    while (!heap_.empty()) {
        // Peek: stop without popping if the earliest live event is
        // beyond the limit.
        Event *top = heap_.front();
        if (!pending_.count(top->id)) {
            // Stale top; pop and reclaim.
            std::pop_heap(heap_.begin(), heap_.end(), Later{});
            heap_.pop_back();
            discard(top);
            continue;
        }
        if (top->when > limit)
            break;
        Event *e = popNext();
        if (!e)
            break;
        pv_assert(e->when >= curTick_, "event queue went backwards");
        curTick_ = e->when;
        // The callable may schedule (allocating nodes) or cancel
        // (compacting the heap); this node is in neither structure
        // any more, so its storage stays valid until released below.
        e->invoke(e->storage);
        if (e->destroy)
            e->destroy(e->storage);
        lastExecuted_ = e->when;
        release(e);
        ++numExecuted_;
        ++executed;
    }
    return executed;
}

uint64_t
EventQueue::runOneTick()
{
    if (empty())
        return 0;
    return runUntil(nextTick());
}

void
EventQueue::reset()
{
    for (Event *e : heap_)
        discard(e);
    heap_.clear();
    pending_.clear();
    curTick_ = 0;
}

} // namespace pvsim
