#include "sim/event_queue.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pvsim {

EventQueue::EventId
EventQueue::schedule(Tick when, int priority, std::function<void()> fn)
{
    pv_assert(when >= curTick_,
              "event scheduled in the past (%llu < %llu)",
              (unsigned long long)when, (unsigned long long)curTick_);
    EventId id = nextId_++;
    heap_.push_back(Entry{when, priority, id, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
    pending_.insert(id);
    return id;
}

void
EventQueue::cancel(EventId id)
{
    if (pending_.erase(id) == 0)
        return; // already ran (or already cancelled)
    maybeCompact();
}

void
EventQueue::maybeCompact()
{
    // Every heap entry's id was added to pending_ at schedule() and
    // leaves both structures together (popNext, stale-top discard),
    // except on cancel — so the dead-entry count is exactly the
    // size difference.
    size_t dead = heap_.size() - pending_.size();
    if (heap_.size() < kCompactMinHeap || dead * 2 <= heap_.size())
        return;
    heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                               [this](const Entry &e) {
                                   return !pending_.count(e.id);
                               }),
                heap_.end());
    std::make_heap(heap_.begin(), heap_.end(), std::greater<>());
}

void
EventQueue::setCurTick(Tick to)
{
    pv_assert(to >= curTick_, "cannot rewind time");
    pv_assert(empty() || nextTick() >= to,
              "setCurTick would skip pending events");
    curTick_ = to;
}

Tick
EventQueue::nextTick() const
{
    pv_assert(!heap_.empty(), "nextTick on an empty queue");
    // The heap may have stale (cancelled) entries at the top; they
    // can only be earlier than the earliest live event, so scanning
    // is needed for exactness. The common case has no stale top.
    if (pending_.count(heap_.front().id))
        return heap_.front().when;
    Tick best = kMaxTick;
    for (const Entry &e : heap_) {
        if (e.when < best && pending_.count(e.id))
            best = e.when;
    }
    return best;
}

bool
EventQueue::popNext(Entry &out)
{
    while (!heap_.empty()) {
        std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
        Entry e = std::move(heap_.back());
        heap_.pop_back();
        auto it = pending_.find(e.id);
        if (it == pending_.end())
            continue; // cancelled; drop silently
        pending_.erase(it);
        out = std::move(e);
        return true;
    }
    return false;
}

uint64_t
EventQueue::runUntil(Tick limit)
{
    uint64_t executed = 0;
    Entry e;
    while (!heap_.empty()) {
        // Peek: stop without popping if the earliest live event is
        // beyond the limit.
        if (!pending_.count(heap_.front().id)) {
            // Stale top; pop and discard.
            std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
            heap_.pop_back();
            continue;
        }
        if (heap_.front().when > limit)
            break;
        if (!popNext(e))
            break;
        pv_assert(e.when >= curTick_, "event queue went backwards");
        curTick_ = e.when;
        e.fn();
        ++numExecuted_;
        ++executed;
    }
    return executed;
}

uint64_t
EventQueue::runOneTick()
{
    if (empty())
        return 0;
    return runUntil(nextTick());
}

void
EventQueue::reset()
{
    heap_.clear();
    pending_.clear();
    curTick_ = 0;
}

} // namespace pvsim
