#include "sim/quantum_scheduler.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pvsim {

QuantumScheduler::QuantumScheduler(unsigned num_clusters)
{
    pv_assert(num_clusters > 0, "need at least one cluster");
    queues_.reserve(num_clusters);
    for (unsigned i = 0; i < num_clusters; ++i)
        queues_.push_back(std::make_unique<EventQueue>());
}

QuantumScheduler::~QuantumScheduler()
{
    if (workers_.empty())
        return;
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cvWork_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
QuantumScheduler::startWorkers()
{
    workers_.reserve(queues_.size());
    for (unsigned i = 0; i < queues_.size(); ++i)
        workers_.emplace_back([this, i] { workerMain(i); });
}

void
QuantumScheduler::setWorkerInit(std::function<void(unsigned)> fn)
{
    pv_assert(workers_.empty(),
              "setWorkerInit must precede the first runWindow");
    workerInit_ = std::move(fn);
}

void
QuantumScheduler::setWindowPrologue(
    std::function<void(unsigned, EventQueue &)> fn)
{
    pv_assert(workers_.empty(),
              "setWindowPrologue must precede the first runWindow");
    windowPrologue_ = std::move(fn);
}

void
QuantumScheduler::workerMain(unsigned idx)
{
    if (workerInit_)
        workerInit_(idx);
    EventQueue &eq = *queues_[idx];
    uint64_t seen = 0;
    for (;;) {
        Tick window_end;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cvWork_.wait(lock, [&] {
                return stop_ || epoch_ != seen;
            });
            if (stop_)
                return;
            seen = epoch_;
            window_end = windowEnd_;
        }
        {
            // Every model event this thread executes schedules into
            // (and reads time from) this cluster's queue.
            EventQueue::CurrentScope scope(&eq);
            if (windowPrologue_)
                windowPrologue_(idx, eq);
            eq.runUntil(window_end - 1);
            if (eq.curTick() < window_end)
                eq.setCurTick(window_end);
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            --running_;
        }
        cvDone_.notify_one();
    }
}

void
QuantumScheduler::runWindow(Tick window_end)
{
    runWindowAsync(window_end);
    wait();
}

void
QuantumScheduler::runWindowAsync(Tick window_end)
{
    if (workers_.empty())
        startWorkers();
    {
        std::lock_guard<std::mutex> lock(mu_);
        windowEnd_ = window_end;
        running_ = unsigned(queues_.size());
        ++epoch_;
    }
    cvWork_.notify_all();
}

void
QuantumScheduler::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    cvDone_.wait(lock, [&] { return running_ == 0; });
}

bool
QuantumScheduler::allEmpty() const
{
    for (const auto &q : queues_)
        if (!q->empty())
            return false;
    return true;
}

Tick
QuantumScheduler::minPendingTick() const
{
    Tick best = kMaxTick;
    for (const auto &q : queues_) {
        if (!q->empty())
            best = std::min(best, q->nextTick());
    }
    return best;
}

uint64_t
QuantumScheduler::eventsExecuted() const
{
    uint64_t n = 0;
    for (const auto &q : queues_)
        n += q->numExecuted();
    return n;
}

} // namespace pvsim
