/**
 * @file
 * QuantumScheduler: conservative parallel discrete-event execution
 * over a set of cluster EventQueues.
 *
 * The driver (System::runTiming) advances simulation in fixed
 * windows of Q ticks. Each window, every cluster queue runs its
 * events for [curTick, windowEnd) on a worker thread with that
 * queue installed as the thread's current queue — so every model
 * the cluster owns transparently schedules into, and reads time
 * from, its own domain. The barrier at the window edge is where the
 * driver exchanges cross-cluster traffic; the scheduler itself only
 * provides the queues, the worker pool, and the barrier.
 *
 * Safe whenever Q does not exceed the minimum latency of any
 * cross-cluster interaction (here: the shared L2's data latency) —
 * then no event produced in one domain during a window can be due
 * in another domain within the same window.
 */

#ifndef PVSIM_SIM_QUANTUM_SCHEDULER_HH
#define PVSIM_SIM_QUANTUM_SCHEDULER_HH

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace pvsim {

/** Worker pool running one EventQueue per cluster in lockstep. */
class QuantumScheduler
{
  public:
    explicit QuantumScheduler(unsigned num_clusters);
    ~QuantumScheduler();

    QuantumScheduler(const QuantumScheduler &) = delete;
    QuantumScheduler &operator=(const QuantumScheduler &) = delete;

    unsigned numClusters() const { return unsigned(queues_.size()); }
    EventQueue &clusterQueue(unsigned i) { return *queues_.at(i); }

    /**
     * Run every cluster queue in parallel up to (excluding)
     * window_end, then advance each to exactly window_end. Returns
     * once all clusters reached the barrier; the caller then owns
     * every queue until the next call.
     */
    void runWindow(Tick window_end);

    /**
     * Overlapped variant: release the workers into the window and
     * return immediately, so the caller can do barrier work that
     * touches no cluster state (stat-deferral flushes, the DRAM
     * reservation walk) concurrently with the window. Must be
     * paired with wait() before anything cluster-owned is touched.
     */
    void runWindowAsync(Tick window_end);

    /** Barrier for runWindowAsync: returns once every worker
     *  reached window_end. */
    void wait();

    /** True when no cluster queue has pending events. */
    bool allEmpty() const;

    /** Earliest pending tick across clusters (kMaxTick if none). */
    Tick minPendingTick() const;

    /** Total events executed across cluster queues. */
    uint64_t eventsExecuted() const;

    /**
     * Hook run once on each worker thread, on that thread, before
     * its first window (argument: the worker's queue index). Used
     * to install thread-local state that must live for the worker's
     * lifetime — e.g. a stats::Deferral for workers whose models
     * share stat objects. Must be set before the first runWindow().
     */
    void setWorkerInit(std::function<void(unsigned)> fn);

    /**
     * Hook run by each worker at the start of every window, on that
     * thread with its queue current, before any event executes
     * (arguments: queue index, the queue). This is how the
     * overlapped drain fans barrier work out to its owners: each
     * worker replays exactly the parked traffic destined for its
     * own queue, so the serial flush loop disappears from the
     * barrier. Must be set before the first runWindow().
     */
    void setWindowPrologue(
        std::function<void(unsigned, EventQueue &)> fn);

  private:
    void workerMain(unsigned idx);
    void startWorkers();

    std::vector<std::unique_ptr<EventQueue>> queues_;
    std::vector<std::thread> workers_;
    std::function<void(unsigned)> workerInit_;
    std::function<void(unsigned, EventQueue &)> windowPrologue_;

    std::mutex mu_;
    std::condition_variable cvWork_;
    std::condition_variable cvDone_;
    uint64_t epoch_ = 0;
    Tick windowEnd_ = 0;
    unsigned running_ = 0;
    bool stop_ = false;
};

} // namespace pvsim

#endif // PVSIM_SIM_QUANTUM_SCHEDULER_HH
