/**
 * @file
 * Fundamental simulator types and global constants.
 *
 * Time is counted in ticks; one tick is one CPU clock cycle (the
 * paper quotes all latencies in cycles of a 4 GHz core, so no
 * frequency conversion is needed anywhere).
 */

#ifndef PVSIM_SIM_TYPES_HH
#define PVSIM_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace pvsim {

/** Simulated time, in CPU cycles. */
using Tick = uint64_t;

/** Physical memory address. */
using Addr = uint64_t;

/** Latencies and durations, in CPU cycles. */
using Cycles = uint64_t;

/** Sentinel for "never". */
constexpr Tick kMaxTick = std::numeric_limits<Tick>::max();

/**
 * Cache block size in bytes. The entire hierarchy uses 64-byte
 * blocks, as in the paper (Table 1); the PVTable packing (Figure 3a)
 * depends on this value.
 */
constexpr unsigned kBlockBytes = 64;

/** log2(kBlockBytes), for address <-> block-number conversions. */
constexpr unsigned kBlockShift = 6;

/** Convert an address to its block-aligned base. */
constexpr Addr
blockAlign(Addr a)
{
    return a & ~Addr(kBlockBytes - 1);
}

/** Convert an address to a block number. */
constexpr Addr
blockNumber(Addr a)
{
    return a >> kBlockShift;
}

/** Invalid core/requestor id. */
constexpr int kInvalidCore = -1;

} // namespace pvsim

#endif // PVSIM_SIM_TYPES_HH
