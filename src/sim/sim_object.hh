/**
 * @file
 * SimObject: base class for every named model component. Provides
 * the component's name, access to the shared event queue, the
 * execution mode (functional vs. timing), and a stats group rooted
 * at the object's name.
 */

#ifndef PVSIM_SIM_SIM_OBJECT_HH
#define PVSIM_SIM_SIM_OBJECT_HH

#include <functional>
#include <string>

#include "sim/event_queue.hh"
#include "sim/types.hh"
#include "stats/group.hh"

namespace pvsim {

/**
 * Execution mode of the memory system.
 *
 * Functional mode resolves every access synchronously with zero
 * latency — state transitions (fills, evictions, writebacks,
 * invalidations) still happen, so contents and traffic stats are
 * exact; only time is absent. This reproduces the paper's
 * "functional simulation" experiments (Sections 4.2-4.3).
 *
 * Timing mode runs on the event queue with the configured latencies,
 * MSHR and bank contention; used for the speedup experiments
 * (Sections 4.4-4.5).
 */
enum class SimMode { Functional, Timing };

/** Shared context: one per simulated system. */
class SimContext
{
  public:
    explicit SimContext(SimMode mode = SimMode::Functional)
        : mode_(mode), root_(nullptr, "")
    {}

    SimMode mode() const { return mode_; }
    bool isTiming() const { return mode_ == SimMode::Timing; }

    /**
     * The event queue the calling thread should schedule into: the
     * thread's current-queue override when one is installed (the
     * sharded timing driver points each worker at its cluster's
     * queue for the duration of a quantum), else the context's base
     * queue. Serial simulation never installs an override, so this
     * stays the single shared queue.
     */
    EventQueue &
    events()
    {
        EventQueue *cur = EventQueue::current();
        return cur ? *cur : events_;
    }

    /** The context's own queue, ignoring any thread-local override
     *  (the sharded driver's shared L2/DRAM domain). */
    EventQueue &baseEvents() { return events_; }

    Tick
    curTick() const
    {
        EventQueue *cur = EventQueue::current();
        return cur ? cur->curTick() : events_.curTick();
    }

    stats::Group &statsRoot() { return root_; }

    /** Dump every registered stat of every SimObject. */
    void dumpStats(std::ostream &os) const { root_.dumpStats(os); }
    void resetStats() { root_.resetStats(); }

  private:
    SimMode mode_;
    EventQueue events_;
    stats::Group root_;
};

/** Named component with stats and event-scheduling helpers. */
class SimObject : public stats::Group
{
  public:
    /**
     * @param ctx    Owning simulation context.
     * @param parent Parent in the stats hierarchy (nullptr roots the
     *               object directly under the context).
     * @param name   Component name (becomes the stats prefix).
     */
    SimObject(SimContext &ctx, stats::Group *parent,
              const std::string &name)
        : stats::Group(parent ? parent : &ctx.statsRoot(), name),
          ctx_(ctx), name_(name)
    {}

    const std::string &name() const { return name_; }
    SimContext &ctx() { return ctx_; }
    Tick curTick() const { return ctx_.curTick(); }
    bool isTiming() const { return ctx_.isTiming(); }

    /** Schedule fn to run delay cycles from now (timing mode).
     *  Templated so small closures land in the event queue's inline
     *  node storage instead of being boxed through std::function. */
    template <typename F>
    EventQueue::EventId
    schedule(Cycles delay, F &&fn,
             int priority = EventQueue::kPrioDefault)
    {
        EventQueue &eq = ctx_.events();
        return eq.schedule(eq.curTick() + delay, priority,
                           std::forward<F>(fn));
    }

  private:
    SimContext &ctx_;
    std::string name_;
};

} // namespace pvsim

#endif // PVSIM_SIM_SIM_OBJECT_HH
