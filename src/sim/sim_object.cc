#include "sim/sim_object.hh"

// SimObject and SimContext are header-only; this translation unit
// exists so the library has a stable archive member for the sim
// kernel and to catch ODR/include breakage early.

namespace pvsim {

static_assert(sizeof(Tick) == 8, "ticks must be 64-bit");

} // namespace pvsim
