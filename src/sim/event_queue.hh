/**
 * @file
 * Discrete-event queue: the backbone of timing-mode simulation.
 * Events are closures scheduled at absolute ticks; same-tick events
 * are ordered by priority (lower first), then by scheduling order.
 */

#ifndef PVSIM_SIM_EVENT_QUEUE_HH
#define PVSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/types.hh"

namespace pvsim {

/** Tick-ordered queue of callbacks with stable same-tick ordering. */
class EventQueue
{
  public:
    using EventId = uint64_t;

    /** Standard event priorities (lower executes first). */
    enum Priority {
        kPrioResponse = -10, ///< deliver responses before new requests
        kPrioDefault = 0,
        kPrioCpu = 10, ///< CPU ticks run after memory-system events
    };

    /**
     * Schedule fn to run at absolute tick when.
     * @pre when >= curTick().
     * @return Handle usable with cancel().
     */
    EventId schedule(Tick when, int priority,
                     std::function<void()> fn);

    EventId
    schedule(Tick when, std::function<void()> fn)
    {
        return schedule(when, kPrioDefault, std::move(fn));
    }

    /**
     * Cancel a pending event; no-op if it already ran. Cancellation
     * is lazy — the heap entry (and its closure) stays until popped
     * — but the heap is compacted whenever dead entries outnumber
     * live ones, so cancel-heavy callers cannot grow it without
     * bound. (No current model cancels events; the bound is for
     * what speculative timing models will need.)
     */
    void cancel(EventId id);

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /**
     * Advance time without events (used by drivers that know the
     * next interesting tick). @pre to >= curTick().
     */
    void setCurTick(Tick to);

    /** True if no pending (non-cancelled) events remain. */
    bool empty() const { return pending_.empty(); }

    /** Number of pending events. */
    size_t numPending() const { return pending_.size(); }

    /** Heap entries, live plus not-yet-reclaimed cancelled ones
     *  (observability for the compaction tests). */
    size_t heapSize() const { return heap_.size(); }

    /** Tick of the earliest pending event. @pre !empty(). */
    Tick nextTick() const;

    /**
     * Run events until the queue drains or limit is exceeded
     * (events scheduled at ticks > limit stay queued).
     * @return Number of events executed.
     */
    uint64_t runUntil(Tick limit = kMaxTick);

    /** Execute exactly the events of the current earliest tick. */
    uint64_t runOneTick();

    /** Drop all pending events and rewind time to zero. */
    void reset();

    /** Total events ever executed (for microbenchmarks/tests). */
    uint64_t numExecuted() const { return numExecuted_; }

  private:
    struct Entry {
        Tick when;
        int priority;
        EventId id;
        std::function<void()> fn;
        // Min-heap order: earliest tick, then lowest priority value,
        // then insertion order for stability.
        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (priority != o.priority)
                return priority > o.priority;
            return id > o.id;
        }
    };

    /** Pop the earliest live entry into out; false if none. */
    bool popNext(Entry &out);

    /** Drop cancelled entries when they exceed half the heap. */
    void maybeCompact();

    /** Below this size compaction is not worth the re-heapify. */
    static constexpr size_t kCompactMinHeap = 64;

    std::vector<Entry> heap_;
    std::unordered_set<EventId> pending_;
    Tick curTick_ = 0;
    EventId nextId_ = 0;
    uint64_t numExecuted_ = 0;
};

} // namespace pvsim

#endif // PVSIM_SIM_EVENT_QUEUE_HH
