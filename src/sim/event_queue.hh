/**
 * @file
 * Discrete-event queue: the backbone of timing-mode simulation.
 * Events are closures scheduled at absolute ticks; same-tick events
 * are ordered by priority (lower first), then by scheduling order.
 *
 * Event nodes are pooled: each node carries inline storage for the
 * scheduled callable, and executed/cancelled nodes return to an
 * intrusive freelist instead of the heap — doing for events what
 * PacketPool did for packets. Timing mode used to pay one heap node
 * plus a std::function allocation per event; steady-state scheduling
 * now allocates nothing (asserted in tests). Callables larger than
 * the inline slot are boxed on the heap transparently.
 */

#ifndef PVSIM_SIM_EVENT_QUEUE_HH
#define PVSIM_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace pvsim {

/** Tick-ordered queue of callbacks with stable same-tick ordering. */
class EventQueue
{
  public:
    using EventId = uint64_t;

    /** Standard event priorities (lower executes first). */
    enum Priority {
        kPrioResponse = -10, ///< deliver responses before new requests
        kPrioDefault = 0,
        kPrioCpu = 10, ///< CPU ticks run after memory-system events
    };

    EventQueue() = default;
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule fn to run at absolute tick when.
     * @pre when >= curTick().
     * @return Handle usable with cancel().
     */
    template <typename F>
    EventId
    schedule(Tick when, int priority, F &&fn)
    {
        Event *e = acquire(when, priority);
        emplaceCallable(*e, std::forward<F>(fn));
        commit(e);
        return e->id;
    }

    template <typename F>
    EventId
    schedule(Tick when, F &&fn)
    {
        return schedule(when, kPrioDefault, std::forward<F>(fn));
    }

    /**
     * Cancel a pending event; no-op if it already ran. Cancellation
     * is lazy — the heap entry (and its closure) stays until popped
     * — but the heap is compacted whenever dead entries outnumber
     * live ones, so cancel-heavy callers cannot grow it without
     * bound. (No current model cancels events; the bound is for
     * what speculative timing models will need.)
     */
    void cancel(EventId id);

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /**
     * Advance time without events (used by drivers that know the
     * next interesting tick). @pre to >= curTick().
     */
    void setCurTick(Tick to);

    /** True if no pending (non-cancelled) events remain. */
    bool empty() const { return pending_.empty(); }

    /** Number of pending events. */
    size_t numPending() const { return pending_.size(); }

    /** Heap entries, live plus not-yet-reclaimed cancelled ones
     *  (observability for the compaction tests). */
    size_t heapSize() const { return heap_.size(); }

    /** Tick of the earliest pending event. @pre !empty(). */
    Tick nextTick() const;

    /**
     * Run events until the queue drains or limit is exceeded
     * (events scheduled at ticks > limit stay queued).
     * @return Number of events executed.
     */
    uint64_t runUntil(Tick limit = kMaxTick);

    /** Execute exactly the events of the current earliest tick. */
    uint64_t runOneTick();

    /** Drop all pending events and rewind time to zero. */
    void reset();

    /** Total events ever executed (for microbenchmarks/tests). */
    uint64_t numExecuted() const { return numExecuted_; }

    /** Tick of the most recently executed event (0 before any).
     *  The sharded timing driver uses this for finish detection at
     *  window granularity. */
    Tick lastExecutedTick() const { return lastExecuted_; }

    // -- Freelist observability (tests, microbenchmarks) -------------

    /** Event nodes ever allocated from the pool's chunks. */
    size_t poolCapacity() const { return chunks_.size() * kChunkEvents; }

    /** Event nodes currently on the freelist. */
    size_t poolFree() const { return freeCount_; }

    // -- Thread-local current queue -----------------------------------

    /**
     * The calling thread's current event queue, or nullptr. The
     * sharded timing driver points each worker at its cluster's
     * queue for the duration of a quantum; SimContext::events()
     * honours the override so every model schedules into — and
     * reads time from — the domain it executes in, with zero
     * changes to the models themselves.
     */
    static EventQueue *current();

    /** RAII scope installing (and restoring) current(). */
    class CurrentScope
    {
      public:
        explicit CurrentScope(EventQueue *eq);
        ~CurrentScope();
        CurrentScope(const CurrentScope &) = delete;
        CurrentScope &operator=(const CurrentScope &) = delete;

      private:
        EventQueue *prev_;
    };

  private:
    /** Inline callable slot: covers every model closure (a few
     *  captured pointers) and a std::function; larger callables
     *  fall back to a heap box. */
    static constexpr size_t kInlineBytes = 48;
    /** Event nodes per pool chunk. */
    static constexpr size_t kChunkEvents = 128;

    struct Event {
        Tick when;
        int priority;
        EventId id;
        /** Run the stored callable. */
        void (*invoke)(void *storage);
        /** Destroy it without running (nullptr when trivial). */
        void (*destroy)(void *storage);
        /** Intrusive freelist link (only while free). */
        Event *nextFree;
        alignas(std::max_align_t) unsigned char storage[kInlineBytes];
    };

    template <typename F>
    static void
    invokeInline(void *p)
    {
        (*std::launder(reinterpret_cast<F *>(p)))();
    }

    template <typename F>
    static void
    destroyInline(void *p)
    {
        std::launder(reinterpret_cast<F *>(p))->~F();
    }

    template <typename F>
    static void
    invokeBoxed(void *p)
    {
        (**std::launder(reinterpret_cast<F **>(p)))();
    }

    template <typename F>
    static void
    destroyBoxed(void *p)
    {
        delete *std::launder(reinterpret_cast<F **>(p));
    }

    template <typename F>
    void
    emplaceCallable(Event &e, F &&fn)
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            new (static_cast<void *>(e.storage))
                Fn(std::forward<F>(fn));
            e.invoke = &invokeInline<Fn>;
            e.destroy = std::is_trivially_destructible_v<Fn>
                            ? nullptr
                            : &destroyInline<Fn>;
        } else {
            new (static_cast<void *>(e.storage))
                Fn *(new Fn(std::forward<F>(fn)));
            e.invoke = &invokeBoxed<Fn>;
            e.destroy = &destroyBoxed<Fn>;
        }
    }

    /** Take a node from the pool, stamped with (when, priority, id).
     *  Asserts when >= curTick(). */
    Event *acquire(Tick when, int priority);

    /** Insert an initialized node into the heap and pending set. */
    void commit(Event *e);

    /** Destroy an unexecuted node's callable and recycle the node. */
    void discard(Event *e);

    /** Recycle a node whose callable has already been consumed. */
    void release(Event *e);

    /** Min-heap comparator: earliest tick, then lowest priority
     *  value, then insertion order for stability. */
    struct Later {
        bool
        operator()(const Event *a, const Event *b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            if (a->priority != b->priority)
                return a->priority > b->priority;
            return a->id > b->id;
        }
    };

    /** Pop the earliest live entry; nullptr if none. Discards and
     *  recycles stale (cancelled) entries along the way. */
    Event *popNext();

    /** Drop cancelled entries when they exceed half the heap. */
    void maybeCompact();

    /** Below this size compaction is not worth the re-heapify. */
    static constexpr size_t kCompactMinHeap = 64;

    std::vector<Event *> heap_;
    std::unordered_set<EventId> pending_;
    std::vector<std::unique_ptr<Event[]>> chunks_;
    Event *freeHead_ = nullptr;
    size_t freeCount_ = 0;
    Tick curTick_ = 0;
    EventId nextId_ = 0;
    uint64_t numExecuted_ = 0;
    Tick lastExecuted_ = 0;
};

} // namespace pvsim

#endif // PVSIM_SIM_EVENT_QUEUE_HH
