/**
 * @file
 * Branch target buffer interfaces: the predictor seam the core
 * fetches through, plus a conventional dedicated-SRAM BTB.
 *
 * Two implementations exist: DedicatedBtb (below) models the
 * on-chip table a real front end owns, and VirtualizedBtb
 * (core/virt_btb.hh) stores the same table in the memory hierarchy
 * behind a PVProxy. Both answer through the same callback-style
 * lookup so the core is agnostic — which is what makes matched-pair
 * "dedicated SRAM vs virtualized" IPC comparisons (Figure 9-style)
 * possible.
 */

#ifndef PVSIM_CPU_BTB_HH
#define PVSIM_CPU_BTB_HH

#include <functional>
#include <vector>

#include "sim/types.hh"
#include "util/bitfield.hh"

namespace pvsim {

/** Target predictor the core consults for every taken branch. */
class BtbPredictor
{
  public:
    /**
     * Result delivery for lookup(); fires exactly once. A dedicated
     * BTB answers synchronously; a virtualized one may answer later
     * (after a PV fill) or report not-found under buffer pressure.
     */
    using LookupCallback =
        std::function<void(bool found, Addr target)>;

    virtual ~BtbPredictor() = default;

    /** Predict the target of the branch at pc. */
    virtual void lookup(Addr pc, LookupCallback cb) = 0;

    /** Learn/refresh a branch target. @pre target != 0. */
    virtual void update(Addr pc, Addr target) = 0;

    // ---- Predictor-level statistics --------------------------------
    // Kept on the seam so dedicated and virtualized tables report
    // comparably. "Found" counts lookups that produced *an* entry —
    // whether its target was right is scored by the core
    // (btb_hits / btb_mispredicts), which knows the actual branch.

    uint64_t lookups() const { return lookups_; }
    uint64_t lookupsFound() const { return lookupsFound_; }

    /** Clear the lookup counters. System::resetStats() calls this
     *  at the warmup/measure boundary so foundRate() covers the
     *  same window as the core's per-phase stats. */
    void
    resetLookupStats()
    {
        lookups_ = 0;
        lookupsFound_ = 0;
    }

    /** Fraction of lookups answered with an entry. */
    double
    foundRate() const
    {
        return lookups_ ? double(lookupsFound_) / double(lookups_)
                        : 0.0;
    }

  protected:
    /** Implementations score every resolved lookup through this. */
    void
    noteLookup(bool found)
    {
        ++lookups_;
        lookupsFound_ += found;
    }

  private:
    uint64_t lookups_ = 0;
    uint64_t lookupsFound_ = 0;
};

/** Dedicated BTB geometry (mirrors VirtEngineConfig's BTB fields). */
struct DedicatedBtbParams {
    unsigned numSets = 2048;
    unsigned assoc = 8;
    unsigned tagBits = 16;
};

/**
 * Conventional set-associative BTB held in dedicated SRAM: always
 * answers synchronously, never generates memory traffic. Indexing
 * and tagging mirror VirtualizedAssocTable (key = pc >> 2, set =
 * key % sets, tag = (key / sets) masked) so a capacity-equal
 * dedicated/virtualized pair learns the same working set and the
 * matched-pair IPC delta isolates the cost of virtualization.
 */
class DedicatedBtb final : public BtbPredictor
{
  public:
    explicit DedicatedBtb(const DedicatedBtbParams &params);

    void lookup(Addr pc, LookupCallback cb) override;
    void update(Addr pc, Addr target) override;

    /** Dedicated on-chip storage: tag + 46-bit target per entry. */
    uint64_t storageBits() const;

    unsigned numSets() const { return params_.numSets; }
    unsigned assoc() const { return params_.assoc; }

  private:
    struct Entry {
        uint32_t tag = 0;
        Addr target = 0; ///< 0 marks an empty way
        uint64_t lastTouch = 0;
    };

    static uint64_t keyOf(Addr pc) { return pc >> 2; }
    unsigned setOf(uint64_t key) const
    {
        return unsigned(key % params_.numSets);
    }
    uint32_t
    tagOf(uint64_t key) const
    {
        return uint32_t((key / params_.numSets) &
                        mask(int(params_.tagBits)));
    }
    Entry *find(unsigned set, uint32_t tag);

    DedicatedBtbParams params_;
    std::vector<Entry> entries_; ///< numSets x assoc, row-major
    uint64_t touchClock_ = 0;    ///< LRU timestamp source
};

} // namespace pvsim

#endif // PVSIM_CPU_BTB_HH
