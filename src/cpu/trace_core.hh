/**
 * @file
 * Trace-driven in-order core. Consumes TraceRecords, synthesizes the
 * instruction-fetch stream from (pc, gap), retires `width`
 * instructions per cycle, stalls on L1D load misses (stall-on-use),
 * and issues stores through a non-blocking store buffer. L1 hits are
 * pipelined (no stall); timing cost comes from misses — and, when a
 * BTB is attached with btbMispredictPenalty > 0, from front-end
 * redirects after mispredicted taken branches.
 *
 * When a BtbPredictor is attached (a DedicatedBtb, or a
 * VirtualizedBtb driving the shared PVProxy — the paper's Section 6
 * "other existing predictors" path), the core reconstructs taken
 * branches from record boundaries (a record whose pc is not the
 * previous record's fall-through was reached by a taken branch) and
 * predicts/trains through it. In timing mode a mispredict — the
 * predictor wrong, or unable to answer by fetch time, as a
 * virtualized BTB waiting on a PV fill is — charges a fetchRedirect
 * stall of btbMispredictPenalty cycles through the event queue,
 * tracked separately from load/fetch/store stalls.
 */

#ifndef PVSIM_CPU_TRACE_CORE_HH
#define PVSIM_CPU_TRACE_CORE_HH

#include <string>
#include <vector>

#include "cpu/btb.hh"
#include "mem/cache.hh"
#include "mem/packet.hh"
#include "mem/port.hh"
#include "sim/sim_object.hh"
#include "stats/stat.hh"
#include "trace/trace_record.hh"

namespace pvsim {

class VirtualizedAgt;
class VirtualizedStride;

/** Core configuration (paper Table 1, simplified to in-order). */
struct CoreParams {
    std::string name = "core";
    int id = 0;
    /** Instructions retired per cycle when not stalled. */
    unsigned width = 4;
    /** Store buffer entries (stores in flight without stalling). */
    unsigned storeBufferEntries = 8;
    /** Bytes per instruction for the synthetic fetch stream. */
    unsigned instBytes = 4;
    /**
     * Front-end stall per mispredicted taken branch (timing mode,
     * needs an attached BTB). 0 keeps the historical free-branch
     * timing bit-for-bit.
     */
    Cycles btbMispredictPenalty = 0;
};

/** The core. */
class TraceCore final : public SimObject, public MemClient
{
  public:
    /** Records pulled from the source per batched stepping chunk. */
    static constexpr size_t kBatchRecords = 256;

    TraceCore(SimContext &ctx, const CoreParams &params,
              TraceSource *source, Cache *l1d, Cache *l1i);

    /**
     * Attach a BTB (dedicated or virtualized): every taken branch
     * reconstructed from the trace is predicted and trained
     * through it.
     */
    void setBtb(BtbPredictor *btb) { btb_ = btb; }

    /**
     * Attach a virtualized stride table: every data access is
     * predicted and trained through it (prediction quality is
     * tracked in stridePredicts/strideHits).
     */
    void setStride(VirtualizedStride *stride) { stride_ = stride; }

    /**
     * Attach a virtualized AGT: every data access is observed
     * through it (read-modify-write PV traffic; the accumulated
     * generations feed its sink, when one is set).
     */
    void setAgt(VirtualizedAgt *agt) { agt_ = agt; }

    // ---- Functional mode -------------------------------------------

    /**
     * Consume one trace record with zero-latency memory accesses
     * (instruction fetch included). Returns false at end-of-trace.
     */
    bool stepFunctional();

    /**
     * Consume up to max_records records in kBatchRecords-sized
     * chunks pulled through TraceSource::nextBatch — one virtual
     * call per chunk instead of one per record, with the identical
     * per-record state transitions and statistics as
     * stepFunctional(). Returns the number of records consumed
     * (less than max_records only at end-of-trace).
     */
    uint64_t stepFunctionalBatch(uint64_t max_records);

    // ---- Timing mode --------------------------------------------------

    /**
     * Begin execution: schedules the first advance. The core runs
     * until the trace ends or the record budget is exhausted.
     */
    void start(uint64_t max_records);

    /** True once the record budget / trace is exhausted. */
    bool done() const { return done_; }

    /** Tick at which this core retired its last record (0 before
     *  finishing). Used by the sharded timing driver, which cannot
     *  observe the exact global tick a core finished at the way the
     *  serial loop can. */
    Tick finishTick() const { return finishTick_; }

    // MemClient
    void recvResponse(PacketPtr pkt) override;
    std::string clientName() const override { return name(); }

    // ---- Measurement -----------------------------------------------------

    uint64_t instructionsRetired() const
    {
        return instsRetired.value();
    }
    uint64_t recordsConsumed() const { return records.value(); }

    /** Fraction of taken branches whose target the BTB predicted
     *  (0 when no taken branch was scored yet). */
    double
    btbHitRate() const
    {
        uint64_t scored = btbHits.value() + btbMispredicts.value();
        return scored ? double(btbHits.value()) / double(scored)
                      : 0.0;
    }

    /** Aggregate IPC since the last stats reset (timing mode). */
    double
    ipc(Tick elapsed) const
    {
        return elapsed ? double(instsRetired.value()) /
                             double(elapsed)
                       : 0.0;
    }

    stats::Scalar records;
    stats::Scalar instsRetired;
    stats::Scalar loadStallCycles;
    stats::Scalar fetchStallCycles;
    stats::Scalar storeStallCycles;
    stats::Scalar mispredictStallCycles;
    stats::Scalar fetchRedirects; ///< redirect events scheduled
    stats::Scalar loads;
    stats::Scalar stores;
    stats::Scalar takenBranches;   ///< record boundaries not fall-through
    stats::Scalar callBranches;    ///< ... of which annotated calls
    stats::Scalar returnBranches;  ///< ... of which annotated returns
    stats::Scalar loopBranches;    ///< ... of which loop back-edges
    stats::Scalar btbHits;         ///< BTB predicted the right target
    stats::Scalar btbMispredicts;  ///< BTB missed or predicted wrong
    /** Lookups unanswered at fetch time (a virtualized BTB waiting
     *  on its PV fill). Each one charges a redirect in timing mode
     *  whatever the late answer turns out to be — these are the
     *  availability redirects per-tenant QoS exists to protect. A
     *  dedicated BTB answers synchronously, so its count is zero. */
    stats::Scalar btbUnavailable;
    stats::Scalar stridePredicts;  ///< confident stride predictions
    stats::Scalar strideHits;      ///< ... matching the actual block

  private:
    /** Drive the state machine as far as it can go this tick. */
    void advance();

    /** Functional-mode work for the record in rec_ (shared by the
     *  scalar and batched stepping paths). */
    void processRecordFunctional();

    /**
     * Reconstruct the branch (if any) that led to the just-loaded
     * record and drive the attached BTB and stride engines; updates
     * the fall-through tracking state either way.
     */
    void noteRecordBoundary();

    /** Issue the instruction-fetch for the current record; true if
     *  fetch completed without a stall. */
    bool doFetch();

    /** Issue the data access; true if it completed synchronously. */
    bool doMem();

    /** Load the next record; false at end of trace/budget. */
    bool refill();

    enum class Phase { NeedRecord, Fetch, Gap, Mem, Done };

    CoreParams params_;
    TraceSource *source_;
    Cache *l1d_;
    Cache *l1i_;
    BtbPredictor *btb_ = nullptr;
    VirtualizedStride *stride_ = nullptr;
    VirtualizedAgt *agt_ = nullptr;

    /** Branch reconstruction state (see noteRecordBoundary).
     *  Cleared by start(): a measurement phase must not score or
     *  charge a phantom branch edge against the previous phase's
     *  last record. */
    bool prevRecordValid_ = false;
    Addr prevPc_ = 0;          ///< previous record's pc (branch key)
    Addr prevFallthrough_ = 0; ///< pc the next record "should" have

    /**
     * Redirect bookkeeping for the mispredict penalty: the lookup
     * callback sets lookupResolved_/lookupCorrect_; a callback
     * still unresolved when noteRecordBoundary returns (a
     * virtualized BTB waiting on its PV fill) counts as a
     * mispredict for timing, whatever it eventually reports.
     */
    bool lookupResolved_ = false;
    bool lookupCorrect_ = false;
    bool pendingRedirect_ = false;

    TraceRecord rec_;
    Phase phase_ = Phase::NeedRecord;
    uint64_t maxRecords_ = 0;
    bool done_ = false;
    Tick finishTick_ = 0;

    /** Last instruction block fetched (suppresses repeat fetches). */
    Addr lastFetchBlock_ = ~Addr(0);
    /**
     * Instruction blocks to fetch for this record, drained strictly
     * FIFO by fetchPos_. A reused vector plus cursor: refilling
     * never reallocates once warm (the record's block count is
     * bounded by gap), unlike the deque this replaces.
     */
    std::vector<Addr> fetchQueue_;
    size_t fetchPos_ = 0;
    /** Chunk buffer for stepFunctionalBatch. */
    std::vector<TraceRecord> batch_;
    bool waitingFetch_ = false;
    bool waitingLoad_ = false;
    Tick stallStart_ = 0;

    unsigned storesInFlight_ = 0;
    bool stalledOnStoreBuffer_ = false;
};

} // namespace pvsim

#endif // PVSIM_CPU_TRACE_CORE_HH
