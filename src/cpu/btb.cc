#include "cpu/btb.hh"

#include "util/logging.hh"

namespace pvsim {

DedicatedBtb::DedicatedBtb(const DedicatedBtbParams &params)
    : params_(params),
      entries_(size_t(params.numSets) * params.assoc)
{
    pv_assert(params_.numSets > 0 && params_.assoc > 0,
              "BTB needs at least one entry");
}

DedicatedBtb::Entry *
DedicatedBtb::find(unsigned set, uint32_t tag)
{
    Entry *row = &entries_[size_t(set) * params_.assoc];
    for (unsigned w = 0; w < params_.assoc; ++w) {
        if (row[w].target != 0 && row[w].tag == tag)
            return &row[w];
    }
    return nullptr;
}

void
DedicatedBtb::lookup(Addr pc, LookupCallback cb)
{
    uint64_t key = keyOf(pc);
    if (Entry *e = find(setOf(key), tagOf(key))) {
        e->lastTouch = ++touchClock_;
        noteLookup(true);
        cb(true, e->target);
        return;
    }
    noteLookup(false);
    cb(false, 0);
}

void
DedicatedBtb::update(Addr pc, Addr target)
{
    pv_assert(target != 0, "zero target is the empty marker");
    uint64_t key = keyOf(pc);
    unsigned set = setOf(key);
    uint32_t tag = tagOf(key);
    if (Entry *e = find(set, tag)) {
        e->target = target;
        e->lastTouch = ++touchClock_;
        return;
    }
    // Insert: first free way, else LRU victim.
    Entry *row = &entries_[size_t(set) * params_.assoc];
    Entry *victim = &row[0];
    for (unsigned w = 0; w < params_.assoc; ++w) {
        if (row[w].target == 0) {
            victim = &row[w];
            break;
        }
        if (row[w].lastTouch < victim->lastTouch)
            victim = &row[w];
    }
    victim->tag = tag;
    victim->target = target;
    victim->lastTouch = ++touchClock_;
}

uint64_t
DedicatedBtb::storageBits() const
{
    // Matches the virtualized packing: tag + 46 target bits per
    // entry (core/virt_btb.cc's codec).
    return uint64_t(params_.numSets) * params_.assoc *
           (params_.tagBits + 46);
}

} // namespace pvsim
