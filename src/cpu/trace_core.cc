#include "cpu/trace_core.hh"

#include "core/virt_agt.hh"
#include "core/virt_stride.hh"
#include "mem/packet_pool.hh"
#include "util/intmath.hh"
#include "util/logging.hh"

namespace pvsim {

TraceCore::TraceCore(SimContext &ctx, const CoreParams &params,
                     TraceSource *source, Cache *l1d, Cache *l1i)
    : SimObject(ctx, nullptr, params.name),
      records(this, "records", "trace records consumed"),
      instsRetired(this, "insts_retired", "instructions retired"),
      loadStallCycles(this, "load_stall_cycles",
                      "cycles stalled on load misses"),
      fetchStallCycles(this, "fetch_stall_cycles",
                       "cycles stalled on instruction fetch"),
      storeStallCycles(this, "store_stall_cycles",
                       "cycles stalled on a full store buffer"),
      mispredictStallCycles(this, "mispredict_stall_cycles",
                            "cycles stalled on fetch redirects "
                            "after BTB mispredicts"),
      fetchRedirects(this, "fetch_redirects",
                     "fetch-redirect events after BTB mispredicts"),
      loads(this, "loads", "load instructions"),
      stores(this, "stores", "store instructions"),
      takenBranches(this, "taken_branches",
                    "taken branches reconstructed from the trace"),
      callBranches(this, "call_branches",
                   "taken branches annotated as calls"),
      returnBranches(this, "return_branches",
                     "taken branches annotated as returns"),
      loopBranches(this, "loop_branches",
                   "taken branches annotated as loop back-edges"),
      btbHits(this, "btb_hits",
              "taken branches whose target the BTB predicted"),
      btbMispredicts(this, "btb_mispredicts",
                     "taken branches the BTB missed or mistargeted"),
      btbUnavailable(this, "btb_unavailable",
                     "taken-branch lookups unanswered at fetch time "
                     "(prediction still waiting on its PV fill)"),
      stridePredicts(this, "stride_predicts",
                     "confident stride-table predictions"),
      strideHits(this, "stride_hits",
                 "stride predictions matching the accessed block"),
      params_(params), source_(source), l1d_(l1d), l1i_(l1i)
{
    pv_assert(source_ && l1d_ && l1i_, "core needs source and caches");
}

void
TraceCore::noteRecordBoundary()
{
    // How was this record reached? Annotated streams (the
    // program-structure generator, annotated trace files) say so
    // explicitly — a real successor edge, not a reconstruction.
    // Unannotated streams fall back to the historical boundary
    // heuristic: a record starting off the previous record's
    // fall-through path was reached by a taken branch. Either way
    // the branch is keyed by the previous record's (stable)
    // memory-instruction pc — not the gap-dependent
    // last-instruction address — and its target is this record's
    // pc.
    const bool taken = rec_.edge == BranchEdge::None
                           ? rec_.pc != prevFallthrough_
                           : isTakenEdge(rec_.edge);
    if (prevRecordValid_ && taken) {
        ++takenBranches;
        switch (rec_.edge) {
          case BranchEdge::Call: ++callBranches; break;
          case BranchEdge::Ret: ++returnBranches; break;
          case BranchEdge::Loop: ++loopBranches; break;
          default: break;
        }
        if (btb_ && rec_.pc != 0) {
            Addr target = rec_.pc;
            // Members, not locals: a virtualized BTB may hold the
            // callback until its PV line fills, long after this
            // frame returns. The hit/mispredict stats score the
            // eventual answer; the redirect decision below only
            // trusts an answer available *now* (at fetch).
            lookupResolved_ = false;
            lookupCorrect_ = false;
            btb_->lookup(prevPc_,
                         [this, target](bool found, Addr predicted) {
                lookupResolved_ = true;
                lookupCorrect_ = found && predicted == target;
                if (lookupCorrect_)
                    ++btbHits;
                else
                    ++btbMispredicts;
            });
            if (!lookupResolved_)
                ++btbUnavailable;
            if (isTiming() && params_.btbMispredictPenalty > 0 &&
                !(lookupResolved_ && lookupCorrect_)) {
                pendingRedirect_ = true;
            }
            btb_->update(prevPc_, target);
        }
    }
    prevRecordValid_ = true;
    prevPc_ = rec_.pc;
    prevFallthrough_ =
        rec_.pc + (Addr(rec_.gap) + 1) * params_.instBytes;

    if (stride_) {
        // Predict before training so the prediction reflects what
        // the engine knew prior to this access.
        Addr actual = blockAlign(rec_.addr);
        stride_->predict(rec_.pc,
                         [this, actual](bool confident, Addr next) {
            if (!confident)
                return;
            ++stridePredicts;
            if (next == actual)
                ++strideHits;
        });
        stride_->observe(rec_.pc, rec_.addr);
    }

    if (agt_)
        agt_->observe(rec_.pc, rec_.addr);
}

// -----------------------------------------------------------------------
// Functional mode
// -----------------------------------------------------------------------

void
TraceCore::processRecordFunctional()
{
    ++records;
    noteRecordBoundary();
    instsRetired += uint64_t(rec_.gap) + 1;

    // Instruction fetch: blocks covering [pc, pc + (gap+1)*instBytes).
    Addr start = rec_.pc;
    uint64_t bytes = (uint64_t(rec_.gap) + 1) * params_.instBytes;
    for (Addr b = blockAlign(start); b < start + bytes;
         b += kBlockBytes) {
        if (b == lastFetchBlock_)
            continue;
        lastFetchBlock_ = b;
        Packet fp(MemCmd::ReadReq, b, params_.id);
        fp.pc = rec_.pc;
        fp.isInstFetch = true;
        l1i_->functionalAccess(fp);
    }

    // Data access.
    Packet mp(rec_.isLoad() ? MemCmd::ReadReq : MemCmd::WriteReq,
              rec_.addr, params_.id);
    mp.pc = rec_.pc;
    l1d_->functionalAccess(mp);
    if (rec_.isLoad())
        ++loads;
    else
        ++stores;
}

bool
TraceCore::stepFunctional()
{
    if (!source_->next(rec_))
        return false;
    processRecordFunctional();
    return true;
}

uint64_t
TraceCore::stepFunctionalBatch(uint64_t max_records)
{
    if (batch_.empty())
        batch_.resize(kBatchRecords);
    uint64_t consumed = 0;
    while (consumed < max_records) {
        size_t want = size_t(
            std::min<uint64_t>(kBatchRecords, max_records - consumed));
        size_t got = source_->nextBatch(batch_.data(), want);
        for (size_t i = 0; i < got; ++i) {
            rec_ = batch_[i];
            processRecordFunctional();
        }
        consumed += got;
        if (got < want)
            break; // end of trace
    }
    return consumed;
}

// -----------------------------------------------------------------------
// Timing mode
// -----------------------------------------------------------------------

void
TraceCore::start(uint64_t max_records)
{
    pv_assert(isTiming(), "start() is for timing mode");
    maxRecords_ = max_records;
    done_ = false;
    phase_ = Phase::NeedRecord;
    // A new phase (warmup -> measure) starts with clean branch
    // reconstruction: the previous phase's last record must not
    // score a phantom edge — or charge a redirect — against this
    // phase's first record. Fetch-suppression state
    // (lastFetchBlock_) is physical and deliberately survives.
    prevRecordValid_ = false;
    prevPc_ = 0;
    prevFallthrough_ = 0;
    pendingRedirect_ = false;
    schedule(0, [this] { advance(); }, EventQueue::kPrioCpu);
}

bool
TraceCore::refill()
{
    if (maxRecords_ && records.value() >= maxRecords_)
        return false;
    if (!source_->next(rec_))
        return false;
    ++records;
    noteRecordBoundary();

    fetchQueue_.clear();
    fetchPos_ = 0;
    Addr start = rec_.pc;
    uint64_t bytes = (uint64_t(rec_.gap) + 1) * params_.instBytes;
    for (Addr b = blockAlign(start); b < start + bytes;
         b += kBlockBytes) {
        if (b != lastFetchBlock_)
            fetchQueue_.push_back(b);
    }
    if (!fetchQueue_.empty())
        lastFetchBlock_ = fetchQueue_.back();
    return true;
}

bool
TraceCore::doFetch()
{
    while (fetchPos_ < fetchQueue_.size()) {
        Addr b = fetchQueue_[fetchPos_++];
        auto *pkt = allocPacket(MemCmd::ReadReq, b, params_.id);
        pkt->pc = rec_.pc;
        pkt->isInstFetch = true;
        pkt->src = this;
        if (l1i_->probeAccess(pkt)) {
            // Pipelined hit: free.
            freePacket(pkt);
            continue;
        }
        // Miss: stall until the fill returns.
        waitingFetch_ = true;
        stallStart_ = curTick();
        return false;
    }
    return true;
}

bool
TraceCore::doMem()
{
    if (rec_.isLoad()) {
        auto *pkt = allocPacket(MemCmd::ReadReq, rec_.addr,
                                params_.id);
        pkt->pc = rec_.pc;
        pkt->src = this;
        ++loads;
        if (l1d_->probeAccess(pkt)) {
            freePacket(pkt);
            return true;
        }
        waitingLoad_ = true;
        stallStart_ = curTick();
        return false;
    }

    // Store: non-blocking through the store buffer.
    if (storesInFlight_ >= params_.storeBufferEntries) {
        stalledOnStoreBuffer_ = true;
        stallStart_ = curTick();
        return false;
    }
    auto *pkt = allocPacket(MemCmd::WriteReq, rec_.addr, params_.id);
    pkt->pc = rec_.pc;
    pkt->src = this;
    ++stores;
    if (l1d_->probeAccess(pkt)) {
        freePacket(pkt); // store hit completes immediately
    } else {
        ++storesInFlight_;
    }
    return true;
}

void
TraceCore::advance()
{
    for (;;) {
        switch (phase_) {
          case Phase::NeedRecord:
            if (!refill()) {
                phase_ = Phase::Done;
                done_ = true;
                finishTick_ = curTick();
                return;
            }
            phase_ = Phase::Fetch;
            if (pendingRedirect_) {
                // Mispredicted taken branch: the front end restarts
                // fetch at the (late) correct target. A distinct
                // fetchRedirect event — not a cache-miss stall —
                // resumes the fetch after the penalty.
                pendingRedirect_ = false;
                ++fetchRedirects;
                mispredictStallCycles +=
                    params_.btbMispredictPenalty;
                schedule(params_.btbMispredictPenalty,
                         [this] { advance(); },
                         EventQueue::kPrioCpu);
                return;
            }
            break;

          case Phase::Fetch:
            if (!doFetch())
                return; // stalled on ifetch
            phase_ = Phase::Gap;
            break;

          case Phase::Gap: {
            uint64_t insts = uint64_t(rec_.gap) + 1;
            instsRetired += insts;
            Cycles cycles =
                Cycles(divideCeil(insts, params_.width));
            phase_ = Phase::Mem;
            if (cycles > 0) {
                schedule(cycles, [this] { advance(); },
                         EventQueue::kPrioCpu);
                return;
            }
            break;
          }

          case Phase::Mem:
            if (!doMem())
                return; // stalled on load or store buffer
            phase_ = Phase::NeedRecord;
            break;

          case Phase::Done:
            return;
        }
    }
}

void
TraceCore::recvResponse(PacketPtr pkt)
{
    if (pkt->cmd == MemCmd::WriteResp) {
        // A buffered store completed.
        pv_assert(storesInFlight_ > 0, "stray store response");
        --storesInFlight_;
        freePacket(pkt);
        if (stalledOnStoreBuffer_) {
            stalledOnStoreBuffer_ = false;
            storeStallCycles += curTick() - stallStart_;
            advance(); // retry the stalled store
        }
        return;
    }

    if (pkt->isInstFetch) {
        pv_assert(waitingFetch_, "stray ifetch response");
        waitingFetch_ = false;
        fetchStallCycles += curTick() - stallStart_;
        freePacket(pkt);
        advance();
        return;
    }

    pv_assert(waitingLoad_, "stray load response");
    waitingLoad_ = false;
    loadStallCycles += curTick() - stallStart_;
    freePacket(pkt);
    advance();
}

} // namespace pvsim
