#include "harness/system.hh"

#include "trace/workload.hh"
#include "util/logging.hh"

namespace pvsim {

const char *
prefetchModeName(PrefetchMode mode)
{
    switch (mode) {
      case PrefetchMode::None: return "baseline";
      case PrefetchMode::SmsInfinite: return "SMS-Infinite";
      case PrefetchMode::SmsDedicated: return "SMS";
      case PrefetchMode::SmsVirtualized: return "SMS-PV";
      case PrefetchMode::Stride: return "stride";
    }
    return "unknown";
}

std::string
SystemConfig::label() const
{
    switch (prefetch) {
      case PrefetchMode::None:
        return "baseline";
      case PrefetchMode::SmsInfinite:
        return "SMS-Infinite";
      case PrefetchMode::SmsDedicated:
        return "SMS-" + phtGeometry.label();
      case PrefetchMode::SmsVirtualized:
        return "SMS-PV" + std::to_string(pvCacheEntries);
      case PrefetchMode::Stride:
        return "stride";
    }
    return "unknown";
}

System::System(const SystemConfig &cfg)
    : cfg_(cfg), ctx_(cfg.mode),
      addrMap_(cfg.memBytes, cfg.numCores, cfg.pvBytesPerCore)
{
    pv_assert(cfg_.numCores > 0, "need at least one core");
    pv_assert(cfg_.phtGeometry.numSets * uint64_t(kBlockBytes) <=
                  cfg_.pvBytesPerCore,
              "PVTable (%u sets) exceeds the per-core reservation",
              cfg_.phtGeometry.numSets);

    DramParams dp;
    dp.name = "dram";
    dp.latency = cfg_.memLatency;
    dp.serviceInterval = cfg_.memServiceInterval;
    dram_ = std::make_unique<Dram>(ctx_, dp, &addrMap_);

    CacheParams l2p;
    l2p.name = "l2";
    l2p.sizeBytes = cfg_.l2SizeBytes;
    l2p.assoc = cfg_.l2Assoc;
    l2p.tagLatency = cfg_.l2TagLatency;
    l2p.dataLatency = cfg_.l2DataLatency;
    l2p.numMshrs = cfg_.l2Mshrs;
    l2p.banks = cfg_.l2Banks;
    l2p.directory = true;
    l2p.dropPvWritebacks = cfg_.dropPvWritebacks;
    l2_ = std::make_unique<Cache>(ctx_, l2p, &addrMap_);
    l2_->setMemSide(dram_.get());

    WorkloadParams wp = workloadPreset(cfg_.workload);
    wp.seed += cfg_.seedOffset;

    for (int c = 0; c < cfg_.numCores; ++c) {
        std::string cn = "core" + std::to_string(c);

        CacheParams l1p;
        l1p.sizeBytes = cfg_.l1SizeBytes;
        l1p.assoc = cfg_.l1Assoc;
        l1p.tagLatency = cfg_.l1TagLatency;
        l1p.dataLatency = cfg_.l1DataLatency;
        l1p.numMshrs = cfg_.l1Mshrs;

        l1p.name = cn + ".l1d";
        auto l1d = std::make_unique<Cache>(ctx_, l1p, &addrMap_);
        l1p.name = cn + ".l1i";
        auto l1i = std::make_unique<Cache>(ctx_, l1p, &addrMap_);

        l1d->setMemSide(l2_.get());
        l1d->setLowerSlot(l2_->attachClient(l1d.get()));
        l1i->setMemSide(l2_.get());
        l1i->setLowerSlot(l2_->attachClient(l1i.get()));

        std::unique_ptr<TraceSource> workload;
        if (!cfg_.traceDir.empty()) {
            workload = std::make_unique<TraceFileReader>(
                cfg_.traceDir + "/core" + std::to_string(c) +
                ".pvtrace");
        } else {
            workload = std::make_unique<SyntheticWorkload>(wp, c);
        }

        CoreParams corep;
        corep.name = cn;
        corep.id = c;
        corep.width = cfg_.coreWidth;
        corep.storeBufferEntries = cfg_.storeBufferEntries;
        auto core = std::make_unique<TraceCore>(
            ctx_, corep, workload.get(), l1d.get(), l1i.get());

        if (cfg_.nextLineL1I) {
            auto nl = std::make_unique<NextLinePrefetcher>(
                ctx_, cn + ".l1i_pf", l1i.get());
            l1i->setListener(nl.get());
            nextLines_.push_back(std::move(nl));
        }

        PatternHistoryTable *pht = nullptr;
        std::unique_ptr<VirtualizedPht> vpht;
        switch (cfg_.prefetch) {
          case PrefetchMode::None:
          case PrefetchMode::Stride: // handled below, PHT-less
            break;
          case PrefetchMode::SmsInfinite: {
            auto p = std::make_unique<InfinitePht>();
            pht = p.get();
            ownedPhts_.push_back(std::move(p));
            break;
          }
          case PrefetchMode::SmsDedicated: {
            auto p = std::make_unique<SetAssocPht>(cfg_.phtGeometry);
            pht = p.get();
            ownedPhts_.push_back(std::move(p));
            break;
          }
          case PrefetchMode::SmsVirtualized: {
            VirtPhtParams vp;
            vp.numSets = cfg_.phtGeometry.numSets;
            vp.assoc = cfg_.phtGeometry.assoc;
            vp.proxy.name = cn + ".pvproxy";
            vp.proxy.pvCacheEntries = cfg_.pvCacheEntries;
            // Shared tables: everyone gets core 0's PVStart
            // (paper Section 2.1's alternative design).
            Addr pv_start = cfg_.sharedPvTable
                                ? addrMap_.pvStart(0)
                                : addrMap_.pvStart(c);
            vpht = std::make_unique<VirtualizedPht>(ctx_, vp,
                                                    pv_start);
            vpht->proxy().setMemSide(l2_.get());
            pht = vpht.get();
            break;
          }
        }

        std::unique_ptr<SmsPrefetcher> sms;
        if (pht) {
            SmsParams sp;
            sp.name = cn + ".sms";
            sms = std::make_unique<SmsPrefetcher>(ctx_, sp,
                                                  l1d.get(), pht);
            l1d->setListener(sms.get());
        }

        std::unique_ptr<StridePrefetcher> stride;
        if (cfg_.prefetch == PrefetchMode::Stride) {
            StrideParams stp;
            stp.name = cn + ".stride";
            stride = std::make_unique<StridePrefetcher>(
                ctx_, stp, l1d.get());
            l1d->setListener(stride.get());
        }
        strides_.push_back(std::move(stride));

        phts_.push_back(pht);
        virtPhts_.push_back(std::move(vpht));
        smses_.push_back(std::move(sms));
        l1ds_.push_back(std::move(l1d));
        l1is_.push_back(std::move(l1i));
        workloads_.push_back(std::move(workload));
        cores_.push_back(std::move(core));
    }
}

System::~System() = default;

void
System::runFunctional(uint64_t refs_per_core)
{
    pv_assert(ctx_.mode() == SimMode::Functional,
              "runFunctional on a timing system");
    std::vector<bool> live(size_t(cfg_.numCores), true);
    int live_count = cfg_.numCores;
    for (uint64_t step = 0; step < refs_per_core && live_count > 0;
         ++step) {
        for (int c = 0; c < cfg_.numCores; ++c) {
            if (!live[c])
                continue;
            if (!cores_[c]->stepFunctional()) {
                live[c] = false;
                --live_count;
            }
        }
    }
}

Tick
System::runTiming(uint64_t records_per_core)
{
    pv_assert(ctx_.mode() == SimMode::Timing,
              "runTiming on a functional system");
    for (auto &core : cores_)
        core->start(records_per_core);

    Tick last_finish = 0;
    auto &eq = ctx_.events();
    while (!eq.empty()) {
        eq.runOneTick();
        bool all_done = true;
        for (auto &core : cores_)
            all_done = all_done && core->done();
        if (all_done) {
            if (last_finish == 0)
                last_finish = eq.curTick();
            // Keep draining in-flight prefetches and writebacks.
        }
    }
    return last_finish ? last_finish : eq.curTick();
}

uint64_t
System::totalInstructions() const
{
    uint64_t total = 0;
    for (const auto &core : cores_)
        total += core->instructionsRetired();
    return total;
}

bool
System::quiesced() const
{
    bool q = l2_->quiesced();
    for (const auto &c : l1ds_)
        q = q && c->quiesced();
    for (const auto &c : l1is_)
        q = q && c->quiesced();
    for (const auto &v : virtPhts_) {
        if (v)
            q = q && const_cast<VirtualizedPht &>(*v).proxy()
                         .quiesced();
    }
    return q;
}

} // namespace pvsim
