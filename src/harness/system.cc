#include "harness/system.hh"

#include <algorithm>
#include <chrono>

#include "trace/workload.hh"
#include "util/logging.hh"

namespace pvsim {

unsigned harnessJobs(); // metrics.cc (PVSIM_JOBS, clamped)

const char *
prefetchModeName(PrefetchMode mode)
{
    switch (mode) {
      case PrefetchMode::None: return "baseline";
      case PrefetchMode::SmsInfinite: return "SMS-Infinite";
      case PrefetchMode::SmsDedicated: return "SMS";
      case PrefetchMode::SmsVirtualized: return "SMS-PV";
      case PrefetchMode::Stride: return "stride";
    }
    return "unknown";
}

const char *
btbModeName(BtbMode mode)
{
    switch (mode) {
      case BtbMode::None: return "none";
      case BtbMode::Dedicated: return "BTB";
      case BtbMode::Virtualized: return "BTB-PV";
    }
    return "unknown";
}

std::string
SystemConfig::label() const
{
    std::string base = "unknown";
    switch (prefetch) {
      case PrefetchMode::None:
        base = "baseline";
        break;
      case PrefetchMode::SmsInfinite:
        base = "SMS-Infinite";
        break;
      case PrefetchMode::SmsDedicated:
        base = "SMS-" + phtGeometry.label();
        break;
      case PrefetchMode::SmsVirtualized:
        base = "SMS-PV" + std::to_string(pvCacheEntries);
        break;
      case PrefetchMode::Stride:
        base = "stride";
        break;
    }
    if (btb.mode != BtbMode::None)
        base += std::string("+") + btbModeName(btb.mode);
    return base;
}

System::System(const SystemConfig &cfg)
    : cfg_(cfg), ctx_(cfg.mode),
      addrMap_(cfg.memBytes, cfg.numCores, cfg.pvBytesPerCore)
{
    pv_assert(cfg_.numCores > 0, "need at least one core");
    const std::vector<VirtEngineConfig> registry =
        cfg_.engineRegistry();
    uint64_t registry_bytes = 0;
    for (const auto &ec : registry)
        registry_bytes += uint64_t(ec.numSets) * kBlockBytes;
    for (const auto &ec : cfg_.virtEngines) {
        // The PHT tenant is implied by prefetch == SmsVirtualized
        // (which also wires the SMS prefetcher); a bare Pht registry
        // entry would create a PHT nothing drives.
        pv_assert(ec.kind != VirtEngineKind::Pht,
                  "request the PHT via PrefetchMode::SmsVirtualized, "
                  "not a virtEngines entry");
    }
    pv_assert(registry_bytes <= cfg_.pvBytesPerCore,
              "engine registry (%llu bytes of PVTables) exceeds the "
              "per-core reservation",
              (unsigned long long)registry_bytes);

    // Sharded timing engages whenever the config departs from the
    // serial defaults — including timingShards=1 with an explicit
    // quantum, so serial-vs-sharded comparisons exercise identical
    // machinery and differ only in thread count.
    const bool sharded =
        cfg_.mode == SimMode::Timing &&
        (cfg_.timingShards != 1 || cfg_.syncQuantum > 0);
    if (sharded) {
        unsigned want = cfg_.timingShards == 0
                            ? harnessJobs()
                            : cfg_.timingShards;
        shardsEffective_ = std::max(
            1u, std::min(want, unsigned(cfg_.numCores)));
        quantumEffective_ =
            cfg_.syncQuantum == 0
                ? cfg_.l2DataLatency
                : std::min(cfg_.syncQuantum, cfg_.l2DataLatency);
        quantumEffective_ = std::max<Cycles>(1, quantumEffective_);
        shards_ = std::make_unique<QuantumScheduler>(shardsEffective_);
        coreCluster_.resize(size_t(cfg_.numCores));
        for (int c = 0; c < cfg_.numCores; ++c)
            coreCluster_[size_t(c)] =
                unsigned(uint64_t(c) * shardsEffective_ /
                         uint64_t(cfg_.numCores));
    }

    DramParams dp;
    dp.name = "dram";
    dp.latency = cfg_.memLatency;
    dp.serviceInterval = cfg_.memServiceInterval;
    dram_ = std::make_unique<Dram>(ctx_, dp, &addrMap_);

    CacheParams l2p;
    l2p.name = "l2";
    l2p.sizeBytes = cfg_.l2SizeBytes;
    l2p.assoc = cfg_.l2Assoc;
    l2p.tagLatency = cfg_.l2TagLatency;
    l2p.dataLatency = cfg_.l2DataLatency;
    l2p.numMshrs = cfg_.l2Mshrs;
    l2p.banks = cfg_.l2Banks;
    l2p.directory = true;
    l2p.dropPvWritebacks = cfg_.dropPvWritebacks;
    l2_ = std::make_unique<Cache>(ctx_, l2p, &addrMap_);
    l2_->setMemSide(dram_.get());

    // Bank-domain shared phase: in sharded timing the L2 itself is
    // partitioned by address into bank domains, each with its own
    // event queue run by a bank worker at the quantum edge. All L2
    // state (blocks, tags, directory, MSHRs, send queues) is
    // bank-disjoint after enableBankPartition; all cross-domain
    // traffic goes through per-bank lanes flushed in canonical bank
    // order — so results are bit-identical for every domain count.
    if (shards_) {
        unsigned want_b = cfg_.l2BankDomains == 0
                              ? harnessJobs()
                              : cfg_.l2BankDomains;
        bankDomainsEffective_ = std::max(
            1u, std::min(want_b, cfg_.l2Banks));
        bankShards_ =
            std::make_unique<QuantumScheduler>(bankDomainsEffective_);
        bankDomain_.resize(cfg_.l2Banks);
        for (unsigned b = 0; b < cfg_.l2Banks; ++b)
            bankDomain_[b] = unsigned(uint64_t(b) *
                                      bankDomainsEffective_ /
                                      uint64_t(cfg_.l2Banks));
        // Bank workers bump the shared L2's stat objects; each
        // worker thread accumulates into its own deferral, flushed
        // by the main thread at every barrier (commutative merges,
        // so flush order cannot matter).
        bankDeferrals_.resize(bankDomainsEffective_);
        bankShards_->setWorkerInit([this](unsigned idx) {
            stats::Deferral::installOnThisThread(
                &bankDeferrals_[idx]);
        });
        auto bank_of = [l2 = l2_.get()](Addr a) {
            return l2->bankOf(a);
        };
        bankEgress_ = std::make_unique<BankEgress>(cfg_.l2Banks,
                                                   bank_of);
        std::vector<EventQueue *> bank_eqs(cfg_.l2Banks);
        for (unsigned b = 0; b < cfg_.l2Banks; ++b)
            bank_eqs[b] = &bankShards_->clusterQueue(bankDomain_[b]);
        dramRouter_ = std::make_unique<BankLaneRouter>(
            dram_.get(), std::move(bank_eqs), bank_of, "dram.lanes");
        l2_->setMemSide(dramRouter_.get());
        l2_->setResponseRouter(
            [this](Addr a) { return &bankQueueOf(a); });
        l2_->enableBankPartition();

        // DRAM lanes: with more than one lane the DRAM backing
        // store is partitioned per bank and service runs on the
        // bank workers (Dram::serviceSharded): the fills land at
        // their due (tick, response-priority) slot in the owning
        // bank's domain queue — the exact slot the serial tail's
        // responseRouter_ would have used — and only the
        // channel-reservation walk stays on the main thread. One
        // lane keeps the monolithic serial DRAM tail.
        unsigned want_l = cfg_.dramLanes == 0 ? cfg_.l2Banks
                                              : cfg_.dramLanes;
        dramLanesEffective_ =
            std::max(1u, std::min(want_l, cfg_.l2Banks));
        if (dramLanesEffective_ > 1)
            dram_->enableBankStores(cfg_.l2Banks, bank_of);

        // Overlapped drains: the boundary lanes double-buffer and
        // the barrier's serial flush loops fan out to the window
        // prologues — each cluster worker replays its own egress
        // share, each bank worker drains its own domain's staged
        // packets. Per-queue insertion orders are exactly those of
        // the serial flushes, so results are bit-identical.
        overlapEffective_ = cfg_.drainOverlap == 0
                                ? dramLanesEffective_ > 1
                                : cfg_.drainOverlap >= 2;
        if (overlapEffective_) {
            shards_->setWindowPrologue(
                [this](unsigned, EventQueue &q) {
                    bankEgress_->flushCluster(&q);
                });
            bankShards_->setWindowPrologue(
                [this](unsigned dom, EventQueue &q) {
                    std::function<EventQueue *(Addr)> mine =
                        [this, dom, &q](Addr a) -> EventQueue * {
                        return bankDomain_[l2_->bankOf(a)] == dom
                                   ? &q
                                   : nullptr;
                    };
                    for (auto &b : downBoundaries_)
                        b->drainStaged(mine);
                });
        }
    }

    // In sharded timing, every private-component-to-L2 link goes
    // through a boundary pair (see mem/boundary_port.hh); the pair
    // is registered with the L2 in the private component's place so
    // directory slots keep the serial wiring order.
    auto makeBoundary = [&](MemClient *client, const std::string &nm,
                            unsigned cluster) -> MemDevice * {
        EventQueue *ceq = &shards_->clusterQueue(cluster);
        auto up = std::make_unique<UpstreamBoundary>(client, ceq,
                                                     nm + ".bnd");
        up->setEgress(bankEgress_.get());
        auto down = std::make_unique<DownstreamBoundary>(
            l2_.get(), up.get(), ceq, nm + ".bnd");
        MemDevice *dev = down.get();
        upBoundaries_.push_back(std::move(up));
        downBoundaries_.push_back(std::move(down));
        return dev;
    };

    for (int c = 0; c < cfg_.numCores; ++c) {
        std::string cn = "core" + std::to_string(c);

        // Per-core preset: heterogeneous multi-programmed mixes run
        // a different workload on each core (workloadMix), the
        // historical path feeds every core the same one. The
        // config's branch profile (if enabled) layers the
        // control-flow model on top of the preset's data streams.
        WorkloadParams wp = workloadPreset(cfg_.workloadFor(c));
        wp.seed += cfg_.seedOffset;
        cfg_.branchProfile.applyTo(wp);

        CacheParams l1p;
        l1p.sizeBytes = cfg_.l1SizeBytes;
        l1p.assoc = cfg_.l1Assoc;
        l1p.tagLatency = cfg_.l1TagLatency;
        l1p.dataLatency = cfg_.l1DataLatency;
        l1p.numMshrs = cfg_.l1Mshrs;

        l1p.name = cn + ".l1d";
        auto l1d = std::make_unique<Cache>(ctx_, l1p, &addrMap_);
        l1p.name = cn + ".l1i";
        auto l1i = std::make_unique<Cache>(ctx_, l1p, &addrMap_);

        if (shards_) {
            unsigned cl = coreCluster_[size_t(c)];
            l1d->setMemSide(makeBoundary(l1d.get(), cn + ".l1d", cl));
            l1d->setLowerSlot(
                l2_->attachClient(upBoundaries_.back().get()));
            l1i->setMemSide(makeBoundary(l1i.get(), cn + ".l1i", cl));
            l1i->setLowerSlot(
                l2_->attachClient(upBoundaries_.back().get()));
        } else {
            l1d->setMemSide(l2_.get());
            l1d->setLowerSlot(l2_->attachClient(l1d.get()));
            l1i->setMemSide(l2_.get());
            l1i->setLowerSlot(l2_->attachClient(l1i.get()));
        }

        std::unique_ptr<TraceSource> workload;
        if (!cfg_.traceDir.empty()) {
            workload = std::make_unique<TraceFileReader>(
                cfg_.traceDir + "/core" + std::to_string(c) +
                ".pvtrace");
        } else {
            workload = std::make_unique<SyntheticWorkload>(wp, c);
        }

        CoreParams corep;
        corep.name = cn;
        corep.id = c;
        corep.width = cfg_.coreWidth;
        corep.storeBufferEntries = cfg_.storeBufferEntries;
        corep.btbMispredictPenalty = cfg_.btbMispredictPenalty;
        auto core = std::make_unique<TraceCore>(
            ctx_, corep, workload.get(), l1d.get(), l1i.get());

        if (cfg_.nextLineL1I) {
            auto nl = std::make_unique<NextLinePrefetcher>(
                ctx_, cn + ".l1i_pf", l1i.get());
            l1i->setListener(nl.get());
            nextLines_.push_back(std::move(nl));
        }

        // ---- Virtualized engines: one shared proxy per core ------
        std::unique_ptr<PvProxy> pvproxy;
        std::vector<std::unique_ptr<VirtEngine>> engines;
        PatternHistoryTable *pht = nullptr;
        if (!registry.empty()) {
            PvProxyParams pp;
            pp.name = cn + ".pvproxy";
            pp.pvCacheEntries = cfg_.pvCacheEntries;
            pp.prefetchDepth = cfg_.pvPrefetch;
            pp.victimEntries = cfg_.victimEntries;
            pp.usedBitsPerLine = 0; // tenants report their codecs
            // Shared tables: everyone gets core 0's PVStart
            // (paper Section 2.1's alternative design).
            Addr pv_start = cfg_.sharedPvTable
                                ? addrMap_.pvStart(0)
                                : addrMap_.pvStart(c);
            pvproxy = std::make_unique<PvProxy>(
                ctx_, pp, pv_start, cfg_.pvBytesPerCore);
            if (shards_) {
                pvproxy->setMemSide(makeBoundary(
                    pvproxy.get(), pp.name,
                    coreCluster_[size_t(c)]));
            } else {
                pvproxy->setMemSide(l2_.get());
            }

            // The core drives the first tenant of each kind (the
            // accessors also resolve to the first); later same-kind
            // tenants are passive storage tenants.
            VirtualizedBtb *first_btb = nullptr;
            VirtualizedStride *first_stride = nullptr;
            VirtualizedAgt *first_agt = nullptr;
            for (const auto &ec : registry) {
                auto e = makeEngine(ec.kind, ec, *pvproxy);
                switch (ec.kind) {
                  case VirtEngineKind::Pht:
                    pht = static_cast<VirtualizedPht *>(e.get());
                    break;
                  case VirtEngineKind::Btb:
                    if (!first_btb)
                        first_btb =
                            static_cast<VirtualizedBtb *>(e.get());
                    break;
                  case VirtEngineKind::Stride:
                    if (!first_stride)
                        first_stride =
                            static_cast<VirtualizedStride *>(e.get());
                    break;
                  case VirtEngineKind::Agt:
                    if (!first_agt)
                        first_agt =
                            static_cast<VirtualizedAgt *>(e.get());
                    break;
                }
                engines.push_back(std::move(e));
            }
            core->setBtb(first_btb);
            core->setStride(first_stride);
            core->setAgt(first_agt);
        }

        // Dedicated-SRAM BTB: the matched-pair partner of the
        // virtualized arrangement. It takes precedence over any
        // registry BTB tenant — a config asking for both keeps the
        // tenant as passive PV storage and fetches through SRAM.
        std::unique_ptr<DedicatedBtb> dedicated_btb;
        if (cfg_.btb.mode == BtbMode::Dedicated) {
            DedicatedBtbParams bp;
            bp.numSets = cfg_.btb.numSets;
            bp.assoc = cfg_.btb.assoc;
            bp.tagBits = cfg_.btb.tagBits;
            dedicated_btb = std::make_unique<DedicatedBtb>(bp);
            core->setBtb(dedicated_btb.get());
        }
        dedicatedBtbs_.push_back(std::move(dedicated_btb));

        switch (cfg_.prefetch) {
          case PrefetchMode::None:
          case PrefetchMode::Stride: // handled below, PHT-less
          case PrefetchMode::SmsVirtualized: // registry tenant above
            break;
          case PrefetchMode::SmsInfinite: {
            auto p = std::make_unique<InfinitePht>();
            pht = p.get();
            ownedPhts_.push_back(std::move(p));
            break;
          }
          case PrefetchMode::SmsDedicated: {
            auto p = std::make_unique<SetAssocPht>(cfg_.phtGeometry);
            pht = p.get();
            ownedPhts_.push_back(std::move(p));
            break;
          }
        }

        std::unique_ptr<SmsPrefetcher> sms;
        if (pht) {
            SmsParams sp;
            sp.name = cn + ".sms";
            sms = std::make_unique<SmsPrefetcher>(ctx_, sp,
                                                  l1d.get(), pht);
            l1d->setListener(sms.get());
        }

        std::unique_ptr<StridePrefetcher> stride;
        if (cfg_.prefetch == PrefetchMode::Stride) {
            StrideParams stp;
            stp.name = cn + ".stride";
            stride = std::make_unique<StridePrefetcher>(
                ctx_, stp, l1d.get());
            l1d->setListener(stride.get());
        }
        strides_.push_back(std::move(stride));

        phts_.push_back(pht);
        pvProxies_.push_back(std::move(pvproxy));
        engines_.push_back(std::move(engines));
        smses_.push_back(std::move(sms));
        l1ds_.push_back(std::move(l1d));
        l1is_.push_back(std::move(l1i));
        workloads_.push_back(std::move(workload));
        cores_.push_back(std::move(core));
    }
}

VirtEngine *
System::engine(int core, const std::string &name)
{
    for (auto &e : engines_.at(core)) {
        if (e->engineName() == name)
            return e.get();
    }
    return nullptr;
}

System::~System() = default;

void
System::runFunctional(uint64_t refs_per_core)
{
    pv_assert(ctx_.mode() == SimMode::Functional,
              "runFunctional on a timing system");
    const uint64_t chunk = std::max<uint64_t>(1, cfg_.functionalChunk);
    // Round-robin the cores in chunks: each turn consumes up to
    // `chunk` records through the batched stepping path instead of
    // a single record, amortizing dispatch across the chunk. Every
    // core still consumes exactly refs_per_core records (or its
    // whole trace).
    std::vector<uint64_t> remaining(size_t(cfg_.numCores),
                                    refs_per_core);
    int live_count = refs_per_core > 0 ? cfg_.numCores : 0;
    while (live_count > 0) {
        for (int c = 0; c < cfg_.numCores; ++c) {
            if (remaining[c] == 0)
                continue;
            uint64_t want = std::min(chunk, remaining[c]);
            uint64_t got = cores_[c]->stepFunctionalBatch(want);
            remaining[c] -= got;
            if (got < want)
                remaining[c] = 0; // end of trace
            if (remaining[c] == 0)
                --live_count;
        }
    }
}

Tick
System::runTiming(uint64_t records_per_core)
{
    pv_assert(ctx_.mode() == SimMode::Timing,
              "runTiming on a functional system");
    if (shards_)
        return runTimingSharded(records_per_core);
    for (auto &core : cores_)
        core->start(records_per_core);

    Tick last_finish = 0;
    auto &eq = ctx_.events();
    while (!eq.empty()) {
        eq.runOneTick();
        bool all_done = true;
        for (auto &core : cores_)
            all_done = all_done && core->done();
        if (all_done) {
            if (last_finish == 0)
                last_finish = eq.curTick();
            // Keep draining in-flight prefetches and writebacks.
        }
    }
    // A drained queue with a core still running means a response
    // was lost somewhere below — fail loudly instead of returning
    // a silently truncated (and wildly wrong) measurement.
    for (auto &core : cores_) {
        pv_assert(core->done(),
                  "%s: event queue drained mid-run — lost response",
                  core->name().c_str());
    }
    return last_finish ? last_finish : eq.curTick();
}

Tick
System::runTimingSharded(uint64_t records_per_core)
{
    const Tick quantum = quantumEffective_;
    EventQueue &shared = ctx_.baseEvents();

    // Start each core inside its cluster's queue so its first tick
    // event — and everything downstream of it — lands in the right
    // domain.
    for (int c = 0; c < cfg_.numCores; ++c) {
        EventQueue::CurrentScope scope(
            &shards_->clusterQueue(coreCluster_[size_t(c)]));
        cores_[size_t(c)]->start(records_per_core);
    }

    // Conservative rounds: clusters run the window in parallel
    // first; the bank workers then run the L2 over the same window,
    // and the DRAM traffic is replayed in canonical order before
    // the next round. Responses crossing a domain carry at least
    // the L2 data latency (>= the quantum) — cluster-bound — or the
    // DRAM latency — bank-bound — so they are always due in a later
    // window, never behind any clock. Three knobs shape the barrier
    // work without changing any delivery tick or per-queue order:
    //
    //  - serial (dramLanes=1, overlap off): lanes drain on the main
    //    thread, the DRAM window runs on the base queue — the
    //    historical loop, preserved bit for bit.
    //  - in-phase DRAM (dramLanes>1): the main thread only walks
    //    the DRAM lanes in canonical (tick, bank, order) sequence
    //    reserving channel slots; service lands as events in the
    //    owning bank's queue and runs on the worker pool.
    //  - overlap: the boundary lanes double-buffer and the serial
    //    flush loops fan out to the window prologues (each cluster
    //    flushes its own egress share, each bank domain drains its
    //    own staged packets); the main thread flushes the stat
    //    deferrals concurrently with the cluster phase.
    const auto route = [this](Addr a) -> EventQueue & {
        return bankQueueOf(a);
    };
    const bool in_phase_dram = dramLanesEffective_ > 1;
    const bool overlap = overlapEffective_;
    using SteadyClock = std::chrono::steady_clock;
    const auto seconds_between = [](SteadyClock::time_point a,
                                    SteadyClock::time_point b) {
        return std::chrono::duration<double>(b - a).count();
    };
    Tick window = 0;
    Tick last_finish = 0;
    for (;;) {
        Tick min_next = std::min(shards_->minPendingTick(),
                                 bankShards_->minPendingTick());
        if (!shared.empty())
            min_next = std::min(min_next, shared.nextTick());
        if (overlap) {
            // Parked egress records are not in any queue yet; their
            // delivery ticks (a response's due tick; the current
            // edge for deferred coherence) bound the fast-forward
            // exactly as the flushed events would have.
            min_next = std::min(min_next,
                                bankEgress_->minPendingTick(window));
        }
        if (min_next == kMaxTick)
            break; // every queue and lane drained
        if (min_next >= window + quantum) {
            // Fast-forward over empty windows (DRAM-bound phases
            // would otherwise spin dozens of silent barriers per
            // 400-cycle epoch).
            window += quantum * ((min_next - window) / quantum);
        }
        const Tick window_end = window + quantum;
        const auto t0 = SteadyClock::now();
        if (overlap) {
            // Cluster prologues flush last window's egress records;
            // the deferral flush (stats only, touching nothing any
            // cluster owns) overlaps with the window.
            shards_->runWindowAsync(window_end);
            for (auto &d : bankDeferrals_)
                d.flush();
            shards_->wait();
        } else {
            shards_->runWindow(window_end);
        }
        const auto t1 = SteadyClock::now();
        clusterPhaseSeconds_ += seconds_between(t0, t1);
        if (overlap) {
            bankEgress_->clearAll();
            for (auto &b : downBoundaries_)
                b->swapLanes();
            bankShards_->runWindow(window_end); // prologues drain
            for (auto &b : downBoundaries_)
                b->clearStaged();
        } else {
            for (auto &b : downBoundaries_)
                b->drainBanked(route);
            bankShards_->runWindow(window_end);
            bankEgress_->flush();
            for (auto &d : bankDeferrals_)
                d.flush();
        }
        if (in_phase_dram) {
            dramRouter_->drainSharded(
                [this](Tick when, PacketPtr pkt) {
                    dram_->serviceSharded(when, pkt,
                                          bankQueueOf(pkt->addr));
                });
            // Nothing targets the base queue on this path (fills
            // land in the bank queues), but drain it defensively so
            // a stray event can never stall the fast-forward.
            if (!shared.empty())
                shared.runUntil(window_end - 1);
            if (shared.curTick() < window_end)
                shared.setCurTick(window_end);
        } else {
            dramRouter_->drainTo(shared);
            shared.runUntil(window_end - 1);
            if (shared.curTick() < window_end)
                shared.setCurTick(window_end);
        }
        sharedPhaseSeconds_ += seconds_between(t1, SteadyClock::now());
        if (last_finish == 0) {
            bool all_done = true;
            for (auto &core : cores_)
                all_done = all_done && core->done();
            if (all_done) {
                for (auto &core : cores_)
                    last_finish = std::max(last_finish,
                                           core->finishTick());
            }
            // Keep draining in-flight prefetches and writebacks.
        }
        window = window_end;
    }
    if (overlap) {
        // Residual deferred stats of the final bank window.
        for (auto &d : bankDeferrals_)
            d.flush();
    }
    for (auto &core : cores_) {
        pv_assert(core->done(),
                  "%s: event queues drained mid-run — lost response",
                  core->name().c_str());
    }
    return last_finish ? last_finish : window;
}

uint64_t
System::boundaryLateResponses() const
{
    uint64_t n = 0;
    for (const auto &b : upBoundaries_)
        n += b->lateResponses();
    return n;
}

uint64_t
System::boundaryDeferredCoherence() const
{
    uint64_t n = 0;
    for (const auto &b : upBoundaries_)
        n += b->deferredCoherence();
    return n;
}

void
System::resetStats()
{
    ctx_.resetStats();
    clusterPhaseSeconds_ = 0.0;
    sharedPhaseSeconds_ = 0.0;
    for (auto &btb : dedicatedBtbs_) {
        if (btb)
            btb->resetLookupStats();
    }
    for (auto &engines : engines_) {
        for (auto &e : engines) {
            if (auto *vb = dynamic_cast<VirtualizedBtb *>(e.get()))
                vb->resetLookupStats();
        }
    }
}

uint64_t
System::totalInstructions() const
{
    uint64_t total = 0;
    for (const auto &core : cores_)
        total += core->instructionsRetired();
    return total;
}

bool
System::quiesced() const
{
    bool q = l2_->quiesced();
    for (const auto &c : l1ds_)
        q = q && c->quiesced();
    for (const auto &c : l1is_)
        q = q && c->quiesced();
    for (const auto &p : pvProxies_) {
        if (p)
            q = q && p->quiesced();
    }
    return q;
}

} // namespace pvsim
