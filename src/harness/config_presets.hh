/**
 * @file
 * The paper's standard prefetcher configurations and the functional
 * warmup -> reset -> measure protocol, at library level. These used
 * to live as hand-rolled inline copies in bench/bench_common.hh;
 * the scenario loader, the examples and every figure/table bench
 * now share this single set of builders, so "the baseline machine"
 * is defined exactly once.
 */

#ifndef PVSIM_HARNESS_CONFIG_PRESETS_HH
#define PVSIM_HARNESS_CONFIG_PRESETS_HH

#include <string>

#include "harness/metrics.hh"
#include "harness/system_config.hh"

namespace pvsim {

/** Table 1 machine, no prefetcher, one preset on every core. */
SystemConfig baselineConfig(const std::string &workload);

/** Baseline + dedicated-SRAM SMS PHT of the given geometry. */
SystemConfig smsConfig(const std::string &workload,
                       PhtGeometry geom);

/** Baseline + unbounded SMS PHT (the paper's potential ceiling). */
SystemConfig smsInfiniteConfig(const std::string &workload);

/** Baseline + the paper's virtualized 1K-11a PHT. */
SystemConfig pvConfig(const std::string &workload,
                      unsigned pvcache_entries);

/** Everything a functional run produces. */
struct FunctionalResult {
    CoverageMetrics coverage;
    TrafficMetrics traffic;
    double pvL2FillRate = 0.0; ///< PVProxy requests served by L2
};

/** Build, warm up, reset stats, measure one functional config. */
FunctionalResult runFunctionalMeasured(SystemConfig cfg,
                                       uint64_t warmup_refs,
                                       uint64_t measure_refs);

} // namespace pvsim

#endif // PVSIM_HARNESS_CONFIG_PRESETS_HH
