/**
 * @file
 * Whole-system configuration: the paper's Table 1 machine (quad-core
 * CMP, private 64 KB L1I/L1D, shared 8 MB 16-way 8-bank L2, 400-cycle
 * DRAM) plus the prefetcher arrangement under study.
 */

#ifndef PVSIM_HARNESS_SYSTEM_CONFIG_HH
#define PVSIM_HARNESS_SYSTEM_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/virt_engine.hh"
#include "prefetch/pht.hh"
#include "sim/sim_object.hh"
#include "sim/types.hh"
#include "trace/workload.hh"

namespace pvsim {

/** Which data prefetcher each core gets. */
enum class PrefetchMode {
    None,           ///< baseline (paper: "no data prefetching")
    SmsInfinite,    ///< SMS with an unbounded PHT
    SmsDedicated,   ///< SMS with a dedicated set-associative PHT
    SmsVirtualized, ///< SMS with the PV PHT (the paper's design)
    Stride,         ///< classic PC-stride comparator (not in paper)
};

const char *prefetchModeName(PrefetchMode mode);

/** How each core's branch target buffer is provisioned. */
enum class BtbMode {
    None,        ///< no BTB (taken branches cost nothing)
    Dedicated,   ///< conventional on-chip SRAM table
    Virtualized, ///< PV tenant on the core's shared proxy
};

const char *btbModeName(BtbMode mode);

/**
 * BTB arrangement under study. Dedicated and Virtualized share one
 * geometry so flipping the mode yields a capacity-matched pair —
 * the Figure 9-style experiment for BTB virtualization.
 */
struct BtbConfig {
    BtbMode mode = BtbMode::None;
    unsigned numSets = 512;
    unsigned assoc = 8;
    unsigned tagBits = 16;
    /** QoS contract of the virtualized BTB tenant on the shared
     *  per-core proxy (ignored for Dedicated/None). */
    PvTenantQos qos;
};

/** Full configuration of one simulated system. */
struct SystemConfig {
    SimMode mode = SimMode::Functional;
    int numCores = 4;

    // ---- Memory hierarchy (paper Table 1) ----------------------------
    uint64_t l1SizeBytes = 64 * 1024;
    unsigned l1Assoc = 4;
    Cycles l1TagLatency = 1;
    Cycles l1DataLatency = 1; // 2-cycle L1 total
    unsigned l1Mshrs = 16;

    uint64_t l2SizeBytes = 8ull * 1024 * 1024;
    unsigned l2Assoc = 16;
    unsigned l2Banks = 8;
    Cycles l2TagLatency = 6;
    Cycles l2DataLatency = 12;
    unsigned l2Mshrs = 64;

    Cycles memLatency = 400;
    Cycles memServiceInterval = 4;
    uint64_t memBytes = 3ull * 1024 * 1024 * 1024;

    // ---- Cores ---------------------------------------------------------
    unsigned coreWidth = 4;
    unsigned storeBufferEntries = 8;
    /** Next-line instruction prefetcher per core (Table 1). */
    bool nextLineL1I = true;
    /**
     * Front-end stall charged per mispredicted taken branch in
     * timing mode (needs btb.mode != None). 0 — the default —
     * keeps branches free, reproducing the historical timing
     * bit-for-bit; > 0 makes BTB quality (and so BTB
     * virtualization) visible in IPC.
     */
    Cycles btbMispredictPenalty = 0;
    /** Per-core BTB arrangement (see BtbConfig). */
    BtbConfig btb;
    /**
     * Records each core consumes per turn of the functional
     * round-robin (runFunctional). Larger chunks amortize dispatch
     * and keep one core's model state hot in the host caches; 1
     * reproduces the historical record-by-record interleaving
     * exactly. Single-core runs are bit-identical for any value,
     * and every core always consumes the same per-core record
     * stream (records, instructions, loads/stores). Multi-core
     * cache statistics can shift slightly between chunk sizes: the
     * cores' accesses interleave differently at the shared L2, so
     * its LRU/eviction order — and which L1 blocks the inclusive
     * directory back-invalidates — differs. The effect is
     * statistically neutral; set 1 to reproduce pre-batching
     * multi-core numbers exactly.
     */
    uint64_t functionalChunk = 256;

    // ---- Data prefetcher under study ------------------------------------
    PrefetchMode prefetch = PrefetchMode::None;
    /** PHT geometry (dedicated and virtualized): default 1K-11a. */
    PhtGeometry phtGeometry{1024, 11};
    /** QoS contract of the implicit virtualized-PHT tenant
     *  (SmsVirtualized only). */
    PvTenantQos phtQos;
    /** PVCache entries for the virtualized PHT (paper: 8). */
    unsigned pvCacheEntries = 8;
    /**
     * PVCache locality prefetch depth (paper Section 4.3): sets
     * speculatively fetched ahead when a tenant's demand stream
     * extends a detected sequential-set stride. 0 (default) keeps
     * the detector off — bit-identical to the pre-prefetch proxy.
     */
    unsigned pvPrefetch = 0;
    /**
     * Victim-buffer entries per proxy retaining evicted-but-hot PV
     * lines, charged to the owning tenant's PVCache entitlement
     * share. 0 (default) disables retention.
     */
    unsigned victimEntries = 0;
    /** Paper Section 2.2 ablation: drop dirty PV lines at L2 evict. */
    bool dropPvWritebacks = false;
    /**
     * Paper Section 2.1 option: all cores share one PVTable (one
     * PVStart for everyone) instead of private per-core tables.
     * Each core keeps its own PVProxy/PVCache; sharing is safe
     * because predictor data is advisory. Useful when the cores run
     * the same application (patterns learned by one core serve all).
     */
    bool sharedPvTable = false;
    /**
     * Registry of additional virtualized engines per core beyond the
     * SMS PHT (which SmsVirtualized adds implicitly as the first
     * tenant). All engines of one core share that core's single
     * multi-tenant PVProxy; their segments are carved from the
     * per-core PV reservation in registry order. BTB engines are
     * wired into the core's branch handling automatically.
     */
    std::vector<VirtEngineConfig> virtEngines;

    /**
     * The full per-core engine registry: the implicit PHT tenant
     * (when prefetch == SmsVirtualized), the implicit BTB tenant
     * (when btb.mode == Virtualized), then virtEngines.
     */
    std::vector<VirtEngineConfig>
    engineRegistry() const
    {
        std::vector<VirtEngineConfig> r;
        if (prefetch == PrefetchMode::SmsVirtualized) {
            VirtEngineConfig pht;
            pht.kind = VirtEngineKind::Pht;
            pht.numSets = phtGeometry.numSets;
            pht.assoc = phtGeometry.assoc;
            pht.qos = phtQos;
            r.push_back(pht);
        }
        if (btb.mode == BtbMode::Virtualized) {
            VirtEngineConfig vb;
            vb.kind = VirtEngineKind::Btb;
            vb.numSets = btb.numSets;
            vb.assoc = btb.assoc;
            vb.tagBits = btb.tagBits;
            vb.qos = btb.qos;
            r.push_back(vb);
        }
        r.insert(r.end(), virtEngines.begin(), virtEngines.end());
        return r;
    }

    // ---- Workload ---------------------------------------------------------
    /** Preset name ("apache", ..., "qry17") fed to every core. */
    std::string workload = "apache";
    /**
     * Multi-programmed mix: per-core preset names overriding
     * `workload` when non-empty. Shorter lists wrap around the
     * cores (a 2-entry mix on 4 cores alternates), so the preset
     * mixes compose with any core count. Heterogeneous tenants
     * sharing the L2 — and the PV space — is what makes shared-L2
     * PV contention measurable at all.
     */
    std::vector<std::string> workloadMix;

    /** Preset feeding core `core` (mix entry, or the shared name). */
    const std::string &
    workloadFor(int core) const
    {
        if (workloadMix.empty())
            return workload;
        return workloadMix[size_t(core) % workloadMix.size()];
    }
    /** Added to the preset seed (batching / matched pairs). */
    uint64_t seedOffset = 0;
    /**
     * Control-flow profile applied on top of every core's preset
     * (trace/program_structure.hh): when enabled, the generators
     * emit basic-block bursts with learnable taken-branch successor
     * edges instead of the flat pc/gap interleaving. Disabled by
     * default — the historical streams (and the fig4/fig5 coverage
     * curves tuned against them) are bit-identical. The preset
     * mixes carry their own profiles; fig9Config installs them
     * here.
     */
    BranchProfile branchProfile;
    /**
     * When non-empty, cores replay captured traces
     * ("<traceDir>/core<i>.pvtrace") instead of generating
     * synthetically (record/replay workflow).
     */
    std::string traceDir;

    /** Reserved PVTable bytes per core (>= numSets * 64). */
    uint64_t pvBytesPerCore = 64 * 1024;

    // ---- Sharded (parallel) timing ---------------------------------------
    /**
     * Worker shards for timing mode. 1 (default) is the serial
     * single-queue loop, bit-identical to the historical timing
     * results. 0 picks min(PVSIM_JOBS, numCores) the way the
     * functional harness clamps its job count. Any other value
     * partitions the cores into that many clusters, each simulated
     * on its own event queue and synchronized every syncQuantum
     * ticks. With a fixed quantum, aggregate stats are identical
     * for every shard count >= 1 engaged on the quantum path
     * (i.e. whenever syncQuantum > 0 or timingShards != 1).
     */
    unsigned timingShards = 1;
    /**
     * Barrier quantum in ticks for sharded timing. 0 (auto) uses
     * the conservative bound: the L2 data latency, the minimum
     * cross-cluster response latency. Larger requests are clamped
     * to that bound; responses can then never arrive late.
     */
    Cycles syncQuantum = 0;
    /**
     * Bank domains for the shared L2 in sharded timing: the L2's
     * address-interleaved banks are grouped into this many
     * independently scheduled domains, each run by its own worker
     * at the quantum edge (directory, MSHRs and send queues are
     * partitioned per bank so domains share no mutable state).
     * 0 (auto) picks min(PVSIM_JOBS, l2Banks); any other value is
     * clamped to [1, l2Banks]. Only meaningful when the sharded
     * machinery is engaged; with a fixed quantum, aggregate stats
     * are bit-identical for every domain count >= 1.
     */
    unsigned l2BankDomains = 0;
    /**
     * DRAM lanes in sharded timing: how the DRAM path is split by
     * the L2 bank map. 0 (auto) gives one lane per L2 bank; with
     * more than one lane the DRAM backing store is partitioned per
     * bank and service runs inside the banked shared phase on the
     * bank-domain workers — only the channel reservation walk stays
     * serial. 1 keeps the monolithic serial DRAM tail (the pre-lane
     * code path, bit-identical to it by construction); any other
     * value is clamped to [1, l2Banks]. With a fixed quantum,
     * results are bit-identical for every lane count.
     */
    unsigned dramLanes = 0;
    /**
     * Overlapped boundary drains in sharded timing: 0 (auto)
     * overlaps whenever the DRAM lanes are engaged (dramLanes
     * effective > 1), 1 forces the serial barrier drains, 2 forces
     * the overlap. When on, each boundary keeps an active/staging
     * lane pair swapped at the barrier; the window prologues fan
     * the egress flush out to the cluster workers and the staged
     * drain out to the bank workers, and the main thread flushes
     * stat deferrals concurrently with the cluster phase. Delivery
     * ticks and per-queue orders are unchanged, so results are
     * bit-identical either way.
     */
    unsigned drainOverlap = 0;

    /** Short label for reports, e.g. "SMS-1K" or "SMS-PV8". */
    std::string label() const;
};

} // namespace pvsim

#endif // PVSIM_HARNESS_SYSTEM_CONFIG_HH
