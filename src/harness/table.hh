/**
 * @file
 * Plain-text table formatter for the bench harnesses: aligned
 * columns, optional CSV emission, numeric helpers. Every bench
 * prints its paper table/figure through this so outputs are easy to
 * diff against EXPERIMENTS.md.
 */

#ifndef PVSIM_HARNESS_TABLE_HH
#define PVSIM_HARNESS_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace pvsim {

/** Column-aligned text table with an optional title. */
class TextTable
{
  public:
    explicit TextTable(std::string title = "")
        : title_(std::move(title))
    {}

    void setColumns(const std::vector<std::string> &headers)
    {
        headers_ = headers;
    }

    void addRow(const std::vector<std::string> &cells)
    {
        rows_.push_back(cells);
    }

    /** Pretty-print with a rule under the header. */
    void print(std::ostream &os) const;

    /** Emit comma-separated values (headers first). */
    void printCsv(std::ostream &os) const;

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format helpers. */
std::string fmtDouble(double v, int precision = 2);
std::string fmtPct(double v, int precision = 1);
std::string fmtBytes(double bytes);
std::string fmtCount(uint64_t v);

} // namespace pvsim

#endif // PVSIM_HARNESS_TABLE_HH
