#include "harness/table.hh"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace pvsim {

void
TextTable::print(std::ostream &os) const
{
    if (!title_.empty())
        os << title_ << "\n";

    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t i = 0; i < headers_.size(); ++i)
        widths[i] = headers_[i].size();
    for (const auto &row : rows_) {
        for (size_t i = 0; i < row.size() && i < widths.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    }

    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < widths.size(); ++i) {
            std::string cell = i < cells.size() ? cells[i] : "";
            // Left-align the first column, right-align the rest.
            if (i == 0)
                os << std::left << std::setw(int(widths[i])) << cell;
            else
                os << std::right << std::setw(int(widths[i]))
                   << cell;
            if (i + 1 < widths.size())
                os << "  ";
        }
        os << "\n";
    };

    emit_row(headers_);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i) {
            if (i)
                os << ",";
            os << cells[i];
        }
        os << "\n";
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
fmtDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
fmtPct(double v, int precision)
{
    return fmtDouble(v, precision) + "%";
}

std::string
fmtBytes(double bytes)
{
    char buf[64];
    if (bytes >= 1024.0 * 1024.0) {
        std::snprintf(buf, sizeof(buf), "%.2fMB",
                      bytes / (1024.0 * 1024.0));
    } else if (bytes >= 1024.0) {
        std::snprintf(buf, sizeof(buf), "%.3fKB", bytes / 1024.0);
    } else {
        std::snprintf(buf, sizeof(buf), "%.0fB", bytes);
    }
    return buf;
}

std::string
fmtCount(uint64_t v)
{
    return std::to_string(v);
}

} // namespace pvsim
