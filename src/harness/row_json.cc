#include "harness/row_json.hh"

#include <sstream>

namespace pvsim {

std::string
timedRunJson(const TimedRun &r)
{
    std::ostringstream os;
    os << "\"ipc\": " << r.ipc
       << ", \"wall_seconds\": " << r.wallSeconds
       << ", \"events\": " << r.eventsExecuted
       << ", \"events_per_sec\": " << r.eventsPerSec()
       << ", \"timing_shards\": " << r.timingShards
       << ", \"l2_bank_domains\": " << r.l2BankDomains
       << ", \"dram_lanes\": " << r.dramLanes
       << ", \"drain_overlap\": " << (r.drainOverlap ? "true" : "false")
       << ", \"cluster_phase_seconds\": " << r.clusterPhaseSeconds
       << ", \"shared_phase_seconds\": " << r.sharedPhaseSeconds
       << ", \"serial_fraction\": " << r.serialFraction();
    return os.str();
}

std::string
fig9RowJson(const Fig9Row &r, unsigned jobs_effective)
{
    std::ostringstream os;
    os << "{\"mix\": \"" << r.mix
       << "\", \"edge_stability\": " << r.edgeStability
       << ", \"dedicated_ipc\": " << r.dedicatedIpc
       << ", \"virtualized_ipc\": " << r.virtualizedIpc
       << ", \"dedicated_hit_pct\": " << r.dedicatedHitPct
       << ", \"virtualized_hit_pct\": " << r.virtualizedHitPct
       << ", \"speedup_pct\": " << r.speedupPct
       << ", \"ci_pct\": " << r.ciPct
       << ", \"wall_seconds\": " << r.wallSeconds
       << ", \"events\": " << r.eventsExecuted
       << ", \"events_per_sec\": " << r.eventsPerSec()
       << ", \"jobs_effective\": " << jobs_effective
       << ", \"timing_shards\": " << r.timingShards
       << ", \"l2_bank_domains\": " << r.l2BankDomains
       << ", \"dram_lanes\": " << r.dramLanes
       << ", \"drain_overlap\": " << (r.drainOverlap ? "true" : "false")
       << ", \"cluster_phase_seconds\": " << r.clusterPhaseSeconds
       << ", \"shared_phase_seconds\": " << r.sharedPhaseSeconds
       << ", \"serial_fraction\": " << r.serialFraction() << "}";
    return os.str();
}

std::string
qosRowJson(const QosRow &r, unsigned jobs_effective)
{
    std::ostringstream os;
    os << "{\"setting\": \"" << r.label
       << "\", \"btb_weight\": " << r.btbWeight
       << ", \"aggressor_weight\": " << r.aggressorWeight
       << ", \"ipc\": " << r.ipc
       << ", \"avail_redirect_pct\": " << r.availRedirectPct
       << ", \"btb_hit_pct\": " << r.btbHitPct
       << ", \"btb_drop_pct\": " << r.btbDropPct
       << ", \"aggressor_drop_pct\": " << r.aggressorDropPct
       << ", \"btb_fill_latency\": " << r.btbFillLatency
       << ", \"ipc_delta_pct\": " << r.ipcDeltaPct
       << ", \"avail_improvement_pct\": " << r.availImprovementPct
       << ", \"wall_seconds\": " << r.wallSeconds
       << ", \"events\": " << r.eventsExecuted
       << ", \"events_per_sec\": " << r.eventsPerSec()
       << ", \"jobs_effective\": " << jobs_effective
       << ", \"timing_shards\": " << r.timingShards
       << ", \"l2_bank_domains\": " << r.l2BankDomains
       << ", \"dram_lanes\": " << r.dramLanes
       << ", \"drain_overlap\": " << (r.drainOverlap ? "true" : "false")
       << ", \"cluster_phase_seconds\": " << r.clusterPhaseSeconds
       << ", \"shared_phase_seconds\": " << r.sharedPhaseSeconds
       << ", \"serial_fraction\": " << r.serialFraction() << "}";
    return os.str();
}

std::string
qosClusterRowJson(const QosClusterRow &c)
{
    std::ostringstream os;
    os << "{\"cluster\": \"" << c.cluster
       << "\", \"mix\": \"" << c.mix
       << "\", \"contract\": \"" << c.contract
       << "\", \"btb_weight\": " << c.btbWeight
       << ", \"aggressor_weight\": " << c.aggressorWeight
       << ", \"cores\": " << c.cores
       << ", \"avail_redirect_pct\": " << c.availRedirectPct
       << ", \"ref_avail_redirect_pct\": " << c.refAvailRedirectPct
       << ", \"avail_improvement_pct\": " << c.availImprovementPct
       << ", \"btb_hit_pct\": " << c.btbHitPct
       << ", \"btb_drop_pct\": " << c.btbDropPct
       << ", \"ref_btb_drop_pct\": " << c.refBtbDropPct
       << ", \"aggressor_drop_pct\": " << c.aggressorDropPct << "}";
    return os.str();
}

} // namespace pvsim
