#include "harness/metrics.hh"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <thread>

#include "util/logging.hh"

namespace pvsim {

unsigned
harnessJobs()
{
    if (const char *env = std::getenv("PVSIM_JOBS")) {
        char *end = nullptr;
        unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return unsigned(std::min<unsigned long>(v, 256));
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

unsigned
effectiveHarnessJobs(unsigned batches)
{
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    unsigned jobs = std::min(harnessJobs(), hw);
    return std::max(1u, std::min(jobs, batches));
}

namespace {

/**
 * Run body(b) for every batch in [0, batches), sharded over
 * effectiveHarnessJobs(batches) worker threads — PVSIM_JOBS clamped
 * to the hardware thread count and the batch count, falling back to
 * a plain serial loop when only one worker would run. Each body(b)
 * call constructs its own System — there is no shared SimContext
 * between batches, by construction — and all batch inputs derive
 * from b alone, so the result vector is bit-identical to a serial
 * loop no matter how many workers run or how the OS schedules them.
 */
void
forEachBatch(unsigned batches,
             const std::function<void(unsigned)> &body)
{
    unsigned jobs = effectiveHarnessJobs(batches);
    if (jobs <= 1) {
        for (unsigned b = 0; b < batches; ++b)
            body(b);
        return;
    }
    std::atomic<unsigned> next{0};
    std::vector<std::thread> workers;
    workers.reserve(jobs);
    for (unsigned w = 0; w < jobs; ++w) {
        workers.emplace_back([&] {
            for (;;) {
                unsigned b = next.fetch_add(1);
                if (b >= batches)
                    return;
                body(b);
            }
        });
    }
    for (auto &t : workers)
        t.join();
}

} // anonymous namespace

CoverageMetrics
coverageOf(System &sys)
{
    CoverageMetrics m;
    for (int c = 0; c < sys.numCores(); ++c) {
        Cache &l1d = sys.l1d(c);
        m.covered += l1d.coveredMisses.value() +
                     l1d.lateCovered.value();
        m.uncovered += l1d.readMisses.value();
        m.overpredictions += l1d.overpredictions.value();
    }
    return m;
}

TrafficMetrics
trafficOf(System &sys)
{
    TrafficMetrics t;
    Cache &l2 = sys.l2();
    t.l2Requests = l2.requestsApp.value() + l2.requestsPv.value();
    t.l2RequestsPv = l2.requestsPv.value();
    t.l2MissesApp = l2.missesApp.value();
    t.l2MissesPv = l2.missesPv.value();
    t.l2WritebacksApp = l2.writebacksApp.value();
    t.l2WritebacksPv = l2.writebacksPv.value();
    t.offChipReadBytes = sys.dram().readBytes.value();
    t.offChipWriteBytes = sys.dram().writeBytes.value();
    return t;
}

double
pctIncrease(uint64_t base, uint64_t now)
{
    if (base == 0)
        return 0.0;
    return 100.0 * (double(now) - double(base)) / double(base);
}

double
aggregateIpc(uint64_t total_insts, Tick elapsed)
{
    return elapsed ? double(total_insts) / double(elapsed) : 0.0;
}

MeanCi
meanCi(const std::vector<double> &samples)
{
    MeanCi r;
    r.n = samples.size();
    if (r.n == 0)
        return r;
    double sum = 0.0;
    for (double s : samples)
        sum += s;
    r.mean = sum / double(r.n);
    if (r.n < 2)
        return r;
    double ss = 0.0;
    for (double s : samples)
        ss += (s - r.mean) * (s - r.mean);
    double stderr_ = std::sqrt(ss / double(r.n - 1)) /
                     std::sqrt(double(r.n));
    r.halfWidth = 1.96 * stderr_;
    return r;
}

namespace {

/**
 * The one warmup -> resetStats -> measure protocol every timing
 * harness entry runs, collecting the TimedRun scoreboard; callers
 * keep the System to harvest additional stats afterwards.
 */
TimedRun
runMeasured(System &sys, uint64_t warmup_records,
            uint64_t measure_records)
{
    if (warmup_records > 0)
        sys.runTiming(warmup_records);
    Tick start = sys.ctx().curTick();
    sys.resetStats();
    uint64_t events_before = sys.eventsExecuted();
    auto wall_start = std::chrono::steady_clock::now();
    Tick finish = sys.runTiming(measure_records);
    std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - wall_start;
    TimedRun r;
    r.ipc = aggregateIpc(sys.totalInstructions(), finish - start);
    r.wallSeconds = wall.count();
    r.eventsExecuted = sys.eventsExecuted() - events_before;
    r.timingShards = sys.timingShardsEffective();
    r.l2BankDomains = sys.l2BankDomainsEffective();
    r.dramLanes = sys.dramLanesEffective();
    r.drainOverlap = sys.drainOverlapEffective();
    // resetStats() zeroed the phase timers at the measure boundary,
    // so these are measure-phase-only.
    r.clusterPhaseSeconds = sys.clusterPhaseSeconds();
    r.sharedPhaseSeconds = sys.sharedPhaseSeconds();
    for (int c = 0; c < sys.numCores(); ++c) {
        r.btbHits += sys.core(c).btbHits.value();
        r.btbMispredicts += sys.core(c).btbMispredicts.value();
        r.btbUnavailable += sys.core(c).btbUnavailable.value();
    }
    return r;
}

} // anonymous namespace

TimedRun
timedRun(SystemConfig cfg, uint64_t warmup_records,
         uint64_t measure_records)
{
    cfg.mode = SimMode::Timing;
    System sys(cfg);
    return runMeasured(sys, warmup_records, measure_records);
}

double
timedIpc(SystemConfig cfg, uint64_t warmup_records,
         uint64_t measure_records)
{
    return timedRun(std::move(cfg), warmup_records, measure_records)
        .ipc;
}

std::vector<double>
baselineIpcs(const SystemConfig &base, uint64_t warmup_records,
             uint64_t measure_records, unsigned batches)
{
    std::vector<double> ipcs(batches, 0.0);
    forEachBatch(batches, [&](unsigned b) {
        // Explicit per-batch copy: only seedOffset varies.
        SystemConfig cfg = base;
        cfg.seedOffset = b;
        ipcs[b] = timedIpc(cfg, warmup_records, measure_records);
    });
    return ipcs;
}

SpeedupResult
speedupOverBaseline(const std::vector<double> &base_ipcs,
                    const SystemConfig &cfg, uint64_t warmup_records,
                    uint64_t measure_records)
{
    SpeedupResult r;
    unsigned batches = unsigned(base_ipcs.size());
    r.batchPct.assign(batches, 0.0);
    forEachBatch(batches, [&](unsigned b) {
        SystemConfig batch_cfg = cfg;
        batch_cfg.seedOffset = b;
        double ipc_cfg =
            timedIpc(batch_cfg, warmup_records, measure_records);
        r.batchPct[b] =
            base_ipcs[b] > 0.0
                ? 100.0 * (ipc_cfg / base_ipcs[b] - 1.0)
                : 0.0;
    });
    MeanCi ci = meanCi(r.batchPct);
    r.meanPct = ci.mean;
    r.ciPct = ci.halfWidth;
    return r;
}

SpeedupResult
matchedPairSpeedup(const SystemConfig &base, const SystemConfig &cfg,
                   uint64_t warmup_records, uint64_t measure_records,
                   unsigned batches)
{
    return speedupOverBaseline(
        baselineIpcs(base, warmup_records, measure_records, batches),
        cfg, warmup_records, measure_records);
}

namespace {

/**
 * The successor-edge stability a (mix, requested-override) pair
 * actually runs — the single source of truth for fig9Config (what
 * the Systems execute) and fig9Sweep's row labels (what the
 * artifact reports): 0 for a mix without a branch profile (flat
 * streams — any override is meaningless), else the override, else
 * the mix's own value.
 */
double
fig9EffectiveStability(const WorkloadMix &mix, double requested)
{
    if (!mix.branch.enabled)
        return 0.0;
    return requested >= 0.0 ? requested
                            : mix.branch.edgeStability;
}

} // anonymous namespace

SystemConfig
fig9Config(const WorkloadMix &mix, const Fig9Options &opt,
           BtbMode mode, double edge_stability)
{
    SystemConfig cfg;
    cfg.mode = SimMode::Timing;
    cfg.numCores = opt.numCores;
    cfg.workloadMix = mix.workloads;
    // The mix's control-flow profile makes the branch stream
    // learnable; a sweep value overrides its stability so the
    // experiment can walk hit rate from near-perfect to coin-flip.
    cfg.branchProfile = mix.branch;
    if (mix.branch.enabled) {
        cfg.branchProfile.edgeStability =
            fig9EffectiveStability(mix, edge_stability);
    }
    // No data prefetcher: the pair isolates the BTB effect.
    cfg.prefetch = PrefetchMode::None;
    cfg.btbMispredictPenalty = opt.penalty;
    cfg.btb.mode = mode;
    cfg.btb.numSets = opt.btbSets;
    cfg.btb.assoc = opt.btbAssoc;
    // The virtualized table needs its sets inside the per-core PV
    // reservation; the dedicated side keeps the same value so the
    // address map (and with it the timing) is identical.
    cfg.pvBytesPerCore =
        std::max<uint64_t>(cfg.pvBytesPerCore,
                           uint64_t(opt.btbSets) * kBlockBytes);
    cfg.pvPrefetch = opt.pvPrefetch;
    cfg.victimEntries = opt.victimEntries;
    cfg.timingShards = opt.timingShards;
    cfg.syncQuantum = opt.syncQuantum;
    cfg.l2BankDomains = opt.l2BankDomains;
    cfg.dramLanes = opt.dramLanes;
    cfg.drainOverlap = opt.drainOverlap;
    return cfg;
}

std::vector<Fig9Row>
fig9Sweep(const Fig9Options &opt)
{
    pv_assert(opt.batches > 0, "fig9Sweep needs at least one batch");
    const std::vector<WorkloadMix> mixes =
        opt.mixes.empty() ? presetMixes() : opt.mixes;
    const std::vector<double> stabilities =
        opt.edgeStabilities.empty()
            ? std::vector<double>{kFig9MixStability}
            : opt.edgeStabilities;
    const unsigned batches = opt.batches;

    // Every (stability, mix, side, batch) run is a self-contained
    // System, so flatten them all into one shard: the pool stays
    // busy even when batches alone are fewer than the workers. Job
    // layout: stability-major, then mix, then side (0 dedicated /
    // 1 virtualized), then batch; results are bit-identical to the
    // nested serial loops.
    const unsigned per_mix = 2 * batches;
    const unsigned per_stab = unsigned(mixes.size()) * per_mix;
    std::vector<TimedRun> runs(stabilities.size() * per_stab);
    forEachBatch(unsigned(runs.size()), [&](unsigned j) {
        const double stability = stabilities[j / per_stab];
        const WorkloadMix &mix =
            mixes[(j % per_stab) / per_mix];
        BtbMode mode = (j / batches) % 2 ? BtbMode::Virtualized
                                         : BtbMode::Dedicated;
        SystemConfig cfg = fig9Config(mix, opt, mode, stability);
        cfg.seedOffset = j % batches;
        runs[j] = timedRun(cfg, opt.warmupRecords,
                           opt.measureRecords);
    });

    std::vector<Fig9Row> rows;
    rows.reserve(stabilities.size() * mixes.size());
    for (size_t s = 0; s < stabilities.size(); ++s) {
        for (size_t m = 0; m < mixes.size(); ++m) {
            const TimedRun *ded =
                &runs[s * per_stab + m * per_mix];
            const TimedRun *virt = ded + batches;
            Fig9Row row;
            row.mix = mixes[m].name;
            // Same resolution fig9Config applied: the label always
            // matches what the Systems ran (0 = flat-stream pass).
            row.edgeStability =
                fig9EffectiveStability(mixes[m], stabilities[s]);
            row.batchPct.resize(batches, 0.0);
            double ded_sum = 0.0, virt_sum = 0.0;
            TimedRun ded_all, virt_all;
            row.timingShards = ded[0].timingShards;
            row.l2BankDomains = ded[0].l2BankDomains;
            row.dramLanes = ded[0].dramLanes;
            row.drainOverlap = ded[0].drainOverlap;
            for (unsigned b = 0; b < batches; ++b) {
                ded_sum += ded[b].ipc;
                virt_sum += virt[b].ipc;
                row.wallSeconds +=
                    ded[b].wallSeconds + virt[b].wallSeconds;
                row.eventsExecuted +=
                    ded[b].eventsExecuted + virt[b].eventsExecuted;
                row.clusterPhaseSeconds += ded[b].clusterPhaseSeconds +
                                           virt[b].clusterPhaseSeconds;
                row.sharedPhaseSeconds += ded[b].sharedPhaseSeconds +
                                          virt[b].sharedPhaseSeconds;
                ded_all.btbHits += ded[b].btbHits;
                ded_all.btbMispredicts += ded[b].btbMispredicts;
                virt_all.btbHits += virt[b].btbHits;
                virt_all.btbMispredicts += virt[b].btbMispredicts;
                row.batchPct[b] =
                    ded[b].ipc > 0.0
                        ? 100.0 * (virt[b].ipc / ded[b].ipc - 1.0)
                        : 0.0;
            }
            row.dedicatedIpc = ded_sum / double(batches);
            row.virtualizedIpc = virt_sum / double(batches);
            row.dedicatedHitPct = 100.0 * ded_all.btbHitRate();
            row.virtualizedHitPct = 100.0 * virt_all.btbHitRate();
            MeanCi ci = meanCi(row.batchPct);
            row.speedupPct = ci.mean;
            row.ciPct = ci.halfWidth;
            rows.push_back(std::move(row));
        }
    }
    return rows;
}

// ---- PVCache locality prefetch comparison -----------------------------

Fig9PrefetchResult
fig9PrefetchCompare(const Fig9Options &opt)
{
    pv_assert(opt.batches > 0,
              "fig9PrefetchCompare needs at least one batch");
    WorkloadMix mix;
    for (const WorkloadMix &m : presetMixes()) {
        if (m.name == "mixed")
            mix = m;
    }
    pv_assert(!mix.workloads.empty(), "preset mix 'mixed' missing");

    Fig9PrefetchResult res;
    res.mix = mix.name;
    res.depth = opt.pvPrefetch ? opt.pvPrefetch : 2;
    res.victimEntries = opt.victimEntries ? opt.victimEntries : 8;

    // One self-contained System per (side, batch) job, matched
    // seeds. Job layout is side-major (0 = off, 1 = on), so the
    // batch index — and with it the seed — is j % batches on both
    // sides; the runs vector is bit-identical to a serial loop.
    struct Run {
        TimedRun timed;
        uint64_t prefetchFills = 0;
        uint64_t prefetchUseful = 0;
        uint64_t prefetchDrops = 0;
        uint64_t victimHits = 0;
    };
    const unsigned batches = opt.batches;
    std::vector<Run> runs(2 * batches);
    forEachBatch(unsigned(runs.size()), [&](unsigned j) {
        const bool on = j >= batches;
        SystemConfig cfg =
            fig9Config(mix, opt, BtbMode::Virtualized);
        cfg.pvPrefetch = on ? res.depth : 0;
        cfg.victimEntries = on ? res.victimEntries : 0;
        cfg.seedOffset = j % batches;
        System sys(cfg);
        Run &r = runs[j];
        r.timed = runMeasured(sys, opt.warmupRecords,
                              opt.measureRecords);
        for (int c = 0; c < sys.numCores(); ++c) {
            PvProxy *p = sys.pvProxy(c);
            if (!p)
                continue;
            r.prefetchFills += p->prefetchFills.value();
            r.prefetchUseful += p->prefetchUseful.value();
            r.prefetchDrops += p->prefetchDrops.value();
            r.victimHits += p->victimHits.value();
        }
    });

    auto fold = [&](Fig9PrefetchSide &side, const Run *first) {
        TimedRun all;
        double ipc_sum = 0.0;
        for (unsigned b = 0; b < batches; ++b) {
            const Run &r = first[b];
            ipc_sum += r.timed.ipc;
            side.wallSeconds += r.timed.wallSeconds;
            all.btbHits += r.timed.btbHits;
            all.btbMispredicts += r.timed.btbMispredicts;
            all.btbUnavailable += r.timed.btbUnavailable;
            side.prefetchFills += r.prefetchFills;
            side.prefetchUseful += r.prefetchUseful;
            side.prefetchDrops += r.prefetchDrops;
            side.victimHits += r.victimHits;
        }
        side.ipc = ipc_sum / double(batches);
        side.availRedirectPct =
            100.0 * all.btbAvailabilityRedirectRate();
    };
    fold(res.off, runs.data());
    fold(res.on, runs.data() + batches);

    std::vector<double> delta(batches, 0.0);
    for (unsigned b = 0; b < batches; ++b)
        delta[b] = runs[b].timed.ipc > 0.0
                       ? 100.0 * (runs[batches + b].timed.ipc /
                                      runs[b].timed.ipc -
                                  1.0)
                       : 0.0;
    res.ipcDeltaPct = meanCi(delta).mean;
    res.availImprovementPct =
        res.off.availRedirectPct > 0.0
            ? 100.0 * (res.off.availRedirectPct -
                       res.on.availRedirectPct) /
                  res.off.availRedirectPct
            : 0.0;
    return res;
}

// ---- Per-tenant QoS contention sweep ----------------------------------

std::vector<QosSetting>
presetQosSettings()
{
    std::vector<QosSetting> s;
    auto weights = [](const std::string &label, unsigned btb_w,
                      unsigned agg_w) {
        QosSetting q;
        q.label = label;
        q.btb.weight = btb_w;
        q.aggressor.weight = agg_w;
        return q;
    };
    // The first setting is the baseline every delta is computed
    // against: default contracts, i.e. the legacy fair share.
    s.push_back(weights("equal", 1, 1));
    s.push_back(weights("2:1", 2, 1));
    s.push_back(weights("4:1", 4, 1));
    s.push_back(weights("8:1", 8, 1));
    // Floors instead of weights: equal weighting of the remainder,
    // but the BTB is guaranteed most of each resource outright —
    // and unlike 4:1/8:1 (whose MSHR split rounds the aggressor to
    // zero slots), the aggressor keeps one MSHR, so this is the
    // "protect without killing" contract.
    QosSetting floors = weights("equal+floor", 1, 1);
    floors.btb.pvCacheFloor = 10;
    floors.btb.mshrFloor = 2;
    floors.btb.patternBufferFloor = 12;
    s.push_back(floors);
    return s;
}

SystemConfig
qosConfig(const QosOptions &opt, const QosSetting &s)
{
    // The branchiest preset mix: learnable streams with enough
    // distinct routines to thrash the PVCache — the profile under
    // which PR 4 measured the widest availability gap.
    WorkloadMix mix;
    for (const WorkloadMix &m : presetMixes()) {
        if (m.name == "mixed")
            mix = m;
    }
    pv_assert(!mix.workloads.empty(), "preset mix 'mixed' missing");

    SystemConfig cfg;
    cfg.mode = SimMode::Timing;
    cfg.numCores = opt.numCores;
    cfg.workloadMix = mix.workloads;
    cfg.branchProfile = mix.branch;
    // No data prefetcher: the aggressor is the only other tenant,
    // so the BTB deltas isolate the proxy contention effect.
    cfg.prefetch = PrefetchMode::None;
    cfg.btbMispredictPenalty = opt.penalty;
    cfg.btb.mode = BtbMode::Virtualized;
    cfg.btb.numSets = opt.btbSets;
    cfg.btb.assoc = opt.btbAssoc;
    cfg.btb.qos = s.btb;
    cfg.pvCacheEntries = opt.pvCacheEntries;

    VirtEngineConfig agg;
    agg.kind = VirtEngineKind::Agt;
    agg.numSets = opt.agtSets;
    // AGT entries are 54-bit payloads: 4 ways x 12-bit tags is the
    // widest packing that fits a 64-byte line.
    agg.assoc = 4;
    agg.tagBits = 12;
    agg.qos = s.aggressor;
    cfg.virtEngines.push_back(agg);

    cfg.pvBytesPerCore = std::max<uint64_t>(
        cfg.pvBytesPerCore,
        uint64_t(opt.btbSets + opt.agtSets) * kBlockBytes);
    cfg.pvPrefetch = opt.pvPrefetch;
    cfg.victimEntries = opt.victimEntries;
    cfg.timingShards = opt.timingShards;
    cfg.syncQuantum = opt.syncQuantum;
    cfg.l2BankDomains = opt.l2BankDomains;
    cfg.dramLanes = opt.dramLanes;
    cfg.drainOverlap = opt.drainOverlap;
    return cfg;
}

namespace {

/** Everything one QoS run yields beyond TimedRun: per-tenant proxy
 *  pressure summed over the cores' proxies. */
struct QosRun {
    TimedRun timed;
    uint64_t btbOps = 0;
    uint64_t btbDrops = 0;
    uint64_t btbFills = 0;
    uint64_t btbFillTicks = 0;
    uint64_t aggOps = 0;
    uint64_t aggDrops = 0;
};

QosRun
qosRun(SystemConfig cfg, uint64_t warmup_records,
       uint64_t measure_records)
{
    cfg.mode = SimMode::Timing;
    System sys(cfg);
    QosRun r;
    r.timed = runMeasured(sys, warmup_records, measure_records);
    for (int c = 0; c < sys.numCores(); ++c) {
        PvProxy::EngineStats &bs = sys.virtBtb(c)->engineStats();
        r.btbOps += bs.operations.value();
        r.btbDrops += bs.drops.value();
        r.btbFills += bs.fills.value();
        r.btbFillTicks += bs.fillLatencyTicks.value();
        PvProxy::EngineStats &as = sys.virtAgt(c)->engineStats();
        r.aggOps += as.operations.value();
        r.aggDrops += as.drops.value();
    }
    return r;
}

} // anonymous namespace

std::vector<QosRow>
qosSweep(const QosOptions &opt)
{
    pv_assert(opt.batches > 0, "qosSweep needs at least one batch");
    const std::vector<QosSetting> settings =
        opt.settings.empty() ? presetQosSettings() : opt.settings;
    const unsigned batches = opt.batches;

    // Job layout: setting-major, then batch; every run is a
    // self-contained System, so the (setting, batch) grid shards
    // flat across the worker pool with bit-identical results.
    std::vector<QosRun> runs(settings.size() * batches);
    forEachBatch(unsigned(runs.size()), [&](unsigned j) {
        SystemConfig cfg =
            qosConfig(opt, settings[j / batches]);
        cfg.seedOffset = j % batches;
        runs[j] = qosRun(cfg, opt.warmupRecords,
                         opt.measureRecords);
    });

    std::vector<QosRow> rows;
    rows.reserve(settings.size());
    for (size_t s = 0; s < settings.size(); ++s) {
        const QosRun *mine = &runs[s * batches];
        const QosRun *base = &runs[0]; // first setting, same seeds
        QosRow row;
        row.label = settings[s].label;
        row.btbWeight = settings[s].btb.weight;
        row.aggressorWeight = settings[s].aggressor.weight;

        TimedRun all, base_all;
        double ipc_sum = 0.0;
        uint64_t ops = 0, drops = 0, fills = 0, fill_ticks = 0;
        uint64_t agg_ops = 0, agg_drops = 0;
        std::vector<double> delta(batches, 0.0);
        row.timingShards = mine[0].timed.timingShards;
        row.l2BankDomains = mine[0].timed.l2BankDomains;
        row.dramLanes = mine[0].timed.dramLanes;
        row.drainOverlap = mine[0].timed.drainOverlap;
        for (unsigned b = 0; b < batches; ++b) {
            ipc_sum += mine[b].timed.ipc;
            row.wallSeconds += mine[b].timed.wallSeconds;
            row.eventsExecuted += mine[b].timed.eventsExecuted;
            row.clusterPhaseSeconds +=
                mine[b].timed.clusterPhaseSeconds;
            row.sharedPhaseSeconds +=
                mine[b].timed.sharedPhaseSeconds;
            all.btbHits += mine[b].timed.btbHits;
            all.btbMispredicts += mine[b].timed.btbMispredicts;
            all.btbUnavailable += mine[b].timed.btbUnavailable;
            base_all.btbHits += base[b].timed.btbHits;
            base_all.btbMispredicts +=
                base[b].timed.btbMispredicts;
            base_all.btbUnavailable +=
                base[b].timed.btbUnavailable;
            ops += mine[b].btbOps;
            drops += mine[b].btbDrops;
            fills += mine[b].btbFills;
            fill_ticks += mine[b].btbFillTicks;
            agg_ops += mine[b].aggOps;
            agg_drops += mine[b].aggDrops;
            delta[b] = base[b].timed.ipc > 0.0
                           ? 100.0 * (mine[b].timed.ipc /
                                          base[b].timed.ipc -
                                      1.0)
                           : 0.0;
        }
        row.ipc = ipc_sum / double(batches);
        row.availRedirectPct =
            100.0 * all.btbAvailabilityRedirectRate();
        row.btbHitPct = 100.0 * all.btbHitRate();
        row.btbDropPct =
            ops ? 100.0 * double(drops) / double(ops) : 0.0;
        row.aggressorDropPct =
            agg_ops ? 100.0 * double(agg_drops) / double(agg_ops)
                    : 0.0;
        row.btbFillLatency =
            fills ? double(fill_ticks) / double(fills) : 0.0;
        row.ipcDeltaPct = meanCi(delta).mean;
        double base_rate =
            100.0 * base_all.btbAvailabilityRedirectRate();
        row.availImprovementPct =
            base_rate > 0.0
                ? 100.0 * (base_rate - row.availRedirectPct) /
                      base_rate
                : 0.0;
        rows.push_back(std::move(row));
    }
    return rows;
}

// ---- Heterogeneous per-cluster tenant matrix --------------------------

namespace {

/** Cluster group of core c: contiguous quarters, the same grouping
 *  the sharded scheduler uses for its clusters. */
unsigned
hetGroupOf(int core, int num_cores)
{
    return unsigned(core) * 4u / unsigned(num_cores);
}

/** Per-group tenant counters of one heterogeneous run. */
struct HetGroup {
    uint64_t btbHits = 0;
    uint64_t btbMispredicts = 0;
    uint64_t btbUnavailable = 0;
    uint64_t btbOps = 0;
    uint64_t btbDrops = 0;
    uint64_t aggOps = 0;
    uint64_t aggDrops = 0;

    double
    availRedirectPct() const
    {
        uint64_t scored = btbHits + btbMispredicts;
        return scored ? 100.0 * double(btbUnavailable) /
                            double(scored)
                      : 0.0;
    }

    double
    btbHitPct() const
    {
        uint64_t scored = btbHits + btbMispredicts;
        return scored ? 100.0 * double(btbHits) / double(scored)
                      : 0.0;
    }

    double
    btbDropPct() const
    {
        return btbOps ? 100.0 * double(btbDrops) / double(btbOps)
                      : 0.0;
    }

    double
    aggressorDropPct() const
    {
        return aggOps ? 100.0 * double(aggDrops) / double(aggOps)
                      : 0.0;
    }
};

struct HetRun {
    TimedRun timed;
    std::array<HetGroup, 4> groups;
};

/**
 * One heterogeneous run: every cluster group gets its own workload
 * mix; when `protect` is set, groups 1..3 additionally get their
 * own QoS contracts (installed through the proxies before any
 * traffic — the config itself carries the equal contract, so the
 * protected and reference runs share one address map and seed
 * derivation and differ only in the arbiter's entitlements).
 */
HetRun
hetRun(const QosOptions &opt,
       const std::array<const WorkloadMix *, 4> &group_mixes,
       const std::array<const QosSetting *, 4> &contracts,
       unsigned seed, bool protect)
{
    SystemConfig cfg = qosConfig(opt, *contracts[0]);
    cfg.workloadMix.clear();
    cfg.workloadMix.reserve(size_t(opt.numCores));
    for (int c = 0; c < opt.numCores; ++c) {
        const std::vector<std::string> &w =
            group_mixes[hetGroupOf(c, opt.numCores)]->workloads;
        cfg.workloadMix.push_back(w[size_t(c) % w.size()]);
    }
    cfg.seedOffset = seed;
    System sys(cfg);
    if (protect) {
        for (int c = 0; c < sys.numCores(); ++c) {
            const QosSetting &s =
                *contracts[hetGroupOf(c, opt.numCores)];
            // Table 0 is the implicit virtualized BTB, table 1 the
            // registered AGT aggressor (see qosConfig).
            sys.pvProxy(c)->setTenantQos(0, s.btb);
            sys.pvProxy(c)->setTenantQos(1, s.aggressor);
        }
    }
    HetRun r;
    r.timed = runMeasured(sys, opt.warmupRecords,
                          opt.measureRecords);
    for (int c = 0; c < sys.numCores(); ++c) {
        HetGroup &g = r.groups[hetGroupOf(c, opt.numCores)];
        g.btbHits += sys.core(c).btbHits.value();
        g.btbMispredicts += sys.core(c).btbMispredicts.value();
        g.btbUnavailable += sys.core(c).btbUnavailable.value();
        PvProxy::EngineStats &bs = sys.virtBtb(c)->engineStats();
        g.btbOps += bs.operations.value();
        g.btbDrops += bs.drops.value();
        PvProxy::EngineStats &as = sys.virtAgt(c)->engineStats();
        g.aggOps += as.operations.value();
        g.aggDrops += as.drops.value();
    }
    return r;
}

} // anonymous namespace

QosHeterogeneousResult
qosHeterogeneous(const QosOptions &opt)
{
    pv_assert(opt.batches > 0,
              "qosHeterogeneous needs at least one batch");
    pv_assert(opt.numCores >= 4 && opt.numCores % 4 == 0,
              "heterogeneous matrix needs a multiple of 4 cores");

    // The four preset mixes (web / oltp / dss / mixed), one per
    // cluster group.
    const std::vector<WorkloadMix> mixes = presetMixes();
    pv_assert(mixes.size() >= 4, "need four preset mixes");
    const std::array<const WorkloadMix *, 4> group_mixes = {
        &mixes[0], &mixes[1], &mixes[2], &mixes[3]};

    // Per-group contracts: the control group keeps the equal
    // contract even in the protected run, so its row isolates the
    // cross-cluster side effects of protecting the others.
    const std::vector<QosSetting> presets = presetQosSettings();
    pv_assert(presets.size() >= 5, "need the preset QoS settings");
    const std::array<const QosSetting *, 4> contracts = {
        &presets[0],  // equal (control)
        &presets[2],  // 4:1
        &presets[4],  // equal+floor
        &presets[3]}; // 8:1

    // Job layout: side-major (reference first), then batch; both
    // sides of batch b share the seed, so deltas are matched.
    const unsigned batches = opt.batches;
    std::vector<HetRun> runs(2 * batches);
    forEachBatch(unsigned(runs.size()), [&](unsigned j) {
        runs[j] = hetRun(opt, group_mixes, contracts, j % batches,
                         /*protect=*/j >= batches);
    });

    QosHeterogeneousResult res;
    const HetRun *ref = &runs[0];
    const HetRun *prot = &runs[batches];
    double ref_ipc = 0.0, prot_ipc = 0.0;
    std::array<HetGroup, 4> ref_g, prot_g;
    auto accumulate = [](TimedRun &into, const TimedRun &from) {
        into.btbHits += from.btbHits;
        into.btbMispredicts += from.btbMispredicts;
        into.btbUnavailable += from.btbUnavailable;
        into.wallSeconds += from.wallSeconds;
        into.eventsExecuted += from.eventsExecuted;
        into.clusterPhaseSeconds += from.clusterPhaseSeconds;
        into.sharedPhaseSeconds += from.sharedPhaseSeconds;
        into.timingShards = from.timingShards;
        into.l2BankDomains = from.l2BankDomains;
        into.dramLanes = from.dramLanes;
        into.drainOverlap = from.drainOverlap;
    };
    auto merge = [](std::array<HetGroup, 4> &into,
                    const std::array<HetGroup, 4> &from) {
        for (size_t g = 0; g < 4; ++g) {
            into[g].btbHits += from[g].btbHits;
            into[g].btbMispredicts += from[g].btbMispredicts;
            into[g].btbUnavailable += from[g].btbUnavailable;
            into[g].btbOps += from[g].btbOps;
            into[g].btbDrops += from[g].btbDrops;
            into[g].aggOps += from[g].aggOps;
            into[g].aggDrops += from[g].aggDrops;
        }
    };
    for (unsigned b = 0; b < batches; ++b) {
        ref_ipc += ref[b].timed.ipc;
        prot_ipc += prot[b].timed.ipc;
        accumulate(res.referenceRun, ref[b].timed);
        accumulate(res.protectedRun, prot[b].timed);
        merge(ref_g, ref[b].groups);
        merge(prot_g, prot[b].groups);
    }
    res.referenceRun.ipc = ref_ipc / double(batches);
    res.protectedRun.ipc = prot_ipc / double(batches);

    for (size_t g = 0; g < 4; ++g) {
        QosClusterRow row;
        row.mix = group_mixes[g]->name;
        row.contract = contracts[g]->label;
        row.cluster = row.mix + "/" + row.contract;
        row.btbWeight = contracts[g]->btb.weight;
        row.aggressorWeight = contracts[g]->aggressor.weight;
        row.cores = opt.numCores / 4;
        row.availRedirectPct = prot_g[g].availRedirectPct();
        row.btbHitPct = prot_g[g].btbHitPct();
        row.btbDropPct = prot_g[g].btbDropPct();
        row.aggressorDropPct = prot_g[g].aggressorDropPct();
        row.refAvailRedirectPct = ref_g[g].availRedirectPct();
        row.refBtbDropPct = ref_g[g].btbDropPct();
        row.availImprovementPct =
            row.refAvailRedirectPct > 0.0
                ? 100.0 * (row.refAvailRedirectPct -
                           row.availRedirectPct) /
                      row.refAvailRedirectPct
                : 0.0;
        res.clusters.push_back(std::move(row));
    }
    return res;
}

} // namespace pvsim
