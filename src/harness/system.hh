/**
 * @file
 * System: builds and owns the full simulated machine — cores, L1s,
 * shared L2, DRAM, prefetchers, and (when configured) one
 * multi-tenant PVProxy per core serving every virtualized engine in
 * the config's registry — wired as in the paper's Figure 1b, with
 * the shared-PV-space extension of its Section 2.1.
 */

#ifndef PVSIM_HARNESS_SYSTEM_HH
#define PVSIM_HARNESS_SYSTEM_HH

#include <memory>
#include <vector>

#include "stats/stat.hh"

#include "core/virt_agt.hh"
#include "core/virt_btb.hh"
#include "core/virt_pht.hh"
#include "core/virt_stride.hh"
#include "cpu/trace_core.hh"
#include "harness/system_config.hh"
#include "mem/addr_map.hh"
#include "mem/boundary_port.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "prefetch/sms.hh"
#include "prefetch/stride.hh"
#include "sim/quantum_scheduler.hh"
#include "trace/synthetic_gen.hh"
#include "trace/trace_io.hh"

namespace pvsim {

/** A fully wired simulated machine. */
class System
{
  public:
    explicit System(const SystemConfig &cfg);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    const SystemConfig &config() const { return cfg_; }
    SimContext &ctx() { return ctx_; }
    const AddrMap &addrMap() const { return addrMap_; }

    int numCores() const { return cfg_.numCores; }
    TraceCore &core(int i) { return *cores_.at(i); }
    Cache &l1d(int i) { return *l1ds_.at(i); }
    Cache &l1i(int i) { return *l1is_.at(i); }
    Cache &l2() { return *l2_; }
    Dram &dram() { return *dram_; }

    /** SMS prefetcher of core i (nullptr when prefetch == None). */
    SmsPrefetcher *sms(int i) { return smses_.at(i).get(); }
    /** Stride prefetcher of core i (nullptr unless Stride mode). */
    StridePrefetcher *stride(int i) { return strides_.at(i).get(); }
    /** Trace source feeding core i. */
    TraceSource &traceSource(int i) { return *workloads_.at(i); }

    /** Shared PVProxy of core i (nullptr without virtualization). */
    PvProxy *pvProxy(int i) { return pvProxies_.at(i).get(); }
    /** All virtualized engines registered for core i. */
    const std::vector<std::unique_ptr<VirtEngine>> &
    engines(int i) const
    {
        return engines_.at(i);
    }
    /** Engine of core i by registry name, or nullptr. */
    VirtEngine *engine(int i, const std::string &name);
    /** Virtualized PHT of core i (nullptr unless SmsVirtualized). */
    VirtualizedPht *virtPht(int i)
    {
        return findEngine<VirtualizedPht>(i);
    }
    /** Virtualized BTB of core i (nullptr unless registered). */
    VirtualizedBtb *virtBtb(int i)
    {
        return findEngine<VirtualizedBtb>(i);
    }
    /** Dedicated-SRAM BTB of core i (nullptr unless configured). */
    DedicatedBtb *dedicatedBtb(int i)
    {
        return dedicatedBtbs_.at(i).get();
    }
    /** Virtualized stride table of core i (nullptr unless registered). */
    VirtualizedStride *virtStride(int i)
    {
        return findEngine<VirtualizedStride>(i);
    }
    /** Virtualized AGT of core i (nullptr unless registered). */
    VirtualizedAgt *virtAgt(int i)
    {
        return findEngine<VirtualizedAgt>(i);
    }
    /** The PHT (any kind) of core i, or nullptr. */
    PatternHistoryTable *pht(int i) { return phts_.at(i); }

    /**
     * Functional execution: steps the cores round-robin until each
     * consumed refs_per_core records (or its trace ended).
     */
    void runFunctional(uint64_t refs_per_core);

    /**
     * Timing execution: each core runs until it consumed
     * records_per_core records; returns the tick at which the last
     * core finished (remaining in-flight work is then drained).
     */
    Tick runTiming(uint64_t records_per_core);

    // ---- Sharded timing observability ------------------------------

    /** Timing shards actually used (1 on the serial path). */
    unsigned timingShardsEffective() const { return shardsEffective_; }

    /** Barrier quantum actually used (0 on the serial path). */
    Cycles syncQuantumEffective() const { return quantumEffective_; }

    /** True when runTiming uses the quantum (sharded) machinery. */
    bool shardedTiming() const { return shards_ != nullptr; }

    /** L2 bank domains actually scheduled (1 on the serial path). */
    unsigned l2BankDomainsEffective() const
    {
        return bankDomainsEffective_;
    }

    /** DRAM lanes actually used (1 = the monolithic serial DRAM
     *  tail; > 1 = per-bank stores with service inside the banked
     *  shared phase). */
    unsigned dramLanesEffective() const { return dramLanesEffective_; }

    /** True when the overlapped boundary drain is engaged (lane
     *  double-buffering + prologue-fanned drains). */
    bool drainOverlapEffective() const { return overlapEffective_; }

    /** Wall-clock seconds spent in the parallel cluster phase of
     *  runTiming (sharded path only; 0 otherwise). */
    double clusterPhaseSeconds() const { return clusterPhaseSeconds_; }

    /** Wall-clock seconds spent in the shared-domain phase — lane
     *  drains, the bank-domain window, egress flush, and the DRAM
     *  window on the main thread. The measured serial fraction is
     *  sharedPhaseSeconds / (cluster + shared). */
    double sharedPhaseSeconds() const { return sharedPhaseSeconds_; }

    /** Events executed across every queue of this system. */
    uint64_t
    eventsExecuted()
    {
        uint64_t n = ctx_.baseEvents().numExecuted();
        if (shards_)
            n += shards_->eventsExecuted();
        if (bankShards_)
            n += bankShards_->eventsExecuted();
        return n;
    }

    /** Cross-cluster responses delivered past their due tick —
     *  zero whenever the quantum respects the L2-latency bound
     *  (asserted in the parallel-timing tests). */
    uint64_t boundaryLateResponses() const;

    /** Invalidations/downgrades deferred to a quantum edge. */
    uint64_t boundaryDeferredCoherence() const;

    /** Reset all statistics (end of warmup), including the BTB
     *  predictors' lookup counters, which live outside the stats
     *  framework. */
    void resetStats();

    /** Sum of instructions retired across cores. */
    uint64_t totalInstructions() const;

    /** True when caches and proxies have nothing in flight. */
    bool quiesced() const;

  private:
    /** First engine of core i of concrete type T, or nullptr. */
    template <class T>
    T *
    findEngine(int i)
    {
        for (auto &e : engines_.at(i)) {
            if (auto *t = dynamic_cast<T *>(e.get()))
                return t;
        }
        return nullptr;
    }

    /** Quantum-path timing loop (see runTiming). */
    Tick runTimingSharded(uint64_t records_per_core);

    /** Bank-domain queue owning a block address. */
    EventQueue &
    bankQueueOf(Addr addr)
    {
        return bankShards_->clusterQueue(
            bankDomain_[l2_->bankOf(addr)]);
    }

    SystemConfig cfg_;
    SimContext ctx_;
    AddrMap addrMap_;

    std::unique_ptr<Dram> dram_;
    std::unique_ptr<Cache> l2_;
    std::vector<std::unique_ptr<Cache>> l1ds_;
    std::vector<std::unique_ptr<Cache>> l1is_;
    std::vector<std::unique_ptr<TraceSource>> workloads_;
    std::vector<std::unique_ptr<TraceCore>> cores_;
    /** One per core; null entries when btb.mode != Dedicated. */
    std::vector<std::unique_ptr<DedicatedBtb>> dedicatedBtbs_;
    std::vector<std::unique_ptr<NextLinePrefetcher>> nextLines_;
    std::vector<std::unique_ptr<SmsPrefetcher>> smses_;
    std::vector<std::unique_ptr<StridePrefetcher>> strides_;
    /** One multi-tenant proxy per core (null without virtualization). */
    std::vector<std::unique_ptr<PvProxy>> pvProxies_;
    /** Per-core engine registry instances, in registration order. */
    std::vector<std::vector<std::unique_ptr<VirtEngine>>> engines_;
    std::vector<std::unique_ptr<PatternHistoryTable>> ownedPhts_;
    std::vector<PatternHistoryTable *> phts_;

    // ---- Sharded timing (null/empty on the serial path) -------------
    /** Cluster queues + worker pool. */
    std::unique_ptr<QuantumScheduler> shards_;
    /** Boundary pairs in wiring order (core-major: l1d, l1i,
     *  proxy); drain order at the barrier is this order. */
    std::vector<std::unique_ptr<UpstreamBoundary>> upBoundaries_;
    std::vector<std::unique_ptr<DownstreamBoundary>> downBoundaries_;
    /** Cluster index of each core. */
    std::vector<unsigned> coreCluster_;
    unsigned shardsEffective_ = 1;
    Cycles quantumEffective_ = 0;

    // ---- Bank-domain shared phase (null/empty unless sharded) -------
    /** Bank-domain queues + worker pool for the shared L2. */
    std::unique_ptr<QuantumScheduler> bankShards_;
    /** Per-bank L2-to-cluster egress lanes (see BankEgress). */
    std::unique_ptr<BankEgress> bankEgress_;
    /** The L2's memory side: per-bank lanes into the DRAM queue. */
    std::unique_ptr<BankLaneRouter> dramRouter_;
    /** Domain index of each L2 bank (contiguous grouping). */
    std::vector<unsigned> bankDomain_;
    /** One stat deferral per bank-domain worker thread. */
    std::vector<stats::Deferral> bankDeferrals_;
    unsigned bankDomainsEffective_ = 1;
    /** DRAM lanes (in-phase DRAM service when > 1). */
    unsigned dramLanesEffective_ = 1;
    /** Overlapped drain pipeline engaged. */
    bool overlapEffective_ = false;
    double clusterPhaseSeconds_ = 0.0;
    double sharedPhaseSeconds_ = 0.0;
};

} // namespace pvsim

#endif // PVSIM_HARNESS_SYSTEM_HH
