/**
 * @file
 * Aggregated experiment metrics: coverage triples (Figures 4/5),
 * traffic summaries (Figures 6-8, 10), aggregate IPC and matched-pair
 * speedups with confidence intervals (Figures 9/11, using the
 * batch-means analogue of the paper's matched-pair sampling).
 */

#ifndef PVSIM_HARNESS_METRICS_HH
#define PVSIM_HARNESS_METRICS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "harness/system.hh"
#include "trace/workload.hh"

namespace pvsim {

/**
 * Prefetcher effectiveness, normalized the way the paper plots
 * Figure 4: covered + uncovered = 100% of the L1 read misses the
 * application would take without prefetching; overpredictions can
 * push the bar above 100%.
 */
struct CoverageMetrics {
    uint64_t covered = 0;   ///< read misses eliminated by prefetch
    uint64_t uncovered = 0; ///< read misses remaining
    uint64_t overpredictions = 0;

    uint64_t denominator() const { return covered + uncovered; }

    double
    coveredPct() const
    {
        return denominator() ? 100.0 * double(covered) /
                                   double(denominator())
                             : 0.0;
    }

    double uncoveredPct() const
    {
        return denominator() ? 100.0 - coveredPct() : 0.0;
    }

    double
    overpredictionPct() const
    {
        return denominator() ? 100.0 * double(overpredictions) /
                                   double(denominator())
                             : 0.0;
    }
};

/** Sum L1D coverage counters across cores. */
CoverageMetrics coverageOf(System &sys);

/** Memory-system traffic counters for one run. */
struct TrafficMetrics {
    uint64_t l2Requests = 0;     ///< all requests arriving at L2
    uint64_t l2RequestsPv = 0;   ///< ... of which PVProxy traffic
    uint64_t l2MissesApp = 0;
    uint64_t l2MissesPv = 0;
    uint64_t l2WritebacksApp = 0; ///< L2 -> DRAM, application blocks
    uint64_t l2WritebacksPv = 0;
    uint64_t offChipReadBytes = 0;
    uint64_t offChipWriteBytes = 0;

    uint64_t l2Misses() const { return l2MissesApp + l2MissesPv; }
    uint64_t
    l2Writebacks() const
    {
        return l2WritebacksApp + l2WritebacksPv;
    }
    uint64_t
    offChipBytes() const
    {
        return offChipReadBytes + offChipWriteBytes;
    }
};

TrafficMetrics trafficOf(System &sys);

/** Percentage increase of `now` over `base` (0 when base is 0). */
double pctIncrease(uint64_t base, uint64_t now);

/** Aggregate user IPC (paper Section 4.1's throughput metric). */
double aggregateIpc(uint64_t total_insts, Tick elapsed);

/** Mean and 95% confidence half-width over a sample. */
struct MeanCi {
    double mean = 0.0;
    double halfWidth = 0.0;
    size_t n = 0;
};

MeanCi meanCi(const std::vector<double> &samples);

/**
 * Matched-pair speedup of a config against a baseline, batch-means
 * style: each batch b runs both configs with identical seeds
 * (seedOffset = b) and compares their measured IPC.
 */
struct SpeedupResult {
    double meanPct = 0.0;
    double ciPct = 0.0; ///< 95% half-width
    std::vector<double> batchPct;
};

/** Everything one timing run reports (fig9-style sweeps want the
 *  BTB scoring alongside the IPC). */
struct TimedRun {
    double ipc = 0.0;
    uint64_t btbHits = 0;        ///< summed over cores, measure phase
    uint64_t btbMispredicts = 0;
    /** Lookups unanswered at fetch (virtualized BTB waiting on its
     *  PV fill) — the availability redirects QoS protects. */
    uint64_t btbUnavailable = 0;
    /** Wall-clock seconds of the measure phase (host time). */
    double wallSeconds = 0.0;
    /** Events executed during the measure phase, across all queues. */
    uint64_t eventsExecuted = 0;
    /** Timing shards the run actually used (1 = serial path). */
    unsigned timingShards = 1;
    /** L2 bank domains the run actually scheduled (1 = serial). */
    unsigned l2BankDomains = 1;
    /** DRAM lanes the run actually used (1 = monolithic tail). */
    unsigned dramLanes = 1;
    /** Whether the overlapped boundary drain was engaged. */
    bool drainOverlap = false;
    /** Wall seconds of the parallel cluster phase (sharded path). */
    double clusterPhaseSeconds = 0.0;
    /** Wall seconds of the shared-domain phase: lane drains, bank
     *  windows, egress flush and the DRAM window — the measured
     *  serial fraction's numerator. */
    double sharedPhaseSeconds = 0.0;

    /** Simulator throughput of the measure phase. */
    double
    eventsPerSec() const
    {
        return wallSeconds > 0.0 ? double(eventsExecuted) / wallSeconds
                                 : 0.0;
    }

    /** Fraction of the phase-accounted wall clock spent in the
     *  shared-domain phase (0 when nothing was accounted). */
    double
    serialFraction() const
    {
        double total = clusterPhaseSeconds + sharedPhaseSeconds;
        return total > 0.0 ? sharedPhaseSeconds / total : 0.0;
    }

    /** Taken-branch target hit rate of the attached BTBs. */
    double
    btbHitRate() const
    {
        uint64_t scored = btbHits + btbMispredicts;
        return scored ? double(btbHits) / double(scored) : 0.0;
    }

    /** Fraction of scored taken branches whose prediction was not
     *  available at fetch time. */
    double
    btbAvailabilityRedirectRate() const
    {
        uint64_t scored = btbHits + btbMispredicts;
        return scored ? double(btbUnavailable) / double(scored)
                      : 0.0;
    }
};

/** One timing run: warmup, reset stats, measure.
 *  Takes cfg by value: this IS the per-run copy that the batch
 *  drivers mutate (mode, seedOffset) for one run. */
TimedRun timedRun(SystemConfig cfg, uint64_t warmup_records,
                  uint64_t measure_records);

/** timedRun(), keeping only the IPC (the batch drivers' unit). */
double timedIpc(SystemConfig cfg, uint64_t warmup_records,
                uint64_t measure_records);

/**
 * Requested worker threads for the batch drivers below: the
 * PVSIM_JOBS environment variable when set (>= 1), else the
 * hardware thread count. Each batch runs a fully self-contained
 * System (its own SimContext, event queue and RNGs) and derives its
 * seeds from the batch index alone, so the sharded results are
 * bit-identical to a serial run regardless of the worker count.
 */
unsigned harnessJobs();

/**
 * Worker threads the drivers actually spawn for `batches` batches:
 * harnessJobs() clamped to the hardware thread count (threads
 * beyond physical cores only add contention — an oversubscribed
 * pool measured 0.77x of serial) and to the batch count (idle
 * workers are pure overhead). When this is 1, the drivers take the
 * serial path outright — no pool, no atomics.
 */
unsigned effectiveHarnessJobs(unsigned batches);

/** Matched-pair speedup of cfg vs base over `batches` seed pairs.
 *  Batches are sharded across effectiveHarnessJobs(batches)
 *  worker threads. */
SpeedupResult matchedPairSpeedup(const SystemConfig &base,
                                 const SystemConfig &cfg,
                                 uint64_t warmup_records,
                                 uint64_t measure_records,
                                 unsigned batches);

/**
 * Baseline IPCs for batches 0..n-1 (seedOffset = batch index),
 * reusable across several matched configurations. Sharded across
 * effectiveHarnessJobs(batches) worker threads.
 */
std::vector<double> baselineIpcs(const SystemConfig &base,
                                 uint64_t warmup_records,
                                 uint64_t measure_records,
                                 unsigned batches);

/** Matched-pair speedup against precomputed baseline IPCs.
 *  Sharded across effectiveHarnessJobs() worker threads. */
SpeedupResult speedupOverBaseline(const std::vector<double> &base_ipcs,
                                  const SystemConfig &cfg,
                                  uint64_t warmup_records,
                                  uint64_t measure_records);

// ---- Figure 9-style BTB virtualization sweep --------------------------

/**
 * Sentinel for Fig9Options::edgeStabilities: run the mix's own
 * branch-profile stability (the recorded default).
 */
constexpr double kFig9MixStability = -1.0;

/** Knobs of the dedicated-vs-virtualized BTB IPC experiment. */
struct Fig9Options {
    int numCores = 4;
    /** Capacity-matched BTB geometry for both sides of each pair. */
    unsigned btbSets = 512;
    unsigned btbAssoc = 8;
    /** Front-end redirect cost per mispredict (cycles). */
    Cycles penalty = 8;
    uint64_t warmupRecords = 20'000;  ///< per core
    uint64_t measureRecords = 60'000; ///< per core
    unsigned batches = 2; ///< matched-pair batches per mix
    /** Mixes to run; empty means presetMixes(). */
    std::vector<WorkloadMix> mixes;
    /**
     * Successor-edge stabilities to sweep: each value overrides the
     * mixes' branch-profile stability for one pass over all mixes
     * (kFig9MixStability keeps the mix's own value). Empty means
     * {kFig9MixStability} — one pass at the recorded defaults.
     */
    std::vector<double> edgeStabilities;
    /** PVCache locality prefetch depth on the virtualized side
     *  (paper Section 4.3); 0 keeps the detector off. */
    unsigned pvPrefetch = 0;
    /** Victim-buffer entries per proxy (0 = none). */
    unsigned victimEntries = 0;
    /** Timing shards per System (0 = auto, 1 = serial default). */
    unsigned timingShards = 1;
    /** Barrier quantum (0 = auto = L2 data latency when sharded). */
    Cycles syncQuantum = 0;
    /** L2 bank domains when sharded (0 = auto, clamped to banks). */
    unsigned l2BankDomains = 0;
    /** DRAM lanes when sharded (0 = auto, 1 = monolithic tail). */
    unsigned dramLanes = 0;
    /** Overlapped drains (0 = auto, 1 = off, 2 = on). */
    unsigned drainOverlap = 0;
};

/** One (mix, stability) matched-pair outcome. */
struct Fig9Row {
    std::string mix;
    /** Effective successor-edge stability of this pass; 0 when the
     *  mix carries no branch profile (flat streams — any requested
     *  override is meaningless and was not applied). */
    double edgeStability = 0.0;
    double dedicatedIpc = 0.0;   ///< mean aggregate IPC, SRAM BTB
    double virtualizedIpc = 0.0; ///< mean aggregate IPC, PV BTB
    double speedupPct = 0.0; ///< virtualized over dedicated (mean)
    double ciPct = 0.0;      ///< 95% half-width of speedupPct
    /** Taken-branch target hit rates (batch-aggregated). */
    double dedicatedHitPct = 0.0;
    double virtualizedHitPct = 0.0;
    std::vector<double> batchPct;
    /** Host-side cost of the row (both sides, all batches). */
    double wallSeconds = 0.0;
    uint64_t eventsExecuted = 0;
    /** Timing shards the row's Systems used (1 = serial). */
    unsigned timingShards = 1;
    /** L2 bank domains the row's Systems scheduled (1 = serial). */
    unsigned l2BankDomains = 1;
    /** DRAM lanes the row's Systems used (1 = monolithic tail). */
    unsigned dramLanes = 1;
    /** Whether the overlapped boundary drain was engaged. */
    bool drainOverlap = false;
    /** Per-phase wall clock summed over the row's measure phases
     *  (sharded path only; both stay 0 on the serial loop). */
    double clusterPhaseSeconds = 0.0;
    double sharedPhaseSeconds = 0.0;

    /** Simulator throughput over the row's measure phases. */
    double
    eventsPerSec() const
    {
        return wallSeconds > 0.0 ? double(eventsExecuted) / wallSeconds
                                 : 0.0;
    }

    /** Measured serial fraction: shared-domain share of the
     *  phase-accounted wall clock. */
    double
    serialFraction() const
    {
        double total = clusterPhaseSeconds + sharedPhaseSeconds;
        return total > 0.0 ? sharedPhaseSeconds / total : 0.0;
    }
};

/**
 * Config builder for either side of one mix's matched pair: pass
 * BtbMode::Dedicated or BtbMode::Virtualized. Both sides get the
 * same (inflated-if-needed) pvBytesPerCore so their address maps —
 * and with them the timing — are identical. The mix's branch
 * profile is installed (learnable streams); edge_stability
 * overrides its stability unless it is kFig9MixStability.
 */
SystemConfig fig9Config(const WorkloadMix &mix,
                        const Fig9Options &opt, BtbMode mode,
                        double edge_stability = kFig9MixStability);

/**
 * Run the dedicated-vs-virtualized BTB matched pairs over the given
 * mixes (timing mode, identical seeds per batch, batches sharded
 * over effectiveHarnessJobs() workers). The result is deterministic
 * and independent of the worker count.
 */
std::vector<Fig9Row> fig9Sweep(const Fig9Options &opt);

/** One side (prefetch off / on) of the PVCache locality-prefetch
 *  comparison: virtualized-BTB runs, batch-aggregated. */
struct Fig9PrefetchSide {
    double ipc = 0.0; ///< mean aggregate IPC across batches
    /** BTB availability-redirect rate (percent): lookups unanswered
     *  at fetch because the PV line was still in flight. */
    double availRedirectPct = 0.0;
    /** Proxy prefetch/victim counters summed over cores+batches. */
    uint64_t prefetchFills = 0;
    uint64_t prefetchUseful = 0;
    uint64_t prefetchDrops = 0;
    uint64_t victimHits = 0;
    double wallSeconds = 0.0;
};

/** Outcome of fig9PrefetchCompare: the off/on matched pair. */
struct Fig9PrefetchResult {
    std::string mix;            ///< preset the comparison ran
    unsigned depth = 0;         ///< prefetch depth of the on side
    unsigned victimEntries = 0; ///< victim entries of the on side
    Fig9PrefetchSide off, on;
    /** Relative reduction of the availability-redirect rate,
     *  off -> on (positive = the prefetcher hides fill latency). */
    double availImprovementPct = 0.0;
    /** Mean matched-seed IPC delta of on over off (percent). */
    double ipcDeltaPct = 0.0;
};

/**
 * PVCache locality prefetch (paper Section 4.3) off-vs-on matched
 * pair: the virtualized side of the "mixed" preset, identical seeds
 * per batch, prefetch disabled vs opt.pvPrefetch/opt.victimEntries
 * (0 falls back to depth 2 / 8 victim entries so the default sweep
 * still exercises the detector). The off side is bit-identical to
 * the pre-prefetch proxy, so the delta is the prefetcher's doing.
 */
Fig9PrefetchResult fig9PrefetchCompare(const Fig9Options &opt);

// ---- Per-tenant QoS contention sweep ----------------------------------

/**
 * One weight setting of the QoS contention experiment: the
 * contracts of the latency-critical virtualized BTB and of the
 * bandwidth-hungry AGT aggressor sharing its per-core proxy.
 */
struct QosSetting {
    std::string label;      ///< e.g. "4:1" or "equal+floor"
    PvTenantQos btb;        ///< latency-critical tenant
    PvTenantQos aggressor;  ///< bandwidth-hungry tenant
};

/**
 * The standard sweep: equal weights (the baseline the others are
 * compared against), 2:1 / 4:1 / 8:1 in the BTB's favor, and an
 * equal-weight setting that protects the BTB through hard floors
 * instead.
 */
std::vector<QosSetting> presetQosSettings();

/** Knobs of the BTB-vs-aggressor QoS protection experiment. */
struct QosOptions {
    int numCores = 2;
    /** Virtualized BTB geometry (the protected tenant). Small
     *  enough that a protected PVCache share actually covers a
     *  useful fraction of the hot sets — with a 512-set BTB the
     *  tenant thrashes itself and the aggressor's marginal damage
     *  (the thing QoS can remove) shrinks below 10%. */
    unsigned btbSets = 128;
    unsigned btbAssoc = 8;
    /** AGT aggressor geometry: every data reference is one RMW
     *  proxy operation, so this tenant is bandwidth-hungry by
     *  construction. */
    unsigned agtSets = 512;
    /** Front-end redirect cost per mispredict (cycles). */
    Cycles penalty = 8;
    /** Shared PVCache entries per proxy (2x the paper's 8: the
     *  partitioning experiment needs enough ways to split). */
    unsigned pvCacheEntries = 16;
    uint64_t warmupRecords = 20'000;  ///< per core
    uint64_t measureRecords = 60'000; ///< per core
    unsigned batches = 2;             ///< matched batches per setting
    /** PVCache locality prefetch depth on every proxy (paper
     *  Section 4.3); 0 keeps the detector off. */
    unsigned pvPrefetch = 0;
    /** Victim-buffer entries per proxy (0 = none). */
    unsigned victimEntries = 0;
    /** Settings to run; empty means presetQosSettings(). The first
     *  is the baseline the deltas are computed against. */
    std::vector<QosSetting> settings;
    /** Timing shards per System (0 = auto, 1 = serial default). */
    unsigned timingShards = 1;
    /** Barrier quantum (0 = auto = L2 data latency when sharded). */
    Cycles syncQuantum = 0;
    /** L2 bank domains when sharded (0 = auto, clamped to banks). */
    unsigned l2BankDomains = 0;
    /** DRAM lanes when sharded (0 = auto, 1 = monolithic tail). */
    unsigned dramLanes = 0;
    /** Overlapped drains (0 = auto, 1 = off, 2 = on). */
    unsigned drainOverlap = 0;
};

/** One setting's outcome (batch-aggregated; deltas are matched-seed
 *  against the first setting). */
struct QosRow {
    std::string label;
    unsigned btbWeight = 0;
    unsigned aggressorWeight = 0;
    double ipc = 0.0; ///< mean aggregate IPC across batches
    /** BTB availability-redirect rate: lookups unanswered at fetch
     *  per scored taken branch (percent). */
    double availRedirectPct = 0.0;
    double btbHitPct = 0.0;
    /** Proxy-level per-tenant pressure. */
    double btbDropPct = 0.0;       ///< BTB ops dropped (percent)
    double aggressorDropPct = 0.0; ///< aggressor ops dropped
    double btbFillLatency = 0.0;   ///< mean ticks per BTB fill
    /** Matched-seed IPC delta vs the first (baseline) setting. */
    double ipcDeltaPct = 0.0;
    /** Relative reduction of availRedirectPct vs the baseline
     *  setting (positive = the BTB is better protected). */
    double availImprovementPct = 0.0;
    /** Host-side cost of the setting (all batches). */
    double wallSeconds = 0.0;
    uint64_t eventsExecuted = 0;
    /** Timing shards the setting's Systems used (1 = serial). */
    unsigned timingShards = 1;
    /** L2 bank domains the setting's Systems scheduled. */
    unsigned l2BankDomains = 1;
    /** DRAM lanes the setting's Systems used (1 = monolithic). */
    unsigned dramLanes = 1;
    /** Whether the overlapped boundary drain was engaged. */
    bool drainOverlap = false;
    /** Per-phase wall clock summed over the setting's measure
     *  phases (sharded path only). */
    double clusterPhaseSeconds = 0.0;
    double sharedPhaseSeconds = 0.0;

    /** Simulator throughput over the setting's measure phases. */
    double
    eventsPerSec() const
    {
        return wallSeconds > 0.0 ? double(eventsExecuted) / wallSeconds
                                 : 0.0;
    }

    /** Measured serial fraction: shared-domain share of the
     *  phase-accounted wall clock. */
    double
    serialFraction() const
    {
        double total = clusterPhaseSeconds + sharedPhaseSeconds;
        return total > 0.0 ? sharedPhaseSeconds / total : 0.0;
    }
};

/** Config of one QoS run (exposed so tests can pin it down). */
SystemConfig qosConfig(const QosOptions &opt, const QosSetting &s);

/**
 * Run the QoS contention sweep: a virtualized BTB vs an AGT
 * aggressor on every core's shared proxy, across the weight
 * settings, matched seeds per batch, (setting, batch) jobs sharded
 * over effectiveHarnessJobs() workers. Deterministic and
 * independent of the worker count.
 */
std::vector<QosRow> qosSweep(const QosOptions &opt);

// ---- Heterogeneous per-cluster tenant matrix --------------------------

/**
 * One cluster group's outcome in the heterogeneous tenant matrix:
 * availability/drop pressure of its tenants under the group's own
 * QoS contract, against the matched-seed all-equal reference run.
 */
struct QosClusterRow {
    std::string cluster;  ///< group label, e.g. "web/4:1"
    std::string mix;      ///< workload mix of the group's cores
    std::string contract; ///< QoS contract label of the group
    unsigned btbWeight = 1;
    unsigned aggressorWeight = 1;
    int cores = 0;       ///< cores in the group
    /** Protected (per-cluster contracts) run, group-aggregated. */
    double availRedirectPct = 0.0;
    double btbHitPct = 0.0;
    double btbDropPct = 0.0;
    double aggressorDropPct = 0.0;
    /** Matched-seed all-equal reference, same group of cores. */
    double refAvailRedirectPct = 0.0;
    double refBtbDropPct = 0.0;
    /** Relative reduction of availRedirectPct vs the reference
     *  (positive = this group's BTB is better protected). */
    double availImprovementPct = 0.0;
};

/** The heterogeneous matrix outcome: per-cluster protection rows
 *  plus the aggregate scoreboards of both runs. */
struct QosHeterogeneousResult {
    std::vector<QosClusterRow> clusters;
    TimedRun protectedRun; ///< per-cluster contracts, all batches
    TimedRun referenceRun; ///< all-equal contracts, same seeds
};

/**
 * Heterogeneous per-cluster tenant matrix: the cores are split into
 * four equal cluster groups, each running a different preset
 * workload mix (web / oltp / dss / mixed) and a different QoS
 * contract on its cores' proxies (equal, 4:1, equal+floor, 8:1 —
 * installed via PvProxy::setTenantQos after construction), modelling
 * unrelated tenants sharing one many-core machine. A matched-seed
 * reference run keeps every group on the equal contract; the rows
 * report per-group protection deltas. Needs numCores % 4 == 0;
 * opt.settings is ignored. Deterministic for any worker count.
 */
QosHeterogeneousResult qosHeterogeneous(const QosOptions &opt);

} // namespace pvsim

#endif // PVSIM_HARNESS_METRICS_HH
