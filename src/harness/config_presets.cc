#include "harness/config_presets.hh"

#include "harness/system.hh"

namespace pvsim {

SystemConfig
baselineConfig(const std::string &workload)
{
    SystemConfig cfg;
    cfg.workload = workload;
    cfg.prefetch = PrefetchMode::None;
    return cfg;
}

SystemConfig
smsConfig(const std::string &workload, PhtGeometry geom)
{
    SystemConfig cfg = baselineConfig(workload);
    cfg.prefetch = PrefetchMode::SmsDedicated;
    cfg.phtGeometry = geom;
    return cfg;
}

SystemConfig
smsInfiniteConfig(const std::string &workload)
{
    SystemConfig cfg = baselineConfig(workload);
    cfg.prefetch = PrefetchMode::SmsInfinite;
    return cfg;
}

SystemConfig
pvConfig(const std::string &workload, unsigned pvcache_entries)
{
    SystemConfig cfg = baselineConfig(workload);
    cfg.prefetch = PrefetchMode::SmsVirtualized;
    cfg.phtGeometry = {1024, 11}; // the paper virtualizes 1K-11a
    cfg.pvCacheEntries = pvcache_entries;
    return cfg;
}

FunctionalResult
runFunctionalMeasured(SystemConfig cfg, uint64_t warmup_refs,
                      uint64_t measure_refs)
{
    cfg.mode = SimMode::Functional;
    System sys(cfg);
    sys.runFunctional(warmup_refs);
    sys.resetStats();
    sys.runFunctional(measure_refs);

    FunctionalResult r;
    r.coverage = coverageOf(sys);
    r.traffic = trafficOf(sys);
    uint64_t pv_req = sys.l2().requestsPv.value();
    uint64_t pv_miss = sys.l2().missesPv.value();
    r.pvL2FillRate =
        pv_req ? 1.0 - double(pv_miss) / double(pv_req) : 0.0;
    return r;
}

} // namespace pvsim
