/**
 * @file
 * The bench-artifact row schema, in one place. fig9_sweep,
 * qos_contention and the pvsim scenario runner all emit rows
 * through these helpers, so a scenario run of an experiment is
 * byte-identical to the compiled driver's row for the same config —
 * and the check_bench.py gate consumes one schema, not three
 * hand-rolled copies.
 */

#ifndef PVSIM_HARNESS_ROW_JSON_HH
#define PVSIM_HARNESS_ROW_JSON_HH

#include <string>

#include "harness/metrics.hh"

namespace pvsim {

/** Host-cost + phase-split body of one TimedRun (no braces): the
 *  "reference"/"protected" objects of BENCH_qos.json. */
std::string timedRunJson(const TimedRun &r);

/** One BENCH_fig9.json "rows" element (with braces). */
std::string fig9RowJson(const Fig9Row &r, unsigned jobs_effective);

/** One BENCH_qos.json "rows" element (with braces). */
std::string qosRowJson(const QosRow &r, unsigned jobs_effective);

/** One BENCH_qos.json heterogeneous "clusters" element. */
std::string qosClusterRowJson(const QosClusterRow &c);

} // namespace pvsim

#endif // PVSIM_HARNESS_ROW_JSON_HH
