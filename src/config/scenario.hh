/**
 * @file
 * Declarative scenarios: a JSON file under scenarios/ is one
 * experiment
 * — a plain timed or functional run of a SystemConfig, or a whole
 * fig9/qos/qos_hetero sweep — expressed as data and executed
 * through the exact same harness entry points (timedRun, fig9Sweep,
 * qosSweep, qosHeterogeneous) the compiled bench drivers use. The
 * runner emits the same JSON row schema as the drivers
 * (harness/row_json.hh), so a scenario's rows are byte-identical
 * to the corresponding BENCH_*.json rows for the same options.
 *
 * Every field of every nested config is reflected
 * (config/fields.hh): absent keys default, unknown keys are
 * rejected with a full path, and the canonical serialization yields
 * a stable fingerprint() recorded in scenarios/MANIFEST.json — a
 * scenario edit without a manifest refresh fails the bench gate.
 */

#ifndef PVSIM_CONFIG_SCENARIO_HH
#define PVSIM_CONFIG_SCENARIO_HH

#include <string>
#include <vector>

#include "config/fields.hh"

namespace pvsim {

/** One scenario file's contents. Only the section named by `kind`
 *  is consulted at run time; the others stay at their defaults and
 *  cost nothing. */
struct Scenario {
    std::string name;
    /** "timed" | "functional" | "fig9" | "qos" | "qos_hetero". */
    std::string kind = "timed";
    /** Free-form description, carried into the result artifact. */
    std::string notes;

    // ---- timed / functional runs of `system` ----------------------
    uint64_t warmupRecords = 20'000;   ///< per core, timed kind
    uint64_t measureRecords = 60'000;  ///< per core, timed kind
    uint64_t warmupRefs = 300'000;     ///< per core, functional kind
    uint64_t measureRefs = 600'000;    ///< per core, functional kind
    SystemConfig system;

    // ---- sweep kinds ----------------------------------------------
    Fig9Options fig9;
    QosOptions qos; ///< qos and qos_hetero kinds

    /** Valid scenario kinds, in documentation order. */
    static const std::vector<std::string> &kinds();
};

template <class V>
void
reflectFields(Scenario &s, V &v)
{
    v.field("name", s.name);
    v.field("kind", s.kind);
    v.field("notes", s.notes);
    v.field("warmup_records", s.warmupRecords);
    v.field("measure_records", s.measureRecords);
    v.field("warmup_refs", s.warmupRefs);
    v.field("measure_refs", s.measureRefs);
    v.field("system", s.system);
    v.field("fig9", s.fig9);
    v.field("qos", s.qos);
}

/** Strict parse (throws json::ConfigError; `label` prefixes error
 *  paths — pass the file name). */
Scenario parseScenario(const std::string &text,
                       const std::string &label = "$");

/** Read + parse + validate one scenario file. */
Scenario loadScenarioFile(const std::string &path);

/** Canonical byte-stable serialization. */
std::string dumpScenario(const Scenario &s);

/** Stable fingerprint of the canonical form. */
uint64_t scenarioFingerprint(const Scenario &s);

/**
 * Structural validation beyond field types: known kind, nonempty
 * name, nonzero budgets for the kind that runs, the qos_hetero
 * cores%4 precondition. Throws json::ConfigError.
 */
void validateScenario(const Scenario &s);

/**
 * The largest simulated-core count the scenario instantiates — the
 * knob CI smoke subsets filter on (`pvsim run --max-cores`).
 */
int scenarioCores(const Scenario &s);

/**
 * Expand a path into scenario files: a .json file yields itself; a
 * directory yields its *.json entries sorted by name, minus
 * MANIFEST.json. Throws json::ConfigError when nothing matches.
 */
std::vector<std::string> listScenarioFiles(const std::string &path);

/**
 * The sweep drivers' jobs_effective bookkeeping (one System per
 * (mix, stability, side, batch) resp. (setting, batch) job),
 * honoring the empty-means-presets convention — shared so a
 * scenario row is byte-identical to the compiled driver's.
 */
unsigned fig9JobsEffective(const Fig9Options &opt);
unsigned qosJobsEffective(const QosOptions &opt);

/**
 * Execute one scenario and return its complete result object
 * (pretty JSON, no trailing newline): name, kind, fingerprint and
 * a "rows" array in the matching BENCH_*.json row schema
 * (qos_hetero additionally carries reference/protected summaries).
 */
std::string runScenarioJson(const Scenario &s,
                            const std::string &file_label);

} // namespace pvsim

#endif // PVSIM_CONFIG_SCENARIO_HH
