/**
 * @file
 * Minimal self-contained JSON document model for the declarative
 * scenario layer: a Value variant, a strict parser with
 * line/column-anchored errors, and a deterministic writer whose
 * output is byte-stable (fixed key order = insertion order, fixed
 * indentation, shortest-round-trip float formatting). The bench
 * artifacts (BENCH_*.json) already speak JSON; this gives the
 * config tree the same vocabulary without an external dependency.
 *
 * Numbers keep their lexical class: unsigned and signed integers
 * round-trip exactly (pvBytesPerCore-sized values never pass
 * through a double), and reals re-serialize to the shortest string
 * that parses back to the identical IEEE value — the property the
 * scenario fingerprints rely on.
 */

#ifndef PVSIM_CONFIG_JSON_HH
#define PVSIM_CONFIG_JSON_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace pvsim {
namespace json {

/** Any structural/type/parse error of the config layer. The what()
 *  string always names the offending path or input position. */
class ConfigError : public std::runtime_error
{
  public:
    explicit ConfigError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** One JSON value; objects preserve insertion order. */
class Value
{
  public:
    enum class Type {
        Null,
        Bool,
        Int,    ///< negative integer literal
        Uint,   ///< non-negative integer literal
        Real,   ///< literal with '.', 'e' or 'E'
        String,
        Array,
        Object,
    };

    Value() = default;

    static Value boolean(bool b);
    static Value integer(int64_t i);
    static Value uinteger(uint64_t u);
    static Value real(double d);
    static Value string(std::string s);
    static Value array();
    static Value object();

    Type type() const { return type_; }
    const char *typeName() const;

    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool
    isNumber() const
    {
        return type_ == Type::Int || type_ == Type::Uint ||
               type_ == Type::Real;
    }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    // ---- Typed accessors; throw ConfigError naming `path` on a
    // ---- mismatch, so loader errors read "fig9.cores: ...".
    bool asBool(const std::string &path) const;
    uint64_t asUint(const std::string &path) const;
    int64_t asInt(const std::string &path) const;
    double asDouble(const std::string &path) const;
    const std::string &asString(const std::string &path) const;

    // ---- Array -------------------------------------------------------
    void push(Value v);
    const std::vector<Value> &items() const;

    // ---- Object (insertion-ordered) ----------------------------------
    /** Append or overwrite key (overwrite keeps its position). */
    void set(const std::string &key, Value v);
    /** Member value, or nullptr when absent. */
    const Value *find(const std::string &key) const;
    const std::vector<std::pair<std::string, Value>> &members() const;

    bool operator==(const Value &o) const;
    bool operator!=(const Value &o) const { return !(*this == o); }

    /** Strict parse of a complete document (throws ConfigError with
     *  line:column on any syntax error or trailing garbage). */
    static Value parse(const std::string &text);

    /** Deterministic pretty-print; terminated by a newline. */
    std::string dump(unsigned indent = 2) const;

  private:
    void dumpTo(std::string &out, unsigned indent,
                unsigned depth) const;
    bool inlineable() const;

    Type type_ = Type::Null;
    bool bool_ = false;
    int64_t int_ = 0;
    uint64_t uint_ = 0;
    double real_ = 0.0;
    std::string string_;
    std::vector<Value> items_;
    std::vector<std::pair<std::string, Value>> members_;
};

/**
 * Shortest decimal string that strtod()s back to exactly d, always
 * containing '.' or an exponent so it re-parses as Real. The writer
 * and the fingerprints share this, so a real-valued field has
 * exactly one canonical spelling.
 */
std::string formatReal(double d);

/** JSON string literal with the standard escapes. */
std::string quote(const std::string &s);

} // namespace json
} // namespace pvsim

#endif // PVSIM_CONFIG_JSON_HH
