/**
 * @file
 * The one declaration site of every config struct's serialized
 * fields. Each reflectFields() below is consumed simultaneously by
 * the JSON writer, the strict JSON reader, and the fingerprint
 * hash (config/reflect.hh), so adding a field to a config struct
 * means adding exactly one line here — write, read, defaulting,
 * unknown-key rejection and fingerprinting all follow.
 *
 * Key spelling is snake_case, matching the BENCH_*.json artifacts
 * the bench gate already consumes.
 */

#ifndef PVSIM_CONFIG_FIELDS_HH
#define PVSIM_CONFIG_FIELDS_HH

#include "config/reflect.hh"
#include "harness/metrics.hh"
#include "harness/system_config.hh"

namespace pvsim {

// ---- Enum name registrations ------------------------------------------

inline const std::vector<std::pair<SimMode, const char *>> &
enumNames(SimMode *)
{
    static const std::vector<std::pair<SimMode, const char *>> e = {
        {SimMode::Functional, "functional"},
        {SimMode::Timing, "timing"},
    };
    return e;
}

inline const std::vector<std::pair<PrefetchMode, const char *>> &
enumNames(PrefetchMode *)
{
    static const std::vector<std::pair<PrefetchMode, const char *>>
        e = {
            {PrefetchMode::None, "none"},
            {PrefetchMode::SmsInfinite, "sms_infinite"},
            {PrefetchMode::SmsDedicated, "sms_dedicated"},
            {PrefetchMode::SmsVirtualized, "sms_virtualized"},
            {PrefetchMode::Stride, "stride"},
        };
    return e;
}

inline const std::vector<std::pair<BtbMode, const char *>> &
enumNames(BtbMode *)
{
    static const std::vector<std::pair<BtbMode, const char *>> e = {
        {BtbMode::None, "none"},
        {BtbMode::Dedicated, "dedicated"},
        {BtbMode::Virtualized, "virtualized"},
    };
    return e;
}

inline const std::vector<std::pair<VirtEngineKind, const char *>> &
enumNames(VirtEngineKind *)
{
    static const std::vector<std::pair<VirtEngineKind, const char *>>
        e = {
            {VirtEngineKind::Pht, "pht"},
            {VirtEngineKind::Btb, "btb"},
            {VirtEngineKind::Stride, "stride"},
            {VirtEngineKind::Agt, "agt"},
        };
    return e;
}

// ---- Core / engine configs --------------------------------------------

template <class V>
void
reflectFields(PvTenantQos &c, V &v)
{
    v.field("weight", c.weight);
    v.field("pvcache_floor", c.pvCacheFloor);
    v.field("mshr_floor", c.mshrFloor);
    v.field("pattern_buffer_floor", c.patternBufferFloor);
}

template <class V>
void
reflectFields(PhtGeometry &c, V &v)
{
    v.field("num_sets", c.numSets);
    v.field("assoc", c.assoc);
}

template <class V>
void
reflectFields(BtbConfig &c, V &v)
{
    v.field("mode", c.mode);
    v.field("num_sets", c.numSets);
    v.field("assoc", c.assoc);
    v.field("tag_bits", c.tagBits);
    v.field("qos", c.qos);
}

template <class V>
void
reflectFields(VirtEngineConfig &c, V &v)
{
    v.field("kind", c.kind);
    v.field("name", c.name);
    v.field("num_sets", c.numSets);
    v.field("assoc", c.assoc);
    v.field("tag_bits", c.tagBits);
    v.field("qos", c.qos);
}

// ---- Workload layer ---------------------------------------------------

template <class V>
void
reflectFields(BranchKnobs &c, V &v)
{
    v.field("bb_mean_records", c.bbMeanRecords);
    v.field("routine_blocks", c.routineBlocks);
    v.field("num_routines", c.numRoutines);
    v.field("call_depth", c.callDepth);
    v.field("call_fraction", c.callFraction);
    v.field("loop_fraction", c.loopFraction);
    v.field("loop_trip_mean", c.loopTripMean);
    v.field("edge_stability", c.edgeStability);
}

template <class V>
void
reflectFields(BranchProfile &c, V &v)
{
    v.field("enabled", c.enabled);
    reflectFields(static_cast<BranchKnobs &>(c), v);
}

template <class V>
void
reflectFields(WorkloadParams &c, V &v)
{
    v.field("name", c.name);
    v.field("seed", c.seed);
    v.field("data_regions", c.dataRegions);
    v.field("code_blocks", c.codeBlocks);
    v.field("irregular_blocks", c.irregularBlocks);
    v.field("num_trigger_pcs", c.numTriggerPcs);
    v.field("offsets_per_pc", c.offsetsPerPc);
    v.field("key_zipf_alpha", c.keyZipfAlpha);
    v.field("region_zipf_alpha", c.regionZipfAlpha);
    v.field("pattern_stability", c.patternStability);
    v.field("pattern_noise", c.patternNoise);
    v.field("pattern_density", c.patternDensity);
    v.field("scan_fraction", c.scanFraction);
    v.field("scan_streams", c.scanStreams);
    v.field("irregular_fraction", c.irregularFraction);
    v.field("store_fraction", c.storeFraction);
    v.field("shared_fraction", c.sharedFraction);
    v.field("gap_mean", c.gapMean);
    v.field("concurrency", c.concurrency);
    v.field("branch_model", c.branchModel);
    v.field("branch", c.branch);
}

template <class V>
void
reflectFields(WorkloadMix &c, V &v)
{
    v.field("name", c.name);
    v.field("workloads", c.workloads);
    v.field("branch", c.branch);
}

/**
 * A WorkloadMix may be spelled as a bare preset-name string
 * ("mixed" -> presetMixes() entry) or as a full inline object; the
 * canonical (re-serialized) form is always the full object.
 */
inline void
fromJson(const json::Value &j, WorkloadMix &out,
         const std::string &path)
{
    if (j.isString()) {
        const std::string &name = j.asString(path);
        std::string known;
        for (const WorkloadMix &m : presetMixes()) {
            if (m.name == name) {
                out = m;
                return;
            }
            if (!known.empty())
                known += ", ";
            known += m.name;
        }
        throw json::ConfigError(path + ": unknown preset mix \"" +
                                name + "\" (one of: " + known + ")");
    }
    config::ReadVisitor r(j, path);
    reflectFields(out, r);
    r.finish();
}

// ---- Whole-system config ----------------------------------------------

template <class V>
void
reflectFields(SystemConfig &c, V &v)
{
    v.field("mode", c.mode);
    v.field("num_cores", c.numCores);
    v.field("l1_size_bytes", c.l1SizeBytes);
    v.field("l1_assoc", c.l1Assoc);
    v.field("l1_tag_latency", c.l1TagLatency);
    v.field("l1_data_latency", c.l1DataLatency);
    v.field("l1_mshrs", c.l1Mshrs);
    v.field("l2_size_bytes", c.l2SizeBytes);
    v.field("l2_assoc", c.l2Assoc);
    v.field("l2_banks", c.l2Banks);
    v.field("l2_tag_latency", c.l2TagLatency);
    v.field("l2_data_latency", c.l2DataLatency);
    v.field("l2_mshrs", c.l2Mshrs);
    v.field("mem_latency", c.memLatency);
    v.field("mem_service_interval", c.memServiceInterval);
    v.field("mem_bytes", c.memBytes);
    v.field("core_width", c.coreWidth);
    v.field("store_buffer_entries", c.storeBufferEntries);
    v.field("next_line_l1i", c.nextLineL1I);
    v.field("btb_mispredict_penalty", c.btbMispredictPenalty);
    v.field("btb", c.btb);
    v.field("functional_chunk", c.functionalChunk);
    v.field("prefetch", c.prefetch);
    v.field("pht_geometry", c.phtGeometry);
    v.field("pht_qos", c.phtQos);
    v.field("pv_cache_entries", c.pvCacheEntries);
    v.field("pv_prefetch", c.pvPrefetch);
    v.field("victim_entries", c.victimEntries);
    v.field("drop_pv_writebacks", c.dropPvWritebacks);
    v.field("shared_pv_table", c.sharedPvTable);
    v.field("virt_engines", c.virtEngines);
    v.field("workload", c.workload);
    v.field("workload_mix", c.workloadMix);
    v.field("seed_offset", c.seedOffset);
    v.field("branch_profile", c.branchProfile);
    v.field("trace_dir", c.traceDir);
    v.field("pv_bytes_per_core", c.pvBytesPerCore);
    v.field("timing_shards", c.timingShards);
    v.field("sync_quantum", c.syncQuantum);
    v.field("l2_bank_domains", c.l2BankDomains);
    v.field("dram_lanes", c.dramLanes);
    v.field("drain_overlap", c.drainOverlap);
}

// ---- Sweep option bundles (harness/metrics.hh) ------------------------

template <class V>
void
reflectFields(Fig9Options &c, V &v)
{
    v.field("cores", c.numCores);
    v.field("btb_sets", c.btbSets);
    v.field("btb_assoc", c.btbAssoc);
    v.field("penalty_cycles", c.penalty);
    v.field("warmup_records", c.warmupRecords);
    v.field("measure_records", c.measureRecords);
    v.field("batches", c.batches);
    v.field("mixes", c.mixes);
    v.field("edge_stabilities", c.edgeStabilities);
    v.field("pv_prefetch", c.pvPrefetch);
    v.field("victim_entries", c.victimEntries);
    v.field("timing_shards", c.timingShards);
    v.field("sync_quantum", c.syncQuantum);
    v.field("l2_bank_domains", c.l2BankDomains);
    v.field("dram_lanes", c.dramLanes);
    v.field("drain_overlap", c.drainOverlap);
}

template <class V>
void
reflectFields(QosSetting &c, V &v)
{
    v.field("label", c.label);
    v.field("btb", c.btb);
    v.field("aggressor", c.aggressor);
}

/**
 * A QosSetting may likewise be a bare preset-label string ("4:1" ->
 * presetQosSettings() entry) or a full inline contract pair.
 */
inline void
fromJson(const json::Value &j, QosSetting &out,
         const std::string &path)
{
    if (j.isString()) {
        const std::string &label = j.asString(path);
        std::string known;
        for (const QosSetting &s : presetQosSettings()) {
            if (s.label == label) {
                out = s;
                return;
            }
            if (!known.empty())
                known += ", ";
            known += s.label;
        }
        throw json::ConfigError(path + ": unknown QoS setting \"" +
                                label + "\" (one of: " + known +
                                ")");
    }
    config::ReadVisitor r(j, path);
    reflectFields(out, r);
    r.finish();
}

template <class V>
void
reflectFields(QosOptions &c, V &v)
{
    v.field("cores", c.numCores);
    v.field("btb_sets", c.btbSets);
    v.field("btb_assoc", c.btbAssoc);
    v.field("agt_sets", c.agtSets);
    v.field("penalty_cycles", c.penalty);
    // Renamed from "pvcache_entries" to match SystemConfig's
    // spelling; the alias keeps committed scenarios parsing.
    v.alias("pvcache_entries", c.pvCacheEntries);
    v.field("pv_cache_entries", c.pvCacheEntries);
    v.field("pv_prefetch", c.pvPrefetch);
    v.field("victim_entries", c.victimEntries);
    v.field("warmup_records", c.warmupRecords);
    v.field("measure_records", c.measureRecords);
    v.field("batches", c.batches);
    v.field("settings", c.settings);
    v.field("timing_shards", c.timingShards);
    v.field("sync_quantum", c.syncQuantum);
    v.field("l2_bank_domains", c.l2BankDomains);
    v.field("dram_lanes", c.dramLanes);
    v.field("drain_overlap", c.drainOverlap);
}

} // namespace pvsim

#endif // PVSIM_CONFIG_FIELDS_HH
