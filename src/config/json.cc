#include "config/json.hh"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace pvsim {
namespace json {

// ---- Construction -----------------------------------------------------

Value
Value::boolean(bool b)
{
    Value v;
    v.type_ = Type::Bool;
    v.bool_ = b;
    return v;
}

Value
Value::integer(int64_t i)
{
    if (i >= 0)
        return uinteger(uint64_t(i));
    Value v;
    v.type_ = Type::Int;
    v.int_ = i;
    return v;
}

Value
Value::uinteger(uint64_t u)
{
    Value v;
    v.type_ = Type::Uint;
    v.uint_ = u;
    return v;
}

Value
Value::real(double d)
{
    Value v;
    v.type_ = Type::Real;
    v.real_ = d;
    return v;
}

Value
Value::string(std::string s)
{
    Value v;
    v.type_ = Type::String;
    v.string_ = std::move(s);
    return v;
}

Value
Value::array()
{
    Value v;
    v.type_ = Type::Array;
    return v;
}

Value
Value::object()
{
    Value v;
    v.type_ = Type::Object;
    return v;
}

const char *
Value::typeName() const
{
    switch (type_) {
      case Type::Null: return "null";
      case Type::Bool: return "bool";
      case Type::Int:
      case Type::Uint: return "integer";
      case Type::Real: return "number";
      case Type::String: return "string";
      case Type::Array: return "array";
      case Type::Object: return "object";
    }
    return "?";
}

// ---- Typed accessors --------------------------------------------------

namespace {

[[noreturn]] void
typeError(const std::string &path, const char *want,
          const char *got)
{
    throw ConfigError(path + ": expected " + want + ", got " + got);
}

} // namespace

bool
Value::asBool(const std::string &path) const
{
    if (type_ != Type::Bool)
        typeError(path, "bool", typeName());
    return bool_;
}

uint64_t
Value::asUint(const std::string &path) const
{
    if (type_ == Type::Uint)
        return uint_;
    if (type_ == Type::Int) // always negative by construction
        throw ConfigError(path + ": expected a non-negative integer, "
                                 "got " + std::to_string(int_));
    typeError(path, "unsigned integer", typeName());
}

int64_t
Value::asInt(const std::string &path) const
{
    if (type_ == Type::Int)
        return int_;
    if (type_ == Type::Uint) {
        if (uint_ > uint64_t(INT64_MAX))
            throw ConfigError(path + ": integer out of range");
        return int64_t(uint_);
    }
    typeError(path, "integer", typeName());
}

double
Value::asDouble(const std::string &path) const
{
    switch (type_) {
      case Type::Real: return real_;
      case Type::Uint: return double(uint_);
      case Type::Int: return double(int_);
      default: typeError(path, "number", typeName());
    }
}

const std::string &
Value::asString(const std::string &path) const
{
    if (type_ != Type::String)
        typeError(path, "string", typeName());
    return string_;
}

// ---- Containers -------------------------------------------------------

void
Value::push(Value v)
{
    if (type_ != Type::Array)
        throw ConfigError("push on non-array json value");
    items_.push_back(std::move(v));
}

const std::vector<Value> &
Value::items() const
{
    if (type_ != Type::Array)
        throw ConfigError("items() on non-array json value");
    return items_;
}

void
Value::set(const std::string &key, Value v)
{
    if (type_ != Type::Object)
        throw ConfigError("set on non-object json value");
    for (auto &kv : members_) {
        if (kv.first == key) {
            kv.second = std::move(v);
            return;
        }
    }
    members_.emplace_back(key, std::move(v));
}

const Value *
Value::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &kv : members_)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

const std::vector<std::pair<std::string, Value>> &
Value::members() const
{
    if (type_ != Type::Object)
        throw ConfigError("members() on non-object json value");
    return members_;
}

bool
Value::operator==(const Value &o) const
{
    if (type_ != o.type_)
        return false;
    switch (type_) {
      case Type::Null: return true;
      case Type::Bool: return bool_ == o.bool_;
      case Type::Int: return int_ == o.int_;
      case Type::Uint: return uint_ == o.uint_;
      case Type::Real: return real_ == o.real_;
      case Type::String: return string_ == o.string_;
      case Type::Array: return items_ == o.items_;
      case Type::Object: return members_ == o.members_;
    }
    return false;
}

// ---- Writer -----------------------------------------------------------

std::string
formatReal(double d)
{
    if (std::isnan(d) || std::isinf(d))
        throw ConfigError("non-finite number is not representable "
                          "in a scenario file");
    char buf[40];
    for (int prec = 1; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
        if (std::strtod(buf, nullptr) == d)
            break;
    }
    std::string s = buf;
    // Force a Real spelling so the lexical class round-trips.
    if (s.find_first_of(".eE") == std::string::npos)
        s += ".0";
    return s;
}

std::string
quote(const std::string &s)
{
    std::string out = "\"";
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += char(c);
            }
        }
    }
    out += '"';
    return out;
}

bool
Value::inlineable() const
{
    // Scalar-only arrays print on one line; everything structured
    // gets its own lines. Deterministic either way.
    if (type_ != Type::Array)
        return false;
    for (const Value &v : items_)
        if (v.isArray() || v.isObject())
            return false;
    return true;
}

void
Value::dumpTo(std::string &out, unsigned indent,
              unsigned depth) const
{
    const std::string pad((depth + 1) * indent, ' ');
    const std::string close_pad(depth * indent, ' ');
    char buf[32];
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Int:
        std::snprintf(buf, sizeof(buf), "%" PRId64, int_);
        out += buf;
        break;
      case Type::Uint:
        std::snprintf(buf, sizeof(buf), "%" PRIu64, uint_);
        out += buf;
        break;
      case Type::Real:
        out += formatReal(real_);
        break;
      case Type::String:
        out += quote(string_);
        break;
      case Type::Array:
        if (items_.empty()) {
            out += "[]";
        } else if (inlineable()) {
            out += '[';
            for (size_t i = 0; i < items_.size(); ++i) {
                if (i)
                    out += ", ";
                items_[i].dumpTo(out, indent, depth + 1);
            }
            out += ']';
        } else {
            out += "[\n";
            for (size_t i = 0; i < items_.size(); ++i) {
                out += pad;
                items_[i].dumpTo(out, indent, depth + 1);
                if (i + 1 < items_.size())
                    out += ',';
                out += '\n';
            }
            out += close_pad + "]";
        }
        break;
      case Type::Object:
        if (members_.empty()) {
            out += "{}";
        } else {
            out += "{\n";
            for (size_t i = 0; i < members_.size(); ++i) {
                out += pad + quote(members_[i].first) + ": ";
                members_[i].second.dumpTo(out, indent, depth + 1);
                if (i + 1 < members_.size())
                    out += ',';
                out += '\n';
            }
            out += close_pad + "}";
        }
        break;
    }
}

std::string
Value::dump(unsigned indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    out += '\n';
    return out;
}

// ---- Parser -----------------------------------------------------------

namespace {

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value
    parseDocument()
    {
        Value v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after the document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &msg)
    {
        size_t line = 1, col = 1;
        for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        throw ConfigError("json parse error at " +
                          std::to_string(line) + ":" +
                          std::to_string(col) + ": " + msg);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (pos_ >= text_.size() || text_[pos_] != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        size_t n = std::strlen(lit);
        if (text_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    Value
    parseValue()
    {
        skipWs();
        char c = peek();
        switch (c) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return Value::string(parseString());
          case 't':
            if (consumeLiteral("true"))
                return Value::boolean(true);
            fail("bad literal");
          case 'f':
            if (consumeLiteral("false"))
                return Value::boolean(false);
            fail("bad literal");
          case 'n':
            if (consumeLiteral("null"))
                return Value();
            fail("bad literal");
          default:
            return parseNumber();
        }
    }

    Value
    parseObject()
    {
        expect('{');
        Value obj = Value::object();
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        while (true) {
            skipWs();
            if (peek() != '"')
                fail("expected object key string");
            std::string key = parseString();
            if (obj.find(key))
                fail("duplicate key \"" + key + "\"");
            skipWs();
            expect(':');
            obj.set(key, parseValue());
            skipWs();
            char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == '}') {
                ++pos_;
                return obj;
            }
            fail("expected ',' or '}' in object");
        }
    }

    Value
    parseArray()
    {
        expect('[');
        Value arr = Value::array();
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        while (true) {
            arr.push(parseValue());
            skipWs();
            char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == ']') {
                ++pos_;
                return arr;
            }
            fail("expected ',' or ']' in array");
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    fail("unterminated escape");
                char e = text_[pos_++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        fail("truncated \\u escape");
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text_[pos_++];
                        cp <<= 4;
                        if (h >= '0' && h <= '9')
                            cp |= unsigned(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            cp |= unsigned(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            cp |= unsigned(h - 'A' + 10);
                        else
                            fail("bad \\u escape");
                    }
                    // Config strings are ASCII identifiers; encode
                    // the BMP codepoint as UTF-8.
                    if (cp < 0x80) {
                        out += char(cp);
                    } else if (cp < 0x800) {
                        out += char(0xC0 | (cp >> 6));
                        out += char(0x80 | (cp & 0x3F));
                    } else {
                        out += char(0xE0 | (cp >> 12));
                        out += char(0x80 | ((cp >> 6) & 0x3F));
                        out += char(0x80 | (cp & 0x3F));
                    }
                    break;
                  }
                  default:
                    fail("bad escape character");
                }
            } else if ((unsigned char)c < 0x20) {
                fail("raw control character in string");
            } else {
                out += c;
            }
        }
    }

    Value
    parseNumber()
    {
        size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        bool digits = false;
        while (pos_ < text_.size() &&
               std::isdigit((unsigned char)text_[pos_])) {
            ++pos_;
            digits = true;
        }
        bool is_real = false;
        if (pos_ < text_.size() && text_[pos_] == '.') {
            is_real = true;
            ++pos_;
            while (pos_ < text_.size() &&
                   std::isdigit((unsigned char)text_[pos_]))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            is_real = true;
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            while (pos_ < text_.size() &&
                   std::isdigit((unsigned char)text_[pos_]))
                ++pos_;
        }
        if (!digits)
            fail("bad number");
        std::string lex = text_.substr(start, pos_ - start);
        if (is_real)
            return Value::real(std::strtod(lex.c_str(), nullptr));
        errno = 0;
        if (lex[0] == '-') {
            int64_t i = std::strtoll(lex.c_str(), nullptr, 10);
            if (errno == ERANGE)
                fail("integer out of range");
            return Value::integer(i);
        }
        uint64_t u = std::strtoull(lex.c_str(), nullptr, 10);
        if (errno == ERANGE)
            fail("integer out of range");
        return Value::uinteger(u);
    }

    const std::string &text_;
    size_t pos_ = 0;
};

} // namespace

Value
Value::parse(const std::string &text)
{
    return Parser(text).parseDocument();
}

} // namespace json
} // namespace pvsim
