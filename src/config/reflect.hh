/**
 * @file
 * Field-visitor reflection over the config tree. A config struct
 * opts in by providing, in its own namespace (found via ADL):
 *
 *     template <class V> void reflectFields(T &c, V &v) {
 *         v.field("num_cores", c.numCores);
 *         v.field("btb", c.btb); // nested reflectable
 *     }
 *
 * and gets, for free:
 *   - toJson(c)            deterministic document (field order)
 *   - fromJson(j, c, path) strict parse: unknown keys rejected with
 *                          a full path, absent keys keep defaults
 *   - dumpConfig(c)        canonical byte-stable serialization
 *   - parseConfig<T>(text) the inverse
 *   - fingerprint(c)       stable 64-bit FNV-1a hash of the
 *                          canonical form (dependency tracking; the
 *                          getml Predictor::fingerprint idiom)
 *
 * Enums join by providing `enumNames(E*)` returning (value, name)
 * pairs; vectors and nested reflectables compose automatically.
 * Custom (de)serializations — e.g. WorkloadMix from a preset-name
 * string — are plain non-template fromJson/toJson overloads beside
 * the struct's reflectFields; overload resolution prefers them.
 */

#ifndef PVSIM_CONFIG_REFLECT_HH
#define PVSIM_CONFIG_REFLECT_HH

#include <cstdint>
#include <limits>
#include <string>
#include <type_traits>
#include <vector>

#include "config/json.hh"

namespace pvsim {
namespace config {

// ---- Trait: does T provide reflectFields? -----------------------------

/** Probe visitor used only inside decltype. */
struct FieldProbe {
    template <class F> void field(const char *, F &) {}
    template <class F> void alias(const char *, F &) {}
};

template <class T, class = void>
struct is_reflectable : std::false_type {};
template <class T>
struct is_reflectable<
    T, std::void_t<decltype(reflectFields(
           std::declval<T &>(), std::declval<FieldProbe &>()))>>
    : std::true_type {};

// ---- Trait: does T provide enumNames? ---------------------------------

template <class T, class = void>
struct has_enum_names : std::false_type {};
template <class T>
struct has_enum_names<
    T, std::void_t<decltype(enumNames(static_cast<T *>(nullptr)))>>
    : std::true_type {};

// All four declared before any visitor so that unqualified calls
// inside the visitors see the vector overloads too — vector<T> for a
// pvsim type does not pull pvsim::config in via ADL.
template <class T> json::Value toJson(const T &v);
template <class T> json::Value toJson(const std::vector<T> &v);
template <class T>
void fromJson(const json::Value &j, T &out, const std::string &path);
template <class T>
void fromJson(const json::Value &j, std::vector<T> &out,
              const std::string &path);

// ---- Write visitor ----------------------------------------------------

class WriteVisitor
{
  public:
    explicit WriteVisitor(json::Value &obj) : obj_(obj) {}

    template <class F>
    void
    field(const char *name, F &v)
    {
        obj_.set(name, toJson(v));
    }

    /** Aliases are read-side compatibility only: the canonical dump
     *  (and so the fingerprint) always writes the current key. */
    template <class F>
    void
    alias(const char *, F &)
    {
    }

  private:
    json::Value &obj_;
};

// ---- Read visitor -----------------------------------------------------

class ReadVisitor
{
  public:
    ReadVisitor(const json::Value &obj, const std::string &path)
        : obj_(obj), path_(path)
    {
        if (!obj.isObject())
            throw json::ConfigError(path + ": expected object, got " +
                                    std::string(obj.typeName()));
    }

    template <class F>
    void
    field(const char *name, F &v)
    {
        consumed_.push_back(name);
        if (const json::Value *j = obj_.find(name))
            fromJson(*j, v, path_ + "." + name);
        // Absent keys keep the member's default — scenarios only
        // spell what they change.
    }

    /**
     * Accept a retired spelling of a field so committed scenario
     * JSONs keep validating across renames. Declare the alias
     * BEFORE the canonical field() in reflectFields: when a
     * document carries both keys, the canonical one parses last
     * and wins.
     */
    template <class F>
    void
    alias(const char *old_name, F &v)
    {
        consumed_.push_back(old_name);
        if (const json::Value *j = obj_.find(old_name))
            fromJson(*j, v, path_ + "." + old_name);
    }

    /** Strictness: every member of the object must have been
     *  declared by some field() call. */
    void
    finish() const
    {
        for (const auto &kv : obj_.members()) {
            bool known = false;
            for (const char *name : consumed_)
                if (kv.first == name)
                    known = true;
            if (!known)
                throw json::ConfigError(
                    path_ + ": unknown key \"" + kv.first + "\"");
        }
    }

  private:
    const json::Value &obj_;
    std::string path_;
    std::vector<const char *> consumed_;
};

// ---- Enum codecs ------------------------------------------------------

template <class E>
json::Value
enumToJson(E e)
{
    for (const auto &kv : enumNames(static_cast<E *>(nullptr)))
        if (kv.first == e)
            return json::Value::string(kv.second);
    throw json::ConfigError("enum value has no registered name");
}

template <class E>
void
enumFromJson(const json::Value &j, E &out, const std::string &path)
{
    const std::string &s = j.asString(path);
    std::string known;
    for (const auto &kv : enumNames(static_cast<E *>(nullptr))) {
        if (s == kv.second) {
            out = kv.first;
            return;
        }
        if (!known.empty())
            known += ", ";
        known += kv.second;
    }
    throw json::ConfigError(path + ": unknown value \"" + s +
                            "\" (one of: " + known + ")");
}

// ---- Generic dispatch -------------------------------------------------

template <class T>
json::Value
toJson(const T &v)
{
    if constexpr (std::is_same_v<T, bool>) {
        return json::Value::boolean(v);
    } else if constexpr (std::is_enum_v<T>) {
        static_assert(has_enum_names<T>::value,
                      "enum lacks an enumNames() registration");
        return enumToJson(v);
    } else if constexpr (std::is_integral_v<T> &&
                         std::is_unsigned_v<T>) {
        return json::Value::uinteger(uint64_t(v));
    } else if constexpr (std::is_integral_v<T>) {
        return json::Value::integer(int64_t(v));
    } else if constexpr (std::is_floating_point_v<T>) {
        return json::Value::real(double(v));
    } else if constexpr (std::is_same_v<T, std::string>) {
        return json::Value::string(v);
    } else {
        static_assert(is_reflectable<T>::value,
                      "type is neither scalar nor reflectable");
        json::Value obj = json::Value::object();
        WriteVisitor w(obj);
        // reflectFields takes T& so one declaration serves read and
        // write; the write visitor never mutates.
        reflectFields(const_cast<T &>(v), w);
        return obj;
    }
}

template <class T>
json::Value
toJson(const std::vector<T> &v)
{
    json::Value arr = json::Value::array();
    for (const T &e : v)
        arr.push(toJson(e));
    return arr;
}

template <class T>
void
fromJson(const json::Value &j, T &out, const std::string &path)
{
    if constexpr (std::is_same_v<T, bool>) {
        out = j.asBool(path);
    } else if constexpr (std::is_enum_v<T>) {
        enumFromJson(j, out, path);
    } else if constexpr (std::is_integral_v<T> &&
                         std::is_unsigned_v<T>) {
        uint64_t u = j.asUint(path);
        if (u > uint64_t(std::numeric_limits<T>::max()))
            throw json::ConfigError(path + ": value " +
                                    std::to_string(u) +
                                    " out of range");
        out = T(u);
    } else if constexpr (std::is_integral_v<T>) {
        int64_t i = j.asInt(path);
        if (i > int64_t(std::numeric_limits<T>::max()) ||
            i < int64_t(std::numeric_limits<T>::min()))
            throw json::ConfigError(path + ": value " +
                                    std::to_string(i) +
                                    " out of range");
        out = T(i);
    } else if constexpr (std::is_floating_point_v<T>) {
        out = T(j.asDouble(path));
    } else if constexpr (std::is_same_v<T, std::string>) {
        out = j.asString(path);
    } else {
        static_assert(is_reflectable<T>::value,
                      "type is neither scalar nor reflectable");
        ReadVisitor r(j, path);
        reflectFields(out, r);
        r.finish();
    }
}

template <class T>
void
fromJson(const json::Value &j, std::vector<T> &out,
         const std::string &path)
{
    if (!j.isArray())
        throw json::ConfigError(path + ": expected array, got " +
                                std::string(j.typeName()));
    out.clear();
    size_t i = 0;
    for (const json::Value &e : j.items()) {
        out.emplace_back();
        fromJson(e, out.back(), path + "[" + std::to_string(i) + "]");
        ++i;
    }
}

// ---- Canonical text and fingerprints ----------------------------------

/** Canonical byte-stable serialization of a reflectable config. */
template <class T>
std::string
dumpConfig(const T &v)
{
    return toJson(v).dump();
}

/** Strict parse over defaults: text -> T (throws ConfigError). */
template <class T>
T
parseConfig(const std::string &text, const std::string &path = "$")
{
    T out{};
    fromJson(json::Value::parse(text), out, path);
    return out;
}

/** FNV-1a over a string (the canonical config dump). */
inline uint64_t
fnv1a(const std::string &s)
{
    uint64_t h = 14695981039346656037ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

/**
 * Stable config fingerprint: the hash of the canonical
 * serialization, so it changes iff some field's canonical value
 * changes — the dependency-tracking key the scenario manifest
 * records.
 */
template <class T>
uint64_t
fingerprint(const T &v)
{
    return fnv1a(dumpConfig(v));
}

/** "0123456789abcdef" spelling used in manifests and artifacts. */
inline std::string
fingerprintHex(uint64_t h)
{
    static const char digits[] = "0123456789abcdef";
    std::string s(16, '0');
    for (int i = 15; i >= 0; --i) {
        s[size_t(i)] = digits[h & 0xF];
        h >>= 4;
    }
    return s;
}

} // namespace config
} // namespace pvsim

#endif // PVSIM_CONFIG_REFLECT_HH
