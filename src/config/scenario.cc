#include "config/scenario.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "harness/config_presets.hh"
#include "harness/row_json.hh"

namespace pvsim {

using json::ConfigError;

const std::vector<std::string> &
Scenario::kinds()
{
    static const std::vector<std::string> k = {
        "timed", "functional", "fig9", "qos", "qos_hetero",
    };
    return k;
}

Scenario
parseScenario(const std::string &text, const std::string &label)
{
    return config::parseConfig<Scenario>(text, label);
}

Scenario
loadScenarioFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw ConfigError(path + ": cannot open scenario file");
    std::ostringstream buf;
    buf << in.rdbuf();
    Scenario s = parseScenario(buf.str(), path);
    validateScenario(s);
    return s;
}

std::string
dumpScenario(const Scenario &s)
{
    return config::dumpConfig(s);
}

uint64_t
scenarioFingerprint(const Scenario &s)
{
    return config::fingerprint(s);
}

void
validateScenario(const Scenario &s)
{
    if (s.name.empty())
        throw ConfigError("scenario has no \"name\"");
    const auto &kinds = Scenario::kinds();
    if (std::find(kinds.begin(), kinds.end(), s.kind) == kinds.end()) {
        std::string known;
        for (const std::string &k : kinds)
            known += (known.empty() ? "" : ", ") + k;
        throw ConfigError(s.name + ": unknown kind \"" + s.kind +
                          "\" (one of: " + known + ")");
    }
    if (s.kind == "timed" && s.measureRecords == 0)
        throw ConfigError(s.name + ": measure_records must be > 0");
    if (s.kind == "functional" && s.measureRefs == 0)
        throw ConfigError(s.name + ": measure_refs must be > 0");
    if ((s.kind == "timed" || s.kind == "functional") &&
        s.system.numCores < 1)
        throw ConfigError(s.name + ": system.num_cores must be >= 1");
    if (s.kind == "fig9") {
        if (s.fig9.batches == 0)
            throw ConfigError(s.name +
                              ": fig9.batches must be >= 1");
        if (s.fig9.measureRecords == 0)
            throw ConfigError(
                s.name + ": fig9.measure_records must be > 0");
        for (size_t i = 0; i < s.fig9.edgeStabilities.size(); ++i) {
            double v = s.fig9.edgeStabilities[i];
            // kFig9MixStability (-1) = "the mix's own stability".
            if (v != kFig9MixStability && !(v >= 0.0 && v <= 1.0))
                throw ConfigError(
                    s.name + ": fig9.edge_stabilities[" +
                    std::to_string(i) +
                    "] must be in [0, 1] or -1 (mix default)");
        }
    }
    if (s.kind == "qos" || s.kind == "qos_hetero") {
        if (s.qos.batches == 0)
            throw ConfigError(s.name + ": qos.batches must be >= 1");
        if (s.qos.measureRecords == 0)
            throw ConfigError(s.name +
                              ": qos.measure_records must be > 0");
    }
    if (s.kind == "qos_hetero" && s.qos.numCores % 4 != 0)
        throw ConfigError(s.name + ": qos.cores must be a multiple "
                                   "of 4 for the heterogeneous "
                                   "cluster matrix");
}

int
scenarioCores(const Scenario &s)
{
    if (s.kind == "fig9")
        return s.fig9.numCores;
    if (s.kind == "qos" || s.kind == "qos_hetero")
        return s.qos.numCores;
    return s.system.numCores;
}

std::vector<std::string>
listScenarioFiles(const std::string &path)
{
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    if (fs::is_directory(path)) {
        for (const auto &e : fs::directory_iterator(path)) {
            if (!e.is_regular_file())
                continue;
            const fs::path &p = e.path();
            if (p.extension() == ".json" &&
                p.filename() != "MANIFEST.json")
                files.push_back(p.string());
        }
        std::sort(files.begin(), files.end());
        if (files.empty())
            throw ConfigError(path +
                              ": no scenario *.json files found");
    } else if (fs::is_regular_file(path)) {
        files.push_back(path);
    } else {
        throw ConfigError(path + ": no such file or directory");
    }
    return files;
}

unsigned
fig9JobsEffective(const Fig9Options &opt)
{
    size_t mixes =
        opt.mixes.empty() ? presetMixes().size() : opt.mixes.size();
    size_t stabilities = opt.edgeStabilities.empty()
                             ? 1
                             : opt.edgeStabilities.size();
    return effectiveHarnessJobs(
        unsigned(mixes * stabilities * 2 * opt.batches));
}

unsigned
qosJobsEffective(const QosOptions &opt)
{
    size_t settings = opt.settings.empty()
                          ? presetQosSettings().size()
                          : opt.settings.size();
    return effectiveHarnessJobs(unsigned(settings * opt.batches));
}

namespace {

std::string
functionalRowJson(const FunctionalResult &r)
{
    std::ostringstream os;
    os << "{\"covered_pct\": " << r.coverage.coveredPct()
       << ", \"uncovered_pct\": " << r.coverage.uncoveredPct()
       << ", \"overprediction_pct\": "
       << r.coverage.overpredictionPct()
       << ", \"l2_requests\": " << r.traffic.l2Requests
       << ", \"l2_requests_pv\": " << r.traffic.l2RequestsPv
       << ", \"l2_misses\": " << r.traffic.l2Misses()
       << ", \"l2_writebacks\": " << r.traffic.l2Writebacks()
       << ", \"offchip_bytes\": " << r.traffic.offChipBytes()
       << ", \"pv_l2_fill_rate\": " << r.pvL2FillRate << "}";
    return os.str();
}

} // namespace

std::string
runScenarioJson(const Scenario &s, const std::string &file_label)
{
    std::vector<std::string> rows;
    std::string extra;

    if (s.kind == "timed") {
        TimedRun r =
            timedRun(s.system, s.warmupRecords, s.measureRecords);
        rows.push_back("{" + timedRunJson(r) + "}");
    } else if (s.kind == "functional") {
        rows.push_back(functionalRowJson(runFunctionalMeasured(
            s.system, s.warmupRefs, s.measureRefs)));
    } else if (s.kind == "fig9") {
        unsigned jobs = fig9JobsEffective(s.fig9);
        for (const Fig9Row &r : fig9Sweep(s.fig9))
            rows.push_back(fig9RowJson(r, jobs));
    } else if (s.kind == "qos") {
        unsigned jobs = qosJobsEffective(s.qos);
        for (const QosRow &r : qosSweep(s.qos))
            rows.push_back(qosRowJson(r, jobs));
    } else if (s.kind == "qos_hetero") {
        QosHeterogeneousResult het = qosHeterogeneous(s.qos);
        for (const QosClusterRow &c : het.clusters)
            rows.push_back(qosClusterRowJson(c));
        std::ostringstream os;
        os << ",\n      \"reference\": {"
           << timedRunJson(het.referenceRun) << "},\n"
           << "      \"protected\": {"
           << timedRunJson(het.protectedRun) << "}";
        extra = os.str();
    } else {
        throw ConfigError(s.name + ": unknown kind \"" + s.kind +
                          "\"");
    }

    std::ostringstream os;
    os << "{\n      \"name\": " << json::quote(s.name)
       << ",\n      \"kind\": " << json::quote(s.kind)
       << ",\n      \"file\": " << json::quote(file_label)
       << ",\n      \"fingerprint\": "
       << json::quote(
              config::fingerprintHex(scenarioFingerprint(s)))
       << ",\n      \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i)
        os << "        " << rows[i]
           << (i + 1 < rows.size() ? "," : "") << "\n";
    os << "      ]" << extra << "\n    }";
    return os.str();
}

} // namespace pvsim
