#include "core/virt_pht.hh"

#include "util/intmath.hh"

namespace pvsim {

namespace {

/** Tag bits left of the 21-bit key after the set index. */
unsigned
phtTagBits(unsigned num_sets)
{
    unsigned index_bits = unsigned(ceilLog2(num_sets));
    return index_bits >= kPhtKeyBits ? 1 : kPhtKeyBits - index_bits;
}

PvSetCodec
phtCodec(unsigned num_sets, unsigned assoc)
{
    return PvSetCodec(assoc, phtTagBits(num_sets), 32);
}

} // anonymous namespace

VirtualizedPht::VirtualizedPht(PvProxy &proxy,
                               const std::string &name,
                               unsigned num_sets, unsigned assoc,
                               const PvTenantQos &qos)
    : VirtEngine(proxy, name, phtCodec(num_sets, assoc), num_sets,
                 qos)
{
}

VirtualizedPht::VirtualizedPht(SimContext &ctx,
                               const VirtPhtParams &params,
                               Addr pv_start)
    : VirtEngine(makeSingleTenantProxy(ctx, params.proxy, pv_start,
                                       params.numSets),
                 "pht", phtCodec(params.numSets, params.assoc),
                 params.numSets)
{
}

void
VirtualizedPht::lookup(PhtKey key, LookupCallback cb)
{
    table().find(key, [cb = std::move(cb)](bool found,
                                           uint64_t payload) {
        cb(found, SpatialPattern(payload));
    });
}

void
VirtualizedPht::insert(PhtKey key, SpatialPattern pattern)
{
    if (pattern == 0)
        return; // nothing to learn; zero marks empty entries
    table().store(key, pattern);
}

std::string
VirtualizedPht::phtName() const
{
    PhtGeometry g{segment().numSets(), codec().ways()};
    return "PV" + std::to_string(proxy().params().pvCacheEntries) +
           "(" + g.label() + ")";
}

} // namespace pvsim
