#include "core/virt_pht.hh"

#include "util/intmath.hh"

namespace pvsim {

namespace {

/** Tag bits left of the 21-bit key after the set index. */
unsigned
phtTagBits(unsigned num_sets)
{
    unsigned index_bits = unsigned(ceilLog2(num_sets));
    return index_bits >= kPhtKeyBits ? 1 : kPhtKeyBits - index_bits;
}

PvProxyParams
proxyParamsFor(const VirtPhtParams &p)
{
    PvProxyParams pp = p.proxy;
    // The storage accounting counts only live bits per line.
    pp.usedBitsPerLine =
        p.assoc * (phtTagBits(p.numSets) + 32);
    return pp;
}

} // anonymous namespace

VirtualizedPht::VirtualizedPht(SimContext &ctx,
                               const VirtPhtParams &params,
                               Addr pv_start)
    : params_(params),
      codec_(params.assoc, phtTagBits(params.numSets), 32),
      proxy_(std::make_unique<PvProxy>(
          ctx, proxyParamsFor(params),
          PvTableLayout(pv_start, params.numSets))),
      table_(proxy_.get(), codec_)
{
}

void
VirtualizedPht::lookup(PhtKey key, LookupCallback cb)
{
    table_.find(key, [cb = std::move(cb)](bool found,
                                          uint64_t payload) {
        cb(found, SpatialPattern(payload));
    });
}

void
VirtualizedPht::insert(PhtKey key, SpatialPattern pattern)
{
    if (pattern == 0)
        return; // nothing to learn; zero marks empty entries
    table_.store(key, pattern);
}

std::string
VirtualizedPht::phtName() const
{
    PhtGeometry g{params_.numSets, params_.assoc};
    return "PV" + std::to_string(params_.proxy.pvCacheEntries) +
           "(" + g.label() + ")";
}

} // namespace pvsim
