/**
 * @file
 * The PVProxy (paper Section 2.2): the on-chip mediator between
 * optimization engines and their in-memory PVTables. Holds a small
 * fully-associative PVCache of table sets (one 64-byte line each),
 * an MSHR file for in-flight set fetches, a pattern buffer staging
 * pending operations while their set is fetched, and an evict buffer
 * for dirty lines on their way to the L2.
 *
 * The proxy is multi-tenant: one reserved PV physical region is
 * partitioned into per-table segments, and any number of virtualized
 * engines (PHT, BTB, stride, ...) register with the same proxy and
 * share its PVCache and buffers. In-flight entries are tagged with
 * the owning table-id, statistics are attributed per engine, and a
 * fair drop policy keeps one engine from starving the others out of
 * the pattern buffer. Tenants may additionally carry a QoS contract
 * (pv_qos.hh) — a weight plus optional per-resource floors — under
 * which the proxy partitions the PVCache, the MSHR file, and the
 * pattern buffer by weighted entitlement instead of the symmetric
 * fair share, protecting a latency-critical tenant from a
 * bandwidth-hungry one.
 *
 * Every entry point is one PvRequest descriptor: (table, set, class,
 * op), where the class is Demand, Prefetch or Writeback. Demand
 * requests are the engines' ordinary set operations; Prefetch
 * requests ask for a speculative fill of a set's line without an
 * operation attached; Writeback requests force a set's line out to
 * memory. On top of the demand stream the proxy runs the paper's
 * Section 4.3 locality optimizations when enabled:
 *
 *  - `prefetchDepth` > 0 arms a per-tenant sequential-set stride
 *    detector; a demand access extending a detected stride issues
 *    speculative fills for the next set(s). Prefetches are
 *    low-priority by construction: they never take the last free
 *    MSHR, are charged against the owning tenant's MSHR entitlement
 *    (a zero-entitlement tenant's prefetches drop first), and their
 *    PVCache occupancy is charged like any other line, so a tenant
 *    cannot launder capacity through speculation.
 *  - `victimEntries` > 0 adds a small victim buffer retaining
 *    evicted lines; a demand miss that hits the victim buffer
 *    reinstalls the line without memory traffic. Victim capacity is
 *    charged to the owning tenant's PVCache entitlement share.
 *
 * Both knobs default to 0, which is bit-identical to the
 * pre-prefetch proxy.
 *
 * All PVProxy memory traffic is made of ordinary requests injected
 * at the L2 ("on the backside of the L1"); the hierarchy is
 * oblivious to what it is caching. Speculative fills are ReadReq
 * packets flagged isPrefetch, taking the exact same path as demand
 * fills — the determinism contract of the sharded timing mode is
 * untouched.
 */

#ifndef PVSIM_CORE_PV_PROXY_HH
#define PVSIM_CORE_PV_PROXY_HH

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/pv_codec.hh"
#include "core/pv_layout.hh"
#include "core/pv_qos.hh"
#include "mem/packet.hh"
#include "mem/port.hh"
#include "sim/sim_object.hh"
#include "stats/stat.hh"

namespace pvsim {

/** PVProxy configuration (paper Section 4.6 final design). */
struct PvProxyParams {
    std::string name = "pvproxy";
    /** PVCache entries; the paper settles on eight (Section 4.3). */
    unsigned pvCacheEntries = 8;
    /** Outstanding set fetches. */
    unsigned mshrs = 4;
    /** Dirty lines buffered toward the L2. */
    unsigned evictBufferEntries = 4;
    /** Pending operations staged while sets are in flight. */
    unsigned patternBufferEntries = 16;
    /** Bits of each packed line that hold live data (storage acct).
     *  Used by the legacy single-tenant constructor; engines
     *  registered explicitly report their own codec's usedBits(). */
    unsigned usedBitsPerLine = 473;
    /** Sets prefetched ahead on a detected sequential-set stride
     *  (paper Section 4.3 locality prefetch). 0 disables the
     *  detector entirely — bit-identical to the pre-prefetch proxy. */
    unsigned prefetchDepth = 0;
    /** Victim-buffer entries retaining evicted lines (0 = none). */
    unsigned victimEntries = 0;
};

/** Registration record for one tenant table. */
struct PvEngineInfo {
    std::string name = "table";
    /** Sets (= lines) this engine's segment occupies. */
    unsigned numSets = 0;
    /** Live bits of each packed line (storage accounting). */
    unsigned usedBitsPerLine = 0;
    /** QoS contract: weight + optional floors over the shared
     *  PVCache / MSHR / pattern-buffer capacity (pv_qos.hh). The
     *  default contract keeps the legacy fair-share policy. */
    PvTenantQos qos;
};

/**
 * Mutable view of one cached PVTable line handed to operations.
 * `dirty` must be set by operations that modify the bytes; `ages`
 * is sideband per-way recency metadata that lives only while the
 * line is in the PVCache (the packed line's trailing bits stay
 * unused, as in the paper's Figure 3a). Sized from the codec's
 * way-count ceiling so a wide codec can never overflow it.
 */
struct PvLineView {
    uint8_t *bytes;
    bool *dirty;
    std::array<uint8_t, kPvMaxWays> *ages;
};

/**
 * An operation against one table set. Runs exactly once, either
 * immediately (PVCache hit / functional mode) or when the set
 * arrives from the memory hierarchy. If the proxy must drop the
 * operation (buffers full), it runs with view.bytes == nullptr —
 * the engine then sees a predictor miss (paper Section 2.2).
 */
using PvSetOp = std::function<void(PvLineView view)>;

/** Request classes a PvRequest may carry. */
enum class PvReqClass {
    Demand,    ///< ordinary engine operation (needs an op)
    Prefetch,  ///< speculative fill of the set's line (no op)
    Writeback, ///< force the set's line out to memory
};

/**
 * The proxy's single entry descriptor: every engine-visible access
 * is one of these, flowing proxy -> QoS arbiter -> boundary/L2.
 * Demand requests require `op`; Prefetch requests ignore it;
 * Writeback requests run `op` (when present) on the line before
 * flushing it, or with a null view when the line is not resident.
 */
struct PvRequest {
    unsigned table = 0;
    unsigned set = 0;
    PvReqClass cls = PvReqClass::Demand;
    PvSetOp op;
};

/** The proxy. */
class PvProxy : public SimObject, public MemClient
{
  public:
    /** Engine-facing alias for the set-operation callback. */
    using SetOp = PvSetOp;

    /**
     * Multi-tenant constructor: the proxy fronts the PV region
     * [region_start, region_start + region_bytes). Engines claim
     * segments with registerEngine() before issuing accesses.
     */
    PvProxy(SimContext &ctx, const PvProxyParams &params,
            Addr region_start, uint64_t region_bytes);

    /**
     * Single-tenant convenience constructor (the paper's original
     * one-PHT-per-proxy shape): the region spans exactly `layout`
     * and one engine named "table0" covering it is pre-registered
     * as table-id 0.
     */
    PvProxy(SimContext &ctx, const PvProxyParams &params,
            const PvTableLayout &layout);

    /**
     * Register a tenant; returns its table-id. The engine's segment
     * is carved from the region in registration order, so distinct
     * table-ids map to disjoint PV addresses by construction.
     */
    unsigned registerEngine(const PvEngineInfo &info);

    unsigned numEngines() const { return unsigned(engines_.size()); }

    /** Segment layout of one tenant. */
    const PvTableLayout &
    engineLayout(unsigned table) const
    {
        return engines_.at(table).layout;
    }

    /** Registration record of one tenant. */
    const PvEngineInfo &
    engineInfo(unsigned table) const
    {
        return engines_.at(table).info;
    }

    /** Legacy accessor: the layout of table 0. */
    const PvTableLayout &layout() const { return engineLayout(0); }

    /** Connect the level the proxy injects requests into (the L2). */
    void setMemSide(MemDevice *dev) { memSide_ = dev; }

    /**
     * Perform one request (see PvRequest). Demand requests fetch
     * the set's line from the memory hierarchy on a PVCache miss;
     * Prefetch requests issue a speculative fill subject to the
     * MSHR-headroom and entitlement rules; Writeback requests flush
     * the set's line (bypassing victim retention).
     */
    void access(PvRequest req);

    /** Write back all dirty lines (all tenants) and drop clean ones. */
    void flush();

    /** True when nothing is in flight (timing mode draining). */
    bool quiesced() const
    {
        return inFlight_.empty() && sendQueue_.empty();
    }

    const PvProxyParams &params() const { return params_; }
    const PvRegionLayout &region() const { return region_; }

    // MemClient
    void recvResponse(PacketPtr pkt) override;
    std::string clientName() const override { return name(); }

    /**
     * Dedicated on-chip storage, itemized as in paper Section 4.6.
     * All values in bits.
     */
    struct StorageBreakdown {
        uint64_t pvCacheData = 0;
        uint64_t tags = 0;
        uint64_t dirtyBits = 0;
        uint64_t mshrs = 0;
        uint64_t evictBuffer = 0;
        uint64_t patternBuffer = 0;
        uint64_t victimBuffer = 0;

        uint64_t
        totalBits() const
        {
            return pvCacheData + tags + dirtyBits + mshrs +
                   evictBuffer + patternBuffer + victimBuffer;
        }

        double totalBytes() const { return totalBits() / 8.0; }
    };

    StorageBreakdown storageBreakdown() const;

    /** Per-tenant statistics scope ("<proxy>.<engine>"). */
    struct EngineStats : public stats::Group {
        EngineStats(stats::Group *parent, const std::string &name);

        stats::Scalar operations;
        stats::Scalar hits;        ///< PVCache hits
        stats::Scalar misses;      ///< PVCache misses
        stats::Scalar drops;       ///< ops dropped (predictor miss)
        stats::Scalar qosDrops;    ///< ... by the share policy
        stats::Scalar fills;       ///< demand sets fetched
        stats::Scalar writebacks;  ///< dirty lines written back
        /** Sum of ticks each of this tenant's *demand* fills spent
         *  between fetch issue and PVCache install (timing mode):
         *  divide by `fills` for the tenant's mean demand-fill
         *  latency. Speculative fills are counted separately in
         *  prefetchFills so they cannot dilute this mean. */
        stats::Scalar fillLatencyTicks;
        /** High-watermark of PVCache entries held at once. */
        stats::Scalar pvCachePeak;
        /** Speculative fills installed for this tenant. */
        stats::Scalar prefetchFills;
        /** Prefetched lines later referenced by a demand access. */
        stats::Scalar prefetchUseful;
        /** Prefetches dropped by headroom/entitlement rules. */
        stats::Scalar prefetchDrops;
        /** Demand misses served from the victim buffer. */
        stats::Scalar victimHits;
    };

    EngineStats &engineStats(unsigned table)
    {
        return *engines_.at(table).stats;
    }

    // ---- Per-tenant QoS (pv_qos.hh) -----------------------------------

    /**
     * Replace one tenant's QoS contract at runtime (e.g. between
     * warmup and measurement). Entitlements take effect on the next
     * admission/eviction decision; occupancy converges through the
     * normal replacement traffic — no lines are flushed.
     */
    void
    setTenantQos(unsigned table, const PvTenantQos &qos)
    {
        engines_.at(table).info.qos = qos;
        qos_.setTenantQos(table, qos);
    }

    const PvTenantQos &
    tenantQos(unsigned table) const
    {
        return engines_.at(table).info.qos;
    }

    /** The arbiter (entitlement introspection for tests/benches). */
    const PvQosArbiter &qosArbiter() const { return qos_; }

    /** PVCache entries tenant `table` currently holds. */
    unsigned
    pvCacheOccupancy(unsigned table) const
    {
        return cacheOcc_.at(table);
    }

    /** MSHRs tenant `table` currently holds (in-flight fetches). */
    unsigned mshrOccupancy(unsigned table) const
    {
        return inFlightCount(table);
    }

    /** Pattern-buffer entries tenant `table` currently holds. */
    unsigned patternOccupancy(unsigned table) const
    {
        return pendingOpCount(table);
    }

    /** Victim-buffer entries tenant `table` currently holds. */
    unsigned
    victimOccupancy(unsigned table) const
    {
        return victimOcc_.at(table);
    }

    // Aggregate statistics (all tenants)
    stats::Scalar operations;
    stats::Scalar pvCacheHits;
    stats::Scalar pvCacheMisses;
    stats::Scalar memRequests;   ///< set fetches sent to the L2
    stats::Scalar coalescedOps;  ///< ops joining an in-flight fetch
    stats::Scalar droppedOps;    ///< ops dropped (reported as miss)
    stats::Scalar fairnessDrops; ///< ... dropped by the fair policy
    stats::Scalar fills;         ///< demand fills installed
    stats::Scalar writebacks;    ///< dirty lines sent to the L2
    stats::Scalar cleanEvicts;   ///< clean lines silently dropped
    stats::Scalar evictOverflows;
    stats::Scalar prefetchFills;  ///< speculative fills installed
    stats::Scalar prefetchUseful; ///< ... later used by demand
    stats::Scalar prefetchDrops;  ///< prefetches dropped pre-issue
    stats::Scalar victimHits;     ///< misses served by the victim buf

  private:
    /** Per-tenant sequential-set stride detector state. */
    struct StrideState {
        bool seen = false;
        unsigned lastSet = 0;
        int lastStride = 0;
    };

    struct Engine {
        PvEngineInfo info;
        PvTableLayout layout;
        std::unique_ptr<EngineStats> stats;
        StrideState stride;
    };

    struct CacheEntry {
        bool valid = false;
        unsigned line = 0;  ///< global line index in the region
        unsigned table = 0; ///< owning tenant (stats attribution)
        bool dirty = false;
        /** Installed speculatively and not yet demand-referenced. */
        bool prefetched = false;
        uint64_t lastTouch = 0;
        std::array<uint8_t, kBlockBytes> bytes{};
        std::array<uint8_t, kPvMaxWays> ages{};
    };

    /** One pending fetch, tagged with tenant and request class. */
    struct InFlight {
        unsigned line = 0;
        unsigned table = 0;
        PvReqClass cls = PvReqClass::Demand;
        std::vector<SetOp> pendingOps;
    };

    /** Strides this close count as one sequential walk even when
     *  consecutive hops differ (block lengths vary in real code). */
    static constexpr int kSequentialWindow = 8;

    void accessDemand(unsigned table, unsigned set, SetOp op);
    void writebackSet(unsigned table, unsigned set, const SetOp &op);
    /** Stride detection + speculative issue after a demand access. */
    void maybePrefetch(unsigned table, unsigned set);
    /** One speculative fill, subject to headroom/entitlement. */
    void issuePrefetch(unsigned table, unsigned set);
    CacheEntry *findEntry(unsigned line);
    CacheEntry &allocateEntry(unsigned line, unsigned table);
    CacheEntry *pickVictim(unsigned table);
    void applyOp(CacheEntry &e, const SetOp &op);
    void dropOp(unsigned table, const SetOp &op, bool fairness);
    void evictEntry(CacheEntry &e, bool retain);
    /** Move an evicted line into the victim buffer (when allowed). */
    bool retainVictim(const CacheEntry &e);
    /** Serve a demand miss from the victim buffer, if retained. */
    bool reinstallVictim(unsigned line, unsigned table,
                         const SetOp &op);
    /** Flush one victim slot to memory (writeback/clean-evict). */
    void flushVictimSlot(CacheEntry &slot);
    /** Victim-buffer entries tenant `table` may occupy. */
    unsigned victimShare(unsigned table) const;
    void sendDown(PacketPtr pkt);
    void drainSendQueue();
    void fetchLine(unsigned line, unsigned table, SetOp op);
    unsigned pendingOpCount() const;
    unsigned pendingOpCount(unsigned table) const;
    unsigned inFlightCount(unsigned table) const;

    /**
     * Entries of a shared buffer of `capacity` that one tenant may
     * occupy: the fair policy reserves one slot for every other
     * registered tenant, so a single busy engine can fill most —
     * but never all — of the buffer. Applied to both the pattern
     * buffer and the MSHR file.
     */
    unsigned fairShare(unsigned capacity) const;

    /**
     * The cap the arbiter enforces on tenant `table` for resource
     * `r`: the legacy fair share while every tenant carries the
     * default contract (bit-identical to pre-QoS behavior), the
     * weighted entitlement once any tenant sets a weight or floor.
     */
    unsigned shareLimit(unsigned table, PvQosArbiter::Resource r) const;

    Addr lineAddress(unsigned line) const
    {
        return region_.base() + Addr(line) * kBlockBytes;
    }

    PvProxyParams params_;
    PvRegionLayout region_;
    std::vector<Engine> engines_;
    PvQosArbiter qos_;
    /** PVCache entries held per tenant (occupancy charging). */
    std::vector<unsigned> cacheOcc_;
    /** Victim-buffer entries held per tenant. */
    std::vector<unsigned> victimOcc_;
    MemDevice *memSide_ = nullptr;

    std::vector<CacheEntry> entries_;
    std::vector<CacheEntry> victims_;
    std::vector<InFlight> inFlight_;
    std::deque<PacketPtr> sendQueue_;
    bool drainScheduled_ = false;
    uint64_t touchCounter_ = 0;
};

} // namespace pvsim

#endif // PVSIM_CORE_PV_PROXY_HH
