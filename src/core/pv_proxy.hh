/**
 * @file
 * The PVProxy (paper Section 2.2): the on-chip mediator between an
 * optimization engine and its in-memory PVTable. Holds a small
 * fully-associative PVCache of table sets (one 64-byte line each),
 * an MSHR file for in-flight set fetches, a pattern buffer staging
 * pending operations while their set is fetched, and an evict buffer
 * for dirty lines on their way to the L2.
 *
 * All PVProxy memory traffic is made of ordinary requests injected
 * at the L2 ("on the backside of the L1"); the hierarchy is
 * oblivious to what it is caching.
 */

#ifndef PVSIM_CORE_PV_PROXY_HH
#define PVSIM_CORE_PV_PROXY_HH

#include <array>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "core/pv_layout.hh"
#include "mem/packet.hh"
#include "mem/port.hh"
#include "sim/sim_object.hh"
#include "stats/stat.hh"

namespace pvsim {

/** PVProxy configuration (paper Section 4.6 final design). */
struct PvProxyParams {
    std::string name = "pvproxy";
    /** PVCache entries; the paper settles on eight (Section 4.3). */
    unsigned pvCacheEntries = 8;
    /** Outstanding set fetches. */
    unsigned mshrs = 4;
    /** Dirty lines buffered toward the L2. */
    unsigned evictBufferEntries = 4;
    /** Pending operations staged while sets are in flight. */
    unsigned patternBufferEntries = 16;
    /** Bits of each packed line that hold live data (storage acct). */
    unsigned usedBitsPerLine = 473;
};

/**
 * Mutable view of one cached PVTable line handed to operations.
 * `dirty` must be set by operations that modify the bytes; `ages`
 * is sideband per-way recency metadata that lives only while the
 * line is in the PVCache (the packed line's trailing bits stay
 * unused, as in the paper's Figure 3a).
 */
struct PvLineView {
    uint8_t *bytes;
    bool *dirty;
    std::array<uint8_t, 16> *ages;
};

/** The proxy. */
class PvProxy : public SimObject, public MemClient
{
  public:
    /**
     * An operation against one table set. Runs exactly once, either
     * immediately (PVCache hit / functional mode) or when the set
     * arrives from the memory hierarchy. If the proxy must drop the
     * operation (buffers full), it runs with view.bytes == nullptr —
     * the engine then sees a predictor miss (paper Section 2.2).
     */
    using SetOp = std::function<void(PvLineView view)>;

    PvProxy(SimContext &ctx, const PvProxyParams &params,
            const PvTableLayout &layout);

    /** Connect the level the proxy injects requests into (the L2). */
    void setMemSide(MemDevice *dev) { memSide_ = dev; }

    /**
     * Perform op on the line of table set `set`, fetching it from
     * the memory hierarchy on a PVCache miss.
     */
    void access(unsigned set, SetOp op);

    /** Write back all dirty lines and drop clean ones. */
    void flush();

    /** True when nothing is in flight (timing mode draining). */
    bool quiesced() const
    {
        return inFlight_.empty() && sendQueue_.empty();
    }

    const PvTableLayout &layout() const { return layout_; }
    const PvProxyParams &params() const { return params_; }

    // MemClient
    void recvResponse(PacketPtr pkt) override;
    std::string clientName() const override { return name(); }

    /**
     * Dedicated on-chip storage, itemized as in paper Section 4.6.
     * All values in bits.
     */
    struct StorageBreakdown {
        uint64_t pvCacheData = 0;
        uint64_t tags = 0;
        uint64_t dirtyBits = 0;
        uint64_t mshrs = 0;
        uint64_t evictBuffer = 0;
        uint64_t patternBuffer = 0;

        uint64_t
        totalBits() const
        {
            return pvCacheData + tags + dirtyBits + mshrs +
                   evictBuffer + patternBuffer;
        }

        double totalBytes() const { return totalBits() / 8.0; }
    };

    StorageBreakdown storageBreakdown() const;

    // Statistics
    stats::Scalar operations;
    stats::Scalar pvCacheHits;
    stats::Scalar pvCacheMisses;
    stats::Scalar memRequests;   ///< set fetches sent to the L2
    stats::Scalar coalescedOps;  ///< ops joining an in-flight fetch
    stats::Scalar droppedOps;    ///< ops dropped (reported as miss)
    stats::Scalar fills;
    stats::Scalar writebacks;    ///< dirty lines sent to the L2
    stats::Scalar cleanEvicts;   ///< clean lines silently dropped
    stats::Scalar evictOverflows;

  private:
    struct CacheEntry {
        bool valid = false;
        unsigned set = 0;
        bool dirty = false;
        uint64_t lastTouch = 0;
        std::array<uint8_t, kBlockBytes> bytes{};
        std::array<uint8_t, 16> ages{};
    };

    struct InFlight {
        unsigned set = 0;
        std::vector<SetOp> pendingOps;
    };

    CacheEntry *findEntry(unsigned set);
    CacheEntry &allocateEntry(unsigned set);
    void applyOp(CacheEntry &e, const SetOp &op);
    void dropOp(const SetOp &op);
    void evictEntry(CacheEntry &e);
    void sendDown(PacketPtr pkt);
    void drainSendQueue();
    void fetchSet(unsigned set, SetOp op);
    unsigned pendingOpCount() const;

    PvProxyParams params_;
    PvTableLayout layout_;
    MemDevice *memSide_ = nullptr;

    std::vector<CacheEntry> entries_;
    std::vector<InFlight> inFlight_;
    std::deque<PacketPtr> sendQueue_;
    bool drainScheduled_ = false;
    uint64_t touchCounter_ = 0;
};

} // namespace pvsim

#endif // PVSIM_CORE_PV_PROXY_HH
