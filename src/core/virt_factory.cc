/**
 * @file
 * The engine factory: the one translation point from a generic
 * registry entry (VirtEngineConfig) to a concrete Virt* adapter.
 * Harnesses iterate their registry and call makeEngine(); nothing
 * outside this file constructs an adapter from a config, so adding
 * a fifth engine kind is a case here plus the enum value.
 */

#include "core/virt_agt.hh"
#include "core/virt_btb.hh"
#include "core/virt_engine.hh"
#include "core/virt_pht.hh"
#include "core/virt_stride.hh"
#include "util/logging.hh"

namespace pvsim {

std::unique_ptr<VirtEngine>
makeEngine(VirtEngineKind kind, const VirtEngineConfig &cfg,
           PvProxy &proxy)
{
    switch (kind) {
      case VirtEngineKind::Pht:
        return std::make_unique<VirtualizedPht>(
            proxy, cfg.scopeName(), cfg.numSets, cfg.assoc, cfg.qos);
      case VirtEngineKind::Btb:
        return std::make_unique<VirtualizedBtb>(
            proxy, cfg.scopeName(), cfg.numSets, cfg.assoc,
            cfg.tagBits, cfg.qos);
      case VirtEngineKind::Stride: {
        VirtStrideParams sp;
        sp.numSets = cfg.numSets;
        sp.assoc = cfg.assoc;
        sp.tagBits = cfg.tagBits;
        return std::make_unique<VirtualizedStride>(
            proxy, cfg.scopeName(), sp, cfg.qos);
      }
      case VirtEngineKind::Agt: {
        VirtAgtParams ap;
        ap.numSets = cfg.numSets;
        ap.assoc = cfg.assoc;
        ap.tagBits = cfg.tagBits;
        return std::make_unique<VirtualizedAgt>(
            proxy, cfg.scopeName(), ap, cfg.qos);
      }
    }
    pv_assert(false, "unknown VirtEngineKind %d", int(kind));
    return nullptr;
}

} // namespace pvsim
