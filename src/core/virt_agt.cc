#include "core/virt_agt.hh"

#include "util/bitfield.hh"

namespace pvsim {

namespace {

constexpr unsigned kPayloadBits = 54;

PvSetCodec
agtCodec(const VirtAgtParams &p)
{
    return PvSetCodec(p.assoc, p.tagBits, kPayloadBits);
}

} // anonymous namespace

VirtualizedAgt::VirtualizedAgt(PvProxy &proxy,
                               const std::string &name,
                               const VirtAgtParams &params,
                               const PvTenantQos &qos)
    : VirtEngine(proxy, name, agtCodec(params), params.numSets,
                 qos),
      geom_(), blockBudget_(std::max(2u, params.blockBudget))
{
}

uint64_t
VirtualizedAgt::pack(PhtKey trigger, SpatialPattern pattern)
{
    return 1 |
           ((uint64_t(trigger) & mask(int(kKeyBits))) << 1) |
           (uint64_t(pattern) << (1 + kKeyBits));
}

PhtKey
VirtualizedAgt::triggerOf(uint64_t payload)
{
    return PhtKey((payload >> 1) & mask(int(kKeyBits)));
}

SpatialPattern
VirtualizedAgt::patternOf(uint64_t payload)
{
    return SpatialPattern(payload >> (1 + kKeyBits));
}

void
VirtualizedAgt::observe(Addr pc, Addr addr)
{
    const uint64_t key = geom_.regionTag(addr);
    const unsigned offset = geom_.blockOffset(addr);
    const PhtKey trigger = makePhtKey(pc, offset);
    table().mutate(key, [this, trigger, offset](bool found,
                                                uint64_t old) {
        if (!found) {
            // Triggering access: a fresh one-block generation (the
            // dedicated AGT's filter-table entry).
            ++generationsStarted;
            return pack(trigger, SpatialPattern(1) << offset);
        }
        SpatialPattern pattern =
            patternOf(old) | (SpatialPattern(1) << offset);
        if (unsigned(popCount(pattern)) >= blockBudget_) {
            // Budget reached: the generation completes. Deliver it
            // and restart the region with this access as the new
            // trigger.
            ++generationsEnded;
            if (sink_)
                sink_(triggerOf(old), pattern);
            ++generationsStarted;
            return pack(trigger, SpatialPattern(1) << offset);
        }
        return pack(triggerOf(old), pattern);
    });
}

SpatialPattern
VirtualizedAgt::patternFor(Addr addr)
{
    SpatialPattern result = 0;
    table().find(geom_.regionTag(addr),
                 [&result](bool found, uint64_t payload) {
        if (found)
            result = patternOf(payload);
    });
    return result;
}

} // namespace pvsim
