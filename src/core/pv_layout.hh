/**
 * @file
 * PVTable layout: how a virtualized predictor table maps into the
 * reserved physical address range (paper Sections 2.1 and 3.2.1).
 * One table set is packed into one cache-block-sized line so a
 * single L2 request delivers a whole set (Figure 3a); the memory
 * address of a set is PVStart + set * 64 (Figure 3b).
 */

#ifndef PVSIM_CORE_PV_LAYOUT_HH
#define PVSIM_CORE_PV_LAYOUT_HH

#include <cstdint>

#include "sim/types.hh"
#include "util/intmath.hh"
#include "util/logging.hh"

namespace pvsim {

/** Address mapping of one in-memory predictor table. */
class PvTableLayout
{
  public:
    /**
     * @param pv_start Base physical address (the PVStart register).
     * @param num_sets Sets in the virtualized table.
     */
    PvTableLayout(Addr pv_start, unsigned num_sets)
        : pvStart_(pv_start), numSets_(num_sets)
    {
        pv_assert(num_sets > 0, "PVTable needs at least one set");
        pv_assert((pv_start % kBlockBytes) == 0,
                  "PVStart must be block aligned");
    }

    Addr pvStart() const { return pvStart_; }
    unsigned numSets() const { return numSets_; }

    /** Total reserved memory footprint (paper: 64 KB per core). */
    uint64_t tableBytes() const
    {
        return uint64_t(numSets_) * kBlockBytes;
    }

    /**
     * Memory address of a set: the set index is padded with six
     * zeros (64-byte lines) and added to PVStart (Figure 3b).
     */
    Addr
    setAddress(unsigned set) const
    {
        pv_assert(set < numSets_, "set %u out of range", set);
        return pvStart_ + (Addr(set) << kBlockShift);
    }

    /** Inverse of setAddress (for stats/debugging). */
    unsigned
    setOf(Addr addr) const
    {
        pv_assert(contains(addr), "address outside PVTable");
        return unsigned((addr - pvStart_) >> kBlockShift);
    }

    /** True if addr falls inside this table's reservation. */
    bool
    contains(Addr addr) const
    {
        return addr >= pvStart_ && addr < pvStart_ + tableBytes();
    }

    /**
     * Map a table index (e.g. the 21-bit PHT key) to its set: the
     * low log2(numSets) bits, as in the paper's 10-bit set index.
     */
    unsigned indexToSet(uint64_t index) const
    {
        return unsigned(index % numSets_);
    }

  private:
    Addr pvStart_;
    unsigned numSets_;
};

/**
 * Carves one reserved PV physical region into per-table segments:
 * the multi-tenant extension of the paper's single PVStart register.
 * Each optimization engine registered with a PvProxy is allocated a
 * contiguous run of lines; segments never overlap, so distinct
 * table-ids can never alias each other's sets.
 */
class PvRegionLayout
{
  public:
    /**
     * @param base  First byte of the region (block aligned).
     * @param bytes Region capacity in bytes.
     */
    PvRegionLayout(Addr base, uint64_t bytes)
        : base_(base), bytes_(bytes)
    {
        pv_assert((base_ % kBlockBytes) == 0,
                  "PV region base must be block aligned");
        pv_assert(bytes_ >= kBlockBytes, "PV region too small");
    }

    Addr base() const { return base_; }
    uint64_t bytes() const { return bytes_; }
    uint64_t bytesUsed() const { return linesUsed_ * kBlockBytes; }
    uint64_t bytesFree() const { return bytes_ - bytesUsed(); }
    unsigned linesUsed() const { return linesUsed_; }

    /** Total lines the region can hold. */
    unsigned capacityLines() const
    {
        return unsigned(bytes_ / kBlockBytes);
    }

    /** Allocate the next num_sets-line segment as a table layout. */
    PvTableLayout
    allocate(unsigned num_sets)
    {
        pv_assert(uint64_t(linesUsed_) + num_sets <= capacityLines(),
                  "PV region overcommitted: %u + %u sets exceed %u "
                  "lines",
                  linesUsed_, num_sets, capacityLines());
        PvTableLayout seg(base_ + Addr(linesUsed_) * kBlockBytes,
                          num_sets);
        linesUsed_ += num_sets;
        return seg;
    }

    /** True if addr falls inside the region (used or not). */
    bool
    contains(Addr addr) const
    {
        return addr >= base_ && addr < base_ + bytes_;
    }

    /** Line index of an address within the region. */
    unsigned
    lineOf(Addr addr) const
    {
        pv_assert(contains(addr), "address outside PV region");
        return unsigned((addr - base_) >> kBlockShift);
    }

  private:
    Addr base_;
    uint64_t bytes_;
    unsigned linesUsed_ = 0;
};

} // namespace pvsim

#endif // PVSIM_CORE_PV_LAYOUT_HH
