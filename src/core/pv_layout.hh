/**
 * @file
 * PVTable layout: how a virtualized predictor table maps into the
 * reserved physical address range (paper Sections 2.1 and 3.2.1).
 * One table set is packed into one cache-block-sized line so a
 * single L2 request delivers a whole set (Figure 3a); the memory
 * address of a set is PVStart + set * 64 (Figure 3b).
 */

#ifndef PVSIM_CORE_PV_LAYOUT_HH
#define PVSIM_CORE_PV_LAYOUT_HH

#include <cstdint>

#include "sim/types.hh"
#include "util/intmath.hh"
#include "util/logging.hh"

namespace pvsim {

/** Address mapping of one in-memory predictor table. */
class PvTableLayout
{
  public:
    /**
     * @param pv_start Base physical address (the PVStart register).
     * @param num_sets Sets in the virtualized table.
     */
    PvTableLayout(Addr pv_start, unsigned num_sets)
        : pvStart_(pv_start), numSets_(num_sets)
    {
        pv_assert(num_sets > 0, "PVTable needs at least one set");
        pv_assert((pv_start % kBlockBytes) == 0,
                  "PVStart must be block aligned");
    }

    Addr pvStart() const { return pvStart_; }
    unsigned numSets() const { return numSets_; }

    /** Total reserved memory footprint (paper: 64 KB per core). */
    uint64_t tableBytes() const
    {
        return uint64_t(numSets_) * kBlockBytes;
    }

    /**
     * Memory address of a set: the set index is padded with six
     * zeros (64-byte lines) and added to PVStart (Figure 3b).
     */
    Addr
    setAddress(unsigned set) const
    {
        pv_assert(set < numSets_, "set %u out of range", set);
        return pvStart_ + (Addr(set) << kBlockShift);
    }

    /** Inverse of setAddress (for stats/debugging). */
    unsigned
    setOf(Addr addr) const
    {
        pv_assert(contains(addr), "address outside PVTable");
        return unsigned((addr - pvStart_) >> kBlockShift);
    }

    /** True if addr falls inside this table's reservation. */
    bool
    contains(Addr addr) const
    {
        return addr >= pvStart_ && addr < pvStart_ + tableBytes();
    }

    /**
     * Map a table index (e.g. the 21-bit PHT key) to its set: the
     * low log2(numSets) bits, as in the paper's 10-bit set index.
     */
    unsigned indexToSet(uint64_t index) const
    {
        return unsigned(index % numSets_);
    }

  private:
    Addr pvStart_;
    unsigned numSets_;
};

} // namespace pvsim

#endif // PVSIM_CORE_PV_LAYOUT_HH
