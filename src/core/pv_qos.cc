#include "core/pv_qos.hh"

#include <algorithm>
#include <numeric>

#include "util/logging.hh"

namespace pvsim {

void
PvQosArbiter::setCapacities(unsigned pvcache_entries, unsigned mshrs,
                            unsigned pattern_entries)
{
    caps_ = {{pvcache_entries, mshrs, pattern_entries}};
    recompute();
}

unsigned
PvQosArbiter::addTenant(const PvTenantQos &qos)
{
    tenants_.push_back(qos);
    entitlements_.emplace_back();
    recompute();
    return numTenants() - 1;
}

void
PvQosArbiter::setTenantQos(unsigned t, const PvTenantQos &qos)
{
    tenants_.at(t) = qos;
    recompute();
}

void
PvQosArbiter::recompute()
{
    active_ = false;
    for (const auto &q : tenants_)
        active_ = active_ || !q.isDefault();

    const unsigned n = numTenants();
    if (n == 0)
        return;

    // All-zero weights would leave the post-floor remainder
    // unownable; treat that degenerate contract set as equal
    // weights (the tenants asked for floors only).
    uint64_t weight_sum = 0;
    for (const auto &q : tenants_)
        weight_sum += q.weight;
    const bool all_zero = weight_sum == 0;
    auto weight_of = [&](unsigned t) -> uint64_t {
        return all_zero ? 1 : tenants_[t].weight;
    };
    if (all_zero)
        weight_sum = n;

    for (unsigned r = 0; r < NumResources; ++r) {
        const unsigned cap = caps_[r];
        auto floor_of = [&](unsigned t) -> uint64_t {
            switch (Resource(r)) {
              case PvCache: return tenants_[t].pvCacheFloor;
              case Mshrs: return tenants_[t].mshrFloor;
              case PatternBuffer:
                return tenants_[t].patternBufferFloor;
              default: return 0;
            }
        };

        // Floors, gracefully clamped: contracts promising more than
        // the capacity are scaled down proportionally rather than
        // rejected — a sweep may legitimately push floors past a
        // small smoke-sized proxy.
        uint64_t floor_sum = 0;
        for (unsigned t = 0; t < n; ++t)
            floor_sum += floor_of(t);
        std::vector<unsigned> floors(n, 0);
        for (unsigned t = 0; t < n; ++t) {
            uint64_t f = floor_of(t);
            if (floor_sum > cap)
                f = f * cap / floor_sum; // rounds down: sum <= cap
            floors[t] = unsigned(f);
        }

        uint64_t floored = std::accumulate(floors.begin(),
                                           floors.end(), uint64_t(0));
        pv_assert(floored <= cap, "floor clamp overflowed");
        const uint64_t remainder = cap - floored;

        // Weighted share of the remainder, rounded down...
        uint64_t assigned = 0;
        for (unsigned t = 0; t < n; ++t) {
            unsigned share =
                unsigned(remainder * weight_of(t) / weight_sum);
            entitlements_[t][r] = floors[t] + share;
            assigned += floors[t] + share;
        }
        // ... then the integer leftovers handed out one at a time
        // over the eligible tenants ordered by descending weight
        // (ties by registration order), cycling until none remain,
        // so entitlements sum to exactly the capacity. Zero-weight
        // tenants never receive leftovers: best effort means their
        // floors are all they own.
        std::vector<unsigned> order;
        for (unsigned t = 0; t < n; ++t) {
            if (weight_of(t) > 0)
                order.push_back(t);
        }
        std::stable_sort(order.begin(), order.end(),
                         [&](unsigned a, unsigned b) {
                             return weight_of(a) > weight_of(b);
                         });
        uint64_t leftover = cap - assigned;
        for (size_t i = 0; leftover > 0 && !order.empty(); ++i) {
            ++entitlements_[order[i % order.size()]][r];
            --leftover;
        }
    }
}

} // namespace pvsim
