/**
 * @file
 * Packing codec for PVTable lines (paper Figure 3a): all ways of one
 * predictor set — tag plus payload per entry — are packed
 * contiguously, bit-granular, into one 64-byte memory line. For the
 * virtualized SMS PHT that is 11 entries of 43 bits (11-bit tag +
 * 32-bit pattern) = 473 bits, with 39 trailing bits unused.
 *
 * An entry with a zero payload is "invalid": SMS only ever stores
 * patterns with at least two bits set, so zero is never a legal
 * stored pattern and doubles as the empty marker (this is also why a
 * zero-filled cold line decodes to an empty set).
 */

#ifndef PVSIM_CORE_PV_CODEC_HH
#define PVSIM_CORE_PV_CODEC_HH

#include <array>
#include <cstdint>
#include <vector>

#include "sim/types.hh"
#include "util/bitfield.hh"
#include "util/logging.hh"

namespace pvsim {

/** Upper bound on ways a packed set may have. */
constexpr unsigned kPvMaxWays = 16;

/** One decoded predictor entry. */
struct PvEntry {
    uint32_t tag = 0;
    uint64_t payload = 0; ///< e.g. the 32-bit spatial pattern

    bool valid() const { return payload != 0; }
};

/** A decoded set: fixed-capacity array of entries. */
struct PvSet {
    std::array<PvEntry, kPvMaxWays> ways;
    unsigned numWays = 0;

    /** Way holding tag, or -1. */
    int
    findTag(uint32_t tag) const
    {
        for (unsigned w = 0; w < numWays; ++w) {
            if (ways[w].valid() && ways[w].tag == tag)
                return int(w);
        }
        return -1;
    }

    /** First invalid way, or -1 if all are occupied. */
    int
    findFree() const
    {
        for (unsigned w = 0; w < numWays; ++w) {
            if (!ways[w].valid())
                return int(w);
        }
        return -1;
    }
};

/**
 * Bit-granular (de)serializer between PvSet and a 64-byte line.
 * Geometry is (ways, tagBits, payloadBits); entry i occupies bits
 * [i*entryBits, (i+1)*entryBits) with the tag in the low tagBits.
 */
class PvSetCodec
{
  public:
    PvSetCodec(unsigned ways, unsigned tag_bits,
               unsigned payload_bits)
        : ways_(ways), tagBits_(tag_bits), payloadBits_(payload_bits)
    {
        pv_assert(ways_ > 0 && ways_ <= kPvMaxWays,
                  "codec ways out of range");
        pv_assert(tagBits_ <= 32 && payloadBits_ <= 57 &&
                      payloadBits_ > 0,
                  "codec field widths out of range");
        pv_assert(usedBits() <= kBlockBytes * 8,
                  "set of %u x %u-bit entries does not fit a %u-byte "
                  "line",
                  ways_, entryBits(), kBlockBytes);
    }

    unsigned ways() const { return ways_; }
    unsigned tagBits() const { return tagBits_; }
    unsigned payloadBits() const { return payloadBits_; }
    unsigned entryBits() const { return tagBits_ + payloadBits_; }
    unsigned usedBits() const { return ways_ * entryBits(); }
    unsigned unusedBits() const { return kBlockBytes * 8 - usedBits(); }

    /** Decode a 64-byte line into entries. */
    PvSet
    decode(const uint8_t *line) const
    {
        PvSet set;
        set.numWays = ways_;
        BitSpan span(const_cast<uint8_t *>(line), kBlockBytes);
        for (unsigned w = 0; w < ways_; ++w) {
            size_t base = size_t(w) * entryBits();
            set.ways[w].tag =
                uint32_t(span.read(base, int(tagBits_ ? tagBits_ : 1)));
            if (tagBits_ == 0)
                set.ways[w].tag = 0;
            set.ways[w].payload =
                span.read(base + tagBits_, int(payloadBits_));
        }
        return set;
    }

    /** Encode entries into a 64-byte line (unused bits zeroed). */
    void
    encode(const PvSet &set, uint8_t *line) const
    {
        pv_assert(set.numWays == ways_, "set/codec way mismatch");
        for (unsigned i = 0; i < kBlockBytes; ++i)
            line[i] = 0;
        BitSpan span(line, kBlockBytes);
        for (unsigned w = 0; w < ways_; ++w) {
            size_t base = size_t(w) * entryBits();
            if (tagBits_ > 0)
                span.write(base, int(tagBits_), set.ways[w].tag);
            span.write(base + tagBits_, int(payloadBits_),
                       set.ways[w].payload);
        }
    }

  private:
    unsigned ways_;
    unsigned tagBits_;
    unsigned payloadBits_;
};

} // namespace pvsim

#endif // PVSIM_CORE_PV_CODEC_HH
