#include "core/virt_engine.hh"

namespace pvsim {

const char *
virtEngineKindName(VirtEngineKind kind)
{
    switch (kind) {
      case VirtEngineKind::Pht: return "pht";
      case VirtEngineKind::Btb: return "btb";
      case VirtEngineKind::Stride: return "stride";
      case VirtEngineKind::Agt: return "agt";
    }
    return "unknown";
}

std::unique_ptr<PvProxy>
VirtEngine::makeSingleTenantProxy(SimContext &ctx,
                                  PvProxyParams params,
                                  Addr pv_start, unsigned num_sets)
{
    params.usedBitsPerLine = 0; // the tenant reports its codec
    return std::make_unique<PvProxy>(
        ctx, params, pv_start, uint64_t(num_sets) * kBlockBytes);
}

VirtEngine::VirtEngine(PvProxy &proxy, const std::string &name,
                       const PvSetCodec &codec, unsigned num_sets,
                       const PvTenantQos &qos)
    : proxy_(&proxy), name_(name), codec_(codec),
      tableId_(proxy.registerEngine(
          {name, num_sets, codec.usedBits(), qos})),
      table_(&proxy, tableId_, codec_)
{
}

VirtEngine::VirtEngine(std::unique_ptr<PvProxy> proxy,
                       const std::string &name,
                       const PvSetCodec &codec, unsigned num_sets)
    : VirtEngine(*proxy, name, codec, num_sets)
{
    owned_ = std::move(proxy);
}

} // namespace pvsim
