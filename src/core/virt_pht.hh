/**
 * @file
 * The virtualized SMS Pattern History Table (paper Section 3.2):
 * the PHT stored in main memory behind a PVProxy, packed 11 entries
 * (11-bit tag + 32-bit pattern = 43 bits each) per 64-byte line.
 * Plugs into SmsPrefetcher wherever a dedicated SetAssocPht would —
 * the optimization engine is unchanged. A VirtEngine adapter: it can
 * share a multi-tenant proxy with other virtualized structures or
 * own a private one.
 */

#ifndef PVSIM_CORE_VIRT_PHT_HH
#define PVSIM_CORE_VIRT_PHT_HH

#include <memory>

#include "core/virt_engine.hh"
#include "prefetch/pht.hh"

namespace pvsim {

/** Virtualized PHT configuration. */
struct VirtPhtParams {
    /** Table geometry; the paper virtualizes 1K sets x 11 ways. */
    unsigned numSets = 1024;
    unsigned assoc = 11;
    /** PVProxy sizing (paper Section 4.6); owning ctor only. */
    PvProxyParams proxy;
};

/** PatternHistoryTable backed by the memory hierarchy. */
class VirtualizedPht : public PatternHistoryTable, public VirtEngine
{
  public:
    /**
     * Register as a tenant of a shared, externally owned proxy
     * (whose memory side must already be or later be connected).
     *
     * @param proxy    The shared per-core PVProxy.
     * @param name     Engine/stats name (e.g. "pht").
     * @param num_sets Table sets.
     * @param assoc    Entries per set.
     * @param qos      Tenant QoS contract (default: fair share).
     */
    VirtualizedPht(PvProxy &proxy, const std::string &name,
                   unsigned num_sets, unsigned assoc,
                   const PvTenantQos &qos = {});

    /**
     * Own a private single-tenant proxy (the seed's original shape).
     *
     * @param ctx      Simulation context (for the internal proxy).
     * @param params   Geometry and proxy sizing.
     * @param pv_start This core's PVStart register value.
     *
     * Call proxy().setMemSide(l2) before use.
     */
    VirtualizedPht(SimContext &ctx, const VirtPhtParams &params,
                   Addr pv_start);

    // PatternHistoryTable
    void lookup(PhtKey key, LookupCallback cb) override;
    void insert(PhtKey key, SpatialPattern pattern) override;

    /**
     * Dedicated on-chip storage: just the PVProxy (the PVTable
     * itself lives in memory). This is the paper's 889 bytes; when
     * the proxy is shared the figure covers all tenants.
     */
    uint64_t storageBits() const override
    {
        return proxyStorageBits();
    }

    std::string phtName() const override;
    std::string kindName() const override { return "pht"; }

    /** Entry width in bits (43 for the paper's geometry). */
    unsigned entryBits() const { return codec().entryBits(); }
};

} // namespace pvsim

#endif // PVSIM_CORE_VIRT_PHT_HH
