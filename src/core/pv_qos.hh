/**
 * @file
 * Per-tenant QoS for the multi-tenant PVProxy: the paper's core bet
 * is that many predictors can share one virtualized backing store
 * without destroying each other's latency (Section 4.3); the static
 * fair-share reservation protects tenants only symmetrically. This
 * arbiter generalizes it to configurable weights plus optional hard
 * floors per shared resource — PVCache entries, proxy MSHR slots,
 * and pattern-buffer entries — in the spirit of utility-based cache
 * partitioning for shared LLCs (Qureshi & Patt, MICRO 2006): each
 * tenant is entitled to its floor plus a weight-proportional share
 * of the remainder, entitlements always summing to exactly the
 * capacity, and the proxy charges occupancy per tenant to enforce
 * them.
 *
 * A tenant whose every knob is default (weight 1, no floors) is a
 * "default" tenant; while *all* tenants are default the arbiter
 * stays inactive and the proxy runs the legacy fair-share policy
 * bit-for-bit — equal-weight configurations and single-tenant
 * systems reproduce the pre-QoS behavior exactly.
 */

#ifndef PVSIM_CORE_PV_QOS_HH
#define PVSIM_CORE_PV_QOS_HH

#include <array>
#include <vector>

namespace pvsim {

/**
 * QoS contract of one proxy tenant. Weight 0 marks a best-effort
 * tenant: it is entitled only to its floors (none by default), so
 * under contention its misses drop — it is starved, never
 * deadlocked, because dropped operations still complete as
 * predictor misses.
 */
struct PvTenantQos {
    /** Proportional share of each shared resource's remainder
     *  (after floors). The default weight of 1 makes all-default
     *  proxies split resources evenly — the legacy policy. */
    unsigned weight = 1;
    /** Guaranteed PVCache entries (0 = no guarantee). */
    unsigned pvCacheFloor = 0;
    /** Guaranteed proxy MSHR slots. */
    unsigned mshrFloor = 0;
    /** Guaranteed pattern-buffer entries. */
    unsigned patternBufferFloor = 0;

    bool
    isDefault() const
    {
        return weight == 1 && pvCacheFloor == 0 && mshrFloor == 0 &&
               patternBufferFloor == 0;
    }
};

/**
 * The arbiter: owns every tenant's QoS contract and turns (weights,
 * floors, capacity) into per-tenant entitlements for each shared
 * proxy resource. Pure bookkeeping — the proxy asks for
 * entitlements and applies them to its own admission and eviction
 * decisions.
 */
class PvQosArbiter
{
  public:
    enum Resource : unsigned {
        PvCache = 0,
        Mshrs = 1,
        PatternBuffer = 2,
        NumResources = 3,
    };

    /** Capacities of the three shared resources (from the proxy
     *  params). Call before the first addTenant(). */
    void setCapacities(unsigned pvcache_entries, unsigned mshrs,
                       unsigned pattern_entries);

    /** Register one tenant's contract; returns its index (the
     *  proxy's table-id, by construction). */
    unsigned addTenant(const PvTenantQos &qos);

    /** Replace tenant t's contract (e.g. between warmup and
     *  measurement); entitlements are recomputed immediately and
     *  occupancy converges through normal eviction/admission. */
    void setTenantQos(unsigned t, const PvTenantQos &qos);

    const PvTenantQos &
    tenantQos(unsigned t) const
    {
        return tenants_.at(t);
    }

    unsigned numTenants() const { return unsigned(tenants_.size()); }

    /**
     * True once any tenant carries a non-default contract. While
     * false, the proxy must keep the legacy fair-share policy — the
     * bit-identity guarantee for default configurations.
     */
    bool active() const { return active_; }

    /**
     * Slots of resource r tenant t is entitled to hold: its
     * (clamped) floor plus its weight's share of the remaining
     * capacity. Entitlements over all tenants sum to exactly the
     * capacity, so strict enforcement can never deadlock the proxy.
     */
    unsigned
    entitlement(unsigned t, Resource r) const
    {
        return entitlements_.at(t)[r];
    }

  private:
    void recompute();

    std::vector<PvTenantQos> tenants_;
    std::array<unsigned, NumResources> caps_{{0, 0, 0}};
    std::vector<std::array<unsigned, NumResources>> entitlements_;
    bool active_ = false;
};

} // namespace pvsim

#endif // PVSIM_CORE_PV_QOS_HH
