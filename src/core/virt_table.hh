/**
 * @file
 * Generic virtualized set-associative table: the reusable heart of
 * Predictor Virtualization. Maps keys to packed in-memory sets
 * through a (possibly shared, multi-tenant) PvProxy, with tag
 * matching, in-set replacement driven by sideband recency (the
 * packed line's trailing bits stay unused, as the paper leaves
 * them), and write-allocate dirty tracking.
 *
 * VirtualizedPht (the paper's case study), VirtualizedBtb and
 * VirtualizedStride (the paper's future-work suggestions) are thin
 * VirtEngine adapters over this class, demonstrating that PV is "a
 * general framework for emulating otherwise impractical to
 * implement predictors" (Section 5).
 */

#ifndef PVSIM_CORE_VIRT_TABLE_HH
#define PVSIM_CORE_VIRT_TABLE_HH

#include <functional>

#include "core/pv_codec.hh"
#include "core/pv_proxy.hh"
#include "util/bitfield.hh"

namespace pvsim {

/** Key-addressed associative table living in the memory hierarchy. */
class VirtualizedAssocTable
{
  public:
    /** Result delivery for find(); fires exactly once. */
    using FindCallback =
        std::function<void(bool found, uint64_t payload)>;

    /**
     * Transform for mutate(): receives the current payload (0 when
     * the key is absent) and returns the new payload, or 0 to leave
     * the table unchanged.
     */
    using MutateFn = std::function<uint64_t(bool found, uint64_t old)>;

    /**
     * @param proxy    The PVProxy fronting this table's segment. Not
     *                 owned; one proxy may serve many tables.
     * @param table_id This table's tenant id from registerEngine().
     * @param codec    Packing geometry (ways, tagBits, payloadBits).
     *
     * The table has proxy->engineLayout(table_id).numSets() sets; a
     * key maps to set (key % numSets) with tag (key / numSets).
     */
    VirtualizedAssocTable(PvProxy *proxy, unsigned table_id,
                          const PvSetCodec &codec)
        : proxy_(proxy), tableId_(table_id), codec_(codec)
    {
        pv_assert(proxy_ != nullptr, "table needs a proxy");
        pv_assert(table_id < proxy->numEngines(),
                  "table-id %u not registered with the proxy",
                  table_id);
        // The PvLineView sideband recency array is sized kPvMaxWays;
        // the codec constructor enforces the same ceiling, but keep
        // the coupling explicit here where the ages array is used.
        pv_assert(codec_.ways() <= kPvMaxWays,
                  "codec ways exceed the sideband recency capacity");
    }

    unsigned numSets() const
    {
        return proxy_->engineLayout(tableId_).numSets();
    }
    unsigned ways() const { return codec_.ways(); }
    unsigned tableId() const { return tableId_; }
    const PvSetCodec &codec() const { return codec_; }
    PvProxy &proxy() { return *proxy_; }

    /**
     * Retrieve the payload for key. A dropped operation (proxy
     * buffers full) reports "not found", as the paper allows.
     */
    void
    find(uint64_t key, FindCallback cb)
    {
        unsigned set = setOf(key);
        uint32_t tag = tagOf(key);
        proxy_->access({tableId_, set, PvReqClass::Demand,
                        [this, tag, cb = std::move(cb)](PvLineView view) {
            if (!view.bytes) {
                cb(false, 0);
                return;
            }
            PvSet s = codec_.decode(view.bytes);
            int way = s.findTag(tag);
            if (way < 0) {
                cb(false, 0);
                return;
            }
            touch(*view.ages, unsigned(way));
            cb(true, s.ways[way].payload);
        }});
    }

    /**
     * Store payload for key (insert or update). @pre payload != 0
     * (zero is the invalid-entry marker). Dropped silently when the
     * proxy's buffers are full — predictor updates are advisory.
     */
    void
    store(uint64_t key, uint64_t payload)
    {
        pv_assert(payload != 0, "zero payload is the empty marker");
        mutate(key, [payload](bool, uint64_t) { return payload; });
    }

    /**
     * Read-modify-write in one proxy operation: fn sees the current
     * payload for key (0 when absent) and returns the new one (0 to
     * leave the set untouched). Dropped silently under buffer
     * pressure, like store().
     */
    void
    mutate(uint64_t key, MutateFn fn)
    {
        unsigned set = setOf(key);
        uint32_t tag = tagOf(key);
        proxy_->access({tableId_, set, PvReqClass::Demand,
                        [this, tag, fn = std::move(fn)](PvLineView view) {
            if (!view.bytes)
                return; // dropped: the update is lost, harmlessly
            PvSet s = codec_.decode(view.bytes);
            int way = s.findTag(tag);
            uint64_t old = way >= 0 ? s.ways[way].payload : 0;
            uint64_t next = fn(way >= 0, old);
            if (next == 0)
                return;
            if (way < 0)
                way = s.findFree();
            if (way < 0)
                way = victimWay(*view.ages);
            if (next != old || s.ways[way].tag != tag) {
                s.ways[way].tag = tag;
                s.ways[way].payload = next;
                codec_.encode(s, view.bytes);
                *view.dirty = true;
            }
            touch(*view.ages, unsigned(way));
        }});
    }

    unsigned setOf(uint64_t key) const
    {
        return unsigned(key % numSets());
    }

    uint32_t
    tagOf(uint64_t key) const
    {
        return uint32_t((key / numSets()) &
                        mask(int(codec_.tagBits())));
    }

  private:
    /** Recency update: way becomes youngest, everyone else ages. */
    void
    touch(std::array<uint8_t, kPvMaxWays> &ages, unsigned way) const
    {
        for (unsigned w = 0; w < codec_.ways(); ++w) {
            if (ages[w] < 0xff)
                ++ages[w];
        }
        ages[way] = 0;
    }

    /** Oldest way (ties resolved toward way 0). */
    unsigned
    victimWay(const std::array<uint8_t, kPvMaxWays> &ages) const
    {
        unsigned best = 0;
        for (unsigned w = 1; w < codec_.ways(); ++w) {
            if (ages[w] > ages[best])
                best = w;
        }
        return best;
    }

    PvProxy *proxy_;
    unsigned tableId_;
    PvSetCodec codec_;
};

} // namespace pvsim

#endif // PVSIM_CORE_VIRT_TABLE_HH
