/**
 * @file
 * Virtualized stride predictor: a reference-prediction-table-style
 * PC-indexed stride table stored in main memory behind a PVProxy.
 * The third VirtEngine adapter (after the PHT and BTB), and the
 * template for every future "virtualize another structure" change:
 * pick a packing, register with the shared proxy, adapt the two or
 * three engine operations — about a hundred lines.
 *
 * Packed entry payload (43 bits, zero = empty as everywhere in PV):
 *   [0]      live marker, always 1 for a stored entry
 *   [28:1]   last accessed block number, low 28 bits
 *   [40:29]  last observed block stride, biased by +2048 (12 bits)
 *   [42:41]  2-bit confidence counter
 */

#ifndef PVSIM_CORE_VIRT_STRIDE_HH
#define PVSIM_CORE_VIRT_STRIDE_HH

#include <functional>
#include <memory>

#include "core/virt_engine.hh"

namespace pvsim {

/** Virtualized stride-table configuration. */
struct VirtStrideParams {
    unsigned numSets = 512;
    unsigned assoc = 8;
    unsigned tagBits = 14;
    /** Confirmations required before predicting. */
    unsigned threshold = 2;
    /** PVProxy sizing; owning ctor only. */
    PvProxyParams proxy;
};

/** PC -> (last block, stride, confidence) predictor in memory. */
class VirtualizedStride : public VirtEngine
{
  public:
    /** Fires once: confident prediction of the next block address. */
    using PredictCallback =
        std::function<void(bool confident, Addr next_block)>;

    /** Register as a tenant of a shared, externally owned proxy. */
    VirtualizedStride(PvProxy &proxy, const std::string &name,
                      const VirtStrideParams &params,
                      const PvTenantQos &qos = {});

    /** Own a private single-tenant proxy. */
    VirtualizedStride(SimContext &ctx, const VirtStrideParams &params,
                      Addr pv_start);

    /**
     * Train on one (pc, data address) observation: one
     * read-modify-write operation against the shared proxy.
     */
    void observe(Addr pc, Addr addr);

    /**
     * Predict the next block the instruction at pc will touch.
     * Reports not-confident when the entry is absent, still
     * training, or the operation was dropped under buffer pressure.
     */
    void predict(Addr pc, PredictCallback cb);

    std::string kindName() const override { return "stride"; }

    unsigned threshold() const { return threshold_; }

  private:
    static uint64_t keyOf(Addr pc) { return pc >> 2; }

    // Payload field boundaries (see file header).
    static constexpr unsigned kBlockLowBits = 28;
    static constexpr unsigned kStrideBits = 12;
    static constexpr int64_t kStrideBias = 2048;

    static uint64_t pack(uint64_t block_low, int64_t stride,
                         unsigned confidence);
    static uint64_t blockLowOf(uint64_t payload);
    static int64_t strideOf(uint64_t payload);
    static unsigned confidenceOf(uint64_t payload);

    unsigned threshold_;
};

} // namespace pvsim

#endif // PVSIM_CORE_VIRT_STRIDE_HH
