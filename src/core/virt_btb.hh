/**
 * @file
 * Virtualized Branch Target Buffer: the paper's future-work
 * suggestion ("we expect that there are other existing predictors,
 * such as branch target prediction, that will naturally benefit from
 * predictor virtualization", Section 6), built on the same generic
 * VirtualizedAssocTable as the PHT to show the framework's
 * generality.
 *
 * Geometry: 8 entries of (16-bit tag + 46-bit target) = 62 bits each
 * = 496 bits per 64-byte line, sets configurable.
 */

#ifndef PVSIM_CORE_VIRT_BTB_HH
#define PVSIM_CORE_VIRT_BTB_HH

#include <functional>
#include <memory>

#include "core/virt_table.hh"

namespace pvsim {

/** Virtualized BTB configuration. */
struct VirtBtbParams {
    unsigned numSets = 2048;
    unsigned assoc = 8;
    unsigned tagBits = 16;
    PvProxyParams proxy;
};

/** Branch PC -> target predictor backed by the memory hierarchy. */
class VirtualizedBtb
{
  public:
    using LookupCallback =
        std::function<void(bool found, Addr target)>;

    VirtualizedBtb(SimContext &ctx, const VirtBtbParams &params,
                   Addr pv_start);

    /** Predict the target of the branch at pc. */
    void lookup(Addr pc, LookupCallback cb);

    /** Learn/refresh a branch target. @pre target != 0. */
    void update(Addr pc, Addr target);

    PvProxy &proxy() { return *proxy_; }
    uint64_t storageBits() const
    {
        return proxy_->storageBreakdown().totalBits();
    }

    /** In-memory footprint of the virtualized table. */
    uint64_t tableBytes() const
    {
        return proxy_->layout().tableBytes();
    }

  private:
    /** Branch PCs are (at least) 4-byte aligned. */
    static uint64_t keyOf(Addr pc) { return pc >> 2; }

    VirtBtbParams params_;
    PvSetCodec codec_;
    std::unique_ptr<PvProxy> proxy_;
    VirtualizedAssocTable table_;
};

} // namespace pvsim

#endif // PVSIM_CORE_VIRT_BTB_HH
