/**
 * @file
 * Virtualized Branch Target Buffer: the paper's future-work
 * suggestion ("we expect that there are other existing predictors,
 * such as branch target prediction, that will naturally benefit from
 * predictor virtualization", Section 6), built as a VirtEngine over
 * the same VirtualizedAssocTable as the PHT to show the framework's
 * generality — and able to share one multi-tenant PVProxy with it.
 *
 * Geometry: 8 entries of (16-bit tag + 46-bit target) = 62 bits each
 * = 496 bits per 64-byte line, sets configurable.
 */

#ifndef PVSIM_CORE_VIRT_BTB_HH
#define PVSIM_CORE_VIRT_BTB_HH

#include <functional>
#include <memory>

#include "core/virt_engine.hh"
#include "cpu/btb.hh"

namespace pvsim {

/** Virtualized BTB configuration. */
struct VirtBtbParams {
    unsigned numSets = 2048;
    unsigned assoc = 8;
    unsigned tagBits = 16;
    /** PVProxy sizing; owning ctor only. */
    PvProxyParams proxy;
};

/** Branch PC -> target predictor backed by the memory hierarchy. */
class VirtualizedBtb : public VirtEngine, public BtbPredictor
{
  public:
    using LookupCallback = BtbPredictor::LookupCallback;

    /** Register as a tenant of a shared, externally owned proxy. */
    VirtualizedBtb(PvProxy &proxy, const std::string &name,
                   unsigned num_sets, unsigned assoc,
                   unsigned tag_bits, const PvTenantQos &qos = {});

    /** Own a private single-tenant proxy (original shape). */
    VirtualizedBtb(SimContext &ctx, const VirtBtbParams &params,
                   Addr pv_start);

    /**
     * Predict the target of the branch at pc. In timing mode the
     * callback may fire later (after the PV line fills) or report
     * not-found when the proxy drops the operation.
     */
    void lookup(Addr pc, LookupCallback cb) override;

    /** Learn/refresh a branch target. @pre target != 0. */
    void update(Addr pc, Addr target) override;

    std::string kindName() const override { return "btb"; }

    uint64_t storageBits() const { return proxyStorageBits(); }

  private:
    /** Branch PCs are (at least) 4-byte aligned. */
    static uint64_t keyOf(Addr pc) { return pc >> 2; }
};

} // namespace pvsim

#endif // PVSIM_CORE_VIRT_BTB_HH
