/**
 * @file
 * Virtualized Active Generation Table: the SMS structure the paper
 * leaves in SRAM (Section 3.1's filter + accumulation tables),
 * virtualized as one more VirtEngine tenant — with the PHT and BTB
 * adapters, every SMS table can now live behind the shared proxy.
 * The fourth adapter, and the heaviest read-modify-write tenant:
 * every observed access is one VirtualizedAssocTable::mutate against
 * the shared proxy (the PHT reads-then-stores, the BTB mostly
 * stores; the AGT accumulates in place).
 *
 * Semantics differ from the dedicated AGT in one honest way: the
 * dedicated table ends a generation when one of its blocks leaves
 * the L1 (an event the cache wires to the SMS listener); a
 * virtualized tenant driven from the core's reference stream has no
 * eviction feed, so generations end either by *block budget* (the
 * accumulated pattern reaching a configured population — dense
 * generations complete and re-trigger; sparse ones play the filter
 * table's role and die quietly) or by set-conflict replacement in
 * the virtualized table (the entry simply disappears, as PV's
 * advisory-data contract allows). Completed generations are
 * delivered to an optional sink as (PhtKey, SpatialPattern),
 * exactly like the dedicated AGT.
 *
 * Packed entry payload (54 bits, zero = empty as everywhere in PV):
 *   [0]      live marker, always 1 for a stored entry
 *   [21:1]   trigger PhtKey (16 pc bits + 5 offset bits)
 *   [53:22]  accumulated spatial pattern (32 bits)
 */

#ifndef PVSIM_CORE_VIRT_AGT_HH
#define PVSIM_CORE_VIRT_AGT_HH

#include <functional>

#include "core/virt_engine.hh"
#include "prefetch/pht.hh"
#include "prefetch/region.hh"

namespace pvsim {

/** Virtualized AGT configuration. */
struct VirtAgtParams {
    /** Small, like the dedicated AGT (paper: "less than 1 KB"). */
    unsigned numSets = 32;
    unsigned assoc = 4;
    unsigned tagBits = 12;
    /** Distinct blocks after which a generation completes. */
    unsigned blockBudget = 8;
};

/** Region -> in-flight spatial generation, in the memory hierarchy. */
class VirtualizedAgt : public VirtEngine
{
  public:
    /** Fired when a generation ends with >= 2 accessed blocks. */
    using GenerationSink =
        std::function<void(PhtKey key, SpatialPattern pattern)>;

    /** Register as a tenant of a shared, externally owned proxy. */
    VirtualizedAgt(PvProxy &proxy, const std::string &name,
                   const VirtAgtParams &params,
                   const PvTenantQos &qos = {});

    /** Completed generations go here (optional; default: dropped). */
    void setSink(GenerationSink sink) { sink_ = std::move(sink); }

    /**
     * Observe one demand reference: one read-modify-write operation
     * against the shared proxy. Starts, extends, completes (at the
     * touch budget) or restarts the region's generation.
     */
    void observe(Addr pc, Addr addr);

    /** Accumulated pattern of addr's region (0 when absent/dropped;
     *  functional-mode introspection for tests). */
    SpatialPattern patternFor(Addr addr);

    std::string kindName() const override { return "agt"; }

    const RegionGeometry &geometry() const { return geom_; }

    // Statistics (in addition to the proxy's per-tenant scope).
    uint64_t generationsEnded = 0;   ///< delivered to the sink
    uint64_t generationsStarted = 0; ///< fresh entries written

  private:
    // Payload field boundaries (see file header).
    static constexpr unsigned kKeyBits = kPhtKeyBits; // 21
    static constexpr unsigned kPatternBits = 32;

    static uint64_t pack(PhtKey trigger, SpatialPattern pattern);
    static PhtKey triggerOf(uint64_t payload);
    static SpatialPattern patternOf(uint64_t payload);

    RegionGeometry geom_;
    GenerationSink sink_;
    unsigned blockBudget_;
};

} // namespace pvsim

#endif // PVSIM_CORE_VIRT_AGT_HH
