#include "core/virt_stride.hh"

#include "util/bitfield.hh"

namespace pvsim {

namespace {

constexpr unsigned kPayloadBits = 43;

PvSetCodec
strideCodec(const VirtStrideParams &p)
{
    return PvSetCodec(p.assoc, p.tagBits, kPayloadBits);
}

} // anonymous namespace

VirtualizedStride::VirtualizedStride(PvProxy &proxy,
                                     const std::string &name,
                                     const VirtStrideParams &params,
                                     const PvTenantQos &qos)
    : VirtEngine(proxy, name, strideCodec(params), params.numSets,
                 qos),
      threshold_(params.threshold)
{
}

VirtualizedStride::VirtualizedStride(SimContext &ctx,
                                     const VirtStrideParams &params,
                                     Addr pv_start)
    : VirtEngine(makeSingleTenantProxy(ctx, params.proxy, pv_start,
                                       params.numSets),
                 "stride", strideCodec(params), params.numSets),
      threshold_(params.threshold)
{
}

uint64_t
VirtualizedStride::pack(uint64_t block_low, int64_t stride,
                        unsigned confidence)
{
    uint64_t biased = uint64_t(stride + kStrideBias) &
                      mask(int(kStrideBits));
    return 1 | ((block_low & mask(int(kBlockLowBits))) << 1) |
           (biased << (1 + kBlockLowBits)) |
           (uint64_t(confidence & 0x3)
            << (1 + kBlockLowBits + kStrideBits));
}

uint64_t
VirtualizedStride::blockLowOf(uint64_t payload)
{
    return (payload >> 1) & mask(int(kBlockLowBits));
}

int64_t
VirtualizedStride::strideOf(uint64_t payload)
{
    return int64_t((payload >> (1 + kBlockLowBits)) &
                   mask(int(kStrideBits))) -
           kStrideBias;
}

unsigned
VirtualizedStride::confidenceOf(uint64_t payload)
{
    return unsigned(payload >> (1 + kBlockLowBits + kStrideBits)) &
           0x3;
}

void
VirtualizedStride::observe(Addr pc, Addr addr)
{
    uint64_t block = blockNumber(addr);
    uint64_t block_low = block & mask(int(kBlockLowBits));
    table().mutate(keyOf(pc), [block_low](bool found, uint64_t old) {
        if (!found)
            return pack(block_low, 0, 0);
        int64_t stride =
            int64_t(block_low) - int64_t(blockLowOf(old));
        if (stride == 0)
            return old; // same block: nothing new learned
        if (stride <= -kStrideBias || stride >= kStrideBias)
            return pack(block_low, 0, 0); // out of packing range
        unsigned conf = confidenceOf(old);
        if (stride == strideOf(old))
            conf = conf < 3 ? conf + 1 : 3;
        else
            conf = 0;
        return pack(block_low, stride, conf);
    });
}

void
VirtualizedStride::predict(Addr pc, PredictCallback cb)
{
    table().find(keyOf(pc),
                 [this, cb = std::move(cb)](bool found,
                                            uint64_t payload) {
        if (!found) {
            cb(false, 0);
            return;
        }
        int64_t stride = strideOf(payload);
        if (stride == 0 || confidenceOf(payload) < threshold_) {
            cb(false, 0);
            return;
        }
        // Only the low 28 block bits are stored: a predicted block
        // outside [0, 2^28) left the reconstructible window, so
        // report no confidence rather than a wrapped address.
        int64_t next_block = int64_t(blockLowOf(payload)) + stride;
        if (next_block < 0 ||
            uint64_t(next_block) > mask(int(kBlockLowBits))) {
            cb(false, 0);
            return;
        }
        cb(true, Addr(next_block) << kBlockShift);
    });
}

} // namespace pvsim
