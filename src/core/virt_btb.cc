#include "core/virt_btb.hh"

namespace pvsim {

namespace {

PvProxyParams
proxyParamsFor(const VirtBtbParams &p)
{
    PvProxyParams pp = p.proxy;
    pp.usedBitsPerLine = p.assoc * (p.tagBits + 46);
    return pp;
}

} // anonymous namespace

VirtualizedBtb::VirtualizedBtb(SimContext &ctx,
                               const VirtBtbParams &params,
                               Addr pv_start)
    : params_(params), codec_(params.assoc, params.tagBits, 46),
      proxy_(std::make_unique<PvProxy>(
          ctx, proxyParamsFor(params),
          PvTableLayout(pv_start, params.numSets))),
      table_(proxy_.get(), codec_)
{
}

void
VirtualizedBtb::lookup(Addr pc, LookupCallback cb)
{
    table_.find(keyOf(pc), [cb = std::move(cb)](bool found,
                                                uint64_t payload) {
        cb(found, Addr(payload) << 2);
    });
}

void
VirtualizedBtb::update(Addr pc, Addr target)
{
    pv_assert(target != 0, "zero target is the empty marker");
    table_.store(keyOf(pc), target >> 2);
}

} // namespace pvsim
