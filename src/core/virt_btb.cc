#include "core/virt_btb.hh"

namespace pvsim {

namespace {

/** 46 target bits cover a 48-bit VA space of 4-byte-aligned PCs. */
constexpr unsigned kTargetBits = 46;

PvSetCodec
btbCodec(unsigned assoc, unsigned tag_bits)
{
    return PvSetCodec(assoc, tag_bits, kTargetBits);
}

} // anonymous namespace

VirtualizedBtb::VirtualizedBtb(PvProxy &proxy,
                               const std::string &name,
                               unsigned num_sets, unsigned assoc,
                               unsigned tag_bits,
                               const PvTenantQos &qos)
    : VirtEngine(proxy, name, btbCodec(assoc, tag_bits), num_sets,
                 qos)
{
}

VirtualizedBtb::VirtualizedBtb(SimContext &ctx,
                               const VirtBtbParams &params,
                               Addr pv_start)
    : VirtEngine(makeSingleTenantProxy(ctx, params.proxy, pv_start,
                                       params.numSets),
                 "btb", btbCodec(params.assoc, params.tagBits),
                 params.numSets)
{
}

void
VirtualizedBtb::lookup(Addr pc, LookupCallback cb)
{
    table().find(keyOf(pc),
                 [this, cb = std::move(cb)](bool found,
                                            uint64_t payload) {
        noteLookup(found);
        cb(found, Addr(payload) << 2);
    });
}

void
VirtualizedBtb::update(Addr pc, Addr target)
{
    pv_assert(target != 0, "zero target is the empty marker");
    table().store(keyOf(pc), target >> 2);
}

} // namespace pvsim
