#include "core/pv_proxy.hh"

#include <algorithm>

#include "mem/packet_pool.hh"
#include "util/intmath.hh"
#include "util/logging.hh"

namespace pvsim {

PvProxy::EngineStats::EngineStats(stats::Group *parent,
                                  const std::string &name)
    : stats::Group(parent, name),
      operations(this, "operations",
                 "store/retrieve operations from this engine"),
      hits(this, "hits", "operations hitting the PVCache"),
      misses(this, "misses", "operations missing the PVCache"),
      drops(this, "drops",
            "operations dropped and reported as predictor miss"),
      qosDrops(this, "qos_drops",
               "operations dropped by the share policy "
               "(fair-share or weighted QoS)"),
      fills(this, "fills", "sets fetched for this engine"),
      writebacks(this, "writebacks",
                 "dirty lines of this engine written to the L2"),
      fillLatencyTicks(this, "fill_latency_ticks",
                       "ticks this engine's fills spent between "
                       "fetch issue and PVCache install"),
      pvCachePeak(this, "pvcache_peak",
                  "most PVCache entries held at once")
{
}

PvProxy::PvProxy(SimContext &ctx, const PvProxyParams &params,
                 Addr region_start, uint64_t region_bytes)
    : SimObject(ctx, nullptr, params.name),
      operations(this, "operations",
                 "store/retrieve operations from all engines"),
      pvCacheHits(this, "pvcache_hits", "operations hitting the PVCache"),
      pvCacheMisses(this, "pvcache_misses",
                    "operations missing the PVCache"),
      memRequests(this, "mem_requests", "set fetches sent to the L2"),
      coalescedOps(this, "coalesced_ops",
                   "operations joining an in-flight fetch"),
      droppedOps(this, "dropped_ops",
                 "operations dropped and reported as predictor miss"),
      fairnessDrops(this, "fairness_drops",
                    "operations dropped by the fair-share policy"),
      fills(this, "fills", "sets installed in the PVCache"),
      writebacks(this, "writebacks", "dirty lines written to the L2"),
      cleanEvicts(this, "clean_evicts",
                  "clean lines discarded on eviction"),
      evictOverflows(this, "evict_overflows",
                     "evictions exceeding the evict buffer"),
      params_(params), region_(region_start, region_bytes)
{
    pv_assert(params_.pvCacheEntries > 0, "PVCache needs entries");
    entries_.resize(params_.pvCacheEntries);
    qos_.setCapacities(params_.pvCacheEntries, params_.mshrs,
                       params_.patternBufferEntries);
}

PvProxy::PvProxy(SimContext &ctx, const PvProxyParams &params,
                 const PvTableLayout &layout)
    : PvProxy(ctx, params, layout.pvStart(), layout.tableBytes())
{
    registerEngine({"table0", layout.numSets(),
                    params.usedBitsPerLine, {}});
}

unsigned
PvProxy::registerEngine(const PvEngineInfo &info)
{
    pv_assert(info.numSets > 0, "engine needs at least one set");
    for (const auto &e : engines_) {
        pv_assert(e.info.name != info.name,
                  "duplicate tenant name '%s' on proxy %s",
                  info.name.c_str(), name().c_str());
    }
    unsigned table = numEngines();
    Engine e{info, region_.allocate(info.numSets),
             std::make_unique<EngineStats>(this, info.name)};
    engines_.push_back(std::move(e));
    qos_.addTenant(info.qos);
    cacheOcc_.push_back(0);
    return table;
}

PvProxy::CacheEntry *
PvProxy::findEntry(unsigned line)
{
    for (auto &e : entries_) {
        if (e.valid && e.line == line)
            return &e;
    }
    return nullptr;
}

void
PvProxy::evictEntry(CacheEntry &e)
{
    if (!e.valid)
        return;
    if (e.dirty) {
        // Dirty predictor lines are sent to the memory hierarchy
        // like any other data (paper Section 2.2).
        if (sendQueue_.size() >= params_.evictBufferEntries)
            ++evictOverflows;
        auto *wb = allocPacket(MemCmd::Writeback, lineAddress(e.line),
                               kInvalidCore);
        wb->isPv = true;
        wb->coherent = false;
        wb->setData(e.bytes.data());
        ++writebacks;
        ++engineStats(e.table).writebacks;
        sendDown(wb);
    } else {
        ++cleanEvicts;
    }
    e.valid = false;
    e.dirty = false;
    pv_assert(cacheOcc_[e.table] > 0, "PVCache occupancy underflow");
    --cacheOcc_[e.table];
}

PvProxy::CacheEntry *
PvProxy::pickVictim(unsigned table)
{
    // LRU over the valid entries satisfying pred (nullptr if none).
    auto lru_among = [this](auto pred) -> CacheEntry * {
        CacheEntry *v = nullptr;
        for (auto &e : entries_) {
            if (e.valid && pred(e) &&
                (!v || e.lastTouch < v->lastTouch))
                v = &e;
        }
        return v;
    };

    if (!qos_.active() || numEngines() < 2) {
        // Legacy policy: global LRU over the shared PVCache.
        return lru_among([](const CacheEntry &) { return true; });
    }

    // Weighted partitioning: a tenant under its entitlement
    // reclaims the LRU line of whichever tenant is over its own
    // (one must exist: entitlements sum to the capacity); a tenant
    // at or over its entitlement replaces within its own lines.
    const unsigned ent =
        qos_.entitlement(table, PvQosArbiter::PvCache);
    if (cacheOcc_[table] < ent) {
        CacheEntry *v = lru_among([this](const CacheEntry &e) {
            return cacheOcc_[e.table] >
                   qos_.entitlement(e.table, PvQosArbiter::PvCache);
        });
        if (v)
            return v;
    }
    if (CacheEntry *v = lru_among([table](const CacheEntry &e) {
            return e.table == table;
        }))
        return v;
    // Transient corner after a contract change mid-flight (the
    // tenant owns no lines and nobody is over-entitled): fall back
    // to global LRU rather than fail.
    return lru_among([](const CacheEntry &) { return true; });
}

PvProxy::CacheEntry &
PvProxy::allocateEntry(unsigned line, unsigned table)
{
    CacheEntry *victim = nullptr;
    for (auto &e : entries_) {
        if (!e.valid) {
            victim = &e;
            break;
        }
    }
    if (!victim) {
        victim = pickVictim(table);
        evictEntry(*victim);
    }
    victim->valid = true;
    victim->line = line;
    victim->table = table;
    victim->dirty = false;
    victim->lastTouch = ++touchCounter_;
    victim->bytes.fill(0);
    victim->ages.fill(0xff); // everything "old" until touched
    ++cacheOcc_[table];
    EngineStats &es = engineStats(table);
    if (cacheOcc_[table] > es.pvCachePeak.value())
        es.pvCachePeak.set(cacheOcc_[table]);
    return *victim;
}

void
PvProxy::applyOp(CacheEntry &e, const SetOp &op)
{
    e.lastTouch = ++touchCounter_;
    // Refresh the high-watermark on hits too: a stats reset zeroes
    // the peak while the tenant's lines stay resident, and a
    // well-protected working set may never allocate again during
    // the measurement phase.
    EngineStats &es = engineStats(e.table);
    if (cacheOcc_[e.table] > es.pvCachePeak.value())
        es.pvCachePeak.set(cacheOcc_[e.table]);
    PvLineView view{e.bytes.data(), &e.dirty, &e.ages};
    op(view);
}

void
PvProxy::dropOp(unsigned table, const SetOp &op, bool fairness)
{
    ++droppedOps;
    ++engineStats(table).drops;
    if (fairness) {
        ++fairnessDrops;
        ++engineStats(table).qosDrops;
    }
    PvLineView view{nullptr, nullptr, nullptr};
    op(view);
}

unsigned
PvProxy::pendingOpCount() const
{
    unsigned n = 0;
    for (const auto &f : inFlight_)
        n += unsigned(f.pendingOps.size());
    return n;
}

unsigned
PvProxy::pendingOpCount(unsigned table) const
{
    unsigned n = 0;
    for (const auto &f : inFlight_) {
        if (f.table == table)
            n += unsigned(f.pendingOps.size());
    }
    return n;
}

unsigned
PvProxy::inFlightCount(unsigned table) const
{
    unsigned n = 0;
    for (const auto &f : inFlight_) {
        if (f.table == table)
            ++n;
    }
    return n;
}

unsigned
PvProxy::fairShare(unsigned capacity) const
{
    // Static reservation: one slot per other tenant, but never more
    // than half the buffer — a lone busy engine must keep a usable
    // share even on a proxy with many registered (idle) tenants.
    unsigned others = numEngines() > 0 ? numEngines() - 1 : 0;
    unsigned reserve = std::min(others, capacity / 2);
    return capacity - reserve;
}

unsigned
PvProxy::shareLimit(unsigned table, PvQosArbiter::Resource r) const
{
    if (qos_.active())
        return qos_.entitlement(table, r);
    switch (r) {
      case PvQosArbiter::PvCache:
        return params_.pvCacheEntries;
      case PvQosArbiter::Mshrs:
        return fairShare(params_.mshrs);
      case PvQosArbiter::PatternBuffer:
      default:
        return fairShare(params_.patternBufferEntries);
    }
}

void
PvProxy::access(unsigned table, unsigned set, SetOp op)
{
    pv_assert(table < numEngines(), "table-id %u not registered",
              table);
    Engine &eng = engines_[table];
    pv_assert(set < eng.layout.numSets(), "set %u out of range for %s",
              set, eng.info.name.c_str());
    ++operations;
    ++eng.stats->operations;

    unsigned line = region_.lineOf(eng.layout.setAddress(set));
    if (CacheEntry *e = findEntry(line)) {
        ++pvCacheHits;
        ++eng.stats->hits;
        applyOp(*e, op);
        return;
    }
    ++pvCacheMisses;
    ++eng.stats->misses;

    if (shareLimit(table, PvQosArbiter::PvCache) == 0) {
        // A best-effort tenant entitled to no PVCache entries never
        // allocates: every miss is a predictor miss (starved, not
        // deadlocked — the callback still runs). Applies in both
        // modes, so starvation is mode-independent.
        dropOp(table, op, true);
        return;
    }

    if (!isTiming()) {
        // Functional mode: fetch synchronously through the
        // hierarchy, install, and run the operation.
        pv_assert(memSide_ != nullptr, "PVProxy has no memory side");
        ++memRequests;
        Packet pkt(MemCmd::ReadReq, lineAddress(line), kInvalidCore);
        pkt.isPv = true;
        pkt.coherent = false;
        memSide_->functionalAccess(pkt);
        CacheEntry &e = allocateEntry(line, table);
        if (pkt.hasData())
            e.bytes = *pkt.data;
        ++fills;
        ++eng.stats->fills;
        applyOp(e, op);
        return;
    }

    fetchLine(line, table, std::move(op));
}

void
PvProxy::fetchLine(unsigned line, unsigned table, SetOp op)
{
    // Join an in-flight fetch for the same line when possible.
    for (auto &f : inFlight_) {
        if (f.line == line) {
            if (pendingOpCount() >= params_.patternBufferEntries) {
                dropOp(table, op, false);
                return;
            }
            if (pendingOpCount(table) >=
                shareLimit(table, PvQosArbiter::PatternBuffer)) {
                dropOp(table, op, true);
                return;
            }
            ++coalescedOps;
            f.pendingOps.push_back(std::move(op));
            return;
        }
    }

    if (inFlight_.size() >= params_.mshrs ||
        pendingOpCount() >= params_.patternBufferEntries) {
        // No MSHR / pattern-buffer space: report a predictor miss
        // rather than stalling the engine (paper Section 2.2).
        dropOp(table, op, false);
        return;
    }
    if (inFlightCount(table) >=
            shareLimit(table, PvQosArbiter::Mshrs) ||
        pendingOpCount(table) >=
            shareLimit(table, PvQosArbiter::PatternBuffer)) {
        // This tenant already holds its share of the MSHR file or
        // pattern buffer — the legacy fair reservation, or its QoS
        // entitlement once any tenant carries weights/floors; the
        // remaining slots belong to the other tenants.
        dropOp(table, op, true);
        return;
    }

    inFlight_.push_back(InFlight{line, table, {}});
    inFlight_.back().pendingOps.push_back(std::move(op));

    ++memRequests;
    auto *pkt = allocPacket(MemCmd::ReadReq, lineAddress(line),
                            kInvalidCore);
    pkt->isPv = true;
    pkt->coherent = false;
    pkt->src = this;
    pkt->issueTick = curTick();
    sendDown(pkt);
}

void
PvProxy::sendDown(PacketPtr pkt)
{
    pv_assert(memSide_ != nullptr, "PVProxy has no memory side");
    if (!isTiming()) {
        memSide_->functionalAccess(*pkt);
        freePacket(pkt);
        return;
    }
    sendQueue_.push_back(pkt);
    drainSendQueue();
}

void
PvProxy::drainSendQueue()
{
    if (drainScheduled_)
        return;
    while (!sendQueue_.empty()) {
        PacketPtr head = sendQueue_.front();
        if (!memSide_->recvRequest(head))
            break;
        sendQueue_.pop_front();
    }
    if (!sendQueue_.empty()) {
        drainScheduled_ = true;
        schedule(1, [this] {
            drainScheduled_ = false;
            drainSendQueue();
        });
    }
}

void
PvProxy::recvResponse(PacketPtr pkt)
{
    unsigned line = region_.lineOf(blockAlign(pkt->addr));

    auto it = std::find_if(inFlight_.begin(), inFlight_.end(),
                           [line](const InFlight &f) {
                               return f.line == line;
                           });
    pv_assert(it != inFlight_.end(),
              "PVProxy response for line %u with no MSHR", line);

    unsigned table = it->table;
    std::vector<SetOp> ops;
    ops.swap(it->pendingOps);
    inFlight_.erase(it);

    CacheEntry &e = allocateEntry(line, table);
    if (pkt->hasData())
        e.bytes = *pkt->data;
    ++fills;
    ++engineStats(table).fills;
    engineStats(table).fillLatencyTicks +=
        curTick() - pkt->issueTick;
    freePacket(pkt);

    for (const SetOp &op : ops)
        applyOp(e, op);
}

void
PvProxy::flush()
{
    for (auto &e : entries_)
        evictEntry(e);
}

PvProxy::StorageBreakdown
PvProxy::storageBreakdown() const
{
    StorageBreakdown b;
    // PVCache data: only the live bits of each packed line count as
    // dedicated storage (473 bits per line for the 11-way PHT). A
    // shared PVCache line must hold the widest tenant's packing.
    unsigned used_bits = 0;
    for (const auto &e : engines_)
        used_bits = std::max(used_bits, e.info.usedBitsPerLine);
    if (used_bits == 0)
        used_bits = params_.usedBitsPerLine;
    b.pvCacheData = uint64_t(params_.pvCacheEntries) * used_bits;
    // One tag per PVCache entry identifies the region line it holds:
    // log2(lines) bits plus a valid bit (the line index encodes the
    // tenant, so no separate table-id field is needed).
    unsigned lines = std::max(region_.linesUsed(), 2u);
    unsigned tag_bits = unsigned(ceilLog2(lines)) + 1;
    b.tags = uint64_t(params_.pvCacheEntries) * tag_bits;
    b.dirtyBits = params_.pvCacheEntries;
    // Each MSHR: valid + line index + the full line address it is
    // fetching + per-op bookkeeping links into the pattern buffer.
    unsigned mshr_bits = 1 + unsigned(ceilLog2(lines)) + 42 +
                         4 * (1 + unsigned(ceilLog2(std::max(
                                      2u,
                                      params_.patternBufferEntries))));
    b.mshrs = uint64_t(params_.mshrs) * mshr_bits;
    // Evict buffer holds full lines.
    b.evictBuffer =
        uint64_t(params_.evictBufferEntries) * kBlockBytes * 8;
    // Pattern buffer stages one 32-bit pattern per pending op.
    b.patternBuffer = uint64_t(params_.patternBufferEntries) * 32;
    return b;
}

} // namespace pvsim
