#include "core/pv_proxy.hh"

#include <algorithm>

#include "mem/packet_pool.hh"
#include "util/intmath.hh"
#include "util/logging.hh"

namespace pvsim {

PvProxy::EngineStats::EngineStats(stats::Group *parent,
                                  const std::string &name)
    : stats::Group(parent, name),
      operations(this, "operations",
                 "store/retrieve operations from this engine"),
      hits(this, "hits", "operations hitting the PVCache"),
      misses(this, "misses", "operations missing the PVCache"),
      drops(this, "drops",
            "operations dropped and reported as predictor miss"),
      qosDrops(this, "qos_drops",
               "operations dropped by the share policy "
               "(fair-share or weighted QoS)"),
      fills(this, "fills", "demand sets fetched for this engine"),
      writebacks(this, "writebacks",
                 "dirty lines of this engine written to the L2"),
      fillLatencyTicks(this, "fill_latency_ticks",
                       "ticks this engine's demand fills spent "
                       "between fetch issue and PVCache install"),
      pvCachePeak(this, "pvcache_peak",
                  "most PVCache entries held at once"),
      prefetchFills(this, "prefetch_fills",
                    "speculative sets installed for this engine"),
      prefetchUseful(this, "prefetch_useful",
                     "prefetched lines later hit by a demand op"),
      prefetchDrops(this, "prefetch_drops",
                    "prefetches dropped by headroom/entitlement"),
      victimHits(this, "victim_hits",
                 "demand misses served from the victim buffer")
{
}

PvProxy::PvProxy(SimContext &ctx, const PvProxyParams &params,
                 Addr region_start, uint64_t region_bytes)
    : SimObject(ctx, nullptr, params.name),
      operations(this, "operations",
                 "store/retrieve operations from all engines"),
      pvCacheHits(this, "pvcache_hits", "operations hitting the PVCache"),
      pvCacheMisses(this, "pvcache_misses",
                    "operations missing the PVCache"),
      memRequests(this, "mem_requests", "set fetches sent to the L2"),
      coalescedOps(this, "coalesced_ops",
                   "operations joining an in-flight fetch"),
      droppedOps(this, "dropped_ops",
                 "operations dropped and reported as predictor miss"),
      fairnessDrops(this, "fairness_drops",
                    "operations dropped by the fair-share policy"),
      fills(this, "fills", "demand sets installed in the PVCache"),
      writebacks(this, "writebacks", "dirty lines written to the L2"),
      cleanEvicts(this, "clean_evicts",
                  "clean lines discarded on eviction"),
      evictOverflows(this, "evict_overflows",
                     "evictions exceeding the evict buffer"),
      prefetchFills(this, "prefetch_fills",
                    "speculative sets installed in the PVCache"),
      prefetchUseful(this, "prefetch_useful",
                     "prefetched lines later hit by a demand op"),
      prefetchDrops(this, "prefetch_drops",
                    "prefetches dropped by headroom/entitlement"),
      victimHits(this, "victim_hits",
                 "demand misses served from the victim buffer"),
      params_(params), region_(region_start, region_bytes)
{
    pv_assert(params_.pvCacheEntries > 0, "PVCache needs entries");
    entries_.resize(params_.pvCacheEntries);
    victims_.resize(params_.victimEntries);
    qos_.setCapacities(params_.pvCacheEntries, params_.mshrs,
                       params_.patternBufferEntries);
}

PvProxy::PvProxy(SimContext &ctx, const PvProxyParams &params,
                 const PvTableLayout &layout)
    : PvProxy(ctx, params, layout.pvStart(), layout.tableBytes())
{
    registerEngine({"table0", layout.numSets(),
                    params.usedBitsPerLine, {}});
}

unsigned
PvProxy::registerEngine(const PvEngineInfo &info)
{
    pv_assert(info.numSets > 0, "engine needs at least one set");
    for (const auto &e : engines_) {
        pv_assert(e.info.name != info.name,
                  "duplicate tenant name '%s' on proxy %s",
                  info.name.c_str(), name().c_str());
    }
    unsigned table = numEngines();
    Engine e{info, region_.allocate(info.numSets),
             std::make_unique<EngineStats>(this, info.name), {}};
    engines_.push_back(std::move(e));
    qos_.addTenant(info.qos);
    cacheOcc_.push_back(0);
    victimOcc_.push_back(0);
    return table;
}

PvProxy::CacheEntry *
PvProxy::findEntry(unsigned line)
{
    for (auto &e : entries_) {
        if (e.valid && e.line == line)
            return &e;
    }
    return nullptr;
}

void
PvProxy::evictEntry(CacheEntry &e, bool retain)
{
    if (!e.valid)
        return;
    if (retain && retainVictim(e)) {
        // Moved into the victim buffer: no memory traffic, and the
        // retained copy keeps the line's dirty state.
        e.valid = false;
        e.dirty = false;
        e.prefetched = false;
        pv_assert(cacheOcc_[e.table] > 0, "PVCache occupancy underflow");
        --cacheOcc_[e.table];
        return;
    }
    if (e.dirty) {
        // Dirty predictor lines are sent to the memory hierarchy
        // like any other data (paper Section 2.2).
        if (sendQueue_.size() >= params_.evictBufferEntries)
            ++evictOverflows;
        auto *wb = allocPacket(MemCmd::Writeback, lineAddress(e.line),
                               kInvalidCore);
        wb->isPv = true;
        wb->coherent = false;
        wb->setData(e.bytes.data());
        ++writebacks;
        ++engineStats(e.table).writebacks;
        sendDown(wb);
    } else {
        ++cleanEvicts;
    }
    e.valid = false;
    e.dirty = false;
    e.prefetched = false;
    pv_assert(cacheOcc_[e.table] > 0, "PVCache occupancy underflow");
    --cacheOcc_[e.table];
}

unsigned
PvProxy::victimShare(unsigned table) const
{
    unsigned cap = unsigned(victims_.size());
    if (cap == 0)
        return 0;
    if (!qos_.active())
        return cap;
    // Victim capacity is charged to the owning tenant's PVCache
    // entitlement share: a zero-entitlement tenant retains nothing,
    // and an aggressor cannot launder occupancy through the buffer.
    unsigned ent = qos_.entitlement(table, PvQosArbiter::PvCache);
    if (ent == 0)
        return 0;
    return std::max(1u, cap * ent / params_.pvCacheEntries);
}

bool
PvProxy::retainVictim(const CacheEntry &e)
{
    unsigned cap = victimShare(e.table);
    if (cap == 0)
        return false;

    auto lru_among = [this](auto pred) -> CacheEntry * {
        CacheEntry *v = nullptr;
        for (auto &s : victims_) {
            if (s.valid && pred(s) &&
                (!v || s.lastTouch < v->lastTouch))
                v = &s;
        }
        return v;
    };

    CacheEntry *slot = nullptr;
    for (auto &s : victims_) {
        if (!s.valid) {
            slot = &s;
            break;
        }
    }
    if (victimOcc_[e.table] >= cap) {
        // At its share: recycle the tenant's own coldest victim
        // rather than growing into other tenants' headroom.
        slot = lru_among([&e](const CacheEntry &s) {
            return s.table == e.table;
        });
    } else if (!slot) {
        slot = lru_among([](const CacheEntry &) { return true; });
    }
    pv_assert(slot != nullptr, "victim buffer bookkeeping broke");
    if (slot->valid)
        flushVictimSlot(*slot);
    *slot = e;
    slot->valid = true;
    slot->prefetched = false;
    ++victimOcc_[e.table];
    return true;
}

void
PvProxy::flushVictimSlot(CacheEntry &slot)
{
    if (!slot.valid)
        return;
    if (slot.dirty) {
        if (sendQueue_.size() >= params_.evictBufferEntries)
            ++evictOverflows;
        auto *wb = allocPacket(MemCmd::Writeback,
                               lineAddress(slot.line), kInvalidCore);
        wb->isPv = true;
        wb->coherent = false;
        wb->setData(slot.bytes.data());
        ++writebacks;
        ++engineStats(slot.table).writebacks;
        sendDown(wb);
    } else {
        ++cleanEvicts;
    }
    slot.valid = false;
    slot.dirty = false;
    pv_assert(victimOcc_[slot.table] > 0, "victim occupancy underflow");
    --victimOcc_[slot.table];
}

bool
PvProxy::reinstallVictim(unsigned line, unsigned table,
                         const SetOp &op)
{
    CacheEntry *v = nullptr;
    for (auto &s : victims_) {
        if (s.valid && s.line == line) {
            v = &s;
            break;
        }
    }
    if (!v)
        return false;
    pv_assert(v->table == table,
              "victim line %u owned by another tenant", line);
    CacheEntry saved = *v;
    v->valid = false;
    pv_assert(victimOcc_[table] > 0, "victim occupancy underflow");
    --victimOcc_[table];
    // Free the slot before allocating: the reinstall may evict a
    // PVCache line that wants this very victim slot.
    CacheEntry &e = allocateEntry(line, table);
    e.bytes = saved.bytes;
    e.ages = saved.ages;
    e.dirty = saved.dirty;
    ++victimHits;
    ++engineStats(table).victimHits;
    applyOp(e, op);
    return true;
}

PvProxy::CacheEntry *
PvProxy::pickVictim(unsigned table)
{
    // LRU over the valid entries satisfying pred (nullptr if none).
    auto lru_among = [this](auto pred) -> CacheEntry * {
        CacheEntry *v = nullptr;
        for (auto &e : entries_) {
            if (e.valid && pred(e) &&
                (!v || e.lastTouch < v->lastTouch))
                v = &e;
        }
        return v;
    };

    if (!qos_.active() || numEngines() < 2) {
        // Legacy policy: global LRU over the shared PVCache.
        return lru_among([](const CacheEntry &) { return true; });
    }

    // Weighted partitioning: a tenant under its entitlement
    // reclaims the LRU line of whichever tenant is over its own
    // (one must exist: entitlements sum to the capacity); a tenant
    // at or over its entitlement replaces within its own lines.
    const unsigned ent =
        qos_.entitlement(table, PvQosArbiter::PvCache);
    if (cacheOcc_[table] < ent) {
        CacheEntry *v = lru_among([this](const CacheEntry &e) {
            return cacheOcc_[e.table] >
                   qos_.entitlement(e.table, PvQosArbiter::PvCache);
        });
        if (v)
            return v;
    }
    if (CacheEntry *v = lru_among([table](const CacheEntry &e) {
            return e.table == table;
        }))
        return v;
    // Transient corner after a contract change mid-flight (the
    // tenant owns no lines and nobody is over-entitled): fall back
    // to global LRU rather than fail.
    return lru_among([](const CacheEntry &) { return true; });
}

PvProxy::CacheEntry &
PvProxy::allocateEntry(unsigned line, unsigned table)
{
    CacheEntry *victim = nullptr;
    for (auto &e : entries_) {
        if (!e.valid) {
            victim = &e;
            break;
        }
    }
    if (!victim) {
        victim = pickVictim(table);
        evictEntry(*victim, /*retain=*/true);
    }
    victim->valid = true;
    victim->line = line;
    victim->table = table;
    victim->dirty = false;
    victim->prefetched = false;
    victim->lastTouch = ++touchCounter_;
    victim->bytes.fill(0);
    victim->ages.fill(0xff); // everything "old" until touched
    ++cacheOcc_[table];
    EngineStats &es = engineStats(table);
    if (cacheOcc_[table] > es.pvCachePeak.value())
        es.pvCachePeak.set(cacheOcc_[table]);
    return *victim;
}

void
PvProxy::applyOp(CacheEntry &e, const SetOp &op)
{
    e.lastTouch = ++touchCounter_;
    // Refresh the high-watermark on hits too: a stats reset zeroes
    // the peak while the tenant's lines stay resident, and a
    // well-protected working set may never allocate again during
    // the measurement phase.
    EngineStats &es = engineStats(e.table);
    if (cacheOcc_[e.table] > es.pvCachePeak.value())
        es.pvCachePeak.set(cacheOcc_[e.table]);
    PvLineView view{e.bytes.data(), &e.dirty, &e.ages};
    op(view);
}

void
PvProxy::dropOp(unsigned table, const SetOp &op, bool fairness)
{
    ++droppedOps;
    ++engineStats(table).drops;
    if (fairness) {
        ++fairnessDrops;
        ++engineStats(table).qosDrops;
    }
    PvLineView view{nullptr, nullptr, nullptr};
    op(view);
}

unsigned
PvProxy::pendingOpCount() const
{
    unsigned n = 0;
    for (const auto &f : inFlight_)
        n += unsigned(f.pendingOps.size());
    return n;
}

unsigned
PvProxy::pendingOpCount(unsigned table) const
{
    unsigned n = 0;
    for (const auto &f : inFlight_) {
        if (f.table == table)
            n += unsigned(f.pendingOps.size());
    }
    return n;
}

unsigned
PvProxy::inFlightCount(unsigned table) const
{
    unsigned n = 0;
    for (const auto &f : inFlight_) {
        if (f.table == table)
            ++n;
    }
    return n;
}

unsigned
PvProxy::fairShare(unsigned capacity) const
{
    // Static reservation: one slot per other tenant, but never more
    // than half the buffer — a lone busy engine must keep a usable
    // share even on a proxy with many registered (idle) tenants.
    unsigned others = numEngines() > 0 ? numEngines() - 1 : 0;
    unsigned reserve = std::min(others, capacity / 2);
    return capacity - reserve;
}

unsigned
PvProxy::shareLimit(unsigned table, PvQosArbiter::Resource r) const
{
    if (qos_.active())
        return qos_.entitlement(table, r);
    switch (r) {
      case PvQosArbiter::PvCache:
        return params_.pvCacheEntries;
      case PvQosArbiter::Mshrs:
        return fairShare(params_.mshrs);
      case PvQosArbiter::PatternBuffer:
      default:
        return fairShare(params_.patternBufferEntries);
    }
}

void
PvProxy::access(PvRequest req)
{
    pv_assert(req.table < numEngines(), "table-id %u not registered",
              req.table);
    Engine &eng = engines_[req.table];
    pv_assert(req.set < eng.layout.numSets(),
              "set %u out of range for %s", req.set,
              eng.info.name.c_str());
    ++operations;
    ++eng.stats->operations;

    switch (req.cls) {
      case PvReqClass::Demand:
        pv_assert(req.op != nullptr, "Demand PvRequest needs an op");
        accessDemand(req.table, req.set, std::move(req.op));
        return;
      case PvReqClass::Prefetch:
        issuePrefetch(req.table, req.set);
        return;
      case PvReqClass::Writeback:
        writebackSet(req.table, req.set, req.op);
        return;
    }
}

void
PvProxy::accessDemand(unsigned table, unsigned set, SetOp op)
{
    Engine &eng = engines_[table];
    unsigned line = region_.lineOf(eng.layout.setAddress(set));
    if (CacheEntry *e = findEntry(line)) {
        ++pvCacheHits;
        ++eng.stats->hits;
        if (e->prefetched) {
            // First demand reference to a speculative fill.
            e->prefetched = false;
            ++prefetchUseful;
            ++eng.stats->prefetchUseful;
        }
        applyOp(*e, op);
        maybePrefetch(table, set);
        return;
    }
    ++pvCacheMisses;
    ++eng.stats->misses;

    if (shareLimit(table, PvQosArbiter::PvCache) == 0) {
        // A best-effort tenant entitled to no PVCache entries never
        // allocates: every miss is a predictor miss (starved, not
        // deadlocked — the callback still runs). Applies in both
        // modes, so starvation is mode-independent.
        dropOp(table, op, true);
        return;
    }

    if (!victims_.empty() && reinstallVictim(line, table, op)) {
        maybePrefetch(table, set);
        return;
    }

    if (!isTiming()) {
        // Functional mode: fetch synchronously through the
        // hierarchy, install, and run the operation.
        pv_assert(memSide_ != nullptr, "PVProxy has no memory side");
        ++memRequests;
        Packet pkt(MemCmd::ReadReq, lineAddress(line), kInvalidCore);
        pkt.isPv = true;
        pkt.coherent = false;
        memSide_->functionalAccess(pkt);
        CacheEntry &e = allocateEntry(line, table);
        if (pkt.hasData())
            e.bytes = *pkt.data;
        ++fills;
        ++eng.stats->fills;
        applyOp(e, op);
        maybePrefetch(table, set);
        return;
    }

    fetchLine(line, table, std::move(op));
    // Speculate only after the demand fetch has claimed its MSHR:
    // prefetches see post-demand occupancy by construction.
    maybePrefetch(table, set);
}

void
PvProxy::maybePrefetch(unsigned table, unsigned set)
{
    if (params_.prefetchDepth == 0)
        return;
    StrideState &st = engines_[table].stride;
    if (!st.seen) {
        st.seen = true;
        st.lastSet = set;
        return;
    }
    int stride = int(set) - int(st.lastSet);
    if (stride == 0) {
        // Same-set pairs (a find followed by its mutate) carry no
        // direction; keep the detector state for the next hop.
        return;
    }
    // Two flavors of sequential walk: an exact stride repeat
    // (regular table scan), or two short forward hops — real code
    // advances through variable-length basic blocks, so consecutive
    // set deltas are rarely equal even on a straight-line walk.
    const bool stable = stride == st.lastStride;
    const bool sequential =
        stride > 0 && stride <= kSequentialWindow &&
        st.lastStride > 0 && st.lastStride <= kSequentialWindow;
    st.lastStride = stride;
    st.lastSet = set;
    if (!stable && !sequential)
        return;
    const long num_sets = long(engines_[table].layout.numSets());
    for (unsigned k = 1; k <= params_.prefetchDepth; ++k) {
        long next = stable ? long(set) + long(stride) * long(k)
                           : long(set) + long(k);
        if (next < 0 || next >= num_sets)
            break;
        issuePrefetch(table, unsigned(next));
    }
}

void
PvProxy::issuePrefetch(unsigned table, unsigned set)
{
    Engine &eng = engines_[table];
    unsigned line = region_.lineOf(eng.layout.setAddress(set));
    if (findEntry(line))
        return;
    for (const auto &s : victims_) {
        if (s.valid && s.line == line)
            return;
    }
    for (const auto &f : inFlight_) {
        if (f.line == line)
            return;
    }
    if (shareLimit(table, PvQosArbiter::PvCache) == 0) {
        ++prefetchDrops;
        ++eng.stats->prefetchDrops;
        return;
    }
    if (!isTiming()) {
        pv_assert(memSide_ != nullptr, "PVProxy has no memory side");
        ++memRequests;
        Packet pkt(MemCmd::ReadReq, lineAddress(line), kInvalidCore);
        pkt.isPv = true;
        pkt.isPrefetch = true;
        pkt.coherent = false;
        memSide_->functionalAccess(pkt);
        CacheEntry &e = allocateEntry(line, table);
        if (pkt.hasData())
            e.bytes = *pkt.data;
        e.prefetched = true;
        ++prefetchFills;
        ++eng.stats->prefetchFills;
        return;
    }
    // Low-priority by construction: a speculative fetch never takes
    // the last free MSHR, and it is charged against the owning
    // tenant's MSHR entitlement — a zero-entitlement tenant's
    // prefetches drop first, and demand traffic always keeps
    // headroom.
    if (inFlight_.size() + 1 >= params_.mshrs ||
        inFlightCount(table) >=
            shareLimit(table, PvQosArbiter::Mshrs)) {
        ++prefetchDrops;
        ++eng.stats->prefetchDrops;
        return;
    }
    inFlight_.push_back(InFlight{line, table, PvReqClass::Prefetch, {}});
    ++memRequests;
    auto *pkt = allocPacket(MemCmd::ReadReq, lineAddress(line),
                            kInvalidCore);
    pkt->isPv = true;
    pkt->isPrefetch = true;
    pkt->coherent = false;
    pkt->src = this;
    pkt->issueTick = curTick();
    sendDown(pkt);
}

void
PvProxy::writebackSet(unsigned table, unsigned set, const SetOp &op)
{
    Engine &eng = engines_[table];
    unsigned line = region_.lineOf(eng.layout.setAddress(set));
    if (CacheEntry *e = findEntry(line)) {
        ++pvCacheHits;
        ++eng.stats->hits;
        if (op)
            applyOp(*e, op);
        // An explicit writeback bypasses victim retention: the
        // engine is telling us the line is done.
        evictEntry(*e, /*retain=*/false);
        return;
    }
    ++pvCacheMisses;
    ++eng.stats->misses;
    for (auto &s : victims_) {
        if (s.valid && s.line == line) {
            flushVictimSlot(s);
            break;
        }
    }
    if (op) {
        PvLineView view{nullptr, nullptr, nullptr};
        op(view);
    }
}

void
PvProxy::fetchLine(unsigned line, unsigned table, SetOp op)
{
    // Join an in-flight fetch for the same line when possible.
    for (auto &f : inFlight_) {
        if (f.line == line) {
            if (pendingOpCount() >= params_.patternBufferEntries) {
                dropOp(table, op, false);
                return;
            }
            if (pendingOpCount(table) >=
                shareLimit(table, PvQosArbiter::PatternBuffer)) {
                dropOp(table, op, true);
                return;
            }
            ++coalescedOps;
            f.pendingOps.push_back(std::move(op));
            return;
        }
    }

    if (inFlight_.size() >= params_.mshrs ||
        pendingOpCount() >= params_.patternBufferEntries) {
        // No MSHR / pattern-buffer space: report a predictor miss
        // rather than stalling the engine (paper Section 2.2).
        dropOp(table, op, false);
        return;
    }
    if (inFlightCount(table) >=
            shareLimit(table, PvQosArbiter::Mshrs) ||
        pendingOpCount(table) >=
            shareLimit(table, PvQosArbiter::PatternBuffer)) {
        // This tenant already holds its share of the MSHR file or
        // pattern buffer — the legacy fair reservation, or its QoS
        // entitlement once any tenant carries weights/floors; the
        // remaining slots belong to the other tenants.
        dropOp(table, op, true);
        return;
    }

    inFlight_.push_back(InFlight{line, table, PvReqClass::Demand, {}});
    inFlight_.back().pendingOps.push_back(std::move(op));

    ++memRequests;
    auto *pkt = allocPacket(MemCmd::ReadReq, lineAddress(line),
                            kInvalidCore);
    pkt->isPv = true;
    pkt->coherent = false;
    pkt->src = this;
    pkt->issueTick = curTick();
    sendDown(pkt);
}

void
PvProxy::sendDown(PacketPtr pkt)
{
    pv_assert(memSide_ != nullptr, "PVProxy has no memory side");
    if (!isTiming()) {
        memSide_->functionalAccess(*pkt);
        freePacket(pkt);
        return;
    }
    sendQueue_.push_back(pkt);
    drainSendQueue();
}

void
PvProxy::drainSendQueue()
{
    if (drainScheduled_)
        return;
    while (!sendQueue_.empty()) {
        PacketPtr head = sendQueue_.front();
        if (!memSide_->recvRequest(head))
            break;
        sendQueue_.pop_front();
    }
    if (!sendQueue_.empty()) {
        drainScheduled_ = true;
        schedule(1, [this] {
            drainScheduled_ = false;
            drainSendQueue();
        });
    }
}

void
PvProxy::recvResponse(PacketPtr pkt)
{
    unsigned line = region_.lineOf(blockAlign(pkt->addr));

    auto it = std::find_if(inFlight_.begin(), inFlight_.end(),
                           [line](const InFlight &f) {
                               return f.line == line;
                           });
    pv_assert(it != inFlight_.end(),
              "PVProxy response for line %u with no MSHR", line);

    unsigned table = it->table;
    PvReqClass cls = it->cls;
    std::vector<SetOp> ops;
    ops.swap(it->pendingOps);
    inFlight_.erase(it);

    CacheEntry &e = allocateEntry(line, table);
    if (pkt->hasData())
        e.bytes = *pkt->data;
    if (cls == PvReqClass::Prefetch) {
        ++prefetchFills;
        ++engineStats(table).prefetchFills;
        // Demand-fill latency stays undiluted: speculative fills
        // contribute no fill_latency_ticks.
        if (ops.empty()) {
            e.prefetched = true;
        } else {
            // A demand op coalesced onto the speculative fetch
            // while it was in flight: timely prefetch.
            ++prefetchUseful;
            ++engineStats(table).prefetchUseful;
        }
    } else {
        ++fills;
        ++engineStats(table).fills;
        engineStats(table).fillLatencyTicks +=
            curTick() - pkt->issueTick;
    }
    freePacket(pkt);

    for (const SetOp &op : ops)
        applyOp(e, op);
}

void
PvProxy::flush()
{
    for (auto &e : entries_)
        evictEntry(e, /*retain=*/false);
    for (auto &s : victims_)
        flushVictimSlot(s);
}

PvProxy::StorageBreakdown
PvProxy::storageBreakdown() const
{
    StorageBreakdown b;
    // PVCache data: only the live bits of each packed line count as
    // dedicated storage (473 bits per line for the 11-way PHT). A
    // shared PVCache line must hold the widest tenant's packing.
    unsigned used_bits = 0;
    for (const auto &e : engines_)
        used_bits = std::max(used_bits, e.info.usedBitsPerLine);
    if (used_bits == 0)
        used_bits = params_.usedBitsPerLine;
    b.pvCacheData = uint64_t(params_.pvCacheEntries) * used_bits;
    // One tag per PVCache entry identifies the region line it holds:
    // log2(lines) bits plus a valid bit (the line index encodes the
    // tenant, so no separate table-id field is needed).
    unsigned lines = std::max(region_.linesUsed(), 2u);
    unsigned tag_bits = unsigned(ceilLog2(lines)) + 1;
    b.tags = uint64_t(params_.pvCacheEntries) * tag_bits;
    b.dirtyBits = params_.pvCacheEntries;
    // Each MSHR: valid + line index + the full line address it is
    // fetching + per-op bookkeeping links into the pattern buffer.
    unsigned mshr_bits = 1 + unsigned(ceilLog2(lines)) + 42 +
                         4 * (1 + unsigned(ceilLog2(std::max(
                                      2u,
                                      params_.patternBufferEntries))));
    b.mshrs = uint64_t(params_.mshrs) * mshr_bits;
    // Evict buffer holds full lines.
    b.evictBuffer =
        uint64_t(params_.evictBufferEntries) * kBlockBytes * 8;
    // Pattern buffer stages one 32-bit pattern per pending op.
    b.patternBuffer = uint64_t(params_.patternBufferEntries) * 32;
    // Victim buffer holds full lines plus tag/dirty metadata.
    b.victimBuffer = uint64_t(params_.victimEntries) *
                     (kBlockBytes * 8 + tag_bits + 1);
    return b;
}

} // namespace pvsim
