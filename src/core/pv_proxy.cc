#include "core/pv_proxy.hh"

#include <algorithm>

#include "util/intmath.hh"
#include "util/logging.hh"

namespace pvsim {

PvProxy::PvProxy(SimContext &ctx, const PvProxyParams &params,
                 const PvTableLayout &layout)
    : SimObject(ctx, nullptr, params.name),
      operations(this, "operations",
                 "store/retrieve operations from the engine"),
      pvCacheHits(this, "pvcache_hits", "operations hitting the PVCache"),
      pvCacheMisses(this, "pvcache_misses",
                    "operations missing the PVCache"),
      memRequests(this, "mem_requests", "set fetches sent to the L2"),
      coalescedOps(this, "coalesced_ops",
                   "operations joining an in-flight fetch"),
      droppedOps(this, "dropped_ops",
                 "operations dropped and reported as predictor miss"),
      fills(this, "fills", "sets installed in the PVCache"),
      writebacks(this, "writebacks", "dirty lines written to the L2"),
      cleanEvicts(this, "clean_evicts",
                  "clean lines discarded on eviction"),
      evictOverflows(this, "evict_overflows",
                     "evictions exceeding the evict buffer"),
      params_(params), layout_(layout)
{
    pv_assert(params_.pvCacheEntries > 0, "PVCache needs entries");
    entries_.resize(params_.pvCacheEntries);
}

PvProxy::CacheEntry *
PvProxy::findEntry(unsigned set)
{
    for (auto &e : entries_) {
        if (e.valid && e.set == set)
            return &e;
    }
    return nullptr;
}

void
PvProxy::evictEntry(CacheEntry &e)
{
    if (!e.valid)
        return;
    if (e.dirty) {
        // Dirty predictor lines are sent to the memory hierarchy
        // like any other data (paper Section 2.2).
        if (sendQueue_.size() >= params_.evictBufferEntries)
            ++evictOverflows;
        auto *wb = new Packet(MemCmd::Writeback,
                              layout_.setAddress(e.set),
                              kInvalidCore);
        wb->isPv = true;
        wb->coherent = false;
        wb->setData(e.bytes.data());
        ++writebacks;
        sendDown(wb);
    } else {
        ++cleanEvicts;
    }
    e.valid = false;
    e.dirty = false;
}

PvProxy::CacheEntry &
PvProxy::allocateEntry(unsigned set)
{
    CacheEntry *victim = nullptr;
    for (auto &e : entries_) {
        if (!e.valid) {
            victim = &e;
            break;
        }
    }
    if (!victim) {
        victim = &entries_[0];
        for (auto &e : entries_) {
            if (e.lastTouch < victim->lastTouch)
                victim = &e;
        }
        evictEntry(*victim);
    }
    victim->valid = true;
    victim->set = set;
    victim->dirty = false;
    victim->lastTouch = ++touchCounter_;
    victim->bytes.fill(0);
    victim->ages.fill(0xff); // everything "old" until touched
    return *victim;
}

void
PvProxy::applyOp(CacheEntry &e, const SetOp &op)
{
    e.lastTouch = ++touchCounter_;
    PvLineView view{e.bytes.data(), &e.dirty, &e.ages};
    op(view);
}

void
PvProxy::dropOp(const SetOp &op)
{
    ++droppedOps;
    PvLineView view{nullptr, nullptr, nullptr};
    op(view);
}

unsigned
PvProxy::pendingOpCount() const
{
    unsigned n = 0;
    for (const auto &f : inFlight_)
        n += unsigned(f.pendingOps.size());
    return n;
}

void
PvProxy::access(unsigned set, SetOp op)
{
    ++operations;
    pv_assert(set < layout_.numSets(), "set %u out of range", set);

    if (CacheEntry *e = findEntry(set)) {
        ++pvCacheHits;
        applyOp(*e, op);
        return;
    }
    ++pvCacheMisses;

    if (!isTiming()) {
        // Functional mode: fetch synchronously through the
        // hierarchy, install, and run the operation.
        pv_assert(memSide_ != nullptr, "PVProxy has no memory side");
        ++memRequests;
        Packet pkt(MemCmd::ReadReq, layout_.setAddress(set),
                   kInvalidCore);
        pkt.isPv = true;
        pkt.coherent = false;
        memSide_->functionalAccess(pkt);
        CacheEntry &e = allocateEntry(set);
        if (pkt.hasData())
            e.bytes = *pkt.data;
        ++fills;
        applyOp(e, op);
        return;
    }

    fetchSet(set, std::move(op));
}

void
PvProxy::fetchSet(unsigned set, SetOp op)
{
    // Join an in-flight fetch for the same set when possible.
    for (auto &f : inFlight_) {
        if (f.set == set) {
            if (pendingOpCount() >= params_.patternBufferEntries) {
                dropOp(op);
                return;
            }
            ++coalescedOps;
            f.pendingOps.push_back(std::move(op));
            return;
        }
    }

    if (inFlight_.size() >= params_.mshrs ||
        pendingOpCount() >= params_.patternBufferEntries) {
        // No MSHR / pattern-buffer space: report a predictor miss
        // rather than stalling the engine (paper Section 2.2).
        dropOp(op);
        return;
    }

    inFlight_.push_back(InFlight{set, {}});
    inFlight_.back().pendingOps.push_back(std::move(op));

    ++memRequests;
    auto *pkt = new Packet(MemCmd::ReadReq, layout_.setAddress(set),
                           kInvalidCore);
    pkt->isPv = true;
    pkt->coherent = false;
    pkt->src = this;
    pkt->issueTick = curTick();
    sendDown(pkt);
}

void
PvProxy::sendDown(PacketPtr pkt)
{
    pv_assert(memSide_ != nullptr, "PVProxy has no memory side");
    if (!isTiming()) {
        memSide_->functionalAccess(*pkt);
        delete pkt;
        return;
    }
    sendQueue_.push_back(pkt);
    drainSendQueue();
}

void
PvProxy::drainSendQueue()
{
    if (drainScheduled_)
        return;
    while (!sendQueue_.empty()) {
        PacketPtr head = sendQueue_.front();
        if (!memSide_->recvRequest(head))
            break;
        sendQueue_.pop_front();
    }
    if (!sendQueue_.empty()) {
        drainScheduled_ = true;
        schedule(1, [this] {
            drainScheduled_ = false;
            drainSendQueue();
        });
    }
}

void
PvProxy::recvResponse(PacketPtr pkt)
{
    unsigned set = layout_.setOf(blockAlign(pkt->addr));

    auto it = std::find_if(inFlight_.begin(), inFlight_.end(),
                           [set](const InFlight &f) {
                               return f.set == set;
                           });
    pv_assert(it != inFlight_.end(),
              "PVProxy response for set %u with no MSHR", set);

    std::vector<SetOp> ops;
    ops.swap(it->pendingOps);
    inFlight_.erase(it);

    CacheEntry &e = allocateEntry(set);
    if (pkt->hasData())
        e.bytes = *pkt->data;
    ++fills;
    delete pkt;

    for (const SetOp &op : ops)
        applyOp(e, op);
}

void
PvProxy::flush()
{
    for (auto &e : entries_)
        evictEntry(e);
}

PvProxy::StorageBreakdown
PvProxy::storageBreakdown() const
{
    StorageBreakdown b;
    // PVCache data: only the live bits of each packed line count as
    // dedicated storage (473 bits per line for the 11-way PHT).
    b.pvCacheData =
        uint64_t(params_.pvCacheEntries) * params_.usedBitsPerLine;
    // One tag per PVCache entry identifies the PVTable set it holds:
    // log2(numSets) bits plus a valid bit.
    unsigned tag_bits = unsigned(ceilLog2(layout_.numSets())) + 1;
    b.tags = uint64_t(params_.pvCacheEntries) * tag_bits;
    b.dirtyBits = params_.pvCacheEntries;
    // Each MSHR: valid + set index + the full line address it is
    // fetching + per-op bookkeeping links into the pattern buffer.
    unsigned mshr_bits = 1 + unsigned(ceilLog2(layout_.numSets())) +
                         42 +
                         4 * (1 + unsigned(ceilLog2(std::max(
                                      2u,
                                      params_.patternBufferEntries))));
    b.mshrs = uint64_t(params_.mshrs) * mshr_bits;
    // Evict buffer holds full lines.
    b.evictBuffer =
        uint64_t(params_.evictBufferEntries) * kBlockBytes * 8;
    // Pattern buffer stages one 32-bit pattern per pending op.
    b.patternBuffer = uint64_t(params_.patternBufferEntries) * 32;
    return b;
}

} // namespace pvsim
