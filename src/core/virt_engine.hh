/**
 * @file
 * VirtEngine: the abstract base of every virtualized optimization
 * engine. The paper pitches PV as "a general framework for emulating
 * otherwise impractical to implement predictors" whose key economy
 * is *sharing* one in-memory PV space among many engines; this class
 * is that framework's seam. A concrete engine (PHT, BTB, stride,
 * ...) supplies a packing codec and a set count, registers itself as
 * one tenant of a (possibly shared) PvProxy, and talks to its
 * segment through a VirtualizedAssocTable. Name, table-id, codec,
 * storage accounting, and per-engine statistics all hang off this
 * base, so virtualizing one more structure is a ~100-line adapter.
 */

#ifndef PVSIM_CORE_VIRT_ENGINE_HH
#define PVSIM_CORE_VIRT_ENGINE_HH

#include <memory>
#include <string>

#include "core/virt_table.hh"

namespace pvsim {

/** Kinds of engines the System registry can instantiate. */
enum class VirtEngineKind { Pht, Btb, Stride, Agt };

const char *virtEngineKindName(VirtEngineKind kind);

/**
 * One entry of the System's engine registry: which structure to
 * virtualize for each core and with what geometry. Kind-specific
 * fields are ignored by the other kinds.
 */
struct VirtEngineConfig {
    VirtEngineKind kind = VirtEngineKind::Btb;
    /** Stats scope under the proxy; defaults to the kind name.
     *  Tenant names must be unique per proxy — give two engines of
     *  the same kind explicit distinct names. */
    std::string name;
    unsigned numSets = 2048;
    unsigned assoc = 8;
    /** Tag bits per entry (BTB and stride). */
    unsigned tagBits = 16;
    /** QoS contract on the shared per-core proxy (pv_qos.hh); the
     *  default keeps the legacy fair-share policy. */
    PvTenantQos qos;

    std::string
    scopeName() const
    {
        return name.empty() ? virtEngineKindName(kind) : name;
    }
};

/** A virtualized predictor table registered with a PvProxy. */
class VirtEngine
{
  public:
    /**
     * Register as one tenant of an externally owned, shared proxy.
     *
     * @param proxy    The (multi-tenant) proxy to register with.
     * @param name     Engine name; becomes the per-engine stats
     *                 scope "<proxy>.<name>".
     * @param codec    Packing geometry of this engine's sets.
     * @param num_sets Sets in the virtualized table.
     * @param qos      QoS contract over the proxy's shared PVCache,
     *                 MSHRs and pattern buffer (pv_qos.hh); the
     *                 default keeps the legacy fair-share policy.
     */
    VirtEngine(PvProxy &proxy, const std::string &name,
               const PvSetCodec &codec, unsigned num_sets,
               const PvTenantQos &qos = {});

    /**
     * Single-tenant convenience: build and own a private proxy whose
     * region exactly spans this engine's table (the seed's original
     * one-engine-per-proxy shape, still used by focused tests and
     * storage studies).
     */
    VirtEngine(std::unique_ptr<PvProxy> proxy,
               const std::string &name, const PvSetCodec &codec,
               unsigned num_sets);

    virtual ~VirtEngine() = default;

    VirtEngine(const VirtEngine &) = delete;
    VirtEngine &operator=(const VirtEngine &) = delete;

    /**
     * Build the private proxy for the owning constructor: region
     * sized to exactly num_sets lines, tenants reporting their own
     * codecs' live bits (usedBitsPerLine = 0).
     */
    static std::unique_ptr<PvProxy>
    makeSingleTenantProxy(SimContext &ctx, PvProxyParams params,
                          Addr pv_start, unsigned num_sets);

    /** What kind of predictor this engine virtualizes. */
    virtual std::string kindName() const = 0;

    const std::string &engineName() const { return name_; }
    unsigned tableId() const { return tableId_; }
    const PvSetCodec &codec() const { return codec_; }
    VirtualizedAssocTable &table() { return table_; }
    PvProxy &proxy() { return table_.proxy(); }
    const PvProxy &proxy() const { return *proxy_; }

    /** This engine's segment of the PV region. */
    const PvTableLayout &segment() const
    {
        return proxy_->engineLayout(tableId_);
    }

    /** In-memory footprint of the virtualized table. */
    uint64_t tableBytes() const { return segment().tableBytes(); }

    /** Per-engine statistics scope on the shared proxy. */
    PvProxy::EngineStats &engineStats()
    {
        return proxy_->engineStats(tableId_);
    }

    /** This tenant's QoS contract on the shared proxy. */
    const PvTenantQos &qos() const
    {
        return proxy_->tenantQos(tableId_);
    }

    /** Replace this tenant's QoS contract at runtime. */
    void setQos(const PvTenantQos &qos)
    {
        proxy_->setTenantQos(tableId_, qos);
    }

    /**
     * Dedicated on-chip storage in bits. The proxy is the only
     * dedicated hardware; when it is shared by N tenants, each is
     * billed its registration's share of nothing extra — the whole
     * proxy is reported, as the paper's Section 4.6 accounting does
     * for the single-tenant case.
     */
    uint64_t proxyStorageBits() const
    {
        return proxy_->storageBreakdown().totalBits();
    }

  private:
    std::unique_ptr<PvProxy> owned_; ///< only for the owning ctor
    PvProxy *proxy_;
    std::string name_;
    PvSetCodec codec_;
    unsigned tableId_;
    VirtualizedAssocTable table_;
};

/**
 * Construct the adapter for `kind` as one tenant of `proxy`,
 * translating the registry entry's generic geometry into the
 * adapter's own parameters. The single place that knows how each
 * kind is built — registries and harnesses hold VirtEngineConfigs
 * and never special-case kinds themselves (virt_factory.cc).
 */
std::unique_ptr<VirtEngine> makeEngine(VirtEngineKind kind,
                                       const VirtEngineConfig &cfg,
                                       PvProxy &proxy);

} // namespace pvsim

#endif // PVSIM_CORE_VIRT_ENGINE_HH
