#include "stats/group.hh"

#include <algorithm>

#include "stats/stat.hh"

namespace pvsim {
namespace stats {

Group::Group(Group *parent, const std::string &name)
    : parent_(parent), name_(name)
{
    if (parent_)
        parent_->addChild(this);
}

Group::~Group()
{
    if (parent_)
        parent_->removeChild(this);
}

void
Group::removeChild(Group *child)
{
    auto it = std::find(children_.begin(), children_.end(), child);
    if (it != children_.end())
        children_.erase(it);
}

std::string
Group::path() const
{
    if (!parent_)
        return name_;
    std::string p = parent_->path();
    if (p.empty())
        return name_;
    return p + "." + name_;
}

void
Group::dumpStats(std::ostream &os) const
{
    std::string prefix = path();
    if (!prefix.empty())
        prefix += ".";
    for (const Stat *s : stats_)
        s->dump(os, prefix);
    for (const Group *g : children_)
        g->dumpStats(os);
}

void
Group::resetStats()
{
    for (Stat *s : stats_)
        s->reset();
    for (Group *g : children_)
        g->resetStats();
}

} // namespace stats
} // namespace pvsim
