#include "stats/stat.hh"

#include <iomanip>

#include "stats/group.hh"
#include "util/logging.hh"

namespace pvsim {
namespace stats {

Stat::Stat(Group *parent, const std::string &name,
           const std::string &desc)
    : name_(name), desc_(desc)
{
    pv_assert(parent != nullptr, "stat '%s' needs a parent group",
              name.c_str());
    parent->addStat(this);
}

namespace {

void
emit(std::ostream &os, const std::string &prefix,
     const std::string &name, double value, const std::string &desc)
{
    std::string full = prefix + name;
    os << std::left << std::setw(44) << full << " "
       << std::right << std::setw(14) << value;
    if (!desc.empty())
        os << "  # " << desc;
    os << "\n";
}

} // anonymous namespace

void
Scalar::dump(std::ostream &os, const std::string &prefix) const
{
    emit(os, prefix, name(), double(value_), desc());
}

void
Average::dump(std::ostream &os, const std::string &prefix) const
{
    emit(os, prefix, name(), mean(), desc());
    emit(os, prefix, name() + "::samples", double(count_), "");
}

Distribution::Distribution(Group *parent, const std::string &name,
                           const std::string &desc, uint64_t min,
                           uint64_t max, uint64_t bucket_size)
    : Stat(parent, name, desc), min_(min), max_(max),
      bucketSize_(bucket_size)
{
    pv_assert(max_ > min_, "distribution '%s' needs max > min",
              name.c_str());
    pv_assert(bucketSize_ > 0, "distribution '%s' needs bucket > 0",
              name.c_str());
    buckets_.assign(size_t((max_ - min_ + bucketSize_ - 1) /
                           bucketSize_),
                    0);
}

void
Distribution::sample(uint64_t v)
{
    if (Deferral *d = Deferral::current()) {
        d->sample(*this, v);
        return;
    }
    applySample(v);
}

void
Distribution::applySample(uint64_t v)
{
    ++samples_;
    sum_ += double(v);
    minSampled_ = std::min(minSampled_, v);
    maxSampled_ = std::max(maxSampled_, v);
    if (v < min_) {
        ++underflow_;
    } else if (v >= max_) {
        ++overflow_;
    } else {
        ++buckets_[size_t((v - min_) / bucketSize_)];
    }
}

void
Distribution::dump(std::ostream &os, const std::string &prefix) const
{
    emit(os, prefix, name() + "::samples", double(samples_), desc());
    emit(os, prefix, name() + "::mean", mean(), "");
    if (samples_ > 0) {
        emit(os, prefix, name() + "::min", double(minSampled_), "");
        emit(os, prefix, name() + "::max", double(maxSampled_), "");
    }
    if (underflow_)
        emit(os, prefix, name() + "::underflow", double(underflow_), "");
    for (size_t i = 0; i < buckets_.size(); ++i) {
        if (!buckets_[i])
            continue;
        uint64_t lo = min_ + i * bucketSize_;
        emit(os, prefix,
             name() + "::" + std::to_string(lo) + "-" +
                 std::to_string(lo + bucketSize_ - 1),
             double(buckets_[i]), "");
    }
    if (overflow_)
        emit(os, prefix, name() + "::overflow", double(overflow_), "");
}

void
Distribution::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = overflow_ = samples_ = 0;
    sum_ = 0.0;
    minSampled_ = std::numeric_limits<uint64_t>::max();
    maxSampled_ = 0;
}

thread_local Deferral *Deferral::tls_ = nullptr;

void
Deferral::flush()
{
    for (auto &[scalar, v] : adds_)
        scalar->value_ += v;
    adds_.clear();
    for (auto &[dist, samples] : distSamples_) {
        for (uint64_t v : samples)
            dist->applySample(v);
    }
    distSamples_.clear();
    for (auto &[avg, slot] : avgSamples_) {
        avg->sum_ += slot.first;
        avg->count_ += slot.second;
    }
    avgSamples_.clear();
}

Callback::Callback(Group *parent, const std::string &name,
                   const std::string &desc, std::function<double()> fn)
    : Stat(parent, name, desc), fn_(std::move(fn))
{
}

void
Callback::dump(std::ostream &os, const std::string &prefix) const
{
    emit(os, prefix, name(), fn_(), desc());
}

} // namespace stats
} // namespace pvsim
