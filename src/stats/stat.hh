/**
 * @file
 * Statistics primitives modeled after gem5's stats package: named,
 * described counters that register with a Group and can be dumped as
 * text. Only the kinds the simulator needs are provided: Scalar
 * (counter), Average (mean of samples), Distribution (histogram), and
 * Callback (computed on dump).
 */

#ifndef PVSIM_STATS_STAT_HH
#define PVSIM_STATS_STAT_HH

#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

namespace pvsim {
namespace stats {

class Group;

/** Base class for all statistics: identity plus dump/reset hooks. */
class Stat
{
  public:
    Stat(Group *parent, const std::string &name,
         const std::string &desc);
    virtual ~Stat() = default;

    Stat(const Stat &) = delete;
    Stat &operator=(const Stat &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Write one or more "name value # desc" lines. */
    virtual void dump(std::ostream &os,
                      const std::string &prefix) const = 0;

    /** Reset to the just-constructed state. */
    virtual void reset() = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** Monotonic counter; also usable as a plain settable value. */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(uint64_t v) { value_ += v; return *this; }
    void set(uint64_t v) { value_ = v; }
    uint64_t value() const { return value_; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override { value_ = 0; }

  private:
    uint64_t value_ = 0;
};

/** Mean of a stream of samples. */
class Average : public Stat
{
  public:
    using Stat::Stat;

    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    double mean() const { return count_ ? sum_ / double(count_) : 0.0; }
    uint64_t count() const { return count_; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override { sum_ = 0.0; count_ = 0; }

  private:
    double sum_ = 0.0;
    uint64_t count_ = 0;
};

/**
 * Fixed-bucket histogram over [min, max) with underflow/overflow
 * bins; also tracks mean and extrema of the sampled values.
 */
class Distribution : public Stat
{
  public:
    Distribution(Group *parent, const std::string &name,
                 const std::string &desc, uint64_t min, uint64_t max,
                 uint64_t bucket_size);

    void sample(uint64_t v);

    uint64_t samples() const { return samples_; }
    double mean() const { return samples_ ? sum_ / double(samples_) : 0; }
    uint64_t minSampled() const { return minSampled_; }
    uint64_t maxSampled() const { return maxSampled_; }
    uint64_t bucketCount(size_t i) const { return buckets_.at(i); }
    uint64_t underflow() const { return underflow_; }
    uint64_t overflow() const { return overflow_; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override;

  private:
    uint64_t min_;
    uint64_t max_;
    uint64_t bucketSize_;
    std::vector<uint64_t> buckets_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t samples_ = 0;
    double sum_ = 0.0;
    uint64_t minSampled_ = std::numeric_limits<uint64_t>::max();
    uint64_t maxSampled_ = 0;
};

/** Value computed at dump time from a lambda (gem5 Formula-lite). */
class Callback : public Stat
{
  public:
    Callback(Group *parent, const std::string &name,
             const std::string &desc, std::function<double()> fn);

    double value() const { return fn_(); }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override {}

  private:
    std::function<double()> fn_;
};

} // namespace stats
} // namespace pvsim

#endif // PVSIM_STATS_STAT_HH
