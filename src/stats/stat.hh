/**
 * @file
 * Statistics primitives modeled after gem5's stats package: named,
 * described counters that register with a Group and can be dumped as
 * text. Only the kinds the simulator needs are provided: Scalar
 * (counter), Average (mean of samples), Distribution (histogram), and
 * Callback (computed on dump).
 */

#ifndef PVSIM_STATS_STAT_HH
#define PVSIM_STATS_STAT_HH

#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace pvsim {
namespace stats {

class Group;
class Deferral;

/** Base class for all statistics: identity plus dump/reset hooks. */
class Stat
{
  public:
    Stat(Group *parent, const std::string &name,
         const std::string &desc);
    virtual ~Stat() = default;

    Stat(const Stat &) = delete;
    Stat &operator=(const Stat &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Write one or more "name value # desc" lines. */
    virtual void dump(std::ostream &os,
                      const std::string &prefix) const = 0;

    /** Reset to the just-constructed state. */
    virtual void reset() = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** Monotonic counter; also usable as a plain settable value. */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &operator++();
    Scalar &operator+=(uint64_t v);
    void set(uint64_t v) { value_ = v; }
    uint64_t value() const { return value_; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override { value_ = 0; }

  private:
    friend class Deferral;
    uint64_t value_ = 0;
};

/** Mean of a stream of samples. */
class Average : public Stat
{
  public:
    using Stat::Stat;

    void sample(double v);

    double mean() const { return count_ ? sum_ / double(count_) : 0.0; }
    uint64_t count() const { return count_; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override { sum_ = 0.0; count_ = 0; }

  private:
    friend class Deferral;
    double sum_ = 0.0;
    uint64_t count_ = 0;
};

/**
 * Fixed-bucket histogram over [min, max) with underflow/overflow
 * bins; also tracks mean and extrema of the sampled values.
 */
class Distribution : public Stat
{
  public:
    Distribution(Group *parent, const std::string &name,
                 const std::string &desc, uint64_t min, uint64_t max,
                 uint64_t bucket_size);

    void sample(uint64_t v);

    friend class Deferral;

  private:
    /** Unconditional direct sample (flush path). */
    void applySample(uint64_t v);

  public:

    uint64_t samples() const { return samples_; }
    double mean() const { return samples_ ? sum_ / double(samples_) : 0; }
    uint64_t minSampled() const { return minSampled_; }
    uint64_t maxSampled() const { return maxSampled_; }
    uint64_t bucketCount(size_t i) const { return buckets_.at(i); }
    uint64_t underflow() const { return underflow_; }
    uint64_t overflow() const { return overflow_; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override;

  private:
    uint64_t min_;
    uint64_t max_;
    uint64_t bucketSize_;
    std::vector<uint64_t> buckets_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t samples_ = 0;
    double sum_ = 0.0;
    uint64_t minSampled_ = std::numeric_limits<uint64_t>::max();
    uint64_t maxSampled_ = 0;
};

/** Value computed at dump time from a lambda (gem5 Formula-lite). */
class Callback : public Stat
{
  public:
    Callback(Group *parent, const std::string &name,
             const std::string &desc, std::function<double()> fn);

    double value() const { return fn_(); }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override {}

  private:
    std::function<double()> fn_;
};

/**
 * Thread-local stat redirection for worker threads that share stat
 * objects with other workers (the bank-parallel L2 domains: one
 * Cache's counters are bumped from every bank worker). A worker
 * thread with a Deferral installed accumulates Scalar increments and
 * Distribution/Average samples locally instead of touching the
 * shared values; the coordinating thread calls flush() at a barrier
 * (while the owning worker is idle) to apply them. Every deferred
 * merge is commutative — integer adds, bucket counts, min/max, and
 * tick sums that stay exact in a double — so the final values are
 * independent of both flush order and the bank→worker grouping.
 */
class Deferral
{
  public:
    /** The calling thread's installed deferral (null = direct). */
    static Deferral *current() { return tls_; }

    /**
     * Install as the calling thread's sink for the rest of the
     * thread's lifetime (or until replaced). Only worker threads
     * that exclusively run shared-domain windows install one.
     */
    static void installOnThisThread(Deferral *d) { tls_ = d; }

    void add(Scalar &s, uint64_t v) { adds_[&s] += v; }
    void sample(Distribution &d, uint64_t v)
    {
        distSamples_[&d].push_back(v);
    }
    void sample(Average &a, double v)
    {
        auto &slot = avgSamples_[&a];
        slot.first += v;
        ++slot.second;
    }

    /**
     * Apply everything deferred so far and clear. Must run while
     * the owning worker thread is parked at a barrier.
     */
    void flush();

  private:
    static thread_local Deferral *tls_;
    std::unordered_map<Scalar *, uint64_t> adds_;
    std::unordered_map<Distribution *, std::vector<uint64_t>> distSamples_;
    std::unordered_map<Average *, std::pair<double, uint64_t>> avgSamples_;
};

inline Scalar &
Scalar::operator++()
{
    if (Deferral *d = Deferral::current())
        d->add(*this, 1);
    else
        ++value_;
    return *this;
}

inline Scalar &
Scalar::operator+=(uint64_t v)
{
    if (Deferral *d = Deferral::current())
        d->add(*this, v);
    else
        value_ += v;
    return *this;
}

inline void
Average::sample(double v)
{
    if (Deferral *d = Deferral::current()) {
        d->sample(*this, v);
        return;
    }
    sum_ += v;
    ++count_;
}

} // namespace stats
} // namespace pvsim

#endif // PVSIM_STATS_STAT_HH
