/**
 * @file
 * Statistics group: a named container of Stats forming a hierarchy
 * mirroring the SimObject tree. Dumping a group emits
 * "group.subgroup.stat value # desc" lines.
 */

#ifndef PVSIM_STATS_GROUP_HH
#define PVSIM_STATS_GROUP_HH

#include <ostream>
#include <string>
#include <vector>

namespace pvsim {
namespace stats {

class Stat;

/** Node in the stats hierarchy; owns nothing, registers everything. */
class Group
{
  public:
    /**
     * @param parent Enclosing group, or nullptr for a root.
     * @param name   Component of the dotted dump prefix.
     */
    Group(Group *parent, const std::string &name);
    virtual ~Group();

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    const std::string &groupName() const { return name_; }

    /** Full dotted path from the root. */
    std::string path() const;

    /** Called by Stat's constructor. */
    void addStat(Stat *stat) { stats_.push_back(stat); }

    /** Recursively dump this group's stats, then the children's. */
    void dumpStats(std::ostream &os) const;

    /** Recursively reset. */
    void resetStats();

  private:
    void addChild(Group *child) { children_.push_back(child); }
    void removeChild(Group *child);

    Group *parent_;
    std::string name_;
    std::vector<Stat *> stats_;
    std::vector<Group *> children_;
};

} // namespace stats
} // namespace pvsim

#endif // PVSIM_STATS_GROUP_HH
