/**
 * @file
 * gem5-style status/error reporting: panic() for internal invariant
 * violations, fatal() for user/configuration errors, warn()/inform()
 * for status messages.
 */

#ifndef PVSIM_UTIL_LOGGING_HH
#define PVSIM_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace pvsim {

/**
 * Report an internal simulator bug and abort. Use for conditions that
 * must never happen regardless of user input.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a user-caused error (bad configuration, invalid arguments)
 * and exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Warn about suspicious but survivable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informative status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Implementation detail of pv_assert. */
[[noreturn]] void panicAssert(const char *cond, const char *file,
                              int line, const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/** panic() if cond is false, with a printf-style explanation. */
#define pv_assert(cond, ...)                                           \
    do {                                                               \
        if (!(cond))                                                   \
            ::pvsim::panicAssert(#cond, __FILE__, __LINE__,            \
                                 __VA_ARGS__);                         \
    } while (0)

} // namespace pvsim

#endif // PVSIM_UTIL_LOGGING_HH
