/**
 * @file
 * Minimal command-line argument parser used by the bench harnesses
 * and examples. Supports --key=value, --key value and boolean flags
 * (--flag / --no-flag), with typed accessors and defaults.
 */

#ifndef PVSIM_UTIL_ARGS_HH
#define PVSIM_UTIL_ARGS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pvsim {

/** Parsed view of argv with typed, defaulted accessors. */
class Args
{
  public:
    Args() = default;
    Args(int argc, char **argv);

    /** True if --name was given (with or without a value). */
    bool has(const std::string &name) const;

    /** String value of --name, or def when absent. */
    std::string getString(const std::string &name,
                          const std::string &def = "") const;

    /** Integer value of --name, or def when absent. */
    int64_t getInt(const std::string &name, int64_t def = 0) const;

    /** Unsigned value of --name, or def when absent. */
    uint64_t getUint(const std::string &name, uint64_t def = 0) const;

    /** Floating-point value of --name, or def when absent. */
    double getDouble(const std::string &name, double def = 0.0) const;

    /**
     * Boolean flag: --name or --name=true|1|yes sets true,
     * --no-name or --name=false|0|no sets false.
     */
    bool getBool(const std::string &name, bool def = false) const;

    /** Comma-separated list value of --name. */
    std::vector<std::string>
    getList(const std::string &name,
            const std::vector<std::string> &def = {}) const;

    /** Positional (non-option) arguments, in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /** The program name (argv[0]), empty if default-constructed. */
    const std::string &program() const { return program_; }

  private:
    std::string program_;
    std::map<std::string, std::string> options_;
    std::vector<std::string> positional_;
};

} // namespace pvsim

#endif // PVSIM_UTIL_ARGS_HH
