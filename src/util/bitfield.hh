/**
 * @file
 * Bitfield extraction and insertion helpers (gem5-style) plus a
 * bit-granular packer/unpacker used to lay predictor entries into
 * cache-block-sized lines (paper Figure 3a).
 */

#ifndef PVSIM_UTIL_BITFIELD_HH
#define PVSIM_UTIL_BITFIELD_HH

#include <cassert>
#include <cstdint>
#include <cstring>

namespace pvsim {

/** Generate a mask of nbits ones in the low-order positions. */
constexpr uint64_t
mask(int nbits)
{
    return nbits >= 64 ? ~0ULL : (1ULL << nbits) - 1;
}

/** Extract bits [first, last] (inclusive, last >= first) from val. */
constexpr uint64_t
bits(uint64_t val, int last, int first)
{
    assert(last >= first);
    return (val >> first) & mask(last - first + 1);
}

/** Extract the single bit at position bit. */
constexpr uint64_t
bits(uint64_t val, int bit)
{
    return (val >> bit) & 1ULL;
}

/** Return val with bits [first, last] replaced by the low bits of in. */
constexpr uint64_t
insertBits(uint64_t val, int last, int first, uint64_t in)
{
    assert(last >= first);
    const uint64_t m = mask(last - first + 1);
    return (val & ~(m << first)) | ((in & m) << first);
}

/** Population count convenience wrapper. */
constexpr int
popCount(uint64_t val)
{
    return __builtin_popcountll(val);
}

/**
 * Reads and writes arbitrary-width bit fields at arbitrary bit
 * offsets within a byte buffer. Bit order is little-endian within the
 * buffer: bit i of the field lands at overall bit (offset + i), which
 * is bit ((offset + i) % 8) of byte ((offset + i) / 8).
 *
 * This is the codec primitive for packing 43-bit PHT entries into a
 * 64-byte PVTable line.
 */
class BitSpan
{
  public:
    BitSpan(uint8_t *data, size_t size_bytes)
        : data_(data), sizeBits_(size_bytes * 8)
    {}

    /** Number of addressable bits in the span. */
    size_t sizeBits() const { return sizeBits_; }

    /**
     * Read an nbits-wide field starting at bit offset. Byte-at-a-
     * time assembly (not per-bit) keeps the packed-set codec cheap.
     * @pre nbits <= 57 and the field lies within the span (57 so the
     *      value plus intra-byte shift fits one 64-bit read window).
     */
    uint64_t
    read(size_t offset, int nbits) const
    {
        assert(nbits > 0 && nbits <= 57);
        assert(offset + size_t(nbits) <= sizeBits_);
        size_t byte = offset >> 3;
        unsigned shift = unsigned(offset & 7);
        unsigned need_bits = shift + unsigned(nbits);
        uint64_t window = 0;
        unsigned got = 0;
        for (; got < need_bits; got += 8)
            window |= uint64_t(data_[byte + (got >> 3)]) << got;
        return (window >> shift) & mask(nbits);
    }

    /**
     * Write the low nbits of val into the field starting at bit
     * offset.
     * @pre nbits <= 57 (see read()).
     */
    void
    write(size_t offset, int nbits, uint64_t val)
    {
        assert(nbits > 0 && nbits <= 57);
        assert(offset + size_t(nbits) <= sizeBits_);
        size_t byte = offset >> 3;
        unsigned shift = unsigned(offset & 7);
        unsigned need_bits = shift + unsigned(nbits);
        unsigned need_bytes = (need_bits + 7) >> 3;
        uint64_t window = 0;
        for (unsigned i = 0; i < need_bytes; ++i)
            window |= uint64_t(data_[byte + i]) << (8 * i);
        uint64_t m = mask(nbits) << shift;
        window = (window & ~m) | ((val << shift) & m);
        for (unsigned i = 0; i < need_bytes; ++i)
            data_[byte + i] = uint8_t(window >> (8 * i));
    }

  private:
    uint8_t *data_;
    size_t sizeBits_;
};

} // namespace pvsim

#endif // PVSIM_UTIL_BITFIELD_HH
