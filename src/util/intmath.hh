/**
 * @file
 * Integer math helpers used throughout the simulator: power-of-two
 * tests, integer logarithms, alignment and ceiling division.
 */

#ifndef PVSIM_UTIL_INTMATH_HH
#define PVSIM_UTIL_INTMATH_HH

#include <cassert>
#include <cstdint>

namespace pvsim {

/** Return true if n is a power of two. Zero is not a power of two. */
constexpr bool
isPowerOf2(uint64_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/**
 * Floor of the base-2 logarithm.
 * @pre n > 0.
 */
constexpr int
floorLog2(uint64_t n)
{
    assert(n > 0);
    int p = 0;
    while (n > 1) {
        n >>= 1;
        ++p;
    }
    return p;
}

/** Ceiling of the base-2 logarithm. @pre n > 0. */
constexpr int
ceilLog2(uint64_t n)
{
    return floorLog2(n) + (isPowerOf2(n) ? 0 : 1);
}

/** Ceiling division: divideCeil(7, 2) == 4. @pre b > 0. */
constexpr uint64_t
divideCeil(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

/** Align addr down to a multiple of align (a power of two). */
constexpr uint64_t
alignDown(uint64_t addr, uint64_t align)
{
    return addr & ~(align - 1);
}

/** Align addr up to a multiple of align (a power of two). */
constexpr uint64_t
alignUp(uint64_t addr, uint64_t align)
{
    return (addr + align - 1) & ~(align - 1);
}

} // namespace pvsim

#endif // PVSIM_UTIL_INTMATH_HH
