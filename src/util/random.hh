/**
 * @file
 * Deterministic pseudo-random number generation for workload
 * synthesis. All simulator randomness flows through Rng so that runs
 * are reproducible from a single seed (required for matched-pair
 * speedup measurement, paper Section 4.1).
 */

#ifndef PVSIM_UTIL_RANDOM_HH
#define PVSIM_UTIL_RANDOM_HH

#include <cassert>
#include <cstdint>
#include <vector>

namespace pvsim {

/**
 * Small, fast, deterministic generator (xoshiro256**). Seeded through
 * splitmix64 so that nearby seeds produce uncorrelated streams.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    void
    reseed(uint64_t seed)
    {
        // splitmix64 expansion of the seed into four state words.
        uint64_t x = seed;
        for (auto &word : s_) {
            x += 0x9e3779b97f4a7c15ULL;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        auto rotl = [](uint64_t v, int k) {
            return (v << k) | (v >> (64 - k));
        };
        const uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    uint64_t
    below(uint64_t bound)
    {
        assert(bound > 0);
        // Bounded rejection to avoid modulo bias for large bounds.
        uint64_t threshold = (-bound) % bound;
        for (;;) {
            uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    uint64_t
    inRange(uint64_t lo, uint64_t hi)
    {
        assert(hi >= lo);
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return double(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Geometric-ish positive integer with the given mean (>= 1). */
    uint64_t
    geometric(double mean)
    {
        if (mean <= 1.0)
            return 1;
        double p = 1.0 / mean;
        uint64_t n = 1;
        // Cap the tail so a pathological draw cannot stall a run.
        while (n < uint64_t(mean * 16) && !chance(p))
            ++n;
        return n;
    }

  private:
    uint64_t s_[4];
};

/**
 * Zipf-distributed sampler over {0, ..., n-1} with exponent alpha.
 * Uses a precomputed inverse CDF (O(log n) per sample), accurate and
 * fast for the table sizes used by the workload generators.
 */
class ZipfSampler
{
  public:
    /**
     * @param n     Number of distinct items.
     * @param alpha Skew; 0 degenerates to uniform.
     */
    ZipfSampler(size_t n, double alpha) : cdf_(n)
    {
        assert(n > 0);
        double sum = 0.0;
        for (size_t i = 0; i < n; ++i) {
            sum += 1.0 / power(double(i + 1), alpha);
            cdf_[i] = sum;
        }
        for (auto &c : cdf_)
            c /= sum;
    }

    /** Draw one sample; item 0 is the most popular. */
    size_t
    sample(Rng &rng) const
    {
        double u = rng.uniform();
        size_t lo = 0, hi = cdf_.size() - 1;
        while (lo < hi) {
            size_t mid = (lo + hi) / 2;
            if (cdf_[mid] < u)
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    }

    size_t size() const { return cdf_.size(); }

  private:
    // std::pow is not constexpr-friendly everywhere; a simple
    // exp/log form keeps this header light.
    static double
    power(double base, double exp)
    {
        if (exp == 0.0)
            return 1.0;
        return __builtin_pow(base, exp);
    }

    std::vector<double> cdf_;
};

} // namespace pvsim

#endif // PVSIM_UTIL_RANDOM_HH
