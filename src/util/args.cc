#include "util/args.hh"

#include <cstdlib>

#include "util/logging.hh"

namespace pvsim {

Args::Args(int argc, char **argv)
{
    if (argc > 0)
        program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        arg = arg.substr(2);
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            options_[arg.substr(0, eq)] = arg.substr(eq + 1);
        } else if (arg.rfind("no-", 0) == 0) {
            options_[arg.substr(3)] = "false";
        } else if (i + 1 < argc && argv[i + 1][0] != '-') {
            options_[arg] = argv[++i];
        } else {
            options_[arg] = "true";
        }
    }
}

bool
Args::has(const std::string &name) const
{
    return options_.count(name) > 0;
}

std::string
Args::getString(const std::string &name, const std::string &def) const
{
    auto it = options_.find(name);
    return it == options_.end() ? def : it->second;
}

int64_t
Args::getInt(const std::string &name, int64_t def) const
{
    auto it = options_.find(name);
    if (it == options_.end())
        return def;
    char *end = nullptr;
    int64_t v = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str())
        fatal("option --%s expects an integer, got '%s'", name.c_str(),
              it->second.c_str());
    return v;
}

uint64_t
Args::getUint(const std::string &name, uint64_t def) const
{
    auto it = options_.find(name);
    if (it == options_.end())
        return def;
    char *end = nullptr;
    uint64_t v = std::strtoull(it->second.c_str(), &end, 0);
    if (end == it->second.c_str())
        fatal("option --%s expects an unsigned integer, got '%s'",
              name.c_str(), it->second.c_str());
    return v;
}

double
Args::getDouble(const std::string &name, double def) const
{
    auto it = options_.find(name);
    if (it == options_.end())
        return def;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str())
        fatal("option --%s expects a number, got '%s'", name.c_str(),
              it->second.c_str());
    return v;
}

bool
Args::getBool(const std::string &name, bool def) const
{
    auto it = options_.find(name);
    if (it == options_.end())
        return def;
    const std::string &v = it->second;
    if (v == "true" || v == "1" || v == "yes")
        return true;
    if (v == "false" || v == "0" || v == "no")
        return false;
    fatal("option --%s expects a boolean, got '%s'", name.c_str(),
          v.c_str());
}

std::vector<std::string>
Args::getList(const std::string &name,
              const std::vector<std::string> &def) const
{
    auto it = options_.find(name);
    if (it == options_.end())
        return def;
    std::vector<std::string> out;
    const std::string &v = it->second;
    size_t start = 0;
    while (start <= v.size()) {
        auto comma = v.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(v.substr(start));
            break;
        }
        out.push_back(v.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

} // namespace pvsim
