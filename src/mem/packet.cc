#include "mem/packet.hh"

#include "mem/packet_pool.hh"

namespace pvsim {

std::atomic<uint64_t> Packet::nextId_{0};
std::atomic<int64_t> Packet::liveCount_{0};

void
Packet::DataDeleter::operator()(Data *d) const
{
    PacketPool::local().releaseData(d);
}

Packet::Data &
Packet::ensureData()
{
    if (!data)
        data.reset(PacketPool::local().allocData());
    return *data;
}

const char *
memCmdName(MemCmd cmd)
{
    switch (cmd) {
      case MemCmd::ReadReq: return "ReadReq";
      case MemCmd::WriteReq: return "WriteReq";
      case MemCmd::UpgradeReq: return "UpgradeReq";
      case MemCmd::PrefetchReq: return "PrefetchReq";
      case MemCmd::Writeback: return "Writeback";
      case MemCmd::CleanEvict: return "CleanEvict";
      case MemCmd::ReadResp: return "ReadResp";
      case MemCmd::WriteResp: return "WriteResp";
      case MemCmd::UpgradeResp: return "UpgradeResp";
      case MemCmd::PrefetchResp: return "PrefetchResp";
    }
    return "UnknownCmd";
}

} // namespace pvsim
