/**
 * @file
 * Replacement policies for set-associative structures. The policy
 * object is stateless; per-block state lives in the blocks' LRU
 * fields, so one policy instance can serve any number of sets.
 */

#ifndef PVSIM_MEM_REPLACEMENT_HH
#define PVSIM_MEM_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/cache_blk.hh"
#include "util/random.hh"

namespace pvsim {

/** Abstract victim-selection policy over the ways of one set. */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /**
     * Choose a victim among candidates (all ways of one set).
     * Invalid ways must be preferred by callers before invoking the
     * policy; candidates here are all valid.
     * @return index into candidates.
     */
    virtual size_t
    victim(const std::vector<CacheBlk *> &candidates) = 0;

    /** Called on every hit/fill so stateful policies can learn. */
    virtual void touch(CacheBlk &blk, uint64_t now) { blk.lastTouch = now; }

    virtual std::string policyName() const = 0;
};

/** Least recently used (paper Table 1 uses LRU everywhere). */
class LruPolicy : public ReplacementPolicy
{
  public:
    size_t
    victim(const std::vector<CacheBlk *> &candidates) override
    {
        size_t best = 0;
        for (size_t i = 1; i < candidates.size(); ++i) {
            if (candidates[i]->lastTouch <
                candidates[best]->lastTouch) {
                best = i;
            }
        }
        return best;
    }

    std::string policyName() const override { return "lru"; }
};

/** Uniform random victim (ablation baseline). */
class RandomPolicy : public ReplacementPolicy
{
  public:
    explicit RandomPolicy(uint64_t seed = 1) : rng_(seed) {}

    size_t
    victim(const std::vector<CacheBlk *> &candidates) override
    {
        return size_t(rng_.below(candidates.size()));
    }

    std::string policyName() const override { return "random"; }

  private:
    Rng rng_;
};

/** FIFO by insertion time (ablation baseline). */
class FifoPolicy : public ReplacementPolicy
{
  public:
    size_t
    victim(const std::vector<CacheBlk *> &candidates) override
    {
        size_t best = 0;
        for (size_t i = 1; i < candidates.size(); ++i) {
            if (candidates[i]->insertedAt <
                candidates[best]->insertedAt) {
                best = i;
            }
        }
        return best;
    }

    void touch(CacheBlk &, uint64_t) override {}

    std::string policyName() const override { return "fifo"; }
};

/** Factory from a policy name ("lru", "random", "fifo"). */
std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(const std::string &name, uint64_t seed = 1);

} // namespace pvsim

#endif // PVSIM_MEM_REPLACEMENT_HH
