/**
 * @file
 * Region-granular functional backing store for DRAM.
 *
 * The old store was an unordered_map<Addr, Packet::Data>: one hash
 * entry per 64-byte block, which rehashes continually under
 * writeback load and scatters payloads across the heap. Blocks are
 * now grouped into aligned regions (512 blocks = 32 KiB) with one
 * map entry, a present bitmap, and one contiguous zero-initialized
 * allocation per region — 512x fewer hash entries, and block lookup
 * within a region is two shifts and a mask.
 */

#ifndef PVSIM_MEM_DRAM_STORE_HH
#define PVSIM_MEM_DRAM_STORE_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "sim/types.hh"

namespace pvsim {

/** Sparse block-addressed byte store with region-sized extents. */
class DramStore
{
  public:
    static constexpr unsigned kBlocksPerRegion = 512;
    static constexpr Addr kRegionBytes =
        Addr(kBlocksPerRegion) * kBlockBytes;

    /** Bytes of a present block; nullptr if never written. */
    const uint8_t *
    find(Addr block_addr) const
    {
        auto it = regions_.find(regionBase(block_addr));
        if (it == regions_.end())
            return nullptr;
        unsigned idx = blockIndex(block_addr);
        if (!it->second.present(idx))
            return nullptr;
        return it->second.bytes.get() + size_t(idx) * kBlockBytes;
    }

    /**
     * Slot for a block, creating (zero-filled) region storage as
     * needed and marking the block present.
     */
    uint8_t *
    ensure(Addr block_addr)
    {
        Region &r = regions_[regionBase(block_addr)];
        if (!r.bytes)
            r.bytes = std::make_unique<uint8_t[]>(kRegionBytes);
        unsigned idx = blockIndex(block_addr);
        r.presentBits[idx / 64] |= 1ull << (idx % 64);
        return r.bytes.get() + size_t(idx) * kBlockBytes;
    }

    bool has(Addr block_addr) const { return find(block_addr); }

    /** Occupancy observability (tests). */
    size_t numRegions() const { return regions_.size(); }

    uint64_t
    numBlocks() const
    {
        uint64_t n = 0;
        for (const auto &[base, r] : regions_)
            for (uint64_t w : r.presentBits)
                n += uint64_t(__builtin_popcountll(w));
        return n;
    }

  private:
    struct Region {
        uint64_t presentBits[kBlocksPerRegion / 64] = {};
        /** kRegionBytes bytes, value-initialized (all zero). */
        std::unique_ptr<uint8_t[]> bytes;

        bool
        present(unsigned idx) const
        {
            return (presentBits[idx / 64] >> (idx % 64)) & 1u;
        }
    };

    static Addr
    regionBase(Addr block_addr)
    {
        return block_addr & ~(kRegionBytes - 1);
    }

    static unsigned
    blockIndex(Addr block_addr)
    {
        return unsigned((block_addr & (kRegionBytes - 1)) /
                        kBlockBytes);
    }

    std::unordered_map<Addr, Region> regions_;
};

} // namespace pvsim

#endif // PVSIM_MEM_DRAM_STORE_HH
