/**
 * @file
 * Main memory: fixed-latency DRAM with a functional backing store
 * for data-carrying blocks (the PVTable lives here when its lines
 * are cold) and byte-accurate off-chip traffic accounting split by
 * address class (application vs. predictor data, paper Figure 8).
 */

#ifndef PVSIM_MEM_DRAM_HH
#define PVSIM_MEM_DRAM_HH

#include <functional>
#include <vector>

#include "mem/addr_map.hh"
#include "mem/dram_store.hh"
#include "mem/packet.hh"
#include "mem/port.hh"
#include "sim/event_queue.hh"
#include "sim/sim_object.hh"
#include "stats/stat.hh"

namespace pvsim {

/** DRAM configuration. */
struct DramParams {
    std::string name = "dram";
    /** Request-to-response latency (paper Table 1: 400 cycles). */
    Cycles latency = 400;
    /**
     * Minimum spacing between successive transfers on the channel;
     * models finite bandwidth without a full scheduler. 0 disables.
     */
    Cycles serviceInterval = 4;
};

/** The memory controller + DRAM device. */
class Dram : public SimObject, public MemDevice
{
  public:
    Dram(SimContext &ctx, const DramParams &params,
         const AddrMap *addr_map = nullptr);

    // MemDevice
    bool recvRequest(PacketPtr pkt) override;
    void functionalAccess(Packet &pkt) override;
    std::string deviceName() const override { return name(); }

    /**
     * Partition the backing store into per-bank lanes (sharded
     * in-phase DRAM): block data is kept in the store of the L2
     * bank owning the address, so a service event executing on the
     * bank's domain worker touches storage no other worker can
     * reach. Must be called before any block is written; bank_of
     * must match the L2's bank map.
     */
    void enableBankStores(unsigned banks,
                          std::function<unsigned(Addr)> bank_of);

    /**
     * Sharded in-phase service (see System::runTimingSharded): the
     * main thread calls this at the quantum barrier for every packet
     * parked in the DRAM lanes, in the canonical (send-tick, bank,
     * issue-order) sequence. Channel reservation — the serial part —
     * happens here, reproducing exactly the slot each request would
     * get from the monolithic DRAM queue; the heavy service (stats,
     * store access, response delivery) is deferred to an event at
     * the response tick in the owning bank's queue, so it runs
     * inside the banked shared phase on the worker pool. Writebacks
     * and clean evicts consume no channel slot (as in recvRequest)
     * and are applied immediately.
     */
    void serviceSharded(Tick when, PacketPtr pkt,
                        EventQueue &bank_eq);

    /** Direct backing-store poke for tests and initialization. */
    void writeBlock(Addr block_addr, const Packet::Data &data);
    /** Read back a block; zeros if never written. */
    Packet::Data readBlock(Addr block_addr) const;
    /** True if the block was ever written with data. */
    bool hasBlock(Addr block_addr) const;

    // Off-chip traffic statistics (bytes).
    stats::Scalar readsApp;
    stats::Scalar readsPv;
    stats::Scalar writesApp;
    stats::Scalar writesPv;
    stats::Scalar readBytes;
    stats::Scalar writeBytes;

    uint64_t totalAccesses() const
    {
        return readsApp.value() + readsPv.value() +
               writesApp.value() + writesPv.value();
    }

  private:
    /** Shared request handling; returns true if a response is due. */
    bool handle(Packet &pkt);

    /** Backing store owning block_addr (the single store unless
     *  enableBankStores partitioned it). */
    DramStore &storeOf(Addr block_addr);
    const DramStore &storeOf(Addr block_addr) const;

    DramParams params_;
    const AddrMap *addrMap_;
    /** Store partitions; exactly one unless enableBankStores. */
    std::vector<DramStore> stores_;
    std::function<unsigned(Addr)> storeBankOf_;
    Tick channelFreeAt_ = 0;
};

} // namespace pvsim

#endif // PVSIM_MEM_DRAM_HH
