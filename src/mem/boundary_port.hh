/**
 * @file
 * Cluster-boundary ports for the sharded timing mode.
 *
 * A sharded run partitions cores (with their private L1s, predictor
 * engines and PvProxy) into clusters, each simulated on its own
 * EventQueue by a worker thread; the shared L2 and DRAM stay on the
 * context's base queue, run by the main thread. Every path that
 * used to connect a private component directly to the L2 is routed
 * through a boundary pair instead:
 *
 *  - DownstreamBoundary stands in for the L2 as the private
 *    component's memory side. It always accepts, parks the packet
 *    (with its send tick) in a lane owned by the cluster, and the
 *    main thread drains the lanes into the shared queue at the next
 *    quantum barrier — so no cluster thread ever touches shared
 *    state mid-quantum.
 *  - UpstreamBoundary stands in for the private component as the
 *    L2's directory client. Responses are redirected into the
 *    cluster's queue at their exact due tick (always on time, since
 *    the barrier quantum never exceeds the L2 data latency);
 *    invalidations and downgrades, which have zero lookahead, are
 *    deferred to the cluster's current quantum edge and counted.
 *
 * All boundary methods are called either by the owning cluster's
 * worker (downstream, during a quantum) or by the main thread
 * (drain and upstream, at the barrier) — never concurrently.
 */

#ifndef PVSIM_MEM_BOUNDARY_PORT_HH
#define PVSIM_MEM_BOUNDARY_PORT_HH

#include <string>
#include <utility>
#include <vector>

#include "mem/packet.hh"
#include "mem/port.hh"
#include "sim/event_queue.hh"

namespace pvsim {

/** The L2's view of one private component in another shard. */
class UpstreamBoundary : public MemClient
{
  public:
    UpstreamBoundary(MemClient *client, EventQueue *cluster_eq,
                     std::string name)
        : client_(client), clusterEq_(cluster_eq),
          name_(std::move(name))
    {}

    void recvResponse(PacketPtr pkt) override
    {
        client_->recvResponse(pkt);
    }

    void
    scheduleResponse(EventQueue &eq, Cycles delay,
                     PacketPtr pkt) override
    {
        Tick at = eq.curTick() + delay;
        if (at < clusterEq_->curTick()) {
            // Quantum larger than the response lookahead; deliver at
            // the earliest representable tick and count the slip.
            // With the quantum clamped to the L2 data latency this
            // never fires (asserted zero in the tests).
            at = clusterEq_->curTick();
            ++lateResponses_;
        }
        MemClient *c = client_;
        clusterEq_->schedule(at, EventQueue::kPrioResponse,
                             [c, pkt] { c->recvResponse(pkt); });
    }

    void
    recvInvalidate(Addr block_addr) override
    {
        ++deferredCoherence_;
        MemClient *c = client_;
        clusterEq_->schedule(clusterEq_->curTick(),
                             EventQueue::kPrioResponse,
                             [c, block_addr] {
                                 c->recvInvalidate(block_addr);
                             });
    }

    void
    recvDowngrade(Addr block_addr) override
    {
        ++deferredCoherence_;
        MemClient *c = client_;
        clusterEq_->schedule(clusterEq_->curTick(),
                             EventQueue::kPrioResponse,
                             [c, block_addr] {
                                 c->recvDowngrade(block_addr);
                             });
    }

    std::string clientName() const override { return name_; }

    /** Responses that would have arrived before the cluster's
     *  current tick (only possible with an oversized quantum). */
    uint64_t lateResponses() const { return lateResponses_; }

    /** Zero-lookahead coherence messages pushed to the quantum
     *  edge (expected and bounded by the quantum). */
    uint64_t deferredCoherence() const { return deferredCoherence_; }

  private:
    MemClient *client_;
    EventQueue *clusterEq_;
    std::string name_;
    uint64_t lateResponses_ = 0;
    uint64_t deferredCoherence_ = 0;
};

/** A private component's view of the L2 in the shared shard. */
class DownstreamBoundary : public MemDevice
{
  public:
    DownstreamBoundary(MemDevice *lower, UpstreamBoundary *pair,
                       EventQueue *cluster_eq, std::string name)
        : lower_(lower), pair_(pair), clusterEq_(cluster_eq),
          name_(std::move(name))
    {}

    bool
    recvRequest(PacketPtr pkt) override
    {
        // Responses must route back through the boundary pair so
        // they land in this cluster's queue. Writebacks and clean
        // evicts carry no source and are consumed below.
        if (pkt->src)
            pkt->src = pair_;
        lane_.emplace_back(clusterEq_->curTick(), pkt);
        return true;
    }

    void functionalAccess(Packet &pkt) override
    {
        lower_->functionalAccess(pkt);
    }

    std::string deviceName() const override { return name_; }

    /**
     * Barrier-time handoff (main thread): replay every parked packet
     * into the shared queue at its original send tick. Injection
     * retries each tick while the device exerts backpressure, like a
     * sender's send queue would.
     */
    void
    drainTo(EventQueue &shared_eq)
    {
        for (auto &[when, pkt] : lane_)
            shared_eq.schedule(when, Inject{lower_, pkt, &shared_eq});
        lane_.clear();
    }

    bool laneEmpty() const { return lane_.empty(); }

  private:
    struct Inject {
        MemDevice *dev;
        PacketPtr pkt;
        EventQueue *eq;

        void
        operator()() const
        {
            if (!dev->recvRequest(pkt))
                eq->schedule(eq->curTick() + 1, *this);
        }
    };

    MemDevice *lower_;
    UpstreamBoundary *pair_;
    EventQueue *clusterEq_;
    std::string name_;
    std::vector<std::pair<Tick, PacketPtr>> lane_;
};

} // namespace pvsim

#endif // PVSIM_MEM_BOUNDARY_PORT_HH
