/**
 * @file
 * Cluster-boundary ports for the sharded timing mode.
 *
 * A sharded run partitions cores (with their private L1s, predictor
 * engines and PvProxy) into clusters, each simulated on its own
 * EventQueue by a worker thread. The shared L2 is further split by
 * address into bank domains, each with its own EventQueue run by a
 * bank worker at the quantum edge; DRAM stays on the context's base
 * queue, run by the main thread. Every path that used to connect a
 * private component directly to the L2 is routed through a boundary
 * pair instead:
 *
 *  - DownstreamBoundary stands in for the L2 as the private
 *    component's memory side. It always accepts, parks the packet
 *    (with its send tick) in a lane owned by the cluster, and the
 *    main thread drains the lanes at the next quantum barrier —
 *    either into the shared queue, or (bank-domain mode) directly
 *    into the owning bank's queue — so no cluster thread ever
 *    touches shared state mid-quantum.
 *  - UpstreamBoundary stands in for the private component as the
 *    L2's directory client. Responses are redirected into the
 *    cluster's queue at their exact due tick (always on time, since
 *    the barrier quantum never exceeds the L2 data latency);
 *    invalidations and downgrades, which have zero lookahead, are
 *    deferred to the cluster's current quantum edge and counted.
 *    In bank-domain mode the L2 runs on bank workers, so instead of
 *    touching the cluster queue directly the upstream boundary
 *    records the delivery into a per-bank BankEgress lane; the main
 *    thread flushes the lanes in bank order at the barrier.
 *  - BankLaneRouter stands in for DRAM as the L2's memory side in
 *    bank-domain mode: bank workers park their downstream packets
 *    in per-bank lanes, and the main thread replays them into the
 *    shared queue in (bank, issue-order) order — so DRAM channel
 *    arbitration is deterministic and independent of how banks are
 *    grouped into domains.
 *
 * All boundary methods are called by exactly one thread at a time:
 * downstream by the owning cluster's worker mid-quantum, egress
 * lanes by the (unique) worker running that bank's events, drains
 * and flushes by the main thread at the barrier.
 */

#ifndef PVSIM_MEM_BOUNDARY_PORT_HH
#define PVSIM_MEM_BOUNDARY_PORT_HH

#include <algorithm>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "mem/packet.hh"
#include "mem/port.hh"
#include "sim/event_queue.hh"
#include "util/logging.hh"

namespace pvsim {

class BankEgress;

/**
 * Barrier-time replay of a parked packet: deliver to the device at
 * the original send tick, retrying each tick while the device
 * exerts backpressure, like a sender's send queue would.
 */
struct LaneInject {
    MemDevice *dev;
    PacketPtr pkt;
    EventQueue *eq;

    void
    operator()() const
    {
        if (!dev->recvRequest(pkt))
            eq->schedule(eq->curTick() + 1, *this);
    }
};

/** The L2's view of one private component in another shard. */
class UpstreamBoundary : public MemClient
{
  public:
    UpstreamBoundary(MemClient *client, EventQueue *cluster_eq,
                     std::string name)
        : client_(client), clusterEq_(cluster_eq),
          name_(std::move(name))
    {}

    /**
     * Route all deliveries through per-bank egress lanes instead of
     * the cluster queue (bank-domain mode; see BankEgress).
     */
    void setEgress(BankEgress *egress) { egress_ = egress; }

    void recvResponse(PacketPtr pkt) override
    {
        client_->recvResponse(pkt);
    }

    void scheduleResponse(EventQueue &eq, Cycles delay,
                          PacketPtr pkt) override;
    void recvInvalidate(Addr block_addr) override;
    void recvDowngrade(Addr block_addr) override;

    std::string clientName() const override { return name_; }

    /** Responses that would have arrived before the cluster's
     *  current tick (only possible with an oversized quantum). */
    uint64_t lateResponses() const { return lateResponses_; }

    /** Zero-lookahead coherence messages pushed to the quantum
     *  edge (expected and bounded by the quantum). */
    uint64_t deferredCoherence() const { return deferredCoherence_; }

    /** The cluster queue this boundary delivers into (egress
     *  records are matched against it in the overlapped drain). */
    const EventQueue *clusterQueue() const { return clusterEq_; }

  private:
    friend class BankEgress;

    /** Direct delivery into the cluster queue (serial shared phase,
     *  and the egress flush path on the main thread). */
    void
    deliverResponseAt(Tick at, PacketPtr pkt)
    {
        if (at < clusterEq_->curTick()) {
            // Quantum larger than the response lookahead; deliver at
            // the earliest representable tick and count the slip.
            // With the quantum clamped to the L2 data latency this
            // never fires (asserted zero in the tests).
            at = clusterEq_->curTick();
            ++lateResponses_;
        }
        MemClient *c = client_;
        clusterEq_->schedule(at, EventQueue::kPrioResponse,
                             [c, pkt] { c->recvResponse(pkt); });
    }

    void
    deliverInvalidate(Addr block_addr)
    {
        ++deferredCoherence_;
        MemClient *c = client_;
        clusterEq_->schedule(clusterEq_->curTick(),
                             EventQueue::kPrioResponse,
                             [c, block_addr] {
                                 c->recvInvalidate(block_addr);
                             });
    }

    void
    deliverDowngrade(Addr block_addr)
    {
        ++deferredCoherence_;
        MemClient *c = client_;
        clusterEq_->schedule(clusterEq_->curTick(),
                             EventQueue::kPrioResponse,
                             [c, block_addr] {
                                 c->recvDowngrade(block_addr);
                             });
    }

    MemClient *client_;
    EventQueue *clusterEq_;
    BankEgress *egress_ = nullptr;
    std::string name_;
    uint64_t lateResponses_ = 0;
    uint64_t deferredCoherence_ = 0;
};

/**
 * Per-bank L2-to-cluster egress lanes for bank-domain mode.
 *
 * L2 code executing on a bank worker must not schedule into cluster
 * queues directly: two banks answering the same cluster would race,
 * and the cross-bank interleave would depend on the bank-to-domain
 * grouping. Instead each delivery is recorded in the lane of the
 * bank that owns the block address — written only by the single
 * worker running that bank's events — and the main thread flushes
 * the lanes in ascending bank order at the quantum barrier. The
 * resulting (bank, record-order) sequence is a pure function of the
 * per-bank event streams, so aggregate results are bit-identical
 * for every bank-domain count, including one.
 */
class BankEgress
{
  public:
    BankEgress(unsigned banks, std::function<unsigned(Addr)> bank_of)
        : bankOf_(std::move(bank_of)), lanes_(banks)
    {}

    void
    response(UpstreamBoundary *up, Addr addr, Tick at, PacketPtr pkt)
    {
        lanes_[bankOf_(addr)].push_back(
            Record{Record::Response, up, at, pkt, 0});
    }

    void
    invalidate(UpstreamBoundary *up, Addr block_addr)
    {
        lanes_[bankOf_(block_addr)].push_back(
            Record{Record::Invalidate, up, 0, nullptr, block_addr});
    }

    void
    downgrade(UpstreamBoundary *up, Addr block_addr)
    {
        lanes_[bankOf_(block_addr)].push_back(
            Record{Record::Downgrade, up, 0, nullptr, block_addr});
    }

    /** Barrier-time flush (main thread), ascending bank order. */
    void
    flush()
    {
        for (auto &lane : lanes_) {
            for (const Record &r : lane)
                deliver(r);
            lane.clear();
        }
    }

    /**
     * Overlapped-drain variant: deliver only the records bound for
     * one cluster queue, in the same ascending (bank, record-order)
     * sequence flush() would give them. Each cluster worker calls
     * this for its own queue as the window prologue — the lanes are
     * scanned concurrently but read-only, and every delivery
     * touches only the caller's queue and its own boundaries'
     * counters. The lanes stay intact; the main thread clearAll()s
     * once every worker passed the barrier.
     */
    void
    flushCluster(const EventQueue *cluster_eq) const
    {
        for (const auto &lane : lanes_) {
            for (const Record &r : lane) {
                if (r.up->clusterQueue() == cluster_eq)
                    deliver(r);
            }
        }
    }

    /** Drop all records (after every cluster flushed its share). */
    void
    clearAll()
    {
        for (auto &lane : lanes_)
            lane.clear();
    }

    /**
     * Lower bound on the next delivery across parked records, for
     * the driver's fast-forward decision: a response's due tick is
     * known exactly; invalidations and downgrades deliver at the
     * flushing cluster's current quantum edge, so they pin the
     * bound to `edge` — exactly where the serial flush would have
     * scheduled them. kMaxTick when no records are parked.
     */
    Tick
    minPendingTick(Tick edge) const
    {
        Tick best = kMaxTick;
        for (const auto &lane : lanes_) {
            for (const Record &r : lane) {
                best = std::min(best, r.kind == Record::Response
                                          ? r.at
                                          : edge);
            }
        }
        return best;
    }

  private:
    struct Record {
        enum Kind { Response, Invalidate, Downgrade } kind;
        UpstreamBoundary *up;
        Tick at;
        PacketPtr pkt;
        Addr addr;
    };

    static void
    deliver(const Record &r)
    {
        switch (r.kind) {
          case Record::Response:
            r.up->deliverResponseAt(r.at, r.pkt);
            break;
          case Record::Invalidate:
            r.up->deliverInvalidate(r.addr);
            break;
          case Record::Downgrade:
            r.up->deliverDowngrade(r.addr);
            break;
        }
    }

    std::function<unsigned(Addr)> bankOf_;
    std::vector<std::vector<Record>> lanes_;
};

inline void
UpstreamBoundary::scheduleResponse(EventQueue &eq, Cycles delay,
                                   PacketPtr pkt)
{
    Tick at = eq.curTick() + delay;
    if (egress_) {
        egress_->response(this, pkt->addr, at, pkt);
        return;
    }
    deliverResponseAt(at, pkt);
}

inline void
UpstreamBoundary::recvInvalidate(Addr block_addr)
{
    if (egress_) {
        egress_->invalidate(this, block_addr);
        return;
    }
    deliverInvalidate(block_addr);
}

inline void
UpstreamBoundary::recvDowngrade(Addr block_addr)
{
    if (egress_) {
        egress_->downgrade(this, block_addr);
        return;
    }
    deliverDowngrade(block_addr);
}

/** A private component's view of the L2 in the shared shard. */
class DownstreamBoundary : public MemDevice
{
  public:
    DownstreamBoundary(MemDevice *lower, UpstreamBoundary *pair,
                       EventQueue *cluster_eq, std::string name)
        : lower_(lower), pair_(pair), clusterEq_(cluster_eq),
          name_(std::move(name))
    {}

    bool
    recvRequest(PacketPtr pkt) override
    {
        // Responses must route back through the boundary pair so
        // they land in this cluster's queue. Writebacks and clean
        // evicts carry no source and are consumed below. The address
        // is copied out here, while this thread still owns the
        // packet: the overlapped drain routes by address from every
        // bank worker concurrently, and a packet delivered by its
        // owning domain may already be freed by the time another
        // domain's filter would have dereferenced it.
        if (pkt->src)
            pkt->src = pair_;
        lane_.push_back(Parked{clusterEq_->curTick(), pkt->addr, pkt});
        return true;
    }

    void functionalAccess(Packet &pkt) override
    {
        lower_->functionalAccess(pkt);
    }

    std::string deviceName() const override { return name_; }

    /**
     * Barrier-time handoff (main thread): replay every parked packet
     * into the shared queue at its original send tick.
     */
    void
    drainTo(EventQueue &shared_eq)
    {
        for (const Parked &p : lane_)
            shared_eq.schedule(p.when, LaneInject{lower_, p.pkt,
                                                  &shared_eq});
        lane_.clear();
    }

    /**
     * Bank-domain variant: route each packet into the queue of the
     * bank that owns its address, so it executes in that bank's
     * domain. Called for every boundary in wiring order, giving
     * same-tick packets within a bank a deterministic
     * (boundary, send-order) sequence independent of the cluster
     * and bank-domain counts.
     */
    void
    drainBanked(const std::function<EventQueue &(Addr)> &queue_of)
    {
        for (const Parked &p : lane_) {
            EventQueue &eq = queue_of(p.addr);
            eq.schedule(p.when, LaneInject{lower_, p.pkt, &eq});
        }
        lane_.clear();
    }

    /**
     * Double-buffered handoff (overlapped drain): retire the active
     * lane into the staging lane with one O(1) swap at the barrier,
     * so the deterministic drain of window N's traffic reads a
     * buffer the cluster can no longer touch while window N+1's
     * sends park into a fresh active lane.
     */
    void
    swapLanes()
    {
        pv_assert(staged_.empty(),
                  "staging lane not drained before swap");
        staged_.swap(lane_);
    }

    /**
     * Fanned-out drain of the staging lane: each bank-domain worker
     * calls this as its window prologue with a filter that returns
     * its own domain's queue for addresses it owns and nullptr for
     * the rest. The lane is scanned concurrently but read-only —
     * routing uses the address copied at park time, never the
     * packet, which another domain may deliver (and free) while
     * this worker is still scanning. Within a bank the (boundary,
     * send-order) sequence is the same one drainBanked would
     * produce. The main thread clearStaged()s after the bank
     * barrier.
     */
    void
    drainStaged(
        const std::function<EventQueue *(Addr)> &queue_of_mine) const
    {
        for (const Parked &p : staged_) {
            if (EventQueue *eq = queue_of_mine(p.addr))
                eq->schedule(p.when, LaneInject{lower_, p.pkt, eq});
        }
    }

    void clearStaged() { staged_.clear(); }

    bool laneEmpty() const
    {
        return lane_.empty() && staged_.empty();
    }

  private:
    /** A parked send: tick and address are captured at park time so
     *  concurrent drains route without touching the packet. */
    struct Parked {
        Tick when;
        Addr addr;
        PacketPtr pkt;
    };

    MemDevice *lower_;
    UpstreamBoundary *pair_;
    EventQueue *clusterEq_;
    std::string name_;
    std::vector<Parked> lane_;
    /** Retired lane being drained (overlapped mode only). */
    std::vector<Parked> staged_;
};

/**
 * The L2's memory side in bank-domain mode: parks each downstream
 * packet (miss fetch, writeback, clean evict) in the lane of its
 * owning bank, and the main thread replays the lanes into the
 * shared DRAM queue in ascending bank order at the barrier. DRAM
 * keeps serving requests serially on the base queue; only the
 * arrival order of same-tick requests is canonicalized, making
 * channel arbitration independent of the bank-to-domain grouping.
 */
class BankLaneRouter : public MemDevice
{
  public:
    BankLaneRouter(MemDevice *lower,
                   std::vector<EventQueue *> bank_eqs,
                   std::function<unsigned(Addr)> bank_of,
                   std::string name)
        : lower_(lower), bankEqs_(std::move(bank_eqs)),
          bankOf_(std::move(bank_of)), lanes_(bankEqs_.size()),
          name_(std::move(name))
    {}

    bool
    recvRequest(PacketPtr pkt) override
    {
        unsigned bank = bankOf_(pkt->addr);
        lanes_[bank].emplace_back(bankEqs_[bank]->curTick(), pkt);
        return true;
    }

    void functionalAccess(Packet &pkt) override
    {
        lower_->functionalAccess(pkt);
    }

    std::string deviceName() const override { return name_; }

    /** Barrier-time flush (main thread), ascending bank order. */
    void
    drainTo(EventQueue &shared_eq)
    {
        for (auto &lane : lanes_) {
            for (auto &[when, pkt] : lane)
                shared_eq.schedule(when, LaneInject{lower_, pkt,
                                                    &shared_eq});
            lane.clear();
        }
    }

    /**
     * In-phase DRAM variant (dramLanes > 1): walk every parked
     * packet in the canonical order the monolithic DRAM queue would
     * have executed it — ascending send tick, ties broken by
     * (bank, issue-order), exactly the (tick, insertion) order
     * drainTo() produces — handing each to the service callback
     * (Dram::serviceSharded). The walk is the serial residue; the
     * service itself lands in the bank queues.
     */
    void
    drainSharded(
        const std::function<void(Tick, PacketPtr)> &service)
    {
        scratch_.clear();
        for (auto &lane : lanes_) {
            for (auto &[when, pkt] : lane)
                scratch_.emplace_back(when, pkt);
            lane.clear();
        }
        std::stable_sort(scratch_.begin(), scratch_.end(),
                         [](const auto &a, const auto &b) {
                             return a.first < b.first;
                         });
        for (auto &[when, pkt] : scratch_)
            service(when, pkt);
        scratch_.clear();
    }

  private:
    MemDevice *lower_;
    std::vector<EventQueue *> bankEqs_;
    std::function<unsigned(Addr)> bankOf_;
    std::vector<std::vector<std::pair<Tick, PacketPtr>>> lanes_;
    /** Reused merge buffer for drainSharded. */
    std::vector<std::pair<Tick, PacketPtr>> scratch_;
    std::string name_;
};

} // namespace pvsim

#endif // PVSIM_MEM_BOUNDARY_PORT_HH
