/**
 * @file
 * Set-associative, non-blocking, write-back write-allocate cache.
 * One class serves as private L1I/L1D and as the shared, banked,
 * inclusive L2 (with an embedded MSI-style directory over the
 * attached coherent clients). Supports both functional mode
 * (synchronous, zero latency, identical state transitions) and
 * timing mode (event-driven with tag/data/bank latencies and MSHR
 * occupancy).
 *
 * The PVProxy injects its requests here exactly like an L1 would
 * ("on the backside of the L1", paper Section 1) — the cache is
 * oblivious to PV data except for statistics classification.
 */

#ifndef PVSIM_MEM_CACHE_HH
#define PVSIM_MEM_CACHE_HH

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mem/addr_map.hh"
#include "mem/cache_blk.hh"
#include "mem/mshr.hh"
#include "mem/packet.hh"
#include "mem/port.hh"
#include "mem/replacement.hh"
#include "sim/sim_object.hh"
#include "stats/stat.hh"

namespace pvsim {

/** Static configuration of one cache. */
struct CacheParams {
    std::string name = "cache";
    uint64_t sizeBytes = 64 * 1024;
    unsigned assoc = 4;
    /** Cycles from acceptance to tag resolution. */
    Cycles tagLatency = 1;
    /** Additional cycles from tag resolution to a hit response. */
    Cycles dataLatency = 1;
    unsigned numMshrs = 16;
    unsigned writeBufferEntries = 16;
    /** Interleaved banks (block-granularity); L2 uses 8 (Table 1). */
    unsigned banks = 1;
    /**
     * Inclusive directory behaviour: track upstream sharers, send
     * back-invalidations on eviction, handle recalls/upgrades. Used
     * by the shared L2.
     */
    bool directory = false;
    std::string replPolicy = "lru";
    /**
     * Paper Section 2.2 design option: drop dirty PV-range victim
     * blocks instead of writing them off-chip ("the caches become
     * virtualization aware"). Requires an AddrMap.
     */
    bool dropPvWritebacks = false;
};

/**
 * Observer interface for components that shadow one cache's
 * activity — the SMS prefetcher trains on L1D accesses and ends
 * pattern generations on evictions/invalidations.
 */
class CacheListener
{
  public:
    virtual ~CacheListener() = default;

    /**
     * Demand access completed its lookup.
     * @param hit            Block was present.
     * @param prefetched_hit Hit on a not-yet-demand-touched
     *                       prefetched block (a covered miss).
     */
    virtual void onAccess(Addr pc, Addr addr, bool is_write, bool hit,
                          bool prefetched_hit) = 0;

    /** A valid block left the cache by replacement. */
    virtual void onEvict(Addr block_addr) = 0;

    /** A valid block left the cache by external invalidation. */
    virtual void onInvalidate(Addr block_addr) = 0;
};

/** The cache proper. */
class Cache final : public SimObject, public MemDevice, public MemClient
{
  public:
    Cache(SimContext &ctx, const CacheParams &params,
          const AddrMap *addr_map = nullptr);

    // -- Wiring -----------------------------------------------------

    /** Connect the next level down (L2 for an L1; DRAM for the L2). */
    void setMemSide(MemDevice *dev) { memSide_ = dev; }

    /**
     * Register an upstream coherent client (an L1 registering with
     * the L2). The returned slot must be stamped into srcSlot of
     * every coherent request the client sends here.
     */
    int attachClient(MemClient *client);

    /** Record this cache's directory slot at the level below. */
    void setLowerSlot(int slot) { slotAtLower_ = slot; }

    /** Observer of this cache's demand activity (may be nullptr). */
    void setListener(CacheListener *l) { listener_ = l; }

    /**
     * Split the MSHR file, lookup/send queues and LRU counter into
     * per-bank partitions so events of different banks can execute
     * concurrently without sharing any mutable state (the shared
     * L2 in bank-domain timing mode). Requires block-interleaved
     * banks that divide the set count — then every set, and with it
     * every block frame, tag, LRU word and directory SharerSet,
     * belongs to exactly one bank. Must be called before any
     * traffic. The per-bank LRU counters preserve each set's
     * relative touch order, so victim choice is identical to the
     * unpartitioned cache; only MSHR/send-queue admission becomes
     * bank-local (capacity numMshrs/banks per bank).
     */
    void enableBankPartition();

    /** True after enableBankPartition(). */
    bool bankPartitioned() const { return stateBanks_ > 1; }

    /**
     * Route fills arriving from below (recvResponse deliveries)
     * into a per-address queue instead of the calling domain's —
     * bank-domain mode schedules each DRAM fill directly into the
     * owning bank's queue.
     */
    void
    setResponseRouter(std::function<EventQueue *(Addr)> router)
    {
        responseRouter_ = std::move(router);
    }

    /** Owning bank of a block address (block-interleaved). */
    unsigned bankOf(Addr block_addr) const
    {
        return unsigned(blockNumber(block_addr) % params_.banks);
    }

    // -- MemDevice (requests from above) ----------------------------

    bool recvRequest(PacketPtr pkt) override;
    void functionalAccess(Packet &pkt) override;
    std::string deviceName() const override { return name(); }

    // -- MemClient (fills and coherence from below) ------------------

    void recvResponse(PacketPtr pkt) override;
    void scheduleResponse(EventQueue &eq, Cycles delay,
                          PacketPtr pkt) override;
    void recvInvalidate(Addr block_addr) override;
    void recvDowngrade(Addr block_addr) override;
    std::string clientName() const override { return name(); }

    // -- Pipelined front side (cores) ---------------------------------

    /**
     * Timing-mode synchronous lookup, used by the cores to model a
     * pipelined L1 front side: a hit completes the packet in place
     * and returns true (no events, no stall); a miss (or a store
     * needing an upgrade) enters the MSHR path and returns false —
     * the response is delivered to pkt->src later.
     */
    bool probeAccess(PacketPtr pkt);

    // -- Prefetch side door ------------------------------------------

    /**
     * Issue a prefetch for block_addr into this cache (the paper
     * prefetches directly into the L1 with no intermediate buffer).
     * Returns false if dropped (already present, already in flight,
     * or no MSHR available).
     */
    bool issuePrefetch(Addr block_addr, Addr pc);

    // -- Introspection (tests, stats, harness) ------------------------

    unsigned numSets() const { return numSets_; }
    unsigned assoc() const { return params_.assoc; }
    uint64_t sizeBytes() const { return params_.sizeBytes; }

    /** Non-mutating block lookup (tests / invariant checks). */
    const CacheBlk *peekBlock(Addr block_addr) const;

    /** True if the cache holds the block (valid). */
    bool contains(Addr block_addr) const
    {
        return peekBlock(block_addr) != nullptr;
    }

    /** Count of valid blocks (tests). */
    uint64_t numValidBlocks() const;

    /** Visit every valid block (tests / invariant checks). */
    template <typename Fn>
    void
    forEachValidBlock(Fn &&fn) const
    {
        for (const auto &blk : blocks_)
            if (blk.valid)
                fn(blk);
    }

    /** Outstanding misses across all bank partitions. */
    unsigned
    outstandingMisses() const
    {
        unsigned n = 0;
        for (const auto &m : mshrs_)
            n += m.used();
        return n;
    }

    /** Outstanding misses of one bank partition. */
    unsigned
    outstandingMisses(unsigned bank) const
    {
        return mshrs_.at(bank % stateBanks_).used();
    }

    /** An MSHR file partition (diagnostics: who is stuck on what). */
    const MshrFile &mshrFile(unsigned bank = 0) const
    {
        return mshrs_.at(bank % stateBanks_);
    }

    /** Number of MSHR-file partitions (1 unless bank-partitioned). */
    unsigned mshrPartitions() const { return stateBanks_; }

    /** Accepted requests still in the tag-lookup stage. */
    unsigned
    pendingLookups() const
    {
        unsigned n = 0;
        for (unsigned v : pendingLookups_)
            n += v;
        return n;
    }

    /** Downstream requests queued behind backpressure. */
    size_t
    sendQueueDepth() const
    {
        size_t n = 0;
        for (const auto &q : sendQueue_)
            n += q.size();
        return n;
    }

    /** True when no activity is pending inside the cache. */
    bool quiesced() const;

    const CacheParams &params() const { return params_; }

    // -- Statistics (public: read directly by the harness) -----------

    stats::Scalar demandAccesses;
    stats::Scalar demandHits;
    stats::Scalar demandMisses;
    stats::Scalar readAccesses;
    stats::Scalar readHits;
    stats::Scalar readMisses;
    stats::Scalar writeAccesses;
    stats::Scalar writeHits;
    stats::Scalar writeMisses;
    stats::Scalar upgrades;

    stats::Scalar prefetchIssued;     ///< accepted into the cache
    stats::Scalar prefetchDropped;    ///< redundant (present/inflight)
    stats::Scalar prefetchFills;
    stats::Scalar coveredMisses;      ///< demand hit on prefetched blk
    stats::Scalar lateCovered;        ///< demand joined inflight pf
    stats::Scalar overpredictions;    ///< prefetched blk evicted unused

    stats::Scalar evictions;
    stats::Scalar writebacksOut;
    stats::Scalar cleanEvictsOut;
    stats::Scalar pvWritebacksDropped;

    stats::Scalar invalidationsSent;  ///< directory -> upstream
    stats::Scalar invalidationsRecv;
    stats::Scalar downgradesRecv;
    stats::Scalar recalls;            ///< dirty-owner fetch at L2

    stats::Scalar mshrCoalesced;
    stats::Scalar mshrRejects;

    /** Requests served, classified for Figures 6-8. */
    stats::Scalar requestsApp;
    stats::Scalar requestsPv;
    stats::Scalar missesApp;
    stats::Scalar missesPv;
    stats::Scalar writebacksApp;
    stats::Scalar writebacksPv;

    stats::Distribution missLatency;

  private:
    // -- Geometry -----------------------------------------------------

    unsigned setIndex(Addr block_addr) const
    {
        // numSets_ is a power of two for every realistic geometry;
        // the mask avoids a hardware divide on the hottest path.
        uint64_t bn = blockNumber(block_addr);
        return unsigned(setMask_ ? bn & setMask_ : bn % numSets_);
    }

    unsigned bankIndex(Addr block_addr) const
    {
        return bankOf(block_addr);
    }

    /** Partition index for MSHR/send-queue/LRU-counter state. */
    unsigned stateBankOf(Addr block_addr) const
    {
        return stateBanks_ > 1 ? bankIndex(block_addr) : 0;
    }

    CacheBlk *findBlock(Addr block_addr);

    /** First block index of a set in the flat arrays. */
    size_t
    setBase(unsigned set) const
    {
        return size_t(set) * params_.assoc;
    }

    /**
     * Invalidate blk and clear its mirrored tag. All validity
     * transitions must go through here or installBlock so tags_
     * stays exact.
     */
    void
    invalidateBlock_(CacheBlk &blk)
    {
        tags_[size_t(&blk - blocks_.data())] = kInvalidTag;
        blk.invalidate();
    }

    // -- Core state machine (shared functional/timing) ----------------

    /**
     * Serve a request that hit in blk: coherence actions, dirty/LRU
     * updates, stats, payload copy, response conversion. Leaves pkt
     * as a response.
     */
    void serveHit(Packet &pkt, CacheBlk &blk);

    /**
     * The hit/fill completion common to both modes: coherence,
     * dirty/LRU update, coverage accounting, payload copy, response
     * conversion. No hit/miss stat counting.
     */
    void completeAccess_(Packet &pkt, CacheBlk &blk);

    /** Timing: route a missing request into the MSHR file. */
    void missToMshr_(PacketPtr pkt, MemCmd down_cmd);

    /** Count a self-issued prefetch in the request class stats. */
    void countRequest_prefetch_(Addr baddr);

    /**
     * Allocate (possibly evicting) a block frame for block_addr and
     * fill it from a response/fill packet's point of view.
     */
    CacheBlk &installBlock(Addr block_addr, bool writable, bool is_pv,
                           bool is_inst, bool was_prefetch,
                           const Packet::Data *data);

    /** Evict blk: back-invalidate, write back or drop, notify. */
    void evictBlock(CacheBlk &blk);

    /** Handle an incoming Writeback/CleanEvict from above. */
    void handleWriteback(Packet &pkt);

    /** Directory: invalidate all upstream sharers except keep_slot. */
    void invalidateSharers(CacheBlk &blk, int keep_slot);

    /** Directory: pull a dirty upstream copy into this level. */
    void recallIfDirtyAbove(CacheBlk &blk);

    /** Send a writeback/clean-evict downstream (mode dependent). */
    void emitDown(PacketPtr pkt);

    /** Classify and count a served request. */
    void countRequest(const Packet &pkt, bool hit);

    // -- Timing machinery ----------------------------------------------

    void handleLookup(PacketPtr pkt);
    void handleMiss(PacketPtr pkt);
    void sendDownstream(PacketPtr pkt);
    void drainSendQueue(unsigned bank);
    Tick bankReadyTick(Addr block_addr);

    // -- Members --------------------------------------------------------

    /** tags_ value for an invalid way (never a block-aligned addr). */
    static constexpr Addr kInvalidTag = ~Addr(0);

    CacheParams params_;
    const AddrMap *addrMap_;
    unsigned numSets_;
    /** numSets_ - 1 when numSets_ is a power of two, else 0. */
    uint64_t setMask_ = 0;
    /** All block frames, flat: way w of set s at [s * assoc + w]. */
    std::vector<CacheBlk> blocks_;
    /**
     * Mirror of each frame's (valid, blockAddr) packed into one
     * word: the tag when valid, kInvalidTag otherwise. Lookups scan
     * 8 bytes per way instead of pulling whole CacheBlk frames
     * through the host caches — the single hottest loop in
     * functional simulation.
     */
    std::vector<Addr> tags_;
    /**
     * Mirror of each frame's lastTouch, maintained only on the
     * lruFast_ path (its only reader): keeps the victim scan on a
     * compact array instead of striding through CacheBlk frames.
     */
    std::vector<uint64_t> lastTouch_;
    std::unique_ptr<ReplacementPolicy> repl_;
    /** True for the (default) LRU policy: victim selection and
     *  touch run inline instead of through the policy virtuals —
     *  identical choices, no candidate-vector rebuild per miss. */
    bool lruFast_ = false;

    MemDevice *memSide_ = nullptr;
    std::vector<MemClient *> clients_;
    CacheListener *listener_ = nullptr;
    int slotAtLower_ = -1;

    /**
     * Per-bank mutable state, all indexed by stateBankOf(): one
     * partition on the default path (bit-identical to a single
     * shared structure), params_.banks partitions after
     * enableBankPartition(). No entry is ever touched by two bank
     * workers: a bank's events only reference its own addresses.
     */
    unsigned stateBanks_ = 1;
    std::vector<MshrFile> mshrs_;
    /** Accepted requests whose tag lookup has not resolved yet;
     *  counted against the MSHR budget so acceptance is honest. */
    std::vector<unsigned> pendingLookups_;
    /** LRU clock; per-bank counters keep each set's relative touch
     *  order identical to a single global counter. */
    std::vector<uint64_t> accessCounter_;
    /** Reused victim-candidate buffer (avoids per-miss allocation). */
    std::vector<std::vector<CacheBlk *>> victimScratch_;
    /** Downstream packets awaiting acceptance (misses, writebacks). */
    std::vector<std::deque<PacketPtr>> sendQueue_;
    std::vector<char> drainScheduled_;

    /** Fill-delivery redirect for bank-domain mode (else null). */
    std::function<EventQueue *(Addr)> responseRouter_;

    std::vector<Tick> bankFreeAt_;
};

} // namespace pvsim

#endif // PVSIM_MEM_CACHE_HH
