/**
 * @file
 * Physical address map: application memory plus the reserved,
 * OS-invisible per-core PV regions (paper Section 2.1). Each core's
 * region holds the PVTable segments of every virtualized engine
 * registered with that core's multi-tenant PVProxy (the proxy's
 * PvRegionLayout carves the segments per table-id). Used by the
 * PVProxy to compute request addresses and by the stats machinery
 * to classify traffic into application vs. predictor data (Figure 8).
 */

#ifndef PVSIM_MEM_ADDR_MAP_HH
#define PVSIM_MEM_ADDR_MAP_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"
#include "util/logging.hh"

namespace pvsim {

/** Traffic classification for an address. */
enum class AddrClass { App, Pv };

/** Immutable layout of physical memory for one simulated system. */
class AddrMap
{
  public:
    /**
     * @param mem_bytes         Total physical memory (paper: 3 GB).
     * @param num_cores         Cores, each with a private PVTable.
     * @param pv_bytes_per_core Reserved PVTable bytes per core.
     *
     * The PV ranges are carved from the top of physical memory; the
     * application range is everything below. The OS never sees the
     * reserved chunk (the paper's no-OS-support design option).
     */
    AddrMap(uint64_t mem_bytes, int num_cores,
            uint64_t pv_bytes_per_core)
        : memBytes_(mem_bytes), numCores_(num_cores),
          pvBytesPerCore_(pv_bytes_per_core)
    {
        uint64_t reserved = pvBytesPerCore_ * uint64_t(numCores_);
        pv_assert(reserved < memBytes_,
                  "PV reservation exceeds physical memory");
        pvBase_ = memBytes_ - reserved;
        pv_assert((pvBase_ % kBlockBytes) == 0,
                  "PV base must be block aligned");
    }

    uint64_t memBytes() const { return memBytes_; }
    int numCores() const { return numCores_; }
    uint64_t pvBytesPerCore() const { return pvBytesPerCore_; }

    /** First byte of any PV range. */
    Addr pvBase() const { return pvBase_; }

    /** Application addresses occupy [0, appLimit()). */
    Addr appLimit() const { return pvBase_; }

    /**
     * Value loaded into core i's PVStart control register: base of
     * that core's private PVTable (paper Section 2.1).
     */
    Addr
    pvStart(int core) const
    {
        pv_assert(core >= 0 && core < numCores_, "bad core id %d",
                  core);
        return pvBase_ + uint64_t(core) * pvBytesPerCore_;
    }

    /** Classify an address for traffic statistics. */
    AddrClass
    classify(Addr a) const
    {
        return a >= pvBase_ && a < memBytes_ ? AddrClass::Pv
                                             : AddrClass::App;
    }

    /** Which core's PV region contains a? @pre classify(a) == Pv. */
    int
    pvOwner(Addr a) const
    {
        pv_assert(classify(a) == AddrClass::Pv, "not a PV address");
        return int((a - pvBase_) / pvBytesPerCore_);
    }

  private:
    uint64_t memBytes_;
    int numCores_;
    uint64_t pvBytesPerCore_;
    Addr pvBase_;
};

} // namespace pvsim

#endif // PVSIM_MEM_ADDR_MAP_HH
