/**
 * @file
 * Cache block (line) state. One CacheBlk per way per set; payload
 * storage is lazily allocated because only PV data carries real
 * bytes through the hierarchy.
 */

#ifndef PVSIM_MEM_CACHE_BLK_HH
#define PVSIM_MEM_CACHE_BLK_HH

#include <array>
#include <cstdint>
#include <memory>

#include "sim/types.hh"

namespace pvsim {

/**
 * Fixed-size set of upstream directory slots. A plain uint32_t mask
 * capped the L2 at 32 coherent clients — a 64-core system has 128
 * L1s — so the directory tracks sharers in a small array of words
 * instead.
 */
struct SharerSet {
    static constexpr unsigned kSlots = 256;
    static constexpr unsigned kWords = kSlots / 64;

    uint64_t words[kWords] = {};

    void set(unsigned slot) { words[slot / 64] |= 1ull << (slot % 64); }
    void clear(unsigned slot)
    {
        words[slot / 64] &= ~(1ull << (slot % 64));
    }
    bool
    test(unsigned slot) const
    {
        return (words[slot / 64] >> (slot % 64)) & 1u;
    }
    void
    reset()
    {
        for (auto &w : words)
            w = 0;
    }
    bool
    any() const
    {
        for (auto w : words)
            if (w)
                return true;
        return false;
    }
    bool none() const { return !any(); }
};

/** State of one cache line, including directory info when in an L2. */
struct CacheBlk {
    /** Tag (the full block address, for simplicity and debugging). */
    Addr blockAddr = 0;

    bool valid = false;
    /** Locally modified relative to the level below. */
    bool dirty = false;
    /** Held in M/E: stores may hit without an upgrade. */
    bool writable = false;

    /** Filled by a prefetch and not yet touched by demand. */
    bool wasPrefetched = false;
    /** Instruction-side block (for stats only). */
    bool isInst = false;
    /** PV-range block (stats classification only). */
    bool isPv = false;

    /** LRU timestamp (monotonic access counter of the cache). */
    uint64_t lastTouch = 0;
    /** Insertion timestamp. */
    uint64_t insertedAt = 0;

    /**
     * Directory state (used only by an inclusive L2): the set of
     * upstream coherent clients holding this block, and which (if
     * any) may have a dirty copy.
     */
    SharerSet sharers;
    int16_t ownerSlot = -1;

    /** Optional payload (PV blocks only in practice). */
    std::unique_ptr<std::array<uint8_t, kBlockBytes>> data;

    bool hasData() const { return data != nullptr; }

    std::array<uint8_t, kBlockBytes> &
    ensureData()
    {
        if (!data) {
            data = std::make_unique<std::array<uint8_t, kBlockBytes>>();
            data->fill(0);
        }
        return *data;
    }

    /** Return to the invalid state, releasing any payload. */
    void
    invalidate()
    {
        valid = false;
        dirty = false;
        writable = false;
        wasPrefetched = false;
        isInst = false;
        isPv = false;
        sharers.reset();
        ownerSlot = -1;
        data.reset();
    }
};

} // namespace pvsim

#endif // PVSIM_MEM_CACHE_BLK_HH
