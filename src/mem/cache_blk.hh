/**
 * @file
 * Cache block (line) state. One CacheBlk per way per set; payload
 * storage is lazily allocated because only PV data carries real
 * bytes through the hierarchy.
 */

#ifndef PVSIM_MEM_CACHE_BLK_HH
#define PVSIM_MEM_CACHE_BLK_HH

#include <array>
#include <cstdint>
#include <memory>

#include "sim/types.hh"

namespace pvsim {

/** State of one cache line, including directory info when in an L2. */
struct CacheBlk {
    /** Tag (the full block address, for simplicity and debugging). */
    Addr blockAddr = 0;

    bool valid = false;
    /** Locally modified relative to the level below. */
    bool dirty = false;
    /** Held in M/E: stores may hit without an upgrade. */
    bool writable = false;

    /** Filled by a prefetch and not yet touched by demand. */
    bool wasPrefetched = false;
    /** Instruction-side block (for stats only). */
    bool isInst = false;
    /** PV-range block (stats classification only). */
    bool isPv = false;

    /** LRU timestamp (monotonic access counter of the cache). */
    uint64_t lastTouch = 0;
    /** Insertion timestamp. */
    uint64_t insertedAt = 0;

    /**
     * Directory state (used only by an inclusive L2): bitmask of
     * upstream coherent clients holding this block, and which (if
     * any) may have a dirty copy.
     */
    uint32_t sharers = 0;
    int8_t ownerSlot = -1;

    /** Optional payload (PV blocks only in practice). */
    std::unique_ptr<std::array<uint8_t, kBlockBytes>> data;

    bool hasData() const { return data != nullptr; }

    std::array<uint8_t, kBlockBytes> &
    ensureData()
    {
        if (!data) {
            data = std::make_unique<std::array<uint8_t, kBlockBytes>>();
            data->fill(0);
        }
        return *data;
    }

    /** Return to the invalid state, releasing any payload. */
    void
    invalidate()
    {
        valid = false;
        dirty = false;
        writable = false;
        wasPrefetched = false;
        isInst = false;
        isPv = false;
        sharers = 0;
        ownerSlot = -1;
        data.reset();
    }
};

} // namespace pvsim

#endif // PVSIM_MEM_CACHE_BLK_HH
