/**
 * @file
 * Interfaces between memory-system components.
 *
 * A MemDevice accepts requests (a cache seen from above, or DRAM).
 * A MemClient receives responses and coherence actions (a cache seen
 * from below, a core, or a PVProxy). A Cache implements both.
 */

#ifndef PVSIM_MEM_PORT_HH
#define PVSIM_MEM_PORT_HH

#include <string>

#include "mem/packet.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace pvsim {

/** Upstream endpoint: receives responses and coherence messages. */
class MemClient
{
  public:
    virtual ~MemClient() = default;

    /** A response for a request this client sent (timing mode). */
    virtual void recvResponse(PacketPtr pkt) = 0;

    /**
     * Schedule recvResponse(pkt) delay cycles from now on eq (the
     * responding device's event queue). Devices call this instead
     * of scheduling the delivery themselves so a client living in a
     * different timing domain can redirect the event into its own
     * queue — the sharded timing mode's cluster boundaries override
     * it; everyone else gets the exact event the device would have
     * scheduled (same tick, same priority, same insertion order).
     */
    virtual void
    scheduleResponse(EventQueue &eq, Cycles delay, PacketPtr pkt)
    {
        eq.schedule(eq.curTick() + delay, EventQueue::kPrioResponse,
                    [this, pkt] { recvResponse(pkt); });
    }

    /**
     * Coherence: drop the block (back-invalidation from an inclusive
     * lower level, or a remote store). Default: nothing cached above.
     */
    virtual void recvInvalidate(Addr /*block_addr*/) {}

    /**
     * Coherence: lose write permission but keep the (clean) block.
     * Any locally dirty data is considered merged into the lower
     * level by the caller.
     */
    virtual void recvDowngrade(Addr /*block_addr*/) {}

    /** Name for debugging. */
    virtual std::string clientName() const = 0;
};

/** Downstream endpoint: accepts requests. */
class MemDevice
{
  public:
    virtual ~MemDevice() = default;

    /**
     * Timing mode: try to accept a request. Returns false if the
     * device is structurally blocked (MSHRs/write buffer full); the
     * caller keeps ownership and must retry later. On true, the
     * device owns the packet until it responds or consumes it.
     */
    virtual bool recvRequest(PacketPtr pkt) = 0;

    /**
     * Functional mode: perform the access fully and synchronously.
     * The packet is completed (turned into a response) in place; the
     * caller keeps ownership. All state transitions (fills,
     * evictions, writebacks, invalidations) happen as in timing
     * mode, with zero latency.
     */
    virtual void functionalAccess(Packet &pkt) = 0;

    virtual std::string deviceName() const = 0;
};

} // namespace pvsim

#endif // PVSIM_MEM_PORT_HH
