#include "mem/dram.hh"

#include <algorithm>
#include <cstring>

#include "mem/packet_pool.hh"
#include "util/logging.hh"

namespace pvsim {

Dram::Dram(SimContext &ctx, const DramParams &params,
           const AddrMap *addr_map)
    : SimObject(ctx, nullptr, params.name),
      readsApp(this, "reads_app", "block reads, application data"),
      readsPv(this, "reads_pv", "block reads, PV data"),
      writesApp(this, "writes_app", "block writes, application data"),
      writesPv(this, "writes_pv", "block writes, PV data"),
      readBytes(this, "read_bytes", "bytes read from DRAM"),
      writeBytes(this, "write_bytes", "bytes written to DRAM"),
      params_(params), addrMap_(addr_map), stores_(1)
{
}

void
Dram::enableBankStores(unsigned banks,
                       std::function<unsigned(Addr)> bank_of)
{
    pv_assert(banks > 0, "need at least one bank store");
    pv_assert(stores_.size() == 1 && stores_[0].numRegions() == 0,
              "enableBankStores must precede any block write");
    stores_.clear();
    stores_.resize(banks);
    storeBankOf_ = std::move(bank_of);
}

DramStore &
Dram::storeOf(Addr block_addr)
{
    if (stores_.size() == 1)
        return stores_[0];
    return stores_[storeBankOf_(block_addr)];
}

const DramStore &
Dram::storeOf(Addr block_addr) const
{
    if (stores_.size() == 1)
        return stores_[0];
    return stores_[storeBankOf_(block_addr)];
}

bool
Dram::handle(Packet &pkt)
{
    Addr baddr = blockAlign(pkt.addr);
    const bool is_pv =
        addrMap_ && addrMap_->classify(baddr) == AddrClass::Pv;

    switch (pkt.cmd) {
      case MemCmd::ReadReq:
      case MemCmd::WriteReq:
      case MemCmd::PrefetchReq: {
        // All fetches return the full block; WriteReq is a
        // fetch-with-intent (the actual store happens in the cache).
        if (is_pv)
            ++readsPv;
        else
            ++readsApp;
        readBytes += kBlockBytes;
        if (const uint8_t *bytes = storeOf(baddr).find(baddr))
            pkt.setData(bytes);
        pkt.grantsWritable = true;
        pkt.makeResponse();
        return true;
      }

      case MemCmd::UpgradeReq:
        // Memory owns everything it holds; grant silently.
        pkt.grantsWritable = true;
        pkt.makeResponse();
        return true;

      case MemCmd::Writeback: {
        if (is_pv)
            ++writesPv;
        else
            ++writesApp;
        writeBytes += kBlockBytes;
        if (pkt.hasData())
            std::memcpy(storeOf(baddr).ensure(baddr),
                        pkt.data->data(), kBlockBytes);
        return false; // consumed, no response
      }

      case MemCmd::CleanEvict:
        return false; // metadata-only, nothing to do

      default:
        panic("dram received unexpected cmd %s", memCmdName(pkt.cmd));
    }
}

bool
Dram::recvRequest(PacketPtr pkt)
{
    pv_assert(isTiming(), "recvRequest in functional mode");
    bool respond = handle(*pkt);
    if (!respond) {
        freePacket(pkt);
        return true;
    }

    Tick start = std::max(curTick(), channelFreeAt_);
    if (params_.serviceInterval > 0)
        channelFreeAt_ = start + params_.serviceInterval;
    Tick done = start + params_.latency;
    MemClient *dst = pkt->src;
    pv_assert(dst != nullptr, "dram response with no source");
    dst->scheduleResponse(ctx().events(), Cycles(done - curTick()),
                          pkt);
    return true;
}

void
Dram::serviceSharded(Tick when, PacketPtr pkt, EventQueue &bank_eq)
{
    pv_assert(isTiming(), "serviceSharded in functional mode");
    if (pkt->cmd == MemCmd::Writeback ||
        pkt->cmd == MemCmd::CleanEvict) {
        // No channel slot, no response (as in recvRequest). Applied
        // at the barrier: the inclusive L2 cannot have a fetch of
        // the same block in flight while it writes the block back,
        // so the eager store update is unobservable.
        handle(*pkt);
        freePacket(pkt);
        return;
    }
    // Channel reservation in canonical arrival order — the same
    // slot the monolithic DRAM queue would grant at tick `when`.
    Tick start = std::max(when, channelFreeAt_);
    if (params_.serviceInterval > 0)
        channelFreeAt_ = start + params_.serviceInterval;
    Tick done = start + params_.latency;
    // The heavy part runs at the response tick on the bank-domain
    // worker owning the address: stats defer into the worker's
    // stats::Deferral, and the store partition is bank-private.
    // Same-tick responses keep canonical order because they are
    // inserted here in reservation order.
    bank_eq.schedule(done, EventQueue::kPrioResponse, [this, pkt] {
        bool respond = handle(*pkt);
        pv_assert(respond, "sharded service of a no-response cmd");
        MemClient *dst = pkt->src;
        pv_assert(dst != nullptr, "dram response with no source");
        dst->recvResponse(pkt);
    });
}

void
Dram::functionalAccess(Packet &pkt)
{
    handle(pkt);
}

void
Dram::writeBlock(Addr block_addr, const Packet::Data &data)
{
    Addr baddr = blockAlign(block_addr);
    std::memcpy(storeOf(baddr).ensure(baddr), data.data(),
                kBlockBytes);
}

Packet::Data
Dram::readBlock(Addr block_addr) const
{
    Packet::Data out;
    Addr baddr = blockAlign(block_addr);
    if (const uint8_t *bytes = storeOf(baddr).find(baddr))
        std::memcpy(out.data(), bytes, kBlockBytes);
    else
        out.fill(0);
    return out;
}

bool
Dram::hasBlock(Addr block_addr) const
{
    Addr baddr = blockAlign(block_addr);
    return storeOf(baddr).has(baddr);
}

} // namespace pvsim
