#include "mem/dram.hh"

#include <algorithm>
#include <cstring>

#include "mem/packet_pool.hh"
#include "util/logging.hh"

namespace pvsim {

Dram::Dram(SimContext &ctx, const DramParams &params,
           const AddrMap *addr_map)
    : SimObject(ctx, nullptr, params.name),
      readsApp(this, "reads_app", "block reads, application data"),
      readsPv(this, "reads_pv", "block reads, PV data"),
      writesApp(this, "writes_app", "block writes, application data"),
      writesPv(this, "writes_pv", "block writes, PV data"),
      readBytes(this, "read_bytes", "bytes read from DRAM"),
      writeBytes(this, "write_bytes", "bytes written to DRAM"),
      params_(params), addrMap_(addr_map)
{
}

bool
Dram::handle(Packet &pkt)
{
    Addr baddr = blockAlign(pkt.addr);
    const bool is_pv =
        addrMap_ && addrMap_->classify(baddr) == AddrClass::Pv;

    switch (pkt.cmd) {
      case MemCmd::ReadReq:
      case MemCmd::WriteReq:
      case MemCmd::PrefetchReq: {
        // All fetches return the full block; WriteReq is a
        // fetch-with-intent (the actual store happens in the cache).
        if (is_pv)
            ++readsPv;
        else
            ++readsApp;
        readBytes += kBlockBytes;
        if (const uint8_t *bytes = store_.find(baddr))
            pkt.setData(bytes);
        pkt.grantsWritable = true;
        pkt.makeResponse();
        return true;
      }

      case MemCmd::UpgradeReq:
        // Memory owns everything it holds; grant silently.
        pkt.grantsWritable = true;
        pkt.makeResponse();
        return true;

      case MemCmd::Writeback: {
        if (is_pv)
            ++writesPv;
        else
            ++writesApp;
        writeBytes += kBlockBytes;
        if (pkt.hasData())
            std::memcpy(store_.ensure(baddr), pkt.data->data(),
                        kBlockBytes);
        return false; // consumed, no response
      }

      case MemCmd::CleanEvict:
        return false; // metadata-only, nothing to do

      default:
        panic("dram received unexpected cmd %s", memCmdName(pkt.cmd));
    }
}

bool
Dram::recvRequest(PacketPtr pkt)
{
    pv_assert(isTiming(), "recvRequest in functional mode");
    bool respond = handle(*pkt);
    if (!respond) {
        freePacket(pkt);
        return true;
    }

    Tick start = std::max(curTick(), channelFreeAt_);
    if (params_.serviceInterval > 0)
        channelFreeAt_ = start + params_.serviceInterval;
    Tick done = start + params_.latency;
    MemClient *dst = pkt->src;
    pv_assert(dst != nullptr, "dram response with no source");
    dst->scheduleResponse(ctx().events(), Cycles(done - curTick()),
                          pkt);
    return true;
}

void
Dram::functionalAccess(Packet &pkt)
{
    handle(pkt);
}

void
Dram::writeBlock(Addr block_addr, const Packet::Data &data)
{
    std::memcpy(store_.ensure(blockAlign(block_addr)), data.data(),
                kBlockBytes);
}

Packet::Data
Dram::readBlock(Addr block_addr) const
{
    Packet::Data out;
    if (const uint8_t *bytes = store_.find(blockAlign(block_addr)))
        std::memcpy(out.data(), bytes, kBlockBytes);
    else
        out.fill(0);
    return out;
}

bool
Dram::hasBlock(Addr block_addr) const
{
    return store_.has(blockAlign(block_addr));
}

} // namespace pvsim
