/**
 * @file
 * Memory request/response packets exchanged between cores, caches,
 * prefetchers, PVProxies and DRAM. A packet is created as a request,
 * travels down the hierarchy, and is turned into a response in place
 * (makeResponse()) before travelling back up.
 *
 * Ownership follows gem5 convention: raw pointers, and the component
 * that completes a packet deletes it. Static live-count bookkeeping
 * lets tests assert leak-freedom.
 */

#ifndef PVSIM_MEM_PACKET_HH
#define PVSIM_MEM_PACKET_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>

#include "sim/types.hh"
#include "util/logging.hh"

namespace pvsim {

class MemClient;

/** Command carried by a packet. */
enum class MemCmd : uint8_t {
    ReadReq,     ///< demand load / instruction fetch (GetS)
    WriteReq,    ///< store miss with intent to modify (GetX)
    UpgradeReq,  ///< store hit on a non-writable block (GetX, no data)
    PrefetchReq, ///< non-binding read issued by a prefetcher
    Writeback,   ///< dirty block pushed down; carries data if any
    CleanEvict,  ///< clean-eviction notice keeping the directory exact
    ReadResp,
    WriteResp,
    UpgradeResp,
    PrefetchResp,
};

/** Printable command name. */
const char *memCmdName(MemCmd cmd);

/** True for the request commands that expect a response. */
constexpr bool
cmdNeedsResponse(MemCmd cmd)
{
    return cmd == MemCmd::ReadReq || cmd == MemCmd::WriteReq ||
           cmd == MemCmd::UpgradeReq || cmd == MemCmd::PrefetchReq;
}

/** One memory transaction. All addresses are physical. */
class Packet
{
  public:
    /** Block-sized optional payload. */
    using Data = std::array<uint8_t, kBlockBytes>;

    /**
     * Deleter returning payload buffers to the thread-local
     * PacketPool's data freelist instead of the heap (PV traffic
     * attaches a payload to most of its packets; without recycling
     * every fill and writeback churned a 64-byte heap allocation).
     */
    struct DataDeleter {
        void operator()(Data *d) const;
    };
    using DataPtr = std::unique_ptr<Data, DataDeleter>;

    Packet(MemCmd cmd, Addr addr, int core_id)
        : cmd(cmd), addr(addr), coreId(core_id), id(nextId_++)
    {
        ++liveCount_;
    }

    ~Packet() { --liveCount_; }

    Packet(const Packet &) = delete;
    Packet &operator=(const Packet &) = delete;

    MemCmd cmd;
    /** Block-aligned physical address of the transaction. */
    Addr addr;
    /** Requesting core, or kInvalidCore for non-core agents. */
    int coreId;
    /** PC of the triggering instruction (0 when not applicable). */
    Addr pc = 0;

    /** Set for instruction-side traffic. */
    bool isInstFetch = false;
    /**
     * Set for PVProxy traffic. The caches do NOT consult this flag
     * for any behaviour (the hierarchy is oblivious to PV data, as
     * in the paper); it exists purely for statistics classification.
     */
    bool isPv = false;
    /** Set for prefetcher-generated requests. */
    bool isPrefetch = false;
    /**
     * Coherent requests participate in the L2 directory (L1 demand
     * and prefetch traffic). PV traffic is non-coherent: per-core
     * advisory data needs no sharer tracking (paper Section 3.2.2).
     */
    bool coherent = true;

    /** On responses: the block may be locally modified (M state). */
    bool grantsWritable = false;

    /** Client that should receive the response (timing mode). */
    MemClient *src = nullptr;
    /** Identity of the requesting cache at the L2 (directory slot). */
    int srcSlot = -1;

    /** Tick at which the request was first issued (latency stats). */
    Tick issueTick = 0;

    /** Unique id, for debugging and deterministic tie-breaks. */
    const uint64_t id;

    /** Optional 64-byte payload (allocated only for data-carrying
     *  transactions, i.e. PV reads/writebacks); pooled storage. */
    DataPtr data;

    /** Allocate (pool-recycled, if needed) and zero the payload. */
    Data &ensureData();

    bool hasData() const { return data != nullptr; }

    /** Copy payload bytes in from a block-sized buffer. */
    void
    setData(const uint8_t *bytes)
    {
        std::memcpy(ensureData().data(), bytes, kBlockBytes);
    }

    bool isRead() const { return cmd == MemCmd::ReadReq; }
    bool isWrite() const { return cmd == MemCmd::WriteReq; }
    bool isUpgrade() const { return cmd == MemCmd::UpgradeReq; }
    bool isPrefetchReq() const { return cmd == MemCmd::PrefetchReq; }
    bool isWriteback() const { return cmd == MemCmd::Writeback; }
    bool isCleanEvict() const { return cmd == MemCmd::CleanEvict; }

    bool
    isRequest() const
    {
        return cmd == MemCmd::ReadReq || cmd == MemCmd::WriteReq ||
               cmd == MemCmd::UpgradeReq ||
               cmd == MemCmd::PrefetchReq ||
               cmd == MemCmd::Writeback || cmd == MemCmd::CleanEvict;
    }

    bool isResponse() const { return !isRequest(); }

    /** The block must be returned in writable (M/E) state. */
    bool
    needsWritable() const
    {
        return cmd == MemCmd::WriteReq || cmd == MemCmd::UpgradeReq;
    }

    /** Turn this request into the matching response, in place. */
    void
    makeResponse()
    {
        switch (cmd) {
          case MemCmd::ReadReq:
            cmd = MemCmd::ReadResp;
            break;
          case MemCmd::WriteReq:
            cmd = MemCmd::WriteResp;
            break;
          case MemCmd::UpgradeReq:
            cmd = MemCmd::UpgradeResp;
            break;
          case MemCmd::PrefetchReq:
            cmd = MemCmd::PrefetchResp;
            break;
          default:
            panic("makeResponse on non-request packet (cmd %s)",
                  memCmdName(cmd));
        }
    }

    /** Live packet count, for leak assertions in tests. */
    static int64_t liveCount() { return liveCount_.load(); }

  private:
    static std::atomic<uint64_t> nextId_;
    static std::atomic<int64_t> liveCount_;
};

using PacketPtr = Packet *;

} // namespace pvsim

#endif // PVSIM_MEM_PACKET_HH
