/**
 * @file
 * Freelist allocator for Packets. Timing-mode simulation (and the
 * functional eviction path) used to churn the global heap with one
 * new/delete pair per miss, writeback and clean-evict; the pool
 * recycles fixed-size Packet storage instead, constructing each
 * packet in place so id uniqueness and live-count bookkeeping behave
 * exactly as with plain new.
 *
 * The pool is thread-local: every System runs single-threaded, and
 * the threaded batch harness confines each System to one worker, so
 * alloc/release pairs never cross threads and no locking is needed.
 * Storage comes from (and returns to) the global operator new, which
 * keeps pooled packets interchangeable with plain `new Packet` /
 * `delete pkt` at every boundary — external clients (tests, user
 * code) may free a pooled packet with delete, and packets they
 * allocated with new may be released into the pool.
 */

#ifndef PVSIM_MEM_PACKET_POOL_HH
#define PVSIM_MEM_PACKET_POOL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/packet.hh"

namespace pvsim {

/** Thread-local freelist of Packet-sized storage chunks. */
class PacketPool
{
  public:
    /** Freelist chunks kept across release bursts (bounds memory). */
    static constexpr size_t kMaxFree = 4096;

    PacketPool() = default;
    ~PacketPool();

    PacketPool(const PacketPool &) = delete;
    PacketPool &operator=(const PacketPool &) = delete;

    /** The calling thread's pool. */
    static PacketPool &local();

    /** Construct a packet, reusing freed storage when available. */
    PacketPtr
    alloc(MemCmd cmd, Addr addr, int core_id)
    {
        void *mem;
        if (!free_.empty()) {
            mem = free_.back();
            free_.pop_back();
            ++reused_;
        } else {
            mem = ::operator new(sizeof(Packet));
            ++fresh_;
        }
        return new (mem) Packet(cmd, addr, core_id);
    }

    /** Destroy a packet and keep its storage for reuse. */
    void
    release(PacketPtr pkt)
    {
        pkt->~Packet();
        if (free_.size() < kMaxFree)
            free_.push_back(pkt);
        else
            ::operator delete(static_cast<void *>(pkt));
    }

    /**
     * Allocate a zeroed payload buffer, reusing freed storage when
     * available (Packet::ensureData's backend — the pool recycles
     * the payloads the same way it recycles the packets carrying
     * them).
     */
    Packet::Data *
    allocData()
    {
        void *mem;
        if (!freeData_.empty()) {
            mem = freeData_.back();
            freeData_.pop_back();
            ++dataReused_;
        } else {
            mem = ::operator new(sizeof(Packet::Data));
            ++dataFresh_;
        }
        auto *d = new (mem) Packet::Data;
        d->fill(0);
        return d;
    }

    /** Keep a payload buffer for reuse (Packet::DataDeleter). */
    void
    releaseData(Packet::Data *d)
    {
        std::destroy_at(d);
        if (freeData_.size() < kMaxFree)
            freeData_.push_back(d);
        else
            ::operator delete(static_cast<void *>(d));
    }

    // -- Introspection (tests, microbenchmarks) ----------------------

    size_t freeCount() const { return free_.size(); }
    uint64_t reusedAllocs() const { return reused_; }
    uint64_t freshAllocs() const { return fresh_; }
    size_t freeDataCount() const { return freeData_.size(); }
    uint64_t reusedDataAllocs() const { return dataReused_; }
    uint64_t freshDataAllocs() const { return dataFresh_; }

  private:
    std::vector<void *> free_;
    std::vector<void *> freeData_;
    uint64_t reused_ = 0;
    uint64_t fresh_ = 0;
    uint64_t dataReused_ = 0;
    uint64_t dataFresh_ = 0;
};

/** Allocate a packet from the calling thread's pool. */
inline PacketPtr
allocPacket(MemCmd cmd, Addr addr, int core_id)
{
    return PacketPool::local().alloc(cmd, addr, core_id);
}

/** Release a packet to the calling thread's pool. */
inline void
freePacket(PacketPtr pkt)
{
    PacketPool::local().release(pkt);
}

} // namespace pvsim

#endif // PVSIM_MEM_PACKET_POOL_HH
