#include "mem/packet_pool.hh"

namespace pvsim {

PacketPool::~PacketPool()
{
    for (void *mem : free_)
        ::operator delete(mem);
    for (void *mem : freeData_)
        ::operator delete(mem);
}

PacketPool &
PacketPool::local()
{
    static thread_local PacketPool pool;
    return pool;
}

} // namespace pvsim
