#include "mem/replacement.hh"

#include "util/logging.hh"

namespace pvsim {

std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(const std::string &name, uint64_t seed)
{
    if (name == "lru")
        return std::make_unique<LruPolicy>();
    if (name == "random")
        return std::make_unique<RandomPolicy>(seed);
    if (name == "fifo")
        return std::make_unique<FifoPolicy>();
    fatal("unknown replacement policy '%s'", name.c_str());
}

} // namespace pvsim
