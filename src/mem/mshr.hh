/**
 * @file
 * Miss Status Holding Registers. Each MSHR tracks one outstanding
 * block miss and the packets (targets) waiting on the fill. Demand
 * requests coalesce onto in-flight prefetches, which is how "late"
 * prefetches still count as (partially) covering a miss.
 */

#ifndef PVSIM_MEM_MSHR_HH
#define PVSIM_MEM_MSHR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/packet.hh"
#include "sim/types.hh"
#include "util/logging.hh"

namespace pvsim {

/** One outstanding miss. */
struct Mshr {
    bool valid = false;
    Addr blockAddr = 0;
    /** Downstream request has been sent. */
    bool inService = false;
    /** Fill must grant write permission. */
    bool needsWritable = false;
    /** Allocated by a prefetch and no demand target joined yet. */
    bool prefetchOnly = false;
    /** Was allocated by a prefetch (even if demand joined later). */
    bool wasPrefetch = false;
    Tick allocTick = 0;
    /** Waiting packets, completed in order at fill time. */
    std::vector<PacketPtr> targets;

    void
    reset()
    {
        valid = false;
        inService = false;
        needsWritable = false;
        prefetchOnly = false;
        wasPrefetch = false;
        targets.clear();
    }
};

/** Fixed-capacity MSHR file with block-address lookup. */
class MshrFile
{
  public:
    explicit MshrFile(unsigned entries) : mshrs_(entries) {}

    /** Entry tracking a given block, or nullptr. */
    Mshr *
    find(Addr block_addr)
    {
        auto it = index_.find(block_addr);
        return it == index_.end() ? nullptr : &mshrs_[it->second];
    }

    bool full() const { return used_ == mshrs_.size(); }
    unsigned used() const { return used_; }
    unsigned capacity() const { return unsigned(mshrs_.size()); }

    /** Allocate an entry for block_addr. @pre !full() && !find(). */
    Mshr &
    allocate(Addr block_addr, Tick now)
    {
        pv_assert(!full(), "MSHR allocate on full file");
        pv_assert(!find(block_addr), "duplicate MSHR for block");
        for (size_t i = 0; i < mshrs_.size(); ++i) {
            if (!mshrs_[i].valid) {
                Mshr &m = mshrs_[i];
                m.reset();
                m.valid = true;
                m.blockAddr = block_addr;
                m.allocTick = now;
                index_[block_addr] = i;
                ++used_;
                return m;
            }
        }
        panic("MSHR file inconsistent: full() false but no free entry");
    }

    /** Release an entry. Targets must already be drained. */
    void
    deallocate(Mshr &m)
    {
        pv_assert(m.valid, "deallocate of invalid MSHR");
        pv_assert(m.targets.empty(), "deallocate with pending targets");
        index_.erase(m.blockAddr);
        m.reset();
        --used_;
    }

    /** All entries, valid or not (diagnostics/debug dumps). */
    const std::vector<Mshr> &entries() const { return mshrs_; }

    /**
     * Storage cost of the MSHR file in bits, for the Section 4.6
     * style accounting: address tag + status bits per entry.
     */
    uint64_t
    storageBits(unsigned addr_bits) const
    {
        // valid + inService + needsWritable + prefetchOnly = 4 bits.
        return mshrs_.size() * (uint64_t(addr_bits) + 4);
    }

  private:
    std::vector<Mshr> mshrs_;
    std::unordered_map<Addr, size_t> index_;
    unsigned used_ = 0;
};

} // namespace pvsim

#endif // PVSIM_MEM_MSHR_HH
