#include "mem/cache.hh"

#include <algorithm>

#include "mem/packet_pool.hh"

#include "util/intmath.hh"
#include "util/logging.hh"

namespace pvsim {

Cache::Cache(SimContext &ctx, const CacheParams &params,
             const AddrMap *addr_map)
    : SimObject(ctx, nullptr, params.name),
      demandAccesses(this, "demand_accesses", "demand reads+writes"),
      demandHits(this, "demand_hits", "demand hits"),
      demandMisses(this, "demand_misses", "demand misses"),
      readAccesses(this, "read_accesses", "demand reads"),
      readHits(this, "read_hits", "demand read hits"),
      readMisses(this, "read_misses", "demand read misses"),
      writeAccesses(this, "write_accesses", "demand writes"),
      writeHits(this, "write_hits", "demand write hits"),
      writeMisses(this, "write_misses", "demand write misses"),
      upgrades(this, "upgrades", "write-permission upgrades sent"),
      prefetchIssued(this, "prefetch_issued",
                     "prefetches accepted by this cache"),
      prefetchDropped(this, "prefetch_dropped",
                      "prefetches dropped (present or in flight)"),
      prefetchFills(this, "prefetch_fills",
                    "blocks filled by prefetch"),
      coveredMisses(this, "covered_misses",
                    "demand reads hitting an untouched prefetched "
                    "block"),
      lateCovered(this, "late_covered",
                  "demand reads joining an in-flight prefetch"),
      overpredictions(this, "overpredictions",
                      "prefetched blocks evicted/invalidated unused"),
      evictions(this, "evictions", "valid blocks replaced"),
      writebacksOut(this, "writebacks_out",
                    "dirty blocks written to the level below"),
      cleanEvictsOut(this, "clean_evicts_out",
                     "clean-eviction notices sent below"),
      pvWritebacksDropped(this, "pv_writebacks_dropped",
                          "dirty PV victims dropped on-chip "
                          "(virtualization-aware ablation)"),
      invalidationsSent(this, "invalidations_sent",
                        "directory invalidations to upstream caches"),
      invalidationsRecv(this, "invalidations_recv",
                        "invalidations received from below"),
      downgradesRecv(this, "downgrades_recv",
                     "write-permission downgrades received"),
      recalls(this, "recalls",
              "dirty upstream copies pulled into this level"),
      mshrCoalesced(this, "mshr_coalesced",
                    "requests merged into an existing MSHR"),
      mshrRejects(this, "mshr_rejects",
                  "requests refused because all MSHRs were busy"),
      requestsApp(this, "requests_app",
                  "requests served for application addresses"),
      requestsPv(this, "requests_pv",
                 "requests served for PVTable addresses"),
      missesApp(this, "misses_app", "misses to application addresses"),
      missesPv(this, "misses_pv", "misses to PVTable addresses"),
      writebacksApp(this, "writebacks_app",
                    "writebacks below, application addresses"),
      writebacksPv(this, "writebacks_pv",
                   "writebacks below, PVTable addresses"),
      missLatency(this, "miss_latency",
                  "demand miss latency (cycles)", 0, 1600, 50),
      params_(params), addrMap_(addr_map)
{
    mshrs_.emplace_back(params_.numMshrs);
    pendingLookups_.assign(1, 0);
    accessCounter_.assign(1, 0);
    victimScratch_.resize(1);
    sendQueue_.resize(1);
    drainScheduled_.assign(1, 0);
    pv_assert(params_.sizeBytes % (uint64_t(params_.assoc) *
                                   kBlockBytes) == 0,
              "cache size must be a multiple of assoc * block size");
    numSets_ = unsigned(params_.sizeBytes /
                        (uint64_t(params_.assoc) * kBlockBytes));
    pv_assert(numSets_ > 0, "cache must have at least one set");
    if ((numSets_ & (numSets_ - 1)) == 0)
        setMask_ = numSets_ - 1;
    blocks_.resize(size_t(numSets_) * params_.assoc);
    tags_.assign(blocks_.size(), kInvalidTag);
    lastTouch_.assign(blocks_.size(), 0);
    repl_ = makeReplacementPolicy(params_.replPolicy);
    lruFast_ = params_.replPolicy == "lru";
    bankFreeAt_.assign(std::max(1u, params_.banks), 0);
    if (params_.dropPvWritebacks)
        pv_assert(addrMap_ != nullptr,
                  "dropPvWritebacks requires an address map");
}

void
Cache::enableBankPartition()
{
    pv_assert(params_.banks > 0, "bank partition needs banks");
    pv_assert(numSets_ % params_.banks == 0,
              "%s: bank partition needs banks to divide the set "
              "count (%u sets, %u banks) so every set is owned by "
              "one bank",
              name().c_str(), numSets_, params_.banks);
    pv_assert(lruFast_ || params_.replPolicy == "fifo",
              "%s: bank partition requires a stateless replacement "
              "policy", name().c_str());
    pv_assert(outstandingMisses() == 0 && pendingLookups() == 0 &&
                  sendQueueDepth() == 0 && accessCounter_[0] == 0,
              "%s: enableBankPartition after traffic",
              name().c_str());
    stateBanks_ = params_.banks;
    const unsigned per_bank =
        std::max(1u, params_.numMshrs / stateBanks_);
    mshrs_.clear();
    for (unsigned b = 0; b < stateBanks_; ++b)
        mshrs_.emplace_back(per_bank);
    pendingLookups_.assign(stateBanks_, 0);
    accessCounter_.assign(stateBanks_, 0);
    victimScratch_.clear();
    victimScratch_.resize(stateBanks_);
    sendQueue_.clear();
    sendQueue_.resize(stateBanks_);
    drainScheduled_.assign(stateBanks_, 0);
}

int
Cache::attachClient(MemClient *client)
{
    pv_assert(clients_.size() < SharerSet::kSlots,
              "too many directory clients");
    clients_.push_back(client);
    return int(clients_.size()) - 1;
}

// ---------------------------------------------------------------------
// Lookup helpers
// ---------------------------------------------------------------------

CacheBlk *
Cache::findBlock(Addr block_addr)
{
    Addr aligned = blockAlign(block_addr);
    const size_t base = setBase(setIndex(aligned));
    const Addr *tags = tags_.data() + base;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        if (tags[w] == aligned)
            return &blocks_[base + w];
    }
    return nullptr;
}

const CacheBlk *
Cache::peekBlock(Addr block_addr) const
{
    Addr aligned = blockAlign(block_addr);
    const size_t base = setBase(setIndex(aligned));
    for (unsigned w = 0; w < params_.assoc; ++w) {
        if (tags_[base + w] == aligned)
            return &blocks_[base + w];
    }
    return nullptr;
}

uint64_t
Cache::numValidBlocks() const
{
    uint64_t n = 0;
    for (const auto &blk : blocks_)
        if (blk.valid)
            ++n;
    return n;
}

bool
Cache::quiesced() const
{
    if (outstandingMisses() != 0)
        return false;
    for (const auto &q : sendQueue_)
        if (!q.empty())
            return false;
    return true;
}

// ---------------------------------------------------------------------
// Statistics helpers
// ---------------------------------------------------------------------

void
Cache::countRequest(const Packet &pkt, bool hit)
{
    const bool is_pv =
        addrMap_ ? addrMap_->classify(pkt.addr) == AddrClass::Pv
                 : pkt.isPv;
    if (is_pv)
        ++requestsPv;
    else
        ++requestsApp;
    if (!hit) {
        if (is_pv)
            ++missesPv;
        else
            ++missesApp;
    }

    if (pkt.isPrefetch || pkt.isWriteback() || pkt.isCleanEvict())
        return;

    ++demandAccesses;
    if (pkt.isWrite() || pkt.isUpgrade()) {
        ++writeAccesses;
        if (hit)
            ++writeHits;
        else
            ++writeMisses;
    } else {
        ++readAccesses;
        if (hit)
            ++readHits;
        else
            ++readMisses;
    }
    if (hit)
        ++demandHits;
    else
        ++demandMisses;
}

// ---------------------------------------------------------------------
// Coherence helpers (directory lives in the inclusive L2)
// ---------------------------------------------------------------------

void
Cache::invalidateSharers(CacheBlk &blk, int keep_slot)
{
    if (!params_.directory)
        return;
    if (blk.ownerSlot >= 0 && blk.ownerSlot != keep_slot) {
        // The owner may hold newer data; treat it as merged here.
        blk.dirty = true;
        blk.ownerSlot = -1;
    }
    for (size_t slot = 0; slot < clients_.size(); ++slot) {
        if (int(slot) == keep_slot)
            continue;
        if (blk.sharers.test(unsigned(slot))) {
            clients_[slot]->recvInvalidate(blk.blockAddr);
            ++invalidationsSent;
        }
    }
    bool keep_held =
        keep_slot >= 0 && blk.sharers.test(unsigned(keep_slot));
    blk.sharers.reset();
    if (keep_held)
        blk.sharers.set(unsigned(keep_slot));
    if (keep_slot < 0)
        blk.ownerSlot = -1;
}

void
Cache::recallIfDirtyAbove(CacheBlk &blk)
{
    if (!params_.directory || blk.ownerSlot < 0)
        return;
    clients_[blk.ownerSlot]->recvDowngrade(blk.blockAddr);
    blk.dirty = true; // merged modified data
    blk.ownerSlot = -1;
    ++recalls;
}

// ---------------------------------------------------------------------
// Core state machine, shared between functional and timing modes
// ---------------------------------------------------------------------

void
Cache::serveHit(Packet &pkt, CacheBlk &blk)
{
    countRequest(pkt, true);
    completeAccess_(pkt, blk);
}

void
Cache::completeAccess_(Packet &pkt, CacheBlk &blk)
{
    uint64_t &ctr = accessCounter_[stateBankOf(blk.blockAddr)];
    if (lruFast_) {
        blk.lastTouch = ++ctr;
        lastTouch_[size_t(&blk - blocks_.data())] = blk.lastTouch;
    } else {
        repl_->touch(blk, ++ctr);
    }

    switch (pkt.cmd) {
      case MemCmd::ReadReq:
      case MemCmd::PrefetchReq:
        if (params_.directory) {
            if (blk.ownerSlot >= 0 && blk.ownerSlot != pkt.srcSlot)
                recallIfDirtyAbove(blk);
            if (pkt.coherent && pkt.srcSlot >= 0)
                blk.sharers.set(unsigned(pkt.srcSlot));
        }
        if (!pkt.isPrefetch && blk.wasPrefetched) {
            ++coveredMisses;
            blk.wasPrefetched = false;
        }
        if (blk.hasData())
            pkt.setData(blk.data->data());
        pkt.grantsWritable = false;
        break;

      case MemCmd::WriteReq:
      case MemCmd::UpgradeReq:
        if (params_.directory) {
            invalidateSharers(blk, pkt.srcSlot);
            if (pkt.coherent && pkt.srcSlot >= 0) {
                blk.sharers.set(unsigned(pkt.srcSlot));
                blk.ownerSlot = int16_t(pkt.srcSlot);
            }
        } else {
            // L1 store: the caller guarantees write permission.
            blk.dirty = true;
        }
        blk.wasPrefetched = false;
        if (pkt.cmd == MemCmd::WriteReq && blk.hasData())
            pkt.setData(blk.data->data());
        pkt.grantsWritable = true;
        break;

      default:
        panic("completeAccess on unexpected cmd %s",
              memCmdName(pkt.cmd));
    }
    pkt.makeResponse();
}

CacheBlk &
Cache::installBlock(Addr block_addr, bool writable, bool is_pv,
                    bool is_inst, bool was_prefetch,
                    const Packet::Data *data)
{
    Addr aligned = blockAlign(block_addr);
    const size_t base = setBase(setIndex(aligned));
    const unsigned assoc = params_.assoc;

    CacheBlk *frame = nullptr;
    for (unsigned w = 0; w < assoc; ++w) {
        if (tags_[base + w] == kInvalidTag) {
            frame = &blocks_[base + w];
            break;
        }
    }
    if (!frame) {
        if (lruFast_) {
            // Inline LRU: min lastTouch, ties to the lowest way —
            // exactly LruPolicy::victim over the set in way order.
            const uint64_t *touch = lastTouch_.data() + base;
            unsigned best = 0;
            for (unsigned w = 1; w < assoc; ++w) {
                if (touch[w] < touch[best])
                    best = w;
            }
            frame = &blocks_[base + best];
        } else {
            auto &scratch = victimScratch_[stateBankOf(aligned)];
            scratch.clear();
            for (unsigned w = 0; w < assoc; ++w)
                scratch.push_back(&blocks_[base + w]);
            frame = scratch[repl_->victim(scratch)];
        }
        evictBlock(*frame);
    }

    frame->blockAddr = aligned;
    frame->valid = true;
    tags_[size_t(frame - blocks_.data())] = aligned;
    frame->dirty = false;
    frame->writable = writable;
    frame->wasPrefetched = was_prefetch;
    frame->isInst = is_inst;
    frame->isPv = is_pv;
    frame->sharers.reset();
    frame->ownerSlot = -1;
    uint64_t &ctr = accessCounter_[stateBankOf(aligned)];
    ++ctr;
    frame->lastTouch = ctr;
    frame->insertedAt = ctr;
    if (lruFast_)
        lastTouch_[size_t(frame - blocks_.data())] = ctr;
    if (data)
        frame->ensureData() = *data;
    else
        frame->data.reset();
    if (was_prefetch)
        ++prefetchFills;
    return *frame;
}

void
Cache::evictBlock(CacheBlk &blk)
{
    pv_assert(blk.valid, "evicting an invalid block");
    ++evictions;

    // Inclusive directory: remove all upstream copies first.
    invalidateSharers(blk, -1);

    if (blk.wasPrefetched)
        ++overpredictions;

    const bool is_pv =
        addrMap_ ? addrMap_->classify(blk.blockAddr) == AddrClass::Pv
                 : blk.isPv;

    if (blk.dirty) {
        if (params_.dropPvWritebacks && is_pv) {
            // Virtualization-aware option (paper Section 2.2): the
            // dirty predictor line is silently discarded; predictor
            // data is advisory so only effectiveness is affected.
            ++pvWritebacksDropped;
        } else {
            auto *wb = allocPacket(MemCmd::Writeback, blk.blockAddr,
                                   kInvalidCore);
            wb->coherent = !params_.directory;
            wb->srcSlot = slotAtLower_;
            wb->isPv = blk.isPv;
            wb->isInstFetch = blk.isInst;
            if (blk.hasData())
                wb->setData(blk.data->data());
            ++writebacksOut;
            if (is_pv)
                ++writebacksPv;
            else
                ++writebacksApp;
            emitDown(wb);
        }
    } else if (!params_.directory && memSide_) {
        // Clean-eviction notice keeps the L2 directory exact.
        auto *ce = allocPacket(MemCmd::CleanEvict, blk.blockAddr,
                               kInvalidCore);
        ce->srcSlot = slotAtLower_;
        ce->isPv = blk.isPv;
        ++cleanEvictsOut;
        emitDown(ce);
    }

    if (listener_)
        listener_->onEvict(blk.blockAddr);

    invalidateBlock_(blk);
}

void
Cache::handleWriteback(Packet &pkt)
{
    CacheBlk *blk = findBlock(pkt.addr);
    const bool is_pv =
        addrMap_ ? addrMap_->classify(pkt.addr) == AddrClass::Pv
                 : pkt.isPv;
    if (is_pv)
        ++requestsPv;
    else
        ++requestsApp;

    if (pkt.isCleanEvict()) {
        if (blk && params_.directory && pkt.srcSlot >= 0) {
            blk->sharers.clear(unsigned(pkt.srcSlot));
            if (blk->ownerSlot == pkt.srcSlot)
                blk->ownerSlot = -1;
        }
        return;
    }

    // Dirty writeback from above.
    if (blk) {
        blk->dirty = true;
        if (pkt.hasData())
            blk->ensureData() = *pkt.data;
        if (params_.directory && pkt.srcSlot >= 0) {
            blk->sharers.clear(unsigned(pkt.srcSlot));
            if (blk->ownerSlot == pkt.srcSlot)
                blk->ownerSlot = -1;
        }
    } else {
        // Allocate-on-writeback (e.g. a PVProxy line after the L2
        // copy was evicted, or a race with this level's eviction).
        CacheBlk &nb = installBlock(pkt.addr, true, pkt.isPv,
                                    pkt.isInstFetch, false,
                                    pkt.data.get());
        nb.dirty = true;
    }
}

void
Cache::emitDown(PacketPtr pkt)
{
    if (!memSide_) {
        freePacket(pkt);
        return;
    }
    if (!isTiming()) {
        memSide_->functionalAccess(*pkt);
        freePacket(pkt);
        return;
    }
    sendDownstream(pkt);
}

// ---------------------------------------------------------------------
// Functional mode
// ---------------------------------------------------------------------

void
Cache::functionalAccess(Packet &pkt)
{
    if (pkt.isWriteback() || pkt.isCleanEvict()) {
        handleWriteback(pkt);
        return;
    }

    CacheBlk *blk = findBlock(pkt.addr);

    // Upgrade with the line still present needs no fill; with the
    // line lost (race with eviction) it degenerates to a write miss.
    bool hit = blk != nullptr;
    if (pkt.isUpgrade() && !hit)
        pkt.cmd = MemCmd::WriteReq;

    if (listener_ && !pkt.isPrefetch) {
        listener_->onAccess(pkt.pc, pkt.addr,
                            pkt.isWrite() || pkt.isUpgrade(), hit,
                            hit && blk->wasPrefetched &&
                                !pkt.isInstFetch);
        if (!hit) {
            // The listener may have prefetched this very block (a
            // perfectly timely prefetch); re-probe and count it as
            // a covered miss through the normal hit path.
            blk = findBlock(pkt.addr);
            hit = blk != nullptr;
        }
    }

    if (hit) {
        if ((pkt.isWrite() || pkt.isUpgrade()) &&
            !params_.directory && !blk->writable) {
            // Store hit without write permission: upgrade below so
            // remote sharers are invalidated (keeps the directory
            // and cross-core generation-ending behaviour exact even
            // with zero-latency accesses).
            pv_assert(memSide_ != nullptr, "upgrade with no mem side");
            Packet up(MemCmd::UpgradeReq, blockAlign(pkt.addr),
                      pkt.coreId);
            up.pc = pkt.pc;
            up.coherent = pkt.coherent;
            up.srcSlot = slotAtLower_;
            memSide_->functionalAccess(up);
            blk->writable = true;
        }
        serveHit(pkt, *blk);
        return;
    }

    countRequest(pkt, false);

    // Miss: fetch the block from below, install, then complete.
    pv_assert(memSide_ != nullptr, "%s: miss with no memory side",
              name().c_str());
    MemCmd down_cmd = pkt.needsWritable() ? MemCmd::WriteReq
                                          : pkt.cmd;
    Packet dpkt(down_cmd, blockAlign(pkt.addr), pkt.coreId);
    dpkt.pc = pkt.pc;
    dpkt.isInstFetch = pkt.isInstFetch;
    dpkt.isPv = pkt.isPv;
    dpkt.isPrefetch = pkt.isPrefetch;
    dpkt.coherent = pkt.coherent;
    dpkt.srcSlot = slotAtLower_;
    memSide_->functionalAccess(dpkt);

    CacheBlk &nb = installBlock(pkt.addr, dpkt.grantsWritable,
                                pkt.isPv, pkt.isInstFetch,
                                pkt.isPrefetch, dpkt.data.get());
    completeAccess_(pkt, nb);
}

// ---------------------------------------------------------------------
// Timing mode
// ---------------------------------------------------------------------

Tick
Cache::bankReadyTick(Addr block_addr)
{
    unsigned bank = params_.banks > 1 ? bankIndex(block_addr) : 0;
    Tick ready = std::max(curTick(), bankFreeAt_[bank]);
    bankFreeAt_[bank] = ready + params_.tagLatency;
    return ready;
}

bool
Cache::recvRequest(PacketPtr pkt)
{
    pv_assert(isTiming(), "recvRequest in functional mode");
    pv_assert(pkt->isRequest(), "recvRequest with non-request %s",
              memCmdName(pkt->cmd));

    if (pkt->isWriteback() || pkt->isCleanEvict()) {
        // Writebacks are sunk immediately; backpressure comes from
        // the sender's queue, not from here.
        handleWriteback(*pkt);
        freePacket(pkt);
        return true;
    }

    // Structural backpressure: refuse when the bank's MSHR file
    // (including accepted-but-unresolved lookups) is full and the
    // request cannot coalesce, or the bank's send queue is clogged.
    const unsigned bank = stateBankOf(pkt->addr);
    MshrFile &mshrs = mshrs_[bank];
    bool mshr_budget_full =
        mshrs.used() + pendingLookups_[bank] >= mshrs.capacity();
    if (mshr_budget_full && !mshrs.find(blockAlign(pkt->addr)) &&
        !findBlock(pkt->addr)) {
        ++mshrRejects;
        return false;
    }
    if (sendQueue_[bank].size() >= params_.writeBufferEntries +
                                       params_.numMshrs) {
        ++mshrRejects;
        return false;
    }

    if (pkt->issueTick == 0)
        pkt->issueTick = curTick();

    ++pendingLookups_[bank];
    Tick ready = bankReadyTick(pkt->addr);
    Tick lookup_done = ready + params_.tagLatency;
    schedule(lookup_done - curTick(),
             [this, pkt] { handleLookup(pkt); });
    return true;
}

bool
Cache::probeAccess(PacketPtr pkt)
{
    pv_assert(isTiming(), "probeAccess in functional mode");
    if (pkt->issueTick == 0)
        pkt->issueTick = curTick();

    CacheBlk *blk = findBlock(pkt->addr);
    bool hit = blk != nullptr;

    if (pkt->isUpgrade() && !hit)
        pkt->cmd = MemCmd::WriteReq;

    if (listener_ && !pkt->isPrefetch) {
        listener_->onAccess(pkt->pc, pkt->addr,
                            pkt->isWrite() || pkt->isUpgrade(), hit,
                            hit && blk->wasPrefetched &&
                                !pkt->isInstFetch);
    }

    if (hit) {
        if ((pkt->isWrite() || pkt->isUpgrade()) &&
            !params_.directory && !blk->writable) {
            // Store hit without write permission: upgrade below.
            countRequest(*pkt, true);
            missToMshr_(pkt, MemCmd::UpgradeReq);
            return false;
        }
        serveHit(*pkt, *blk);
        return true;
    }

    countRequest(*pkt, false);
    missToMshr_(pkt, pkt->needsWritable() ? MemCmd::WriteReq
                                          : pkt->cmd);
    return false;
}

void
Cache::handleLookup(PacketPtr pkt)
{
    unsigned &pending = pendingLookups_[stateBankOf(pkt->addr)];
    pv_assert(pending > 0, "lookup underflow");
    --pending;
    if (probeAccess(pkt)) {
        // Let the destination place the delivery event: a client in
        // another timing domain (sharded mode's cluster boundary)
        // redirects it into its own queue.
        pkt->src->scheduleResponse(ctx().events(),
                                   params_.dataLatency, pkt);
    }
}

void
Cache::missToMshr_(PacketPtr pkt, MemCmd down_cmd)
{
    Addr baddr = blockAlign(pkt->addr);
    MshrFile &mshrs = mshrs_[stateBankOf(baddr)];
    Mshr *mshr = mshrs.find(baddr);
    if (mshr) {
        ++mshrCoalesced;
        if (mshr->prefetchOnly && !pkt->isPrefetch) {
            mshr->prefetchOnly = false;
            ++lateCovered;
        }
        mshr->needsWritable |= pkt->needsWritable();
        if (pkt->isPrefetch && pkt->src == nullptr) {
            // A source-less prefetch joining an in-flight miss is
            // redundant: the fill is already on its way and nobody
            // waits on this packet.
            ++prefetchDropped;
            freePacket(pkt);
            return;
        }
        // Demand requests — and prefetches forwarded from an upper
        // cache, whose MSHR stays in service until we answer —
        // queue as targets. Dropping a forwarded prefetch here
        // stranded the upper MSHR forever: its core deadlocked the
        // moment it touched that block (found as a once-in-8-runs
        // hang of the fig9 matched pairs).
        mshr->targets.push_back(pkt);
        return;
    }

    if (mshrs.full()) {
        // Filled up since acceptance; retry the MSHR allocation only
        // (stats and listener hooks already ran exactly once).
        schedule(1, [this, pkt, down_cmd] {
            missToMshr_(pkt, down_cmd);
        });
        return;
    }

    Mshr &m = mshrs.allocate(baddr, curTick());
    m.needsWritable = pkt->needsWritable();
    m.prefetchOnly = pkt->isPrefetch;
    m.wasPrefetch = pkt->isPrefetch;
    // All upstream packets (including prefetches forwarded from an
    // L1) wait as targets and are answered at fill time.
    m.targets.push_back(pkt);

    if (down_cmd == MemCmd::UpgradeReq)
        ++upgrades;

    auto *dpkt = allocPacket(down_cmd, baddr, pkt->coreId);
    dpkt->pc = pkt->pc;
    dpkt->isInstFetch = pkt->isInstFetch;
    dpkt->isPv = pkt->isPv;
    dpkt->isPrefetch = pkt->isPrefetch;
    dpkt->coherent = pkt->coherent;
    dpkt->src = this;
    dpkt->srcSlot = slotAtLower_;
    dpkt->issueTick = curTick();
    m.inService = true;
    sendDownstream(dpkt);
}

void
Cache::sendDownstream(PacketPtr pkt)
{
    const unsigned bank = stateBankOf(pkt->addr);
    sendQueue_[bank].push_back(pkt);
    drainSendQueue(bank);
}

void
Cache::drainSendQueue(unsigned bank)
{
    auto &queue = sendQueue_[bank];
    if (drainScheduled_[bank] || queue.empty())
        return;
    pv_assert(memSide_ != nullptr, "%s: no memory side",
              name().c_str());
    while (!queue.empty()) {
        PacketPtr head = queue.front();
        if (!memSide_->recvRequest(head))
            break;
        queue.pop_front();
    }
    if (!queue.empty()) {
        drainScheduled_[bank] = 1;
        schedule(1, [this, bank] {
            drainScheduled_[bank] = 0;
            drainSendQueue(bank);
        });
    }
}

void
Cache::scheduleResponse(EventQueue &eq, Cycles delay, PacketPtr pkt)
{
    if (responseRouter_) {
        // Bank-domain mode: the fill must execute in the owning
        // bank's domain, not the domain of the sender (DRAM on the
        // base queue). The due tick carries at least the DRAM
        // latency, so it is always beyond the bank's current window.
        EventQueue *teq = responseRouter_(pkt->addr);
        teq->schedule(eq.curTick() + delay, EventQueue::kPrioResponse,
                      [this, pkt] { recvResponse(pkt); });
        return;
    }
    MemClient::scheduleResponse(eq, delay, pkt);
}

void
Cache::recvResponse(PacketPtr pkt)
{
    Addr baddr = blockAlign(pkt->addr);
    MshrFile &mshrs = mshrs_[stateBankOf(baddr)];
    Mshr *mshr = mshrs.find(baddr);
    pv_assert(mshr != nullptr, "%s: response with no MSHR for %llx",
              name().c_str(), (unsigned long long)baddr);

    // The block may already be valid here (an upgrade, or a race
    // where another path installed it); update in place then, never
    // create a duplicate frame for the same tag.
    CacheBlk *blk = findBlock(baddr);
    if (blk) {
        blk->writable |= pkt->grantsWritable;
        if (pkt->hasData())
            blk->ensureData() = *pkt->data;
    } else {
        blk = &installBlock(baddr, pkt->grantsWritable, pkt->isPv,
                            pkt->isInstFetch, mshr->prefetchOnly,
                            pkt->data.get());
    }

    // Complete the waiting targets in arrival order.
    std::vector<PacketPtr> targets;
    targets.swap(mshr->targets);
    mshrs.deallocate(*mshr);

    for (PacketPtr t : targets) {
        if (t->isPrefetchReq() && t->src == nullptr) {
            // Self-issued prefetch: the fill itself was the point.
            freePacket(t);
            continue;
        }
        completeAccess_(*t, *blk);
        if (!t->isPrefetch)
            missLatency.sample(curTick() - t->issueTick);
        MemClient *dst = t->src;
        pv_assert(dst != nullptr, "target with no source client");
        dst->scheduleResponse(ctx().events(), params_.dataLatency, t);
    }

    freePacket(pkt);
}

void
Cache::recvInvalidate(Addr block_addr)
{
    CacheBlk *blk = findBlock(block_addr);
    if (!blk)
        return;
    ++invalidationsRecv;
    if (blk->wasPrefetched)
        ++overpredictions;
    if (listener_)
        listener_->onInvalidate(blk->blockAddr);
    invalidateBlock_(*blk);
}

void
Cache::recvDowngrade(Addr block_addr)
{
    CacheBlk *blk = findBlock(block_addr);
    if (!blk)
        return;
    ++downgradesRecv;
    blk->writable = false;
    blk->dirty = false; // merged into the level below by the caller
}

// ---------------------------------------------------------------------
// Prefetch side door
// ---------------------------------------------------------------------

bool
Cache::issuePrefetch(Addr block_addr, Addr pc)
{
    Addr baddr = blockAlign(block_addr);
    if (findBlock(baddr)) {
        ++prefetchDropped;
        return false;
    }

    if (!isTiming()) {
        pv_assert(memSide_ != nullptr, "prefetch with no memory side");
        ++prefetchIssued;
        countRequest_prefetch_(baddr);
        Packet dpkt(MemCmd::PrefetchReq, baddr, kInvalidCore);
        dpkt.pc = pc;
        dpkt.isPrefetch = true;
        dpkt.srcSlot = slotAtLower_;
        memSide_->functionalAccess(dpkt);
        installBlock(baddr, false, false, false, true,
                     dpkt.data.get());
        return true;
    }

    MshrFile &mshrs = mshrs_[stateBankOf(baddr)];
    if (mshrs.find(baddr)) {
        ++prefetchDropped;
        return false;
    }
    if (mshrs.full()) {
        ++prefetchDropped;
        return false;
    }

    ++prefetchIssued;
    countRequest_prefetch_(baddr);
    Mshr &m = mshrs.allocate(baddr, curTick());
    m.prefetchOnly = true;
    m.wasPrefetch = true;
    m.inService = true;

    auto *dpkt = allocPacket(MemCmd::PrefetchReq, baddr, kInvalidCore);
    dpkt->pc = pc;
    dpkt->isPrefetch = true;
    dpkt->src = this;
    dpkt->srcSlot = slotAtLower_;
    dpkt->issueTick = curTick();
    sendDownstream(dpkt);
    return true;
}

void
Cache::countRequest_prefetch_(Addr baddr)
{
    const bool is_pv =
        addrMap_ && addrMap_->classify(baddr) == AddrClass::Pv;
    if (is_pv) {
        ++requestsPv;
        ++missesPv;
    } else {
        ++requestsApp;
        ++missesApp;
    }
}

} // namespace pvsim
