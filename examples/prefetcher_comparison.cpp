/**
 * @file
 * Domain scenario: a database-server consolidation study. An
 * architect wants SMS-class prefetching for OLTP (TPC-C style)
 * workloads but cannot afford 60 KB of dedicated SRAM per core.
 * This example walks the decision the paper motivates:
 *
 *   1. baseline (no prefetch)          - the starting point
 *   2. SMS with a big dedicated PHT    - fast but expensive
 *   3. SMS with a small dedicated PHT  - cheap but ineffective
 *   4. SMS with a virtualized PHT (PV) - fast AND cheap
 *
 * Runs both functional (coverage/traffic) and timing (speedup)
 * analyses on the OLTP presets.
 *
 * Usage: prefetcher_comparison [--workload=oracle|db2]
 *        [--refs=600000] [--measure-records=120000]
 */

#include <iostream>

#include "harness/metrics.hh"
#include "harness/system.hh"
#include "harness/table.hh"
#include "util/args.hh"

using namespace pvsim;

namespace {

struct Candidate {
    std::string name;
    SystemConfig cfg;
    uint64_t storageBits = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    std::string workload = args.getString("workload", "oracle");
    uint64_t warmup = args.getUint("warmup", 300'000);
    uint64_t refs = args.getUint("refs", 600'000);
    uint64_t warm_rec = args.getUint("warmup-records", 40'000);
    uint64_t meas_rec = args.getUint("measure-records", 120'000);

    SystemConfig base;
    base.workload = workload;

    std::vector<Candidate> candidates;
    {
        Candidate c{"baseline", base, 0};
        candidates.push_back(c);
    }
    {
        Candidate c{"SMS-1K-11a (dedicated)", base, 0};
        c.cfg.prefetch = PrefetchMode::SmsDedicated;
        c.cfg.phtGeometry = {1024, 11};
        candidates.push_back(c);
    }
    {
        Candidate c{"SMS-16-11a (small)", base, 0};
        c.cfg.prefetch = PrefetchMode::SmsDedicated;
        c.cfg.phtGeometry = {16, 11};
        candidates.push_back(c);
    }
    {
        Candidate c{"stride (classic)", base, 0};
        c.cfg.prefetch = PrefetchMode::Stride;
        candidates.push_back(c);
    }
    {
        Candidate c{"SMS-PV8 (virtualized)", base, 0};
        c.cfg.prefetch = PrefetchMode::SmsVirtualized;
        c.cfg.phtGeometry = {1024, 11};
        c.cfg.pvCacheEntries = 8;
        candidates.push_back(c);
    }

    std::cout << "Prefetcher comparison for the '" << workload
              << "' OLTP workload (4-core CMP)\n\n";

    // Phase 1: functional coverage + traffic.
    TextTable t1("Coverage and traffic (functional, " +
                 std::to_string(refs) + " refs/core)");
    t1.setColumns({"design", "covered", "overpred",
                   "off-chip bytes", "on-chip storage/core"});
    double baseline_ipc = 0.0;
    for (auto &c : candidates) {
        SystemConfig cfg = c.cfg;
        cfg.mode = SimMode::Functional;
        System sys(cfg);
        sys.runFunctional(warmup);
        sys.resetStats();
        sys.runFunctional(refs);
        CoverageMetrics cov = coverageOf(sys);
        TrafficMetrics traffic = trafficOf(sys);
        uint64_t bits = 0;
        if (cfg.prefetch == PrefetchMode::SmsDedicated ||
            cfg.prefetch == PrefetchMode::SmsVirtualized) {
            bits = sys.pht(0)->storageBits();
            // SMS itself also needs its (small) AGT.
            bits += sys.sms(0)->agtStorageBits();
        } else if (cfg.prefetch == PrefetchMode::Stride) {
            bits = sys.stride(0)->storageBits();
        }
        c.storageBits = bits;
        t1.addRow({c.name,
                   cfg.prefetch == PrefetchMode::None
                       ? "-"
                       : fmtPct(cov.coveredPct()),
                   cfg.prefetch == PrefetchMode::None
                       ? "-"
                       : fmtPct(cov.overpredictionPct()),
                   fmtBytes(double(traffic.offChipBytes())),
                   bits ? fmtBytes(bits / 8.0) : "-"});
    }
    t1.print(std::cout);
    std::cout << "\n";

    // Phase 2: timing speedups.
    TextTable t2("Speedup over baseline (timing, " +
                 std::to_string(meas_rec) + " records/core)");
    t2.setColumns({"design", "aggregate IPC", "speedup"});
    for (auto &c : candidates) {
        double ipc = timedIpc(c.cfg, warm_rec, meas_rec);
        if (c.cfg.prefetch == PrefetchMode::None)
            baseline_ipc = ipc;
        t2.addRow({c.name, fmtDouble(ipc, 4),
                   baseline_ipc > 0 && ipc != baseline_ipc
                       ? fmtPct(100.0 * (ipc / baseline_ipc - 1.0))
                       : "-"});
    }
    t2.print(std::cout);

    std::cout
        << "\nThe virtualized design keeps the large-table speedup "
           "at roughly 1/70th of the dedicated on-chip storage — "
           "the paper's headline trade-off.\n";
    return 0;
}
