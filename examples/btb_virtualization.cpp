/**
 * @file
 * Generality demo (paper Section 6 future work): virtualize a
 * branch target buffer with the same PV framework used for the SMS
 * PHT — and run both *concurrently* as tenants of one per-core
 * PVProxy inside a fully wired System. The cores reconstruct taken
 * branches from their trace streams and drive BTB lookups/updates
 * through the shared proxy, while SMS drives the PHT tenant; the
 * proxy reports per-engine statistics for both.
 *
 * With --penalty > 0 the demo finishes with the timing-mode half
 * of the story: a matched-pair run (identical seeds) of a
 * dedicated-SRAM BTB against the virtualized one, showing what BTB
 * virtualization costs in IPC when mispredicts stall the front end.
 *
 * Usage: btb_virtualization [--workload=apache] [--refs=300000]
 *                           [--btb-sets=2048] [--penalty=8]
 */

#include <algorithm>
#include <iostream>

#include "harness/metrics.hh"
#include "harness/system.hh"
#include "harness/table.hh"
#include "util/args.hh"

using namespace pvsim;

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    std::string workload = args.getString("workload", "apache");
    uint64_t refs = args.getUint("refs", 300'000);
    unsigned btb_sets = unsigned(args.getUint("btb-sets", 2048));
    Cycles penalty = args.getUint("penalty", 8);

    // The paper's machine with SMS-PV prefetching, plus a BTB
    // tenant on every core's proxy.
    SystemConfig cfg;
    cfg.workload = workload;
    cfg.prefetch = PrefetchMode::SmsVirtualized;
    cfg.phtGeometry = {1024, 11};
    VirtEngineConfig btb;
    btb.kind = VirtEngineKind::Btb;
    btb.numSets = btb_sets;
    cfg.virtEngines.push_back(btb);
    // Room for both tenants' segments: 64 KB PHT + BTB table.
    cfg.pvBytesPerCore =
        (1024ull + btb_sets) * kBlockBytes + 64 * 1024;

    std::cout << "btb_virtualization: workload '" << workload
              << "', " << refs << " references per core, BTB "
              << btb_sets << " sets x 8 ways in memory\n\n";

    System sys(cfg);
    sys.runFunctional(refs);

    TextTable t("Two tenants, one PVProxy per core (" + workload +
                ")");
    t.setColumns({"core", "engine", "segment", "ops", "pvcache hit",
                  "drops", "writebacks"});
    for (int c = 0; c < sys.numCores(); ++c) {
        for (const auto &e : sys.engines(c)) {
            PvProxy::EngineStats &es = e->engineStats();
            uint64_t lookups = es.hits.value() + es.misses.value();
            double hit_pct =
                lookups ? 100.0 * double(es.hits.value()) /
                              double(lookups)
                        : 0.0;
            t.addRow({"core" + std::to_string(c), e->engineName(),
                      fmtBytes(double(e->tableBytes())),
                      std::to_string(es.operations.value()),
                      fmtPct(hit_pct),
                      std::to_string(es.drops.value()),
                      std::to_string(es.writebacks.value())});
        }
    }
    t.print(std::cout);

    // Branch-prediction quality through the virtualized BTB.
    uint64_t branches = 0, hits = 0;
    for (int c = 0; c < sys.numCores(); ++c) {
        branches += sys.core(c).takenBranches.value();
        hits += sys.core(c).btbHits.value();
    }
    std::cout << "\nTaken branches reconstructed: " << branches
              << ", targets predicted by the virtualized BTB: "
              << hits << " ("
              << fmtPct(branches ? 100.0 * double(hits) /
                                       double(branches)
                                 : 0.0)
              << ")\n";
    std::cout << "(Predictability tracks the workload: synthetic "
                 "streams interleave independent access streams at "
                 "random, so branch-heavy mixes cap the achievable "
                 "hit rate; try --workload=qry1 for a "
                 "loop-dominated stream.)\n";

    PvProxy &proxy = *sys.pvProxy(0);
    std::cout << "\nDedicated storage for core0's proxy (all "
              << proxy.numEngines() << " tenants): "
              << fmtBytes(proxy.storageBreakdown().totalBytes())
              << " vs " << fmtBytes(double(proxy.region().bytesUsed()))
              << " of PVTables living in the memory hierarchy.\n";
    std::cout << "The same VirtEngine framework serves the PHT and "
                 "the BTB through one shared proxy — the paper's "
                 "\"general framework\" claim (Sections 5-6).\n";

    if (penalty > 0) {
        Fig9Options opt;
        opt.numCores = 2;
        // Keep the demo quick: cap the pair's geometry.
        opt.btbSets = std::min(btb_sets, 512u);
        opt.penalty = penalty;
        std::cout << "\nTiming mode: what does virtualizing a "
                  << opt.btbSets << "-set BTB cost in IPC at a "
                  << penalty
                  << "-cycle redirect? (2-core matched pair, same "
                     "seeds; see bench/fig9_sweep for the full "
                     "sweep)\n";
        opt.warmupRecords = 2'000;
        opt.measureRecords = 10'000;
        opt.batches = 2;
        // Single-preset mini-mix; borrow the "web" branch profile
        // so the demo runs on learnable successor edges.
        opt.mixes = {{workload, {workload}, presetMixes()[0].branch}};
        Fig9Row r = fig9Sweep(opt).at(0);
        std::cout << "  dedicated SRAM BTB : IPC "
                  << fmtDouble(r.dedicatedIpc, 4)
                  << "\n  virtualized BTB    : IPC "
                  << fmtDouble(r.virtualizedIpc, 4) << "  ("
                  << fmtDouble(r.speedupPct, 2) << "% vs dedicated)\n"
                  << "Predictions a PV fill cannot deliver by fetch "
                     "time charge the same redirect as wrong ones — "
                     "the latency cost the paper flags for "
                     "latency-critical predictors (Section 6).\n";
    }
    return 0;
}
