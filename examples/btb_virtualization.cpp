/**
 * @file
 * Generality demo (paper Section 6 future work): virtualize a
 * branch target buffer with the same PV framework used for the SMS
 * PHT. A synthetic branch stream with a large, skewed branch
 * working set shows the virtualized BTB matching a large dedicated
 * table's hit rate with ~1 KB of dedicated storage.
 *
 * Usage: btb_virtualization [--branches=300000] [--working-set=30000]
 */

#include <iostream>
#include <unordered_map>

#include "core/virt_btb.hh"
#include "harness/table.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "util/args.hh"
#include "util/random.hh"

using namespace pvsim;

namespace {

/** A simple dedicated BTB for comparison. */
class DedicatedBtb
{
  public:
    DedicatedBtb(unsigned sets, unsigned ways)
        : sets_(sets), ways_(ways), table_(size_t(sets) * ways)
    {}

    bool
    lookup(Addr pc, Addr &target)
    {
        Entry *e = find(pc);
        if (!e)
            return false;
        e->lastTouch = ++touch_;
        target = e->target;
        return true;
    }

    void
    update(Addr pc, Addr target)
    {
        if (Entry *e = find(pc)) {
            e->target = target;
            e->lastTouch = ++touch_;
            return;
        }
        size_t base = (pc >> 2) % sets_ * ways_;
        Entry *victim = &table_[base];
        for (unsigned w = 0; w < ways_; ++w) {
            Entry &e = table_[base + w];
            if (!e.valid) {
                victim = &e;
                break;
            }
            if (e.lastTouch < victim->lastTouch)
                victim = &e;
        }
        victim->valid = true;
        victim->pc = pc;
        victim->target = target;
        victim->lastTouch = ++touch_;
    }

    uint64_t
    storageBits() const
    {
        return uint64_t(sets_) * ways_ * (1 + 62);
    }

  private:
    struct Entry {
        bool valid = false;
        Addr pc = 0;
        Addr target = 0;
        uint64_t lastTouch = 0;
    };

    Entry *
    find(Addr pc)
    {
        size_t base = (pc >> 2) % sets_ * ways_;
        for (unsigned w = 0; w < ways_; ++w) {
            Entry &e = table_[base + w];
            if (e.valid && e.pc == pc)
                return &e;
        }
        return nullptr;
    }

    unsigned sets_, ways_;
    std::vector<Entry> table_;
    uint64_t touch_ = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    uint64_t branches = args.getUint("branches", 300'000);
    uint64_t working_set = args.getUint("working-set", 30'000);

    // Build the memory substrate the virtualized BTB lives on.
    SimContext ctx(SimMode::Functional);
    AddrMap amap(1ull << 30, 1, 256 * 1024);
    Dram dram(ctx, DramParams{}, &amap);
    CacheParams l2p;
    l2p.name = "l2";
    l2p.sizeBytes = 2ull << 20;
    l2p.assoc = 16;
    l2p.directory = true;
    Cache l2(ctx, l2p, &amap);
    l2.setMemSide(&dram);

    VirtBtbParams vbp;
    vbp.numSets = 2048; // 16K entries in memory
    vbp.assoc = 8;
    VirtualizedBtb vbtb(ctx, vbp, amap.pvStart(0));
    vbtb.proxy().setMemSide(&l2);

    DedicatedBtb big(2048, 8); // same geometry, on chip
    DedicatedBtb small(64, 4); // what the area budget would allow

    // Synthetic branch stream: Zipf-popular branches over a working
    // set far larger than the small BTB.
    Rng rng(42);
    ZipfSampler zipf(working_set, 0.5);
    auto pc_of = [](uint64_t b) {
        return Addr(0x40000000) + b * 12;
    };
    auto target_of = [](uint64_t b) {
        return Addr(0x48000000) + (b * 52) % 0x400000;
    };

    uint64_t hits_v = 0, hits_big = 0, hits_small = 0;
    uint64_t correct_v = 0, correct_big = 0, correct_small = 0;
    for (uint64_t i = 0; i < branches; ++i) {
        uint64_t b = zipf.sample(rng);
        Addr pc = pc_of(b);
        Addr actual = target_of(b);

        Addr t = 0;
        vbtb.lookup(pc, [&](bool f, Addr tgt) {
            if (f) {
                ++hits_v;
                t = tgt;
            }
        });
        if (t == actual && t)
            ++correct_v;

        Addr tb = 0;
        if (big.lookup(pc, tb))
            ++hits_big;
        if (tb == actual)
            ++correct_big;
        Addr ts = 0;
        if (small.lookup(pc, ts))
            ++hits_small;
        if (ts == actual)
            ++correct_small;

        vbtb.update(pc, actual);
        big.update(pc, actual);
        small.update(pc, actual);
    }

    TextTable t("Virtualized BTB vs dedicated BTBs (" +
                std::to_string(branches) + " branches, " +
                std::to_string(working_set) + " distinct)");
    t.setColumns({"design", "hit rate", "correct target",
                  "dedicated storage"});
    auto pct = [&](uint64_t n) {
        return fmtPct(100.0 * double(n) / double(branches));
    };
    t.addRow({"dedicated 16K-entry", pct(hits_big),
              pct(correct_big), fmtBytes(big.storageBits() / 8.0)});
    t.addRow({"dedicated 256-entry", pct(hits_small),
              pct(correct_small),
              fmtBytes(small.storageBits() / 8.0)});
    t.addRow({"virtualized 16K-entry (PV)", pct(hits_v),
              pct(correct_v), fmtBytes(vbtb.storageBits() / 8.0)});
    t.print(std::cout);

    std::cout << "\nPVProxy stats: "
              << vbtb.proxy().pvCacheHits.value() << " PVCache hits, "
              << vbtb.proxy().pvCacheMisses.value() << " misses, "
              << vbtb.proxy().writebacks.value()
              << " dirty line writebacks\n";
    std::cout << "The same VirtualizedAssocTable framework serves "
                 "the PHT and the BTB — the paper's \"general "
                 "framework\" claim (Sections 5-6).\n";
    return 0;
}
