/**
 * @file
 * Quickstart: build the paper's quad-core machine, run one workload
 * with the original SMS prefetcher and with the virtualized (PV)
 * design, and compare coverage, traffic, and dedicated storage.
 *
 * Usage:
 *   quickstart [--scenario=FILE] [--workload=oracle]
 *              [--refs=2000000] [--warmup=1000000]
 *              [--stats=<prefix>]
 *
 * The virtualized machine comes from a scenario file when one is
 * given — or from scenarios/quickstart.json when that is found next
 * to the working directory — and is hand-built from code otherwise;
 * the dedicated-SMS and no-prefetch comparison points are derived
 * from it. With --stats, the full gem5-style statistics of each run
 * are written to "<prefix>.<config>.stats".
 */

#include <fstream>
#include <iostream>

#include "config/scenario.hh"
#include "harness/config_presets.hh"
#include "harness/metrics.hh"
#include "harness/system.hh"
#include "harness/table.hh"
#include "util/args.hh"

using namespace pvsim;

namespace {

struct RunResult {
    CoverageMetrics coverage;
    TrafficMetrics traffic;
    uint64_t storageBits = 0;
};

RunResult
run(SystemConfig cfg, uint64_t warmup, uint64_t refs,
    const std::string &stats_file)
{
    System sys(cfg);
    sys.runFunctional(warmup);
    sys.resetStats();
    sys.runFunctional(refs);

    RunResult r;
    r.coverage = coverageOf(sys);
    r.traffic = trafficOf(sys);
    if (cfg.prefetch == PrefetchMode::SmsDedicated ||
        cfg.prefetch == PrefetchMode::SmsVirtualized) {
        r.storageBits = sys.pht(0)->storageBits();
    }
    if (!stats_file.empty()) {
        std::ofstream os(stats_file + "." + cfg.label() + ".stats");
        sys.ctx().dumpStats(os);
    }
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    std::string stats_file = args.getString("stats", "");
    uint64_t refs = args.getUint("refs", 2'000'000);
    uint64_t warmup = args.getUint("warmup", 1'000'000);

    // The virtualized machine, from a scenario file when available.
    std::string scenario_file = args.getString("scenario", "");
    if (scenario_file.empty()) {
        for (const char *p : {"scenarios/quickstart.json",
                              "../scenarios/quickstart.json"}) {
            if (std::ifstream(p).good()) {
                scenario_file = p;
                break;
            }
        }
    }
    SystemConfig pv;
    if (!scenario_file.empty()) {
        Scenario s;
        try {
            s = loadScenarioFile(scenario_file);
        } catch (const std::exception &e) {
            std::cerr << "quickstart: " << e.what() << "\n";
            return 2;
        }
        pv = s.system;
        warmup = args.getUint("warmup", s.warmupRefs);
        refs = args.getUint("refs", s.measureRefs);
        std::cout << "pvsim quickstart: config from " << scenario_file
                  << " (fingerprint "
                  << config::fingerprintHex(scenarioFingerprint(s))
                  << ")\n";
    } else {
        pv = pvConfig("oracle", 8);
    }
    if (args.has("workload"))
        pv.workload = args.getString("workload", pv.workload);
    const std::string workload = pv.workload;

    std::cout << "pvsim quickstart: workload '" << workload << "', "
              << warmup << " warmup + " << refs
              << " measured references per core\n\n";

    // The comparison points derive from the same machine: dedicated
    // SRAM of the matching geometry, and no prefetcher at all.
    SystemConfig base = pv;
    base.prefetch = PrefetchMode::None;

    SystemConfig sms = pv;
    sms.prefetch = PrefetchMode::SmsDedicated;

    RunResult r_base = run(base, warmup, refs, stats_file);
    RunResult r_sms = run(sms, warmup, refs, stats_file);
    RunResult r_pv = run(pv, warmup, refs, stats_file);

    TextTable t("Original SMS vs. virtualized SMS (" + workload +
                ")");
    t.setColumns({"config", "covered", "overpred", "L2 req increase",
                  "off-chip increase", "dedicated storage"});
    t.addRow({"baseline", "-", "-", "-", "-", "-"});
    t.addRow({"SMS-1K-11a", fmtPct(r_sms.coverage.coveredPct()),
              fmtPct(r_sms.coverage.overpredictionPct()),
              fmtPct(pctIncrease(r_base.traffic.l2Requests,
                                 r_sms.traffic.l2Requests)),
              fmtPct(pctIncrease(r_base.traffic.offChipBytes(),
                                 r_sms.traffic.offChipBytes())),
              fmtBytes(double(r_sms.storageBits) / 8.0)});
    t.addRow({"SMS-PV8", fmtPct(r_pv.coverage.coveredPct()),
              fmtPct(r_pv.coverage.overpredictionPct()),
              fmtPct(pctIncrease(r_sms.traffic.l2Requests,
                                 r_pv.traffic.l2Requests)),
              fmtPct(pctIncrease(r_sms.traffic.offChipBytes(),
                                 r_pv.traffic.offChipBytes())),
              fmtBytes(double(r_pv.storageBits) / 8.0)});
    t.print(std::cout);

    std::cout << "\nSMS-PV8 rows compare against SMS-1K-11a (the "
                 "paper's comparison);\nSMS-1K-11a rows compare "
                 "against the no-prefetch baseline.\n";
    std::cout << "\nDedicated storage shrinks by "
              << fmtDouble(double(r_sms.storageBits) /
                               double(r_pv.storageBits),
                           1)
              << "x while coverage stays within "
              << fmtDouble(r_sms.coverage.coveredPct() -
                               r_pv.coverage.coveredPct(),
                           2)
              << " points of the dedicated design.\n";

    // ---- Multi-tenancy: add a BTB tenant to the same proxy --------
    SystemConfig multi = pv;
    VirtEngineConfig btb;
    btb.kind = VirtEngineKind::Btb;
    multi.virtEngines.push_back(btb);
    multi.pvBytesPerCore = 256 * 1024; // PHT + BTB segments

    System msys(multi);
    msys.runFunctional(refs);
    std::cout << "\nWith a virtualized BTB sharing each core's "
                 "PVProxy (engine registry):\n";
    for (const auto &e : msys.engines(0)) {
        PvProxy::EngineStats &es = e->engineStats();
        std::cout << "  core0." << e->engineName() << ": "
                  << es.operations.value() << " ops, "
                  << es.drops.value() << " drops, segment "
                  << fmtBytes(double(e->tableBytes()))
                  << " in memory\n";
    }
    return 0;
}
