/**
 * @file
 * Explores the PV design space the paper discusses but does not
 * fully evaluate (Sections 2.2-2.4): PVCache size sensitivity,
 * the virtualization-aware "drop dirty PV lines on-chip" option,
 * and runtime-selectable table size — all on one workload, printing
 * a compact trade-off table.
 *
 * Usage: pv_table_explorer [--workload=db2] [--refs=400000]
 */

#include <iostream>

#include "harness/metrics.hh"
#include "harness/system.hh"
#include "harness/table.hh"
#include "util/args.hh"

using namespace pvsim;

namespace {

struct Row {
    std::string name;
    SystemConfig cfg;
};

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    std::string workload = args.getString("workload", "db2");
    uint64_t warmup = args.getUint("warmup", 200'000);
    uint64_t refs = args.getUint("refs", 400'000);

    SystemConfig pv;
    pv.workload = workload;
    pv.prefetch = PrefetchMode::SmsVirtualized;
    pv.phtGeometry = {1024, 11};

    std::vector<Row> rows;
    // 1) PVCache size sweep (paper Section 4.3: 8 is enough).
    for (unsigned entries : {4u, 8u, 16u, 32u}) {
        Row r{"PVCache-" + std::to_string(entries), pv};
        r.cfg.pvCacheEntries = entries;
        rows.push_back(r);
    }
    // 2) On-chip-only PV: drop dirty PV victims at the L2 (paper
    //    Section 2.2 design option; trades accuracy for zero
    //    off-chip PV traffic).
    {
        Row r{"PV8+drop-offchip", pv};
        r.cfg.pvCacheEntries = 8;
        r.cfg.dropPvWritebacks = true;
        rows.push_back(r);
    }
    // 3) Runtime-configurable table size (paper Section 2.3): the
    //    same reserved region hosting a smaller table.
    for (unsigned sets : {256u, 512u}) {
        Row r{"PV8@" + std::to_string(sets) + "sets", pv};
        r.cfg.pvCacheEntries = 8;
        r.cfg.phtGeometry = {sets, 11};
        rows.push_back(r);
    }

    std::cout << "PV design-space exploration on '" << workload
              << "'\n\n";

    TextTable t;
    t.setColumns({"design", "covered", "overpred", "L2 req (PV)",
                  "PV off-chip bytes", "PV drops@L2"});
    for (const Row &row : rows) {
        SystemConfig cfg = row.cfg;
        cfg.mode = SimMode::Functional;
        System sys(cfg);
        sys.runFunctional(warmup);
        sys.resetStats();
        sys.runFunctional(refs);

        CoverageMetrics cov = coverageOf(sys);
        uint64_t pv_req = sys.l2().requestsPv.value();
        uint64_t pv_bytes =
            (sys.dram().readsPv.value() +
             sys.dram().writesPv.value()) *
            kBlockBytes;
        t.addRow({row.name, fmtPct(cov.coveredPct()),
                  fmtPct(cov.overpredictionPct()), fmtCount(pv_req),
                  fmtBytes(double(pv_bytes)),
                  fmtCount(sys.l2().pvWritebacksDropped.value())});
    }
    t.print(std::cout);

    std::cout
        << "\nObservations to compare with the paper: coverage is "
           "flat beyond 8 PVCache entries (Section 4.3); dropping "
           "dirty PV lines on-chip eliminates off-chip PV traffic "
           "at a small coverage cost (Section 2.2); the table size "
           "can shrink at runtime without touching the engine "
           "(Section 2.3).\n";
    return 0;
}
