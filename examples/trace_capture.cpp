/**
 * @file
 * Record/replay workflow: capture a synthetic workload to on-disk
 * trace files (one per core), then replay them through a fresh
 * system and verify the replay is byte-identical to the live
 * generator (same misses, same coverage). This is how users plug
 * their own traces into pvsim: write "<dir>/core<i>.pvtrace" in the
 * documented format (trace_io.hh) and set SystemConfig::traceDir.
 *
 * Usage: trace_capture [--workload=qry16] [--records=200000]
 *                      [--dir=/tmp/pvsim_traces] [--keep]
 */

#include <cstdio>
#include <iostream>

#include "harness/metrics.hh"
#include "harness/system.hh"
#include "harness/table.hh"
#include "trace/synthetic_gen.hh"
#include "trace/trace_io.hh"
#include "util/args.hh"

using namespace pvsim;

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    std::string workload = args.getString("workload", "qry16");
    uint64_t records = args.getUint("records", 200'000);
    std::string dir = args.getString("dir", "/tmp/pvsim_traces");
    bool keep = args.getBool("keep", false);
    int cores = int(args.getInt("cores", 4));

    // ---- Capture ------------------------------------------------------
    std::string mkdir = "mkdir -p " + dir;
    if (std::system(mkdir.c_str()) != 0) {
        std::cerr << "cannot create " << dir << "\n";
        return 1;
    }
    WorkloadParams wp = workloadPreset(workload);
    for (int c = 0; c < cores; ++c) {
        SyntheticWorkload gen(wp, c);
        TraceFileWriter writer(dir + "/core" + std::to_string(c) +
                               ".pvtrace");
        TraceRecord rec;
        for (uint64_t i = 0; i < records; ++i) {
            gen.next(rec);
            writer.append(rec);
        }
        writer.close();
    }
    std::cout << "captured " << cores << " x " << records
              << " records of '" << workload << "' into " << dir
              << " (" << (records * kTraceRecordBytes + 16) / 1024
              << " KB per core)\n\n";

    // ---- Replay vs live generation -------------------------------------
    SystemConfig live_cfg;
    live_cfg.workload = workload;
    live_cfg.numCores = cores;
    live_cfg.prefetch = PrefetchMode::SmsDedicated;

    SystemConfig replay_cfg = live_cfg;
    replay_cfg.traceDir = dir;

    System live(live_cfg);
    live.runFunctional(records);
    System replay(replay_cfg);
    replay.runFunctional(records);

    TextTable t("Live generation vs file replay (" + workload + ")");
    t.setColumns({"metric", "live", "replay"});
    auto row = [&](const std::string &name, uint64_t a, uint64_t b) {
        t.addRow({name, fmtCount(a), fmtCount(b)});
        return a == b;
    };
    bool same = true;
    same &= row("records/core", live.core(0).recordsConsumed(),
                replay.core(0).recordsConsumed());
    same &= row("L1D misses (all cores)",
                coverageOf(live).uncovered,
                coverageOf(replay).uncovered);
    same &= row("covered misses", coverageOf(live).covered,
                coverageOf(replay).covered);
    same &= row("L2 requests", trafficOf(live).l2Requests,
                trafficOf(replay).l2Requests);
    t.print(std::cout);

    if (!keep) {
        for (int c = 0; c < cores; ++c)
            std::remove((dir + "/core" + std::to_string(c) +
                         ".pvtrace")
                            .c_str());
    }

    std::cout << (same ? "\nreplay is bit-identical to live "
                         "generation\n"
                       : "\nMISMATCH between live and replay!\n");
    return same ? 0 : 1;
}
