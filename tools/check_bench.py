#!/usr/bin/env python3
"""Bench-regression gate for the CI smoke runs.

Compares freshly produced BENCH_*.json artifacts against the
committed baselines in tools/baselines/ with a tolerance band, and
fails (exit 1) on drift — so a PR that silently degrades the
dedicated-vs-virtualized deltas, the stepping harness, or the QoS
protection result breaks the build instead of only uploading a
different artifact.

What is gated, and why these tolerances:

* fig9 (BENCH_fig9.json): per-(mix, stability) row, the
  dedicated-vs-virtualized speedup delta must stay within
  --fig9-tol-pp percentage points of the baseline, hit rates within
  --hit-tol-pp, and IPCs within --ipc-rel-tol relative. The smoke
  run is deterministic for a given source tree (fixed seeds,
  matched pairs), so the band only needs to absorb
  compiler/platform floating-point wiggle.
* stepping (BENCH_stepping.json): the threaded harness must report
  bit_identical=true (the correctness property), every throughput
  must be positive, and the structural speedups that PRs 2/4 bought
  (bulk-fread trace replay, pooled payload allocation) must not
  collapse; wall-clock noise on shared CI runners is absorbed by
  generous floors on the *ratios*, never on absolute rates.
* qos (BENCH_qos.json): per-setting row, availability-redirect and
  protection percentages within --hit-tol-pp of the baseline, and
  the best protection across settings must stay positive — the
  experiment's reason to exist.
* fig9 prefetch section: the PVCache locality prefetch comparison
  (off-vs-on matched pair on the mixed preset) is gated within the
  fresh artifact itself, so it is host-independent: the prefetch-on
  side's availability-redirect rate must land strictly below the
  prefetch-off side's (the mechanism's reason to exist), the
  detector must actually have fired (nonzero prefetch fills), and
  the matched-seed IPC delta must not fall below
  --prefetch-ipc-tol-pp percent — locality prefetch is allowed to
  be IPC-neutral, never an IPC tax.
* fig9 many_core section: the serial / sharded-only / sharded+banked
  / overlapped stats dumps must be bit-identical (the
  parallel-timing determinism contract, now across bank domains,
  DRAM lanes, and drain overlap too), all IPCs within
  --ipc-rel-tol of the committed baseline, events/sec above
  --events-floor, and — only when the producing host had >= 4 cores
  and actually ran >= 2 shards — the sharded run must be at least
  --speedup-floor times faster than the serial reference. On hosts
  with >= 8 cores that actually ran >= 2 bank domains, the
  sharded+banked run must additionally reach the committed
  baseline's sharded-only events/sec (the PR 6 floor): bank domains
  must never make the sharded path slower where they can help. On
  the same hosts the overlapped run (in-phase DRAM lanes +
  prologue-fanned drains) must (a) keep its measured serial
  fraction within --serial-frac-tol-pp points of the committed
  overlapped baseline — the serial fraction this PR shrank must
  never silently creep back — (b) land strictly below the committed
  banked (legacy-barrier) baseline's serial fraction, and (c) reach
  the committed banked baseline's events/sec (the PR 7 floor).
  Every many_core_scale row (128/256 cores) must be bit-identical
  between its sharded-only and banked runs. The per-phase
  wall-clock breakdown (cluster vs shared-domain = measured serial
  fraction) is printed for every side, with the delta against the
  committed baseline, as part of the summary.

* scenarios (--pvsim + --scenarios): the committed scenario corpus
  must pass `pvsim validate` (strict parse, unknown-key rejection,
  round-trip stability) and every file's fingerprint must match the
  committed scenarios/MANIFEST.json — a scenario edit without a
  manifest refresh (or a serialization change that silently moves
  canonical forms) fails the build. Regenerate with:
      pvsim fingerprint scenarios --json > scenarios/MANIFEST.json

Usage (CI runs this from build-release/):
  check_bench.py --baseline-dir ../tools/baselines \
      --fig9 BENCH_fig9.json --stepping BENCH_stepping.json \
      --qos BENCH_qos.json \
      --pvsim ./pvsim --scenarios ../scenarios \
      --scenario-manifest ../scenarios/MANIFEST.json
Any artifact flag may be omitted to skip that gate.
"""

import argparse
import json
import subprocess
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


class Gate:
    def __init__(self):
        self.failures = []
        self.checks = 0

    def check(self, ok, msg):
        self.checks += 1
        if not ok:
            self.failures.append(msg)
            print(f"FAIL: {msg}")

    def close(self, band, tol, label):
        self.check(
            abs(band) <= tol,
            f"{label}: drift {band:+.4f} exceeds tolerance {tol}",
        )


def check_fig9(gate, current, baseline, tol_pp, hit_tol_pp, ipc_rel):
    base_rows = {
        (r["mix"], round(r["edge_stability"], 6)): r
        for r in baseline["rows"]
    }
    cur_rows = {
        (r["mix"], round(r["edge_stability"], 6)): r
        for r in current["rows"]
    }
    gate.check(
        set(base_rows) <= set(cur_rows),
        f"fig9: rows missing vs baseline: "
        f"{sorted(set(base_rows) - set(cur_rows))}",
    )
    for key, base in base_rows.items():
        cur = cur_rows.get(key)
        if cur is None:
            continue
        label = f"fig9 {key[0]}@{key[1]}"
        if "cluster_phase_seconds" in cur:
            print(f"{label}: {phase_summary(cur)}")
        gate.close(
            cur["speedup_pct"] - base["speedup_pct"],
            tol_pp,
            f"{label} speedup_pct",
        )
        for field in ("dedicated_hit_pct", "virtualized_hit_pct"):
            gate.close(
                cur[field] - base[field], hit_tol_pp,
                f"{label} {field}",
            )
        for field in ("dedicated_ipc", "virtualized_ipc"):
            b = base[field]
            gate.check(b > 0, f"{label} baseline {field} is zero")
            if b > 0:
                gate.close(
                    cur[field] / b - 1.0, ipc_rel,
                    f"{label} {field} (relative)",
                )


def check_fig9_prefetch(gate, current, ipc_tol_pp):
    """Gate the PVCache locality-prefetch comparison within the
    fresh artifact (off vs on is a matched pair produced by the same
    host and tree, so no committed baseline is needed)."""
    pf = current.get("prefetch")
    gate.check(
        isinstance(pf, dict),
        "fig9: prefetch section missing from artifact",
    )
    if not isinstance(pf, dict):
        return
    off = pf.get("off", {})
    on = pf.get("on", {})
    label = (
        f"fig9 prefetch ({pf.get('mix', '?')}, depth "
        f"{pf.get('depth', '?')}, victims "
        f"{pf.get('victim_entries', '?')})"
    )
    for side, run in (("off", off), ("on", on)):
        gate.check(
            run.get("ipc", 0) > 0, f"{label}: {side} side zero IPC"
        )
    gate.check(
        on.get("prefetch_fills", 0) > 0,
        f"{label}: stride detector never fired "
        f"(zero prefetch fills on the on side)",
    )
    off_redir = off.get("avail_redirect_pct", 0.0)
    on_redir = on.get("avail_redirect_pct", 100.0)
    gate.check(
        on_redir < off_redir,
        f"{label}: on-side availability redirects "
        f"{on_redir:.2f}% not strictly below off-side "
        f"{off_redir:.2f}% — the prefetcher buys nothing",
    )
    ipc_delta = pf.get("ipc_delta_pct", 0.0)
    gate.check(
        ipc_delta >= -ipc_tol_pp,
        f"{label}: matched-seed IPC delta {ipc_delta:+.2f}% below "
        f"-{ipc_tol_pp}% — prefetch has become an IPC tax",
    )
    print(
        f"{label}: redirects {off_redir:.2f}% -> {on_redir:.2f}% "
        f"({pf.get('avail_improvement_pct', 0.0):+.1f}% relative), "
        f"ipc {ipc_delta:+.2f}%, fills {on.get('prefetch_fills', 0)}, "
        f"useful {on.get('prefetch_useful', 0)}, victim hits "
        f"{on.get('victim_hits', 0)}"
    )


def serial_fraction(run):
    """Measured serial fraction of a many-core run (0..1)."""
    frac = run.get("serial_fraction")
    if frac is None:
        cluster = run.get("cluster_phase_seconds", 0.0)
        shared = run.get("shared_phase_seconds", 0.0)
        total = cluster + shared
        frac = shared / total if total > 0 else 0.0
    return frac


def phase_summary(run, base=None):
    """One-line cluster/shared phase split for a many-core run,
    with the serial-fraction delta against a baseline run when one
    is available."""
    cluster = run.get("cluster_phase_seconds", 0.0)
    shared = run.get("shared_phase_seconds", 0.0)
    frac = serial_fraction(run)
    line = (
        f"cluster {cluster:.3f}s + shared {shared:.3f}s "
        f"(serial fraction {100.0 * frac:.1f}%"
    )
    if base:
        delta = 100.0 * (frac - serial_fraction(base))
        line += f", {delta:+.1f}pp vs baseline"
    return line + ")"


def check_many_core(
    gate, current, baseline, ipc_rel, events_floor, speedup_floor,
    serial_frac_tol_pp,
):
    mc = current.get("many_core")
    gate.check(
        isinstance(mc, dict),
        "fig9: many_core section missing from artifact",
    )
    if not isinstance(mc, dict):
        return
    gate.check(
        mc.get("bit_identical") is True,
        "fig9 many_core: serial / sharded / banked / overlapped "
        "runs diverged — parallel-timing determinism broken",
    )
    base = baseline.get("many_core", {})
    for side in ("serial", "sharded", "banked", "overlapped"):
        run = mc.get(side)
        gate.check(
            isinstance(run, dict),
            f"fig9 many_core: '{side}' run missing from artifact",
        )
        if not isinstance(run, dict):
            continue
        print(
            f"many_core {side}: "
            f"{phase_summary(run, base.get(side))}"
        )
        b = base.get(side, {}).get("ipc", 0)
        if b > 0:
            gate.close(
                run.get("ipc", 0) / b - 1.0, ipc_rel,
                f"fig9 many_core {side} ipc (relative)",
            )
        gate.check(
            run.get("events_per_sec", 0) >= events_floor,
            f"fig9 many_core {side}: events/sec "
            f"{run.get('events_per_sec', 0):.0f} below floor "
            f"{events_floor:.0f}",
        )
    # The perf promises only bind where they can physically hold:
    # enough host cores to run the shards / bank workers, and a run
    # that actually sharded (resp. banked).
    host_cores = mc.get("host_cores", 1)
    shards = mc.get("sharded", {}).get("shards", 1)
    if host_cores >= 4 and shards >= 2:
        gate.check(
            mc.get("speedup", 0) >= speedup_floor,
            f"fig9 many_core: speedup {mc.get('speedup', 0):.2f}x "
            f"below floor {speedup_floor}x on a {host_cores}-core "
            f"host with {shards} shards",
        )
    else:
        print(
            f"note: many_core speedup not gated "
            f"(host_cores={host_cores}, shards={shards})"
        )
    # Bank domains must not cost throughput where they can help: on
    # a >= 8-core host the sharded+banked run has to reach the
    # committed baseline's sharded-only events/sec (the PR 6 floor).
    banks = mc.get("banked", {}).get("bank_domains", 1)
    if host_cores >= 8 and shards >= 2 and banks >= 2:
        floor = base.get("sharded", {}).get("events_per_sec", 0)
        got = mc.get("banked", {}).get("events_per_sec", 0)
        gate.check(
            got >= floor,
            f"fig9 many_core: sharded+banked events/sec {got:.0f} "
            f"below the baseline sharded-only floor {floor:.0f} on "
            f"a {host_cores}-core host ({banks} bank domains)",
        )
    else:
        print(
            f"note: many_core banked-vs-sharded floor not gated "
            f"(host_cores={host_cores}, shards={shards}, "
            f"bank_domains={banks})"
        )
    # The overlapped barrier's promises, again only where the bank
    # workers can physically run concurrently (>= 8 host cores):
    # its serial fraction must not creep back above its own
    # committed baseline, must stay strictly below the committed
    # legacy-barrier (banked) serial fraction, and the run must
    # reach the committed banked events/sec.
    overlap = mc.get("overlapped", {})
    lanes = overlap.get("dram_lanes", 1)
    if host_cores >= 8 and shards >= 2 and banks >= 2 and lanes >= 2:
        frac = serial_fraction(overlap)
        base_overlap = base.get("overlapped")
        if base_overlap:
            drift_pp = 100.0 * (
                frac - serial_fraction(base_overlap)
            )
            gate.check(
                drift_pp <= serial_frac_tol_pp,
                f"fig9 many_core overlapped: serial fraction "
                f"{100.0 * frac:.1f}% regressed {drift_pp:+.1f}pp "
                f"over the committed baseline (tolerance "
                f"{serial_frac_tol_pp}pp) on a {host_cores}-core "
                f"host",
            )
        base_banked = base.get("banked")
        if base_banked:
            legacy_frac = serial_fraction(base_banked)
            gate.check(
                frac < legacy_frac,
                f"fig9 many_core overlapped: serial fraction "
                f"{100.0 * frac:.1f}% not below the committed "
                f"legacy-barrier baseline "
                f"{100.0 * legacy_frac:.1f}% on a "
                f"{host_cores}-core host",
            )
            floor = base_banked.get("events_per_sec", 0)
            got = overlap.get("events_per_sec", 0)
            gate.check(
                got >= floor,
                f"fig9 many_core overlapped: events/sec "
                f"{got:.0f} below the baseline banked floor "
                f"{floor:.0f} on a {host_cores}-core host",
            )
    else:
        print(
            f"note: many_core overlapped gates not active "
            f"(host_cores={host_cores}, shards={shards}, "
            f"bank_domains={banks}, dram_lanes={lanes})"
        )
    # Scale ladder: each rung's sharded-vs-banked pair must agree
    # bit for bit, whatever the host.
    base_scale = {
        row.get("cores"): row
        for row in baseline.get("many_core_scale", [])
    }
    for row in current.get("many_core_scale", []):
        cores = row.get("cores", 0)
        gate.check(
            row.get("bit_identical") is True,
            f"fig9 many_core_scale {cores} cores: banked run "
            f"diverged from the sharded reference",
        )
        for side in ("sharded", "banked"):
            run = row.get(side, {})
            base_run = base_scale.get(cores, {}).get(side)
            print(
                f"many_core_scale {cores} {side}: "
                f"{phase_summary(run, base_run)}"
            )


def check_stepping(gate, current):
    pair = current.get("harness_matched_pair", {})
    gate.check(
        pair.get("bit_identical") is True,
        "stepping: threaded harness no longer bit-identical",
    )
    for section, rates in current.items():
        if not isinstance(rates, dict):
            continue
        for field, value in rates.items():
            if field.endswith("_per_s"):
                gate.check(
                    isinstance(value, (int, float)) and value > 0,
                    f"stepping: {section}.{field} is not positive",
                )
    # Structural wins (same-process base/fast ratios, so stable on
    # noisy runners): bulk-fread replay bought ~2.5x, pooled
    # payloads ~3.3x. Gate well below the measured values — these
    # floors catch a regression to the pre-optimization path, not
    # run-to-run noise.
    floors = {"trace_file_replay": 1.3, "payload_alloc": 1.5}
    for section, floor in floors.items():
        speedup = current.get(section, {}).get("speedup", 0)
        gate.check(
            speedup >= floor,
            f"stepping: {section}.speedup {speedup:.2f} below "
            f"floor {floor} — structural optimization regressed",
        )


def check_qos(gate, current, baseline, hit_tol_pp):
    base_rows = {r["setting"]: r for r in baseline["rows"]}
    cur_rows = {r["setting"]: r for r in current["rows"]}
    gate.check(
        set(base_rows) <= set(cur_rows),
        f"qos: settings missing vs baseline: "
        f"{sorted(set(base_rows) - set(cur_rows))}",
    )
    for label, base in base_rows.items():
        cur = cur_rows.get(label)
        if cur is None:
            continue
        gate.check(
            cur["ipc"] > 0, f"qos {label}: zero IPC"
        )
        if "cluster_phase_seconds" in cur:
            print(f"qos {label}: {phase_summary(cur)}")
        for field in ("avail_redirect_pct", "avail_improvement_pct"):
            gate.close(
                cur[field] - base[field], hit_tol_pp,
                f"qos {label} {field}",
            )
    best = max(
        (r["avail_improvement_pct"] for r in current["rows"]),
        default=0.0,
    )
    gate.check(
        best > 0.0,
        f"qos: no setting protects the BTB (best {best:.1f}%)",
    )
    het = current.get("heterogeneous")
    if isinstance(het, dict):
        clusters = het.get("clusters", [])
        gate.check(
            len(clusters) == 4,
            f"qos heterogeneous: expected 4 cluster rows, got "
            f"{len(clusters)}",
        )
        for side in ("reference", "protected"):
            run = het.get(side, {})
            gate.check(
                run.get("ipc", 0) > 0,
                f"qos heterogeneous {side}: zero IPC",
            )
            print(f"qos heterogeneous {side}: {phase_summary(run)}")
        for c in clusters:
            gate.check(
                c.get("btb_hit_pct", 0) > 0,
                f"qos heterogeneous {c.get('cluster')}: BTB tenant "
                f"starved (zero hit rate)",
            )
            print(
                f"qos heterogeneous {c.get('cluster')}: protection "
                f"{c.get('avail_improvement_pct', 0):+.1f}%"
            )


def check_scenarios(gate, pvsim, scenarios_dir, manifest_path):
    """Validate the scenario corpus and pin its fingerprints."""
    res = subprocess.run(
        [pvsim, "validate", scenarios_dir],
        capture_output=True, text=True,
    )
    sys.stdout.write(res.stdout)
    sys.stderr.write(res.stderr)
    gate.check(
        res.returncode == 0,
        f"scenarios: `pvsim validate {scenarios_dir}` failed "
        f"(exit {res.returncode})",
    )

    res = subprocess.run(
        [pvsim, "fingerprint", scenarios_dir, "--json"],
        capture_output=True, text=True,
    )
    gate.check(
        res.returncode == 0,
        f"scenarios: `pvsim fingerprint` failed "
        f"(exit {res.returncode}): {res.stderr.strip()}",
    )
    if res.returncode != 0:
        return
    live = json.loads(res.stdout)
    committed = load(manifest_path)
    gate.check(
        set(live) == set(committed),
        f"scenarios: corpus/manifest file sets differ "
        f"(only in corpus: {sorted(set(live) - set(committed))}, "
        f"only in manifest: {sorted(set(committed) - set(live))}) "
        f"— regenerate {manifest_path}",
    )
    for name in sorted(set(live) & set(committed)):
        gate.check(
            live[name] == committed[name],
            f"scenarios: {name} fingerprint drift "
            f"(manifest {committed[name]}, live {live[name]}) — "
            f"regenerate {manifest_path}",
        )


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    ap.add_argument("--baseline-dir", default="tools/baselines")
    ap.add_argument("--fig9", help="fresh BENCH_fig9.json")
    ap.add_argument("--stepping", help="fresh BENCH_stepping.json")
    ap.add_argument("--qos", help="fresh BENCH_qos.json")
    ap.add_argument("--pvsim", help="path to the pvsim binary")
    ap.add_argument(
        "--scenarios", help="scenario corpus directory to validate"
    )
    ap.add_argument(
        "--scenario-manifest",
        help="committed fingerprint manifest (MANIFEST.json)",
    )
    ap.add_argument(
        "--fig9-tol-pp", type=float, default=1.0,
        help="abs tolerance on fig9 speedup_pct (percentage points)",
    )
    ap.add_argument(
        "--hit-tol-pp", type=float, default=6.0,
        help="abs tolerance on hit/redirect percentages (points)",
    )
    ap.add_argument(
        "--ipc-rel-tol", type=float, default=0.15,
        help="relative tolerance on per-row IPC values",
    )
    ap.add_argument(
        "--events-floor", type=float, default=500_000.0,
        help="minimum many-core events/sec (either side)",
    )
    ap.add_argument(
        "--speedup-floor", type=float, default=2.0,
        help="minimum sharded speedup on capable (>=4 core) hosts",
    )
    ap.add_argument(
        "--prefetch-ipc-tol-pp", type=float, default=3.0,
        help="max matched-seed IPC loss of the prefetch-on side "
        "over prefetch-off (percent)",
    )
    ap.add_argument(
        "--serial-frac-tol-pp", type=float, default=3.0,
        help="max serial-fraction regression of the overlapped "
        "many-core run over its baseline (percentage points, "
        ">=8-core hosts only)",
    )
    args = ap.parse_args()

    gate = Gate()
    if args.fig9:
        fig9_cur = load(args.fig9)
        fig9_base = load(f"{args.baseline_dir}/BENCH_fig9.smoke.json")
        check_fig9(
            gate, fig9_cur, fig9_base,
            args.fig9_tol_pp, args.hit_tol_pp, args.ipc_rel_tol,
        )
        check_fig9_prefetch(gate, fig9_cur, args.prefetch_ipc_tol_pp)
        check_many_core(
            gate, fig9_cur, fig9_base,
            args.ipc_rel_tol, args.events_floor, args.speedup_floor,
            args.serial_frac_tol_pp,
        )
    if args.stepping:
        check_stepping(gate, load(args.stepping))
    if args.pvsim and args.scenarios:
        manifest = (
            args.scenario_manifest
            or f"{args.scenarios}/MANIFEST.json"
        )
        check_scenarios(gate, args.pvsim, args.scenarios, manifest)
    if args.qos:
        check_qos(
            gate, load(args.qos),
            load(f"{args.baseline_dir}/BENCH_qos.smoke.json"),
            args.hit_tol_pp,
        )

    if not gate.checks:
        print("check_bench: nothing to check (pass --fig9/...)")
        return 1
    if gate.failures:
        print(
            f"check_bench: {len(gate.failures)} of {gate.checks} "
            f"checks FAILED"
        )
        return 1
    print(f"check_bench: all {gate.checks} checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
