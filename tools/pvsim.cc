/**
 * @file
 * pvsim — the declarative scenario runner. Turns "add an
 * experiment" from a C++ driver into a JSON file:
 *
 *   pvsim run scenarios/fig9-mixed.json   run scenarios, emit rows
 *   pvsim run scenarios --max-cores 8     directory = whole corpus
 *   pvsim validate scenarios              strict-parse + round-trip
 *   pvsim fingerprint scenarios --json    manifest of fingerprints
 *
 * `run` executes each scenario through the same harness paths the
 * compiled bench drivers use and emits the same JSON row schema
 * (BENCH_*.json rows); `validate` fails on any syntax error,
 * unknown key, structural violation, or canonical-form round-trip
 * instability; `fingerprint --json` prints the {file: fingerprint}
 * object committed as scenarios/MANIFEST.json, which the
 * check_bench.py gate compares against the live corpus.
 *
 * Exit status: 0 all good, 1 any scenario failed, 2 bad usage.
 */

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "config/scenario.hh"
#include "util/args.hh"

using namespace pvsim;

namespace {

int
usage()
{
    std::cerr
        << "usage: pvsim <command> <file-or-dir>... [options]\n"
           "\n"
           "commands:\n"
           "  run          execute scenarios, print a rows artifact\n"
           "  validate     strict-parse, validate, round-trip check\n"
           "  fingerprint  print stable config fingerprints\n"
           "\n"
           "options:\n"
           "  --json-out FILE   (run) also write the artifact here\n"
           "  --max-cores N     (run) skip scenarios larger than N\n"
           "                    simulated cores (CI smoke subsets)\n"
           "  --json            (fingerprint) manifest-format output\n";
    return 2;
}

/** Expand every positional path into scenario files. */
std::vector<std::string>
expandPaths(const std::vector<std::string> &paths)
{
    std::vector<std::string> files;
    for (const std::string &p : paths) {
        std::vector<std::string> part = listScenarioFiles(p);
        files.insert(files.end(), part.begin(), part.end());
    }
    return files;
}

std::string
baseName(const std::string &path)
{
    return std::filesystem::path(path).filename().string();
}

int
cmdRun(const std::vector<std::string> &files, const Args &args)
{
    const uint64_t max_cores = args.getUint("max-cores", 0);
    const std::string json_out = args.getString("json-out", "");

    std::ostringstream js;
    js << "{\n  \"bench\": \"pvsim\",\n  \"scenarios\": [\n";
    bool first = true;
    int failures = 0;
    unsigned ran = 0, skipped = 0;
    for (const std::string &file : files) {
        try {
            Scenario s = loadScenarioFile(file);
            if (max_cores > 0 &&
                uint64_t(scenarioCores(s)) > max_cores) {
                std::cout << "skip " << file << " ("
                          << scenarioCores(s) << " cores > --max-cores "
                          << max_cores << ")\n";
                ++skipped;
                continue;
            }
            std::cout << "run  " << file << " [" << s.kind << ", "
                      << scenarioCores(s) << " cores] ..."
                      << std::endl;
            std::string result = runScenarioJson(s, baseName(file));
            if (!first)
                js << ",\n";
            js << "    " << result;
            first = false;
            ++ran;
        } catch (const std::exception &e) {
            std::cerr << "FAIL " << file << ": " << e.what() << "\n";
            ++failures;
        }
    }
    js << "\n  ],\n  \"ran\": " << ran
       << ",\n  \"skipped\": " << skipped
       << ",\n  \"failed\": " << failures << "\n}\n";

    std::cout << "\n" << js.str();
    if (!json_out.empty()) {
        std::ofstream out(json_out);
        out << js.str();
    }
    return failures ? 1 : 0;
}

int
cmdValidate(const std::vector<std::string> &files)
{
    int failures = 0;
    for (const std::string &file : files) {
        try {
            Scenario s = loadScenarioFile(file);
            // Round-trip stability: the canonical form must parse
            // back to a scenario with the identical canonical form
            // (and so the identical fingerprint).
            std::string canon = dumpScenario(s);
            Scenario again = parseScenario(canon, file + " (canon)");
            if (dumpScenario(again) != canon)
                throw json::ConfigError(
                    "canonical serialization is not round-trip "
                    "stable");
            std::cout << "ok   " << file << " [" << s.kind << ", "
                      << scenarioCores(s) << " cores, fp "
                      << config::fingerprintHex(
                             scenarioFingerprint(s))
                      << "]\n";
        } catch (const std::exception &e) {
            std::cerr << "FAIL " << file << ": " << e.what() << "\n";
            ++failures;
        }
    }
    std::cout << (failures ? "validate: FAILED\n" : "validate: all ok\n");
    return failures ? 1 : 0;
}

int
cmdFingerprint(const std::vector<std::string> &files, const Args &args)
{
    const bool as_json = args.getBool("json", false);
    int failures = 0;
    std::ostringstream js;
    js << "{\n";
    bool first = true;
    for (const std::string &file : files) {
        try {
            Scenario s = loadScenarioFile(file);
            std::string fp =
                config::fingerprintHex(scenarioFingerprint(s));
            if (as_json) {
                if (!first)
                    js << ",\n";
                js << "  " << json::quote(baseName(file)) << ": "
                   << json::quote(fp);
                first = false;
            } else {
                std::cout << fp << "  " << file << "\n";
            }
        } catch (const std::exception &e) {
            std::cerr << "FAIL " << file << ": " << e.what() << "\n";
            ++failures;
        }
    }
    js << "\n}\n";
    if (as_json)
        std::cout << js.str();
    return failures ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    const std::vector<std::string> &pos = args.positional();
    if (pos.empty())
        return usage();
    const std::string &cmd = pos[0];
    std::vector<std::string> paths(pos.begin() + 1, pos.end());
    if (paths.empty())
        return usage();

    std::vector<std::string> files;
    try {
        files = expandPaths(paths);
    } catch (const std::exception &e) {
        std::cerr << "pvsim: " << e.what() << "\n";
        return 2;
    }

    if (cmd == "run")
        return cmdRun(files, args);
    if (cmd == "validate")
        return cmdValidate(files);
    if (cmd == "fingerprint")
        return cmdFingerprint(files, args);
    return usage();
}
