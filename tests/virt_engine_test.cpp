/**
 * @file
 * Tests for the multi-tenant PVProxy and the VirtEngine layer: one
 * proxy serving several engines with disjoint segments, per-engine
 * statistics attribution, flush draining every tenant, the fair
 * pattern-buffer drop policy, the stride adapter, and a full System
 * running PHT + BTB virtualization through one per-core proxy.
 */

#include <gtest/gtest.h>

#include "core/virt_agt.hh"
#include "core/virt_btb.hh"
#include "core/virt_pht.hh"
#include "core/virt_stride.hh"
#include "harness/metrics.hh"
#include "harness/system.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"

using namespace pvsim;

namespace {

/** L2 + DRAM + one shared proxy with two tenants. */
struct SharedProxyTest : public ::testing::Test {
    AddrMap amap{1ull << 30, 1, 512 * 1024};
    std::unique_ptr<SimContext> ctxp;
    std::unique_ptr<Dram> dram;
    std::unique_ptr<Cache> l2;
    std::unique_ptr<PvProxy> proxy;
    std::unique_ptr<VirtualizedPht> pht;
    std::unique_ptr<VirtualizedBtb> btb;

    void
    build(SimMode mode = SimMode::Functional,
          unsigned pvcache_entries = 8)
    {
        pht.reset();
        btb.reset();
        proxy.reset();
        l2.reset();
        dram.reset();
        ctxp = std::make_unique<SimContext>(mode);
        dram = std::make_unique<Dram>(
            *ctxp, DramParams{"dram", 400, 0}, &amap);
        CacheParams l2p;
        l2p.name = "l2";
        l2p.sizeBytes = 1024 * 1024;
        l2p.assoc = 8;
        l2p.directory = true;
        l2 = std::make_unique<Cache>(*ctxp, l2p, &amap);
        l2->setMemSide(dram.get());

        PvProxyParams pp;
        pp.pvCacheEntries = pvcache_entries;
        pp.usedBitsPerLine = 0;
        proxy = std::make_unique<PvProxy>(
            *ctxp, pp, amap.pvStart(0), amap.pvBytesPerCore());
        proxy->setMemSide(l2.get());

        pht = std::make_unique<VirtualizedPht>(*proxy, "pht", 64,
                                               10);
        btb = std::make_unique<VirtualizedBtb>(*proxy, "btb", 128,
                                               8, 16);
    }
};

} // namespace

TEST_F(SharedProxyTest, TenantsGetDistinctIdsAndDisjointSegments)
{
    build();
    EXPECT_EQ(proxy->numEngines(), 2u);
    EXPECT_EQ(pht->tableId(), 0u);
    EXPECT_EQ(btb->tableId(), 1u);

    const PvTableLayout &ps = pht->segment();
    const PvTableLayout &bs = btb->segment();
    // Segments are contiguous, ordered, and non-overlapping.
    EXPECT_EQ(ps.pvStart(), amap.pvStart(0));
    EXPECT_EQ(bs.pvStart(), ps.pvStart() + ps.tableBytes());
    for (unsigned s = 0; s < ps.numSets(); ++s)
        EXPECT_FALSE(bs.contains(ps.setAddress(s)));
    for (unsigned s = 0; s < bs.numSets(); ++s)
        EXPECT_FALSE(ps.contains(bs.setAddress(s)));
}

TEST_F(SharedProxyTest, SameSetIndexOfTwoTenantsDoesNotAlias)
{
    build();
    // Key 7 of the PHT and a branch hashing to set 7 of the BTB
    // land on set index 7 of each table; through one shared proxy
    // they must stay independent.
    pht->insert(7, 0xAAAA0001);
    btb->update(Addr(7 * 4), 0x5000); // key 7 -> set 7 of 128

    SpatialPattern p = 0;
    bool found = false;
    pht->lookup(7, [&](bool f, SpatialPattern pat) {
        found = f;
        p = pat;
    });
    EXPECT_TRUE(found);
    EXPECT_EQ(p, 0xAAAA0001u);

    Addr target = 0;
    btb->lookup(Addr(7 * 4), [&](bool f, Addr t) {
        found = f;
        target = t;
    });
    EXPECT_TRUE(found);
    EXPECT_EQ(target, 0x5000u);
}

TEST_F(SharedProxyTest, StatsAreAttributedPerEngine)
{
    build();
    pht->insert(3, 0x1111);           // pht: 1 op (miss)
    pht->lookup(3, [](bool, SpatialPattern) {}); // pht: 1 op (hit)
    btb->update(0x4000, 0x5000);      // btb: 1 op (miss)

    PvProxy::EngineStats &ps = pht->engineStats();
    PvProxy::EngineStats &bs = btb->engineStats();
    EXPECT_EQ(ps.operations.value(), 2u);
    EXPECT_EQ(ps.misses.value(), 1u);
    EXPECT_EQ(ps.hits.value(), 1u);
    EXPECT_EQ(bs.operations.value(), 1u);
    EXPECT_EQ(bs.misses.value(), 1u);
    EXPECT_EQ(bs.hits.value(), 0u);
    // Aggregate equals the per-engine sum.
    EXPECT_EQ(proxy->operations.value(), 3u);
    EXPECT_EQ(proxy->pvCacheMisses.value(), 2u);
    EXPECT_EQ(proxy->pvCacheHits.value(), 1u);
}

TEST_F(SharedProxyTest, PerEngineStatsAppearInTheDump)
{
    build();
    pht->insert(3, 0x1111);
    btb->update(0x4000, 0x5000);
    std::ostringstream os;
    ctxp->dumpStats(os);
    std::string out = os.str();
    EXPECT_NE(out.find("pvproxy.pht.operations"), std::string::npos);
    EXPECT_NE(out.find("pvproxy.btb.operations"), std::string::npos);
}

TEST_F(SharedProxyTest, FlushDrainsAllTenants)
{
    build();
    pht->insert(11, 0x2222);
    btb->update(0x8000, 0x9000);
    proxy->flush();
    EXPECT_EQ(proxy->writebacks.value(), 2u);
    EXPECT_EQ(pht->engineStats().writebacks.value(), 1u);
    EXPECT_EQ(btb->engineStats().writebacks.value(), 1u);

    // Both tenants' data survives the round trip through the L2.
    SpatialPattern p = 0;
    bool found = false;
    pht->lookup(11, [&](bool f, SpatialPattern pat) {
        found = f;
        p = pat;
    });
    EXPECT_TRUE(found);
    EXPECT_EQ(p, 0x2222u);
    Addr t = 0;
    btb->lookup(0x8000, [&](bool f, Addr tgt) {
        found = f;
        t = tgt;
    });
    EXPECT_TRUE(found);
    EXPECT_EQ(t, 0x9000u);
}

TEST_F(SharedProxyTest, TenantsShareThePvCacheCapacity)
{
    build(SimMode::Functional, 2); // tiny shared PVCache
    pht->insert(1, 0x1001);
    btb->update(0x4000, 0x5000); // second entry
    btb->update(0x4040, 0x5040); // different set: evicts pht line
    uint64_t misses = proxy->pvCacheMisses.value();
    pht->lookup(1, [](bool, SpatialPattern) {});
    EXPECT_EQ(proxy->pvCacheMisses.value(), misses + 1)
        << "the BTB's footprint must have evicted the PHT line";
}

TEST_F(SharedProxyTest, FairShareReservesPatternBufferSlots)
{
    build(SimMode::Timing);
    // A two-tenant proxy with plenty of MSHRs but a tiny pattern
    // buffer: one tenant may hold at most patternBuffer-1 pending
    // ops; the reserved slot keeps the other tenant serviceable.
    PvProxyParams pp;
    pp.name = "fair";
    pp.mshrs = 16;
    pp.patternBufferEntries = 4;
    pp.usedBitsPerLine = 0;
    PvProxy fair(*ctxp, pp, amap.pvStart(0), amap.pvBytesPerCore());
    fair.setMemSide(l2.get());
    VirtualizedPht fpht(fair, "pht", 64, 10);
    VirtualizedBtb fbtb(fair, "btb", 128, 8, 16);

    for (unsigned s = 0; s < 4; ++s)
        fpht.lookup(PhtKey(s), [](bool, SpatialPattern) {});
    EXPECT_EQ(fair.fairnessDrops.value(), 1u)
        << "the 4th PHT op must be dropped for the BTB's slot";
    EXPECT_EQ(fpht.engineStats().drops.value(), 1u);

    // The BTB can still get an op in despite the PHT flood.
    bool btb_done = false;
    fbtb.lookup(0x4000, [&](bool, Addr) { btb_done = true; });
    EXPECT_EQ(fbtb.engineStats().drops.value(), 0u)
        << "the BTB op must be accepted, not dropped";
    ctxp->events().runUntil();
    EXPECT_TRUE(btb_done);
    EXPECT_TRUE(fair.quiesced());
}

TEST_F(SharedProxyTest, FairShareReservesAnMshrForEachTenant)
{
    build(SimMode::Timing);
    // Default 4 MSHRs, two tenants: the PHT may hold only 3 fetches
    // in flight; the 4th distinct set is a fairness drop and the
    // BTB's own fetch still finds an MSHR.
    for (unsigned s = 0; s < 4; ++s)
        pht->lookup(PhtKey(s), [](bool, SpatialPattern) {});
    EXPECT_EQ(proxy->fairnessDrops.value(), 1u);

    bool btb_done = false;
    btb->lookup(0x4000, [&](bool, Addr) { btb_done = true; });
    EXPECT_EQ(btb->engineStats().drops.value(), 0u)
        << "the reserved MSHR must serve the BTB";
    ctxp->events().runUntil();
    EXPECT_TRUE(btb_done);
    EXPECT_TRUE(proxy->quiesced());
}

TEST_F(SharedProxyTest, DuplicateTenantNamesAreRejected)
{
    build();
    EXPECT_DEATH(proxy->registerEngine({"pht", 16, 100, {}}),
                 "duplicate tenant name");
}

TEST_F(SharedProxyTest, RegionOvercommitIsRejected)
{
    build();
    // 512 KB region, 64 + 128 lines used; a tenant needing more
    // than the remaining lines must be refused at registration.
    unsigned free_lines =
        unsigned(proxy->region().bytesFree() / kBlockBytes);
    EXPECT_DEATH(proxy->registerEngine(
                     {"huge", free_lines + 1, 100, {}}),
                 "overcommitted");
}

// ---------------------------------------------------------------------
// Virtualized stride adapter
// ---------------------------------------------------------------------

TEST_F(SharedProxyTest, StrideEngineLearnsAndPredicts)
{
    build();
    VirtStrideParams sp;
    sp.numSets = 64;
    VirtualizedStride stride(*proxy, "stride", sp);
    EXPECT_EQ(proxy->numEngines(), 3u);

    // A steady +2-block stride at one PC.
    Addr pc = 0x40001000;
    for (int i = 0; i < 4; ++i)
        stride.observe(pc, 0x100000 + Addr(i) * 2 * kBlockBytes);

    bool confident = false;
    Addr next = 0;
    stride.predict(pc, [&](bool c, Addr n) {
        confident = c;
        next = n;
    });
    EXPECT_TRUE(confident);
    EXPECT_EQ(next, blockAlign(0x100000) + 4 * 2 * kBlockBytes);

    // An untrained PC predicts nothing.
    stride.predict(0x40002000, [&](bool c, Addr) { confident = c; });
    EXPECT_FALSE(confident);
}

TEST_F(SharedProxyTest, StrideEngineResetsConfidenceOnNewStride)
{
    build();
    VirtStrideParams sp;
    sp.numSets = 64;
    VirtualizedStride stride(*proxy, "stride", sp);

    Addr pc = 0x40001000;
    for (int i = 0; i < 4; ++i)
        stride.observe(pc, 0x100000 + Addr(i) * kBlockBytes);
    stride.observe(pc, 0x900000); // break the pattern
    bool confident = false;
    stride.predict(pc, [&](bool c, Addr) { confident = c; });
    EXPECT_FALSE(confident)
        << "one wild access must reset confidence";
}

// ---------------------------------------------------------------------
// Full system: PHT + BTB through one per-core proxy
// ---------------------------------------------------------------------

namespace {

SystemConfig
multiTenantConfig(const std::string &workload)
{
    SystemConfig cfg;
    cfg.workload = workload;
    cfg.numCores = 2;
    cfg.prefetch = PrefetchMode::SmsVirtualized;
    cfg.phtGeometry = {1024, 11};
    VirtEngineConfig btb;
    btb.kind = VirtEngineKind::Btb;
    btb.numSets = 2048;
    cfg.virtEngines.push_back(btb);
    cfg.pvBytesPerCore = 256 * 1024; // 64K PHT + 128K BTB segments
    return cfg;
}

} // namespace

TEST(SystemMultiTenant, PhtAndBtbShareOnePerCoreProxy)
{
    System sys(multiTenantConfig("apache"));
    sys.runFunctional(40000);

    for (int c = 0; c < sys.numCores(); ++c) {
        ASSERT_NE(sys.pvProxy(c), nullptr);
        ASSERT_NE(sys.virtPht(c), nullptr);
        ASSERT_NE(sys.virtBtb(c), nullptr);
        // Both engines are tenants of the same proxy object.
        EXPECT_EQ(&sys.virtPht(c)->proxy(), sys.pvProxy(c));
        EXPECT_EQ(&sys.virtBtb(c)->proxy(), sys.pvProxy(c));
        EXPECT_EQ(sys.pvProxy(c)->numEngines(), 2u);
        // Both tenants saw traffic, attributed separately.
        EXPECT_GT(sys.virtPht(c)->engineStats().operations.value(),
                  0u);
        EXPECT_GT(sys.virtBtb(c)->engineStats().operations.value(),
                  0u);
        // The core reconstructed and predicted taken branches.
        EXPECT_GT(sys.core(c).takenBranches.value(), 0u);
        EXPECT_GT(sys.core(c).btbHits.value(), 0u);
    }
}

TEST(SystemMultiTenant, TimingModeRunsAndDrains)
{
    SystemConfig cfg = multiTenantConfig("db2");
    cfg.mode = SimMode::Timing;
    System sys(cfg);
    Tick finish = sys.runTiming(8000);
    EXPECT_GT(finish, 0u);
    EXPECT_TRUE(sys.quiesced());
    for (int c = 0; c < sys.numCores(); ++c) {
        EXPECT_GT(sys.virtPht(c)->engineStats().operations.value(),
                  0u);
        EXPECT_GT(sys.virtBtb(c)->engineStats().operations.value(),
                  0u);
    }
}

TEST(SystemMultiTenant, BtbVirtualizationCoexistsWithCoverage)
{
    // Adding a BTB tenant must not break the PHT's prefetching.
    SystemConfig pv_only;
    pv_only.workload = "qry17";
    pv_only.numCores = 2;
    pv_only.prefetch = PrefetchMode::SmsVirtualized;

    System a(pv_only);
    a.runFunctional(60000);
    System b(multiTenantConfig("qry17"));
    b.runFunctional(60000);

    CoverageMetrics ca = coverageOf(a);
    CoverageMetrics cb = coverageOf(b);
    EXPECT_NEAR(ca.coveredPct(), cb.coveredPct(), 5.0);
}

TEST(SystemMultiTenant, StrideTenantIsDrivenByTheCore)
{
    SystemConfig cfg = multiTenantConfig("qry1");
    VirtEngineConfig stride;
    stride.kind = VirtEngineKind::Stride;
    stride.numSets = 256;
    stride.tagBits = 14;
    cfg.virtEngines.push_back(stride);
    cfg.pvBytesPerCore = 512 * 1024; // three tenants' segments

    System sys(cfg);
    sys.runFunctional(40000);
    for (int c = 0; c < sys.numCores(); ++c) {
        ASSERT_NE(sys.virtStride(c), nullptr);
        EXPECT_EQ(sys.pvProxy(c)->numEngines(), 3u);
        EXPECT_GT(
            sys.virtStride(c)->engineStats().operations.value(), 0u)
            << "the core must train the stride tenant";
        // The scan-heavy workload has predictable strides.
        EXPECT_GT(sys.core(c).strideHits.value(), 0u);
    }
}

TEST(SystemMultiTenant, EngineAccessorFindsTenantsByName)
{
    System sys(multiTenantConfig("apache"));
    EXPECT_NE(sys.engine(0, "pht"), nullptr);
    EXPECT_NE(sys.engine(0, "btb"), nullptr);
    EXPECT_EQ(sys.engine(0, "nope"), nullptr);
    EXPECT_EQ(sys.engine(0, "pht")->kindName(), "pht");
    EXPECT_EQ(sys.engine(0, "btb")->kindName(), "btb");
}

// ---------------------------------------------------------------------
// Virtualized AGT
// ---------------------------------------------------------------------

namespace {

/** Standalone functional proxy + AGT tenant. */
struct AgtTest : public ::testing::Test {
    AddrMap amap{1ull << 30, 1, 512 * 1024};
    std::unique_ptr<SimContext> ctxp;
    std::unique_ptr<Dram> dram;
    std::unique_ptr<Cache> l2;
    std::unique_ptr<PvProxy> proxy;
    std::unique_ptr<VirtualizedAgt> agt;

    void
    build(unsigned block_budget)
    {
        ctxp = std::make_unique<SimContext>(SimMode::Functional);
        dram = std::make_unique<Dram>(
            *ctxp, DramParams{"dram", 400, 0}, &amap);
        CacheParams l2p;
        l2p.name = "l2";
        l2p.sizeBytes = 1024 * 1024;
        l2p.assoc = 8;
        l2p.directory = true;
        l2 = std::make_unique<Cache>(*ctxp, l2p, &amap);
        l2->setMemSide(dram.get());

        PvProxyParams pp;
        pp.pvCacheEntries = 8;
        pp.usedBitsPerLine = 0;
        proxy = std::make_unique<PvProxy>(
            *ctxp, pp, amap.pvStart(0), amap.pvBytesPerCore());
        proxy->setMemSide(l2.get());

        VirtAgtParams ap;
        ap.blockBudget = block_budget;
        agt = std::make_unique<VirtualizedAgt>(*proxy, "agt", ap);
    }
};

} // namespace

TEST_F(AgtTest, AccumulatesPatternsAndEmitsAtTheBlockBudget)
{
    build(4);
    std::vector<std::pair<PhtKey, SpatialPattern>> emitted;
    agt->setSink([&](PhtKey key, SpatialPattern pattern) {
        emitted.emplace_back(key, pattern);
    });

    const Addr pc = 0x4001c8;
    const Addr region = 0x10000000; // 2 KB aligned
    const unsigned offsets[] = {3, 5, 9, 3, 5};
    for (unsigned off : offsets)
        agt->observe(pc, region + Addr(off) * kBlockBytes);

    // Three distinct blocks (repeats don't count): in flight.
    EXPECT_TRUE(emitted.empty());
    EXPECT_EQ(agt->patternFor(region),
              (SpatialPattern(1) << 3) | (SpatialPattern(1) << 5) |
                  (SpatialPattern(1) << 9));
    EXPECT_EQ(agt->generationsStarted, 1u);

    // A fourth distinct block reaches the budget: the generation
    // completes with the trigger's key and the region restarts on
    // the new access.
    agt->observe(pc, region + Addr(12) * kBlockBytes);
    ASSERT_EQ(emitted.size(), 1u);
    PhtKey expected = makePhtKey(pc, 3); // trigger offset was 3
    EXPECT_EQ(emitted[0].first, expected);
    EXPECT_EQ(emitted[0].second,
              (SpatialPattern(1) << 3) | (SpatialPattern(1) << 5) |
                  (SpatialPattern(1) << 9) |
                  (SpatialPattern(1) << 12));
    EXPECT_EQ(agt->generationsEnded, 1u);
    EXPECT_EQ(agt->generationsStarted, 2u);
    EXPECT_EQ(agt->patternFor(region), SpatialPattern(1) << 12)
        << "the region restarts as a one-block generation";
}

TEST_F(AgtTest, ObserveIsReadModifyWriteTrafficOnTheProxy)
{
    build(8);
    const Addr pc = 0x400100;
    for (int i = 0; i < 64; ++i) {
        agt->observe(pc, 0x20000000 + Addr(i % 8) * kBlockBytes +
                             Addr(i / 8) * 0x800);
    }
    // Every observe is one mutate against the tenant's segment.
    EXPECT_EQ(agt->engineStats().operations.value(), 64u);
    EXPECT_GT(agt->generationsStarted, 0u);
    EXPECT_EQ(agt->kindName(), "agt");
}

TEST(SystemMultiTenant, AgtTenantIsDrivenByTheCore)
{
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.workload = "apache";
    cfg.prefetch = PrefetchMode::SmsVirtualized;
    VirtEngineConfig agt;
    agt.kind = VirtEngineKind::Agt;
    agt.numSets = 32;
    agt.assoc = 4;
    agt.tagBits = 12;
    cfg.virtEngines.push_back(agt);
    cfg.pvBytesPerCore = 512 * 1024;

    System sys(cfg);
    sys.runFunctional(40000);
    for (int c = 0; c < sys.numCores(); ++c) {
        VirtualizedAgt *a = sys.virtAgt(c);
        ASSERT_NE(a, nullptr);
        EXPECT_EQ(sys.engine(c, "agt"), a);
        EXPECT_GT(a->engineStats().operations.value(), 0u)
            << "the core must observe through the AGT tenant";
        EXPECT_GT(a->generationsStarted, 0u);
        EXPECT_GT(a->generationsEnded, 0u)
            << "dense apache generations must complete";
    }
}
