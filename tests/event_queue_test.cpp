/**
 * @file
 * Tests for the discrete-event queue: ordering, priorities, stable
 * same-tick order, cancellation, bounded runs, and time control.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/sim_object.hh"

using namespace pvsim;

TEST(EventQueue, RunsInTickOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    EXPECT_EQ(q.runUntil(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.curTick(), 30u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SameTickPriorityOrdering)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, EventQueue::kPrioCpu, [&] { order.push_back(2); });
    q.schedule(5, EventQueue::kPrioResponse,
               [&] { order.push_back(1); });
    q.schedule(5, EventQueue::kPrioDefault,
               [&] { order.push_back(15); });
    q.runUntil();
    EXPECT_EQ(order, (std::vector<int>{1, 15, 2}));
}

TEST(EventQueue, SameTickSamePriorityIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(7, [&order, i] { order.push_back(i); });
    q.runUntil();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[size_t(i)], i);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    int fired = 0;
    auto id = q.schedule(10, [&] { ++fired; });
    q.schedule(20, [&] { ++fired; });
    q.cancel(id);
    EXPECT_EQ(q.numPending(), 1u);
    q.runUntil();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelAfterExecutionIsHarmless)
{
    EventQueue q;
    int fired = 0;
    auto id = q.schedule(1, [&] { ++fired; });
    q.runUntil();
    q.cancel(id); // no-op
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.schedule(20, [&] { ++fired; });
    q.schedule(30, [&] { ++fired; });
    EXPECT_EQ(q.runUntil(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.numPending(), 1u);
    EXPECT_EQ(q.nextTick(), 30u);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue q;
    std::vector<Tick> ticks;
    std::function<void()> chain = [&] {
        ticks.push_back(q.curTick());
        if (ticks.size() < 5)
            q.schedule(q.curTick() + 3, chain);
    };
    q.schedule(0, chain);
    q.runUntil();
    EXPECT_EQ(ticks, (std::vector<Tick>{0, 3, 6, 9, 12}));
}

TEST(EventQueue, SameTickReentrantScheduling)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] {
        order.push_back(1);
        q.schedule(5, [&] { order.push_back(2); });
    });
    q.runUntil();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, RunOneTickExecutesExactlyOneTick)
{
    EventQueue q;
    int fired = 0;
    q.schedule(4, [&] { ++fired; });
    q.schedule(4, [&] { ++fired; });
    q.schedule(9, [&] { ++fired; });
    EXPECT_EQ(q.runOneTick(), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.curTick(), 4u);
}

TEST(EventQueue, SetCurTickAdvancesIdleTime)
{
    EventQueue q;
    q.setCurTick(100);
    EXPECT_EQ(q.curTick(), 100u);
    int fired = 0;
    q.schedule(150, [&] { ++fired; });
    q.runUntil();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.curTick(), 150u);
}

TEST(EventQueue, ResetDropsEverything)
{
    EventQueue q;
    int fired = 0;
    q.schedule(5, [&] { ++fired; });
    q.reset();
    EXPECT_TRUE(q.empty());
    q.runUntil();
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(q.curTick(), 0u);
}

TEST(EventQueue, NextTickSkipsCancelledTop)
{
    EventQueue q;
    auto id = q.schedule(5, [] {});
    q.schedule(9, [] {});
    q.cancel(id);
    EXPECT_EQ(q.nextTick(), 9u);
}

TEST(EventQueue, CancelCompactsHeap)
{
    EventQueue q;
    std::vector<EventQueue::EventId> ids;
    int fired = 0;
    for (int i = 0; i < 1000; ++i)
        ids.push_back(q.schedule(Tick(i + 1), [&] { ++fired; }));
    // Cancel everything but the last ten: the lazy entries must be
    // compacted away instead of lingering until popped.
    for (int i = 0; i < 990; ++i)
        q.cancel(ids[size_t(i)]);
    EXPECT_EQ(q.numPending(), 10u);
    EXPECT_LT(q.heapSize(), 128u)
        << "dead closures must not dominate the heap";
    q.runUntil();
    EXPECT_EQ(fired, 10) << "compaction must not drop live events";
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelledChurnStaysBounded)
{
    // Cancel-heavy churn: schedule, cancel, repeat. Without
    // compaction the heap grows without bound; with it the
    // footprint stays a small constant.
    EventQueue q;
    auto keeper = q.schedule(1u << 30, [] {});
    for (int i = 0; i < 100000; ++i) {
        auto id = q.schedule(Tick(1000000 + i), [] {});
        q.cancel(id);
    }
    EXPECT_EQ(q.numPending(), 1u);
    EXPECT_LT(q.heapSize(), 128u);
    q.cancel(keeper);
    q.runUntil();
    EXPECT_EQ(q.numExecuted(), 0u);
}

TEST(EventQueue, CompactionPreservesOrderAndPriorities)
{
    EventQueue q;
    std::vector<int> order;
    std::vector<EventQueue::EventId> victims;
    for (int i = 0; i < 200; ++i)
        victims.push_back(q.schedule(5, [&] { order.push_back(-1); }));
    q.schedule(7, EventQueue::kPrioCpu, [&] { order.push_back(3); });
    q.schedule(7, EventQueue::kPrioResponse,
               [&] { order.push_back(2); });
    q.schedule(5, [&] { order.push_back(1); });
    for (auto id : victims)
        q.cancel(id); // forces at least one compaction
    q.runUntil();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue q;
    Tick last = 0;
    bool monotonic = true;
    for (int i = 0; i < 5000; ++i) {
        Tick when = Tick((i * 7919) % 1000);
        q.schedule(when, [&, when] {
            monotonic = monotonic && when >= last;
            last = when;
        });
    }
    q.runUntil();
    EXPECT_TRUE(monotonic);
    EXPECT_EQ(q.numExecuted(), 5000u);
}

TEST(SimContextTest, ModesAndScheduling)
{
    SimContext fn(SimMode::Functional);
    EXPECT_FALSE(fn.isTiming());
    SimContext tm(SimMode::Timing);
    EXPECT_TRUE(tm.isTiming());

    SimObject obj(tm, nullptr, "obj");
    int fired = 0;
    obj.schedule(5, [&] { ++fired; });
    tm.events().runUntil();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(obj.curTick(), 5u);
}

// ---------------------------------------------------------------------
// Event node pool (the intrusive freelist behind schedule())
// ---------------------------------------------------------------------

TEST(EventPool, SteadyStateSchedulingDoesNotGrowThePool)
{
    EventQueue q;
    // Warm up: one chunk's worth of churn.
    for (int i = 0; i < 1000; ++i) {
        q.schedule(q.curTick() + 1, [] {});
        q.runOneTick();
    }
    size_t capacity = q.poolCapacity();
    EXPECT_GT(capacity, 0u);
    // Steady state: schedule-execute cycles with a few events in
    // flight must recycle nodes instead of allocating chunks.
    for (int i = 0; i < 20000; ++i) {
        q.schedule(q.curTick() + 1, [] {});
        q.schedule(q.curTick() + 2, [] {});
        q.runOneTick();
    }
    EXPECT_EQ(q.poolCapacity(), capacity)
        << "steady-state scheduling allocated new chunks";
    q.runUntil();
    EXPECT_EQ(q.poolFree(), q.poolCapacity())
        << "every node must return to the freelist when drained";
}

TEST(EventPool, ExecutedAndCancelledNodesAreReused)
{
    EventQueue q;
    int fired = 0;
    auto id = q.schedule(5, [&] { ++fired; });
    q.schedule(5, [&] { ++fired; });
    q.cancel(id);
    q.runUntil();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.poolFree(), q.poolCapacity());
}

TEST(EventPool, LargeCallablesAreBoxedAndDestroyed)
{
    auto token = std::make_shared<int>(7);
    EventQueue q;
    int sum = 0;
    // Capture well past the inline slot (48 bytes) to force the
    // heap-boxed path.
    struct Big {
        std::shared_ptr<int> p;
        char pad[96];
    };
    {
        Big big{token, {}};
        q.schedule(3, [big, &sum] { sum += *big.p; });
    }
    EXPECT_EQ(token.use_count(), 2);
    q.runUntil();
    EXPECT_EQ(sum, 7);
    EXPECT_EQ(token.use_count(), 1)
        << "boxed callable must be destroyed after execution";
}

TEST(EventPool, CancelledClosureIsDestroyedOnReclaim)
{
    auto token = std::make_shared<int>(1);
    EventQueue q;
    auto id = q.schedule(10, [token] {});
    q.schedule(20, [] {});
    q.cancel(id);
    // Lazy cancel: the closure lives until the stale heap entry is
    // popped (or compacted away); draining the queue reclaims it.
    q.runUntil();
    EXPECT_EQ(token.use_count(), 1);
    EXPECT_EQ(q.poolFree(), q.poolCapacity());
}
