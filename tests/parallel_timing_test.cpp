/**
 * @file
 * Sharded timing mode: determinism and safety.
 *
 * The contract under test (ISSUEs 6, 7 and 9): whenever the quantum
 * machinery is engaged (timingShards != 1 or an explicit
 * syncQuantum), every (timingShards, l2BankDomains, dramLanes,
 * drainOverlap) combination produces bit-identical aggregate
 * statistics and the same finish tick — worker threads, bank
 * partitioning, per-bank DRAM service and overlapped boundary
 * drains change wall-clock, never results. The serial default
 * (timingShards=1, syncQuantum=0) must not construct any of the
 * machinery at all.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "harness/system.hh"

using namespace pvsim;

namespace {

/** Timing config over a heterogeneous multi-programmed mix. */
SystemConfig
timingConfig(unsigned shards, Cycles quantum)
{
    SystemConfig cfg;
    cfg.mode = SimMode::Timing;
    cfg.numCores = 4;
    cfg.workloadMix = {"apache", "qry2", "db2", "zeus"};
    cfg.timingShards = shards;
    cfg.syncQuantum = quantum;
    return cfg;
}

/** QoS-style config: PV prefetcher + virtualized BTB per core. */
SystemConfig
pvConfig(unsigned shards, Cycles quantum)
{
    SystemConfig cfg = timingConfig(shards, quantum);
    cfg.prefetch = PrefetchMode::SmsVirtualized;
    cfg.btb.mode = BtbMode::Virtualized;
    cfg.btbMispredictPenalty = 12;
    cfg.pvBytesPerCore = 256 * 1024; // PHT + BTB tenants
    return cfg;
}

/** timingConfig plus an explicit L2 bank-domain request. */
SystemConfig
bankConfig(unsigned shards, unsigned bank_domains, Cycles quantum)
{
    SystemConfig cfg = timingConfig(shards, quantum);
    cfg.l2BankDomains = bank_domains;
    return cfg;
}

struct RunResult {
    Tick finish;
    uint64_t instructions;
    uint64_t lateResponses;
    std::string stats;
};

RunResult
run(const SystemConfig &cfg, uint64_t records)
{
    System sys(cfg);
    RunResult r;
    r.finish = sys.runTiming(records);
    r.instructions = sys.totalInstructions();
    r.lateResponses = sys.boundaryLateResponses();
    std::ostringstream os;
    sys.ctx().dumpStats(os);
    r.stats = os.str();
    return r;
}

/** RAII save/restore of PVSIM_JOBS. */
struct JobsEnv {
    std::string saved;
    bool had;

    explicit JobsEnv(const char *value)
    {
        const char *old = std::getenv("PVSIM_JOBS");
        had = old != nullptr;
        if (had)
            saved = old;
        setenv("PVSIM_JOBS", value, 1);
    }

    ~JobsEnv()
    {
        if (had)
            setenv("PVSIM_JOBS", saved.c_str(), 1);
        else
            unsetenv("PVSIM_JOBS");
    }
};

} // namespace

TEST(ParallelTiming, DefaultConfigTakesSerialPath)
{
    SystemConfig cfg = timingConfig(1, 0);
    System sys(cfg);
    EXPECT_FALSE(sys.shardedTiming());
    EXPECT_EQ(sys.timingShardsEffective(), 1u);
    EXPECT_EQ(sys.syncQuantumEffective(), 0u);
}

TEST(ParallelTiming, ShardCountsProduceIdenticalStats)
{
    const uint64_t records = 4000;
    RunResult serial = run(timingConfig(1, 12), records);
    for (unsigned shards : {2u, 4u}) {
        RunResult sharded = run(timingConfig(shards, 12), records);
        EXPECT_EQ(sharded.finish, serial.finish)
            << shards << " shards changed the finish tick";
        EXPECT_EQ(sharded.instructions, serial.instructions);
        EXPECT_EQ(sharded.stats, serial.stats)
            << shards << " shards changed aggregate statistics";
    }
}

TEST(ParallelTiming, PvProxyConfigIdenticalAcrossShards)
{
    const uint64_t records = 3000;
    RunResult serial = run(pvConfig(1, 12), records);
    for (unsigned shards : {2u, 4u}) {
        RunResult sharded = run(pvConfig(shards, 12), records);
        EXPECT_EQ(sharded.finish, serial.finish);
        EXPECT_EQ(sharded.stats, serial.stats)
            << shards
            << " shards changed stats under PV proxy traffic";
    }
}

TEST(ParallelTiming, SmallerQuantumStaysSelfConsistent)
{
    // A finer quantum changes the schedule (more barriers) but must
    // still be deterministic across shard counts.
    const uint64_t records = 2500;
    RunResult one = run(timingConfig(1, 4), records);
    RunResult four = run(timingConfig(4, 4), records);
    EXPECT_EQ(four.finish, one.finish);
    EXPECT_EQ(four.stats, one.stats);
}

TEST(ParallelTiming, ResponsesNeverArriveLate)
{
    RunResult r = run(pvConfig(4, 0), 3000);
    EXPECT_EQ(r.lateResponses, 0u)
        << "conservative quantum bound violated";
}

TEST(ParallelTiming, QuantumClampedToL2DataLatency)
{
    SystemConfig cfg = timingConfig(2, 100);
    System sys(cfg);
    EXPECT_EQ(sys.syncQuantumEffective(), cfg.l2DataLatency);
    sys.runTiming(1000);
    EXPECT_EQ(sys.boundaryLateResponses(), 0u);
}

TEST(ParallelTiming, AutoShardsFollowJobsAndCores)
{
    {
        JobsEnv env("2");
        System sys(timingConfig(0, 0));
        EXPECT_TRUE(sys.shardedTiming());
        EXPECT_EQ(sys.timingShardsEffective(), 2u);
    }
    {
        JobsEnv env("64");
        System sys(timingConfig(0, 0));
        EXPECT_EQ(sys.timingShardsEffective(), 4u)
            << "auto shards must clamp to the core count";
    }
}

TEST(ParallelTiming, ShardsClampToCoreCount)
{
    System sys(timingConfig(16, 0));
    EXPECT_EQ(sys.timingShardsEffective(), 4u);
    EXPECT_EQ(sys.syncQuantumEffective(),
              sys.config().l2DataLatency);
}

TEST(ParallelTiming, ShardBankDomainGridIdenticalStats)
{
    // The PR 7 contract: for a fixed quantum, every
    // (timingShards, l2BankDomains) combination on the quantum path
    // produces bit-identical aggregate statistics and finish tick —
    // bank partitioning and bank-to-domain grouping change
    // wall-clock, never results.
    const uint64_t records = 3000;
    RunResult reference = run(bankConfig(1, 1, 12), records);
    for (unsigned shards : {1u, 2u, 4u}) {
        for (unsigned banks : {1u, 2u, 8u}) {
            if (shards == 1 && banks == 1)
                continue; // the reference itself
            RunResult r =
                run(bankConfig(shards, banks, 12), records);
            EXPECT_EQ(r.finish, reference.finish)
                << shards << " shards x " << banks
                << " bank domains changed the finish tick";
            EXPECT_EQ(r.instructions, reference.instructions);
            EXPECT_EQ(r.stats, reference.stats)
                << shards << " shards x " << banks
                << " bank domains changed aggregate statistics";
        }
    }
}

TEST(ParallelTiming, PvProxyIdenticalAcrossBankDomains)
{
    // PV traffic exercises the proxy -> L2 -> DRAM path through the
    // bank lanes; the grid must stay bit-identical there too.
    const uint64_t records = 2500;
    SystemConfig ref_cfg = pvConfig(1, 12);
    ref_cfg.l2BankDomains = 1;
    RunResult reference = run(ref_cfg, records);
    for (unsigned banks : {2u, 8u}) {
        SystemConfig cfg = pvConfig(4, 12);
        cfg.l2BankDomains = banks;
        RunResult r = run(cfg, records);
        EXPECT_EQ(r.finish, reference.finish);
        EXPECT_EQ(r.stats, reference.stats)
            << banks
            << " bank domains changed stats under PV traffic";
    }
}

TEST(ParallelTiming, DramLaneOverlapGridIdenticalStats)
{
    // The PR 9 contract, extending the PR 7 grid: DRAM-lane count
    // and drain-overlap mode are pure wall-clock knobs. Every
    // (dramLanes, drainOverlap) combination on the banked path must
    // reproduce the serial reference bit for bit — including
    // overlap forced on with the monolithic DRAM tail (lanes=1) and
    // in-phase DRAM with overlap forced off.
    const uint64_t records = 3000;
    RunResult reference = run(bankConfig(1, 1, 12), records);
    for (unsigned lanes : {1u, 2u, 8u}) {
        for (unsigned overlap : {1u, 2u}) {
            SystemConfig cfg = bankConfig(4, 8, 12);
            cfg.dramLanes = lanes;
            cfg.drainOverlap = overlap;
            RunResult r = run(cfg, records);
            EXPECT_EQ(r.finish, reference.finish)
                << lanes << " DRAM lanes, overlap=" << overlap
                << " changed the finish tick";
            EXPECT_EQ(r.instructions, reference.instructions);
            EXPECT_EQ(r.stats, reference.stats)
                << lanes << " DRAM lanes, overlap=" << overlap
                << " changed aggregate statistics";
        }
    }
}

TEST(ParallelTiming, LegacyBarrierPinnedConfigMatchesSerial)
{
    // dramLanes=1 + drainOverlap=1 (forced off) is the exact pre-PR
    // banked barrier: monolithic DRAM tail, serial egress and
    // staged-lane flushes. Pinning it must reproduce the serial
    // reference byte for byte, so committed baselines recorded with
    // the legacy barrier keep their meaning.
    const uint64_t records = 3000;
    RunResult reference = run(bankConfig(1, 1, 12), records);
    SystemConfig cfg = bankConfig(4, 8, 12);
    cfg.dramLanes = 1;
    cfg.drainOverlap = 1;
    System sys(cfg);
    EXPECT_EQ(sys.dramLanesEffective(), 1u);
    EXPECT_FALSE(sys.drainOverlapEffective());
    RunResult r = run(cfg, records);
    EXPECT_EQ(r.finish, reference.finish);
    EXPECT_EQ(r.stats, reference.stats);
}

TEST(ParallelTiming, PvProxyIdenticalAcrossDramLanes)
{
    // PV traffic drives the proxy -> L2 -> DRAM fill path hard;
    // per-bank DRAM service plus overlapped drains must stay
    // bit-identical to the serial reference there too.
    const uint64_t records = 2500;
    SystemConfig ref_cfg = pvConfig(1, 12);
    ref_cfg.l2BankDomains = 1;
    RunResult reference = run(ref_cfg, records);
    for (unsigned lanes : {2u, 8u}) {
        SystemConfig cfg = pvConfig(4, 12);
        cfg.l2BankDomains = 8;
        cfg.dramLanes = lanes;
        RunResult r = run(cfg, records);
        EXPECT_EQ(r.finish, reference.finish);
        EXPECT_EQ(r.stats, reference.stats)
            << lanes
            << " DRAM lanes changed stats under PV traffic";
    }
}

TEST(ParallelTiming, DramLanesClampAndDefault)
{
    {
        // Serial default: no banked machinery, no lanes, no overlap.
        System sys(timingConfig(1, 0));
        EXPECT_EQ(sys.dramLanesEffective(), 1u);
        EXPECT_FALSE(sys.drainOverlapEffective());
    }
    {
        // Auto (0) on the banked path: one lane per L2 bank, and
        // overlap follows the lanes.
        SystemConfig cfg = bankConfig(2, 8, 0);
        System sys(cfg);
        EXPECT_EQ(sys.dramLanesEffective(), cfg.l2Banks);
        EXPECT_TRUE(sys.drainOverlapEffective());
    }
    {
        // Explicit requests clamp to the bank count.
        SystemConfig cfg = bankConfig(2, 8, 0);
        cfg.dramLanes = 64;
        System sys(cfg);
        EXPECT_EQ(sys.dramLanesEffective(), cfg.l2Banks);
    }
    {
        // One lane keeps the serial DRAM tail and (auto) no overlap;
        // overlap can still be forced on without lanes.
        SystemConfig cfg = bankConfig(2, 8, 0);
        cfg.dramLanes = 1;
        System sys(cfg);
        EXPECT_EQ(sys.dramLanesEffective(), 1u);
        EXPECT_FALSE(sys.drainOverlapEffective());
        cfg.drainOverlap = 2;
        System forced(cfg);
        EXPECT_TRUE(forced.drainOverlapEffective());
    }
    {
        // Forced off wins over auto lanes.
        SystemConfig cfg = bankConfig(2, 8, 0);
        cfg.drainOverlap = 1;
        System sys(cfg);
        EXPECT_EQ(sys.dramLanesEffective(), cfg.l2Banks);
        EXPECT_FALSE(sys.drainOverlapEffective());
    }
}

TEST(ParallelTiming, BankDomainsClampAndDefault)
{
    {
        // Serial default: no machinery, one (implicit) domain.
        System sys(timingConfig(1, 0));
        EXPECT_FALSE(sys.shardedTiming());
        EXPECT_EQ(sys.l2BankDomainsEffective(), 1u);
    }
    {
        // Explicit requests clamp to the bank count.
        SystemConfig cfg = bankConfig(2, 64, 0);
        System sys(cfg);
        EXPECT_EQ(sys.l2BankDomainsEffective(), cfg.l2Banks);
        EXPECT_TRUE(sys.l2().bankPartitioned());
    }
    {
        // Auto (0) follows PVSIM_JOBS like the shard count does.
        JobsEnv env("2");
        System sys(bankConfig(2, 0, 0));
        EXPECT_EQ(sys.l2BankDomainsEffective(), 2u);
    }
}

TEST(ParallelTiming, PhaseTimersAccountShardedWindows)
{
    SystemConfig cfg = bankConfig(2, 2, 0);
    System sys(cfg);
    sys.runTiming(1000);
    // Both phases ran and were measured; resetStats clears them.
    EXPECT_GT(sys.clusterPhaseSeconds() + sys.sharedPhaseSeconds(),
              0.0);
    sys.resetStats();
    EXPECT_EQ(sys.clusterPhaseSeconds(), 0.0);
    EXPECT_EQ(sys.sharedPhaseSeconds(), 0.0);
}

TEST(ParallelTiming, ManyCoreShardedRunCompletes)
{
    SystemConfig cfg;
    cfg.mode = SimMode::Timing;
    cfg.numCores = 16; // > the old 32-client directory limit / 2
    cfg.workloadMix = {"apache", "qry2", "db2", "zeus"};
    cfg.timingShards = 4;
    System sys(cfg);
    Tick finish = sys.runTiming(600);
    EXPECT_GT(finish, 0u);
    EXPECT_GT(sys.totalInstructions(), 16u * 600u);
    EXPECT_EQ(sys.boundaryLateResponses(), 0u);
}
