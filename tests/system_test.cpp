/**
 * @file
 * Integration tests over the fully wired system: functional and
 * timing modes, prefetcher effect, PV vs dedicated equivalence at
 * the system level, inclusion and conservation invariants, and
 * packet leak-freedom.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/metrics.hh"
#include "harness/system.hh"

using namespace pvsim;

namespace {

SystemConfig
smallConfig(const std::string &workload, PrefetchMode mode)
{
    SystemConfig cfg;
    cfg.workload = workload;
    cfg.prefetch = mode;
    cfg.numCores = 2; // keep tests quick
    return cfg;
}

} // namespace

TEST(SystemFunctional, BaselineRunsAndCountsInstructions)
{
    System sys(smallConfig("qry2", PrefetchMode::None));
    sys.runFunctional(20000);
    EXPECT_EQ(sys.core(0).recordsConsumed(), 20000u);
    EXPECT_EQ(sys.core(1).recordsConsumed(), 20000u);
    EXPECT_GT(sys.totalInstructions(), 2u * 20000u);
    // Loads+stores equal records.
    for (int c = 0; c < sys.numCores(); ++c) {
        EXPECT_EQ(sys.core(c).loads.value() +
                      sys.core(c).stores.value(),
                  20000u);
    }
}

TEST(SystemFunctional, CacheAccessConservation)
{
    System sys(smallConfig("apache", PrefetchMode::None));
    sys.runFunctional(30000);
    for (int c = 0; c < sys.numCores(); ++c) {
        Cache &l1d = sys.l1d(c);
        EXPECT_EQ(l1d.demandAccesses.value(),
                  l1d.demandHits.value() + l1d.demandMisses.value());
        EXPECT_EQ(l1d.readAccesses.value(),
                  l1d.readHits.value() + l1d.readMisses.value());
        // The core issued exactly this many data accesses.
        EXPECT_EQ(l1d.demandAccesses.value(),
                  sys.core(c).loads.value() +
                      sys.core(c).stores.value());
    }
}

TEST(SystemFunctional, InclusionHoldsBetweenL1AndL2)
{
    System sys(smallConfig("qry16", PrefetchMode::None));
    sys.runFunctional(30000);
    // Every valid L1D application block must be present in the
    // inclusive L2 (PV blocks are exempt by design; baseline has
    // none anyway).
    for (int c = 0; c < sys.numCores(); ++c) {
        uint64_t violations = 0;
        sys.l1d(c).forEachValidBlock([&](const CacheBlk &blk) {
            if (!sys.l2().contains(blk.blockAddr))
                ++violations;
        });
        EXPECT_EQ(violations, 0u)
            << "L1D blocks missing from the inclusive L2";
    }
}

TEST(SystemFunctional, SmsImprovesCoverageOverBaseline)
{
    System base(smallConfig("qry1", PrefetchMode::None));
    base.runFunctional(60000);

    System sms(smallConfig("qry1", PrefetchMode::SmsDedicated));
    sms.runFunctional(60000);

    CoverageMetrics cov = coverageOf(sms);
    // The scan-dominated workload must show substantial coverage.
    EXPECT_GT(cov.coveredPct(), 30.0);
    // And prefetching reduces observed misses vs the baseline run.
    uint64_t base_misses = 0, sms_misses = 0;
    for (int c = 0; c < 2; ++c) {
        base_misses += base.l1d(c).readMisses.value();
        sms_misses += sms.l1d(c).readMisses.value();
    }
    EXPECT_LT(sms_misses, base_misses);
}

TEST(SystemFunctional, VirtualizedMatchesDedicatedCoverage)
{
    SystemConfig ded = smallConfig("qry17", PrefetchMode::SmsDedicated);
    SystemConfig pv =
        smallConfig("qry17", PrefetchMode::SmsVirtualized);

    System ds(ded);
    ds.runFunctional(80000);
    System ps(pv);
    ps.runFunctional(80000);

    CoverageMetrics dc = coverageOf(ds);
    CoverageMetrics pc = coverageOf(ps);
    // Paper: "the virtualized prefetcher matches the performance of
    // the original scheme". Allow a few points of slack.
    EXPECT_NEAR(dc.coveredPct(), pc.coveredPct(), 5.0);
}

TEST(SystemFunctional, PvTrafficIsClassifiedAtTheL2)
{
    System sys(smallConfig("oracle", PrefetchMode::SmsVirtualized));
    sys.runFunctional(50000);
    TrafficMetrics t = trafficOf(sys);
    EXPECT_GT(t.l2RequestsPv, 0u) << "PVProxy must reach the L2";
    // PV requests must be a modest fraction, not the majority.
    EXPECT_LT(t.l2RequestsPv, t.l2Requests);
}

TEST(SystemFunctional, PvProxyHitsInL2MostOfTheTime)
{
    System sys(smallConfig("apache", PrefetchMode::SmsVirtualized));
    sys.runFunctional(50000);
    Cache &l2 = sys.l2();
    uint64_t pv_req = l2.requestsPv.value();
    uint64_t pv_miss = l2.missesPv.value();
    ASSERT_GT(pv_req, 0u);
    // Paper Section 4.3: "more than 98% of the PVProxy memory
    // requests are filled in L2". Demand a strong majority here.
    EXPECT_GT(1.0 - double(pv_miss) / double(pv_req), 0.90);
}

TEST(SystemTiming, BaselineProducesPlausibleIpc)
{
    SystemConfig cfg = smallConfig("qry2", PrefetchMode::None);
    cfg.mode = SimMode::Timing;
    System sys(cfg);
    Tick finish = sys.runTiming(8000);
    EXPECT_GT(finish, 0u);
    double ipc = aggregateIpc(sys.totalInstructions(), finish);
    // Two 4-wide in-order cores, cold caches, 400-cycle DRAM, no
    // MLP: very low but positive aggregate IPC; bounded by 2*width.
    EXPECT_GT(ipc, 0.005);
    EXPECT_LT(ipc, 8.0);
    EXPECT_TRUE(sys.quiesced());
}

TEST(SystemTiming, PrefetchingDoesNotSlowDownScans)
{
    SystemConfig base = smallConfig("qry1", PrefetchMode::None);
    base.mode = SimMode::Timing;
    SystemConfig sms = smallConfig("qry1", PrefetchMode::SmsDedicated);
    sms.mode = SimMode::Timing;

    System bs(base);
    Tick bt = bs.runTiming(15000);
    System ss(sms);
    Tick st = ss.runTiming(15000);

    double ipc_base = aggregateIpc(bs.totalInstructions(), bt);
    double ipc_sms = aggregateIpc(ss.totalInstructions(), st);
    EXPECT_GT(ipc_sms, ipc_base * 0.98)
        << "SMS must not hurt a scan workload";
}

TEST(SystemTiming, VirtualizedRunsAndDrains)
{
    SystemConfig cfg = smallConfig("db2", PrefetchMode::SmsVirtualized);
    cfg.mode = SimMode::Timing;
    System sys(cfg);
    Tick finish = sys.runTiming(10000);
    EXPECT_GT(finish, 0u);
    EXPECT_TRUE(sys.quiesced());
    EXPECT_TRUE(sys.ctx().events().empty());
    TrafficMetrics t = trafficOf(sys);
    EXPECT_GT(t.l2RequestsPv, 0u);
}

TEST(SystemLifecycle, NoPacketLeaksAcrossSystemLifetimes)
{
    int64_t before = Packet::liveCount();
    {
        SystemConfig cfg =
            smallConfig("zeus", PrefetchMode::SmsVirtualized);
        System sys(cfg);
        sys.runFunctional(20000);
    }
    {
        SystemConfig cfg = smallConfig("zeus", PrefetchMode::SmsDedicated);
        cfg.mode = SimMode::Timing;
        System sys(cfg);
        sys.runTiming(5000);
    }
    EXPECT_EQ(Packet::liveCount(), before)
        << "packets leaked across run lifetimes";
}

TEST(SystemConfigTest, LabelsFollowThePapersNaming)
{
    SystemConfig cfg;
    cfg.prefetch = PrefetchMode::SmsDedicated;
    cfg.phtGeometry = {1024, 11};
    EXPECT_EQ(cfg.label(), "SMS-1K-11a");
    cfg.phtGeometry = {8, 11};
    EXPECT_EQ(cfg.label(), "SMS-8-11a");
    cfg.prefetch = PrefetchMode::SmsVirtualized;
    cfg.pvCacheEntries = 8;
    EXPECT_EQ(cfg.label(), "SMS-PV8");
    cfg.prefetch = PrefetchMode::None;
    EXPECT_EQ(cfg.label(), "baseline");
}

TEST(SystemFunctional, SharedPvTableRunsAndServesAllCores)
{
    SystemConfig cfg =
        smallConfig("db2", PrefetchMode::SmsVirtualized);
    cfg.sharedPvTable = true;
    System sys(cfg);
    sys.runFunctional(40000);
    // Both proxies target the same PVStart.
    EXPECT_EQ(sys.virtPht(0)->proxy().layout().pvStart(),
              sys.virtPht(1)->proxy().layout().pvStart());
    // And the system still predicts.
    uint64_t hits = 0;
    for (int c = 0; c < sys.numCores(); ++c)
        hits += sys.sms(c)->phtHits.value();
    EXPECT_GT(hits, 0u);
}

TEST(SystemStats, DumpProducesNamedCounters)
{
    System sys(smallConfig("qry2", PrefetchMode::SmsVirtualized));
    sys.runFunctional(15000);
    std::ostringstream os;
    sys.ctx().dumpStats(os);
    std::string out = os.str();
    EXPECT_NE(out.find("core0.l1d.demand_accesses"),
              std::string::npos);
    EXPECT_NE(out.find("core0.pvproxy.operations"),
              std::string::npos);
    EXPECT_NE(out.find("l2.requests_pv"), std::string::npos);
    EXPECT_NE(out.find("dram.read_bytes"), std::string::npos);
}

TEST(SystemStats, ResetZeroesCountersButKeepsContents)
{
    System sys(smallConfig("apache", PrefetchMode::None));
    sys.runFunctional(20000);
    uint64_t valid_before = sys.l1d(0).numValidBlocks();
    ASSERT_GT(valid_before, 0u);
    sys.resetStats();
    EXPECT_EQ(sys.l1d(0).demandAccesses.value(), 0u);
    EXPECT_EQ(sys.core(0).recordsConsumed(), 0u);
    EXPECT_EQ(sys.l1d(0).numValidBlocks(), valid_before)
        << "stats reset must not flush cache contents";
}
