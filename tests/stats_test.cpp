/**
 * @file
 * Tests for the statistics library: counters, averages, histograms,
 * callbacks, group hierarchy, dump formatting and reset semantics.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/group.hh"
#include "stats/stat.hh"

using namespace pvsim;
using namespace pvsim::stats;

TEST(ScalarStat, CountsAndResets)
{
    Group root(nullptr, "");
    Scalar s(&root, "hits", "cache hits");
    EXPECT_EQ(s.value(), 0u);
    ++s;
    s += 4;
    EXPECT_EQ(s.value(), 5u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
    s.set(99);
    EXPECT_EQ(s.value(), 99u);
}

TEST(AverageStat, ComputesMean)
{
    Group root(nullptr, "");
    Average a(&root, "lat", "");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(10);
    a.sample(20);
    a.sample(30);
    EXPECT_DOUBLE_EQ(a.mean(), 20.0);
    EXPECT_EQ(a.count(), 3u);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
}

TEST(DistributionStat, BucketsSamplesCorrectly)
{
    Group root(nullptr, "");
    Distribution d(&root, "lat", "", 0, 100, 10);
    d.sample(5);   // bucket 0
    d.sample(15);  // bucket 1
    d.sample(15);  // bucket 1
    d.sample(99);  // bucket 9
    d.sample(150); // overflow
    EXPECT_EQ(d.samples(), 5u);
    EXPECT_EQ(d.bucketCount(0), 1u);
    EXPECT_EQ(d.bucketCount(1), 2u);
    EXPECT_EQ(d.bucketCount(9), 1u);
    EXPECT_EQ(d.overflow(), 1u);
    EXPECT_EQ(d.underflow(), 0u);
    EXPECT_EQ(d.minSampled(), 5u);
    EXPECT_EQ(d.maxSampled(), 150u);
    EXPECT_NEAR(d.mean(), (5 + 15 + 15 + 99 + 150) / 5.0, 1e-9);
}

TEST(DistributionStat, UnderflowWithNonzeroMin)
{
    Group root(nullptr, "");
    Distribution d(&root, "x", "", 10, 50, 10);
    d.sample(3);
    EXPECT_EQ(d.underflow(), 1u);
    d.reset();
    EXPECT_EQ(d.underflow(), 0u);
    EXPECT_EQ(d.samples(), 0u);
}

TEST(CallbackStat, EvaluatesOnDump)
{
    Group root(nullptr, "");
    int base = 3;
    Callback c(&root, "derived", "", [&] { return base * 2.0; });
    EXPECT_DOUBLE_EQ(c.value(), 6.0);
    base = 10;
    EXPECT_DOUBLE_EQ(c.value(), 20.0);
}

TEST(GroupHierarchy, PathsAreDotted)
{
    Group root(nullptr, "");
    Group sys(&root, "system");
    Group l2(&sys, "l2");
    EXPECT_EQ(l2.path(), "system.l2");
    EXPECT_EQ(sys.path(), "system");
}

TEST(GroupHierarchy, DumpIncludesAllDescendants)
{
    Group root(nullptr, "");
    Group a(&root, "a");
    Group b(&a, "b");
    Scalar s1(&a, "s1", "first");
    Scalar s2(&b, "s2", "second");
    s1 += 7;
    s2 += 9;

    std::ostringstream os;
    root.dumpStats(os);
    std::string out = os.str();
    EXPECT_NE(out.find("a.s1"), std::string::npos);
    EXPECT_NE(out.find("a.b.s2"), std::string::npos);
    EXPECT_NE(out.find("7"), std::string::npos);
    EXPECT_NE(out.find("# first"), std::string::npos);
}

TEST(GroupHierarchy, ResetPropagates)
{
    Group root(nullptr, "");
    Group child(&root, "c");
    Scalar s(&child, "s", "");
    s += 5;
    root.resetStats();
    EXPECT_EQ(s.value(), 0u);
}

TEST(GroupHierarchy, ChildDestructionUnregisters)
{
    Group root(nullptr, "");
    {
        Group child(&root, "ephemeral");
        Scalar s(&child, "s", "");
        s += 1;
    }
    // Dumping after the child died must not touch freed memory.
    std::ostringstream os;
    root.dumpStats(os);
    EXPECT_EQ(os.str().find("ephemeral"), std::string::npos);
}
