/**
 * @file
 * Tests for the PVTable packing codec and layout: the paper's
 * Figure 3a bit layout (11 x 43-bit entries per 64-byte line),
 * round-trip properties across geometries, the zero-means-invalid
 * convention, and Figure 3b address computation.
 */

#include <gtest/gtest.h>

#include "core/pv_codec.hh"
#include "core/pv_layout.hh"
#include "mem/addr_map.hh"
#include "util/random.hh"

using namespace pvsim;

TEST(PvSetCodec, PaperGeometryDimensions)
{
    // 11-bit tag + 32-bit pattern = 43 bits; 11 ways = 473 bits.
    PvSetCodec codec(11, 11, 32);
    EXPECT_EQ(codec.entryBits(), 43u);
    EXPECT_EQ(codec.usedBits(), 473u);
    EXPECT_EQ(codec.unusedBits(), 39u);
}

TEST(PvSetCodec, EncodeDecodeRoundTrip)
{
    PvSetCodec codec(11, 11, 32);
    PvSet in;
    in.numWays = 11;
    for (unsigned w = 0; w < 11; ++w) {
        in.ways[w].tag = (w * 37) & 0x7ff;
        in.ways[w].payload = 0x80000000u | (w + 1);
    }
    uint8_t line[kBlockBytes];
    codec.encode(in, line);
    PvSet out = codec.decode(line);
    ASSERT_EQ(out.numWays, 11u);
    for (unsigned w = 0; w < 11; ++w) {
        EXPECT_EQ(out.ways[w].tag, in.ways[w].tag) << "way " << w;
        EXPECT_EQ(out.ways[w].payload, in.ways[w].payload);
    }
}

TEST(PvSetCodec, ZeroLineDecodesAllInvalid)
{
    // A cold PVTable line (never written) arrives as zeros and must
    // decode to an empty set: the zero-payload-is-invalid rule.
    PvSetCodec codec(11, 11, 32);
    uint8_t line[kBlockBytes] = {};
    PvSet s = codec.decode(line);
    for (unsigned w = 0; w < 11; ++w)
        EXPECT_FALSE(s.ways[w].valid());
    EXPECT_EQ(s.findFree(), 0);
    EXPECT_EQ(s.findTag(0), -1) << "tag 0 with payload 0 is invalid";
}

TEST(PvSetCodec, UnusedTrailingBitsStayZero)
{
    PvSetCodec codec(11, 11, 32);
    PvSet in;
    in.numWays = 11;
    for (unsigned w = 0; w < 11; ++w) {
        in.ways[w].tag = 0x7ff;
        in.ways[w].payload = 0xffffffffu;
    }
    uint8_t line[kBlockBytes];
    codec.encode(in, line);
    // Bits [473, 512) must be zero: byte 59 upper bits and bytes
    // 60..63 entirely.
    BitSpan span(line, sizeof(line));
    EXPECT_EQ(span.read(473, 39), 0u);
}

TEST(PvSetCodec, RandomizedRoundTripAcrossGeometries)
{
    Rng rng(2024);
    struct Geom {
        unsigned ways, tag, payload;
    };
    const Geom geoms[] = {
        {11, 11, 32}, // the paper's PHT
        {8, 16, 46},  // the BTB extension
        {16, 0, 32},  // untagged (direct-indexed payloads)
        {4, 32, 57},  // extreme widths
        {1, 11, 32},
    };
    for (const auto &g : geoms) {
        PvSetCodec codec(g.ways, g.tag, g.payload);
        ASSERT_LE(codec.usedBits(), kBlockBytes * 8u);
        for (int iter = 0; iter < 200; ++iter) {
            PvSet in;
            in.numWays = g.ways;
            for (unsigned w = 0; w < g.ways; ++w) {
                in.ways[w].tag =
                    uint32_t(rng.next() & mask(int(g.tag)));
                in.ways[w].payload =
                    rng.next() & mask(int(g.payload));
            }
            uint8_t line[kBlockBytes];
            codec.encode(in, line);
            PvSet out = codec.decode(line);
            for (unsigned w = 0; w < g.ways; ++w) {
                ASSERT_EQ(out.ways[w].tag, in.ways[w].tag)
                    << "ways=" << g.ways << " tag=" << g.tag
                    << " payload=" << g.payload << " w=" << w;
                ASSERT_EQ(out.ways[w].payload, in.ways[w].payload);
            }
        }
    }
}

TEST(PvSetTest, FindTagAndFindFree)
{
    PvSet s;
    s.numWays = 4;
    s.ways[0] = {0x10, 0xAA};
    s.ways[1] = {0x20, 0};    // invalid
    s.ways[2] = {0x30, 0xCC};
    s.ways[3] = {0x10, 0};    // invalid despite matching tag
    EXPECT_EQ(s.findTag(0x10), 0);
    EXPECT_EQ(s.findTag(0x30), 2);
    EXPECT_EQ(s.findTag(0x99), -1);
    EXPECT_EQ(s.findFree(), 1);
}

// ---------------------------------------------------------------------
// Layout (Figure 3b)
// ---------------------------------------------------------------------

TEST(PvTableLayout, AddressComputation)
{
    // Figure 3b: set index padded with six zeros, added to PVStart.
    PvTableLayout layout(0xB0000000, 1024);
    EXPECT_EQ(layout.setAddress(0), 0xB0000000u);
    EXPECT_EQ(layout.setAddress(1), 0xB0000040u);
    EXPECT_EQ(layout.setAddress(1023), 0xB0000000u + 1023u * 64u);
    EXPECT_EQ(layout.tableBytes(), 64u * 1024u);
}

TEST(PvTableLayout, SetOfInvertsSetAddress)
{
    PvTableLayout layout(0xB0000000, 512);
    for (unsigned s = 0; s < 512; s += 37)
        EXPECT_EQ(layout.setOf(layout.setAddress(s)), s);
    EXPECT_TRUE(layout.contains(0xB0000000));
    EXPECT_TRUE(layout.contains(0xB0000000 + 512 * 64 - 1));
    EXPECT_FALSE(layout.contains(0xB0000000 + 512 * 64));
    EXPECT_FALSE(layout.contains(0xAFFFFFFF));
}

TEST(PvTableLayout, IndexToSetUsesLowBits)
{
    PvTableLayout layout(0xB0000000, 1024);
    // The paper: 10 low bits of the 21-bit index select the set.
    EXPECT_EQ(layout.indexToSet(0), 0u);
    EXPECT_EQ(layout.indexToSet(1023), 1023u);
    EXPECT_EQ(layout.indexToSet(1024), 0u);
    EXPECT_EQ(layout.indexToSet((5u << 10) | 77u), 77u);
}

TEST(PvTableLayout, PerCoreTablesAreDisjoint)
{
    AddrMap amap(3ull * 1024 * 1024 * 1024, 4, 64 * 1024);
    PvTableLayout t0(amap.pvStart(0), 1024);
    PvTableLayout t1(amap.pvStart(1), 1024);
    for (unsigned s = 0; s < 1024; s += 101) {
        EXPECT_FALSE(t1.contains(t0.setAddress(s)));
        EXPECT_FALSE(t0.contains(t1.setAddress(s)));
        EXPECT_EQ(amap.classify(t0.setAddress(s)), AddrClass::Pv);
        EXPECT_EQ(amap.pvOwner(t0.setAddress(s)), 0);
        EXPECT_EQ(amap.pvOwner(t1.setAddress(s)), 1);
    }
}

TEST(AddrMapTest, ClassificationBoundaries)
{
    AddrMap amap(1ull << 30, 2, 64 * 1024);
    EXPECT_EQ(amap.classify(0), AddrClass::App);
    EXPECT_EQ(amap.classify(amap.pvBase() - 1), AddrClass::App);
    EXPECT_EQ(amap.classify(amap.pvBase()), AddrClass::Pv);
    EXPECT_EQ(amap.appLimit(), amap.pvBase());
    EXPECT_EQ(amap.pvStart(0), amap.pvBase());
    EXPECT_EQ(amap.pvStart(1), amap.pvBase() + 64 * 1024);
}
