/**
 * @file
 * Tests for the trace subsystem: file format round trip, synthetic
 * generator determinism and structure, and workload presets.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "trace/synthetic_gen.hh"
#include "trace/trace_io.hh"
#include "trace/workload.hh"
#include "util/bitfield.hh"

using namespace pvsim;

// ---------------------------------------------------------------------
// Trace file IO
// ---------------------------------------------------------------------

TEST(TraceIo, WriteReadRoundTrip)
{
    std::string path = "/tmp/pvsim_trace_test.bin";
    std::vector<TraceRecord> recs;
    for (int i = 0; i < 1000; ++i) {
        TraceRecord r;
        r.pc = 0x400000 + Addr(i) * 4;
        r.addr = 0x10000000 + Addr(i) * 64;
        r.gap = uint16_t(i % 100);
        r.op = (i % 3 == 0) ? MemOp::Store : MemOp::Load;
        recs.push_back(r);
    }
    {
        TraceFileWriter w(path);
        for (const auto &r : recs)
            w.append(r);
        w.close();
    }
    TraceFileReader reader(path);
    EXPECT_EQ(reader.count(), recs.size());
    TraceRecord r;
    for (size_t i = 0; i < recs.size(); ++i) {
        ASSERT_TRUE(reader.next(r)) << "record " << i;
        EXPECT_EQ(r.pc, recs[i].pc);
        EXPECT_EQ(r.addr, recs[i].addr);
        EXPECT_EQ(r.gap, recs[i].gap);
        EXPECT_EQ(r.op, recs[i].op);
    }
    EXPECT_FALSE(reader.next(r)) << "reader must end";
    std::remove(path.c_str());
}

TEST(TraceIo, ResetRestartsFromTheTop)
{
    std::string path = "/tmp/pvsim_trace_reset.bin";
    {
        TraceFileWriter w(path);
        TraceRecord r;
        r.pc = 0x42;
        w.append(r);
        r.pc = 0x43;
        w.append(r);
        w.close();
    }
    TraceFileReader reader(path);
    TraceRecord r;
    ASSERT_TRUE(reader.next(r));
    EXPECT_EQ(r.pc, 0x42u);
    reader.reset();
    ASSERT_TRUE(reader.next(r));
    EXPECT_EQ(r.pc, 0x42u);
    std::remove(path.c_str());
}

TEST(TraceIo, RecordSizeIsStable)
{
    // The on-disk format is part of the public contract.
    EXPECT_EQ(kTraceRecordBytes, 20u);
    EXPECT_EQ(kTraceMagic, 0x52545650u);
}

// ---------------------------------------------------------------------
// Synthetic generator
// ---------------------------------------------------------------------

TEST(SyntheticWorkload, DeterministicPerSeedAndCore)
{
    WorkloadParams p = workloadPreset("apache");
    SyntheticWorkload a(p, 0), b(p, 0), c(p, 1);
    bool same = true, differs = false;
    TraceRecord ra, rb, rc;
    for (int i = 0; i < 5000; ++i) {
        a.next(ra);
        b.next(rb);
        c.next(rc);
        same = same && ra.pc == rb.pc && ra.addr == rb.addr &&
               ra.gap == rb.gap && ra.op == rb.op;
        differs = differs || ra.addr != rc.addr;
    }
    EXPECT_TRUE(same) << "same core+seed must replay identically";
    EXPECT_TRUE(differs) << "different cores must differ";
}

TEST(SyntheticWorkload, ResetReplaysIdentically)
{
    WorkloadParams p = workloadPreset("db2");
    SyntheticWorkload g(p, 2);
    std::vector<Addr> first;
    TraceRecord r;
    for (int i = 0; i < 2000; ++i) {
        g.next(r);
        first.push_back(r.addr);
    }
    g.reset();
    for (int i = 0; i < 2000; ++i) {
        g.next(r);
        ASSERT_EQ(r.addr, first[size_t(i)]) << "at " << i;
    }
}

TEST(SyntheticWorkload, CanonicalPatternContainsTrigger)
{
    WorkloadParams p = workloadPreset("oracle");
    SyntheticWorkload g(p, 0);
    for (unsigned key = 0; key < g.numKeys(); key += 97) {
        uint32_t pat = g.canonicalPattern(key);
        unsigned trig = g.triggerOffset(key);
        EXPECT_TRUE(pat & (1u << trig)) << "key " << key;
        EXPECT_LT(trig, 32u);
    }
}

TEST(SyntheticWorkload, StoreFractionRoughlyHonored)
{
    WorkloadParams p = workloadPreset("zeus"); // storeFraction 0.30
    SyntheticWorkload g(p, 0);
    TraceRecord r;
    int stores = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        g.next(r);
        stores += r.isStore();
    }
    EXPECT_NEAR(stores / double(n), p.storeFraction, 0.05);
}

TEST(SyntheticWorkload, AddressesStayBelowPvReservation)
{
    // All generated addresses must be application addresses; the PV
    // range at the top of the 3 GB memory must stay untouched.
    WorkloadParams p = workloadPreset("qry1");
    SyntheticWorkload g(p, 3); // highest core id shifts windows up
    TraceRecord r;
    Addr max_seen = 0;
    for (int i = 0; i < 20000; ++i) {
        g.next(r);
        max_seen = std::max(max_seen, std::max(r.addr, r.pc));
    }
    Addr pv_base = 3ull * 1024 * 1024 * 1024 - 4ull * 64 * 1024;
    EXPECT_LT(max_seen, pv_base);
}

TEST(SyntheticWorkload, ScanWorkloadSweepsRegionsSequentially)
{
    WorkloadParams p = workloadPreset("qry1");
    p.scanFraction = 1.0;
    p.irregularFraction = 0.0;
    p.scanStreams = 1;
    SyntheticWorkload g(p, 0);
    TraceRecord r;
    g.next(r);
    Addr prev = r.addr;
    int forward = 0;
    const int n = 1000;
    for (int i = 0; i < n; ++i) {
        g.next(r);
        forward += r.addr > prev;
        prev = r.addr;
    }
    // A single scan stream advances monotonically (except at region
    // wrap), so nearly all steps move forward.
    EXPECT_GT(forward, n - 5);
}

TEST(SyntheticWorkload, IrregularOnlyHasNoRepeatingPatternKeys)
{
    WorkloadParams p = workloadPreset("uniform");
    SyntheticWorkload g(p, 0);
    TraceRecord r;
    std::set<Addr> blocks;
    for (int i = 0; i < 5000; ++i) {
        g.next(r);
        blocks.insert(blockAlign(r.addr));
    }
    // Uniform traffic over a large footprint: mostly unique blocks.
    EXPECT_GT(blocks.size(), 4000u);
}

// ---------------------------------------------------------------------
// Presets
// ---------------------------------------------------------------------

TEST(WorkloadPresets, AllPaperWorkloadsExist)
{
    auto names = paperWorkloads();
    ASSERT_EQ(names.size(), 8u);
    for (const auto &n : names) {
        WorkloadParams p = workloadPreset(n);
        EXPECT_EQ(p.name, n);
        EXPECT_GT(p.dataRegions, 0u);
        EXPECT_GT(p.numTriggerPcs, 0u);
        EXPECT_GE(p.patternStability, 0.0);
        EXPECT_LE(p.patternStability, 1.0);
        EXPECT_LE(p.irregularFraction + p.scanFraction, 1.0);
        EXPECT_FALSE(workloadDescription(n).empty());
    }
}

TEST(WorkloadPresets, PresetsAreDistinct)
{
    // Different workloads must produce different streams.
    SyntheticWorkload a(workloadPreset("apache"), 0);
    SyntheticWorkload o(workloadPreset("oracle"), 0);
    TraceRecord ra, ro;
    bool differ = false;
    for (int i = 0; i < 100 && !differ; ++i) {
        a.next(ra);
        o.next(ro);
        differ = ra.addr != ro.addr;
    }
    EXPECT_TRUE(differ);
}

TEST(WorkloadPresets, ScanHeavyPresetIsQry1)
{
    EXPECT_GT(workloadPreset("qry1").scanFraction, 0.5);
    EXPECT_LT(workloadPreset("oracle").scanFraction, 0.1);
    // Oracle has the flattest, largest key population (the paper's
    // most capacity-sensitive workload).
    WorkloadParams oracle = workloadPreset("oracle");
    WorkloadParams qry1 = workloadPreset("qry1");
    EXPECT_GT(oracle.numTriggerPcs * oracle.offsetsPerPc,
              qry1.numTriggerPcs * qry1.offsetsPerPc * 4);
    EXPECT_LT(oracle.keyZipfAlpha, 0.3);
}
