/**
 * @file
 * Tests for the trace subsystem: file format round trip, synthetic
 * generator determinism and structure, workload presets, the
 * program-structure (control-flow) layer, and the bit-identity
 * guards that pin the default streams — and the fig4/fig5 coverage
 * counters derived from them — across refactors of the generator.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "harness/metrics.hh"
#include "harness/system.hh"
#include "trace/program_structure.hh"
#include "trace/synthetic_gen.hh"
#include "trace/trace_io.hh"
#include "trace/workload.hh"
#include "util/bitfield.hh"

using namespace pvsim;

// ---------------------------------------------------------------------
// Trace file IO
// ---------------------------------------------------------------------

TEST(TraceIo, WriteReadRoundTrip)
{
    std::string path = "/tmp/pvsim_trace_test.bin";
    std::vector<TraceRecord> recs;
    for (int i = 0; i < 1000; ++i) {
        TraceRecord r;
        r.pc = 0x400000 + Addr(i) * 4;
        r.addr = 0x10000000 + Addr(i) * 64;
        r.gap = uint16_t(i % 100);
        r.op = (i % 3 == 0) ? MemOp::Store : MemOp::Load;
        recs.push_back(r);
    }
    {
        TraceFileWriter w(path);
        for (const auto &r : recs)
            w.append(r);
        w.close();
    }
    TraceFileReader reader(path);
    EXPECT_EQ(reader.count(), recs.size());
    TraceRecord r;
    for (size_t i = 0; i < recs.size(); ++i) {
        ASSERT_TRUE(reader.next(r)) << "record " << i;
        EXPECT_EQ(r.pc, recs[i].pc);
        EXPECT_EQ(r.addr, recs[i].addr);
        EXPECT_EQ(r.gap, recs[i].gap);
        EXPECT_EQ(r.op, recs[i].op);
    }
    EXPECT_FALSE(reader.next(r)) << "reader must end";
    std::remove(path.c_str());
}

TEST(TraceIo, ResetRestartsFromTheTop)
{
    std::string path = "/tmp/pvsim_trace_reset.bin";
    {
        TraceFileWriter w(path);
        TraceRecord r;
        r.pc = 0x42;
        w.append(r);
        r.pc = 0x43;
        w.append(r);
        w.close();
    }
    TraceFileReader reader(path);
    TraceRecord r;
    ASSERT_TRUE(reader.next(r));
    EXPECT_EQ(r.pc, 0x42u);
    reader.reset();
    ASSERT_TRUE(reader.next(r));
    EXPECT_EQ(r.pc, 0x42u);
    std::remove(path.c_str());
}

TEST(TraceIo, RecordSizeIsStable)
{
    // The on-disk format is part of the public contract.
    EXPECT_EQ(kTraceRecordBytes, 20u);
    EXPECT_EQ(kTraceMagic, 0x52545650u);
}

TEST(TraceIo, EdgeAnnotationsRoundTripThroughThePadByte)
{
    // Annotated records keep the 20-byte format (the edge rides in
    // the historical pad byte); a zero there is still None, so
    // legacy files read back as unannotated streams.
    std::string path = "/tmp/pvsim_trace_edges.bin";
    const BranchEdge kinds[] = {BranchEdge::None, BranchEdge::Seq,
                                BranchEdge::Cond, BranchEdge::Loop,
                                BranchEdge::Call, BranchEdge::Ret};
    {
        TraceFileWriter w(path);
        TraceRecord r;
        for (BranchEdge e : kinds) {
            r.pc = 0x1000 + Addr(e) * 4;
            r.edge = e;
            w.append(r);
        }
        w.close();
    }
    TraceFileReader reader(path);
    TraceRecord r;
    for (BranchEdge e : kinds) {
        ASSERT_TRUE(reader.next(r));
        EXPECT_EQ(r.edge, e) << branchEdgeName(e);
    }
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Synthetic generator
// ---------------------------------------------------------------------

TEST(SyntheticWorkload, DeterministicPerSeedAndCore)
{
    WorkloadParams p = workloadPreset("apache");
    SyntheticWorkload a(p, 0), b(p, 0), c(p, 1);
    bool same = true, differs = false;
    TraceRecord ra, rb, rc;
    for (int i = 0; i < 5000; ++i) {
        a.next(ra);
        b.next(rb);
        c.next(rc);
        same = same && ra.pc == rb.pc && ra.addr == rb.addr &&
               ra.gap == rb.gap && ra.op == rb.op;
        differs = differs || ra.addr != rc.addr;
    }
    EXPECT_TRUE(same) << "same core+seed must replay identically";
    EXPECT_TRUE(differs) << "different cores must differ";
}

TEST(SyntheticWorkload, ResetReplaysIdentically)
{
    WorkloadParams p = workloadPreset("db2");
    SyntheticWorkload g(p, 2);
    std::vector<Addr> first;
    TraceRecord r;
    for (int i = 0; i < 2000; ++i) {
        g.next(r);
        first.push_back(r.addr);
    }
    g.reset();
    for (int i = 0; i < 2000; ++i) {
        g.next(r);
        ASSERT_EQ(r.addr, first[size_t(i)]) << "at " << i;
    }
}

TEST(SyntheticWorkload, CanonicalPatternContainsTrigger)
{
    WorkloadParams p = workloadPreset("oracle");
    SyntheticWorkload g(p, 0);
    for (unsigned key = 0; key < g.numKeys(); key += 97) {
        uint32_t pat = g.canonicalPattern(key);
        unsigned trig = g.triggerOffset(key);
        EXPECT_TRUE(pat & (1u << trig)) << "key " << key;
        EXPECT_LT(trig, 32u);
    }
}

TEST(SyntheticWorkload, StoreFractionRoughlyHonored)
{
    WorkloadParams p = workloadPreset("zeus"); // storeFraction 0.30
    SyntheticWorkload g(p, 0);
    TraceRecord r;
    int stores = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        g.next(r);
        stores += r.isStore();
    }
    EXPECT_NEAR(stores / double(n), p.storeFraction, 0.05);
}

TEST(SyntheticWorkload, AddressesStayBelowPvReservation)
{
    // All generated addresses must be application addresses; the PV
    // range at the top of the 3 GB memory must stay untouched.
    WorkloadParams p = workloadPreset("qry1");
    SyntheticWorkload g(p, 3); // highest core id shifts windows up
    TraceRecord r;
    Addr max_seen = 0;
    for (int i = 0; i < 20000; ++i) {
        g.next(r);
        max_seen = std::max(max_seen, std::max(r.addr, r.pc));
    }
    Addr pv_base = 3ull * 1024 * 1024 * 1024 - 4ull * 64 * 1024;
    EXPECT_LT(max_seen, pv_base);
}

TEST(SyntheticWorkload, ScanWorkloadSweepsRegionsSequentially)
{
    WorkloadParams p = workloadPreset("qry1");
    p.scanFraction = 1.0;
    p.irregularFraction = 0.0;
    p.scanStreams = 1;
    SyntheticWorkload g(p, 0);
    TraceRecord r;
    g.next(r);
    Addr prev = r.addr;
    int forward = 0;
    const int n = 1000;
    for (int i = 0; i < n; ++i) {
        g.next(r);
        forward += r.addr > prev;
        prev = r.addr;
    }
    // A single scan stream advances monotonically (except at region
    // wrap), so nearly all steps move forward.
    EXPECT_GT(forward, n - 5);
}

TEST(SyntheticWorkload, IrregularOnlyHasNoRepeatingPatternKeys)
{
    WorkloadParams p = workloadPreset("uniform");
    SyntheticWorkload g(p, 0);
    TraceRecord r;
    std::set<Addr> blocks;
    for (int i = 0; i < 5000; ++i) {
        g.next(r);
        blocks.insert(blockAlign(r.addr));
    }
    // Uniform traffic over a large footprint: mostly unique blocks.
    EXPECT_GT(blocks.size(), 4000u);
}

// ---------------------------------------------------------------------
// Bit-identity guards (pre-refactor golden values)
// ---------------------------------------------------------------------

namespace {

/** FNV-1a over the data-visible record fields (not the edge
 *  annotation, which default streams don't carry). */
uint64_t
streamHash(const std::string &preset, int core, int n)
{
    SyntheticWorkload gen(workloadPreset(preset), core);
    TraceRecord r;
    uint64_t h = 1469598103934665603ULL;
    auto step = [&h](uint64_t v) {
        h ^= v;
        h *= 1099511628211ULL;
    };
    for (int i = 0; i < n; ++i) {
        gen.next(r);
        step(r.pc);
        step(r.addr);
        step(r.gap);
        step(uint64_t(r.op));
    }
    return h;
}

} // namespace

TEST(BitIdentityGuard, DefaultStreamsMatchPreRefactorGolden)
{
    // Hashes of the first 50000 records of every preset, captured
    // from the flat generator immediately before the
    // program-structure refactor landed. Any change here means the
    // default (branchModel = off) streams moved — which the
    // fig4/fig5 preset tuning forbids.
    struct Golden {
        const char *preset;
        int core;
        uint64_t hash;
    };
    const Golden golden[] = {
        {"apache", 0, 0xe8c1b3f6f3145e98ULL},
        {"apache", 1, 0x08172b5a4d5cac05ULL},
        {"zeus", 0, 0xe620cd38fd7146a3ULL},
        {"zeus", 1, 0x9587052df38d36e8ULL},
        {"db2", 0, 0x4ecd2a0c6579e39bULL},
        {"db2", 1, 0x6cc69b3d61ffcefeULL},
        {"oracle", 0, 0x8f0f41315bfda698ULL},
        {"oracle", 1, 0x6b8a3ec3cca694e8ULL},
        {"qry1", 0, 0x81fed920364bd292ULL},
        {"qry1", 1, 0x93f080b74314b344ULL},
        {"qry2", 0, 0x5747e2b622e230b2ULL},
        {"qry2", 1, 0x1d2fe27430aa4d3fULL},
        {"qry16", 0, 0x3395d7342fe7b2e6ULL},
        {"qry16", 1, 0x0adda277eaf5cc60ULL},
        {"qry17", 0, 0xf5a3142d2f9d4b3fULL},
        {"qry17", 1, 0x3630ec63c4f6510cULL},
        {"uniform", 0, 0xd5961199a6684460ULL},
    };
    for (const Golden &g : golden) {
        EXPECT_EQ(streamHash(g.preset, g.core, 50000), g.hash)
            << g.preset << " core " << g.core
            << ": default stream diverged from pre-refactor golden";
    }
}

TEST(BitIdentityGuard, CoverageCountersMatchPreRefactorGolden)
{
    // fig4/fig5-shaped functional coverage (30k warmup + 60k
    // measured refs, 4 cores) for a capacity-insensitive and a
    // capacity-starved PHT, captured pre-refactor. These are the
    // outputs the paper-shape tuning cares about; exact equality is
    // the contract (not "close").
    struct Golden {
        const char *preset;
        bool infinite;
        uint64_t covered, uncovered, overpred;
    };
    const Golden golden[] = {
        {"apache", true, 67161, 131591, 34607},
        {"apache", false, 10017, 188706, 4504},
        {"qry1", true, 177767, 58084, 7508},
        {"qry1", false, 170877, 64969, 4375},
    };
    for (const Golden &g : golden) {
        SystemConfig cfg;
        cfg.workload = g.preset;
        cfg.prefetch = g.infinite ? PrefetchMode::SmsInfinite
                                  : PrefetchMode::SmsDedicated;
        cfg.phtGeometry = {16, 11};
        System sys(cfg);
        sys.runFunctional(30000);
        sys.resetStats();
        sys.runFunctional(60000);
        CoverageMetrics m = coverageOf(sys);
        EXPECT_EQ(m.covered, g.covered) << g.preset;
        EXPECT_EQ(m.uncovered, g.uncovered) << g.preset;
        EXPECT_EQ(m.overpredictions, g.overpred) << g.preset;
    }
}

// ---------------------------------------------------------------------
// Program-structure (control-flow) layer
// ---------------------------------------------------------------------

namespace {

WorkloadParams
branchyParams()
{
    WorkloadParams p = workloadPreset("apache");
    p.branchModel = true;
    return p;
}

} // namespace

TEST(ProgramStructure, DataSideStreamUnchangedWhenEnabled)
{
    // The layer overrides pc/gap/edge only; the (addr, op) draws —
    // the streams SMS learns from — must be bit-identical with the
    // model on or off.
    WorkloadParams off = workloadPreset("apache");
    WorkloadParams on = branchyParams();
    SyntheticWorkload a(off, 0), b(on, 0);
    ASSERT_EQ(b.programStructure() != nullptr, true);
    EXPECT_EQ(a.programStructure(), nullptr);
    TraceRecord ra, rb;
    bool pc_differs = false;
    for (int i = 0; i < 20000; ++i) {
        a.next(ra);
        b.next(rb);
        ASSERT_EQ(ra.addr, rb.addr) << "at " << i;
        ASSERT_EQ(ra.op, rb.op) << "at " << i;
        pc_differs = pc_differs || ra.pc != rb.pc;
        EXPECT_EQ(ra.edge, BranchEdge::None);
        EXPECT_NE(rb.edge, BranchEdge::None);
    }
    EXPECT_TRUE(pc_differs) << "the model must rewrite pcs";
}

TEST(ProgramStructure, ResetReplaysIdenticallyWithEdges)
{
    SyntheticWorkload g(branchyParams(), 1);
    std::vector<TraceRecord> first(5000);
    for (auto &r : first)
        g.next(r);
    g.reset();
    TraceRecord r;
    for (int i = 0; i < 5000; ++i) {
        g.next(r);
        ASSERT_EQ(r.pc, first[size_t(i)].pc) << "at " << i;
        ASSERT_EQ(r.addr, first[size_t(i)].addr) << "at " << i;
        ASSERT_EQ(r.gap, first[size_t(i)].gap) << "at " << i;
        ASSERT_EQ(r.edge, first[size_t(i)].edge) << "at " << i;
    }
}

TEST(ProgramStructure, SeqEdgesAreGenuineFallThroughs)
{
    // Within the model, Seq means the next pc really is
    // pc + (gap+1)*instBytes — that property is what keeps
    // intra-block boundaries off the taken-branch books.
    SyntheticWorkload g(branchyParams(), 0);
    TraceRecord prev, cur;
    g.next(prev);
    int seq = 0, taken = 0;
    for (int i = 0; i < 50000; ++i) {
        g.next(cur);
        Addr fall = prev.pc +
                    (Addr(prev.gap) + 1) *
                        ProgramStructureModel::kInstBytes;
        if (cur.edge == BranchEdge::Seq) {
            ASSERT_EQ(cur.pc, fall) << "at " << i;
            ++seq;
        } else {
            ++taken;
        }
        prev = cur;
    }
    EXPECT_GT(seq, 0);
    EXPECT_GT(taken, 0);
}

TEST(ProgramStructure, CallsAndReturnsPairWithPerCallsiteTargets)
{
    WorkloadParams p = branchyParams();
    p.branch.callFraction = 0.30;
    p.branch.callDepth = 6;
    SyntheticWorkload g(p, 0);
    TraceRecord prev, cur;
    g.next(prev);
    std::vector<Addr> shadow; // expected return pcs
    int calls = 0, rets = 0;
    size_t max_depth = 0;
    for (int i = 0; i < 100000; ++i) {
        g.next(cur);
        if (cur.edge == BranchEdge::Call) {
            // The callsite's fall-through is the return target.
            shadow.push_back(
                prev.pc + (Addr(prev.gap) + 1) *
                              ProgramStructureModel::kInstBytes);
            max_depth = std::max(max_depth, shadow.size());
            ++calls;
        } else if (cur.edge == BranchEdge::Ret) {
            ASSERT_FALSE(shadow.empty())
                << "return without a matching call at " << i;
            EXPECT_EQ(cur.pc, shadow.back())
                << "return must land on its callsite's "
                   "fall-through at "
                << i;
            shadow.pop_back();
            ++rets;
        }
        prev = cur;
    }
    EXPECT_GT(calls, 1000);
    EXPECT_GT(rets, 1000);
    EXPECT_LE(max_depth, size_t(p.branch.callDepth))
        << "the call stack must stay bounded";
}

TEST(ProgramStructure, LoopTripCountsAreBoundedAndReached)
{
    WorkloadParams p = branchyParams();
    p.branch.loopFraction = 0.5;
    p.branch.callFraction = 0.05;
    p.branch.loopTripMean = 4;
    SyntheticWorkload g(p, 0);
    const ProgramStructureModel *m = g.programStructure();
    ASSERT_NE(m, nullptr);

    // Map each loop block's branch pc to its trip count.
    std::map<Addr, unsigned> trips;
    for (unsigned r = 0; r < m->numRoutines(); ++r) {
        for (unsigned b = 0; b < m->blocksPerRoutine(); ++b) {
            if (m->termOf(r, b) == ProgramStructureModel::Term::Loop)
                trips[m->branchPcOf(r, b)] = m->loopTripsOf(r, b);
        }
    }
    ASSERT_FALSE(trips.empty());

    // Between two fall-through exits of one loop branch there are
    // at most `trips` back-edges; dense bodies reach the bound.
    std::map<Addr, unsigned> run, max_run;
    TraceRecord prev, cur;
    g.next(prev);
    for (int i = 0; i < 200000; ++i) {
        g.next(cur);
        auto it = trips.find(prev.pc);
        if (it != trips.end()) {
            if (cur.edge == BranchEdge::Loop) {
                unsigned n = ++run[prev.pc];
                max_run[prev.pc] =
                    std::max(max_run[prev.pc], n);
                ASSERT_LE(n, it->second)
                    << "more back-edges than trips at " << i;
            } else if (cur.edge == BranchEdge::Seq) {
                run[prev.pc] = 0; // loop exited
            }
        }
        prev = cur;
    }
    bool reached = false;
    for (const auto &[pc, n] : max_run)
        reached = reached || n == trips[pc];
    EXPECT_TRUE(reached)
        << "some loop must run its full trip count";
}

TEST(ProgramStructure, EdgeStabilityControlsSuccessorSpread)
{
    // At stability 1.0 every branch pc has exactly one taken-branch
    // target — the perfectly learnable stream; at 0.5 the Cond
    // branches flip between canonical and alternate targets.
    auto successors = [](double stability) {
        WorkloadParams p = workloadPreset("apache");
        p.branchModel = true;
        p.branch.edgeStability = stability;
        p.branch.callFraction = 0.0; // only Cond/Loop/dispatch edges
        SyntheticWorkload g(p, 0);
        std::map<Addr, std::set<Addr>> succ;
        TraceRecord prev, cur;
        g.next(prev);
        for (int i = 0; i < 100000; ++i) {
            g.next(cur);
            if (isTakenEdge(cur.edge))
                succ[prev.pc].insert(cur.pc);
            prev = cur;
        }
        size_t multi = 0;
        for (const auto &[pc, targets] : succ)
            multi += targets.size() > 1;
        return std::pair<size_t, size_t>(multi, succ.size());
    };
    auto [multi_stable, n_stable] = successors(1.0);
    auto [multi_unstable, n_unstable] = successors(0.5);
    EXPECT_EQ(multi_stable, 0u)
        << "stability 1.0 must give single-successor edges";
    EXPECT_GT(n_stable, 0u);
    EXPECT_GT(multi_unstable, n_unstable / 10)
        << "stability 0.5 must split many branch targets";
}

TEST(ProgramStructure, PcsStayInTheCodeWindowBelowPv)
{
    WorkloadParams p = workloadPreset("qry1");
    p.branchModel = true;
    SyntheticWorkload g(p, 3);
    const ProgramStructureModel *m = g.programStructure();
    ASSERT_NE(m, nullptr);
    Addr base = SyntheticWorkload::kCodeWindow * Addr(3 + 1);
    TraceRecord r;
    for (int i = 0; i < 20000; ++i) {
        g.next(r);
        ASSERT_GE(r.pc, base);
        ASSERT_LT(r.pc, base + m->codeBytes());
    }
    Addr pv_base = 3ull * 1024 * 1024 * 1024 - 4ull * 64 * 1024;
    EXPECT_LT(base + m->codeBytes(), pv_base);
}

// ---------------------------------------------------------------------
// Presets
// ---------------------------------------------------------------------

TEST(WorkloadPresets, AllPaperWorkloadsExist)
{
    auto names = paperWorkloads();
    ASSERT_EQ(names.size(), 8u);
    for (const auto &n : names) {
        WorkloadParams p = workloadPreset(n);
        EXPECT_EQ(p.name, n);
        EXPECT_GT(p.dataRegions, 0u);
        EXPECT_GT(p.numTriggerPcs, 0u);
        EXPECT_GE(p.patternStability, 0.0);
        EXPECT_LE(p.patternStability, 1.0);
        EXPECT_LE(p.irregularFraction + p.scanFraction, 1.0);
        EXPECT_FALSE(workloadDescription(n).empty());
    }
}

TEST(WorkloadPresets, PresetsAreDistinct)
{
    // Different workloads must produce different streams.
    SyntheticWorkload a(workloadPreset("apache"), 0);
    SyntheticWorkload o(workloadPreset("oracle"), 0);
    TraceRecord ra, ro;
    bool differ = false;
    for (int i = 0; i < 100 && !differ; ++i) {
        a.next(ra);
        o.next(ro);
        differ = ra.addr != ro.addr;
    }
    EXPECT_TRUE(differ);
}

TEST(WorkloadPresets, MixesCarryBranchProfilesPresetsStayFlat)
{
    // The mixes (the BTB/Figure 9 experiment unit) enable the
    // control-flow layer; bare presets never do — the data-side
    // golden guards above depend on that.
    for (const WorkloadMix &mix : presetMixes()) {
        EXPECT_TRUE(mix.branch.enabled) << mix.name;
        EXPECT_GT(mix.branch.edgeStability, 0.5) << mix.name;
        for (const auto &wl : mix.workloads)
            EXPECT_FALSE(workloadPreset(wl).branchModel) << wl;
    }
    // applyTo is a no-op when disabled.
    WorkloadParams p = workloadPreset("apache");
    BranchProfile off;
    off.applyTo(p);
    EXPECT_FALSE(p.branchModel);
    BranchProfile on = presetMixes()[0].branch;
    on.applyTo(p);
    EXPECT_TRUE(p.branchModel);
    EXPECT_EQ(p.branch.edgeStability, on.edgeStability);
}

TEST(WorkloadPresets, ScanHeavyPresetIsQry1)
{
    EXPECT_GT(workloadPreset("qry1").scanFraction, 0.5);
    EXPECT_LT(workloadPreset("oracle").scanFraction, 0.1);
    // Oracle has the flattest, largest key population (the paper's
    // most capacity-sensitive workload).
    WorkloadParams oracle = workloadPreset("oracle");
    WorkloadParams qry1 = workloadPreset("qry1");
    EXPECT_GT(oracle.numTriggerPcs * oracle.offsetsPerPc,
              qry1.numTriggerPcs * qry1.offsetsPerPc * 4);
    EXPECT_LT(oracle.keyZipfAlpha, 0.3);
}
