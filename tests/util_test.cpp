/**
 * @file
 * Unit and property tests for the utility substrate: integer math,
 * bitfield extraction, the BitSpan packer (the PVTable codec
 * primitive), deterministic RNG, Zipf sampling, and CLI parsing.
 */

#include <gtest/gtest.h>

#include <map>

#include "util/args.hh"
#include "util/bitfield.hh"
#include "util/intmath.hh"
#include "util/random.hh"

using namespace pvsim;

// ---------------------------------------------------------------------
// intmath
// ---------------------------------------------------------------------

TEST(IntMath, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2((1ull << 40) + 1));
}

TEST(IntMath, FloorAndCeilLog2)
{
    EXPECT_EQ(floorLog2(1), 0);
    EXPECT_EQ(floorLog2(2), 1);
    EXPECT_EQ(floorLog2(3), 1);
    EXPECT_EQ(floorLog2(1024), 10);
    EXPECT_EQ(ceilLog2(1024), 10);
    EXPECT_EQ(ceilLog2(1025), 11);
    EXPECT_EQ(ceilLog2(1), 0);
}

TEST(IntMath, DivideCeilAndAlign)
{
    EXPECT_EQ(divideCeil(7, 2), 4u);
    EXPECT_EQ(divideCeil(8, 2), 4u);
    EXPECT_EQ(divideCeil(1, 64), 1u);
    EXPECT_EQ(alignDown(127, 64), 64u);
    EXPECT_EQ(alignUp(127, 64), 128u);
    EXPECT_EQ(alignUp(128, 64), 128u);
}

// ---------------------------------------------------------------------
// bitfield
// ---------------------------------------------------------------------

TEST(Bitfield, MaskAndBits)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(5), 0x1fu);
    EXPECT_EQ(mask(64), ~0ull);
    EXPECT_EQ(bits(0xabcd, 7, 4), 0xcu);
    EXPECT_EQ(bits(0xabcd, 3), 1u);
    EXPECT_EQ(insertBits(0, 7, 4, 0xf), 0xf0u);
    EXPECT_EQ(insertBits(0xff, 3, 0, 0), 0xf0u);
}

TEST(Bitfield, PopCount)
{
    EXPECT_EQ(popCount(0), 0);
    EXPECT_EQ(popCount(0xff), 8);
    EXPECT_EQ(popCount(~0ull), 64);
}

TEST(BitSpan, SingleFieldRoundTrip)
{
    uint8_t buf[64] = {};
    BitSpan span(buf, sizeof(buf));
    span.write(3, 11, 0x5a5);
    EXPECT_EQ(span.read(3, 11), 0x5a5u);
    // Adjacent bits untouched.
    EXPECT_EQ(span.read(0, 3), 0u);
    EXPECT_EQ(span.read(14, 8), 0u);
}

TEST(BitSpan, PaperGeometry43BitEntries)
{
    // 11 entries of 43 bits = 473 bits in a 64-byte line (Fig. 3a).
    uint8_t line[64] = {};
    BitSpan span(line, sizeof(line));
    for (unsigned w = 0; w < 11; ++w)
        span.write(size_t(w) * 43, 43,
                   (uint64_t(w + 1) << 32) | (0xdead0000u + w));
    for (unsigned w = 0; w < 11; ++w) {
        EXPECT_EQ(span.read(size_t(w) * 43, 43),
                  ((uint64_t(w + 1) << 32) | (0xdead0000u + w)) &
                      mask(43))
            << "way " << w;
    }
    // Trailing 39 bits remain zero.
    EXPECT_EQ(span.read(473, 39), 0u);
}

TEST(BitSpan, RandomizedRoundTripProperty)
{
    Rng rng(42);
    for (int iter = 0; iter < 2000; ++iter) {
        uint8_t buf[64] = {};
        BitSpan span(buf, sizeof(buf));
        int nbits = int(rng.inRange(1, 57));
        size_t offset = size_t(rng.below(512 - uint64_t(nbits)));
        uint64_t val = rng.next() & mask(nbits);
        span.write(offset, nbits, val);
        ASSERT_EQ(span.read(offset, nbits), val)
            << "offset=" << offset << " nbits=" << nbits;
    }
}

TEST(BitSpan, OverlappingWritesLastOneWins)
{
    uint8_t buf[16] = {};
    BitSpan span(buf, sizeof(buf));
    span.write(0, 16, 0xffff);
    span.write(4, 8, 0x00);
    EXPECT_EQ(span.read(0, 4), 0xfu);
    EXPECT_EQ(span.read(4, 8), 0x0u);
    EXPECT_EQ(span.read(12, 4), 0xfu);
}

// ---------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------

TEST(Rng, DeterministicFromSeed)
{
    Rng a(123), b(123), c(124);
    bool all_equal = true, any_diff = false;
    for (int i = 0; i < 100; ++i) {
        uint64_t va = a.next(), vb = b.next(), vc = c.next();
        all_equal = all_equal && (va == vb);
        any_diff = any_diff || (va != vc);
    }
    EXPECT_TRUE(all_equal);
    EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.below(17), 17u);
}

TEST(Rng, UniformIsInUnitInterval)
{
    Rng rng(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GeometricHasRoughlyRequestedMean)
{
    Rng rng(11);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += double(rng.geometric(6.0));
    EXPECT_NEAR(sum / n, 6.0, 0.5);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

// ---------------------------------------------------------------------
// ZipfSampler
// ---------------------------------------------------------------------

TEST(Zipf, AlphaZeroIsUniform)
{
    ZipfSampler z(10, 0.0);
    Rng rng(3);
    std::map<size_t, int> counts;
    for (int i = 0; i < 50000; ++i)
        counts[z.sample(rng)]++;
    for (auto &[item, count] : counts)
        EXPECT_NEAR(count / 50000.0, 0.1, 0.02) << "item " << item;
}

TEST(Zipf, SkewFavorsLowIndices)
{
    ZipfSampler z(1000, 1.0);
    Rng rng(5);
    int head = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        head += z.sample(rng) < 10;
    // With alpha=1 the top-10 of 1000 should take a large share.
    EXPECT_GT(head / double(n), 0.30);
}

TEST(Zipf, SamplesCoverTheRange)
{
    ZipfSampler z(4, 0.5);
    Rng rng(17);
    std::map<size_t, int> counts;
    for (int i = 0; i < 10000; ++i) {
        size_t s = z.sample(rng);
        ASSERT_LT(s, 4u);
        counts[s]++;
    }
    EXPECT_EQ(counts.size(), 4u);
}

// ---------------------------------------------------------------------
// Args
// ---------------------------------------------------------------------

namespace {

Args
makeArgs(std::vector<std::string> tokens)
{
    static std::vector<std::string> storage;
    storage = std::move(tokens);
    static std::vector<char *> argv;
    argv.clear();
    for (auto &t : storage)
        argv.push_back(t.data());
    return Args(int(argv.size()), argv.data());
}

} // namespace

TEST(Args, ParsesKeyEqualsValue)
{
    Args a = makeArgs({"prog", "--refs=100", "--name=oracle"});
    EXPECT_EQ(a.getUint("refs"), 100u);
    EXPECT_EQ(a.getString("name"), "oracle");
}

TEST(Args, ParsesKeySpaceValue)
{
    Args a = makeArgs({"prog", "--refs", "250", "--alpha", "0.5"});
    EXPECT_EQ(a.getInt("refs"), 250);
    EXPECT_DOUBLE_EQ(a.getDouble("alpha"), 0.5);
}

TEST(Args, BooleanFlags)
{
    Args a = makeArgs({"prog", "--csv", "--no-warmup"});
    EXPECT_TRUE(a.getBool("csv"));
    EXPECT_FALSE(a.getBool("warmup", true));
    EXPECT_TRUE(a.getBool("absent", true));
    EXPECT_FALSE(a.getBool("absent", false));
}

TEST(Args, DefaultsWhenAbsent)
{
    Args a = makeArgs({"prog"});
    EXPECT_EQ(a.getUint("refs", 42), 42u);
    EXPECT_EQ(a.getString("name", "x"), "x");
    EXPECT_FALSE(a.has("refs"));
}

TEST(Args, ListsAndPositional)
{
    Args a = makeArgs({"prog", "--workloads=a,b,c", "pos1", "pos2"});
    auto list = a.getList("workloads");
    ASSERT_EQ(list.size(), 3u);
    EXPECT_EQ(list[0], "a");
    EXPECT_EQ(list[2], "c");
    ASSERT_EQ(a.positional().size(), 2u);
    EXPECT_EQ(a.positional()[1], "pos2");
}
