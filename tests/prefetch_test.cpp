/**
 * @file
 * Tests for the PVCache locality prefetcher and the victim buffer
 * (ISSUE 10): the stride detector's off state is inert (depth 0
 * issues no speculative traffic and keeps the legacy stats), the
 * detector fires on sequential-set demand streams, prefetch fills
 * are counted apart from demand fills (fill-latency stats stay
 * demand-only), speculative fetches never take the last MSHR and
 * are charged against the owning tenant's QoS entitlements, the
 * victim buffer retains evicted-but-hot lines without a round trip
 * through the L2, and the whole machinery holds the sharded-timing
 * determinism contract (bit-identical stats across shards x bank
 * domains x lanes x overlap).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/pv_proxy.hh"
#include "core/pv_qos.hh"
#include "harness/metrics.hh"
#include "harness/system.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"

using namespace pvsim;

namespace {

/** Single-table PVProxy in front of a real L2 + DRAM. */
struct PrefetchProxyTest : public ::testing::Test {
    static constexpr unsigned kSets = 64;

    AddrMap amap{1ull << 30, 1, 64 * 1024};
    std::unique_ptr<SimContext> ctxp;
    std::unique_ptr<Dram> dram;
    std::unique_ptr<Cache> l2;
    std::unique_ptr<PvProxy> proxy;

    void
    build(unsigned prefetch_depth, unsigned victim_entries,
          unsigned pvcache_entries = 16,
          SimMode mode = SimMode::Functional)
    {
        proxy.reset();
        l2.reset();
        dram.reset();
        ctxp = std::make_unique<SimContext>(mode);
        dram = std::make_unique<Dram>(
            *ctxp, DramParams{"dram", 400, 0}, &amap);
        CacheParams l2p;
        l2p.name = "l2";
        l2p.sizeBytes = 64 * 1024;
        l2p.assoc = 8;
        l2p.directory = true;
        l2 = std::make_unique<Cache>(*ctxp, l2p, &amap);
        l2->setMemSide(dram.get());

        PvProxyParams pp;
        pp.pvCacheEntries = pvcache_entries;
        pp.prefetchDepth = prefetch_depth;
        pp.victimEntries = victim_entries;
        proxy = std::make_unique<PvProxy>(
            *ctxp, pp, PvTableLayout(amap.pvStart(0), kSets));
        proxy->setMemSide(l2.get());
    }

    void
    poke(unsigned set, uint8_t value)
    {
        proxy->access({0, set, PvReqClass::Demand,
                       [value](PvLineView v) {
            ASSERT_NE(v.bytes, nullptr);
            v.bytes[0] = value;
            *v.dirty = true;
        }});
    }

    uint8_t
    peek(unsigned set)
    {
        uint8_t out = 0xEE;
        proxy->access({0, set, PvReqClass::Demand,
                       [&out](PvLineView v) {
            ASSERT_NE(v.bytes, nullptr);
            out = v.bytes[0];
        }});
        return out;
    }
};

} // namespace

// ---------------------------------------------------------------------
// Depth 0: the detector is off, and stays off.
// ---------------------------------------------------------------------

TEST_F(PrefetchProxyTest, Depth0IssuesNoSpeculativeTraffic)
{
    build(/*depth=*/0, /*victims=*/0);
    // A perfectly sequential walk — the easiest possible trigger.
    for (unsigned s = 0; s < 8; ++s)
        peek(s);
    EXPECT_EQ(proxy->prefetchFills.value(), 0u);
    EXPECT_EQ(proxy->prefetchUseful.value(), 0u);
    EXPECT_EQ(proxy->prefetchDrops.value(), 0u);
    EXPECT_EQ(proxy->victimHits.value(), 0u);
    // The legacy demand accounting is untouched: one fetch per set.
    EXPECT_EQ(proxy->pvCacheMisses.value(), 8u);
    EXPECT_EQ(proxy->fills.value(), 8u);
    EXPECT_EQ(proxy->memRequests.value(), 8u);
}

// ---------------------------------------------------------------------
// The stride detector.
// ---------------------------------------------------------------------

TEST_F(PrefetchProxyTest, SequentialWalkTriggersPrefetch)
{
    build(/*depth=*/2, /*victims=*/0);
    // Sets 0, 1, 2: the third access confirms stride 1 and fetches
    // sets 3 and 4 ahead of demand.
    peek(0);
    peek(1);
    EXPECT_EQ(proxy->prefetchFills.value(), 0u)
        << "one stride sample must not trigger";
    peek(2);
    EXPECT_EQ(proxy->prefetchFills.value(), 2u);
    // Demand fills are counted apart from the speculative ones.
    EXPECT_EQ(proxy->fills.value(), 3u);
    EXPECT_EQ(proxy->pvCacheMisses.value(), 3u);

    // Demand catching up with the prefetched line: a hit, scored
    // useful, no new miss.
    uint64_t misses = proxy->pvCacheMisses.value();
    peek(3);
    EXPECT_EQ(proxy->pvCacheMisses.value(), misses);
    EXPECT_GE(proxy->prefetchUseful.value(), 1u);
    EXPECT_GE(proxy->engineStats(0).prefetchUseful.value(), 1u);
}

TEST_F(PrefetchProxyTest, StridedWalkTriggersPrefetch)
{
    build(/*depth=*/1, /*victims=*/0);
    // Stride 4: 0, 4, 8 — the repeat confirms it, set 12 is fetched.
    peek(0);
    peek(4);
    peek(8);
    EXPECT_EQ(proxy->prefetchFills.value(), 1u);
    uint64_t misses = proxy->pvCacheMisses.value();
    peek(12);
    EXPECT_EQ(proxy->pvCacheMisses.value(), misses)
        << "the strided prefetch must cover the next demand";
}

TEST_F(PrefetchProxyTest, PrefetchStopsAtTheSegmentBound)
{
    build(/*depth=*/4, /*victims=*/0);
    // Walking into the last sets: speculation must clip at kSets.
    peek(kSets - 3);
    peek(kSets - 2);
    peek(kSets - 1);
    // Only sets inside the table can be fetched — nothing beyond
    // kSets-1 exists, so at most the (already demanded) tail.
    EXPECT_EQ(proxy->prefetchFills.value(), 0u);
    EXPECT_EQ(proxy->pvCacheMisses.value(), 3u);
}

// ---------------------------------------------------------------------
// Timing mode: fill classes, MSHR priority, latency accounting.
// ---------------------------------------------------------------------

TEST_F(PrefetchProxyTest, PrefetchFillsAreNotDemandFills)
{
    build(/*depth=*/0, /*victims=*/0, 16, SimMode::Timing);
    // An explicit Prefetch-class request works at any depth (the
    // knob only gates the automatic detector).
    proxy->access({0, 9, PvReqClass::Prefetch, {}});
    ctxp->events().runUntil();
    EXPECT_EQ(proxy->prefetchFills.value(), 1u);
    EXPECT_EQ(proxy->fills.value(), 0u);
    EXPECT_EQ(proxy->engineStats(0).fillLatencyTicks.value(), 0u)
        << "fill latency is a demand-only statistic";
    EXPECT_TRUE(proxy->quiesced());

    // Demand arriving on the prefetched line: a zero-latency hit,
    // scored useful.
    bool done = false;
    proxy->access({0, 9, PvReqClass::Demand,
                   [&](PvLineView v) { done = v.bytes != nullptr; }});
    EXPECT_TRUE(done);
    EXPECT_EQ(proxy->prefetchUseful.value(), 1u);
    EXPECT_EQ(proxy->pvCacheHits.value(), 1u);
}

TEST_F(PrefetchProxyTest, PrefetchNeverTakesTheLastMshr)
{
    build(/*depth=*/0, /*victims=*/0, 16, SimMode::Timing);
    // Default 4 MSHRs: three demand misses in flight leave one
    // slot, which speculation must not claim...
    for (unsigned s = 0; s < 3; ++s)
        proxy->access({0, s, PvReqClass::Demand, [](PvLineView) {}});
    proxy->access({0, 10, PvReqClass::Prefetch, {}});
    EXPECT_EQ(proxy->prefetchDrops.value(), 1u);
    EXPECT_EQ(proxy->prefetchFills.value(), 0u);
    // ... so the next demand miss still gets it.
    int dropped = 0;
    proxy->access({0, 11, PvReqClass::Demand, [&](PvLineView v) {
        if (!v.bytes)
            ++dropped;
    }});
    EXPECT_EQ(dropped, 0);
    ctxp->events().runUntil();
    EXPECT_EQ(proxy->fills.value(), 4u);
    EXPECT_TRUE(proxy->quiesced());
}

TEST_F(PrefetchProxyTest, CoalescedDemandOnPrefetchScoresUseful)
{
    build(/*depth=*/0, /*victims=*/0, 16, SimMode::Timing);
    proxy->access({0, 7, PvReqClass::Prefetch, {}});
    // Demand for the same set while the speculative fetch is in
    // flight: coalesces onto it and proves the prefetch useful.
    int completed = 0;
    proxy->access({0, 7, PvReqClass::Demand,
                   [&](PvLineView) { ++completed; }});
    ctxp->events().runUntil();
    EXPECT_EQ(completed, 1);
    EXPECT_EQ(proxy->memRequests.value(), 1u);
    EXPECT_EQ(proxy->prefetchUseful.value(), 1u);
    EXPECT_TRUE(proxy->quiesced());
}

// ---------------------------------------------------------------------
// Victim buffer.
// ---------------------------------------------------------------------

TEST_F(PrefetchProxyTest, VictimBufferReinstatesWithoutL2Traffic)
{
    build(/*depth=*/0, /*victims=*/4, /*pvcache=*/2);
    poke(1, 0xAA);
    poke(2, 0xBB);
    poke(3, 0xCC); // evicts dirty set 1 into the victim buffer
    EXPECT_EQ(proxy->writebacks.value(), 0u)
        << "retention replaces the writeback";
    uint64_t mem = proxy->memRequests.value();

    // The evicted-but-hot line comes back from the victim buffer:
    // bytes intact, no L2 round trip.
    EXPECT_EQ(peek(1), 0xAA);
    EXPECT_EQ(proxy->victimHits.value(), 1u);
    EXPECT_EQ(proxy->engineStats(0).victimHits.value(), 1u);
    EXPECT_EQ(proxy->memRequests.value(), mem);
}

TEST_F(PrefetchProxyTest, VictimOverflowWritesBackTheColdLine)
{
    build(/*depth=*/0, /*victims=*/1, /*pvcache=*/1);
    poke(1, 0x11); // PVCache
    poke(2, 0x22); // set 1 -> victim buffer
    poke(3, 0x33); // set 2 evicts; buffer full, set 1 flushes dirty
    EXPECT_GE(proxy->writebacks.value(), 1u);
    // The flushed line is recoverable through the hierarchy.
    EXPECT_EQ(peek(1), 0x11);
}

TEST_F(PrefetchProxyTest, FlushDrainsTheVictimBuffer)
{
    build(/*depth=*/0, /*victims=*/4, /*pvcache=*/2);
    poke(1, 0x11);
    poke(2, 0x22);
    poke(3, 0x33); // dirty set 1 retained
    proxy->flush();
    EXPECT_EQ(proxy->victimOccupancy(0), 0u);
    // Every dirty line — cached or retained — reached the L2.
    EXPECT_EQ(peek(1), 0x11);
    EXPECT_EQ(peek(2), 0x22);
    EXPECT_EQ(peek(3), 0x33);
}

// ---------------------------------------------------------------------
// QoS: speculation is charged to the owning tenant.
// ---------------------------------------------------------------------

namespace {

/** Multi-tenant proxy with QoS contracts (qos_test fixture). */
struct PrefetchQosTest : public ::testing::Test {
    AddrMap amap{1ull << 30, 1, 512 * 1024};
    std::unique_ptr<SimContext> ctxp;
    std::unique_ptr<Dram> dram;
    std::unique_ptr<Cache> l2;
    std::unique_ptr<PvProxy> proxy;

    void
    build(SimMode mode, unsigned prefetch_depth = 0,
          unsigned victim_entries = 0)
    {
        proxy.reset();
        l2.reset();
        dram.reset();
        ctxp = std::make_unique<SimContext>(mode);
        dram = std::make_unique<Dram>(
            *ctxp, DramParams{"dram", 400, 0}, &amap);
        CacheParams l2p;
        l2p.name = "l2";
        l2p.sizeBytes = 1024 * 1024;
        l2p.assoc = 8;
        l2p.directory = true;
        l2 = std::make_unique<Cache>(*ctxp, l2p, &amap);
        l2->setMemSide(dram.get());

        PvProxyParams pp;
        pp.pvCacheEntries = 8;
        pp.usedBitsPerLine = 0;
        pp.prefetchDepth = prefetch_depth;
        pp.victimEntries = victim_entries;
        proxy = std::make_unique<PvProxy>(
            *ctxp, pp, amap.pvStart(0), amap.pvBytesPerCore());
        proxy->setMemSide(l2.get());
    }

    unsigned
    addTenant(const std::string &name, unsigned weight)
    {
        PvTenantQos q;
        q.weight = weight;
        return proxy->registerEngine({name, 64, 100, q});
    }
};

} // namespace

TEST_F(PrefetchQosTest, ZeroEntitlementTenantPrefetchesDropFirst)
{
    build(SimMode::Timing);
    unsigned served = addTenant("served", 1);
    unsigned starved = addTenant("starved", 0);

    // The starved tenant's speculation is refused outright — no
    // MSHR, no PVCache line, only a drop on its own scoreboard.
    proxy->access({starved, 3, PvReqClass::Prefetch, {}});
    EXPECT_EQ(proxy->engineStats(starved).prefetchDrops.value(), 1u);
    EXPECT_EQ(proxy->mshrOccupancy(starved), 0u);

    // The served tenant speculates freely.
    proxy->access({served, 3, PvReqClass::Prefetch, {}});
    ctxp->events().runUntil();
    EXPECT_EQ(proxy->engineStats(served).prefetchFills.value(), 1u);
    EXPECT_EQ(proxy->engineStats(served).prefetchDrops.value(), 0u);
    EXPECT_TRUE(proxy->quiesced());
}

TEST_F(PrefetchQosTest, PrefetchChargesTheTenantsMshrQuota)
{
    build(SimMode::Timing);
    unsigned btb = addTenant("btb", 3);
    unsigned agg = addTenant("agg", 1);
    // 4 MSHRs split 3:1: the aggressor's single slot is consumed by
    // its demand miss, so its speculation drops under the quota...
    proxy->access({agg, 0, PvReqClass::Demand, [](PvLineView) {}});
    proxy->access({agg, 1, PvReqClass::Prefetch, {}});
    EXPECT_EQ(proxy->engineStats(agg).prefetchDrops.value(), 1u);
    EXPECT_EQ(proxy->mshrOccupancy(agg), 1u);
    // ... while the protected tenant still speculates inside its
    // three slots.
    proxy->access({btb, 0, PvReqClass::Prefetch, {}});
    EXPECT_EQ(proxy->engineStats(btb).prefetchDrops.value(), 0u);
    ctxp->events().runUntil();
    EXPECT_EQ(proxy->engineStats(btb).prefetchFills.value(), 1u);
    EXPECT_TRUE(proxy->quiesced());
}

// ---------------------------------------------------------------------
// System level: knob plumbing and the determinism contract.
// ---------------------------------------------------------------------

namespace {

/** The fig9 "mixed" virtualized side with the prefetcher engaged. */
SystemConfig
prefetchSystemConfig(unsigned depth, unsigned victims,
                     unsigned shards = 1, Cycles quantum = 0,
                     unsigned bank_domains = 0,
                     unsigned dram_lanes = 0,
                     unsigned drain_overlap = 0)
{
    Fig9Options opt;
    opt.batches = 1;
    WorkloadMix mix;
    for (const WorkloadMix &m : presetMixes()) {
        if (m.name == "mixed")
            mix = m;
    }
    SystemConfig cfg =
        fig9Config(mix, opt, BtbMode::Virtualized);
    cfg.pvPrefetch = depth;
    cfg.victimEntries = victims;
    cfg.timingShards = shards;
    cfg.syncQuantum = quantum;
    cfg.l2BankDomains = bank_domains;
    cfg.dramLanes = dram_lanes;
    cfg.drainOverlap = drain_overlap;
    return cfg;
}

struct SysRun {
    Tick finish = 0;
    std::string stats;
    uint64_t prefetchFills = 0;
    uint64_t victimHits = 0;
};

SysRun
runSystem(const SystemConfig &cfg, uint64_t records)
{
    System sys(cfg);
    SysRun r;
    r.finish = sys.runTiming(records);
    std::ostringstream os;
    sys.ctx().dumpStats(os);
    r.stats = os.str();
    for (int c = 0; c < sys.numCores(); ++c) {
        if (PvProxy *p = sys.pvProxy(c)) {
            r.prefetchFills += p->prefetchFills.value();
            r.victimHits += p->victimHits.value();
        }
    }
    return r;
}

} // namespace

TEST(PrefetchSystem, KnobsReachTheProxy)
{
    SysRun on = runSystem(prefetchSystemConfig(2, 8), 4000);
    EXPECT_GT(on.prefetchFills + on.victimHits, 0u)
        << "pvPrefetch/victimEntries must plumb through to the "
           "per-core proxies";
}

TEST(PrefetchSystem, Depth0MatchesTheDefaultMachineExactly)
{
    // Explicit zeros vs untouched defaults: the same machine, so
    // the same simulation — the depth-0 proxy must not construct
    // (or tick) any prefetch machinery.
    Fig9Options opt;
    opt.batches = 1;
    WorkloadMix mix;
    for (const WorkloadMix &m : presetMixes()) {
        if (m.name == "mixed")
            mix = m;
    }
    SystemConfig plain = fig9Config(mix, opt, BtbMode::Virtualized);
    SysRun a = runSystem(plain, 3000);
    SysRun b = runSystem(prefetchSystemConfig(0, 0), 3000);
    EXPECT_EQ(a.finish, b.finish);
    EXPECT_EQ(a.stats, b.stats);
    EXPECT_EQ(b.prefetchFills, 0u);
    EXPECT_EQ(b.victimHits, 0u);
}

TEST(PrefetchSystem, DeterministicAcrossShardAndBankGrid)
{
    // The PR 6-9 contract with speculation live: every (shards,
    // bank-domains, lanes, overlap) combination on the quantum path
    // produces bit-identical stats and the same finish tick.
    const uint64_t records = 3000;
    SysRun serial =
        runSystem(prefetchSystemConfig(3, 8, 1, 12, 1, 1, 1),
                  records);
    ASSERT_GT(serial.prefetchFills + serial.victimHits, 0u)
        << "the grid must exercise live speculation";

    struct Combo {
        unsigned shards, banks, lanes, overlap;
    };
    for (const Combo &c : {Combo{2, 1, 1, 1}, Combo{2, 4, 0, 2},
                           Combo{4, 4, 0, 2}}) {
        SysRun run = runSystem(
            prefetchSystemConfig(3, 8, c.shards, 12, c.banks,
                                 c.lanes, c.overlap),
            records);
        EXPECT_EQ(run.finish, serial.finish)
            << c.shards << " shards x " << c.banks
            << " domains changed the finish tick";
        EXPECT_EQ(run.stats, serial.stats)
            << c.shards << " shards x " << c.banks
            << " domains changed aggregate statistics";
    }
}
