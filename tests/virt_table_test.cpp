/**
 * @file
 * Tests for the virtualized tables: store/find round trips through a
 * real memory hierarchy, in-set replacement, the dedicated-vs-
 * virtualized PHT equivalence property, and the BTB extension.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/virt_btb.hh"
#include "core/virt_pht.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "util/random.hh"

using namespace pvsim;

namespace {

/** Hierarchy fixture shared by the virtualized-table tests. */
struct VirtTableTest : public ::testing::Test {
    AddrMap amap{1ull << 30, 1, 256 * 1024};
    std::unique_ptr<SimContext> ctxp;
    std::unique_ptr<Dram> dram;
    std::unique_ptr<Cache> l2;

    void
    buildHierarchy(SimMode mode = SimMode::Functional)
    {
        l2.reset();
        dram.reset();
        ctxp = std::make_unique<SimContext>(mode);
        dram = std::make_unique<Dram>(
            *ctxp, DramParams{"dram", 400, 0}, &amap);
        CacheParams l2p;
        l2p.name = "l2";
        l2p.sizeBytes = 1024 * 1024;
        l2p.assoc = 8;
        l2p.directory = true;
        l2 = std::make_unique<Cache>(*ctxp, l2p, &amap);
        l2->setMemSide(dram.get());
    }

    std::unique_ptr<VirtualizedPht>
    makePht(unsigned sets = 64, unsigned assoc = 10,
            unsigned pvcache = 8)
    {
        VirtPhtParams vp;
        vp.numSets = sets;
        vp.assoc = assoc;
        vp.proxy.pvCacheEntries = pvcache;
        auto pht = std::make_unique<VirtualizedPht>(
            *ctxp, vp, amap.pvStart(0));
        pht->proxy().setMemSide(l2.get());
        return pht;
    }
};

bool
probe(PatternHistoryTable &pht, PhtKey key, SpatialPattern &out)
{
    bool found = false;
    pht.lookup(key, [&](bool f, SpatialPattern p) {
        found = f;
        out = p;
    });
    return found;
}

} // namespace

TEST_F(VirtTableTest, InsertThenLookupFindsPattern)
{
    buildHierarchy();
    auto pht = makePht();
    pht->insert(0x123, 0xCAFE0003);
    SpatialPattern p = 0;
    EXPECT_TRUE(probe(*pht, 0x123, p));
    EXPECT_EQ(p, 0xCAFE0003u);
}

TEST_F(VirtTableTest, MissingKeyReportsNotFound)
{
    buildHierarchy();
    auto pht = makePht();
    SpatialPattern p = 0;
    EXPECT_FALSE(probe(*pht, 0x777, p));
}

TEST_F(VirtTableTest, UpdateInPlaceOverwrites)
{
    buildHierarchy();
    auto pht = makePht();
    pht->insert(0x50, 0x1111);
    pht->insert(0x50, 0x2222);
    SpatialPattern p = 0;
    ASSERT_TRUE(probe(*pht, 0x50, p));
    EXPECT_EQ(p, 0x2222u);
}

TEST_F(VirtTableTest, KeysInDifferentSetsDoNotConflict)
{
    buildHierarchy();
    auto pht = makePht(64, 10, 8);
    for (PhtKey k = 0; k < 64; ++k)
        pht->insert(k, 0x80000000u | k);
    SpatialPattern p = 0;
    for (PhtKey k = 0; k < 64; ++k) {
        ASSERT_TRUE(probe(*pht, k, p)) << "key " << k;
        EXPECT_EQ(p, 0x80000000u | k);
    }
}

TEST_F(VirtTableTest, SetOverflowReplacesAnEntry)
{
    buildHierarchy();
    auto pht = makePht(4, 2, 8); // 2 ways per set
    // Three keys in the same set (key % 4 == 1).
    pht->insert(1, 0xA1);
    pht->insert(5, 0xA5);
    pht->insert(9, 0xA9);
    SpatialPattern p;
    int found = probe(*pht, 1, p) + probe(*pht, 5, p) +
                probe(*pht, 9, p);
    EXPECT_EQ(found, 2) << "exactly one entry was replaced";
    EXPECT_TRUE(probe(*pht, 9, p)) << "newest entry must survive";
}

TEST_F(VirtTableTest, SurvivesPvCacheAndL2EvictionRoundTrip)
{
    buildHierarchy();
    // 1-entry PVCache: every distinct set access evicts.
    auto pht = makePht(256, 11, 1);
    std::map<PhtKey, SpatialPattern> expect;
    Rng rng(77);
    for (int i = 0; i < 600; ++i) {
        PhtKey k = PhtKey(rng.below(256 * 4));
        SpatialPattern pat = SpatialPattern(rng.next() | 1);
        pht->insert(k, pat);
        expect[k] = pat;
    }
    // Every insert survived the trip through PVCache evictions and
    // the L2 (sets with more than 11 colliding keys could replace,
    // but 1024 keys over 256 sets x 11 ways never overflow a set
    // with this draw count per set... verify anyway via bookkeeping
    // of what SHOULD be present: keys per set <= 11 here is not
    // guaranteed, so only check keys whose set saw <= 11 keys).
    std::map<unsigned, unsigned> keys_per_set;
    for (auto &[k, pat] : expect)
        keys_per_set[k % 256]++;
    SpatialPattern p;
    for (auto &[k, pat] : expect) {
        if (keys_per_set[k % 256] > 11)
            continue;
        ASSERT_TRUE(probe(*pht, k, p)) << "key " << k;
        EXPECT_EQ(p, pat) << "key " << k;
    }
}

TEST_F(VirtTableTest, EquivalenceWithDedicatedPhtWhenNoOverflow)
{
    // The paper's core claim in miniature: with the same geometry
    // and no set overflow, the virtualized PHT returns exactly what
    // the dedicated PHT returns, for an arbitrary op sequence.
    buildHierarchy();
    auto vpht = makePht(64, 10, 4);
    SetAssocPht dpht({64, 10});

    Rng rng(123);
    std::map<unsigned, std::vector<PhtKey>> set_keys;
    for (int i = 0; i < 3000; ++i) {
        PhtKey k = PhtKey(rng.below(64 * 8)); // <= 8 keys per set
        if (rng.chance(0.4)) {
            SpatialPattern pat = SpatialPattern(rng.next() | 1);
            vpht->insert(k, pat);
            dpht.insert(k, pat);
        } else {
            SpatialPattern pv = 0, pd = 0;
            bool fv = probe(*vpht, k, pv);
            bool fd = probe(dpht, k, pd);
            ASSERT_EQ(fv, fd) << "found mismatch at key " << k;
            ASSERT_EQ(pv, pd) << "pattern mismatch at key " << k;
        }
    }
}

TEST_F(VirtTableTest, TimingModeLookupCompletesAfterFetch)
{
    buildHierarchy(SimMode::Timing);
    auto pht = makePht();
    pht->insert(0x31, 0xBEEF);
    ctxp->events().runUntil();

    // Thrash the PVCache so the next lookup misses (one at a time:
    // the proxy has only 4 MSHRs and drops excess concurrent ops).
    for (unsigned s = 0; s < 16; ++s) {
        pht->proxy().access({0, (0x31u + 1 + s) % 64,
                             PvReqClass::Demand, [](PvLineView) {}});
        ctxp->events().runUntil();
    }

    bool done = false;
    SpatialPattern seen = 0;
    pht->lookup(0x31, [&](bool f, SpatialPattern p) {
        done = true;
        seen = f ? p : 0;
    });
    EXPECT_FALSE(done);
    ctxp->events().runUntil();
    EXPECT_TRUE(done);
    EXPECT_EQ(seen, 0xBEEFu);
}

TEST_F(VirtTableTest, StorageIsTwoOrdersBelowDedicated)
{
    buildHierarchy();
    auto vpht = makePht(1024, 11, 8);
    PhtGeometry dedicated{1024, 11};
    double ratio = double(dedicated.storageBits()) /
                   double(vpht->storageBits());
    // Paper Section 4.6: factor of 68.
    EXPECT_GT(ratio, 50.0);
    EXPECT_LT(ratio, 90.0);
    EXPECT_EQ(vpht->entryBits(), 43u);
}

TEST_F(VirtTableTest, SharedTableCrossTrainsBetweenProxies)
{
    // Paper Section 2.1: multiple cores may share one PVTable.
    // Patterns inserted through one core's proxy must be visible
    // through another core's proxy (each has a private PVCache, but
    // both map the same memory).
    buildHierarchy();
    VirtPhtParams vp;
    vp.numSets = 64;
    vp.assoc = 10;
    auto pht0 = std::make_unique<VirtualizedPht>(*ctxp, vp,
                                                 amap.pvStart(0));
    auto pht1 = std::make_unique<VirtualizedPht>(*ctxp, vp,
                                                 amap.pvStart(0));
    pht0->proxy().setMemSide(l2.get());
    pht1->proxy().setMemSide(l2.get());

    pht0->insert(0x44, 0xFACE);
    // Write the update out of proxy 0's PVCache so proxy 1 can see
    // it through the hierarchy.
    pht0->proxy().flush();

    SpatialPattern p = 0;
    EXPECT_TRUE(probe(*pht1, 0x44, p))
        << "pattern trained by proxy 0 must serve proxy 1";
    EXPECT_EQ(p, 0xFACEu);
}

TEST_F(VirtTableTest, PrivateTablesStayIsolated)
{
    buildHierarchy();
    VirtPhtParams vp;
    vp.numSets = 64;
    vp.assoc = 10;
    auto pht0 = std::make_unique<VirtualizedPht>(*ctxp, vp,
                                                 amap.pvStart(0));
    // amap was built for one core; emulate a second private table
    // at a disjoint base inside the app range top.
    auto pht1 = std::make_unique<VirtualizedPht>(
        *ctxp, vp, amap.pvStart(0) + 64 * kBlockBytes);
    pht0->proxy().setMemSide(l2.get());
    pht1->proxy().setMemSide(l2.get());

    pht0->insert(0x44, 0xFACE);
    pht0->proxy().flush();
    SpatialPattern p = 0;
    EXPECT_FALSE(probe(*pht1, 0x44, p))
        << "private tables must not alias";
}

// ---------------------------------------------------------------------
// BTB extension
// ---------------------------------------------------------------------

TEST_F(VirtTableTest, BtbLearnsAndPredictsTargets)
{
    buildHierarchy();
    VirtBtbParams bp;
    bp.numSets = 128;
    bp.proxy.pvCacheEntries = 8;
    VirtualizedBtb btb(*ctxp, bp, amap.pvStart(0));
    btb.proxy().setMemSide(l2.get());

    btb.update(0x40001000, 0x40002000);
    btb.update(0x40001010, 0x40003000);

    Addr target = 0;
    bool found = false;
    btb.lookup(0x40001000, [&](bool f, Addr t) {
        found = f;
        target = t;
    });
    EXPECT_TRUE(found);
    EXPECT_EQ(target, 0x40002000u);

    btb.lookup(0x40009999 & ~3ull, [&](bool f, Addr) { found = f; });
    EXPECT_FALSE(found);
}

TEST_F(VirtTableTest, BtbStorageIsTiny)
{
    buildHierarchy();
    VirtBtbParams bp;
    bp.numSets = 2048; // 16K entries in memory
    VirtualizedBtb btb(*ctxp, bp, amap.pvStart(0));
    btb.proxy().setMemSide(l2.get());
    // A dedicated 16K-entry BTB with 62-bit entries would need
    // ~124KB; the proxy needs ~1KB.
    EXPECT_LT(btb.storageBits() / 8, 1200u);
    EXPECT_EQ(btb.tableBytes(), 2048u * 64u);
}
