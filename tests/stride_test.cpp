/**
 * @file
 * Tests for the stride prefetcher and for trace-file replay through
 * the full system.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "harness/metrics.hh"
#include "harness/system.hh"
#include "mem/dram.hh"
#include "prefetch/stride.hh"
#include "trace/trace_io.hh"

using namespace pvsim;

namespace {

struct StrideTest : public ::testing::Test {
    SimContext ctx{SimMode::Functional};
    AddrMap amap{1ull << 30, 1, 64 * 1024};
    Dram dram{ctx, DramParams{}, &amap};
    std::unique_ptr<Cache> l1;
    std::unique_ptr<StridePrefetcher> pf;

    void
    SetUp() override
    {
        CacheParams cp;
        cp.name = "l1";
        cp.sizeBytes = 16 * 1024;
        cp.assoc = 4;
        l1 = std::make_unique<Cache>(ctx, cp, &amap);
        l1->setMemSide(&dram);
        StrideParams sp;
        pf = std::make_unique<StridePrefetcher>(ctx, sp, l1.get());
        l1->setListener(pf.get());
    }

    void
    access(Addr addr, Addr pc)
    {
        Packet pkt(MemCmd::ReadReq, addr, 0);
        pkt.pc = pc;
        l1->functionalAccess(pkt);
    }
};

} // namespace

TEST_F(StrideTest, LearnsConstantStrideAndPrefetches)
{
    const Addr pc = 0x4000;
    // Stride of 256B: a1=base, then +256 each access. After the
    // threshold confirms, prefetches run ahead.
    for (int i = 0; i < 8; ++i)
        access(0x100000 + Addr(i) * 256, pc);
    EXPECT_GT(pf->prefetchesIssued.value(), 0u);
    // The block two strides ahead must be resident.
    EXPECT_TRUE(l1->contains(0x100000 + 9 * 256));
}

TEST_F(StrideTest, IgnoresIrregularStreams)
{
    const Addr pc = 0x4000;
    Addr addrs[] = {0x100000, 0x153000, 0x101000, 0x177000,
                    0x120000, 0x199000, 0x108000, 0x142000};
    for (Addr a : addrs)
        access(a, pc);
    EXPECT_EQ(pf->prefetchesIssued.value(), 0u);
}

TEST_F(StrideTest, DistinguishesPcs)
{
    // Two interleaved streams with different strides and PCs must
    // both be learned (separate table entries).
    for (int i = 0; i < 8; ++i) {
        access(0x100000 + Addr(i) * 128, 0x4000);
        access(0x800000 + Addr(i) * 512, 0x5000);
    }
    EXPECT_TRUE(l1->contains(0x100000 + 9 * 128) ||
                l1->contains(0x100000 + 8 * 128));
    EXPECT_TRUE(l1->contains(0x800000 + 9 * 512) ||
                l1->contains(0x800000 + 8 * 512));
}

TEST_F(StrideTest, NegativeStridesWork)
{
    const Addr pc = 0x6000;
    for (int i = 10; i >= 2; --i)
        access(0x200000 + Addr(i) * 192, pc);
    EXPECT_GT(pf->prefetchesIssued.value(), 0u);
    EXPECT_TRUE(l1->contains(0x200000 + 0 * 192) ||
                l1->contains(0x200000 + 1 * 192));
}

TEST_F(StrideTest, StorageIsSmall)
{
    // The point of the comparator: stride tables are tiny, so PV
    // has nothing to win there (~3KB for 256 entries).
    EXPECT_LT(pf->storageBits() / 8, 4096u);
}

TEST(StrideSystemTest, RunsInTheFullSystem)
{
    SystemConfig cfg;
    cfg.workload = "qry1"; // scans: stride-friendly
    cfg.numCores = 2;
    cfg.prefetch = PrefetchMode::Stride;
    System sys(cfg);
    sys.runFunctional(40000);
    uint64_t issued = 0;
    for (int c = 0; c < sys.numCores(); ++c) {
        ASSERT_NE(sys.stride(c), nullptr);
        issued += sys.stride(c)->prefetchesIssued.value();
    }
    EXPECT_GT(issued, 100u);
    EXPECT_GT(coverageOf(sys).coveredPct(), 5.0);
    EXPECT_EQ(cfg.label(), "stride");
}

// ---------------------------------------------------------------------
// Trace replay through the system
// ---------------------------------------------------------------------

TEST(TraceReplayTest, ReplayMatchesLiveGeneration)
{
    const std::string dir = "/tmp/pvsim_replay_test";
    ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);

    const uint64_t records = 30000;
    WorkloadParams wp = workloadPreset("qry2");
    for (int c = 0; c < 2; ++c) {
        SyntheticWorkload gen(wp, c);
        TraceFileWriter w(dir + "/core" + std::to_string(c) +
                          ".pvtrace");
        TraceRecord rec;
        for (uint64_t i = 0; i < records; ++i) {
            gen.next(rec);
            w.append(rec);
        }
        w.close();
    }

    SystemConfig live_cfg;
    live_cfg.workload = "qry2";
    live_cfg.numCores = 2;
    live_cfg.prefetch = PrefetchMode::SmsDedicated;
    SystemConfig replay_cfg = live_cfg;
    replay_cfg.traceDir = dir;

    System live(live_cfg);
    live.runFunctional(records);
    System replay(replay_cfg);
    replay.runFunctional(records);

    EXPECT_EQ(coverageOf(live).covered, coverageOf(replay).covered);
    EXPECT_EQ(coverageOf(live).uncovered,
              coverageOf(replay).uncovered);
    EXPECT_EQ(trafficOf(live).l2Requests,
              trafficOf(replay).l2Requests);
    EXPECT_EQ(live.totalInstructions(),
              replay.totalInstructions());

    // Replay ends exactly at the captured record count.
    System replay2(replay_cfg);
    replay2.runFunctional(records * 10);
    EXPECT_EQ(replay2.core(0).recordsConsumed(), records);

    for (int c = 0; c < 2; ++c)
        std::remove(
            (dir + "/core" + std::to_string(c) + ".pvtrace").c_str());
}
