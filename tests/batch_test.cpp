/**
 * @file
 * Equivalence tests for the batched simulation paths: batched trace
 * sources must reproduce the scalar record stream bit-for-bit,
 * batched functional stepping must produce the identical statistics
 * of the scalar path, the chunked functional round-robin must
 * conserve every per-core stream, the threaded matched-pair harness
 * must be bit-identical to the serial one, and the packet pool must
 * recycle storage without disturbing live-count bookkeeping.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "harness/metrics.hh"
#include "harness/system.hh"
#include "mem/packet_pool.hh"
#include "trace/synthetic_gen.hh"
#include "trace/trace_io.hh"
#include "trace/workload.hh"

using namespace pvsim;

namespace {

bool
sameRecord(const TraceRecord &a, const TraceRecord &b)
{
    return a.pc == b.pc && a.addr == b.addr && a.gap == b.gap &&
           a.op == b.op;
}

std::string
statsDump(System &sys)
{
    std::ostringstream os;
    sys.ctx().dumpStats(os);
    return os.str();
}

} // namespace

TEST(NextBatchTest, SyntheticBatchesMatchScalarStream)
{
    WorkloadParams wp = workloadPreset("apache");
    SyntheticWorkload scalar(wp, 0);
    SyntheticWorkload batched(wp, 0);

    // Awkward chunk sizes on purpose: the stream must be invariant
    // to how it is sliced.
    const size_t chunks[] = {1, 7, 256, 3, 64, 1000, 13};
    std::vector<TraceRecord> buf(1000);
    for (size_t n : chunks) {
        ASSERT_EQ(batched.nextBatch(buf.data(), n), n);
        for (size_t i = 0; i < n; ++i) {
            TraceRecord ref;
            ASSERT_TRUE(scalar.next(ref));
            ASSERT_TRUE(sameRecord(ref, buf[i]))
                << "stream diverged at chunk size " << n
                << " record " << i;
        }
    }
}

TEST(NextBatchTest, DefaultFallbackWalksNext)
{
    // The base-class default must equal repeated next() calls and
    // stop at end-of-trace.
    const std::string path = "batch_test_tmp1.pvtrace";
    {
        TraceFileWriter w(path);
        WorkloadParams wp = workloadPreset("qry2");
        SyntheticWorkload gen(wp, 1);
        TraceRecord rec;
        for (int i = 0; i < 100; ++i) {
            gen.next(rec);
            w.append(rec);
        }
    }
    TraceFileReader scalar(path);
    TraceFileReader batched(path);
    std::vector<TraceRecord> buf(64);
    size_t total = 0;
    for (;;) {
        size_t got = batched.nextBatch(buf.data(), buf.size());
        for (size_t i = 0; i < got; ++i) {
            TraceRecord ref;
            ASSERT_TRUE(scalar.next(ref));
            ASSERT_TRUE(sameRecord(ref, buf[i]));
        }
        total += got;
        if (got < buf.size())
            break;
    }
    EXPECT_EQ(total, 100u);
    TraceRecord rec;
    EXPECT_FALSE(scalar.next(rec)) << "scalar reader not exhausted";
    std::remove(path.c_str());
}

TEST(BatchedSteppingTest, IdenticalStatsToScalarSingleCore)
{
    SystemConfig cfg;
    cfg.numCores = 1;
    cfg.prefetch = PrefetchMode::SmsVirtualized;

    System scalar(cfg);
    for (int i = 0; i < 30000; ++i)
        ASSERT_TRUE(scalar.core(0).stepFunctional());

    System batched(cfg);
    // Slice the same 30000 records unevenly through the batch path.
    uint64_t consumed = 0;
    for (uint64_t n : {1ull, 999ull, 256ull, 13000ull}) {
        EXPECT_EQ(batched.core(0).stepFunctionalBatch(n), n);
        consumed += n;
    }
    EXPECT_EQ(batched.core(0).stepFunctionalBatch(30000 - consumed),
              30000 - consumed);

    EXPECT_EQ(statsDump(scalar), statsDump(batched))
        << "batched stepping must reproduce scalar stats exactly";
}

TEST(BatchedSteppingTest, RunFunctionalChunkInvariantSingleCore)
{
    SystemConfig cfg;
    cfg.numCores = 1;
    cfg.prefetch = PrefetchMode::SmsDedicated;

    SystemConfig serial_cfg = cfg;
    serial_cfg.functionalChunk = 1; // historical interleaving
    System serial(serial_cfg);
    serial.runFunctional(25000);

    System chunked(cfg); // default chunk (256)
    chunked.runFunctional(25000);

    EXPECT_EQ(statsDump(serial), statsDump(chunked));
}

TEST(BatchedSteppingTest, RunFunctionalConservesPerCoreStreams)
{
    // Multi-core: chunked round-robin interleaves the cores'
    // accesses at the shared L2 differently, but each core's own
    // stream (records, instructions, loads/stores — all derived
    // from the per-core generator alone) must be untouched.
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.prefetch = PrefetchMode::None;

    SystemConfig serial_cfg = cfg;
    serial_cfg.functionalChunk = 1;
    System serial(serial_cfg);
    serial.runFunctional(20000);

    System chunked(cfg);
    chunked.runFunctional(20000);

    for (int c = 0; c < cfg.numCores; ++c) {
        EXPECT_EQ(serial.core(c).recordsConsumed(), 20000u);
        EXPECT_EQ(chunked.core(c).recordsConsumed(), 20000u);
        EXPECT_EQ(serial.core(c).instructionsRetired(),
                  chunked.core(c).instructionsRetired());
        EXPECT_EQ(serial.core(c).loads.value(),
                  chunked.core(c).loads.value());
        EXPECT_EQ(serial.core(c).stores.value(),
                  chunked.core(c).stores.value());
        // L1s are private: per-core demand access counts conserve.
        EXPECT_EQ(serial.l1d(c).demandAccesses.value(),
                  chunked.l1d(c).demandAccesses.value());
    }
}

TEST(ThreadedHarnessTest, MatchedPairBitIdenticalToSerial)
{
    SystemConfig base;
    base.numCores = 2;
    base.prefetch = PrefetchMode::None;
    SystemConfig pv = base;
    pv.prefetch = PrefetchMode::SmsVirtualized;

    setenv("PVSIM_JOBS", "1", 1);
    EXPECT_EQ(harnessJobs(), 1u);
    SpeedupResult serial = matchedPairSpeedup(base, pv, 1000, 3000, 4);

    setenv("PVSIM_JOBS", "4", 1);
    EXPECT_EQ(harnessJobs(), 4u);
    SpeedupResult threaded =
        matchedPairSpeedup(base, pv, 1000, 3000, 4);
    unsetenv("PVSIM_JOBS");

    ASSERT_EQ(serial.batchPct.size(), threaded.batchPct.size());
    for (size_t b = 0; b < serial.batchPct.size(); ++b) {
        EXPECT_EQ(serial.batchPct[b], threaded.batchPct[b])
            << "batch " << b << " diverged across worker counts";
    }
    EXPECT_EQ(serial.meanPct, threaded.meanPct);
    EXPECT_EQ(serial.ciPct, threaded.ciPct);
}

TEST(ThreadedHarnessTest, BaselineIpcsSharded)
{
    SystemConfig base;
    base.numCores = 1;
    base.prefetch = PrefetchMode::None;

    setenv("PVSIM_JOBS", "1", 1);
    std::vector<double> serial = baselineIpcs(base, 500, 2000, 3);
    setenv("PVSIM_JOBS", "3", 1);
    std::vector<double> threaded = baselineIpcs(base, 500, 2000, 3);
    unsetenv("PVSIM_JOBS");

    EXPECT_EQ(serial, threaded);
    for (double ipc : serial)
        EXPECT_GT(ipc, 0.0);
}

TEST(ThreadedHarnessTest, EffectiveJobsAreClamped)
{
    const unsigned hw =
        std::max(1u, std::thread::hardware_concurrency());

    // An oversubscribed request is clamped to the hardware (running
    // more workers than cores measured 0.77x of serial), and idle
    // workers beyond the batch count are never spawned.
    setenv("PVSIM_JOBS", "64", 1);
    EXPECT_EQ(harnessJobs(), 64u) << "the request itself is kept";
    EXPECT_LE(effectiveHarnessJobs(8), std::min(hw, 8u));
    EXPECT_EQ(effectiveHarnessJobs(1), 1u)
        << "one batch always takes the serial path";

    setenv("PVSIM_JOBS", "1", 1);
    EXPECT_EQ(effectiveHarnessJobs(1000), 1u);

    unsetenv("PVSIM_JOBS");
    EXPECT_GE(effectiveHarnessJobs(4), 1u);
    EXPECT_LE(effectiveHarnessJobs(4), std::min(hw, 4u));
}

TEST(PacketPoolTest, RecyclesStorageAndKeepsLiveCount)
{
    PacketPool &pool = PacketPool::local();
    int64_t live_before = Packet::liveCount();

    PacketPtr a = pool.alloc(MemCmd::ReadReq, 0x1000, 0);
    EXPECT_EQ(Packet::liveCount(), live_before + 1);
    uint64_t id_a = a->id;
    pool.release(a);
    EXPECT_EQ(Packet::liveCount(), live_before);

    // Immediate realloc reuses the freed chunk, with a fresh id.
    PacketPtr b = pool.alloc(MemCmd::WriteReq, 0x2000, 1);
    EXPECT_EQ(static_cast<void *>(b), static_cast<void *>(a));
    EXPECT_GT(b->id, id_a);
    EXPECT_EQ(b->cmd, MemCmd::WriteReq);
    EXPECT_EQ(b->addr, 0x2000u);
    EXPECT_FALSE(b->hasData());

    // Pool-allocated packets remain deletable with plain delete
    // (gem5-style ownership at module boundaries), and vice versa.
    delete b;
    PacketPtr c = new Packet(MemCmd::ReadReq, 0x3000, 0);
    pool.release(c);
    EXPECT_EQ(Packet::liveCount(), live_before);
}

TEST(PacketPoolTest, TimingRunLeaksNothingThroughThePool)
{
    int64_t before = Packet::liveCount();
    {
        SystemConfig cfg;
        cfg.numCores = 2;
        cfg.prefetch = PrefetchMode::SmsVirtualized;
        cfg.mode = SimMode::Timing;
        System sys(cfg);
        sys.runTiming(4000);
    }
    EXPECT_EQ(Packet::liveCount(), before);
}

TEST(PacketPoolTest, RecyclesPayloadBuffers)
{
    PacketPool &pool = PacketPool::local();

    // A packet's payload goes back to the pool with the packet...
    Packet::Data *raw;
    {
        Packet pkt(MemCmd::ReadReq, 0x1000, 0);
        raw = &pkt.ensureData();
        (*raw)[0] = 0xAB;
        EXPECT_TRUE(pkt.hasData());
    }
    size_t free_after = pool.freeDataCount();
    EXPECT_GT(free_after, 0u) << "destroying the packet must "
                                 "recycle its payload";

    // ...and the next allocation reuses that buffer, zeroed.
    Packet pkt2(MemCmd::Writeback, 0x2000, 0);
    Packet::Data &d = pkt2.ensureData();
    EXPECT_EQ(static_cast<void *>(&d), static_cast<void *>(raw));
    EXPECT_EQ(d[0], 0u) << "recycled payloads arrive zeroed";
    EXPECT_EQ(pool.freeDataCount(), free_after - 1);
    EXPECT_GT(pool.reusedDataAllocs(), 0u);
}

TEST(PacketPoolTest, PvTrafficReusesPayloadBuffers)
{
    // A PV-heavy run must stop churning the heap for payloads: by
    // the end of a warm run, reuse dominates fresh allocation.
    // Both counters are snapshotted so only THIS run's allocations
    // are compared (they are process-cumulative).
    PacketPool &pool = PacketPool::local();
    uint64_t fresh_before = pool.freshDataAllocs();
    uint64_t reused_before = pool.reusedDataAllocs();
    {
        SystemConfig cfg;
        cfg.numCores = 2;
        cfg.prefetch = PrefetchMode::SmsVirtualized;
        cfg.mode = SimMode::Timing;
        System sys(cfg);
        sys.runTiming(6000);
    }
    uint64_t fresh = pool.freshDataAllocs() - fresh_before;
    uint64_t reused = pool.reusedDataAllocs() - reused_before;
    EXPECT_GT(reused, fresh)
        << "payload reuse must dominate fresh allocation";
}
