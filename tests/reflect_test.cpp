/**
 * @file
 * Tests for the reflective config (de)serialization layer: the JSON
 * document model (strict parse, deterministic dump, number classes),
 * the field-visitor round trip over the real config tree, strict
 * unknown-key rejection with full dotted paths, defaulting, preset
 * shorthands, and fingerprint stability/sensitivity.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "config/fields.hh"
#include "config/json.hh"

using namespace pvsim;
using json::ConfigError;
using json::Value;

// ---- JSON document model ----------------------------------------------

TEST(JsonTest, ParsesScalarsWithLexicalNumberClasses)
{
    Value v = Value::parse(
        "{\"a\": 1, \"b\": -2, \"c\": 1.5, \"d\": true, "
        "\"e\": \"s\", \"f\": null, \"g\": 1e3}");
    EXPECT_EQ(v.find("a")->type(), Value::Type::Uint);
    EXPECT_EQ(v.find("b")->type(), Value::Type::Int);
    EXPECT_EQ(v.find("c")->type(), Value::Type::Real);
    EXPECT_TRUE(v.find("d")->isBool());
    EXPECT_TRUE(v.find("e")->isString());
    EXPECT_TRUE(v.find("f")->isNull());
    EXPECT_EQ(v.find("g")->type(), Value::Type::Real);
    EXPECT_EQ(v.find("a")->asUint("a"), 1u);
    EXPECT_EQ(v.find("b")->asInt("b"), -2);
    EXPECT_DOUBLE_EQ(v.find("c")->asDouble("c"), 1.5);
}

TEST(JsonTest, IntegersAcceptedAsDoublesButNotViceVersa)
{
    Value v = Value::parse("{\"i\": 3, \"r\": 3.5}");
    EXPECT_DOUBLE_EQ(v.find("i")->asDouble("i"), 3.0);
    EXPECT_THROW(v.find("r")->asUint("r"), ConfigError);
}

TEST(JsonTest, NegativeRejectedAsUnsigned)
{
    Value v = Value::parse("{\"n\": -1}");
    try {
        v.find("n")->asUint("top.n");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("top.n"),
                  std::string::npos);
    }
}

TEST(JsonTest, SyntaxErrorsCarryLineAndColumn)
{
    try {
        Value::parse("{\n  \"a\": 1,\n  }");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("3:3"),
                  std::string::npos)
            << e.what();
    }
}

TEST(JsonTest, DuplicateKeysRejected)
{
    EXPECT_THROW(Value::parse("{\"a\": 1, \"a\": 2}"), ConfigError);
}

TEST(JsonTest, TrailingGarbageRejected)
{
    EXPECT_THROW(Value::parse("{} x"), ConfigError);
}

TEST(JsonTest, DumpIsStableUnderReparse)
{
    Value v = Value::parse(
        "{\"b\": [1, 2.25, -3], \"a\": {\"x\": \"y\"}, "
        "\"big\": 18446744073709551615}");
    std::string once = v.dump();
    std::string twice = Value::parse(once).dump();
    EXPECT_EQ(once, twice);
    // Insertion order is preserved: "b" stays before "a".
    EXPECT_LT(once.find("\"b\""), once.find("\"a\""));
    // uint64_t max round-trips exactly (never through a double).
    EXPECT_NE(once.find("18446744073709551615"), std::string::npos);
}

TEST(JsonTest, FormatRealShortestRoundTrip)
{
    for (double d : {0.1, 1.0 / 3.0, 1e-9, 12345.6789, 0.93, -2.5}) {
        std::string s = json::formatReal(d);
        EXPECT_EQ(std::stod(s), d) << s;
    }
    // Whole-valued reals keep a mark that re-parses as Real.
    std::string one = json::formatReal(1.0);
    EXPECT_TRUE(one.find('.') != std::string::npos ||
                one.find('e') != std::string::npos)
        << one;
}

// ---- Reflection round trips over the real config tree -----------------

TEST(ReflectTest, SystemConfigRoundTripsByteStable)
{
    SystemConfig cfg;
    cfg.numCores = 16;
    cfg.prefetch = PrefetchMode::SmsVirtualized;
    cfg.phtGeometry = {1024, 11};
    cfg.pvCacheEntries = 64;
    cfg.workloadMix = {"apache", "qry2"};
    cfg.branchProfile.enabled = true;
    cfg.branchProfile.edgeStability = 0.93;

    std::string once = config::dumpConfig(cfg);
    SystemConfig back = config::parseConfig<SystemConfig>(once);
    EXPECT_EQ(config::dumpConfig(back), once);
    EXPECT_EQ(back.numCores, 16);
    EXPECT_EQ(back.prefetch, PrefetchMode::SmsVirtualized);
    EXPECT_EQ(back.phtGeometry.numSets, 1024u);
    EXPECT_EQ(back.workloadMix.size(), 2u);
    EXPECT_DOUBLE_EQ(back.branchProfile.edgeStability, 0.93);
}

TEST(ReflectTest, AbsentKeysKeepDefaults)
{
    SystemConfig cfg = config::parseConfig<SystemConfig>(
        "{\"num_cores\": 8}");
    SystemConfig def;
    EXPECT_EQ(cfg.numCores, 8);
    EXPECT_EQ(cfg.l2SizeBytes, def.l2SizeBytes);
    EXPECT_EQ(cfg.workload, def.workload);
    EXPECT_EQ(cfg.prefetch, def.prefetch);
}

TEST(ReflectTest, UnknownKeysRejectedWithFullPath)
{
    try {
        config::parseConfig<SystemConfig>(
            "{\"btb\": {\"mode\": \"virtualized\", \"sets\": 4}}",
            "system");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(
            std::string(e.what()).find("system.btb: unknown key"),
            std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("\"sets\""),
                  std::string::npos)
            << e.what();
    }
}

TEST(ReflectTest, VectorElementErrorsCarryIndexedPaths)
{
    try {
        config::parseConfig<Fig9Options>(
            "{\"edge_stabilities\": [0.5, \"oops\"]}", "fig9");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find(
                      "fig9.edge_stabilities[1]"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ReflectTest, EnumRoundTripAndErrorListsValidNames)
{
    SystemConfig cfg;
    cfg.prefetch = PrefetchMode::Stride;
    SystemConfig back =
        config::parseConfig<SystemConfig>(config::dumpConfig(cfg));
    EXPECT_EQ(back.prefetch, PrefetchMode::Stride);

    try {
        config::parseConfig<SystemConfig>(
            "{\"prefetch\": \"smsvirt\"}", "s");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("s.prefetch"), std::string::npos) << msg;
        EXPECT_NE(msg.find("sms_virtualized"), std::string::npos)
            << msg;
    }
}

TEST(ReflectTest, OutOfRangeIntegerRejected)
{
    // btb assoc is a 32-bit unsigned; 2^32 does not fit.
    EXPECT_THROW(config::parseConfig<BtbConfig>(
                     "{\"assoc\": 4294967296}", "btb"),
                 ConfigError);
}

TEST(ReflectTest, WorkloadMixFromPresetString)
{
    Fig9Options opt = config::parseConfig<Fig9Options>(
        "{\"mixes\": [\"mixed\", \"web\"]}");
    ASSERT_EQ(opt.mixes.size(), 2u);
    EXPECT_EQ(opt.mixes[0].name, "mixed");
    EXPECT_EQ(opt.mixes[0].workloads.size(), 4u);
    EXPECT_TRUE(opt.mixes[0].branch.enabled);
    EXPECT_EQ(opt.mixes[1].name, "web");

    try {
        config::parseConfig<Fig9Options>(
            "{\"mixes\": [\"nope\"]}", "fig9");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("fig9.mixes[0]"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("mixed"), std::string::npos) << msg;
    }
}

TEST(ReflectTest, QosSettingFromPresetLabel)
{
    QosOptions opt = config::parseConfig<QosOptions>(
        "{\"settings\": [\"equal\", \"4:1\", \"equal+floor\"]}");
    ASSERT_EQ(opt.settings.size(), 3u);
    EXPECT_EQ(opt.settings[1].btb.weight, 4u);
    EXPECT_EQ(opt.settings[1].aggressor.weight, 1u);
    EXPECT_GT(opt.settings[2].btb.pvCacheFloor, 0u);
    EXPECT_THROW(config::parseConfig<QosOptions>(
                     "{\"settings\": [\"9:9\"]}"),
                 ConfigError);
}

TEST(ReflectTest, FingerprintChangesIffAFieldChanges)
{
    SystemConfig a;
    uint64_t base = config::fingerprint(a);
    // Identical value, identical fingerprint.
    EXPECT_EQ(config::fingerprint(SystemConfig{}), base);

    // Every mutated field moves the fingerprint...
    SystemConfig b = a;
    b.numCores = 5;
    EXPECT_NE(config::fingerprint(b), base);
    SystemConfig c = a;
    c.prefetch = PrefetchMode::SmsInfinite;
    EXPECT_NE(config::fingerprint(c), base);
    SystemConfig d = a;
    d.branchProfile.edgeStability += 0.001;
    EXPECT_NE(config::fingerprint(d), base);
    SystemConfig e = a;
    e.virtEngines.push_back({});
    EXPECT_NE(config::fingerprint(e), base);

    // ...and reverting restores it exactly.
    b.numCores = a.numCores;
    EXPECT_EQ(config::fingerprint(b), base);
}

TEST(ReflectTest, FingerprintHexFormat)
{
    EXPECT_EQ(config::fingerprintHex(0), "0000000000000000");
    EXPECT_EQ(config::fingerprintHex(0xdeadbeefull),
              "00000000deadbeef");
}

TEST(ReflectTest, FnvMatchesReferenceVector)
{
    // FNV-1a 64-bit reference: empty string hashes to the offset
    // basis; "a" to the published test vector.
    EXPECT_EQ(config::fnv1a(""), 14695981039346656037ull);
    EXPECT_EQ(config::fnv1a("a"), 12638187200555641996ull);
}
