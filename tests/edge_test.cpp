/**
 * @file
 * Edge cases and failure injection: buffer-pressure drops in the
 * PVProxy, timing-mode flush draining, end-of-trace with in-flight
 * stores, guard-rail panics on misuse, and L2 bank serialization.
 */

#include <gtest/gtest.h>

#include <deque>

#include "core/pv_proxy.hh"
#include "core/virt_table.hh"
#include "cpu/trace_core.hh"
#include "harness/system.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"

using namespace pvsim;

namespace {

struct EdgeFixture : public ::testing::Test {
    AddrMap amap{1ull << 30, 1, 64 * 1024};
    std::unique_ptr<SimContext> ctxp;
    std::unique_ptr<Dram> dram;
    std::unique_ptr<Cache> l2;

    void
    build(SimMode mode, Cycles dram_latency = 400)
    {
        l2.reset();
        dram.reset();
        ctxp = std::make_unique<SimContext>(mode);
        dram = std::make_unique<Dram>(
            *ctxp, DramParams{"dram", dram_latency, 0}, &amap);
        CacheParams l2p;
        l2p.name = "l2";
        l2p.sizeBytes = 64 * 1024;
        l2p.assoc = 8;
        l2p.banks = 4;
        l2p.directory = true;
        l2 = std::make_unique<Cache>(*ctxp, l2p, &amap);
        l2->setMemSide(dram.get());
    }
};

} // namespace

TEST_F(EdgeFixture, PatternBufferLimitDropsOpsBeforeMshrLimit)
{
    build(SimMode::Timing);
    PvProxyParams pp;
    pp.mshrs = 4;
    pp.patternBufferEntries = 2; // tighter than the MSHR file
    PvProxy proxy(*ctxp, pp, PvTableLayout(amap.pvStart(0), 64));
    proxy.setMemSide(l2.get());

    int dropped = 0, completed = 0;
    for (unsigned s = 0; s < 3; ++s) {
        proxy.access({0, s, PvReqClass::Demand, [&](PvLineView v) {
            if (v.bytes)
                ++completed;
            else
                ++dropped;
        }});
    }
    EXPECT_EQ(dropped, 1) << "third op exceeds the pattern buffer";
    ctxp->events().runUntil();
    EXPECT_EQ(completed, 2);
    EXPECT_EQ(proxy.droppedOps.value(), 1u);
}

TEST_F(EdgeFixture, TimingFlushDrainsDirtyLines)
{
    build(SimMode::Timing);
    PvProxyParams pp;
    PvProxy proxy(*ctxp, pp, PvTableLayout(amap.pvStart(0), 64));
    proxy.setMemSide(l2.get());

    for (unsigned s = 0; s < 4; ++s) {
        proxy.access({0, s, PvReqClass::Demand, [](PvLineView v) {
            if (v.bytes) {
                v.bytes[0] = 0x55;
                *v.dirty = true;
            }
        }});
    }
    ctxp->events().runUntil();
    proxy.flush();
    ctxp->events().runUntil();
    EXPECT_EQ(proxy.writebacks.value(), 4u);
    EXPECT_TRUE(proxy.quiesced());
    // The dirty lines are now in the L2.
    for (unsigned s = 0; s < 4; ++s)
        EXPECT_TRUE(
            l2->contains(PvTableLayout(amap.pvStart(0), 64)
                             .setAddress(s)));
}

namespace {

struct EndlessStores : public TraceSource {
    uint64_t count = 0;
    bool
    next(TraceRecord &rec) override
    {
        rec.pc = 0x1000;
        rec.addr = 0x100000 + (count % 64) * 0x1000;
        rec.gap = 0;
        rec.op = MemOp::Store;
        ++count;
        return true;
    }
    void reset() override { count = 0; }
    std::string sourceName() const override { return "stores"; }
};

} // namespace

TEST_F(EdgeFixture, CoreDrainsInFlightStoresAtTraceEnd)
{
    build(SimMode::Timing, 200);
    CacheParams l1p;
    l1p.name = "l1d";
    l1p.sizeBytes = 4 * 1024;
    l1p.assoc = 2;
    Cache l1d(*ctxp, l1p, &amap);
    Cache l1i(*ctxp, l1p, &amap);
    l1d.setMemSide(l2.get());
    l1d.setLowerSlot(l2->attachClient(&l1d));
    l1i.setMemSide(l2.get());
    l1i.setLowerSlot(l2->attachClient(&l1i));

    EndlessStores trace;
    CoreParams cp;
    cp.name = "core0";
    TraceCore core(*ctxp, cp, &trace, &l1d, &l1i);
    // Stop after 6 records: several stores are still in flight.
    core.start(6);
    ctxp->events().runUntil();
    EXPECT_TRUE(core.done());
    EXPECT_EQ(core.stores.value(), 6u);
    EXPECT_TRUE(l1d.quiesced()) << "fills must complete after done";
    int64_t live = Packet::liveCount();
    EXPECT_GE(live, 0);
}

TEST_F(EdgeFixture, BankConflictsSerializeLookups)
{
    build(SimMode::Timing);
    // Two same-bank requests must resolve later than two
    // different-bank requests issued at the same tick.
    struct Sink : MemClient {
        std::vector<Tick> at;
        SimContext *ctx;
        void recvResponse(PacketPtr pkt) override
        {
            at.push_back(ctx->curTick());
            delete pkt;
        }
        std::string clientName() const override { return "sink"; }
    } sink;
    sink.ctx = ctxp.get();

    // Warm two same-bank blocks (bank = blockNumber % 4).
    for (Addr a : {Addr(0x10000), Addr(0x10000 + 4 * 64)}) {
        Packet *w = new Packet(MemCmd::ReadReq, a, 0);
        w->src = &sink;
        l2->recvRequest(w);
    }
    ctxp->events().runUntil();
    sink.at.clear();

    Tick start = ctxp->curTick();
    for (Addr a : {Addr(0x10000), Addr(0x10000 + 4 * 64)}) {
        Packet *r = new Packet(MemCmd::ReadReq, a, 0);
        r->src = &sink;
        l2->recvRequest(r);
    }
    ctxp->events().runUntil();
    ASSERT_EQ(sink.at.size(), 2u);
    // Both hit; the second same-bank hit is delayed by the bank.
    Tick first = sink.at[0] - start, second = sink.at[1] - start;
    EXPECT_GT(second, first);
}

// ---------------------------------------------------------------------
// Guard rails (death tests)
// ---------------------------------------------------------------------

TEST(GuardRails, PvLayoutRejectsOutOfRangeSet)
{
    PvTableLayout layout(0xB0000000, 64);
    EXPECT_DEATH(layout.setAddress(64), "out of range");
}

TEST(GuardRails, CodecRejectsOversizedGeometry)
{
    EXPECT_DEATH(PvSetCodec(12, 11, 32), "does not fit");
}

TEST(GuardRails, StoreOfZeroPayloadIsRejected)
{
    SimContext ctx(SimMode::Functional);
    AddrMap amap(1ull << 30, 1, 64 * 1024);
    Dram dram(ctx, DramParams{}, &amap);
    CacheParams cp;
    cp.name = "l2";
    cp.sizeBytes = 64 * 1024;
    cp.assoc = 8;
    Cache l2(ctx, cp, &amap);
    l2.setMemSide(&dram);
    PvProxyParams pp;
    PvProxy proxy(ctx, pp, PvTableLayout(amap.pvStart(0), 64));
    proxy.setMemSide(&l2);
    PvSetCodec codec(11, 11, 32);
    VirtualizedAssocTable table(&proxy, 0, codec);
    EXPECT_DEATH(table.store(5, 0), "empty marker");
}
