/**
 * @file
 * Tests for the Active Generation Table: trigger detection, filter
 * to accumulation promotion, generation endings (eviction of an
 * accessed block, capacity pressure), flushing, and the filtering of
 * single-access regions out of the PHT.
 */

#include <gtest/gtest.h>

#include <vector>

#include "prefetch/agt.hh"

using namespace pvsim;

namespace {

struct AgtTest : public ::testing::Test {
    RegionGeometry geom{32};
    AgtParams params;
    std::vector<std::pair<PhtKey, SpatialPattern>> stored;
    std::unique_ptr<ActiveGenerationTable> agt;

    void
    build(unsigned filter = 32, unsigned accum = 64)
    {
        params.filterEntries = filter;
        params.accumEntries = accum;
        agt = std::make_unique<ActiveGenerationTable>(
            params, geom,
            [this](PhtKey k, SpatialPattern p) {
                stored.emplace_back(k, p);
            });
    }

    /** Address of block `off` in region `r`. */
    Addr
    blk(unsigned r, unsigned off) const
    {
        return Addr(r) * geom.regionBytes() + Addr(off) * kBlockBytes;
    }
};

} // namespace

TEST_F(AgtTest, FirstAccessTriggers)
{
    build();
    EXPECT_TRUE(agt->recordAccess(0x1000, blk(1, 3)));
    EXPECT_FALSE(agt->recordAccess(0x1004, blk(1, 5)));
    EXPECT_FALSE(agt->recordAccess(0x1008, blk(1, 7)));
    EXPECT_TRUE(agt->recordAccess(0x1000, blk(2, 0)))
        << "a different region triggers independently";
}

TEST_F(AgtTest, RepeatTriggerBlockAccessDoesNotPromote)
{
    build();
    agt->recordAccess(0x1000, blk(1, 3));
    agt->recordAccess(0x1000, blk(1, 3)); // same block again
    EXPECT_EQ(agt->activeFilterEntries(), 1u);
    EXPECT_EQ(agt->activeAccumEntries(), 0u);
}

TEST_F(AgtTest, SecondDistinctBlockPromotesToAccumulation)
{
    build();
    agt->recordAccess(0x1000, blk(1, 3));
    agt->recordAccess(0x1004, blk(1, 9));
    EXPECT_EQ(agt->activeFilterEntries(), 0u);
    EXPECT_EQ(agt->activeAccumEntries(), 1u);
    EXPECT_EQ(agt->patternFor(blk(1, 0)),
              (SpatialPattern(1) << 3) | (SpatialPattern(1) << 9));
}

TEST_F(AgtTest, EvictionOfAccessedBlockEndsGeneration)
{
    build();
    agt->recordAccess(0x1000, blk(1, 3));
    agt->recordAccess(0x1004, blk(1, 9));
    agt->blockRemoved(blk(1, 9));
    ASSERT_EQ(stored.size(), 1u);
    // Key is built from the trigger PC and trigger offset 3.
    EXPECT_EQ(stored[0].first, makePhtKey(0x1000, 3));
    EXPECT_EQ(stored[0].second,
              (SpatialPattern(1) << 3) | (SpatialPattern(1) << 9));
    EXPECT_FALSE(agt->isActive(blk(1, 0)));
}

TEST_F(AgtTest, EvictionOfUnaccessedBlockDoesNotEndGeneration)
{
    build();
    agt->recordAccess(0x1000, blk(1, 3));
    agt->recordAccess(0x1004, blk(1, 9));
    agt->blockRemoved(blk(1, 20)); // never touched in generation
    EXPECT_TRUE(stored.empty());
    EXPECT_TRUE(agt->isActive(blk(1, 0)));
}

TEST_F(AgtTest, SingleAccessGenerationsAreFilteredOut)
{
    build();
    agt->recordAccess(0x1000, blk(1, 3));
    agt->blockRemoved(blk(1, 3));
    EXPECT_TRUE(stored.empty())
        << "one-access generations never reach the PHT";
    EXPECT_EQ(agt->generationsFiltered, 1u);
}

TEST_F(AgtTest, AccumulationCapacityEndsLruGeneration)
{
    build(32, 2); // tiny accumulation table
    // Three concurrent two-block generations.
    for (unsigned r = 1; r <= 3; ++r) {
        agt->recordAccess(0x1000 + r * 4, blk(r, 0));
        agt->recordAccess(0x2000, blk(r, 1));
    }
    EXPECT_EQ(agt->activeAccumEntries(), 2u);
    ASSERT_EQ(stored.size(), 1u) << "LRU generation pushed to PHT";
    EXPECT_EQ(agt->accumEvictions, 1u);
    EXPECT_EQ(stored[0].first, makePhtKey(0x1004, 0));
}

TEST_F(AgtTest, FilterCapacityEvictsSilently)
{
    build(2, 64);
    agt->recordAccess(0x1, blk(1, 0));
    agt->recordAccess(0x2, blk(2, 0));
    agt->recordAccess(0x3, blk(3, 0)); // evicts region 1's filter
    EXPECT_TRUE(stored.empty());
    EXPECT_EQ(agt->filterEvictions, 1u);
    // Region 1 is inactive again: a new access re-triggers.
    EXPECT_TRUE(agt->recordAccess(0x1, blk(1, 0)));
}

TEST_F(AgtTest, FlushTransfersAccumulatedPatterns)
{
    build();
    agt->recordAccess(0xA, blk(1, 0));
    agt->recordAccess(0xB, blk(1, 4));
    agt->recordAccess(0xC, blk(2, 0)); // still in filter
    agt->flush();
    ASSERT_EQ(stored.size(), 1u);
    EXPECT_EQ(stored[0].second,
              (SpatialPattern(1) << 0) | (SpatialPattern(1) << 4));
    EXPECT_EQ(agt->activeAccumEntries(), 0u);
    EXPECT_EQ(agt->activeFilterEntries(), 0u);
}

TEST_F(AgtTest, StorageIsUnderOneKilobyte)
{
    build(); // paper values: 32 filter + 64 accumulation entries
    // Paper Section 3.2: "the AGT needs less than one kilobyte".
    EXPECT_LT(agt->storageBits(), 8u * 1024u);
}

TEST(RegionGeometryTest, OffsetsAndBases)
{
    RegionGeometry g(32);
    EXPECT_EQ(g.regionBytes(), 2048u);
    EXPECT_EQ(g.regionBase(0x1234), 0x1000u);
    EXPECT_EQ(g.blockOffset(0x1000), 0u);
    EXPECT_EQ(g.blockOffset(0x17ff), 31u);
    EXPECT_EQ(g.blockAddr(0x1000, 5), 0x1140u);
    EXPECT_EQ(g.regionTag(0x1000), g.regionTag(0x17ff));
    EXPECT_NE(g.regionTag(0x1000), g.regionTag(0x1800));
}

TEST(RegionGeometryTest, SmallerRegionsWork)
{
    RegionGeometry g(16); // 1 KB regions
    EXPECT_EQ(g.regionBytes(), 1024u);
    EXPECT_EQ(g.blockOffset(0x3c0), 15u);
    EXPECT_EQ(g.offsetBits(), 4u);
}
