/**
 * @file
 * End-to-end tests for the SMS prefetcher on a real L1+L2+DRAM
 * stack: pattern learning, prefetch streaming on re-trigger,
 * coverage accounting, trigger-block exclusion, and identical
 * engine behaviour with a virtualized PHT.
 */

#include <gtest/gtest.h>

#include "core/virt_pht.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "prefetch/sms.hh"

using namespace pvsim;

namespace {

struct SmsTest : public ::testing::Test {
    AddrMap amap{1ull << 30, 1, 64 * 1024};
    std::unique_ptr<SimContext> ctxp;
    std::unique_ptr<Dram> dram;
    std::unique_ptr<Cache> l2;
    std::unique_ptr<Cache> l1;
    std::unique_ptr<InfinitePht> inf_pht;
    std::unique_ptr<VirtualizedPht> virt_pht;
    std::unique_ptr<SmsPrefetcher> sms;

    void
    build(bool virtualized = false)
    {
        // Tear down the previous machine children-first: assigning
        // ctxp below destroys the old SimContext, and every
        // SimObject's stats group unregisters from it on
        // destruction — stale devices must not outlive it.
        sms.reset();
        virt_pht.reset();
        inf_pht.reset();
        l1.reset();
        l2.reset();
        dram.reset();
        ctxp = std::make_unique<SimContext>(SimMode::Functional);
        dram = std::make_unique<Dram>(
            *ctxp, DramParams{"dram", 400, 0}, &amap);
        CacheParams l2p;
        l2p.name = "l2";
        l2p.sizeBytes = 256 * 1024;
        l2p.assoc = 8;
        l2p.directory = true;
        l2 = std::make_unique<Cache>(*ctxp, l2p, &amap);
        l2->setMemSide(dram.get());

        CacheParams l1p;
        l1p.name = "l1d";
        l1p.sizeBytes = 8 * 1024;
        l1p.assoc = 2;
        l1 = std::make_unique<Cache>(*ctxp, l1p, &amap);
        l1->setMemSide(l2.get());
        l1->setLowerSlot(l2->attachClient(l1.get()));

        PatternHistoryTable *pht;
        if (virtualized) {
            VirtPhtParams vp;
            vp.numSets = 64;
            vp.assoc = 10; // 15-bit tags at 64 sets: 10 ways fit
            virt_pht = std::make_unique<VirtualizedPht>(
                *ctxp, vp, amap.pvStart(0));
            virt_pht->proxy().setMemSide(l2.get());
            pht = virt_pht.get();
        } else {
            inf_pht = std::make_unique<InfinitePht>();
            pht = inf_pht.get();
        }
        SmsParams sp;
        sms = std::make_unique<SmsPrefetcher>(*ctxp, sp, l1.get(),
                                              pht);
        l1->setListener(sms.get());
    }

    void
    access(Addr addr, Addr pc, bool write = false)
    {
        Packet pkt(write ? MemCmd::WriteReq : MemCmd::ReadReq, addr,
                   0);
        pkt.pc = pc;
        l1->functionalAccess(pkt);
    }

    /** Touch a full region pattern from a trigger. */
    void
    visitRegion(Addr region_base, Addr pc,
                std::vector<unsigned> offsets)
    {
        for (unsigned off : offsets)
            access(region_base + Addr(off) * kBlockBytes, pc);
    }

    /** Force region generations to end by invalidating one block. */
    void
    endGeneration(Addr region_base, unsigned accessed_offset)
    {
        l1->recvInvalidate(region_base +
                           Addr(accessed_offset) * kBlockBytes);
    }
};

} // namespace

TEST_F(SmsTest, LearnsPatternAndStreamsOnRetrigger)
{
    build();
    const Addr region_a = 0x10000; // 2 KB aligned
    const Addr region_b = 0x20000;
    const Addr pc = 0x40001000;

    // Generation in region A: trigger offset 2, then 5, 9, 11.
    visitRegion(region_a, pc, {2, 5, 9, 11});
    endGeneration(region_a, 5);
    EXPECT_EQ(sms->generationsStored.value(), 1u);

    // New region, same trigger PC and offset: SMS must predict and
    // prefetch offsets 5, 9, 11 (the trigger block is excluded).
    uint64_t pf_before = l1->prefetchFills.value();
    access(region_b + 2 * kBlockBytes, pc);
    EXPECT_EQ(sms->phtHits.value(), 1u);
    EXPECT_EQ(l1->prefetchFills.value(), pf_before + 3);
    EXPECT_TRUE(l1->contains(region_b + 5 * kBlockBytes));
    EXPECT_TRUE(l1->contains(region_b + 9 * kBlockBytes));
    EXPECT_TRUE(l1->contains(region_b + 11 * kBlockBytes));
    EXPECT_FALSE(l1->contains(region_b + 7 * kBlockBytes));

    // The subsequent demand accesses are covered misses.
    access(region_b + 5 * kBlockBytes, pc);
    access(region_b + 9 * kBlockBytes, pc);
    EXPECT_EQ(l1->coveredMisses.value(), 2u);
}

TEST_F(SmsTest, DifferentTriggerOffsetIsDifferentKey)
{
    build();
    const Addr pc = 0x40001000;
    visitRegion(0x10000, pc, {2, 5, 9});
    endGeneration(0x10000, 5);

    // Same PC, different trigger offset: no prediction (the first
    // trigger of each generation also performed a miss lookup).
    access(0x30000 + 4 * kBlockBytes, pc);
    EXPECT_EQ(sms->phtMisses.value(), 2u);
    EXPECT_EQ(sms->phtHits.value(), 0u);
}

TEST_F(SmsTest, OneBlockGenerationsNeverReachPht)
{
    build();
    const Addr pc = 0x40002000;
    access(0x50000, pc);
    endGeneration(0x50000, 0);
    EXPECT_EQ(sms->generationsStored.value(), 0u);
    EXPECT_EQ(inf_pht->size(), 0u);
}

TEST_F(SmsTest, StoresParticipateInPatterns)
{
    build();
    const Addr pc = 0x40003000;
    access(0x60000 + 0 * kBlockBytes, pc, false);
    access(0x60000 + 3 * kBlockBytes, pc, true); // store
    endGeneration(0x60000, 3);
    EXPECT_EQ(sms->generationsStored.value(), 1u);

    access(0x68000 + 0 * kBlockBytes, pc);
    EXPECT_TRUE(l1->contains(0x68000 + 3 * kBlockBytes))
        << "pattern learned from a store must prefetch";
}

TEST_F(SmsTest, CapacityEvictionFromL1EndsGenerations)
{
    build();
    const Addr pc = 0x40004000;
    // Two-block generation, then thrash the L1 (8KB, 2-way) so one
    // of the accessed blocks is naturally evicted.
    visitRegion(0x10000, pc, {0, 1});
    // 64 sets; conflict with block at offset 0 (set index of
    // 0x10000>>6 = 0x400 -> set 0): addresses with same set index.
    for (int i = 1; i <= 3; ++i)
        access(0x10000 + Addr(i) * 64 * 64 * kBlockBytes, 0x999);
    EXPECT_GE(sms->generationsStored.value(), 1u)
        << "natural L1 eviction must close the generation";
}

TEST_F(SmsTest, VirtualizedEngineBehavesIdentically)
{
    // Run the same scripted scenario against the virtualized PHT:
    // the engine (and its counters) must behave the same.
    for (bool virt : {false, true}) {
        build(virt);
        const Addr pc = 0x40001000;
        visitRegion(0x10000, pc, {2, 5, 9, 11});
        endGeneration(0x10000, 5);
        access(0x20000 + 2 * kBlockBytes, pc);
        EXPECT_EQ(sms->phtHits.value(), 1u) << "virt=" << virt;
        EXPECT_TRUE(l1->contains(0x20000 + 5 * kBlockBytes))
            << "virt=" << virt;
        EXPECT_TRUE(l1->contains(0x20000 + 11 * kBlockBytes))
            << "virt=" << virt;
    }
}

TEST_F(SmsTest, VirtualizedPhtGeneratesL2Traffic)
{
    build(true);
    const Addr pc = 0x40001000;
    uint64_t pv_before = l2->requestsPv.value();
    visitRegion(0x10000, pc, {2, 5});
    endGeneration(0x10000, 2);
    // The insert had to fetch its PVTable set through the L2.
    EXPECT_GT(l2->requestsPv.value(), pv_before);
}

TEST_F(SmsTest, NextLinePrefetcherFetchesSequentialBlock)
{
    build();
    NextLinePrefetcher nl(*ctxp, "nl", l1.get());
    l1->setListener(&nl); // replace SMS for this test
    access(0x70000, 0x1);
    EXPECT_TRUE(l1->contains(0x70040))
        << "next line must be prefetched on a miss";
    uint64_t fills = l1->prefetchFills.value();
    access(0x70040, 0x1); // hit (prefetched): no new prefetch
    EXPECT_EQ(l1->prefetchFills.value(), fills);
}
