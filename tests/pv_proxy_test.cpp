/**
 * @file
 * Tests for the PVProxy: PVCache hit/miss behaviour, dirty
 * write-back through a real L2+DRAM hierarchy, operation dropping
 * under buffer pressure, timing-mode MSHR behaviour, flush, and the
 * Section 4.6 storage accounting.
 */

#include <gtest/gtest.h>

#include "core/pv_proxy.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"

using namespace pvsim;

namespace {

/** PVProxy in front of a real L2 + DRAM. */
struct PvProxyTest : public ::testing::Test {
    static constexpr unsigned kSets = 64;

    AddrMap amap{1ull << 30, 1, 64 * 1024};
    std::unique_ptr<SimContext> ctxp;
    std::unique_ptr<Dram> dramp;
    std::unique_ptr<Cache> l2;
    std::unique_ptr<PvProxy> proxy;

    SimContext &ctx() { return *ctxp; }
    Dram &dram() { return *dramp; }

    void
    build(unsigned pvcache_entries = 8,
          SimMode mode = SimMode::Functional)
    {
        proxy.reset();
        l2.reset();
        dramp.reset();
        ctxp = std::make_unique<SimContext>(mode);
        dramp = std::make_unique<Dram>(
            *ctxp, DramParams{"dram", 400, 0}, &amap);
        CacheParams l2p;
        l2p.name = "l2";
        l2p.sizeBytes = 64 * 1024;
        l2p.assoc = 8;
        l2p.directory = true;
        l2 = std::make_unique<Cache>(*ctxp, l2p, &amap);
        l2->setMemSide(dramp.get());

        PvProxyParams pp;
        pp.pvCacheEntries = pvcache_entries;
        proxy = std::make_unique<PvProxy>(
            *ctxp, pp, PvTableLayout(amap.pvStart(0), kSets));
        proxy->setMemSide(l2.get());
    }

    /** Write a recognizable byte into a set's line. */
    void
    poke(unsigned set, uint8_t value)
    {
        proxy->access({0, set, PvReqClass::Demand,
                       [value](PvLineView v) {
            ASSERT_NE(v.bytes, nullptr);
            v.bytes[0] = value;
            *v.dirty = true;
        }});
    }

    /** Read back byte 0 of a set's line. */
    uint8_t
    peek(unsigned set)
    {
        uint8_t out = 0xEE;
        proxy->access({0, set, PvReqClass::Demand,
                       [&out](PvLineView v) {
            ASSERT_NE(v.bytes, nullptr);
            out = v.bytes[0];
        }});
        return out;
    }
};

} // namespace

TEST_F(PvProxyTest, ColdLineArrivesZeroed)
{
    build();
    EXPECT_EQ(peek(5), 0);
    EXPECT_EQ(proxy->pvCacheMisses.value(), 1u);
    EXPECT_EQ(proxy->pvCacheHits.value(), 0u);
}

TEST_F(PvProxyTest, SecondAccessHitsPvCache)
{
    build();
    peek(5);
    peek(5);
    EXPECT_EQ(proxy->pvCacheHits.value(), 1u);
    EXPECT_EQ(proxy->memRequests.value(), 1u);
}

TEST_F(PvProxyTest, DirtyEvictionRoundTripsThroughHierarchy)
{
    build(2); // tiny PVCache forces eviction quickly
    poke(1, 0xAB);
    poke(2, 0xCD);
    poke(3, 0xEF); // evicts set 1 (dirty) to the L2
    EXPECT_GE(proxy->writebacks.value(), 1u);
    // Refetch set 1: the bytes must come back through the L2.
    EXPECT_EQ(peek(1), 0xAB);
}

TEST_F(PvProxyTest, DataSurvivesL2EvictionViaDram)
{
    build(1); // every new set evicts the previous one
    poke(7, 0x77);
    peek(8); // evicts dirty set 7 into the L2
    ASSERT_EQ(proxy->writebacks.value(), 1u);
    // Thrash the L2 so the PV line is evicted off-chip.
    // L2: 64KB 8-way = 128 sets; generate conflicting app traffic
    // on the PV line's set.
    Addr pv_addr = proxy->layout().setAddress(7);
    for (int i = 1; i <= 9; ++i) {
        Packet pkt(MemCmd::ReadReq, pv_addr % (128 * 64) +
                                        Addr(i) * 128 * 64,
                   0);
        l2->functionalAccess(pkt);
    }
    EXPECT_TRUE(dram().hasBlock(pv_addr))
        << "dirty PV line must reach DRAM when evicted from L2";
    // And the contents are still correct after refetch.
    EXPECT_EQ(peek(7), 0x77);
}

TEST_F(PvProxyTest, CleanEvictionIsSilent)
{
    build(1);
    peek(1);
    peek(2); // evicts clean set 1
    EXPECT_EQ(proxy->writebacks.value(), 0u);
    EXPECT_EQ(proxy->cleanEvicts.value(), 1u);
}

TEST_F(PvProxyTest, FlushWritesBackAllDirtyLines)
{
    build(8);
    poke(1, 0x11);
    poke(2, 0x22);
    peek(3); // clean
    proxy->flush();
    EXPECT_EQ(proxy->writebacks.value(), 2u);
    EXPECT_EQ(proxy->cleanEvicts.value(), 1u);
    // Data is recoverable after the flush.
    EXPECT_EQ(peek(1), 0x11);
    EXPECT_EQ(peek(2), 0x22);
}

TEST_F(PvProxyTest, LruKeepsHotLines)
{
    build(2);
    peek(1);
    peek(2);
    peek(1); // touch 1; 2 is now LRU
    peek(3); // evicts 2
    uint64_t misses = proxy->pvCacheMisses.value();
    peek(1); // must still hit
    EXPECT_EQ(proxy->pvCacheMisses.value(), misses);
    peek(2); // must miss
    EXPECT_EQ(proxy->pvCacheMisses.value(), misses + 1);
}

TEST_F(PvProxyTest, StorageBreakdownMatchesPaperScale)
{
    build(8);
    auto b = proxy->storageBreakdown();
    // Paper Section 4.6 for the full 1K-set design: PVCache 473B,
    // tags 11B, dirty 1B, MSHRs 84B, evict buffer 256B, pattern
    // buffer 64B => 889B. Our accounting must land in the same
    // ballpark (within ~15%) with identical category structure.
    EXPECT_EQ(b.pvCacheData, 8u * 473u);
    EXPECT_EQ(b.dirtyBits, 8u);
    EXPECT_EQ(b.patternBuffer, 16u * 32u);
    EXPECT_EQ(b.evictBuffer, 4u * 64u * 8u);
    double total = b.totalBytes();
    EXPECT_GT(total, 700.0);
    EXPECT_LT(total, 1000.0);
}

TEST_F(PvProxyTest, TimingModeFetchesAsynchronously)
{
    build(8, SimMode::Timing);
    bool done = false;
    uint8_t seen = 0xFF;
    proxy->access({0, 9, PvReqClass::Demand, [&](PvLineView v) {
        done = true;
        seen = v.bytes ? v.bytes[0] : 0xEE;
    }});
    EXPECT_FALSE(done) << "miss must complete later";
    ctx().events().runUntil();
    EXPECT_TRUE(done);
    EXPECT_EQ(seen, 0);
    EXPECT_TRUE(proxy->quiesced());
    // Latency must include at least the L2 round trip.
    EXPECT_GE(ctx().curTick(), 18u);
}

TEST_F(PvProxyTest, TimingCoalescesOpsOnOneFetch)
{
    build(8, SimMode::Timing);
    int completed = 0;
    for (int i = 0; i < 3; ++i)
        proxy->access({0, 9, PvReqClass::Demand,
                       [&](PvLineView) { ++completed; }});
    ctx().events().runUntil();
    EXPECT_EQ(completed, 3);
    EXPECT_EQ(proxy->memRequests.value(), 1u);
    EXPECT_EQ(proxy->coalescedOps.value(), 2u);
}

TEST_F(PvProxyTest, TimingDropsOpsWhenMshrsAreFull)
{
    build(8, SimMode::Timing);
    // Default 4 MSHRs: the 5th distinct set in flight is dropped and
    // must still call back (as a predictor miss).
    int dropped_cb = 0, completed = 0;
    for (unsigned s = 0; s < 5; ++s) {
        proxy->access({0, s, PvReqClass::Demand, [&](PvLineView v) {
            if (v.bytes)
                ++completed;
            else
                ++dropped_cb;
        }});
    }
    EXPECT_EQ(dropped_cb, 1) << "dropped op reports predictor miss";
    ctx().events().runUntil();
    EXPECT_EQ(completed, 4);
    EXPECT_EQ(proxy->droppedOps.value(), 1u);
}

TEST_F(PvProxyTest, TimingHitIsSynchronous)
{
    build(8, SimMode::Timing);
    proxy->access({0, 3, PvReqClass::Demand, [](PvLineView) {}});
    ctx().events().runUntil();
    bool done = false;
    proxy->access({0, 3, PvReqClass::Demand,
                   [&](PvLineView) { done = true; }});
    EXPECT_TRUE(done) << "PVCache hits complete with zero latency";
}

TEST_F(PvProxyTest, OperationsAreCountedByKind)
{
    build();
    peek(1);
    poke(1, 5);
    peek(2);
    EXPECT_EQ(proxy->operations.value(), 3u);
    EXPECT_EQ(proxy->pvCacheHits.value(), 1u);
    EXPECT_EQ(proxy->pvCacheMisses.value(), 2u);
}
